// Figure 2 reproduction: convergence of the adaptive SingleR policy on a
// workload with correlated service times and queueing delays.
//
//   Fig. 2a -- inverse CDFs of: the Original (no reissue) response times;
//              the Primary response times under the tuned SingleR policy
//              with a 30% budget (reissue load shifts the distribution);
//              the Reissue copies' own response times; and the end-to-end
//              SingleR query latency.
//   Fig. 2b -- predicted vs actual P95 per adaptive trial, lambda = 0.2.
//
// Paper-expected shape: the Primary curve sits far above Original in the
// upper percentiles (added load), the SingleR end-to-end curve sits below
// Original, and predicted/actual converge within ~6 trials.
#include <cstdio>

#include "bench_util.hpp"
#include "reissue/core/adaptive.hpp"
#include "reissue/sim/workloads.hpp"

using namespace reissue;

int main() {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 40000;
  opts.warmup = 4000;
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);

  core::AdaptiveConfig config;
  config.percentile = 0.95;
  config.budget = 0.30;
  config.learning_rate = 0.2;
  config.max_trials = 10;

  bench::header("Figure 2b: adaptive trials (Predicted vs Actual P95, "
                "lambda=0.2, budget=30%)");
  const auto outcome = core::adapt_single_r(cluster, config);
  std::printf("%5s  %10s  %10s  %7s  %-30s\n", "trial", "predicted", "actual",
              "rate", "policy");
  for (const auto& trial : outcome.trials) {
    std::printf("%5d  %10.1f  %10.1f  %6.1f%%  %-30s\n", trial.index,
                trial.predicted_tail, trial.actual_tail,
                100.0 * trial.measured_reissue_rate,
                trial.policy.describe().c_str());
  }
  bench::note(outcome.converged
                  ? "converged (paper: ~6 iterations on this workload)"
                  : "not converged within 10 trials");

  bench::header("Figure 2a: inverse CDFs under the tuned policy");
  const auto base = cluster.run(core::ReissuePolicy::none());
  const auto tuned = cluster.run(outcome.policy);
  const stats::EmpiricalCdf original(base.query_latencies);
  const stats::EmpiricalCdf primary(tuned.primary_latencies);
  const stats::EmpiricalCdf reissue(tuned.reissue_latencies.empty()
                                        ? tuned.primary_latencies
                                        : tuned.reissue_latencies);
  const stats::EmpiricalCdf single_r(tuned.query_latencies);
  std::printf("%6s  %10s  %10s  %10s  %10s\n", "CDF", "Original", "SingleR",
              "Reissue", "Primary");
  for (double p = 0.60; p <= 0.9501; p += 0.05) {
    std::printf("%6.2f  %10.1f  %10.1f  %10.1f  %10.1f\n", p,
                original.quantile(p), single_r.quantile(p),
                reissue.quantile(p), primary.quantile(p));
  }
  bench::note("expected: Primary >> Original in the upper percentiles "
              "(reissue load), SingleR < Original");
  return 0;
}
