// Figure 8 reproduction: binary search for the optimal reissue budget on
// the Redis-like intersection workload at 20% utilization, minimizing P99.
// Prints the two series the paper plots: trial budget and trial P99, with
// the running best.
//
// Paper-expected shape: the walk expands while improving (delta *= 3/2),
// reverses and halves when it overshoots, and settles at an interior
// budget (paper: ~8% at 20% utilization).
#include <cstdio>

#include "bench_util.hpp"
#include "reissue/core/budget_search.hpp"
#include "reissue/sim/metrics.hpp"
#include "reissue/systems/bridge.hpp"

using namespace reissue;

int main() {
  systems::SystemHarnessOptions options;
  options.utilization = 0.20;
  options.servers = 10;
  options.queries = 25000;
  options.warmup = 2500;
  auto harness = systems::make_redis_harness(options);

  const double baseline =
      sim::evaluate_policy(harness.cluster, core::ReissuePolicy::none(), 0.99)
          .tail_latency;

  core::BudgetSearchConfig config;
  config.initial_delta = 0.01;  // paper: delta starts at 1%
  config.max_trials = 14;
  config.max_budget = 0.30;

  const auto outcome = core::search_optimal_budget(
      [&](double budget) {
        if (budget <= 0.0) return baseline;
        // Paper §4.4: each candidate runs the adaptive optimizer for 5
        // trials before measuring.
        return sim::tune_single_r(harness.cluster, 0.99, budget, 5)
            .final_eval.tail_latency;
      },
      config);

  bench::header("Figure 8: budget binary search (Redis-like, 20% util, P99)");
  std::printf("%6s  %12s  %12s  %12s  %12s\n", "trial", "trial budget",
              "trial P99", "best budget", "best P99");
  double best_budget = 0.0;
  double best_latency = baseline;
  for (const auto& trial : outcome.trials) {
    if (trial.accepted) {
      best_budget = trial.budget;
      best_latency = trial.tail_latency;
    }
    std::printf("%6d  %11.1f%%  %12.1f  %11.1f%%  %12.1f\n", trial.index,
                100.0 * trial.budget, trial.tail_latency,
                100.0 * best_budget, best_latency);
  }
  std::printf("\nbaseline P99 %.1f -> best P99 %.1f at budget %.1f%%\n",
              baseline, outcome.best_tail_latency,
              100.0 * outcome.best_budget);
  bench::note("paper: best budget ~8% at 20% utilization");
  return 0;
}
