// Microbenchmarks for the system substrates: set-intersection kernels
// (Redis-like) and BM25 top-k search (Lucene-like), plus dataset/index
// construction cost.
#include <benchmark/benchmark.h>

#include <vector>

#include "reissue/systems/inverted_index.hpp"
#include "reissue/systems/kvstore.hpp"
#include "reissue/systems/redis_dataset.hpp"
#include "reissue/systems/search_workload.hpp"
#include "reissue/systems/searcher.hpp"
#include "reissue/systems/set_ops.hpp"

using namespace reissue;
using namespace reissue::systems;

namespace {

std::vector<std::uint32_t> arithmetic_set(std::size_t n, std::uint32_t step) {
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint32_t>(i) * step + 1;
  }
  return v;
}

void BM_IntersectProbe(benchmark::State& state) {
  const auto small = arithmetic_set(static_cast<std::size_t>(state.range(0)), 97);
  const auto large = arithmetic_set(static_cast<std::size_t>(state.range(1)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect_probe(small, large));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntersectProbe)->Args({1000, 100000})->Args({10000, 100000});

void BM_IntersectMerge(benchmark::State& state) {
  const auto a = arithmetic_set(static_cast<std::size_t>(state.range(0)), 3);
  const auto b = arithmetic_set(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect_merge(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_IntersectMerge)->Arg(10000)->Arg(100000);

void BM_IntersectGallop(benchmark::State& state) {
  const auto small = arithmetic_set(static_cast<std::size_t>(state.range(0)), 97);
  const auto large = arithmetic_set(100000, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect_gallop(small, large));
  }
}
BENCHMARK(BM_IntersectGallop)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RedisDatasetBuild(benchmark::State& state) {
  RedisDatasetParams params;
  params.sets = static_cast<std::size_t>(state.range(0));
  params.universe = 200000;
  params.max_cardinality = 50000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_redis_dataset(params));
  }
}
BENCHMARK(BM_RedisDatasetBuild)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_Bm25Search(benchmark::State& state) {
  CorpusParams corpus_params;
  corpus_params.documents = 20000;
  corpus_params.vocabulary = 20000;
  const auto corpus = make_corpus(corpus_params);
  const InvertedIndex index(corpus);
  const Searcher searcher(index);
  SearchWorkloadParams wl;
  wl.distinct_queries = 256;
  const auto pool = make_query_pool(corpus.vocabulary, wl);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.search(pool[i % pool.size()].terms, 10));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bm25Search);

void BM_IndexBuild(benchmark::State& state) {
  CorpusParams corpus_params;
  corpus_params.documents = static_cast<std::size_t>(state.range(0));
  corpus_params.vocabulary = 10000;
  const auto corpus = make_corpus(corpus_params);
  for (auto _ : state) {
    InvertedIndex index(corpus);
    benchmark::DoNotOptimize(index.total_postings());
  }
}
BENCHMARK(BM_IndexBuild)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
