// Ablation study for the design choices DESIGN.md §6 calls out.  Each
// section toggles one mechanism on the workload where it matters and
// reports the P99 impact:
//
//   A. Randomization       — optimal SingleR vs SingleD at a 3% budget
//                            (the paper's core claim).
//   B. Correlation-aware   — §4.2 conditional optimizer vs the naive
//      optimizer             independent one on the Correlated workload.
//   C. Reissue placement   — dispatching the reissue copy to a different
//                            replica vs any replica (incl. the primary's).
//   D. Cancellation        — lazy cancel-on-completion (Lee et al. [20]
//                            extension) vs the paper's run-to-completion.
//   E. Redis event loop    — exhaustive connection batches (§6.2) vs fair
//                            one-request-per-connection polling.
#include <cstdio>

#include "bench_util.hpp"
#include "reissue/core/optimizer.hpp"
#include "reissue/sim/metrics.hpp"
#include "reissue/sim/workloads.hpp"
#include "reissue/systems/bridge.hpp"

using namespace reissue;

namespace {

void ablation_randomization() {
  bench::header("Ablation A: randomization (SingleR vs SingleD, 3% budget)");
  sim::workloads::WorkloadOptions opts;
  opts.queries = 40000;
  opts.warmup = 4000;
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
  const auto base =
      sim::evaluate_policy(cluster, core::ReissuePolicy::none(), 0.95);
  const auto with_q = sim::tune_single_r(cluster, 0.95, 0.03, 6).final_eval;
  const auto without_q = sim::tune_single_d(cluster, 0.95, 0.03, 6).final_eval;
  std::printf("baseline P95 %.1f | SingleR %.1f (q=%.2f) | SingleD %.1f\n",
              base.tail_latency, with_q.tail_latency,
              with_q.policy.probability(), without_q.tail_latency);
  bench::note("q<1 is the whole game at small budgets");
}

void ablation_correlation() {
  bench::header("Ablation B: correlation-aware optimizer (Correlated wkld)");
  sim::workloads::WorkloadOptions opts;
  opts.queries = 40000;
  opts.warmup = 4000;
  sim::Cluster cluster = sim::workloads::make_correlated(0.5, opts);
  const double k = 0.95;
  const double budget = 0.10;
  const auto probe = cluster.run(core::ReissuePolicy::single_r(0.0, budget));
  const auto naive = core::compute_optimal_single_r(
      probe.primary_cdf(), probe.reissue_cdf(), k, budget);
  const auto aware = core::compute_optimal_single_r_correlated(
      probe.primary_cdf(), probe.joint(), k, budget);
  const auto eval_naive = sim::evaluate_policy(cluster, naive.policy(), k);
  const auto eval_aware = sim::evaluate_policy(cluster, aware.policy(), k);
  std::printf(
      "independent optimizer: d=%.1f q=%.2f -> P95 %.1f (rem %.2f)\n",
      naive.delay, naive.probability, eval_naive.tail_latency,
      eval_naive.remediation_rate);
  std::printf(
      "correlated  optimizer: d=%.1f q=%.2f -> P95 %.1f (rem %.2f)\n",
      aware.delay, aware.probability, eval_aware.tail_latency,
      eval_aware.remediation_rate);
  bench::note("the correlated optimizer reissues earlier with smaller q "
              "(paper §5.3) and never does worse");
}

void ablation_placement() {
  bench::header("Ablation C: reissue placement (different replica vs any)");
  sim::workloads::WorkloadOptions opts;
  opts.queries = 40000;
  opts.warmup = 4000;
  for (bool exclude : {true, false}) {
    sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
    cluster.mutable_config().exclude_primary_server = exclude;
    const auto eval = sim::tune_single_r(cluster, 0.95, 0.10, 5).final_eval;
    std::printf("exclude_primary_server=%-5s -> P95 %.1f\n",
                exclude ? "true" : "false", eval.tail_latency);
  }
  bench::note("re-using the primary's replica re-queues behind the very "
              "backlog being hedged");
}

void ablation_cancellation() {
  bench::header("Ablation D: lazy cancellation (Lee et al. extension)");
  sim::workloads::WorkloadOptions opts;
  opts.queries = 40000;
  opts.warmup = 4000;
  for (bool cancel : {false, true}) {
    sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
    cluster.mutable_config().cancel_on_completion = cancel;
    cluster.mutable_config().cancellation_overhead = 0.5;
    const auto eval = sim::tune_single_r(cluster, 0.95, 0.25, 5).final_eval;
    std::printf("cancel_on_completion=%-5s -> P95 %8.1f  util %.3f\n",
                cancel ? "true" : "false", eval.tail_latency,
                eval.utilization);
  }
  bench::note("cancelling queued duplicates returns capacity: lower "
              "utilization at equal budget (paper runs with it OFF)");
}

void ablation_redis_batching() {
  bench::header("Ablation E: Redis event loop (connection batches vs fair RR)");
  for (auto kind : {sim::QueueDisciplineKind::kConnectionBatch,
                    sim::QueueDisciplineKind::kRoundRobinConnections}) {
    systems::SystemHarnessOptions options;
    options.utilization = 0.40;
    options.queries = 25000;
    options.warmup = 2500;
    auto harness = systems::make_redis_harness(options);
    harness.cluster.mutable_config().queue = kind;
    const auto base = sim::evaluate_policy(harness.cluster,
                                           core::ReissuePolicy::none(), 0.99);
    std::printf("%-24s -> baseline P99 %8.1f ms\n",
                to_string(kind).c_str(), base.tail_latency);
  }
  bench::note("batched service extends a giant query's backlog across "
              "rounds (the paper's \"queries of death\" amplifier)");
}

}  // namespace

int main() {
  ablation_randomization();
  ablation_correlation();
  ablation_placement();
  ablation_cancellation();
  ablation_redis_batching();
  return 0;
}
