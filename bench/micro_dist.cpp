// Microbenchmarks for the distributed sweep layer (src/dist): canonical
// cell planning, the shard worker end to end (sweep compute plus journal,
// raw CSV and manifest I/O), and the merge coordinator (manifest
// validation, content hashing, row parsing and reassembly).  Worker and
// merge are the overheads sharding adds on top of the sweep itself; both
// should stay negligible next to cell compute.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "reissue/dist/merge.hpp"
#include "reissue/dist/shard.hpp"
#include "reissue/dist/worker.hpp"
#include "reissue/exp/runner.hpp"
#include "reissue/exp/scenario.hpp"

using namespace reissue;

namespace {

std::vector<exp::ScenarioSpec> bench_scenarios(std::size_t scenarios) {
  std::vector<exp::ScenarioSpec> specs;
  for (std::size_t s = 0; s < scenarios; ++s) {
    exp::ScenarioSpec spec = exp::parse_scenario(
        "name=bench-" + std::to_string(s) +
        " kind=queueing util=0.3 servers=4 queries=2000 warmup=200 "
        "percentile=0.95 policy=none policy=r:20:0.5 policy=d:60");
    specs.push_back(std::move(spec));
  }
  return specs;
}

exp::SweepOptions bench_options() {
  exp::SweepOptions options;
  options.replications = 2;
  options.seed = 0x5eed;
  return options;
}

std::string bench_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "reissue_micro_dist";
  std::filesystem::create_directories(dir);
  return dir.string() + "/";
}

/// Planning is pure arithmetic over the spec list: it runs on every
/// worker and at merge, so it must stay trivial even for wide sweeps.
void BM_ShardPlan(benchmark::State& state) {
  const auto scenarios =
      bench_scenarios(static_cast<std::size_t>(state.range(0)));
  const auto options = bench_options();
  const dist::ShardRef shard{1, 16};
  for (auto _ : state) {
    const auto plan = exp::enumerate_cells(scenarios, options);
    auto range = dist::shard_cell_range(plan.size(), shard);
    benchmark::DoNotOptimize(plan.data());
    benchmark::DoNotOptimize(range);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_ShardPlan)->Arg(4)->Arg(64);

/// One whole shard: cell compute plus journal appends, atomic raw CSV and
/// manifest writes.  queries/sec here vs BM_ReplicationPipeline in
/// micro_sim is the sharding tax.
void BM_ShardWorker(benchmark::State& state) {
  const auto scenarios = bench_scenarios(1);
  const std::string raw = bench_dir() + "worker_shard.csv";
  dist::WorkerOptions worker;
  worker.shard = dist::ShardRef{0, 1};
  worker.raw_output = raw;
  worker.sweep = bench_options();
  std::size_t cells = 0;
  for (auto _ : state) {
    const auto report = dist::run_shard(scenarios, worker);
    cells = report.cells_total;
    benchmark::DoNotOptimize(report.manifest.hash);
  }
  const auto queries_per_run = static_cast<benchmark::IterationCount>(
      cells * worker.sweep.replications * scenarios[0].queries);
  state.SetItemsProcessed(state.iterations() * queries_per_run);
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * queries_per_run),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardWorker)->Unit(benchmark::kMillisecond);

/// Merge of a pre-built 3-shard sweep: validation + hashing + parsing +
/// reassembly, no simulation at all.
void BM_MergeShards(benchmark::State& state) {
  const auto scenarios = bench_scenarios(4);
  std::vector<std::string> paths;
  std::size_t rows = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    dist::WorkerOptions worker;
    worker.shard = dist::ShardRef{i, 3};
    worker.raw_output = bench_dir() + "merge_s" + std::to_string(i) + ".csv";
    worker.sweep = bench_options();
    rows += dist::run_shard(scenarios, worker).manifest.rows;
    paths.push_back(worker.raw_output);
  }
  for (auto _ : state) {
    const auto report = dist::merge_shards(paths);
    benchmark::DoNotOptimize(report.cells.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(rows));
}
BENCHMARK(BM_MergeShards)->Unit(benchmark::kMillisecond);

}  // namespace
