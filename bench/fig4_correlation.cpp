// Figure 4 reproduction: joint structure of (primary, reissue) response
// times on the Correlated vs Queueing workloads (Pareto(1.1, 2), Y = 0.5x
// + Z).  The paper plots scatter plots; we print a coarse 2-D density
// grid over log-spaced cells plus rank-correlation summaries.
//
// Paper-expected shape: the Correlated workload shows a clean linear band
// (strong correlation); queueing delays dampen it -- the Queueing panel is
// visibly noisier and its rank correlation lower.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "reissue/stats/correlation.hpp"
#include "reissue/sim/workloads.hpp"

using namespace reissue;

namespace {

void panel(const char* name, sim::Cluster& cluster, double sample_q) {
  // Sample pairs with an immediate (d=0) policy so the joint log covers
  // the whole primary distribution without conditioning.  On the Queueing
  // workload the sampling probability is kept moderate: reissuing every
  // query would double the load and swamp the correlation under queueing
  // noise beyond what the paper's scatter shows.
  const auto run = cluster.run(core::ReissuePolicy::single_r(0.0, sample_q));
  const auto& pairs = run.correlated_pairs;

  bench::header(std::string("Figure 4 (") + name + ") -- joint density");
  std::printf("pairs: %zu, Spearman rank correlation: %.3f\n", pairs.size(),
              stats::spearman(pairs));

  // Log-spaced 8x8 density grid over [t0, t1).
  constexpr int kCells = 8;
  const double t0 = 2.0;
  const double t1 = 2000.0;
  const double step = std::log(t1 / t0) / kCells;
  std::vector<std::vector<int>> grid(kCells, std::vector<int>(kCells, 0));
  auto cell = [&](double v) {
    const double u = std::log(std::clamp(v, t0, t1 * 0.999) / t0) / step;
    return std::clamp(static_cast<int>(u), 0, kCells - 1);
  };
  for (const auto& [x, y] : pairs) ++grid[cell(y)][cell(x)];

  std::printf("%10s", "reissue\\x");
  for (int cx = 0; cx < kCells; ++cx) {
    std::printf("%8.0f", t0 * std::exp((cx + 0.5) * step));
  }
  std::printf("\n");
  for (int cy = kCells - 1; cy >= 0; --cy) {
    std::printf("%10.0f", t0 * std::exp((cy + 0.5) * step));
    for (int cx = 0; cx < kCells; ++cx) {
      std::printf("%8d", grid[cy][cx]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 40000;
  opts.warmup = 4000;

  sim::Cluster correlated = sim::workloads::make_correlated(0.5, opts);
  panel("Correlated, r=0.5", correlated, 1.0);

  sim::Cluster queueing = sim::workloads::make_queueing(0.30, 0.5, opts);
  panel("Queueing, 30% util", queueing, 0.25);

  bench::note("expected: Queueing's rank correlation < Correlated's -- "
              "queueing noise dampens the service-time correlation (paper "
              "Fig. 4b vs 4a)");
  return 0;
}
