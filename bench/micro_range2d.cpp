// Microbenchmarks for the 2-D dominance-counting structures behind the
// correlation-aware optimizer (paper §4.2's orthogonal range queries).
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "reissue/stats/fenwick.hpp"
#include "reissue/stats/joint_samples.hpp"
#include "reissue/stats/merge_sort_tree.hpp"
#include "reissue/stats/rng.hpp"

using namespace reissue::stats;

namespace {

std::vector<std::pair<double, double>> points(std::size_t n,
                                              std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<double, double>> pts(n);
  for (auto& p : pts) {
    const double x = rng.uniform() * 1000.0;
    p = {x, 0.5 * x + rng.uniform() * 500.0};
  }
  return pts;
}

void BM_MergeSortTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = points(n, 1);
  for (auto _ : state) {
    MergeSortTree tree(pts);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_MergeSortTreeBuild)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 18)
    ->Complexity(benchmark::oNLogN);

void BM_MergeSortTreeQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const MergeSortTree tree(points(n, 2));
  Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.count(rng.uniform() * 1000.0, rng.uniform() * 1000.0));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_MergeSortTreeQuery)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 18)
    ->Complexity();

void BM_ConditionalCdf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const JointSamples joint(points(n, 4));
  Xoshiro256 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        joint.conditional_y_cdf(rng.uniform() * 1000.0,
                                rng.uniform() * 1000.0));
  }
}
BENCHMARK(BM_ConditionalCdf)->Arg(1 << 12)->Arg(1 << 16);

void BM_FenwickAddPrefix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  FenwickTree<> tree(n);
  Xoshiro256 rng(6);
  for (auto _ : state) {
    const auto idx = static_cast<std::size_t>(rng.below(n));
    tree.add(idx, 1);
    benchmark::DoNotOptimize(tree.prefix(idx));
  }
}
BENCHMARK(BM_FenwickAddPrefix)->Arg(1 << 12)->Arg(1 << 18);

}  // namespace
