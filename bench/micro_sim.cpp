// Microbenchmarks for the discrete-event simulation substrate: raw event
// throughput and full cluster-run cost (the unit of work every figure
// sweep repeats hundreds of times).
#include <benchmark/benchmark.h>

#include "reissue/sim/cluster.hpp"
#include "reissue/sim/event_queue.hpp"
#include "reissue/sim/workloads.hpp"

using namespace reissue;

namespace {

void BM_EventQueueChurn(benchmark::State& state) {
  // Schedule/execute cycles through a rolling horizon.
  for (auto _ : state) {
    sim::EventQueue events;
    int fired = 0;
    for (int i = 0; i < 1024; ++i) {
      events.schedule(static_cast<double>(i % 37), [&fired](double) {
        ++fired;
      });
    }
    events.run_to_completion();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueChurn);

void BM_ClusterRunNoReissue(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  sim::workloads::WorkloadOptions opts;
  opts.queries = queries;
  opts.warmup = queries / 10;
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.run(core::ReissuePolicy::none()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(queries));
}
BENCHMARK(BM_ClusterRunNoReissue)->Arg(10000)->Arg(40000);

void BM_ClusterRunSingleR(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  sim::workloads::WorkloadOptions opts;
  opts.queries = queries;
  opts.warmup = queries / 10;
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
  const auto policy = core::ReissuePolicy::single_r(30.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.run(policy));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(queries));
}
BENCHMARK(BM_ClusterRunSingleR)->Arg(10000)->Arg(40000);

void BM_ClusterRunQueueDisciplines(benchmark::State& state) {
  sim::workloads::SensitivityOptions opts;
  opts.service = stats::make_exponential(0.1);
  opts.queue = static_cast<sim::QueueDisciplineKind>(state.range(0));
  opts.base.queries = 10000;
  opts.base.warmup = 1000;
  sim::Cluster cluster = sim::workloads::make_sensitivity(opts);
  const auto policy = core::ReissuePolicy::single_r(10.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.run(policy));
  }
}
BENCHMARK(BM_ClusterRunQueueDisciplines)
    ->Arg(static_cast<int>(sim::QueueDisciplineKind::kFifo))
    ->Arg(static_cast<int>(sim::QueueDisciplineKind::kPrioritizedFifo))
    ->Arg(static_cast<int>(sim::QueueDisciplineKind::kRoundRobinConnections));

}  // namespace
