// Microbenchmarks for the discrete-event simulation substrate: per-
// distribution sampling (scalar vs batched inverse-CDF transforms), raw
// typed-event throughput, full cluster-run cost, and the experiment
// engine's replication pipeline (the unit of work every sweep cell
// repeats) in full vs streaming log mode at deep-tail scale.  The
// queries/sec counter is the figure recorded in BENCH_sim_throughput.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "reissue/exp/runner.hpp"
#include "reissue/exp/scenario.hpp"
#include "reissue/obs/counters.hpp"
#include "reissue/obs/trace_ring.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/event.hpp"
#include "reissue/sim/event_queue.hpp"
#include "reissue/sim/workloads.hpp"
#include "reissue/stats/distributions.hpp"

using namespace reissue;

namespace {

// --------------------------------------------------- sampling pipeline

/// The nine distribution families behind every service/arrival draw.  The
/// scalar/batch pair measures what Distribution::sample_batch buys: the
/// same RNG and libm work, minus the per-draw dependency chain.
stats::DistributionPtr bench_distribution(int family) {
  switch (family) {
    case 0: return stats::make_pareto(1.1, 2.0);
    case 1: return stats::make_lognormal(1.0, 1.0);
    case 2: return stats::make_exponential(0.1);
    case 3: return stats::make_weibull(0.8, 2.0);
    case 4: return stats::make_uniform(1.0, 9.0);
    case 5: return stats::make_constant(5.0);
    case 6: return stats::make_truncated(stats::make_pareto(1.1, 2.0), 5000.0);
    case 7: return stats::make_shifted(stats::make_exponential(0.5), 3.0);
    default: {
      std::vector<double> samples;
      for (int i = 0; i < 1024; ++i) samples.push_back(0.5 * i);
      return stats::make_empirical(std::move(samples));
    }
  }
}

constexpr const char* kFamilyNames[] = {
    "pareto",    "lognormal", "exp",     "weibull",  "uniform",
    "constant",  "trunc",     "shifted", "empirical"};

void BM_SampleScalar(benchmark::State& state) {
  const auto dist = bench_distribution(static_cast<int>(state.range(0)));
  stats::Xoshiro256 rng(0x5eed);
  std::vector<double> out(4096);
  for (auto _ : state) {
    for (double& v : out) v = dist->sample(rng);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(out.size()));
  state.SetLabel(kFamilyNames[state.range(0)]);
}
BENCHMARK(BM_SampleScalar)->DenseRange(0, 8);

void BM_SampleBatch(benchmark::State& state) {
  const auto dist = bench_distribution(static_cast<int>(state.range(0)));
  stats::Xoshiro256 rng(0x5eed);
  std::vector<double> out(4096);
  for (auto _ : state) {
    dist->sample_batch(out, rng);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(out.size()));
  state.SetLabel(kFamilyNames[state.range(0)]);
}
BENCHMARK(BM_SampleBatch)->DenseRange(0, 8);

void BM_EventQueueChurn(benchmark::State& state) {
  // Schedule/execute cycles through a rolling horizon.
  for (auto _ : state) {
    sim::EventQueue<sim::SimEvent> events;
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < 1024; ++i) {
      events.schedule(static_cast<double>(i % 37),
                      sim::SimEvent::reissue_stage(i, 0));
    }
    events.run_to_completion(
        [&fired](const sim::SimEvent&, double) { ++fired; });
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueChurn);

void BM_ClusterRunNoReissue(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  sim::workloads::WorkloadOptions opts;
  opts.queries = queries;
  opts.warmup = queries / 10;
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.run(core::ReissuePolicy::none()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(queries));
}
BENCHMARK(BM_ClusterRunNoReissue)->Arg(10000)->Arg(40000);

void BM_ClusterRunSingleR(benchmark::State& state) {
  const auto queries = static_cast<std::size_t>(state.range(0));
  sim::workloads::WorkloadOptions opts;
  opts.queries = queries;
  opts.warmup = queries / 10;
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
  const auto policy = core::ReissuePolicy::single_r(30.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.run(policy));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(queries));
}
BENCHMARK(BM_ClusterRunSingleR)->Arg(10000)->Arg(40000);

core::LogMode bench_log_mode(std::int64_t arg) {
  switch (arg) {
    case 0: return core::LogMode::kFull;
    case 1: return core::LogMode::kStreaming;
    default: return core::LogMode::kStreamingUnordered;
  }
}

constexpr const char* kModeNames[] = {"full", "replay", "completion"};

/// The experiment engine's unit of work — run_cell_replication — at 10^6
/// queries per cell.  Arg(0) selects the policy grid point, Arg(1) the
/// core::LogMode (0 = full logs + exact sorted percentiles, 1 = streaming
/// accumulators fed by the replay pass, 2 = completion-order streaming,
/// the sweep default).  The "queries/s" counter is the sweep-cell
/// throughput the ROADMAP tracks.
///
/// The setup-vs-run split: cold_ms times one replication on a freshly
/// constructed Cluster (workload build + cold simulation scratch: arena,
/// event storage, server pool), warm_ms one replication after the scratch
/// is warm — the steady-state cost every later replication of a sweep
/// cell pays.  setup_ms is their difference, i.e. what cell-granular
/// scheduling amortizes across a cell's replications.
void BM_ReplicationPipeline(benchmark::State& state) {
  constexpr std::size_t kQueries = 1000000;
  const bool reissue = state.range(0) != 0;
  const auto mode = bench_log_mode(state.range(1));
  sim::workloads::WorkloadOptions opts;
  opts.queries = kQueries;
  opts.warmup = kQueries / 10;
  const exp::PolicySpec spec = exp::parse_policy_spec(
      reissue ? "r:30:0.5" : "none");

  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto ms = [](auto d) {
    return std::chrono::duration<double, std::milli>(d).count();
  };
  const auto t0 = now();
  sim::Cluster fresh = sim::workloads::make_queueing(0.30, 0.5, opts);
  benchmark::DoNotOptimize(
      exp::run_cell_replication(fresh, spec, 0.99, opts.seed, mode));
  const auto t1 = now();
  benchmark::DoNotOptimize(
      exp::run_cell_replication(fresh, spec, 0.99, opts.seed, mode));
  const auto t2 = now();
  state.counters["cold_ms"] = ms(t1 - t0);
  state.counters["warm_ms"] = ms(t2 - t1);
  state.counters["setup_ms"] = ms((t1 - t0) - (t2 - t1));

  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::run_cell_replication(cluster, spec, 0.99, opts.seed, mode));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(kQueries));
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kQueries),
      benchmark::Counter::kIsRate);
  state.SetLabel(kModeNames[state.range(1)]);
}
BENCHMARK(BM_ReplicationPipeline)
    ->ArgNames({"reissue", "mode"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Unit(benchmark::kMillisecond);

/// The three metric modes head to head on one mid-size cell: full
/// sorted-log percentiles, replay-order streaming (the golden reference)
/// and completion-order streaming (the default).  Isolates what the
/// metric-accumulation strategy itself costs, with the workload, policy
/// and seed held fixed.
void BM_MetricModes(benchmark::State& state) {
  constexpr std::size_t kQueries = 100000;
  const auto mode = bench_log_mode(state.range(0));
  sim::workloads::WorkloadOptions opts;
  opts.queries = kQueries;
  opts.warmup = kQueries / 10;
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
  const exp::PolicySpec spec = exp::parse_policy_spec("r:30:0.5");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::run_cell_replication(cluster, spec, 0.99, opts.seed, mode));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(kQueries));
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kQueries),
      benchmark::Counter::kIsRate);
  state.SetLabel(kModeNames[state.range(0)]);
}
BENCHMARK(BM_MetricModes)
    ->ArgNames({"mode"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_OptimalInTheLoop(benchmark::State& state) {
  // Optimizer-in-the-loop cell cost: a full-log training run, the §4.1
  // scan (or the §4.2 correlated variant over the probed joint samples),
  // then the streaming measurement run -- everything an `optimal:*` sweep
  // cell pays beyond a fixed-policy cell.
  constexpr std::size_t kQueries = 100000;
  const bool correlated = state.range(0) != 0;
  sim::workloads::WorkloadOptions opts;
  opts.queries = kQueries;
  opts.warmup = kQueries / 10;
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
  const exp::PolicySpec spec = exp::parse_policy_spec(
      correlated ? "optimal:0.05:corr" : "optimal:0.05");
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp::run_cell_replication(
        cluster, spec, 0.99, opts.seed, core::LogMode::kStreaming));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(kQueries));
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kQueries),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OptimalInTheLoop)
    ->ArgNames({"corr"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Cost of the observability layer on the hot simulation loop.  Mode 0 is
/// the observed-build baseline with no observer attached (the `if
/// (observer)` null checks are all that remains); mode 1 attaches the
/// CountingObserver (cheapest live observer: a handful of increments per
/// event); mode 2 attaches the binary RingTraceObserver (every event
/// serialized into the overwrite-oldest ring).  The obs-off-vs-baseline
/// delta recorded in BENCH_sim_throughput.json comes from an interleaved
/// A/B against the pre-obs binary, not from this single-binary benchmark.
void BM_ObsModes(benchmark::State& state) {
  constexpr std::size_t kQueries = 100000;
  sim::workloads::WorkloadOptions opts;
  opts.queries = kQueries;
  opts.warmup = kQueries / 10;
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);
  const auto policy = core::ReissuePolicy::single_r(30.0, 0.5);

  obs::CountingObserver counting;
  obs::RingTraceObserver ring(std::size_t{1} << 20);
  const char* label = "off";
  switch (state.range(0)) {
    case 1:
      cluster.set_sim_observer(&counting);
      label = "counting";
      break;
    case 2:
      cluster.set_sim_observer(&ring);
      label = "ring-trace";
      break;
    default:
      break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.run(policy));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<benchmark::IterationCount>(kQueries));
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kQueries),
      benchmark::Counter::kIsRate);
  state.SetLabel(label);
}
BENCHMARK(BM_ObsModes)
    ->ArgNames({"obs"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_ClusterRunQueueDisciplines(benchmark::State& state) {
  sim::workloads::SensitivityOptions opts;
  opts.service = stats::make_exponential(0.1);
  opts.queue = static_cast<sim::QueueDisciplineKind>(state.range(0));
  opts.base.queries = 10000;
  opts.base.warmup = 1000;
  sim::Cluster cluster = sim::workloads::make_sensitivity(opts);
  const auto policy = core::ReissuePolicy::single_r(10.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster.run(policy));
  }
}
BENCHMARK(BM_ClusterRunQueueDisciplines)
    ->Arg(static_cast<int>(sim::QueueDisciplineKind::kFifo))
    ->Arg(static_cast<int>(sim::QueueDisciplineKind::kPrioritizedFifo))
    ->Arg(static_cast<int>(sim::QueueDisciplineKind::kRoundRobinConnections));

}  // namespace
