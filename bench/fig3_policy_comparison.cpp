// Figure 3 reproduction: SingleR vs SingleD across reissue budgets on the
// three §5.1 workloads (Independent, Correlated, Queueing; Pareto(1.1, 2)
// service times, r = 0.5 where correlated, 30% utilization for Queueing).
//
//   Fig. 3a -- P95 tail-latency reduction ratio vs reissue rate.
//   Fig. 3b -- remediation rate of the issued reissues.
//   Fig. 3c -- optimal SingleR reissue point: fraction of requests still
//              outstanding at d, and the reissue probability q.
//
// Paper-expected shape: SingleR >= SingleD everywhere, strictly better
// below ~15% budgets; SingleD useless below 5% (Independent) / 10%
// (Correlated) and actively harmful below ~10% on Queueing; SingleR's
// optimal q < 1 at small budgets and grows toward 1.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "reissue/core/optimizer.hpp"
#include "reissue/sim/metrics.hpp"
#include "reissue/sim/workloads.hpp"

using namespace reissue;

namespace {

constexpr double kPercentile = 0.95;

struct Row {
  double budget = 0.0;
  double ratio_single_r = 0.0;
  double ratio_single_d = 0.0;
  double remediation_r = 0.0;
  double remediation_d = 0.0;
  double outstanding_at_d = 0.0;
  double probability = 0.0;
  double measured_rate_r = 0.0;
};

enum class Kind { kIndependent, kCorrelated, kQueueing };

sim::Cluster make_workload(Kind kind, std::uint64_t seed) {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 40000;
  opts.warmup = 4000;
  opts.seed = seed;
  switch (kind) {
    case Kind::kIndependent:
      return sim::workloads::make_independent(opts);
    case Kind::kCorrelated:
      return sim::workloads::make_correlated(0.5, opts);
    case Kind::kQueueing:
      return sim::workloads::make_queueing(0.30, 0.5, opts);
  }
  throw std::logic_error("unreachable");
}

Row evaluate_budget(Kind kind, double budget) {
  sim::Cluster cluster = make_workload(kind, 0x5eed);
  const auto base =
      sim::evaluate_policy(cluster, core::ReissuePolicy::none(), kPercentile);

  Row row;
  row.budget = budget;
  if (budget <= 0.0) {
    row.ratio_single_r = row.ratio_single_d = 1.0;
    return row;
  }

  sim::PolicyEvaluation eval_r;
  sim::PolicyEvaluation eval_d;
  if (kind == Kind::kQueueing) {
    // Under queueing, both policies need adaptive refinement to satisfy
    // their budget (paper §5.1).
    eval_r = sim::tune_single_r(cluster, kPercentile, budget, 6).final_eval;
    eval_d = sim::tune_single_d(cluster, kPercentile, budget, 6).final_eval;
  } else {
    const auto probe = cluster.run(core::ReissuePolicy::single_r(0.0, budget));
    const auto rx = probe.primary_cdf();
    const auto opt = core::compute_optimal_single_r_correlated(
        rx, probe.joint(), kPercentile, budget);
    eval_r = sim::evaluate_policy(cluster, opt.policy(), kPercentile);
    eval_d = sim::evaluate_policy(
        cluster, core::single_d_for_budget(rx, budget), kPercentile);
  }

  row.ratio_single_r =
      sim::reduction_ratio(base.tail_latency, eval_r.tail_latency);
  row.ratio_single_d =
      sim::reduction_ratio(base.tail_latency, eval_d.tail_latency);
  row.remediation_r = eval_r.remediation_rate;
  row.remediation_d = eval_d.remediation_rate;
  row.probability = eval_r.policy.probability();
  row.measured_rate_r = eval_r.reissue_rate;

  // "% requests outstanding at d" measured against the primary
  // distribution the policy actually faced.
  const auto run = cluster.run(eval_r.policy);
  row.outstanding_at_d = run.primary_cdf().tail(eval_r.policy.delay());
  return row;
}

void run_workload(const char* name, Kind kind) {
  const std::vector<double> budgets{0.01, 0.02, 0.03, 0.05, 0.08,
                                    0.10, 0.15, 0.20, 0.30};
  const auto rows = bench::sweep<Row>(
      budgets.size(),
      [&](std::size_t i) { return evaluate_budget(kind, budgets[i]); });

  bench::header(std::string("Figure 3 (") + name + ")");
  std::printf(
      "%7s | %9s %9s | %7s %7s | %11s %6s %7s\n", "budget", "R-ratio",
      "D-ratio", "R-rem", "D-rem", "outstanding", "q", "R-rate");
  for (const auto& row : rows) {
    std::printf(
        "%6.1f%% | %9.3f %9.3f | %7.3f %7.3f | %10.1f%% %6.2f %6.1f%%\n",
        100.0 * row.budget, row.ratio_single_r, row.ratio_single_d,
        row.remediation_r, row.remediation_d, 100.0 * row.outstanding_at_d,
        row.probability, 100.0 * row.measured_rate_r);
  }
}

}  // namespace

int main() {
  bench::note("Fig 3a = R-ratio vs D-ratio columns; Fig 3b = R-rem/D-rem; "
              "Fig 3c = outstanding/q columns");
  run_workload("Independent", Kind::kIndependent);
  run_workload("Correlated, r=0.5", Kind::kCorrelated);
  run_workload("Queueing, 30% util", Kind::kQueueing);
  return 0;
}
