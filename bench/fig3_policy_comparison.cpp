// Figure 3 reproduction: SingleR vs SingleD across reissue budgets on the
// three §5.1 workloads (Independent, Correlated, Queueing; Pareto(1.1, 2)
// service times, r = 0.5 where correlated, 30% utilization for Queueing).
//
//   Fig. 3a -- P95 tail-latency reduction ratio vs reissue rate.
//   Fig. 3b -- remediation rate of the issued reissues.
//   Fig. 3c -- optimal SingleR reissue point: fraction of requests still
//              outstanding at d, and the reissue probability q.
//
// Runs on the exp:: experiment engine: every (workload x budget x policy)
// cell is replicated with deterministic seed substreams and fanned across
// threads, and the reduction ratios carry across-replication 95% CIs.
// Replications of a workload share per-replication seeds (common random
// numbers), so each ratio is computed pairwise against the same-seed
// baseline run.
//
// Paper-expected shape: SingleR >= SingleD everywhere, strictly better
// below ~15% budgets; SingleD useless below 5% (Independent) / 10%
// (Correlated) and actively harmful below ~10% on Queueing; SingleR's
// optimal q < 1 at small budgets and grows toward 1.
//
// usage: fig3_policy_comparison [replications=3] [threads=0] [queries=40000]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "reissue/exp/runner.hpp"
#include "reissue/stats/summary.hpp"

using namespace reissue;

namespace {

constexpr double kPercentile = 0.95;
const std::vector<double> kBudgets{0.01, 0.02, 0.03, 0.05, 0.08,
                                   0.10, 0.15, 0.20, 0.30};

exp::ScenarioSpec make_scenario(const std::string& name,
                                exp::WorkloadKind kind, double ratio,
                                std::size_t queries) {
  exp::ScenarioSpec spec;
  spec.name = name;
  spec.kind = kind;
  spec.utilization = 0.30;
  spec.ratio = ratio;
  spec.queries = queries;
  spec.warmup = queries / 10;
  spec.percentile = kPercentile;
  // Cell 0 is the baseline; cells 2i+1 / 2i+2 are SingleR / SingleD tuned
  // to budget i (paper §5.1 tunes both adaptively to meet the budget).
  spec.policies.push_back(exp::parse_policy_spec("none"));
  for (double budget : kBudgets) {
    spec.policies.push_back(exp::PolicySpec::tuned_single_r(budget));
    spec.policies.push_back(exp::PolicySpec::tuned_single_d(budget));
  }
  return spec;
}

/// Mean and 95% CI of the per-replication paired ratio base/policy.
stats::MeanInterval paired_ratio(const exp::CellResult& base,
                                 const exp::CellResult& cell) {
  stats::RunningStats ratios;
  for (std::size_t r = 0; r < cell.replications.size(); ++r) {
    const double policy_tail = cell.replications[r].tail;
    if (policy_tail > 0.0) {
      ratios.add(base.replications[r].tail / policy_tail);
    }
  }
  return stats::mean_ci95(ratios);
}

double mean_of(const exp::CellResult& cell, double exp::ReplicationMetrics::*field) {
  stats::RunningStats acc;
  for (const auto& rep : cell.replications) acc.add(rep.*field);
  return acc.mean();
}

double mean_probability(const exp::CellResult& cell) {
  stats::RunningStats acc;
  for (const auto& rep : cell.replications) {
    if (rep.policy.stage_count() == 1) acc.add(rep.policy.probability());
  }
  return acc.mean();
}

void print_workload(const char* title, const std::vector<exp::CellResult>& cells,
                    std::size_t first_cell) {
  bench::header(std::string("Figure 3 (") + title + ")");
  std::printf("%7s | %9s %6s %9s %6s | %7s %7s | %11s %6s %7s\n", "budget",
              "R-ratio", "+-", "D-ratio", "+-", "R-rem", "D-rem",
              "outstanding", "q", "R-rate");
  const exp::CellResult& base = cells[first_cell];
  for (std::size_t i = 0; i < kBudgets.size(); ++i) {
    const exp::CellResult& cell_r = cells[first_cell + 1 + 2 * i];
    const exp::CellResult& cell_d = cells[first_cell + 2 + 2 * i];
    const auto ratio_r = paired_ratio(base, cell_r);
    const auto ratio_d = paired_ratio(base, cell_d);
    std::printf(
        "%6.1f%% | %9.3f %6.3f %9.3f %6.3f | %7.3f %7.3f | %10.1f%% %6.2f "
        "%6.1f%%\n",
        100.0 * kBudgets[i], ratio_r.mean, ratio_r.half_width, ratio_d.mean,
        ratio_d.half_width,
        mean_of(cell_r, &exp::ReplicationMetrics::remediation),
        mean_of(cell_d, &exp::ReplicationMetrics::remediation),
        100.0 * mean_of(cell_r, &exp::ReplicationMetrics::outstanding_at_delay),
        mean_probability(cell_r),
        100.0 * mean_of(cell_r, &exp::ReplicationMetrics::reissue_rate));
  }
}

}  // namespace

int main(int argc, char** argv) {
  exp::SweepOptions options;
  options.replications =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 3;
  options.threads = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 0;
  const std::size_t queries =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 40000;

  const std::vector<exp::ScenarioSpec> scenarios = {
      make_scenario("independent", exp::WorkloadKind::kIndependent, 0.0,
                    queries),
      make_scenario("correlated", exp::WorkloadKind::kCorrelated, 0.5,
                    queries),
      make_scenario("queueing", exp::WorkloadKind::kQueueing, 0.5, queries),
  };

  bench::note("Fig 3a = R-ratio vs D-ratio columns (95% CI half-width in "
              "+-); Fig 3b = R-rem/D-rem; Fig 3c = outstanding/q columns");
  bench::note("replications=" + std::to_string(options.replications) +
              " queries=" + std::to_string(queries));

  const auto cells = exp::run_sweep(scenarios, options);
  const std::size_t cells_per_workload = 1 + 2 * kBudgets.size();
  print_workload("Independent", cells, 0 * cells_per_workload);
  print_workload("Correlated, r=0.5", cells, 1 * cells_per_workload);
  print_workload("Queueing, 30% util", cells, 2 * cells_per_workload);
  return 0;
}
