// Figure 5 reproduction: sensitivity of SingleR on the Queueing workload
// (Pareto(1.1, 2), 10 servers, 30% util; no service-time correlation
// unless stated).
//
//   Fig. 5a -- P95 vs the service-time correlation ratio r at a fixed 25%
//              reissue rate, with the (r-independent) no-reissue baseline.
//   Fig. 5b -- P95 vs reissue rate for Random / MinOfTwo / MinOfAll
//              load balancing.
//   Fig. 5c -- P95 vs reissue rate for Baseline FIFO / Prioritized FIFO /
//              Prioritized LIFO queue disciplines.
//
// All three panels are declared as exp:: scenarios and ground through one
// run_sweep call: the engine fans every (scenario x policy x replication)
// cell across threads with deterministic seed substreams, and each P95 is
// reported with an across-replication 95% CI.
//
// Paper-expected shape: 5a increases with r but stays below the baseline
// even at r=1; 5b better LB reduces the baseline but SingleR helps in all
// cases; 5c priority scheme has only modest impact.
//
// usage: fig5_sensitivity [replications=3] [threads=0] [queries=40000]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "reissue/exp/aggregate.hpp"
#include "reissue/exp/runner.hpp"

using namespace reissue;

namespace {

constexpr double kPercentile = 0.95;
const std::vector<double> kRatios{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
const std::vector<double> kRates{0.0, 0.05, 0.10, 0.20, 0.30, 0.50};

exp::ScenarioSpec base_scenario(const std::string& name, std::size_t queries) {
  exp::ScenarioSpec spec;
  spec.name = name;
  spec.kind = exp::WorkloadKind::kQueueing;
  spec.utilization = 0.30;
  spec.ratio = 0.0;
  spec.queries = queries;
  spec.warmup = queries / 10;
  spec.percentile = kPercentile;
  return spec;
}

/// Policy grid for one rate: the baseline for rate 0, else SingleR tuned
/// to the rate (5 adaptive trials, as the seed bench used).
exp::PolicySpec policy_for_rate(double rate) {
  if (rate <= 0.0) {
    return exp::PolicySpec::fixed_policy(core::ReissuePolicy::none());
  }
  return exp::PolicySpec::tuned_single_r(rate, 5);
}

struct Cell {
  stats::MeanInterval tail;
};

Cell summarize(const exp::CellResult& cell) {
  stats::RunningStats tails;
  for (const auto& rep : cell.replications) tails.add(rep.tail);
  return Cell{stats::mean_ci95(tails)};
}

}  // namespace

int main(int argc, char** argv) {
  exp::SweepOptions options;
  options.replications =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 3;
  options.threads = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 0;
  const std::size_t queries =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 40000;

  std::vector<exp::ScenarioSpec> scenarios;

  // 5a: one scenario per correlation ratio, SingleR tuned to a 25% rate;
  // the no-reissue baseline never draws Y, so a single baseline cell (on
  // the r=0 scenario) covers every ratio.
  for (double r : kRatios) {
    exp::ScenarioSpec spec = base_scenario("5a-r" + std::to_string(r).substr(0, 3),
                                           queries);
    spec.ratio = r;
    if (r == kRatios.front()) {
      spec.policies.push_back(policy_for_rate(0.0));
    }
    spec.policies.push_back(exp::PolicySpec::tuned_single_r(0.25, 5));
    scenarios.push_back(spec);
  }

  // 5b: one scenario per load balancer, one tuned cell per reissue rate.
  const std::vector<std::pair<const char*, sim::LoadBalancerKind>> balancers{
      {"random", sim::LoadBalancerKind::kRandom},
      {"min2", sim::LoadBalancerKind::kMinOfTwo},
      {"minall", sim::LoadBalancerKind::kMinOfAll}};
  for (const auto& [label, kind] : balancers) {
    exp::ScenarioSpec spec = base_scenario(std::string("5b-") + label, queries);
    spec.load_balancer = kind;
    for (double rate : kRates) spec.policies.push_back(policy_for_rate(rate));
    scenarios.push_back(spec);
  }

  // 5c: one scenario per queue discipline.
  const std::vector<std::pair<const char*, sim::QueueDisciplineKind>> queues{
      {"fifo", sim::QueueDisciplineKind::kFifo},
      {"prio-fifo", sim::QueueDisciplineKind::kPrioritizedFifo},
      {"prio-lifo", sim::QueueDisciplineKind::kPrioritizedLifo}};
  for (const auto& [label, kind] : queues) {
    exp::ScenarioSpec spec = base_scenario(std::string("5c-") + label, queries);
    spec.queue = kind;
    for (double rate : kRates) spec.policies.push_back(policy_for_rate(rate));
    scenarios.push_back(spec);
  }

  bench::note("replications=" + std::to_string(options.replications) +
              " queries=" + std::to_string(queries) +
              " (+- columns are 95% CI half-widths)");
  const auto cells = exp::run_sweep(scenarios, options);

  // Cells are scenario-major in declaration order.
  std::size_t cursor = 0;
  const Cell baseline = summarize(cells[cursor]);
  std::vector<Cell> by_ratio;
  for (std::size_t i = 0; i < kRatios.size(); ++i) {
    cursor = i == 0 ? 1 : cursor + 1;
    by_ratio.push_back(summarize(cells[cursor]));
  }
  ++cursor;

  bench::header("Figure 5a: P95 vs correlation ratio (reissue rate 25%)");
  std::printf("%6s  %12s %8s  %12s %8s\n", "r", "SingleR P95", "+-",
              "No-Reissue", "+-");
  for (std::size_t i = 0; i < kRatios.size(); ++i) {
    std::printf("%6.2f  %12.1f %8.1f  %12.1f %8.1f\n", kRatios[i],
                by_ratio[i].tail.mean, by_ratio[i].tail.half_width,
                baseline.tail.mean, baseline.tail.half_width);
  }
  bench::note("expected: SingleR P95 grows with r yet stays below the "
              "baseline even at r=1 (queueing delays remain hedgeable)");

  // 5b/5c cells: each scenario contributed exactly kRates.size() cells,
  // starting after the 5a block (`cursor`).
  const auto rate_panel_cells = [&](std::size_t scenario_offset,
                                    std::size_t variant, std::size_t rate) {
    return cursor + (scenario_offset + variant) * kRates.size() + rate;
  };

  bench::header("Figure 5b: P95 vs reissue rate per load balancer");
  std::printf("%7s  %10s %8s  %10s %8s  %10s %8s\n", "rate", "Random", "+-",
              "MinOfTwo", "+-", "MinOfAll", "+-");
  for (std::size_t i = 0; i < kRates.size(); ++i) {
    std::printf("%6.0f%%", 100.0 * kRates[i]);
    for (std::size_t v = 0; v < balancers.size(); ++v) {
      const Cell cell = summarize(cells[rate_panel_cells(0, v, i)]);
      std::printf("  %10.1f %8.1f", cell.tail.mean, cell.tail.half_width);
    }
    std::printf("\n");
  }
  bench::note("expected: MinOfAll < MinOfTwo < Random at rate 0; SingleR "
              "reduces P95 by ~2x or more in all cases (paper Fig. 5b)");

  bench::header("Figure 5c: P95 vs reissue rate per queue discipline");
  std::printf("%7s  %10s %8s  %10s %8s  %10s %8s\n", "rate", "FIFO", "+-",
              "PrioFIFO", "+-", "PrioLIFO", "+-");
  for (std::size_t i = 0; i < kRates.size(); ++i) {
    std::printf("%6.0f%%", 100.0 * kRates[i]);
    for (std::size_t v = 0; v < queues.size(); ++v) {
      const Cell cell =
          summarize(cells[rate_panel_cells(balancers.size(), v, i)]);
      std::printf("  %10.1f %8.1f", cell.tail.mean, cell.tail.half_width);
    }
    std::printf("\n");
  }
  bench::note("expected: modest differences between priority schemes "
              "(paper Fig. 5c)");
  return 0;
}
