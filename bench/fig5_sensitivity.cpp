// Figure 5 reproduction: sensitivity of SingleR on the Queueing workload
// (Pareto(1.1, 2), 10 servers, 30% util; no service-time correlation
// unless stated).
//
//   Fig. 5a -- P95 vs the service-time correlation ratio r at a fixed 25%
//              reissue rate, with the (r-independent) no-reissue baseline.
//   Fig. 5b -- P95 vs reissue rate for Random / MinOfTwo / MinOfAll
//              load balancing.
//   Fig. 5c -- P95 vs reissue rate for Baseline FIFO / Prioritized FIFO /
//              Prioritized LIFO queue disciplines.
//
// Paper-expected shape: 5a increases with r but stays below the baseline
// even at r=1; 5b better LB reduces the baseline but SingleR helps in all
// cases; 5c priority scheme has only modest impact.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "reissue/sim/metrics.hpp"
#include "reissue/sim/workloads.hpp"

using namespace reissue;

namespace {

constexpr double kPercentile = 0.95;

sim::workloads::SensitivityOptions base_options() {
  sim::workloads::SensitivityOptions opts;
  opts.utilization = 0.30;
  opts.base.queries = 40000;
  opts.base.warmup = 4000;
  return opts;
}

double tuned_p95(const sim::workloads::SensitivityOptions& opts,
                 double budget) {
  sim::Cluster cluster = sim::workloads::make_sensitivity(opts);
  if (budget <= 0.0) {
    return sim::evaluate_policy(cluster, core::ReissuePolicy::none(),
                                kPercentile)
        .tail_latency;
  }
  return sim::tune_single_r(cluster, kPercentile, budget, 5)
      .final_eval.tail_latency;
}

void figure_5a() {
  bench::header("Figure 5a: P95 vs correlation ratio (reissue rate 25%)");
  const std::vector<double> ratios{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  auto opts0 = base_options();
  sim::Cluster baseline_cluster = sim::workloads::make_sensitivity(opts0);
  const double baseline =
      sim::evaluate_policy(baseline_cluster, core::ReissuePolicy::none(),
                           kPercentile)
          .tail_latency;
  const auto rows = bench::sweep<double>(ratios.size(), [&](std::size_t i) {
    auto opts = base_options();
    opts.ratio = ratios[i];
    return tuned_p95(opts, 0.25);
  });
  std::printf("%6s  %12s  %12s\n", "r", "SingleR P95", "No-Reissue");
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    std::printf("%6.2f  %12.1f  %12.1f\n", ratios[i], rows[i], baseline);
  }
  bench::note("expected: SingleR P95 grows with r yet stays below the "
              "baseline even at r=1 (queueing delays remain hedgeable)");
}

void figure_5b() {
  bench::header("Figure 5b: P95 vs reissue rate per load balancer");
  const std::vector<double> rates{0.0, 0.05, 0.10, 0.20, 0.30, 0.50};
  const std::vector<sim::LoadBalancerKind> kinds{
      sim::LoadBalancerKind::kRandom, sim::LoadBalancerKind::kMinOfTwo,
      sim::LoadBalancerKind::kMinOfAll};

  std::vector<std::vector<double>> table(kinds.size());
  for (std::size_t kind_idx = 0; kind_idx < kinds.size(); ++kind_idx) {
    table[kind_idx] = bench::sweep<double>(rates.size(), [&](std::size_t i) {
      auto opts = base_options();
      opts.load_balancer = kinds[kind_idx];
      return tuned_p95(opts, rates[i]);
    });
  }
  std::printf("%7s  %10s  %10s  %10s\n", "rate", "Random", "MinOfTwo",
              "MinOfAll");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::printf("%6.0f%%  %10.1f  %10.1f  %10.1f\n", 100.0 * rates[i],
                table[0][i], table[1][i], table[2][i]);
  }
  bench::note("expected: MinOfAll < MinOfTwo < Random at rate 0; SingleR "
              "reduces P95 by ~2x or more in all cases (paper Fig. 5b)");
}

void figure_5c() {
  bench::header("Figure 5c: P95 vs reissue rate per queue discipline");
  const std::vector<double> rates{0.0, 0.05, 0.10, 0.20, 0.30, 0.50};
  const std::vector<sim::QueueDisciplineKind> kinds{
      sim::QueueDisciplineKind::kFifo,
      sim::QueueDisciplineKind::kPrioritizedFifo,
      sim::QueueDisciplineKind::kPrioritizedLifo};

  std::vector<std::vector<double>> table(kinds.size());
  for (std::size_t kind_idx = 0; kind_idx < kinds.size(); ++kind_idx) {
    table[kind_idx] = bench::sweep<double>(rates.size(), [&](std::size_t i) {
      auto opts = base_options();
      opts.queue = kinds[kind_idx];
      return tuned_p95(opts, rates[i]);
    });
  }
  std::printf("%7s  %13s  %16s  %16s\n", "rate", "BaselineFIFO",
              "PrioritizedFIFO", "PrioritizedLIFO");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::printf("%6.0f%%  %13.1f  %16.1f  %16.1f\n", 100.0 * rates[i],
                table[0][i], table[1][i], table[2][i]);
  }
  bench::note("expected: modest differences between priority schemes "
              "(paper Fig. 5c)");
}

}  // namespace

int main() {
  figure_5a();
  figure_5b();
  figure_5c();
  return 0;
}
