// Shared helpers for the figure-reproduction benches: aligned table
// printing and deterministic parallel sweeps (one RNG-seeded simulation
// per grid point, fanned across cores).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "reissue/runtime/executor.hpp"

namespace reissue::bench {

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("# %s\n", text.c_str());
}

/// Evaluates `eval(i)` for i in [0, n) in parallel and returns the results
/// in index order (deterministic regardless of thread count).
template <typename T>
std::vector<T> sweep(std::size_t n, const std::function<T(std::size_t)>& eval) {
  std::vector<T> results(n);
  runtime::parallel_for(n, [&](std::size_t i) { results[i] = eval(i); });
  return results;
}

}  // namespace reissue::bench
