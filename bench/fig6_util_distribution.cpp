// Figure 6 reproduction: P95 and P99 tail-latency reduction of SingleR vs
// reissue rate for LogNormal(1,1) and Exponential(0.1) service times at
// 20% / 30% / 50% utilization (Queueing workload shape: 10 servers,
// random LB, FIFO, no service-time correlation).
//
// Paper-expected shape: reduction is largest at low utilization but
// remains >= ~1.5x even at 50%; higher target percentiles gain more.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "reissue/sim/metrics.hpp"
#include "reissue/sim/workloads.hpp"

using namespace reissue;

namespace {

struct Cell {
  double p95_ratio = 0.0;
  double p99_ratio = 0.0;
};

Cell evaluate(stats::DistributionPtr dist, double util, double rate) {
  sim::workloads::SensitivityOptions opts;
  opts.service = std::move(dist);
  opts.utilization = util;
  opts.base.queries = 40000;
  opts.base.warmup = 4000;
  sim::Cluster cluster = sim::workloads::make_sensitivity(opts);

  const auto base = cluster.run(core::ReissuePolicy::none());
  const double base95 = base.tail_latency(0.95);
  const double base99 = base.tail_latency(0.99);
  if (rate <= 0.0) return Cell{1.0, 1.0};

  Cell cell;
  // Tune separately per percentile target, as the paper optimizes each.
  const auto t95 = sim::tune_single_r(cluster, 0.95, rate, 5);
  cell.p95_ratio = base95 / t95.final_eval.tail_latency;
  const auto t99 = sim::tune_single_r(cluster, 0.99, rate, 5);
  const auto eval99 =
      sim::evaluate_policy(cluster, t99.outcome.policy, 0.99);
  cell.p99_ratio = base99 / eval99.tail_latency;
  return cell;
}

void run_distribution(const char* name, const stats::DistributionPtr& dist) {
  const std::vector<double> utils{0.20, 0.30, 0.50};
  const std::vector<double> rates{0.0, 0.05, 0.10, 0.20, 0.30, 0.50};

  struct Key {
    double util;
    double rate;
  };
  std::vector<Key> grid;
  for (double util : utils) {
    for (double rate : rates) grid.push_back(Key{util, rate});
  }
  const auto cells = bench::sweep<Cell>(grid.size(), [&](std::size_t i) {
    return evaluate(dist, grid[i].util, grid[i].rate);
  });

  bench::header(std::string("Figure 6 (") + name + ")");
  std::printf("%7s |", "rate");
  for (double util : utils) std::printf("  P95@%2.0f%%  P99@%2.0f%% |",
                                        100 * util, 100 * util);
  std::printf("\n");
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::printf("%6.0f%% |", 100.0 * rates[r]);
    for (std::size_t u = 0; u < utils.size(); ++u) {
      const auto& cell = cells[u * rates.size() + r];
      std::printf("  %7.2f  %7.2f |", cell.p95_ratio, cell.p99_ratio);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::note("values are tail-latency reduction ratios (baseline / tuned "
              "SingleR); 1.00 = no change");
  run_distribution("LogNormal(1,1)", stats::make_lognormal(1.0, 1.0));
  run_distribution("Exponential(0.1)", stats::make_exponential(0.1));
  bench::note("expected: ratios fall with utilization, rise with target "
              "percentile; >= ~1.5x persists at 50% util (paper Fig. 6)");
  return 0;
}
