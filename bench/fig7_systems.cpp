// Figure 7 reproduction: the paper's system experiments on the Redis-like
// set-intersection workload and the Lucene-like search workload (both
// substrates execute real data-structure work; service times are replayed
// through the 10-server DES cluster with the paper's client mechanism).
//
//   Fig. 7a -- P99 vs reissue rate (0..6%), SingleR vs SingleD, 40% util.
//   Fig. 7b -- P99 vs reissue rate at 20% / 40% / 60% utilization.
//   Fig. 7c -- best P99 vs utilization: budget found by the Fig. 8 binary
//              search vs the no-reissue baseline.
//
// Paper-expected shape: both policies beat the baseline; SingleR strictly
// better at small rates with the gap closing (q -> 1) as rates grow;
// interior optimal budgets (~5-8%); significant reduction at every
// utilization 20-60%.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "reissue/core/budget_search.hpp"
#include "reissue/sim/metrics.hpp"
#include "reissue/systems/bridge.hpp"

using namespace reissue;

namespace {

constexpr double kPercentile = 0.99;

enum class System { kRedis, kLucene };

systems::SystemHarness make_harness(System system, double utilization,
                                    std::size_t queries = 25000,
                                    std::uint64_t seed = 0x5eed) {
  systems::SystemHarnessOptions options;
  options.utilization = utilization;
  options.servers = 10;
  options.queries = queries;
  options.warmup = queries / 10;
  options.seed = seed;
  if (system == System::kRedis) {
    return systems::make_redis_harness(options);
  }
  return systems::make_lucene_harness(options);
}

/// Averages a per-harness measurement over two arrival seeds to damp the
/// run-to-run noise of tail estimates.
double seed_avg(System system, double utilization, std::size_t queries,
                const std::function<double(systems::SystemHarness&)>& f) {
  double total = 0.0;
  for (std::uint64_t seed : {0x5eedull, 0xfeedull}) {
    auto harness = make_harness(system, utilization, queries, seed);
    total += f(harness);
  }
  return total / 2.0;
}

void figure_7a(System system, const char* name) {
  bench::header(std::string("Figure 7a (") + name +
                "): SingleR vs SingleD P99 at 40% utilization");
  const std::vector<double> rates{0.01, 0.02, 0.03, 0.04, 0.05, 0.06};

  struct Row {
    double baseline = 0.0;
    double single_r = 0.0;
    double single_d = 0.0;
    double q = 0.0;
  };
  const auto rows = bench::sweep<Row>(rates.size(), [&](std::size_t i) {
    Row row;
    row.baseline = seed_avg(system, 0.40, 25000, [&](auto& harness) {
      return sim::evaluate_policy(harness.cluster,
                                  core::ReissuePolicy::none(), kPercentile)
          .tail_latency;
    });
    row.single_r = seed_avg(system, 0.40, 25000, [&](auto& harness) {
      const auto r =
          sim::tune_single_r(harness.cluster, kPercentile, rates[i], 5);
      row.q = r.outcome.policy.probability();
      return r.final_eval.tail_latency;
    });
    row.single_d = seed_avg(system, 0.40, 25000, [&](auto& harness) {
      return sim::tune_single_d(harness.cluster, kPercentile, rates[i], 5)
          .final_eval.tail_latency;
    });
    return row;
  });

  std::printf("%7s  %10s  %12s  %12s  %6s\n", "rate", "baseline",
              "SingleR P99", "SingleD P99", "q");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::printf("%6.0f%%  %10.1f  %12.1f  %12.1f  %6.2f\n",
                100.0 * rates[i], rows[i].baseline, rows[i].single_r,
                rows[i].single_d, rows[i].q);
  }
}

void figure_7b(System system, const char* name) {
  bench::header(std::string("Figure 7b (") + name +
                "): P99 vs reissue rate at 20/40/60% utilization");
  const std::vector<double> utils{0.20, 0.40, 0.60};
  const std::vector<double> rates{0.0, 0.02, 0.04, 0.08, 0.15, 0.30};

  struct Key {
    double util;
    double rate;
  };
  std::vector<Key> grid;
  for (double util : utils) {
    for (double rate : rates) grid.push_back(Key{util, rate});
  }
  const auto cells = bench::sweep<double>(grid.size(), [&](std::size_t i) {
    auto harness = make_harness(system, grid[i].util, 20000);
    if (grid[i].rate <= 0.0) {
      return sim::evaluate_policy(harness.cluster,
                                  core::ReissuePolicy::none(), kPercentile)
          .tail_latency;
    }
    return sim::tune_single_r(harness.cluster, kPercentile, grid[i].rate, 4)
        .final_eval.tail_latency;
  });

  std::printf("%7s", "rate");
  for (double util : utils) std::printf("  %8.0f%%", 100.0 * util);
  std::printf("\n");
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::printf("%6.0f%%", 100.0 * rates[r]);
    for (std::size_t u = 0; u < utils.size(); ++u) {
      std::printf("  %9.1f", cells[u * rates.size() + r]);
    }
    std::printf("\n");
  }
}

void figure_7c(System system, const char* name) {
  bench::header(std::string("Figure 7c (") + name +
                "): best-budget P99 vs utilization");
  const std::vector<double> utils{0.20, 0.30, 0.40, 0.50, 0.60};

  struct Row {
    double baseline = 0.0;
    double best = 0.0;
    double budget = 0.0;
  };
  const auto rows = bench::sweep<Row>(utils.size(), [&](std::size_t i) {
    Row row;
    row.baseline = seed_avg(system, utils[i], 20000, [&](auto& harness) {
      return sim::evaluate_policy(harness.cluster,
                                  core::ReissuePolicy::none(), kPercentile)
          .tail_latency;
    });
    core::BudgetSearchConfig config;
    config.max_trials = 8;
    config.initial_delta = 0.02;
    config.max_budget = 0.30;
    const auto outcome = core::search_optimal_budget(
        [&](double budget) {
          if (budget <= 0.0) return row.baseline;
          return seed_avg(system, utils[i], 20000, [&](auto& harness) {
            return sim::tune_single_r(harness.cluster, kPercentile, budget, 3)
                .final_eval.tail_latency;
          });
        },
        config);
    row.best = outcome.best_tail_latency;
    row.budget = outcome.best_budget;
    return row;
  });

  std::printf("%6s  %12s  %16s  %12s\n", "util", "No Reissue",
              "Best Reissue P99", "best budget");
  for (std::size_t i = 0; i < utils.size(); ++i) {
    std::printf("%5.0f%%  %12.1f  %16.1f  %11.1f%%\n", 100.0 * utils[i],
                rows[i].baseline, rows[i].best, 100.0 * rows[i].budget);
  }
}

}  // namespace

int main() {
  for (auto [system, name] : {std::pair{System::kRedis, "Redis-like"},
                              std::pair{System::kLucene, "Lucene-like"}}) {
    figure_7a(system, name);
    figure_7b(system, name);
    figure_7c(system, name);
  }
  bench::note("paper: Redis P99 900->~400 ms at 40% util with ~3.5% "
              "SingleR budget (SingleD needs >= 5%); Lucene 433->339 ms at "
              "4%; gains persist at 60% util");
  return 0;
}
