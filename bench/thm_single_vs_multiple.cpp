// Section 3 numerical validation: the optimal SingleR and DoubleR policies
// achieve the same kth-percentile tail latency under equal budgets
// (Theorem 3.1; Theorem 3.2 extends to MultipleR by induction).
//
// For each (distribution, percentile, budget) we report the best SingleR
// tail latency (Fig. 1 optimizer, evaluated with the shared analytic
// model) against a constrained DoubleR grid search.  Expected: the
// DoubleR advantage column is ~0 everywhere (grid noise only).
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "reissue/core/multi_optimizer.hpp"
#include "reissue/core/optimizer.hpp"
#include "reissue/core/success_rate.hpp"
#include "reissue/stats/distributions.hpp"

using namespace reissue;

namespace {

struct Case {
  const char* dist_name;
  stats::DistributionPtr dist;
  double k;
  double budget;
};

struct Row {
  double single_tail = 0.0;
  double double_tail = 0.0;
  double double_budget = 0.0;
  std::size_t double_stages = 0;
};

Row evaluate(const Case& c) {
  stats::Xoshiro256 rng(0x3147);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(c.dist->sample(rng));
    ys.push_back(c.dist->sample(rng));
  }
  const stats::EmpiricalCdf rx(std::move(xs));
  const stats::EmpiricalCdf ry(std::move(ys));

  Row row;
  const auto single = core::compute_optimal_single_r(rx, ry, c.k, c.budget);
  row.single_tail = core::policy_tail_latency(
      rx, ry, core::ReissuePolicy::single_r(single.delay, single.probability),
      c.k);
  core::DoubleRSearchConfig search;
  search.delay_grid = 48;
  search.q1_grid = 48;
  const auto dbl = core::compute_optimal_double_r(rx, ry, c.k, c.budget, search);
  row.double_tail = dbl.tail_latency;
  row.double_budget = dbl.budget_spent;
  row.double_stages = dbl.policy.stage_count();
  return row;
}

}  // namespace

int main() {
  const std::vector<Case> cases{
      {"Pareto(1.1,2)", stats::make_pareto(1.1, 2.0), 0.95, 0.02},
      {"Pareto(1.1,2)", stats::make_pareto(1.1, 2.0), 0.95, 0.10},
      {"Pareto(1.1,2)", stats::make_pareto(1.1, 2.0), 0.99, 0.05},
      {"LogNormal(1,1)", stats::make_lognormal(1.0, 1.0), 0.95, 0.05},
      {"LogNormal(1,1)", stats::make_lognormal(1.0, 1.0), 0.95, 0.20},
      {"LogNormal(1,1)", stats::make_lognormal(1.0, 1.0), 0.99, 0.10},
      {"Exp(0.1)", stats::make_exponential(0.1), 0.95, 0.05},
      {"Exp(0.1)", stats::make_exponential(0.1), 0.95, 0.25},
      {"Exp(0.1)", stats::make_exponential(0.1), 0.99, 0.02},
  };

  const auto rows = bench::sweep<Row>(
      cases.size(), [&](std::size_t i) { return evaluate(cases[i]); });

  bench::header("Theorem 3.1/3.2 validation: optimal SingleR == optimal "
                "DoubleR (same budget)");
  std::printf("%-15s %5s %7s | %11s %11s %11s %7s\n", "distribution", "k",
              "budget", "SingleR t*", "DoubleR t*", "advantage", "spent");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const double adv =
        (rows[i].single_tail - rows[i].double_tail) / rows[i].single_tail;
    std::printf("%-15s %5.2f %6.1f%% | %11.2f %11.2f %10.2f%% %6.1f%%\n",
                cases[i].dist_name, cases[i].k, 100.0 * cases[i].budget,
                rows[i].single_tail, rows[i].double_tail, 100.0 * adv,
                100.0 * rows[i].double_budget);
  }
  bench::note("expected: advantage ~ 0 everywhere (theorem); small "
              "positives/negatives are grid + sampling discretization");
  return 0;
}
