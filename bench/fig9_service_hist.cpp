// Figure 9 reproduction: service-time distributions of the Redis-like
// set-intersection and Lucene-like search workloads, discretized into
// 20 ms bins (log-count axis in the paper; we print raw counts).
//
// Paper-expected shape:
//   Redis  -- mean 2.366 ms, sigma 8.64; >98% of queries under 10 ms with
//             a handful (~20 of 40000) beyond 150 ms (giant set pairs).
//   Lucene -- mean 39.73 ms, sigma 21.88; ~90% between 1 and 70 ms, ~1%
//             above 100 ms.
#include <cstdio>

#include "bench_util.hpp"
#include "reissue/stats/histogram.hpp"
#include "reissue/systems/bridge.hpp"

using namespace reissue;

namespace {

void panel(const char* name, const systems::ServiceTrace& trace,
           double slow_threshold_ms) {
  bench::header(std::string("Figure 9 (") + name + ")");
  std::printf("mean %.3f ms  stddev %.3f ms  (n = %zu)\n", trace.mean_ms,
              trace.stddev_ms, trace.service_ms.size());

  stats::Histogram hist(0.0, 20.0, 13);  // 20 ms bins to 260 ms, as Fig. 9
  std::size_t slow = 0;
  for (double v : trace.service_ms) {
    hist.add(v);
    if (v > slow_threshold_ms) ++slow;
  }
  std::printf("queries above %.0f ms: %zu (%.3f%%)\n", slow_threshold_ms,
              slow, 100.0 * static_cast<double>(slow) /
                        static_cast<double>(trace.service_ms.size()));
  std::printf("%s", hist.to_table("service time (ms) / count").c_str());
}

}  // namespace

int main() {
  systems::SystemHarnessOptions options;
  options.queries = 40000;  // paper: 40000-query traces
  options.warmup = 4000;

  const auto redis = systems::make_redis_harness(options);
  panel("Redis set-intersection", redis.trace, 150.0);

  const auto lucene = systems::make_lucene_harness(options);
  panel("Lucene search", lucene.trace, 100.0);
  return 0;
}
