// Microbenchmarks for the policy optimizer (paper §4.1 complexity claims):
// ComputeOptimalSingleR is Theta(N + sort N); the correlation-aware
// variant is Theta(N log N) (log^2 per conditional query here).  The
// .complexity() reports let you verify the scaling directly.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "reissue/core/multi_optimizer.hpp"
#include "reissue/core/optimizer.hpp"
#include "reissue/stats/distributions.hpp"

using namespace reissue;

namespace {

std::vector<double> samples(std::size_t n, std::uint64_t seed) {
  const auto dist = stats::make_pareto(1.1, 2.0);
  stats::Xoshiro256 rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(dist->sample(rng));
  return out;
}

void BM_ComputeOptimalSingleR(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const stats::EmpiricalCdf rx(samples(n, 1));
  const stats::EmpiricalCdf ry(samples(n, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_optimal_single_r(rx, ry, 0.95, 0.10));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_ComputeOptimalSingleR)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 18)
    ->Complexity(benchmark::oNLogN);

void BM_EcdfConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto raw = samples(n, 3);
  for (auto _ : state) {
    stats::EmpiricalCdf cdf(raw);
    benchmark::DoNotOptimize(cdf.quantile(0.99));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_EcdfConstruction)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 18)
    ->Complexity(benchmark::oNLogN);

void BM_ComputeOptimalSingleRCorrelated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto xs = samples(n, 4);
  const auto zs = samples(n, 5);
  std::vector<std::pair<double, double>> pairs(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs[i] = {xs[i], 0.5 * xs[i] + zs[i]};
  }
  const stats::JointSamples joint(std::move(pairs));
  const stats::EmpiricalCdf rx(xs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_optimal_single_r_correlated(rx, joint, 0.95, 0.10));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_ComputeOptimalSingleRCorrelated)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Complexity();

void BM_BruteForceReference(benchmark::State& state) {
  // The O(N^2) exhaustive optimizer, for contrast (tests-only path).
  const auto n = static_cast<std::size_t>(state.range(0));
  const stats::EmpiricalCdf rx(samples(n, 6));
  const stats::EmpiricalCdf ry(samples(n, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_optimal_single_r_brute(rx, ry, 0.95, 0.10));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_BruteForceReference)
    ->RangeMultiplier(4)
    ->Range(1 << 6, 1 << 10)
    ->Complexity(benchmark::oNSquared);

void BM_DoubleRGridSearch(benchmark::State& state) {
  const stats::EmpiricalCdf rx(samples(2000, 8));
  const stats::EmpiricalCdf ry(samples(2000, 9));
  core::DoubleRSearchConfig config;
  config.delay_grid = static_cast<std::size_t>(state.range(0));
  config.q1_grid = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_optimal_double_r(rx, ry, 0.95, 0.10, config));
  }
}
BENCHMARK(BM_DoubleRGridSearch)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
