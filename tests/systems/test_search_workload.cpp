#include "reissue/systems/search_workload.hpp"

#include <gtest/gtest.h>

namespace reissue::systems {
namespace {

SearchWorkloadParams small_params() {
  SearchWorkloadParams params;
  params.distinct_queries = 300;
  params.min_rank = 50;
  params.hot_min_rank = 10;
  return params;
}

TEST(QueryPool, RespectsShape) {
  const auto pool = make_query_pool(2000, small_params());
  EXPECT_EQ(pool.size(), 300u);
  for (const auto& query : pool) {
    // A hot term may be appended on top of the ordinary 1-4 terms.
    EXPECT_GE(query.terms.size(), small_params().min_terms);
    EXPECT_LE(query.terms.size(), small_params().max_terms + 1);
    for (auto term : query.terms) {
      EXPECT_GE(term, small_params().hot_min_rank);
      EXPECT_LT(term, 2000u);
    }
  }
}

TEST(QueryPool, DeterministicForSeed) {
  const auto a = make_query_pool(2000, small_params());
  const auto b = make_query_pool(2000, small_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].terms, b[i].terms);
  }
}

TEST(QueryPool, RejectsBadParams) {
  SearchWorkloadParams params = small_params();
  params.distinct_queries = 0;
  EXPECT_THROW(make_query_pool(2000, params), std::invalid_argument);
  params = small_params();
  params.min_terms = 0;
  EXPECT_THROW(make_query_pool(2000, params), std::invalid_argument);
  params = small_params();
  params.max_terms = params.min_terms - 1;
  EXPECT_THROW(make_query_pool(2000, params), std::invalid_argument);
  params = small_params();
  params.min_rank = 2000;
  EXPECT_THROW(make_query_pool(2000, params), std::invalid_argument);
  params = small_params();
  params.hot_min_rank = params.min_rank;
  EXPECT_THROW(make_query_pool(2000, params), std::invalid_argument);
  params = small_params();
  params.hot_query_fraction = 1.5;
  EXPECT_THROW(make_query_pool(2000, params), std::invalid_argument);
}

TEST(QueryTrace, IndicesInRange) {
  const auto trace = make_query_trace(300, 5000, 1);
  EXPECT_EQ(trace.size(), 5000u);
  for (auto idx : trace) EXPECT_LT(idx, 300u);
  EXPECT_THROW(make_query_trace(0, 10), std::invalid_argument);
}

TEST(ExecuteTrace, MemoizationIsConsistent) {
  CorpusParams corpus_params;
  corpus_params.documents = 1000;
  corpus_params.vocabulary = 2000;
  const auto corpus = make_corpus(corpus_params);
  const InvertedIndex index(corpus);
  const Searcher searcher(index);
  const auto pool = make_query_pool(corpus.vocabulary, small_params());
  const auto trace = make_query_trace(pool.size(), 2000, 2);
  const auto ops = execute_search_trace(searcher, pool, trace);
  ASSERT_EQ(ops.size(), trace.size());
  // Identical trace entries must cost identical ops.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    for (std::size_t j = i + 1; j < std::min(trace.size(), i + 50); ++j) {
      if (trace[i] == trace[j]) {
        ASSERT_EQ(ops[i], ops[j]);
      }
    }
  }
  for (auto o : ops) EXPECT_GT(o, 0u);
}

TEST(ExecuteTrace, OutOfRangeIndexThrows) {
  CorpusParams corpus_params;
  corpus_params.documents = 100;
  corpus_params.vocabulary = 500;
  const auto corpus = make_corpus(corpus_params);
  const InvertedIndex index(corpus);
  const Searcher searcher(index);
  SearchWorkloadParams wl;
  wl.distinct_queries = 10;
  wl.min_rank = 5;
  wl.hot_min_rank = 2;
  const auto pool = make_query_pool(corpus.vocabulary, wl);
  const std::vector<std::uint32_t> bad_trace{0, 1, 99};
  EXPECT_THROW(execute_search_trace(searcher, pool, bad_trace),
               std::out_of_range);
}

TEST(ExecuteTrace, ServiceCostTailIsLighterThanRedis) {
  // The Lucene-like workload should have p99/mean well under 10 -- the
  // paper's search distribution is light-tailed compared to Redis's.
  CorpusParams corpus_params;
  corpus_params.documents = 5000;
  corpus_params.vocabulary = 8000;
  const auto corpus = make_corpus(corpus_params);
  const InvertedIndex index(corpus);
  const Searcher searcher(index);
  SearchWorkloadParams wl;
  wl.distinct_queries = 1000;
  wl.min_rank = 100;
  wl.hot_min_rank = 40;
  const auto pool = make_query_pool(corpus.vocabulary, wl);
  const auto trace = make_query_trace(pool.size(), 10000, 3);
  const auto ops = execute_search_trace(searcher, pool, trace);
  double mean = 0.0;
  std::vector<double> costs;
  costs.reserve(ops.size());
  for (auto o : ops) {
    mean += static_cast<double>(o);
    costs.push_back(static_cast<double>(o));
  }
  mean /= static_cast<double>(ops.size());
  std::sort(costs.begin(), costs.end());
  const double p99 = costs[costs.size() * 99 / 100];
  EXPECT_LT(p99 / mean, 12.0);
  EXPECT_GT(p99 / mean, 1.2);
}

}  // namespace
}  // namespace reissue::systems
