#include "reissue/systems/bridge.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace reissue::systems {
namespace {

SystemHarnessOptions quick_options() {
  SystemHarnessOptions options;
  options.queries = 6000;
  options.warmup = 600;
  options.servers = 4;
  return options;
}

RedisDatasetParams quick_redis() {
  RedisDatasetParams params;
  params.sets = 200;
  params.universe = 200000;
  params.max_cardinality = 60000;
  return params;
}

LuceneHarnessParams quick_lucene() {
  LuceneHarnessParams params;
  params.corpus.documents = 4000;
  params.corpus.vocabulary = 6000;
  params.workload.distinct_queries = 500;
  return params;
}

TEST(CalibrateTrace, HitsTargetMeanExactly) {
  const std::vector<std::uint64_t> ops{100, 200, 300, 400};
  const auto trace = calibrate_trace(ops, 10.0);
  ASSERT_EQ(trace.service_ms.size(), 4u);
  const double mean =
      std::accumulate(trace.service_ms.begin(), trace.service_ms.end(), 0.0) /
      4.0;
  EXPECT_NEAR(mean, 10.0, 1e-9);
  // Shape preserved: ratios of entries match ratios of ops.
  EXPECT_NEAR(trace.service_ms[3] / trace.service_ms[0], 4.0, 1e-9);
  EXPECT_NEAR(trace.ms_per_op * 250.0, 10.0, 1e-9);
}

TEST(CalibrateTrace, RejectsBadInput) {
  EXPECT_THROW(calibrate_trace({}, 1.0), std::invalid_argument);
  EXPECT_THROW(calibrate_trace({1, 2}, 0.0), std::invalid_argument);
  EXPECT_THROW(calibrate_trace({0, 0}, 1.0), std::invalid_argument);
}

TEST(RedisHarness, TraceMatchesPaperMean) {
  const auto harness = make_redis_harness(quick_options(), quick_redis());
  EXPECT_EQ(harness.trace.service_ms.size(), quick_options().queries);
  EXPECT_NEAR(harness.trace.mean_ms, kRedisMeanServiceMs, 1e-9);
  // The paper reports sigma ~3.7x the mean for this workload; require a
  // strongly skewed trace without pinning the exact ratio.
  EXPECT_GT(harness.trace.stddev_ms, harness.trace.mean_ms);
}

TEST(RedisHarness, ClusterRunsAndProducesLogs) {
  auto harness = make_redis_harness(quick_options(), quick_redis());
  const auto result = harness.cluster.run(core::ReissuePolicy::none());
  EXPECT_EQ(result.queries,
            quick_options().queries - quick_options().warmup);
  EXPECT_GT(result.tail_latency(0.99), harness.trace.mean_ms);
}

TEST(RedisHarness, UtilizationInTargetRegime) {
  SystemHarnessOptions options = quick_options();
  options.utilization = 0.40;
  options.queries = 12000;
  options.warmup = 1000;
  auto harness = make_redis_harness(options, quick_redis());
  const auto result = harness.cluster.run(core::ReissuePolicy::none());
  EXPECT_GT(result.utilization, 0.25);
  EXPECT_LT(result.utilization, 0.55);
}

TEST(LuceneHarness, TraceMatchesPaperMoments) {
  const auto harness = make_lucene_harness(quick_options(), quick_lucene());
  EXPECT_NEAR(harness.trace.mean_ms, kLuceneMeanServiceMs, 1e-9);
  // Paper: sigma 21.88 on mean 39.73 -- light tail.  Accept a band.
  EXPECT_LT(harness.trace.stddev_ms, 2.5 * harness.trace.mean_ms);
}

TEST(LuceneHarness, ReissueHelpsTheTail) {
  SystemHarnessOptions options = quick_options();
  options.queries = 12000;
  options.warmup = 1000;
  options.utilization = 0.40;
  auto harness = make_lucene_harness(options, quick_lucene());
  const auto base = harness.cluster.run(core::ReissuePolicy::none());
  const double d =
      stats::EmpiricalCdf(base.primary_latencies).quantile(0.90);
  const auto hedged =
      harness.cluster.run(core::ReissuePolicy::single_r(d, 0.5));
  EXPECT_LT(hedged.tail_latency(0.99), base.tail_latency(0.99));
}

TEST(Harnesses, DeterministicAcrossConstruction) {
  auto a = make_redis_harness(quick_options(), quick_redis());
  auto b = make_redis_harness(quick_options(), quick_redis());
  ASSERT_EQ(a.trace.service_ms.size(), b.trace.service_ms.size());
  for (std::size_t i = 0; i < a.trace.service_ms.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.trace.service_ms[i], b.trace.service_ms[i]);
  }
  const auto ra = a.cluster.run(core::ReissuePolicy::single_r(5.0, 0.5));
  const auto rb = b.cluster.run(core::ReissuePolicy::single_r(5.0, 0.5));
  EXPECT_EQ(ra.reissues_issued, rb.reissues_issued);
  EXPECT_DOUBLE_EQ(ra.tail_latency(0.99), rb.tail_latency(0.99));
}

}  // namespace
}  // namespace reissue::systems
