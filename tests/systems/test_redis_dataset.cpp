#include "reissue/systems/redis_dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "reissue/stats/summary.hpp"

namespace reissue::systems {
namespace {

RedisDatasetParams small_params() {
  RedisDatasetParams params;
  params.sets = 100;
  params.universe = 100000;
  params.max_cardinality = 30000;
  return params;
}

TEST(RedisDataset, BuildsRequestedShape) {
  const auto dataset = make_redis_dataset(small_params());
  EXPECT_EQ(dataset.keys.size(), 100u);
  EXPECT_EQ(dataset.cardinalities.size(), 100u);
  EXPECT_EQ(dataset.store.size(), 100u);
  for (std::size_t i = 0; i < dataset.keys.size(); ++i) {
    const auto* set = dataset.store.get(dataset.keys[i]);
    ASSERT_NE(set, nullptr);
    EXPECT_EQ(set->size(), dataset.cardinalities[i]);
    EXPECT_GE(set->size(), small_params().min_cardinality);
    EXPECT_LE(set->size(), small_params().max_cardinality);
  }
}

TEST(RedisDataset, MembersWithinUniverse) {
  auto params = small_params();
  params.sets = 20;
  const auto dataset = make_redis_dataset(params);
  for (const auto& key : dataset.keys) {
    for (auto v : dataset.store.get(key)->values()) {
      EXPECT_GE(v, 1u);
      EXPECT_LE(v, params.universe);
    }
  }
}

TEST(RedisDataset, DeterministicForSeed) {
  const auto a = make_redis_dataset(small_params());
  const auto b = make_redis_dataset(small_params());
  EXPECT_EQ(a.cardinalities, b.cardinalities);
  for (std::size_t i = 0; i < a.keys.size(); ++i) {
    const auto va = a.store.get(a.keys[i])->values();
    const auto vb = b.store.get(b.keys[i])->values();
    ASSERT_TRUE(std::equal(va.begin(), va.end(), vb.begin(), vb.end()));
  }
}

TEST(RedisDataset, CardinalitiesAreSkewed) {
  // Lognormal(6.5, 2.0): the max should dwarf the median by orders of
  // magnitude -- that skew is what creates "queries of death".
  RedisDatasetParams params;
  params.sets = 1000;
  params.universe = 1000000;
  const auto dataset = make_redis_dataset(params);
  auto sorted = dataset.cardinalities;
  std::sort(sorted.begin(), sorted.end());
  const double median = static_cast<double>(sorted[sorted.size() / 2]);
  const double p99 = static_cast<double>(sorted[sorted.size() * 99 / 100]);
  EXPECT_GT(p99 / median, 20.0);
}

TEST(RedisDataset, RejectsBadParams) {
  RedisDatasetParams params = small_params();
  params.sets = 0;
  EXPECT_THROW(make_redis_dataset(params), std::invalid_argument);
  params = small_params();
  params.max_cardinality = params.min_cardinality - 1;
  EXPECT_THROW(make_redis_dataset(params), std::invalid_argument);
  params = small_params();
  params.max_cardinality = params.universe + 1;
  EXPECT_THROW(make_redis_dataset(params), std::invalid_argument);
}

TEST(IntersectTrace, PairsAreDistinctAndInRange) {
  const auto trace = make_intersect_trace(50, 2000, 1);
  EXPECT_EQ(trace.size(), 2000u);
  for (const auto& q : trace) {
    EXPECT_LT(q.lhs, 50u);
    EXPECT_LT(q.rhs, 50u);
    EXPECT_NE(q.lhs, q.rhs);
  }
  EXPECT_THROW(make_intersect_trace(1, 10), std::invalid_argument);
}

TEST(IntersectTrace, ExecutionProducesOnePositiveCostPerQuery) {
  const auto dataset = make_redis_dataset(small_params());
  const auto trace = make_intersect_trace(dataset.keys.size(), 500, 2);
  const auto ops = execute_intersect_trace(dataset, trace);
  ASSERT_EQ(ops.size(), trace.size());
  for (auto o : ops) EXPECT_GT(o, 0u);
}

TEST(IntersectTrace, CostDistributionHasHeavyTail) {
  // The paper's §6.2 shape: the vast majority of queries cheap, a small
  // fraction (two giant sets) orders of magnitude above the mean.
  RedisDatasetParams params;
  params.sets = 1000;
  params.universe = 1000000;
  const auto dataset = make_redis_dataset(params);
  const auto trace = make_intersect_trace(dataset.keys.size(), 20000, 3);
  const auto ops = execute_intersect_trace(dataset, trace);
  std::vector<double> costs(ops.begin(), ops.end());
  const double mean = [&] {
    double s = 0.0;
    for (double c : costs) s += c;
    return s / static_cast<double>(costs.size());
  }();
  const double p999 = stats::percentile(costs, 99.9);
  const double median = stats::percentile(costs, 50.0);
  EXPECT_GT(p999 / mean, 5.0);
  EXPECT_GT(mean / median, 2.0);  // mean dragged up by the tail
}

}  // namespace
}  // namespace reissue::systems
