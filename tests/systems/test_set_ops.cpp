#include "reissue/systems/set_ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "reissue/stats/rng.hpp"

namespace reissue::systems {
namespace {

std::vector<std::uint32_t> sorted_unique(std::vector<std::uint32_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::uint64_t brute_count(const std::vector<std::uint32_t>& a,
                          const std::vector<std::uint32_t>& b) {
  std::uint64_t n = 0;
  for (auto x : a) {
    n += std::binary_search(b.begin(), b.end(), x) ? 1 : 0;
  }
  return n;
}

using Kernel = IntersectResult (*)(std::span<const std::uint32_t>,
                                   std::span<const std::uint32_t>);

class IntersectKernels
    : public ::testing::TestWithParam<std::pair<std::string, Kernel>> {};

TEST_P(IntersectKernels, EmptyInputs) {
  const auto kernel = GetParam().second;
  const std::vector<std::uint32_t> empty;
  const std::vector<std::uint32_t> some{1, 2, 3};
  EXPECT_EQ(kernel(empty, some).count, 0u);
  EXPECT_EQ(kernel(some, empty).count, 0u);
  EXPECT_EQ(kernel(empty, empty).count, 0u);
}

TEST_P(IntersectKernels, DisjointAndIdentical) {
  const auto kernel = GetParam().second;
  const std::vector<std::uint32_t> a{1, 3, 5, 7};
  const std::vector<std::uint32_t> b{2, 4, 6, 8};
  EXPECT_EQ(kernel(a, b).count, 0u);
  EXPECT_EQ(kernel(a, a).count, 4u);
}

TEST_P(IntersectKernels, HandComputedOverlap) {
  const auto kernel = GetParam().second;
  const std::vector<std::uint32_t> a{1, 2, 3, 10, 20};
  const std::vector<std::uint32_t> b{2, 3, 4, 20, 30};
  EXPECT_EQ(kernel(a, b).count, 3u);  // {2, 3, 20}
}

TEST_P(IntersectKernels, MatchesBruteForceOnRandomSets) {
  const auto kernel = GetParam().second;
  stats::Xoshiro256 rng(0x5e75);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint32_t> a;
    std::vector<std::uint32_t> b;
    const std::size_t na = 1 + rng.below(500);
    const std::size_t nb = 1 + rng.below(500);
    for (std::size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<std::uint32_t>(rng.below(1000)));
    }
    for (std::size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<std::uint32_t>(rng.below(1000)));
    }
    a = sorted_unique(std::move(a));
    b = sorted_unique(std::move(b));
    ASSERT_EQ(kernel(a, b).count, brute_count(a, b)) << "trial " << trial;
  }
}

TEST_P(IntersectKernels, SymmetricCounts) {
  const auto kernel = GetParam().second;
  const std::vector<std::uint32_t> a{1, 5, 9, 13, 17, 100, 1000};
  const std::vector<std::uint32_t> b{5, 13, 1000, 2000};
  EXPECT_EQ(kernel(a, b).count, kernel(b, a).count);
}

TEST_P(IntersectKernels, OpsArePositiveForNonTrivialWork) {
  const auto kernel = GetParam().second;
  const std::vector<std::uint32_t> a{1, 2, 3};
  const std::vector<std::uint32_t> b{2, 3, 4};
  EXPECT_GT(kernel(a, b).ops, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, IntersectKernels,
    ::testing::Values(std::make_pair(std::string("probe"), &intersect_probe),
                      std::make_pair(std::string("merge"), &intersect_merge),
                      std::make_pair(std::string("gallop"),
                                     &intersect_gallop)),
    [](const auto& info) { return info.param.first; });

TEST(IntersectCosts, ProbeCostScalesWithMinSize) {
  // The Redis model property: cost ~ min * log(max), so doubling only the
  // larger set barely changes cost while doubling the smaller set does.
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  std::vector<std::uint32_t> larger;
  for (std::uint32_t i = 0; i < 100; ++i) small.push_back(i * 97);
  for (std::uint32_t i = 0; i < 10000; ++i) large.push_back(i * 7);
  for (std::uint32_t i = 0; i < 20000; ++i) larger.push_back(i * 7);
  const auto base = intersect_probe(small, large).ops;
  const auto bigger_big = intersect_probe(small, larger).ops;
  EXPECT_LT(bigger_big, base * 1.3);  // log factor only

  std::vector<std::uint32_t> small2 = small;
  for (std::uint32_t i = 0; i < 100; ++i) small2.push_back(50000 + i * 13);
  std::sort(small2.begin(), small2.end());
  const auto bigger_small = intersect_probe(small2, large).ops;
  EXPECT_GT(bigger_small, base * 1.7);  // ~2x probes
}

TEST(IntersectCosts, GallopBeatsProbeOnSkewedSizes) {
  // Galloping with a moving hint is sub-logarithmic per element when the
  // small set is dense in a prefix of the large set.
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::uint32_t i = 0; i < 1000; ++i) small.push_back(i);
  for (std::uint32_t i = 0; i < 1000000; ++i) large.push_back(i);
  EXPECT_LT(intersect_gallop(small, large).ops,
            intersect_probe(small, large).ops);
}

TEST(IntersectValues, MaterializesCorrectElements) {
  const std::vector<std::uint32_t> a{1, 2, 3, 10};
  const std::vector<std::uint32_t> b{2, 10, 11};
  const auto values = intersect_values(a, b);
  EXPECT_EQ(values, (std::vector<std::uint32_t>{2, 10}));
}

}  // namespace
}  // namespace reissue::systems
