#include "reissue/systems/kvstore.hpp"

#include <gtest/gtest.h>

namespace reissue::systems {
namespace {

TEST(SortedSet, SortsAndDedupes) {
  const SortedSet set({5, 1, 3, 3, 1});
  EXPECT_EQ(set.size(), 3u);
  const auto values = set.values();
  EXPECT_EQ(values[0], 1u);
  EXPECT_EQ(values[1], 3u);
  EXPECT_EQ(values[2], 5u);
}

TEST(SortedSet, Contains) {
  const SortedSet set({2, 4, 6});
  EXPECT_TRUE(set.contains(4));
  EXPECT_FALSE(set.contains(5));
  EXPECT_FALSE(SortedSet().contains(1));
}

TEST(KvStore, PutGetErase) {
  KvStore store;
  EXPECT_EQ(store.put("a", SortedSet({1, 2})), std::nullopt);
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.get("a"), nullptr);
  EXPECT_EQ(store.get("a")->size(), 2u);
  EXPECT_EQ(store.get("missing"), nullptr);
  // Replacing returns the previous cardinality.
  EXPECT_EQ(store.put("a", SortedSet({1, 2, 3})), std::optional<std::size_t>(2));
  EXPECT_TRUE(store.erase("a"));
  EXPECT_FALSE(store.erase("a"));
  EXPECT_EQ(store.size(), 0u);
}

TEST(KvStore, IntersectCount) {
  KvStore store;
  store.put("x", SortedSet({1, 2, 3, 4}));
  store.put("y", SortedSet({3, 4, 5}));
  const auto result = store.intersect_count("x", "y");
  EXPECT_EQ(result.count, 2u);
  EXPECT_GT(result.ops, 0u);
}

TEST(KvStore, IntersectMaterialized) {
  KvStore store;
  store.put("x", SortedSet({1, 2, 3}));
  store.put("y", SortedSet({2, 3, 9}));
  EXPECT_EQ(store.intersect("x", "y"), (std::vector<std::uint32_t>{2, 3}));
}

TEST(KvStore, MissingKeyThrows) {
  KvStore store;
  store.put("x", SortedSet({1}));
  EXPECT_THROW((void)store.intersect_count("x", "nope"), std::out_of_range);
  EXPECT_THROW((void)store.intersect_count("nope", "x"), std::out_of_range);
  EXPECT_THROW((void)store.intersect("nope", "x"), std::out_of_range);
}

TEST(KvStore, SelfIntersectionIsCardinality) {
  KvStore store;
  store.put("x", SortedSet({10, 20, 30}));
  EXPECT_EQ(store.intersect_count("x", "x").count, 3u);
}

}  // namespace
}  // namespace reissue::systems
