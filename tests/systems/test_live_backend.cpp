#include "reissue/systems/live_backend.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace reissue::systems {
namespace {

LiveBackendOptions tiny() {
  LiveBackendOptions options;
  options.scale = 0.02;
  options.seed = 42;
  return options;
}

TEST(LiveBackend, BuildsEveryRegisteredBackend) {
  for (const std::string& name : live_backend_names()) {
    const auto backend = make_live_backend(name, tiny());
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), name);
    EXPECT_GT(backend->trace_length(), 0u);
    EXPECT_GT(backend->execute(0), 0u);
  }
}

TEST(LiveBackend, RejectsUnknownNameAndBadScale) {
  EXPECT_THROW(make_live_backend("bogus", tiny()), std::invalid_argument);
  LiveBackendOptions bad = tiny();
  bad.scale = 0.0;
  EXPECT_THROW(make_live_backend("kvstore", bad), std::invalid_argument);
}

TEST(LiveBackend, ExecuteIsDeterministicAndWrapsTrace) {
  const auto backend = make_live_backend("kvstore", tiny());
  const std::size_t n = backend->trace_length();
  for (std::uint64_t id : {std::uint64_t{0}, std::uint64_t{7}}) {
    EXPECT_EQ(backend->execute(id), backend->execute(id));
    // Reissue copies and wrapped ids perform identical work.
    EXPECT_EQ(backend->execute(id), backend->execute(id + n));
  }
}

TEST(LiveBackend, SameSeedSameCosts) {
  const auto a = make_live_backend("search", tiny());
  const auto b = make_live_backend("search", tiny());
  for (std::uint64_t id = 0; id < 16; ++id) {
    EXPECT_EQ(a->execute(id), b->execute(id));
  }
}

// Read-only execute: concurrent callers must agree with a serial pass.
// TSan-exercised via the thread-sanitize CI job.
TEST(LiveBackend, ExecuteIsThreadSafe) {
  const auto backend = make_live_backend("index", tiny());
  constexpr std::uint64_t kIds = 64;
  std::vector<std::uint64_t> serial(kIds);
  for (std::uint64_t id = 0; id < kIds; ++id) {
    serial[id] = backend->execute(id);
  }
  constexpr int kThreads = 4;
  std::vector<std::vector<std::uint64_t>> parallel(
      kThreads, std::vector<std::uint64_t>(kIds));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&backend, &parallel, t] {
      for (std::uint64_t id = 0; id < kIds; ++id) {
        parallel[static_cast<std::size_t>(t)][id] = backend->execute(id);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& results : parallel) EXPECT_EQ(results, serial);
}

}  // namespace
}  // namespace reissue::systems
