#include "reissue/systems/searcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace reissue::systems {
namespace {

Corpus themed_corpus() {
  // Term 0 everywhere (stopword-ish), term 1 rare, term 2 medium.
  Corpus corpus;
  corpus.vocabulary = 4;
  corpus.documents = {
      {0, 1, 1, 1},     // doc 0: heavy on rare term
      {0, 2},           // doc 1
      {0, 2, 2},        // doc 2
      {0},              // doc 3
      {0, 0, 0, 0, 0},  // doc 4
  };
  return corpus;
}

TEST(Searcher, EmptyQueryReturnsNothing) {
  const InvertedIndex index(themed_corpus());
  const Searcher searcher(index);
  EXPECT_TRUE(searcher.search({}, 10).hits.empty());
  const std::vector<std::uint32_t> q{1};
  EXPECT_TRUE(searcher.search(q, 0).hits.empty());
}

TEST(Searcher, UnknownTermReturnsNothing) {
  const InvertedIndex index(themed_corpus());
  const Searcher searcher(index);
  const std::vector<std::uint32_t> q{3};
  EXPECT_TRUE(searcher.search(q, 10).hits.empty());
}

TEST(Searcher, RareTermRanksItsDocumentFirst) {
  const InvertedIndex index(themed_corpus());
  const Searcher searcher(index);
  const std::vector<std::uint32_t> q{1};
  const auto result = searcher.search(q, 10);
  ASSERT_FALSE(result.hits.empty());
  EXPECT_EQ(result.hits[0].doc, 0u);
}

TEST(Searcher, ScoresDescending) {
  const InvertedIndex index(themed_corpus());
  const Searcher searcher(index);
  const std::vector<std::uint32_t> q{0, 2};
  const auto result = searcher.search(q, 10);
  ASSERT_GE(result.hits.size(), 2u);
  for (std::size_t i = 1; i < result.hits.size(); ++i) {
    EXPECT_GE(result.hits[i - 1].score, result.hits[i].score);
  }
}

TEST(Searcher, TopKLimitsResults) {
  const InvertedIndex index(themed_corpus());
  const Searcher searcher(index);
  const std::vector<std::uint32_t> q{0};  // matches all 5 docs
  EXPECT_EQ(searcher.search(q, 3).hits.size(), 3u);
  EXPECT_EQ(searcher.search(q, 100).hits.size(), 5u);
}

TEST(Searcher, TopKKeepsTheBestK) {
  const InvertedIndex index(themed_corpus());
  const Searcher searcher(index);
  const std::vector<std::uint32_t> q{0, 2};
  const auto full = searcher.search(q, 100);
  const auto top2 = searcher.search(q, 2);
  ASSERT_GE(full.hits.size(), 2u);
  ASSERT_EQ(top2.hits.size(), 2u);
  EXPECT_EQ(top2.hits[0].doc, full.hits[0].doc);
  EXPECT_EQ(top2.hits[1].doc, full.hits[1].doc);
}

TEST(Searcher, OpsScaleWithPostingsTouched) {
  const InvertedIndex index(themed_corpus());
  const Searcher searcher(index);
  const std::vector<std::uint32_t> rare{1};   // df 1
  const std::vector<std::uint32_t> hot{0};    // df 5
  EXPECT_GT(searcher.search(hot, 10).ops, searcher.search(rare, 10).ops);
}

TEST(Searcher, MultiTermDocsScoreHigherThanSingleTermDocs) {
  // Doc 2 contains both query terms 0 and 2; doc 3 only term 0.
  const InvertedIndex index(themed_corpus());
  const Searcher searcher(index);
  const std::vector<std::uint32_t> q{0, 2};
  const auto result = searcher.search(q, 10);
  double score2 = -1.0;
  double score3 = -1.0;
  for (const auto& hit : result.hits) {
    if (hit.doc == 2) score2 = hit.score;
    if (hit.doc == 3) score3 = hit.score;
  }
  ASSERT_GE(score2, 0.0);
  ASSERT_GE(score3, 0.0);
  EXPECT_GT(score2, score3);
}

TEST(Searcher, RejectsBadBm25Params) {
  const InvertedIndex index(themed_corpus());
  EXPECT_THROW(Searcher(index, Bm25Params{0.0, 0.75}), std::invalid_argument);
  EXPECT_THROW(Searcher(index, Bm25Params{1.2, 1.5}), std::invalid_argument);
}

TEST(Searcher, DeterministicAcrossCalls) {
  const InvertedIndex index(themed_corpus());
  const Searcher searcher(index);
  const std::vector<std::uint32_t> q{0, 2};
  const auto a = searcher.search(q, 5);
  const auto b = searcher.search(q, 5);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].doc, b.hits[i].doc);
    EXPECT_DOUBLE_EQ(a.hits[i].score, b.hits[i].score);
  }
  EXPECT_EQ(a.ops, b.ops);
}

}  // namespace
}  // namespace reissue::systems
