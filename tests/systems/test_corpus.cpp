#include "reissue/systems/corpus.hpp"

#include <gtest/gtest.h>

#include <map>

namespace reissue::systems {
namespace {

CorpusParams small_params() {
  CorpusParams params;
  params.documents = 2000;
  params.vocabulary = 5000;
  return params;
}

TEST(ZipfSampler, RejectsBadParams) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
}

TEST(ZipfSampler, PmfSumsToOne) {
  const ZipfSampler zipf(100, 1.05);
  double total = 0.0;
  for (std::uint32_t r = 0; r < 100; ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(zipf.pmf(100), 0.0);
}

TEST(ZipfSampler, RankZeroIsMostFrequent) {
  const ZipfSampler zipf(1000, 1.0);
  stats::Xoshiro256 rng(1);
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 3000);  // ~ 1/H(1000) * 50000 ~ 6.6k
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchPmf) {
  const ZipfSampler zipf(50, 1.2);
  stats::Xoshiro256 rng(2);
  std::array<int, 50> counts{};
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::uint32_t r : {0u, 1u, 5u, 20u, 49u}) {
    EXPECT_NEAR(counts[r] / double(kDraws), zipf.pmf(r),
                0.005 + 0.1 * zipf.pmf(r))
        << "rank " << r;
  }
}

TEST(Corpus, BuildsRequestedShape) {
  const auto corpus = make_corpus(small_params());
  EXPECT_EQ(corpus.size(), 2000u);
  EXPECT_EQ(corpus.vocabulary, 5000u);
  for (const auto& doc : corpus.documents) {
    EXPECT_GE(doc.size(), small_params().min_length);
    EXPECT_LE(doc.size(), small_params().max_length);
    for (auto term : doc) EXPECT_LT(term, corpus.vocabulary);
  }
}

TEST(Corpus, DeterministicForSeed) {
  const auto a = make_corpus(small_params());
  const auto b = make_corpus(small_params());
  ASSERT_EQ(a.documents.size(), b.documents.size());
  EXPECT_EQ(a.documents[0], b.documents[0]);
  EXPECT_EQ(a.documents[999], b.documents[999]);
}

TEST(Corpus, DifferentSeedDiffers) {
  auto params = small_params();
  const auto a = make_corpus(params);
  params.seed ^= 0xff;
  const auto b = make_corpus(params);
  EXPECT_NE(a.documents[0], b.documents[0]);
}

TEST(Corpus, RejectsBadParams) {
  CorpusParams params = small_params();
  params.documents = 0;
  EXPECT_THROW(make_corpus(params), std::invalid_argument);
  params = small_params();
  params.vocabulary = 0;
  EXPECT_THROW(make_corpus(params), std::invalid_argument);
  params = small_params();
  params.max_length = params.min_length - 1;
  EXPECT_THROW(make_corpus(params), std::invalid_argument);
}

TEST(Corpus, HotTermsDominateTokenMass) {
  const auto corpus = make_corpus(small_params());
  std::size_t hot = 0;
  std::size_t total = 0;
  for (const auto& doc : corpus.documents) {
    for (auto term : doc) {
      ++total;
      if (term < 50) ++hot;
    }
  }
  // Zipf(1.05) over 5000 terms: top-50 should hold a large share.
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.3);
}

}  // namespace
}  // namespace reissue::systems
