#include "reissue/systems/inverted_index.hpp"

#include <gtest/gtest.h>

namespace reissue::systems {
namespace {

Corpus tiny_corpus() {
  Corpus corpus;
  corpus.vocabulary = 5;
  corpus.documents = {
      {0, 1, 1, 2},  // doc 0
      {1, 3},        // doc 1
      {0, 0, 0},     // doc 2
  };
  return corpus;
}

TEST(InvertedIndex, PostingsAreCorrect) {
  const InvertedIndex index(tiny_corpus());
  EXPECT_EQ(index.documents(), 3u);
  EXPECT_EQ(index.vocabulary(), 5u);

  const auto p0 = index.postings(0);
  ASSERT_EQ(p0.size(), 2u);
  EXPECT_EQ(p0[0].doc, 0u);
  EXPECT_EQ(p0[0].tf, 1u);
  EXPECT_EQ(p0[1].doc, 2u);
  EXPECT_EQ(p0[1].tf, 3u);

  const auto p1 = index.postings(1);
  ASSERT_EQ(p1.size(), 2u);
  EXPECT_EQ(p1[0].tf, 2u);  // doc 0 has term 1 twice

  EXPECT_TRUE(index.postings(4).empty());   // unseen term
  EXPECT_TRUE(index.postings(99).empty());  // out of range
}

TEST(InvertedIndex, DocFrequency) {
  const InvertedIndex index(tiny_corpus());
  EXPECT_EQ(index.doc_frequency(0), 2u);
  EXPECT_EQ(index.doc_frequency(1), 2u);
  EXPECT_EQ(index.doc_frequency(2), 1u);
  EXPECT_EQ(index.doc_frequency(3), 1u);
  EXPECT_EQ(index.doc_frequency(4), 0u);
}

TEST(InvertedIndex, DocLengths) {
  const InvertedIndex index(tiny_corpus());
  EXPECT_EQ(index.doc_length(0), 4u);
  EXPECT_EQ(index.doc_length(1), 2u);
  EXPECT_EQ(index.doc_length(2), 3u);
  EXPECT_THROW(index.doc_length(3), std::out_of_range);
  EXPECT_NEAR(index.average_doc_length(), 3.0, 1e-12);
}

TEST(InvertedIndex, PostingsSortedByDocId) {
  CorpusParams params;
  params.documents = 500;
  params.vocabulary = 200;
  const auto corpus = make_corpus(params);
  const InvertedIndex index(corpus);
  for (std::uint32_t term = 0; term < index.vocabulary(); ++term) {
    const auto postings = index.postings(term);
    for (std::size_t i = 1; i < postings.size(); ++i) {
      ASSERT_LT(postings[i - 1].doc, postings[i].doc) << "term " << term;
    }
  }
}

TEST(InvertedIndex, TotalPostingsConserved) {
  // Sum of doc frequencies == total postings.
  CorpusParams params;
  params.documents = 300;
  params.vocabulary = 100;
  const auto corpus = make_corpus(params);
  const InvertedIndex index(corpus);
  std::size_t sum_df = 0;
  for (std::uint32_t term = 0; term < index.vocabulary(); ++term) {
    sum_df += index.doc_frequency(term);
  }
  EXPECT_EQ(sum_df, index.total_postings());
}

TEST(InvertedIndex, TermFrequenciesConserveTokens) {
  const auto corpus = [&] {
    CorpusParams params;
    params.documents = 200;
    params.vocabulary = 50;
    return make_corpus(params);
  }();
  const InvertedIndex index(corpus);
  std::size_t tokens_in_corpus = 0;
  for (const auto& doc : corpus.documents) tokens_in_corpus += doc.size();
  std::size_t tokens_in_index = 0;
  for (std::uint32_t term = 0; term < index.vocabulary(); ++term) {
    for (const auto& posting : index.postings(term)) {
      tokens_in_index += posting.tf;
    }
  }
  EXPECT_EQ(tokens_in_index, tokens_in_corpus);
}

TEST(InvertedIndex, RejectsOutOfVocabularyTerm) {
  Corpus corpus;
  corpus.vocabulary = 2;
  corpus.documents = {{0, 5}};
  EXPECT_THROW(InvertedIndex{corpus}, std::invalid_argument);
}

}  // namespace
}  // namespace reissue::systems
