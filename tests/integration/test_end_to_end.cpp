// End-to-end integration tests: the full pipeline the paper describes --
// run a workload, log response times, optimize a SingleR policy from the
// logs (with adaptation under queueing), and verify the tuned policy
// reproduces the paper's qualitative results.
#include <gtest/gtest.h>

#include "reissue/core/budget_search.hpp"
#include "reissue/core/optimizer.hpp"
#include "reissue/sim/metrics.hpp"
#include "reissue/sim/workloads.hpp"
#include "reissue/systems/bridge.hpp"

namespace reissue {
namespace {

sim::workloads::WorkloadOptions quick() {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 20000;
  opts.warmup = 2000;
  return opts;
}

TEST(EndToEnd, IndependentWorkloadSingleRBeatsSingleDAtSmallBudget) {
  // Fig. 3a (Independent): for B < 1-k, SingleD achieves nothing while
  // SingleR reduces P95.
  sim::Cluster cluster = sim::workloads::make_independent(quick());
  const double k = 0.95;
  const double budget = 0.03;

  const auto base =
      sim::evaluate_policy(cluster, core::ReissuePolicy::none(), k);

  const auto run = cluster.run(core::ReissuePolicy::none());
  const auto rx = run.primary_cdf();
  const auto opt = core::compute_optimal_single_r(rx, rx, k, budget);
  const auto single_r = sim::evaluate_policy(cluster, opt.policy(), k);

  const auto sd_policy = core::single_d_for_budget(rx, budget);
  const auto single_d = sim::evaluate_policy(cluster, sd_policy, k);

  EXPECT_LT(single_r.tail_latency, 0.9 * base.tail_latency);
  EXPECT_GE(single_d.tail_latency, 0.95 * base.tail_latency);
  EXPECT_LE(single_r.reissue_rate, budget * 1.3);
}

TEST(EndToEnd, QueueingWorkloadAdaptiveSingleRReducesP95) {
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, quick());
  const auto base =
      sim::evaluate_policy(cluster, core::ReissuePolicy::none(), 0.95);
  const auto tuned = sim::tune_single_r(cluster, 0.95, 0.10, 6);
  EXPECT_LT(tuned.final_eval.tail_latency, base.tail_latency);
  EXPECT_NEAR(tuned.final_eval.reissue_rate, 0.10, 0.04);
}

TEST(EndToEnd, CorrelationAwareOptimizerNoWorseOnCorrelatedWorkload) {
  sim::Cluster cluster = sim::workloads::make_correlated(0.5, quick());
  const double k = 0.95;
  const double budget = 0.10;
  const auto probe = cluster.run(core::ReissuePolicy::single_r(0.0, budget));

  const auto naive = core::compute_optimal_single_r(
      probe.primary_cdf(), probe.reissue_cdf(), k, budget);
  const auto aware =
      core::compute_optimal_single_r_correlated(probe.primary_cdf(),
                                                probe.joint(), k, budget);

  const auto eval_naive = sim::evaluate_policy(cluster, naive.policy(), k);
  const auto eval_aware = sim::evaluate_policy(cluster, aware.policy(), k);
  EXPECT_LE(eval_aware.tail_latency, eval_naive.tail_latency * 1.05);
}

TEST(EndToEnd, RemediationRateHigherForSingleRThanSingleD) {
  // Fig. 3b: each reissued request is worth more under SingleR.
  sim::Cluster cluster = sim::workloads::make_independent(quick());
  const double k = 0.95;
  const double budget = 0.05;
  const auto run = cluster.run(core::ReissuePolicy::none());
  const auto rx = run.primary_cdf();

  const auto opt = core::compute_optimal_single_r(rx, rx, k, budget);
  const auto r_eval = sim::evaluate_policy(cluster, opt.policy(), k);
  const auto d_eval =
      sim::evaluate_policy(cluster, core::single_d_for_budget(rx, budget), k);
  EXPECT_GE(r_eval.remediation_rate, d_eval.remediation_rate);
}

TEST(EndToEnd, BudgetSearchOnQueueingWorkloadFindsInteriorOptimum) {
  // Fig. 8-style: on a queueing workload, too little budget leaves tail
  // unremediated and too much adds load; the search should settle on a
  // budget strictly inside (0, max].
  sim::workloads::WorkloadOptions opts;
  opts.queries = 12000;
  opts.warmup = 1200;
  sim::Cluster cluster = sim::workloads::make_queueing(0.45, 0.5, opts);

  core::BudgetSearchConfig config;
  config.max_trials = 8;
  config.max_budget = 0.40;
  const auto outcome = core::search_optimal_budget(
      [&](double budget) {
        if (budget <= 0.0) {
          return sim::evaluate_policy(cluster, core::ReissuePolicy::none(),
                                      0.95)
              .tail_latency;
        }
        return sim::tune_single_r(cluster, 0.95, budget, 3)
            .final_eval.tail_latency;
      },
      config);
  const double baseline =
      sim::evaluate_policy(cluster, core::ReissuePolicy::none(), 0.95)
          .tail_latency;
  EXPECT_GT(outcome.best_budget, 0.0);
  EXPECT_LT(outcome.best_tail_latency, baseline);
}

TEST(EndToEnd, RedisHarnessSingleRBeatsBaselineAtSmallBudget) {
  // Fig. 7a shape on the Redis-like system at 40% utilization.
  systems::SystemHarnessOptions options;
  options.queries = 12000;
  options.warmup = 1200;
  options.utilization = 0.40;
  options.servers = 10;
  systems::RedisDatasetParams dataset;
  dataset.sets = 400;
  dataset.universe = 400000;
  dataset.max_cardinality = 150000;
  auto harness = systems::make_redis_harness(options, dataset);

  const auto base = sim::evaluate_policy(harness.cluster,
                                         core::ReissuePolicy::none(), 0.99);
  const auto tuned = sim::tune_single_r(harness.cluster, 0.99, 0.03, 5);
  EXPECT_LT(tuned.final_eval.tail_latency, base.tail_latency);
  EXPECT_LT(tuned.final_eval.reissue_rate, 0.06);
}

TEST(EndToEnd, LuceneHarnessSingleRBeatsBaseline) {
  systems::SystemHarnessOptions options;
  options.queries = 12000;
  options.warmup = 1200;
  options.utilization = 0.40;
  options.servers = 10;
  systems::LuceneHarnessParams params;
  params.corpus.documents = 8000;
  params.corpus.vocabulary = 10000;
  params.workload.distinct_queries = 1000;
  auto harness = systems::make_lucene_harness(options, params);

  const auto base = sim::evaluate_policy(harness.cluster,
                                         core::ReissuePolicy::none(), 0.99);
  // §6.3: "At 40% utilization, the optimal reissue rate for SingleR is 4%".
  const auto tuned = sim::tune_single_r(harness.cluster, 0.99, 0.04, 6);
  EXPECT_LT(tuned.final_eval.tail_latency, base.tail_latency);
}

TEST(EndToEnd, HigherUtilizationShrinksButKeepsGains) {
  // Fig. 6 shape: reissue gains shrink with load but persist at 50%.
  sim::workloads::SensitivityOptions sens;
  sens.service = stats::make_lognormal(1.0, 1.0);
  sens.base = quick();
  double prev_ratio = 1e9;
  for (double util : {0.20, 0.50}) {
    sens.utilization = util;
    sim::Cluster cluster = sim::workloads::make_sensitivity(sens);
    const auto base =
        sim::evaluate_policy(cluster, core::ReissuePolicy::none(), 0.95);
    const auto tuned = sim::tune_single_r(cluster, 0.95, 0.20, 5);
    const double ratio =
        sim::reduction_ratio(base.tail_latency, tuned.final_eval.tail_latency);
    EXPECT_GT(ratio, 1.05) << "util=" << util;
    EXPECT_LT(ratio, prev_ratio * 1.2) << "util=" << util;
    prev_ratio = ratio;
  }
}

}  // namespace
}  // namespace reissue
