#include "reissue/runtime/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace reissue::runtime {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ThreadCountHonoured) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, DrainsOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { count.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, StatsTrackSubmissionAndCompletion) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  const ThreadPoolStats s = pool.stats();
  EXPECT_EQ(s.threads, 2u);
  EXPECT_EQ(s.submitted, 50u);
  EXPECT_EQ(s.completed, 50u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.active, 0u);
}

TEST(ThreadPool, StatsSeeInFlightWork) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  const ThreadPoolStats mid = pool.stats();
  EXPECT_EQ(mid.active, 1u);
  EXPECT_EQ(mid.submitted, 1u);
  EXPECT_EQ(mid.completed, 0u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(pool.stats().completed, 1u);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  for (auto& t : touched) t.store(0);
  parallel_for(kN, [&](std::size_t i) { touched[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not run"; }, 4);
  SUCCEED();
}

TEST(ParallelFor, SingleThreadFallbackIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(10, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  // Each index writes its own slot deterministically: any thread count
  // must give identical output.
  constexpr std::size_t kN = 2000;
  auto run = [&](std::size_t threads) {
    std::vector<double> out(kN);
    parallel_for(kN, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
    }, threads);
    return out;
  };
  const auto seq = run(1);
  EXPECT_EQ(run(2), seq);
  EXPECT_EQ(run(8), seq);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(100, [](std::size_t i) {
        if (i == 37) throw std::runtime_error("boom");
      }, 4),
      std::runtime_error);
}

TEST(ParallelFor, AllWorkFinishesDespiteException) {
  std::atomic<int> done{0};
  try {
    parallel_for(1000, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("early");
      done.fetch_add(1);
    }, 4);
  } catch (const std::runtime_error&) {
  }
  // Remaining indices still ran (no cancellation semantics).
  EXPECT_EQ(done.load(), 999);
}

}  // namespace
}  // namespace reissue::runtime
