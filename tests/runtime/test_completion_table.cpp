#include "reissue/runtime/completion_table.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace reissue::runtime {
namespace {

TEST(CompletionTable, RejectsZeroCapacity) {
  EXPECT_THROW(CompletionTable(0), std::invalid_argument);
}

TEST(CompletionTable, BasicLifecycle) {
  CompletionTable table(16);
  table.begin(3);
  EXPECT_FALSE(table.is_complete(3));
  EXPECT_TRUE(table.complete(3));
  EXPECT_TRUE(table.is_complete(3));
}

TEST(CompletionTable, DuplicateCompletionReturnsFalse) {
  CompletionTable table(16);
  table.begin(5);
  EXPECT_TRUE(table.complete(5));
  EXPECT_FALSE(table.complete(5));  // the reissue copy lost the race
  EXPECT_TRUE(table.is_complete(5));
}

TEST(CompletionTable, SlotReuseAcrossGenerations) {
  CompletionTable table(4);
  table.begin(1);
  EXPECT_TRUE(table.complete(1));
  // id 5 reuses slot 1 (5 % 4): new generation resets completion.
  table.begin(5);
  EXPECT_FALSE(table.is_complete(5));
  EXPECT_TRUE(table.complete(5));
  // A stale completion for the *old* generation must fail.
  EXPECT_FALSE(table.complete(1));
}

TEST(CompletionTable, StaleCompletionCannotCorruptNewGeneration) {
  CompletionTable table(4);
  table.begin(2);
  // Replace generation before completing.
  table.begin(6);  // same slot as 2
  EXPECT_FALSE(table.complete(2));     // stale
  EXPECT_FALSE(table.is_complete(6));  // unaffected
  EXPECT_TRUE(table.complete(6));
}

TEST(CompletionTable, ExactlyOneWinnerUnderContention) {
  // N threads race to complete the same query; exactly one must win.
  CompletionTable table(1024);
  constexpr int kQueries = 200;
  constexpr int kThreads = 8;
  std::vector<std::atomic<int>> winners(kQueries);
  for (auto& w : winners) w.store(0);
  for (int q = 0; q < kQueries; ++q) table.begin(static_cast<uint64_t>(q));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int q = 0; q < kQueries; ++q) {
        if (table.complete(static_cast<uint64_t>(q))) {
          winners[q].fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int q = 0; q < kQueries; ++q) {
    EXPECT_EQ(winners[q].load(), 1) << "query " << q;
    EXPECT_TRUE(table.is_complete(static_cast<uint64_t>(q)));
  }
}

TEST(CompletionTable, CapacityReported) {
  CompletionTable table(64);
  EXPECT_EQ(table.capacity(), 64u);
}

}  // namespace
}  // namespace reissue::runtime
