#include "reissue/runtime/reissue_client.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace reissue::runtime {
namespace {

using namespace std::chrono_literals;

/// Records every dispatched copy, thread-safe.
class RecordingBackend {
 public:
  DispatchFn dispatch() {
    return [this](std::uint64_t id, bool is_reissue) {
      std::lock_guard lock(mutex_);
      if (is_reissue) {
        reissues_.push_back(id);
      } else {
        primaries_.push_back(id);
      }
    };
  }

  std::vector<std::uint64_t> primaries() const {
    std::lock_guard lock(mutex_);
    return primaries_;
  }

  std::vector<std::uint64_t> reissues() const {
    std::lock_guard lock(mutex_);
    return reissues_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> primaries_;
  std::vector<std::uint64_t> reissues_;
};

ReissueClientConfig fast_config() {
  ReissueClientConfig config;
  config.poll_interval_ms = 0.2;
  return config;
}

TEST(ReissueClient, DispatchesPrimaryImmediately) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::none(), fast_config());
  client.submit(1);
  client.submit(2);
  EXPECT_EQ(backend.primaries().size(), 2u);
  EXPECT_TRUE(backend.reissues().empty());
  EXPECT_EQ(client.queries_submitted(), 2u);
}

TEST(ReissueClient, NoReissuePolicyNeverReissues) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::none(), fast_config());
  for (std::uint64_t i = 0; i < 50; ++i) client.submit(i);
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(backend.reissues().empty());
  EXPECT_EQ(client.reissues_issued(), 0u);
}

TEST(ReissueClient, SingleDReissuesUncompletedAfterDelay) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::single_d(5.0), fast_config());
  client.submit(1);
  client.submit(2);
  // Complete query 1 before the 5 ms delay elapses.
  client.on_response(1);
  std::this_thread::sleep_for(50ms);
  const auto reissues = backend.reissues();
  ASSERT_EQ(reissues.size(), 1u);
  EXPECT_EQ(reissues[0], 2u);
  EXPECT_EQ(client.reissues_issued(), 1u);
}

TEST(ReissueClient, CompletionBeforeDelaySuppressesReissue) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::single_d(20.0), fast_config());
  for (std::uint64_t i = 0; i < 20; ++i) {
    client.submit(i);
    client.on_response(i);  // instant completion
  }
  std::this_thread::sleep_for(60ms);
  EXPECT_TRUE(backend.reissues().empty());
}

TEST(ReissueClient, SingleRRespectsProbabilityStatistically) {
  WallClock clock;
  RecordingBackend backend;
  // d=0 and never complete: expect ~q fraction reissued.
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::single_r(0.0, 0.3), fast_config());
  constexpr std::uint64_t kQueries = 2000;
  for (std::uint64_t i = 0; i < kQueries; ++i) client.submit(i);
  client.drain();
  const double rate =
      static_cast<double>(client.reissues_issued()) / double(kQueries);
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(ReissueClient, OnResponseReturnsTrueOnlyOnce) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::none(), fast_config());
  client.submit(7);
  EXPECT_TRUE(client.on_response(7));
  EXPECT_FALSE(client.on_response(7));  // reissue copy arriving later
}

TEST(ReissueClient, PolicySwapAffectsNewSubmissions) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::none(), fast_config());
  EXPECT_EQ(client.policy(), core::ReissuePolicy::none());
  client.set_policy(core::ReissuePolicy::single_d(1.0));
  EXPECT_EQ(client.policy(), core::ReissuePolicy::single_d(1.0));
  client.submit(1);
  std::this_thread::sleep_for(40ms);
  EXPECT_EQ(backend.reissues().size(), 1u);
}

TEST(ReissueClient, MultipleRIssuesUpToTwoCopies) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(
      clock, backend.dispatch(),
      core::ReissuePolicy::double_r(1.0, 1.0, 3.0, 1.0), fast_config());
  client.submit(42);
  std::this_thread::sleep_for(60ms);
  EXPECT_EQ(backend.reissues().size(), 2u);
}

TEST(ReissueClient, SecondStageSuppressedByCompletion) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(
      clock, backend.dispatch(),
      core::ReissuePolicy::double_r(1.0, 1.0, 50.0, 1.0), fast_config());
  client.submit(42);
  std::this_thread::sleep_for(20ms);  // first stage fires
  client.on_response(42);             // complete before second stage
  std::this_thread::sleep_for(80ms);
  EXPECT_EQ(backend.reissues().size(), 1u);
}

TEST(ReissueClient, ConcurrentSubmittersAreSafe) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::single_r(0.5, 0.5), fast_config());
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        client.submit(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  client.drain();
  EXPECT_EQ(client.queries_submitted(), kThreads * kPerThread);
  EXPECT_EQ(backend.primaries().size(), kThreads * kPerThread);
  // q=0.5, nothing completes: roughly half reissued.
  const double rate = static_cast<double>(client.reissues_issued()) /
                      double(kThreads * kPerThread);
  EXPECT_NEAR(rate, 0.5, 0.07);
}

TEST(ReissueClient, StatsCountSuppressionByCompletion) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::single_d(5.0), fast_config());
  constexpr std::uint64_t kQueries = 20;
  for (std::uint64_t i = 0; i < kQueries; ++i) {
    client.submit(i);
    client.on_response(i);  // complete before the 5 ms deadline
  }
  client.drain();
  const ReissueClientStats s = client.stats();
  EXPECT_EQ(s.queries_submitted, kQueries);
  EXPECT_EQ(s.first_responses, kQueries);
  EXPECT_EQ(s.reissues_issued, 0u);
  EXPECT_EQ(s.reissues_suppressed_completed, kQueries);
  EXPECT_EQ(s.reissues_suppressed_coin, 0u);
  EXPECT_EQ(s.pending_reissues, 0u);
  EXPECT_EQ(s.table_occupancy, 0u);
}

TEST(ReissueClient, StatsCountCoinSuppression) {
  WallClock clock;
  RecordingBackend backend;
  // q=0 and nothing completes: every scheduled reissue loses the coin.
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::single_r(0.0, 0.0), fast_config());
  constexpr std::uint64_t kQueries = 100;
  for (std::uint64_t i = 0; i < kQueries; ++i) client.submit(i);
  client.drain();
  const ReissueClientStats s = client.stats();
  EXPECT_EQ(s.reissues_issued, 0u);
  EXPECT_EQ(s.reissues_suppressed_coin, kQueries);
  EXPECT_EQ(s.reissues_suppressed_completed, 0u);
  EXPECT_TRUE(backend.reissues().empty());
}

TEST(ReissueClient, StatsExposeLatencyDigestAndOccupancy) {
  WallClock clock;
  RecordingBackend backend;
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::none(), fast_config());
  constexpr std::uint64_t kQueries = 200;
  for (std::uint64_t i = 0; i < kQueries; ++i) {
    client.submit(i);
    client.on_response(i);
  }
  const ReissueClientStats s = client.stats();
  EXPECT_EQ(s.latency_samples, kQueries);
  EXPECT_GE(s.latency_p50_ms, 0.0);
  EXPECT_GE(s.latency_p99_ms, 0.0);
  EXPECT_GE(s.latency_p999_ms, 0.0);
  EXPECT_EQ(s.table_occupancy, 0u);  // everything answered
  EXPECT_GT(s.table_capacity, 0u);
}

TEST(ReissueClient, StatsPendingReissuesIsALiveGauge) {
  WallClock clock;
  RecordingBackend backend;
  // Deadline far in the future: entries sit in the heap while we look.
  ReissueClient client(clock, backend.dispatch(),
                       core::ReissuePolicy::single_d(60000.0), fast_config());
  for (std::uint64_t i = 0; i < 5; ++i) client.submit(i);
  ReissueClientStats s = client.stats();
  EXPECT_EQ(s.pending_reissues, 5u);
  EXPECT_EQ(s.table_occupancy, 5u);
  for (std::uint64_t i = 0; i < 5; ++i) client.on_response(i);
  s = client.stats();
  EXPECT_EQ(s.table_occupancy, 0u);   // answered queries leave the table
  EXPECT_EQ(s.pending_reissues, 5u);  // heap entries retire at fire time
}

TEST(ReissueClient, RejectsBadConstruction) {
  WallClock clock;
  EXPECT_THROW(ReissueClient(clock, nullptr, core::ReissuePolicy::none()),
               std::invalid_argument);
  RecordingBackend backend;
  ReissueClientConfig config;
  config.poll_interval_ms = 0.0;
  EXPECT_THROW(ReissueClient(clock, backend.dispatch(),
                             core::ReissuePolicy::none(), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace reissue::runtime
