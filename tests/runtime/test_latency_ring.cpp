#include "reissue/runtime/latency_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "reissue/runtime/clock.hpp"
#include "reissue/runtime/reissue_client.hpp"

namespace reissue::runtime {
namespace {

LatencySample sample(double submit, double latency, bool reissued = false,
                     bool win = false) {
  return LatencySample{submit, latency, reissued, win};
}

TEST(LatencySampleRing, RecordsAndDrainsChronologically) {
  LatencySampleRing ring(8, 1);
  ring.record(sample(3.0, 30.0));
  ring.record(sample(1.0, 10.0));
  ring.record(sample(2.0, 20.0));
  EXPECT_EQ(ring.occupancy(), 3u);
  EXPECT_EQ(ring.recorded(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);

  const auto drained = ring.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_DOUBLE_EQ(drained[0].submit_ms, 1.0);
  EXPECT_DOUBLE_EQ(drained[1].submit_ms, 2.0);
  EXPECT_DOUBLE_EQ(drained[2].submit_ms, 3.0);
  EXPECT_EQ(ring.occupancy(), 0u);
  // Lifetime counter survives the drain.
  EXPECT_EQ(ring.recorded(), 3u);
}

TEST(LatencySampleRing, OverwritesOldestAndCountsDrops) {
  LatencySampleRing ring(4, 1);
  for (int i = 0; i < 10; ++i) {
    ring.record(sample(static_cast<double>(i), 1.0));
  }
  EXPECT_EQ(ring.occupancy(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);

  const auto drained = ring.drain();
  ASSERT_EQ(drained.size(), 4u);
  // The newest four submissions survive.
  EXPECT_DOUBLE_EQ(drained.front().submit_ms, 6.0);
  EXPECT_DOUBLE_EQ(drained.back().submit_ms, 9.0);
}

TEST(LatencySampleRing, CapacityRoundsUpToShardMultiple) {
  LatencySampleRing ring(10, 4);  // 3 per shard -> 12 total
  EXPECT_GE(ring.capacity(), 10u);
  EXPECT_EQ(ring.capacity() % 4, 0u);
}

TEST(LatencySampleRing, ShardCountClampedToCapacity) {
  LatencySampleRing ring(2, 64);
  EXPECT_GE(ring.capacity(), 2u);
  ring.record(sample(1.0, 1.0));
  EXPECT_EQ(ring.occupancy(), 1u);
}

TEST(LatencySampleRing, RejectsZeroCapacity) {
  EXPECT_THROW(LatencySampleRing(0), std::invalid_argument);
}

TEST(LatencySampleRing, FlagsRoundTrip) {
  LatencySampleRing ring(4, 1);
  ring.record(sample(1.0, 5.0, /*reissued=*/true, /*win=*/true));
  const auto drained = ring.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_TRUE(drained[0].was_reissued);
  EXPECT_TRUE(drained[0].win_reissue);
  EXPECT_DOUBLE_EQ(drained[0].latency_ms, 5.0);
}

TEST(LatencySampleRing, LatencyValuesExtracts) {
  const std::vector<LatencySample> batch = {sample(1.0, 10.0),
                                            sample(2.0, 20.0)};
  const auto values = latency_values(batch);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 10.0);
  EXPECT_DOUBLE_EQ(values[1], 20.0);
}

// Concurrency hammer: writers record while a reader drains and polls the
// locked accessors.  Run under TSan in CI; the invariant checked here is
// conservation — every recorded sample is either drained or dropped.
TEST(LatencySampleRing, ConcurrentRecordDrainConserves) {
  LatencySampleRing ring(1024, 8);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<std::uint64_t> drained_total{0};
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      drained_total.fetch_add(ring.drain().size(), std::memory_order_relaxed);
      (void)ring.occupancy();
      (void)ring.dropped();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        ring.record(sample(static_cast<double>(w * kPerWriter + i), 1.0));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  drained_total.fetch_add(ring.drain().size(), std::memory_order_relaxed);

  EXPECT_EQ(ring.recorded(), static_cast<std::uint64_t>(kWriters) *
                                 kPerWriter);
  EXPECT_EQ(drained_total.load() + ring.dropped(), ring.recorded());
}

// Client integration: the response path feeds the ring, drain_samples
// returns the batch, and stats() reports ring occupancy.
TEST(ReissueClientSampleRing, CapturesPerRequestSamples) {
  ManualClock clock;
  ReissueClientConfig config;
  config.table_capacity = 64;
  config.latency_ring_capacity = 16;
  ReissueClient client(clock, [](std::uint64_t, bool) {},
                       core::ReissuePolicy::none(), config);
  EXPECT_TRUE(client.captures_samples());

  clock.set(10.0);
  client.submit(1);
  clock.set(25.0);
  EXPECT_TRUE(client.on_response(1));
  clock.set(30.0);
  client.submit(2);
  clock.set(32.5);
  EXPECT_TRUE(client.on_response(2, /*from_reissue=*/true));

  const auto stats = client.stats();
  EXPECT_EQ(stats.latency_ring_capacity, 16u);
  EXPECT_EQ(stats.latency_ring_occupancy, 2u);
  EXPECT_EQ(stats.latency_ring_recorded, 2u);
  EXPECT_EQ(stats.latency_ring_dropped, 0u);

  const auto samples = client.drain_samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].submit_ms, 10.0);
  EXPECT_DOUBLE_EQ(samples[0].latency_ms, 15.0);
  EXPECT_FALSE(samples[0].win_reissue);
  EXPECT_DOUBLE_EQ(samples[1].submit_ms, 30.0);
  EXPECT_DOUBLE_EQ(samples[1].latency_ms, 2.5);
  EXPECT_TRUE(samples[1].win_reissue);
  EXPECT_TRUE(client.drain_samples().empty());
}

TEST(ReissueClientSampleRing, DisabledByDefaultAndZeroCost) {
  ManualClock clock;
  ReissueClient client(clock, [](std::uint64_t, bool) {},
                       core::ReissuePolicy::none());
  EXPECT_FALSE(client.captures_samples());
  client.submit(1);
  EXPECT_TRUE(client.on_response(1));
  EXPECT_TRUE(client.drain_samples().empty());
  const auto stats = client.stats();
  EXPECT_EQ(stats.latency_ring_capacity, 0u);
  EXPECT_EQ(stats.latency_ring_recorded, 0u);
}

// stats() consistency contract: latency_samples == first_responses in
// every snapshot, even while responses land concurrently.  TSan-exercised.
TEST(ReissueClientSampleRing, StatsSnapshotIsConsistentUnderLoad) {
  WallClock clock;
  ReissueClientConfig config;
  config.table_capacity = 1 << 12;
  config.latency_ring_capacity = 1 << 12;
  ReissueClient client(clock, [](std::uint64_t, bool) {},
                       core::ReissuePolicy::none(), config);

  constexpr std::uint64_t kQueries = 20000;
  std::thread driver([&] {
    for (std::uint64_t id = 0; id < kQueries; ++id) {
      client.submit(id);
      client.on_response(id);
    }
  });
  for (int i = 0; i < 200; ++i) {
    const auto stats = client.stats();
    EXPECT_EQ(stats.latency_samples, stats.first_responses);
    EXPECT_LE(stats.first_responses, stats.queries_submitted);
  }
  driver.join();
  const auto stats = client.stats();
  EXPECT_EQ(stats.first_responses, kQueries);
  EXPECT_EQ(stats.latency_samples, kQueries);
}

}  // namespace
}  // namespace reissue::runtime
