#include "reissue/sim/cluster.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "reissue/stats/distributions.hpp"
#include "reissue/stats/summary.hpp"

namespace reissue::sim {
namespace {

ClusterConfig small_config() {
  ClusterConfig config;
  config.servers = 4;
  config.queries = 4000;
  config.warmup = 400;
  config.arrival_rate = 0.1;
  config.seed = 0x1234;
  return config;
}

TEST(Cluster, RejectsBadConfig) {
  const auto dist = stats::make_exponential(0.1);
  ClusterConfig config = small_config();
  config.queries = 0;
  EXPECT_THROW(Cluster(config, make_iid_service(dist)), std::invalid_argument);
  config = small_config();
  config.warmup = config.queries;
  EXPECT_THROW(Cluster(config, make_iid_service(dist)), std::invalid_argument);
  config = small_config();
  config.servers = 0;
  EXPECT_THROW(Cluster(config, make_iid_service(dist)), std::invalid_argument);
  config = small_config();
  config.arrival_rate = 0.0;
  EXPECT_THROW(Cluster(config, make_iid_service(dist)), std::invalid_argument);
  EXPECT_THROW(Cluster(small_config(), nullptr), std::invalid_argument);
}

TEST(Cluster, MutatedConfigIsRevalidatedAtRun) {
  // mutable_config() bypasses the constructor: run() must re-run
  // validate() so a broken mutation fails loudly instead of corrupting
  // the run.
  Cluster cluster(small_config(),
                  make_iid_service(stats::make_exponential(0.1)));
  cluster.mutable_config().warmup = cluster.config().queries;
  EXPECT_THROW((void)cluster.run(core::ReissuePolicy::none()),
               std::invalid_argument);
  cluster.mutable_config().warmup = 400;
  cluster.mutable_config().servers = 0;
  EXPECT_THROW((void)cluster.run(core::ReissuePolicy::none()),
               std::invalid_argument);
  cluster.mutable_config().servers = 4;
  cluster.mutable_config().server_speeds = {1.0};  // size != servers
  EXPECT_THROW((void)cluster.run(core::ReissuePolicy::none()),
               std::invalid_argument);
  cluster.mutable_config().server_speeds.clear();
  EXPECT_NO_THROW((void)cluster.run(core::ReissuePolicy::none()));
}

TEST(Cluster, ValidateIsTheConstructorCheck) {
  ClusterConfig config = small_config();
  EXPECT_NO_THROW(validate(config));
  config.connections = 0;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config = small_config();
  config.cancellation_overhead = -1.0;
  EXPECT_THROW(validate(config), std::invalid_argument);
}

TEST(Cluster, AllQueriesCompleteAndLogsAreConsistent) {
  Cluster cluster(small_config(),
                  make_iid_service(stats::make_exponential(0.1)));
  const auto result = cluster.run(core::ReissuePolicy::none());
  const std::size_t logged = 4000 - 400;
  EXPECT_EQ(result.queries, logged);
  EXPECT_EQ(result.query_latencies.size(), logged);
  EXPECT_EQ(result.primary_latencies.size(), logged);
  EXPECT_EQ(result.reissues_issued, 0u);
  EXPECT_TRUE(result.reissue_latencies.empty());
  for (std::size_t i = 0; i < logged; ++i) {
    EXPECT_GE(result.query_latencies[i], 0.0);
    // Without reissues the query latency IS the primary latency.
    EXPECT_DOUBLE_EQ(result.query_latencies[i], result.primary_latencies[i]);
  }
}

TEST(Cluster, DeterministicForSeed) {
  Cluster a(small_config(), make_iid_service(stats::make_pareto(1.1, 2.0)));
  Cluster b(small_config(), make_iid_service(stats::make_pareto(1.1, 2.0)));
  const auto policy = core::ReissuePolicy::single_r(10.0, 0.5);
  const auto ra = a.run(policy);
  const auto rb = b.run(policy);
  ASSERT_EQ(ra.query_latencies.size(), rb.query_latencies.size());
  for (std::size_t i = 0; i < ra.query_latencies.size(); ++i) {
    ASSERT_DOUBLE_EQ(ra.query_latencies[i], rb.query_latencies[i]);
  }
  EXPECT_EQ(ra.reissues_issued, rb.reissues_issued);
}

TEST(Cluster, SeedChangesChangeOutcome) {
  ClusterConfig config = small_config();
  Cluster a(config, make_iid_service(stats::make_pareto(1.1, 2.0)));
  config.seed = 0x9999;
  Cluster b(config, make_iid_service(stats::make_pareto(1.1, 2.0)));
  const auto ra = a.run(core::ReissuePolicy::none());
  const auto rb = b.run(core::ReissuePolicy::none());
  EXPECT_NE(ra.query_latencies.front(), rb.query_latencies.front());
}

TEST(Cluster, MeasuredReissueRateMatchesPolicyBudget) {
  // SingleR(0, q) reissues every query with probability q (nothing
  // completes instantaneously under queueing at t=0 except zero-service
  // draws, which exp(0.1) gives w.p. 0).
  ClusterConfig config = small_config();
  config.queries = 20000;
  config.warmup = 1000;
  Cluster cluster(config, make_iid_service(stats::make_exponential(0.1)));
  const auto result = cluster.run(core::ReissuePolicy::single_r(0.0, 0.25));
  EXPECT_NEAR(result.measured_reissue_rate(), 0.25, 0.02);
  EXPECT_EQ(result.correlated_pairs.size(), result.reissue_latencies.size());
  EXPECT_EQ(result.reissue_delays.size(), result.reissue_latencies.size());
}

TEST(Cluster, SingleDReissuesExactlyTheSlowRequests) {
  // With a huge delay, nothing is outstanding by d, so no reissues.
  Cluster cluster(small_config(),
                  make_iid_service(stats::make_exponential(0.1)));
  const auto result = cluster.run(core::ReissuePolicy::single_d(1e9));
  EXPECT_EQ(result.reissues_issued, 0u);
}

TEST(Cluster, ImmediateReissueDoublesOfferedLoad) {
  ClusterConfig config = small_config();
  config.queries = 20000;
  config.warmup = 1000;
  config.arrival_rate = 0.02;  // light load so the system stays stable
  Cluster cluster(config, make_iid_service(stats::make_exponential(0.1)));
  const auto base = cluster.run(core::ReissuePolicy::none());
  const auto doubled = cluster.run(core::ReissuePolicy::immediate());
  EXPECT_NEAR(doubled.measured_reissue_rate(), 1.0, 1e-9);
  EXPECT_GT(doubled.utilization, 1.8 * base.utilization);
}

TEST(Cluster, UtilizationMatchesLittleLaw) {
  // util = lambda * E[S] / m.
  ClusterConfig config = small_config();
  config.queries = 40000;
  config.warmup = 2000;
  config.servers = 10;
  const double mean_service = 10.0;  // Exp(0.1)
  config.arrival_rate =
      arrival_rate_for_utilization(0.30, config.servers, mean_service);
  Cluster cluster(config, make_iid_service(stats::make_exponential(0.1)));
  const auto result = cluster.run(core::ReissuePolicy::none());
  EXPECT_NEAR(result.utilization, 0.30, 0.03);
}

TEST(Cluster, ReissueReducesTailOnQueueingWorkload) {
  ClusterConfig config = small_config();
  config.queries = 30000;
  config.warmup = 2000;
  config.servers = 10;
  config.arrival_rate = arrival_rate_for_utilization(0.30, 10, 22.0);
  Cluster cluster(config, make_iid_service(stats::make_pareto(1.1, 2.0)));
  const auto base = cluster.run(core::ReissuePolicy::none());
  // A sensible hand-tuned SingleR: reissue at the ~85th percentile of the
  // primary distribution with enough probability to spend ~10%.
  const double d = stats::EmpiricalCdf(base.primary_latencies).quantile(0.85);
  const auto policy = core::ReissuePolicy::single_r(d, 0.65);
  const auto hedged = cluster.run(policy);
  EXPECT_LT(hedged.tail_latency(0.95), base.tail_latency(0.95));
}

TEST(Cluster, InfiniteServersHaveNoQueueing) {
  ClusterConfig config = small_config();
  config.infinite_servers = true;
  config.servers = 0;
  config.queries = 20000;
  config.warmup = 100;
  Cluster cluster(config, make_iid_service(stats::make_exponential(0.1)));
  const auto result = cluster.run(core::ReissuePolicy::none());
  // Latency == service time: the ECDF should match Exp(0.1) closely.
  const stats::EmpiricalCdf cdf(result.query_latencies);
  EXPECT_NEAR(cdf.mean(), 10.0, 0.5);
  EXPECT_DOUBLE_EQ(result.utilization, 0.0);
}

TEST(Cluster, CorrelatedServiceReflectsInPairs) {
  ClusterConfig config = small_config();
  config.infinite_servers = true;
  config.servers = 0;
  config.queries = 30000;
  config.warmup = 100;
  Cluster cluster(
      config, make_correlated_service(stats::make_exponential(0.1), 1.0));
  const auto result = cluster.run(core::ReissuePolicy::single_r(0.0, 1.0));
  ASSERT_GT(result.correlated_pairs.size(), 1000u);
  // y = x + z >= x must hold pairwise (no queueing, so response == service).
  for (const auto& [x, y] : result.correlated_pairs) {
    ASSERT_GE(y, x - 1e-9);
  }
}

TEST(Cluster, CancellationReducesWastedWork) {
  ClusterConfig config = small_config();
  config.queries = 20000;
  config.warmup = 1000;
  config.servers = 10;
  config.arrival_rate = arrival_rate_for_utilization(0.30, 10, 10.0);
  auto service = [&] { return make_iid_service(stats::make_exponential(0.1)); };

  Cluster no_cancel(config, service());
  const auto base = no_cancel.run(core::ReissuePolicy::single_r(0.0, 0.5));

  config.cancel_on_completion = true;
  config.cancellation_overhead = 0.01;
  Cluster with_cancel(config, service());
  const auto cancelled = with_cancel.run(core::ReissuePolicy::single_r(0.0, 0.5));

  EXPECT_LT(cancelled.utilization, base.utilization);
}

TEST(Cluster, ArrivalPhasesValidated) {
  ClusterConfig config = small_config();
  config.arrival_phases = {{0.0, 1.0}};
  EXPECT_THROW(Cluster(config, make_iid_service(stats::make_exponential(0.1))),
               std::invalid_argument);
  config = small_config();
  config.arrival_phases = {{100.0, -1.0}};
  EXPECT_THROW(Cluster(config, make_iid_service(stats::make_exponential(0.1))),
               std::invalid_argument);
}

TEST(Cluster, ArrivalPhasesModulateLoad) {
  // Two phases: 2x rate then 0.5x rate.  The first half of queries should
  // see heavier queueing than the second (§4.4 drifting-load scenario).
  ClusterConfig config = small_config();
  config.queries = 30000;
  config.warmup = 1000;
  config.servers = 10;
  config.arrival_rate = arrival_rate_for_utilization(0.35, 10, 10.0);
  const double cycle = 30000.0 / config.arrival_rate;  // one long cycle
  config.arrival_phases = {{cycle / 2.0, 2.0}, {cycle / 2.0, 0.5}};
  Cluster cluster(config, make_iid_service(stats::make_exponential(0.1)));
  const auto result = cluster.run(core::ReissuePolicy::none());

  const std::size_t n = result.query_latencies.size();
  std::vector<double> first(result.query_latencies.begin(),
                            result.query_latencies.begin() + n / 3);
  std::vector<double> last(result.query_latencies.end() - n / 3,
                           result.query_latencies.end());
  EXPECT_GT(stats::percentile(std::move(first), 95.0),
            stats::percentile(std::move(last), 95.0));
}

TEST(Cluster, ConstantPhasesMatchNoPhases) {
  ClusterConfig config = small_config();
  Cluster plain(config, make_iid_service(stats::make_exponential(0.1)));
  config.arrival_phases = {{1000.0, 1.0}};
  Cluster phased(config, make_iid_service(stats::make_exponential(0.1)));
  const auto a = plain.run(core::ReissuePolicy::none());
  const auto b = phased.run(core::ReissuePolicy::none());
  ASSERT_EQ(a.query_latencies.size(), b.query_latencies.size());
  for (std::size_t i = 0; i < a.query_latencies.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.query_latencies[i], b.query_latencies[i]);
  }
}

TEST(Cluster, InterferenceRequiresDuration) {
  ClusterConfig config = small_config();
  config.interference_rate = 0.001;
  Cluster cluster(config, make_iid_service(stats::make_exponential(0.1)));
  EXPECT_THROW(cluster.run(core::ReissuePolicy::none()), std::invalid_argument);
}

TEST(Cluster, InterferenceInflatesUtilizationAndTail) {
  ClusterConfig config = small_config();
  config.queries = 20000;
  config.warmup = 1000;
  config.servers = 10;
  config.arrival_rate = arrival_rate_for_utilization(0.30, 10, 10.0);
  Cluster plain(config, make_iid_service(stats::make_exponential(0.1)));
  const auto base = plain.run(core::ReissuePolicy::none());

  config.interference_rate = 0.001;  // ~10% of capacity in 100-unit bursts
  config.interference_duration = stats::make_constant(100.0);
  Cluster noisy(config, make_iid_service(stats::make_exponential(0.1)));
  const auto result = noisy.run(core::ReissuePolicy::none());

  EXPECT_GT(result.utilization, base.utilization + 0.05);
  EXPECT_GT(result.tail_latency(0.99), base.tail_latency(0.99));
}

TEST(Cluster, MultipleRPolicyIssuesAcrossStages) {
  ClusterConfig config = small_config();
  config.queries = 20000;
  config.warmup = 1000;
  Cluster cluster(config, make_iid_service(stats::make_exponential(0.1)));
  // Two stages, both certain: queries slow enough to pass both delays get
  // two reissue copies.
  const auto policy = core::ReissuePolicy::double_r(0.0, 1.0, 5.0, 1.0);
  const auto result = cluster.run(policy);
  EXPECT_GT(result.measured_reissue_rate(), 1.0);  // more copies than queries
}

}  // namespace
}  // namespace reissue::sim
