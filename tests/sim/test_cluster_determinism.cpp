// The common-random-numbers guarantee of cluster.hpp: runs are
// deterministic in (config.seed, policy), bit-for-bit, regardless of how
// many engine threads execute runs concurrently and across repeated runs
// on one instance.
#include <gtest/gtest.h>

#include <charconv>
#include <string>
#include <vector>

#include "reissue/core/run_result.hpp"
#include "reissue/runtime/executor.hpp"
#include "reissue/sim/workloads.hpp"

namespace reissue::sim {
namespace {

void append(std::string& out, double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  ASSERT_EQ(ec, std::errc{});
  out.append(buf, end);
  out.push_back('\n');
}

/// Byte-exact textual fingerprint of every log the run produced.
std::string fingerprint(const core::RunResult& result) {
  std::string out;
  out += "queries=" + std::to_string(result.queries) + "\n";
  out += "reissues=" + std::to_string(result.reissues_issued) + "\n";
  append(out, result.utilization);
  for (double x : result.query_latencies) append(out, x);
  for (double x : result.primary_latencies) append(out, x);
  for (double x : result.reissue_latencies) append(out, x);
  for (double x : result.reissue_delays) append(out, x);
  for (const auto& [x, y] : result.correlated_pairs) {
    append(out, x);
    append(out, y);
  }
  return out;
}

workloads::WorkloadOptions tiny_options() {
  workloads::WorkloadOptions opts;
  opts.queries = 3000;
  opts.warmup = 300;
  opts.seed = 0x5eed;
  return opts;
}

TEST(ClusterDeterminism, RepeatedRunsAreByteIdentical) {
  Cluster cluster = workloads::make_queueing(0.4, 0.5, tiny_options());
  const auto policy = core::ReissuePolicy::single_r(20.0, 0.5);
  const std::string first = fingerprint(cluster.run(policy));
  EXPECT_EQ(fingerprint(cluster.run(policy)), first);
}

TEST(ClusterDeterminism, ByteIdenticalAcrossEngineThreadCounts) {
  const auto policy = core::ReissuePolicy::single_r(20.0, 0.5);
  constexpr std::size_t kRuns = 8;

  // Reference: serial runs, one fresh cluster per slot.
  std::vector<std::string> reference(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    Cluster cluster = workloads::make_queueing(0.4, 0.5, tiny_options());
    reference[i] = fingerprint(cluster.run(policy));
  }
  for (std::size_t i = 1; i < kRuns; ++i) {
    ASSERT_EQ(reference[i], reference[0]);  // same seed, same logs
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    std::vector<std::string> observed(kRuns);
    runtime::parallel_for(
        kRuns,
        [&](std::size_t i) {
          Cluster cluster = workloads::make_queueing(0.4, 0.5, tiny_options());
          observed[i] = fingerprint(cluster.run(policy));
        },
        threads);
    for (std::size_t i = 0; i < kRuns; ++i) {
      EXPECT_EQ(observed[i], reference[i]) << "threads=" << threads;
    }
  }
}

TEST(ClusterDeterminism, ReseedHookSwitchesStreamsDeterministically) {
  Cluster cluster = workloads::make_queueing(0.4, 0.5, tiny_options());
  core::SystemUnderTest& system = cluster;
  const std::string at_seed = fingerprint(system.run(core::ReissuePolicy::none()));
  ASSERT_TRUE(system.reseed(0xfeed));
  const std::string at_feed = fingerprint(system.run(core::ReissuePolicy::none()));
  EXPECT_NE(at_feed, at_seed);
  ASSERT_TRUE(system.reseed(0x5eed));
  EXPECT_EQ(fingerprint(system.run(core::ReissuePolicy::none())), at_seed);
}

TEST(ClusterDeterminism, DistinctSeedsDiverge) {
  auto opts = tiny_options();
  Cluster a = workloads::make_queueing(0.4, 0.5, opts);
  opts.seed = 0xfeed;
  Cluster b = workloads::make_queueing(0.4, 0.5, opts);
  const auto policy = core::ReissuePolicy::none();
  EXPECT_NE(fingerprint(a.run(policy)), fingerprint(b.run(policy)));
}

}  // namespace
}  // namespace reissue::sim
