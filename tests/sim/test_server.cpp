#include "reissue/sim/server.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace reissue::sim {
namespace {

Request make_request(std::uint64_t id, double service,
                     CopyKind kind = CopyKind::kPrimary) {
  Request r;
  r.query_id = id;
  r.kind = kind;
  r.service_time = service;
  return r;
}

struct Completion {
  std::uint64_t id;
  double at;
};

class ServerTest : public ::testing::Test {
 protected:
  void attach(Server& server) {
    server.attach(&events_, [this](const Request& r, double now) {
      completions_.push_back({r.query_id, now});
    });
  }

  EventQueue events_;
  std::vector<Completion> completions_;
};

TEST_F(ServerTest, ServesSingleRequest) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  attach(server);
  server.submit(make_request(1, 5.0), 0.0);
  EXPECT_TRUE(server.busy());
  events_.run_to_completion();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 5.0);
  EXPECT_FALSE(server.busy());
  EXPECT_DOUBLE_EQ(server.busy_time(), 5.0);
  EXPECT_EQ(server.completed(), 1u);
}

TEST_F(ServerTest, QueuedRequestsServeBackToBack) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  attach(server);
  server.submit(make_request(1, 3.0), 0.0);
  server.submit(make_request(2, 4.0), 0.0);
  EXPECT_EQ(server.queue_length(), 1u);
  EXPECT_EQ(server.load(), 2u);
  events_.run_to_completion();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.0);
  EXPECT_DOUBLE_EQ(completions_[1].at, 7.0);
  EXPECT_DOUBLE_EQ(server.busy_time(), 7.0);
}

TEST_F(ServerTest, IdleGapsDoNotAccrueBusyTime) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  attach(server);
  server.submit(make_request(1, 2.0), 0.0);
  events_.run_to_completion();
  // Submit again much later (manually advance via a scheduled event).
  events_.schedule(10.0, [&](double now) {
    server.submit(make_request(2, 3.0), now);
  });
  events_.run_to_completion();
  EXPECT_DOUBLE_EQ(server.busy_time(), 5.0);
  EXPECT_DOUBLE_EQ(completions_[1].at, 13.0);
}

TEST_F(ServerTest, SubmitBeforeAttachThrows) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  EXPECT_THROW(server.submit(make_request(1, 1.0), 0.0), std::logic_error);
}

TEST_F(ServerTest, ZeroServiceTimeCompletesImmediately) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  attach(server);
  server.submit(make_request(1, 0.0), 1.0);
  events_.run_to_completion();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 1.0);
}

TEST_F(ServerTest, PrioritizedQueueReordersUnderServer) {
  Server server(0,
                make_queue_discipline(QueueDisciplineKind::kPrioritizedFifo));
  attach(server);
  // While request 1 is in service, a reissue then a primary arrive; the
  // primary must be served first.
  server.submit(make_request(1, 10.0), 0.0);
  server.submit(make_request(2, 1.0, CopyKind::kReissue), 0.0);
  server.submit(make_request(3, 1.0, CopyKind::kPrimary), 0.0);
  events_.run_to_completion();
  ASSERT_EQ(completions_.size(), 3u);
  EXPECT_EQ(completions_[1].id, 3u);
  EXPECT_EQ(completions_[2].id, 2u);
}

TEST_F(ServerTest, CancellationChargesOverheadOnly) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  attach(server);
  bool cancel_second = true;
  server.set_cancellation(
      [&](const Request& r) { return cancel_second && r.query_id == 2; },
      /*cancel_cost=*/0.5);
  server.submit(make_request(1, 4.0), 0.0);
  server.submit(make_request(2, 100.0), 0.0);  // will be cancelled at pop
  server.submit(make_request(3, 2.0), 0.0);
  events_.run_to_completion();
  ASSERT_EQ(completions_.size(), 3u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 4.5);  // 4.0 + 0.5 overhead
  EXPECT_DOUBLE_EQ(completions_[2].at, 6.5);
  EXPECT_DOUBLE_EQ(server.busy_time(), 6.5);
}

TEST_F(ServerTest, NegativeCancellationCostRejected) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  EXPECT_THROW(server.set_cancellation([](const Request&) { return true; },
                                       -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace reissue::sim
