// The passive server of the typed event core: the test plays the
// Simulation's role, scheduling kCopyComplete events for every started
// service and handing completions back through finish().
#include "reissue/sim/server.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "reissue/sim/event.hpp"
#include "reissue/sim/event_queue.hpp"

namespace reissue::sim {
namespace {

Request make_request(std::uint64_t id, double service,
                     CopyKind kind = CopyKind::kPrimary) {
  Request r;
  r.query_id = id;
  r.kind = kind;
  r.service_time = service;
  return r;
}

struct Completion {
  std::uint64_t id;
  double at;
};

constexpr auto kNeverCancel = [](const Request&) { return false; };

/// Minimal event-core harness around one server: submit() enqueues and
/// starts idle service exactly as Simulation::submit_to_server does, and
/// the dispatch loop completes copies and starts the next queued one.
class ServerTest : public ::testing::Test {
 protected:
  template <typename CancelFn>
  void submit(Server& server, const Request& request, double now,
              CancelFn&& cancelled, double cancel_cost = 0.0) {
    server.enqueue(request);
    start_next(server, now, cancelled, cancel_cost);
  }

  void submit(Server& server, const Request& request, double now) {
    submit(server, request, now, kNeverCancel);
  }

  template <typename CancelFn>
  void start_next(Server& server, double now, CancelFn&& cancelled,
                  double cancel_cost) {
    if (const auto cost = server.try_start(cancelled, cancel_cost)) {
      events_.schedule(now + *cost, SimEvent::copy_complete(0));
    }
  }

  template <typename CancelFn>
  void run(Server& server, CancelFn&& cancelled, double cancel_cost = 0.0) {
    events_.run_to_completion([&](const SimEvent&, double now) {
      const Request done = server.finish();
      completions_.push_back({done.query_id, now});
      start_next(server, now, cancelled, cancel_cost);
    });
  }

  void run(Server& server) { run(server, kNeverCancel); }

  EventQueue<SimEvent> events_;
  std::vector<Completion> completions_;
};

TEST_F(ServerTest, ServesSingleRequest) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  submit(server, make_request(1, 5.0), 0.0);
  EXPECT_TRUE(server.busy());
  run(server);
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].id, 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 5.0);
  EXPECT_FALSE(server.busy());
  EXPECT_DOUBLE_EQ(server.busy_time(), 5.0);
  EXPECT_EQ(server.completed(), 1u);
}

TEST_F(ServerTest, QueuedRequestsServeBackToBack) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  submit(server, make_request(1, 3.0), 0.0);
  submit(server, make_request(2, 4.0), 0.0);
  EXPECT_EQ(server.queue_length(), 1u);
  EXPECT_EQ(server.load(), 2u);
  run(server);
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 3.0);
  EXPECT_DOUBLE_EQ(completions_[1].at, 7.0);
  EXPECT_DOUBLE_EQ(server.busy_time(), 7.0);
}

TEST_F(ServerTest, IdleGapsDoNotAccrueBusyTime) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  submit(server, make_request(1, 2.0), 0.0);
  run(server);
  // Submit again much later: only serving accrues busy time.
  submit(server, make_request(2, 3.0), 10.0);
  run(server);
  EXPECT_DOUBLE_EQ(server.busy_time(), 5.0);
  EXPECT_DOUBLE_EQ(completions_[1].at, 13.0);
}

TEST_F(ServerTest, TryStartWhileBusyReturnsNothing) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  submit(server, make_request(1, 5.0), 0.0);
  server.enqueue(make_request(2, 1.0));
  EXPECT_FALSE(server.try_start(kNeverCancel, 0.0).has_value());
  EXPECT_EQ(server.queue_length(), 1u);
}

TEST_F(ServerTest, TryStartOnEmptyQueueReturnsNothing) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  EXPECT_FALSE(server.try_start(kNeverCancel, 0.0).has_value());
  EXPECT_FALSE(server.busy());
}

TEST_F(ServerTest, ZeroServiceTimeCompletesImmediately) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  submit(server, make_request(1, 0.0), 1.0);
  run(server);
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_DOUBLE_EQ(completions_[0].at, 1.0);
}

TEST_F(ServerTest, PrioritizedQueueReordersUnderServer) {
  Server server(0,
                make_queue_discipline(QueueDisciplineKind::kPrioritizedFifo));
  // While request 1 is in service, a reissue then a primary arrive; the
  // primary must be served first.
  submit(server, make_request(1, 10.0), 0.0);
  submit(server, make_request(2, 1.0, CopyKind::kReissue), 0.0);
  submit(server, make_request(3, 1.0, CopyKind::kPrimary), 0.0);
  run(server);
  ASSERT_EQ(completions_.size(), 3u);
  EXPECT_EQ(completions_[1].id, 3u);
  EXPECT_EQ(completions_[2].id, 2u);
}

TEST_F(ServerTest, CancellationChargesOverheadOnly) {
  Server server(0, make_queue_discipline(QueueDisciplineKind::kFifo));
  const auto cancel_second = [](const Request& r) { return r.query_id == 2; };
  constexpr double kOverhead = 0.5;
  submit(server, make_request(1, 4.0), 0.0, cancel_second, kOverhead);
  submit(server, make_request(2, 100.0), 0.0, cancel_second, kOverhead);
  submit(server, make_request(3, 2.0), 0.0, cancel_second, kOverhead);
  run(server, cancel_second, kOverhead);
  ASSERT_EQ(completions_.size(), 3u);
  EXPECT_DOUBLE_EQ(completions_[1].at, 4.5);  // 4.0 + 0.5 overhead
  EXPECT_DOUBLE_EQ(completions_[2].at, 6.5);
  EXPECT_DOUBLE_EQ(server.busy_time(), 6.5);
}

TEST_F(ServerTest, RequiresAQueueDiscipline) {
  EXPECT_THROW(Server(0, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace reissue::sim
