// Seeded fault injection: transient slowdowns, correlated degradation,
// and crash/recovery (ClusterConfig::FaultPlan).  Faults are part of the
// deterministic event core, so the contracts under test are the same as
// everywhere else: byte-identical replays for equal seeds, every query
// completes (crashed primaries are re-dispatched), fault-free configs
// are untouched, and the fault counters actually count.
#include <gtest/gtest.h>

#include <charconv>
#include <cmath>
#include <limits>
#include <string>

#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/service_model.hpp"
#include "reissue/sim/sim_observer.hpp"
#include "reissue/stats/distributions.hpp"

namespace reissue::sim {
namespace {

void append(std::string& out, double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  ASSERT_EQ(ec, std::errc{});
  out.append(buf, end);
  out.push_back('\n');
}

std::string fingerprint(const core::RunResult& result) {
  std::string out;
  out += "queries=" + std::to_string(result.queries) + "\n";
  out += "reissues=" + std::to_string(result.reissues_issued) + "\n";
  append(out, result.utilization);
  for (double x : result.query_latencies) append(out, x);
  for (double x : result.primary_latencies) append(out, x);
  for (double x : result.reissue_latencies) append(out, x);
  for (double x : result.reissue_delays) append(out, x);
  for (const auto& [x, y] : result.correlated_pairs) {
    append(out, x);
    append(out, y);
  }
  return out;
}

ClusterConfig base_config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.arrival_rate = arrival_rate_for_utilization(0.4, 6, 22.0);
  cfg.queries = 2000;
  cfg.warmup = 200;
  cfg.seed = 0xfa01;
  return cfg;
}

Cluster make_cluster(const ClusterConfig& cfg) {
  return Cluster(cfg, make_correlated_service(
                          stats::make_truncated(
                              stats::make_pareto(1.1, 2.0), 5000.0),
                          0.5));
}

ClusterConfig slowdown_config() {
  ClusterConfig cfg = base_config();
  cfg.faults.slowdown_rate = 0.002;
  cfg.faults.slowdown_factor = 4.0;
  cfg.faults.slowdown_duration = stats::make_lognormal(3.0, 0.6);
  return cfg;
}

ClusterConfig degrade_config() {
  ClusterConfig cfg = base_config();
  cfg.faults.degrade_servers = 3;
  cfg.faults.degrade_rate = 0.003;
  cfg.faults.degrade_factor = 3.0;
  cfg.faults.degrade_duration = stats::make_lognormal(3.5, 0.6);
  return cfg;
}

ClusterConfig crash_config() {
  ClusterConfig cfg = base_config();
  cfg.faults.crash_mtbf = 1500.0;
  cfg.faults.crash_downtime = stats::make_lognormal(4.0, 0.6);
  return cfg;
}

ClusterConfig everything_config() {
  ClusterConfig cfg = crash_config();
  cfg.faults.slowdown_rate = 0.001;
  cfg.faults.slowdown_factor = 3.0;
  cfg.faults.slowdown_duration = stats::make_lognormal(3.0, 0.6);
  cfg.faults.degrade_servers = 2;
  cfg.faults.degrade_rate = 0.002;
  cfg.faults.degrade_factor = 2.0;
  cfg.faults.degrade_duration = stats::make_lognormal(3.0, 0.6);
  return cfg;
}

void expect_all_queries_complete(const core::RunResult& result,
                                 std::size_t expected) {
  EXPECT_EQ(result.queries, expected);
  EXPECT_EQ(result.query_latencies.size(), expected);
  for (double latency : result.query_latencies) {
    EXPECT_TRUE(std::isfinite(latency) && latency >= 0.0);
  }
}

TEST(Faults, EverySeedReplaysByteIdentically) {
  for (const ClusterConfig& cfg :
       {slowdown_config(), degrade_config(), crash_config(),
        everything_config()}) {
    auto a = make_cluster(cfg);
    auto b = make_cluster(cfg);
    const auto policy = core::ReissuePolicy::single_r(20.0, 0.5);
    EXPECT_EQ(fingerprint(a.run(policy)), fingerprint(b.run(policy)));
  }
}

TEST(Faults, SlowdownsRaiseLatencyButEveryQueryCompletes) {
  auto faulty = make_cluster(slowdown_config());
  auto clean = make_cluster(base_config());
  const auto policy = core::ReissuePolicy::none();
  const core::RunResult with = faulty.run(policy);
  const core::RunResult without = clean.run(policy);
  expect_all_queries_complete(with, 1800);

  double sum_with = 0.0, sum_without = 0.0;
  for (double x : with.query_latencies) sum_with += x;
  for (double x : without.query_latencies) sum_without += x;
  EXPECT_GT(sum_with, sum_without);
}

TEST(Faults, CrashesRetryPrimariesSoEveryQueryCompletes) {
  for (const auto& policy :
       {core::ReissuePolicy::none(), core::ReissuePolicy::single_r(20.0, 0.5),
        core::ReissuePolicy::immediate(1)}) {
    auto cluster = make_cluster(crash_config());
    expect_all_queries_complete(cluster.run(policy), 1800);
  }
}

TEST(Faults, KitchenSinkWithCancellationCompletes) {
  ClusterConfig cfg = everything_config();
  cfg.load_balancer = LoadBalancerKind::kMinOfTwo;
  cfg.queue = QueueDisciplineKind::kPrioritizedFifo;
  cfg.exclude_primary_server = true;
  cfg.cancel_on_completion = true;
  cfg.cancellation_overhead = 0.1;
  cfg.interference_rate = 0.002;
  cfg.interference_duration = stats::make_lognormal(3.0, 0.6);
  cfg.server_speeds = {1.0, 1.0, 1.5, 1.0, 2.0, 1.0};
  auto a = make_cluster(cfg);
  auto b = make_cluster(cfg);
  const auto policy = core::ReissuePolicy::single_r(15.0, 0.6);
  const core::RunResult result = a.run(policy);
  expect_all_queries_complete(result, 1800);
  EXPECT_EQ(fingerprint(result), fingerprint(b.run(policy)));
}

TEST(Faults, ValidationRejectsIncompletePlans) {
  {
    ClusterConfig cfg = base_config();
    cfg.faults.slowdown_rate = 0.001;  // no duration, factor 1
    EXPECT_THROW(make_cluster(cfg), std::invalid_argument);
  }
  {
    ClusterConfig cfg = base_config();
    cfg.faults.degrade_rate = 0.001;
    cfg.faults.degrade_factor = 2.0;
    cfg.faults.degrade_duration = stats::make_constant(10.0);
    cfg.faults.degrade_servers = 7;  // > servers
    EXPECT_THROW(make_cluster(cfg), std::invalid_argument);
  }
  {
    ClusterConfig cfg = base_config();
    cfg.faults.crash_mtbf = 100.0;  // no downtime distribution
    EXPECT_THROW(make_cluster(cfg), std::invalid_argument);
  }
}

#if REISSUE_OBS_ENABLED

/// Minimal counter sink (the obs layer has richer ones; sim tests only
/// need the RunCounters totals).
class CounterSink final : public SimObserver {
 public:
  void on_run_end(double /*horizon*/, double /*utilization*/,
                  const RunCounters& counters) override {
    total_ += counters;
  }
  [[nodiscard]] const RunCounters& total() const { return total_; }

 private:
  RunCounters total_;
};

TEST(Faults, CountersSeeSlowdownEpisodes) {
  CounterSink sink;
  auto cluster = make_cluster(slowdown_config());
  cluster.set_sim_observer(&sink);
  (void)cluster.run(core::ReissuePolicy::none());
  EXPECT_GT(sink.total().fault_slowdowns, 0u);
  EXPECT_EQ(sink.total().fault_degrades, 0u);
  EXPECT_EQ(sink.total().fault_crashes, 0u);
}

TEST(Faults, DegradeEpisodesHitKServersAtOnce) {
  CounterSink sink;
  auto cluster = make_cluster(degrade_config());
  cluster.set_sim_observer(&sink);
  (void)cluster.run(core::ReissuePolicy::none());
  EXPECT_GT(sink.total().fault_degrades, 0u);
  // Server-episodes always arrive in groups of degrade_servers.
  EXPECT_EQ(sink.total().fault_degrades % 3, 0u);
}

TEST(Faults, CrashesFailCopiesAndRetryPrimaries) {
  CounterSink sink;
  auto cluster = make_cluster(crash_config());
  cluster.set_sim_observer(&sink);
  expect_all_queries_complete(
      cluster.run(core::ReissuePolicy::single_r(20.0, 0.5)), 1800);
  const RunCounters& c = sink.total();
  EXPECT_GT(c.fault_crashes, 0u);
  EXPECT_GT(c.fault_copies_failed, 0u);
  EXPECT_GT(c.fault_primary_retries, 0u);
  EXPECT_GT(c.fault_dispatch_rejections, 0u);
}

TEST(Faults, ObserverAttachmentLeavesFaultRunsBitIdentical) {
  for (const ClusterConfig& cfg :
       {slowdown_config(), degrade_config(), crash_config(),
        everything_config()}) {
    const auto policy = core::ReissuePolicy::single_r(20.0, 0.5);
    auto plain = make_cluster(cfg);
    const std::string baseline = fingerprint(plain.run(policy));
    CounterSink sink;
    auto observed = make_cluster(cfg);
    observed.set_sim_observer(&sink);
    EXPECT_EQ(fingerprint(observed.run(policy)), baseline);
  }
}

#endif  // REISSUE_OBS_ENABLED

}  // namespace
}  // namespace reissue::sim
