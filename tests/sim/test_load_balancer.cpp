#include "reissue/sim/load_balancer.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace reissue::sim {
namespace {

std::vector<Server> make_servers(std::size_t n) {
  std::vector<Server> servers;
  servers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    servers.emplace_back(i, make_queue_discipline(QueueDisciplineKind::kFifo));
  }
  return servers;
}

/// Loads server `idx` with `count` outstanding requests (one in service,
/// the rest queued), mirroring the old submit-while-busy behaviour.
void load_server(Server& server, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    Request r;
    r.query_id = i;
    r.service_time = 1000.0;  // effectively forever
    server.enqueue(r);
    (void)server.try_start([](const Request&) { return false; }, 0.0);
  }
}

TEST(RandomBalancer, CoversAllServersUniformly) {
  auto servers = make_servers(10);
  auto lb = make_load_balancer(LoadBalancerKind::kRandom);
  stats::Xoshiro256 rng(1);
  std::array<int, 10> counts{};
  constexpr int kPicks = 100000;
  for (int i = 0; i < kPicks; ++i) {
    ++counts[lb->pick(servers, rng, std::nullopt)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kPicks / 10.0, 5.0 * std::sqrt(kPicks / 10.0));
  }
}

TEST(RandomBalancer, NeverPicksExcluded) {
  auto servers = make_servers(5);
  auto lb = make_load_balancer(LoadBalancerKind::kRandom);
  stats::Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(lb->pick(servers, rng, 3), 3u);
  }
}

TEST(RandomBalancer, SingleServerWithExclusionStillPicks) {
  auto servers = make_servers(1);
  auto lb = make_load_balancer(LoadBalancerKind::kRandom);
  stats::Xoshiro256 rng(3);
  EXPECT_EQ(lb->pick(servers, rng, 0), 0u);
}

TEST(RoundRobinBalancer, CyclesDeterministically) {
  auto servers = make_servers(4);
  auto lb = make_load_balancer(LoadBalancerKind::kRoundRobin);
  stats::Xoshiro256 rng(4);
  std::vector<std::size_t> picks;
  for (int i = 0; i < 8; ++i) picks.push_back(lb->pick(servers, rng, std::nullopt));
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(RoundRobinBalancer, SkipsExcluded) {
  auto servers = make_servers(3);
  auto lb = make_load_balancer(LoadBalancerKind::kRoundRobin);
  stats::Xoshiro256 rng(5);
  for (int i = 0; i < 30; ++i) {
    EXPECT_NE(lb->pick(servers, rng, 1), 1u);
  }
}

TEST(MinOfTwoBalancer, PrefersShorterQueues) {
  auto servers = make_servers(2);
  load_server(servers[0], 10);
  load_server(servers[1], 0);
  auto lb = make_load_balancer(LoadBalancerKind::kMinOfTwo);
  stats::Xoshiro256 rng(6);
  int picked_idle = 0;
  for (int i = 0; i < 1000; ++i) {
    if (lb->pick(servers, rng, std::nullopt) == 1) ++picked_idle;
  }
  // With two servers, the two samples include the idle one w.p. >= 3/4 and
  // then it always wins.
  EXPECT_GT(picked_idle, 700);
}

TEST(MinOfAllBalancer, AlwaysPicksGlobalMinimum) {
  auto servers = make_servers(4);
  load_server(servers[0], 5);
  load_server(servers[1], 2);
  load_server(servers[2], 7);
  load_server(servers[3], 2);
  auto lb = make_load_balancer(LoadBalancerKind::kMinOfAll);
  stats::Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto pick = lb->pick(servers, rng, std::nullopt);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(MinOfAllBalancer, SharesTiesRandomly) {
  auto servers = make_servers(3);  // all idle: three-way tie
  auto lb = make_load_balancer(LoadBalancerKind::kMinOfAll);
  stats::Xoshiro256 rng(8);
  std::array<int, 3> counts{};
  for (int i = 0; i < 30000; ++i) {
    ++counts[lb->pick(servers, rng, std::nullopt)];
  }
  for (int c : counts) EXPECT_GT(c, 8000);
}

TEST(MinOfAllBalancer, RespectsExclusion) {
  auto servers = make_servers(3);
  load_server(servers[1], 1);
  load_server(servers[2], 1);
  // Server 0 is idle (global minimum) but excluded.
  auto lb = make_load_balancer(LoadBalancerKind::kMinOfAll);
  stats::Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(lb->pick(servers, rng, 0), 0u);
  }
}

TEST(AllBalancers, ToStringNames) {
  EXPECT_EQ(to_string(LoadBalancerKind::kRandom), "Random");
  EXPECT_EQ(to_string(LoadBalancerKind::kRoundRobin), "RoundRobin");
  EXPECT_EQ(to_string(LoadBalancerKind::kMinOfTwo), "MinOfTwo");
  EXPECT_EQ(to_string(LoadBalancerKind::kMinOfAll), "MinOfAll");
}

}  // namespace
}  // namespace reissue::sim
