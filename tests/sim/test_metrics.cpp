#include "reissue/sim/metrics.hpp"

#include <gtest/gtest.h>

#include "reissue/sim/workloads.hpp"

namespace reissue::sim {
namespace {

workloads::WorkloadOptions quick() {
  workloads::WorkloadOptions opts;
  opts.queries = 15000;
  opts.warmup = 1500;
  return opts;
}

TEST(Metrics, ReductionRatioBasics) {
  EXPECT_DOUBLE_EQ(reduction_ratio(100.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(reduction_ratio(100.0, 100.0), 1.0);
  EXPECT_THROW(reduction_ratio(100.0, 0.0), std::invalid_argument);
}

TEST(Metrics, EvaluatePolicyPopulatesFields) {
  Cluster cluster = workloads::make_queueing(0.30, 0.5, quick());
  const auto eval =
      evaluate_policy(cluster, core::ReissuePolicy::single_r(20.0, 0.5), 0.95);
  EXPECT_GT(eval.tail_latency, 0.0);
  EXPECT_GT(eval.reissue_rate, 0.0);
  EXPECT_LE(eval.reissue_rate, 1.0);
  EXPECT_GE(eval.remediation_rate, 0.0);
  EXPECT_LE(eval.remediation_rate, 1.0);
  EXPECT_GT(eval.utilization, 0.0);
}

TEST(Metrics, NoReissueHasZeroRateAndRemediation) {
  Cluster cluster = workloads::make_queueing(0.30, 0.5, quick());
  const auto eval =
      evaluate_policy(cluster, core::ReissuePolicy::none(), 0.95);
  EXPECT_DOUBLE_EQ(eval.reissue_rate, 0.0);
  EXPECT_DOUBLE_EQ(eval.remediation_rate, 0.0);
}

TEST(Metrics, TuneSingleRImprovesOverBaseline) {
  Cluster cluster = workloads::make_queueing(0.30, 0.5, quick());
  const double baseline =
      evaluate_policy(cluster, core::ReissuePolicy::none(), 0.95).tail_latency;
  const auto tuned = tune_single_r(cluster, 0.95, 0.10, /*trials=*/6);
  EXPECT_LT(tuned.final_eval.tail_latency, baseline);
  EXPECT_NEAR(tuned.final_eval.reissue_rate, 0.10, 0.04);
  EXPECT_EQ(tuned.outcome.trials.size(), 6u);
}

TEST(Metrics, TuneSingleDApproachesBudget) {
  Cluster cluster = workloads::make_queueing(0.30, 0.5, quick());
  const auto tuned = tune_single_d(cluster, 0.95, 0.15, /*trials=*/6);
  EXPECT_NEAR(tuned.final_eval.reissue_rate, 0.15, 0.05);
  EXPECT_DOUBLE_EQ(tuned.final_eval.policy.probability(), 1.0);
}

TEST(Metrics, RemediationRateCountsOnlyUsefulReissues) {
  // Build a run result by hand: two issued reissues, one remediates.
  core::RunResult result;
  result.queries = 4;
  result.query_latencies = {10.0, 10.0, 100.0, 100.0};
  result.primary_latencies = {10.0, 10.0, 120.0, 120.0};
  // Reissue 1: primary 120 > t=100, reissued at d=50, y=30 < 100-50 ✓
  // Reissue 2: primary 120 > t=100, reissued at d=50, y=80 >= 50 ✗
  result.reissue_latencies = {30.0, 80.0};
  result.correlated_pairs = {{120.0, 30.0}, {120.0, 80.0}};
  result.reissue_delays = {50.0, 50.0};
  result.reissues_issued = 2;
  EXPECT_DOUBLE_EQ(result.remediation_rate(100.0), 0.5);
}

}  // namespace
}  // namespace reissue::sim
