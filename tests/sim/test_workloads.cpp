#include "reissue/sim/workloads.hpp"

#include <gtest/gtest.h>

#include "reissue/stats/correlation.hpp"

namespace reissue::sim::workloads {
namespace {

WorkloadOptions quick() {
  WorkloadOptions opts;
  opts.queries = 12000;
  opts.warmup = 1000;
  return opts;
}

TEST(Workloads, IndependentHasNoQueueing) {
  Cluster cluster = make_independent(quick());
  const auto result = cluster.run(core::ReissuePolicy::none());
  // Latency == Pareto service times: min approaches the mode (2.0) from
  // above (the mode itself has measure zero).
  const stats::EmpiricalCdf cdf(result.query_latencies);
  EXPECT_NEAR(cdf.min(), 2.0, 0.01);
  EXPECT_DOUBLE_EQ(result.utilization, 0.0);
}

TEST(Workloads, IndependentReissuePairsAreUncorrelated) {
  Cluster cluster = make_independent(quick());
  const auto result = cluster.run(core::ReissuePolicy::single_r(0.0, 1.0));
  ASSERT_GT(result.correlated_pairs.size(), 5000u);
  EXPECT_NEAR(stats::spearman(result.correlated_pairs), 0.0, 0.05);
}

TEST(Workloads, CorrelatedReissuePairsAreCorrelated) {
  Cluster cluster = make_correlated(0.5, quick());
  const auto result = cluster.run(core::ReissuePolicy::single_r(0.0, 1.0));
  ASSERT_GT(result.correlated_pairs.size(), 5000u);
  EXPECT_GT(stats::spearman(result.correlated_pairs), 0.2);
}

TEST(Workloads, QueueingHitsTargetUtilization) {
  WorkloadOptions opts = quick();
  opts.queries = 40000;
  opts.warmup = 2000;
  Cluster cluster = make_queueing(0.30, 0.5, opts);
  const auto result = cluster.run(core::ReissuePolicy::none());
  // Pareto(1.1,2) sample means fluctuate wildly; allow a wide band but
  // require the load to be in the right regime.
  EXPECT_GT(result.utilization, 0.15);
  EXPECT_LT(result.utilization, 0.55);
}

TEST(Workloads, QueueingLatencyExceedsServiceTime) {
  Cluster cluster = make_queueing(0.30, 0.5, quick());
  const auto result = cluster.run(core::ReissuePolicy::none());
  // With queueing, P95 latency must exceed the P95 of pure service times
  // for the same seed's Independent workload.
  Cluster independent = make_independent(quick());
  const auto base = independent.run(core::ReissuePolicy::none());
  EXPECT_GT(result.tail_latency(0.95), base.tail_latency(0.95));
}

TEST(Workloads, HigherUtilizationMeansHigherTail) {
  WorkloadOptions opts = quick();
  opts.queries = 30000;
  opts.warmup = 2000;
  Cluster low = make_queueing(0.20, 0.0, opts);
  Cluster high = make_queueing(0.60, 0.0, opts);
  const double tail_low =
      low.run(core::ReissuePolicy::none()).tail_latency(0.95);
  const double tail_high =
      high.run(core::ReissuePolicy::none()).tail_latency(0.95);
  EXPECT_GT(tail_high, tail_low);
}

TEST(Workloads, SensitivityOverridesDistribution) {
  SensitivityOptions opts;
  opts.service = stats::make_exponential(0.1);
  opts.utilization = 0.30;
  opts.base = quick();
  Cluster cluster = make_sensitivity(opts);
  const auto result = cluster.run(core::ReissuePolicy::none());
  EXPECT_NEAR(result.utilization, 0.30, 0.05);
}

TEST(Workloads, SensitivityLoadBalancerChangesOutcome) {
  SensitivityOptions opts;
  opts.service = stats::make_exponential(0.1);
  opts.utilization = 0.50;
  opts.base = quick();
  opts.base.queries = 30000;
  opts.base.warmup = 2000;
  opts.load_balancer = LoadBalancerKind::kRandom;
  Cluster random_lb = make_sensitivity(opts);
  opts.load_balancer = LoadBalancerKind::kMinOfAll;
  Cluster jsq = make_sensitivity(opts);
  const double tail_random =
      random_lb.run(core::ReissuePolicy::none()).tail_latency(0.95);
  const double tail_jsq =
      jsq.run(core::ReissuePolicy::none()).tail_latency(0.95);
  // Join-shortest-queue strictly dominates random assignment.
  EXPECT_LT(tail_jsq, tail_random);
}

TEST(Workloads, EmpiricalMeanServiceApproximatesAnalytic) {
  const auto dist = stats::make_exponential(0.1);
  EXPECT_NEAR(empirical_mean_service(*dist, 100000), 10.0, 0.3);
  EXPECT_THROW(empirical_mean_service(*dist, 0), std::invalid_argument);
}

TEST(Workloads, ArrivalRateForUtilizationFormula) {
  EXPECT_NEAR(arrival_rate_for_utilization(0.30, 10, 22.0), 0.3 * 10 / 22.0,
              1e-12);
  EXPECT_THROW(arrival_rate_for_utilization(0.0, 10, 22.0),
               std::invalid_argument);
  EXPECT_THROW(arrival_rate_for_utilization(1.0, 10, 22.0),
               std::invalid_argument);
  EXPECT_THROW(arrival_rate_for_utilization(
                   0.5, 10, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

}  // namespace
}  // namespace reissue::sim::workloads
