// Simulation invariants that must hold for every (policy, queue
// discipline, load balancer) combination: log-shape consistency,
// first-response semantics, reissue-timing semantics, and budget accounting.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "reissue/sim/cluster.hpp"
#include "reissue/stats/distributions.hpp"

namespace reissue::sim {
namespace {

struct InvariantCase {
  std::string label;
  core::ReissuePolicy policy;
  QueueDisciplineKind queue;
  LoadBalancerKind balancer;
};

class SimInvariants : public ::testing::TestWithParam<InvariantCase> {
 protected:
  core::RunResult run() {
    ClusterConfig config;
    config.servers = 6;
    config.queries = 8000;
    config.warmup = 500;
    config.queue = GetParam().queue;
    config.load_balancer = GetParam().balancer;
    config.arrival_rate = arrival_rate_for_utilization(0.35, 6, 10.0);
    Cluster cluster(config, make_iid_service(stats::make_exponential(0.1)));
    return cluster.run(GetParam().policy);
  }
};

TEST_P(SimInvariants, LogShapesConsistent) {
  const auto result = run();
  EXPECT_EQ(result.query_latencies.size(), result.queries);
  EXPECT_EQ(result.primary_latencies.size(), result.queries);
  EXPECT_EQ(result.correlated_pairs.size(), result.reissue_latencies.size());
  EXPECT_EQ(result.reissue_delays.size(), result.reissue_latencies.size());
  EXPECT_LE(result.reissue_latencies.size(), result.reissues_issued);
}

TEST_P(SimInvariants, QueryLatencyIsFirstResponse) {
  // The end-to-end latency can never exceed the primary's own response
  // time -- a reissue can only make things faster.
  const auto result = run();
  for (std::size_t i = 0; i < result.queries; ++i) {
    ASSERT_LE(result.query_latencies[i], result.primary_latencies[i] + 1e-9);
    ASSERT_GE(result.query_latencies[i], 0.0);
  }
}

TEST_P(SimInvariants, ReissueTimingMatchesPolicyStages) {
  // Every issued reissue fires at one of the policy's stage delays.
  const auto result = run();
  const auto stages = GetParam().policy.stages();
  for (double delay : result.reissue_delays) {
    bool matches_stage = false;
    for (const auto& stage : stages) {
      if (std::abs(delay - stage.delay) < 1e-9) matches_stage = true;
    }
    ASSERT_TRUE(matches_stage) << "reissue fired at " << delay;
  }
}

TEST_P(SimInvariants, ReissuesOnlyForOutstandingQueries) {
  // A stage at delay d can only fire for a query whose completion took
  // longer than d (completion is checked before sending).
  const auto result = run();
  for (std::size_t i = 0; i < result.reissue_latencies.size(); ++i) {
    const double primary = result.correlated_pairs[i].first;
    const double delay = result.reissue_delays[i];
    ASSERT_GT(primary, delay - 1e-9);
  }
}

TEST_P(SimInvariants, MeasuredRateWithinPolicyBound) {
  // For a single-stage policy the measured rate cannot exceed q (a coin
  // per query), and equals ~q * Pr(outstanding at d).
  const auto result = run();
  const auto stages = GetParam().policy.stages();
  if (stages.size() == 1) {
    EXPECT_LE(result.measured_reissue_rate(),
              stages.front().probability + 0.02);
  }
}

TEST_P(SimInvariants, DeterministicAcrossRuns) {
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.reissues_issued, b.reissues_issued);
  ASSERT_EQ(a.query_latencies.size(), b.query_latencies.size());
  for (std::size_t i = 0; i < a.query_latencies.size(); i += 97) {
    ASSERT_DOUBLE_EQ(a.query_latencies[i], b.query_latencies[i]);
  }
}

std::vector<InvariantCase> make_cases() {
  const std::vector<std::pair<std::string, core::ReissuePolicy>> policies{
      {"none", core::ReissuePolicy::none()},
      {"immediate", core::ReissuePolicy::immediate()},
      {"single_d", core::ReissuePolicy::single_d(15.0)},
      {"single_r", core::ReissuePolicy::single_r(8.0, 0.4)},
      {"double_r", core::ReissuePolicy::double_r(5.0, 0.3, 20.0, 0.6)},
  };
  const std::vector<std::pair<std::string, QueueDisciplineKind>> queues{
      {"fifo", QueueDisciplineKind::kFifo},
      {"prio", QueueDisciplineKind::kPrioritizedFifo},
      {"rrconn", QueueDisciplineKind::kRoundRobinConnections},
  };
  const std::vector<std::pair<std::string, LoadBalancerKind>> balancers{
      {"random", LoadBalancerKind::kRandom},
      {"jsq", LoadBalancerKind::kMinOfAll},
  };
  std::vector<InvariantCase> cases;
  for (const auto& [pname, policy] : policies) {
    for (const auto& [qname, queue] : queues) {
      for (const auto& [bname, balancer] : balancers) {
        cases.push_back(InvariantCase{pname + "_" + qname + "_" + bname,
                                      policy, queue, balancer});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, SimInvariants,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace reissue::sim
