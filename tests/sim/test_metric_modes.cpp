// Completion-order metric accumulation (core::LogMode::kStreamingUnordered)
// vs the replay-order reference (kStreaming).
//
// The unordered contract promises the same observation *multiset* — every
// on_query / on_reissue call with bit-identical arguments — delivered in a
// different (completion) order, plus an identical on_complete.  The tests
// here pin that equivalence across every mechanism the simulator composes:
// queueing, direct-complete infinite-server runs, correlated service,
// multi-stage policies, lazy cancellation, interference episodes,
// heterogeneous fleets and bursty arrivals.
//
// The emission *order* of the unordered path is itself deterministic per
// (system, seed, policy), so it carries its own golden hashes — gated on
// the same libm probes as test_cluster_golden.cpp, because the observed
// values flow through pow/log.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "reissue/core/run_result.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/workloads.hpp"
#include "reissue/stats/distributions.hpp"

namespace reissue::sim {
namespace {

/// libm sentinels shared with test_cluster_golden.cpp.
constexpr std::uint64_t kPowProbe = 0x3ff5201fdad96895ull;
constexpr std::uint64_t kLogProbe = 0xc000bc233ad9edd6ull;

bool libm_matches_baseline() {
  const double a = std::pow(0.7366218546322401, -1.0 / 1.1);
  const double b = std::log(0.1234567890123456789);
  return std::bit_cast<std::uint64_t>(a) == kPowProbe &&
         std::bit_cast<std::uint64_t>(b) == kLogProbe;
}

#define REQUIRE_BASELINE_LIBM()                                        \
  if (!libm_matches_baseline()) {                                      \
    GTEST_SKIP() << "different libm than the recorded golden baseline" \
                    " (pow/log bit patterns differ)";                  \
  }

struct QueryObs {
  double latency;
  double primary;

  friend bool operator==(const QueryObs&, const QueryObs&) = default;
  friend auto operator<=>(const QueryObs&, const QueryObs&) = default;
};

struct ReissueObs {
  double primary;
  double response;
  double delay;
  bool cancelled;

  friend bool operator==(const ReissueObs&, const ReissueObs&) = default;
  friend auto operator<=>(const ReissueObs&, const ReissueObs&) = default;
};

/// Records every observation in delivery order.
class RecordingObserver final : public core::RunObserver {
 public:
  void on_query(double latency, double primary) override {
    queries.push_back({latency, primary});
  }
  void on_reissue(double primary, double response, double delay,
                  bool cancelled) override {
    reissues.push_back({primary, response, delay, cancelled});
  }
  void on_complete(std::size_t queries_total, std::size_t reissues_issued,
                   double utilization) override {
    total_queries = queries_total;
    total_reissues = reissues_issued;
    total_utilization = utilization;
    ++complete_calls;
  }

  std::vector<QueryObs> queries;
  std::vector<ReissueObs> reissues;
  std::size_t total_queries = 0;
  std::size_t total_reissues = 0;
  double total_utilization = 0.0;
  int complete_calls = 0;
};

workloads::WorkloadOptions small_options() {
  workloads::WorkloadOptions opts;
  opts.queries = 2500;
  opts.warmup = 250;
  opts.seed = 0x5eed;
  return opts;
}

/// Every ClusterConfig extension at once (same shape as the kitchen-sink
/// golden): heterogeneous speeds, min-of-two balancing, prioritized
/// queueing, lazy cancellation, interference and bursty phases.
Cluster kitchen_sink() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.arrival_rate = arrival_rate_for_utilization(0.5, 6, 22.0);
  cfg.queries = 2500;
  cfg.warmup = 250;
  cfg.load_balancer = LoadBalancerKind::kMinOfTwo;
  cfg.queue = QueueDisciplineKind::kPrioritizedFifo;
  cfg.exclude_primary_server = true;
  cfg.cancel_on_completion = true;
  cfg.cancellation_overhead = 0.1;
  cfg.interference_rate = 0.002;
  cfg.interference_duration = stats::make_lognormal(3.0, 0.6);
  cfg.server_speeds = {1.0, 1.0, 1.5, 1.0, 2.0, 1.0};
  cfg.arrival_phases = {{500.0, 1.0}, {250.0, 1.8}};
  cfg.seed = 0x601de;
  auto service = make_correlated_service(
      stats::make_truncated(stats::make_pareto(1.1, 2.0), 5000.0), 0.5);
  return Cluster(cfg, std::move(service));
}

/// Runs `cluster` under `policy` in both streaming modes and asserts the
/// unordered observations are exactly a permutation of the replay-order
/// reference: identical sorted multisets (bit-for-bit values) and an
/// identical on_complete.
void expect_same_multiset(Cluster& cluster, const core::ReissuePolicy& policy) {
  RecordingObserver replay;
  cluster.run_streaming(policy, replay);
  RecordingObserver unordered;
  cluster.run_streaming_unordered(policy, unordered);

  ASSERT_EQ(replay.complete_calls, 1);
  ASSERT_EQ(unordered.complete_calls, 1);
  EXPECT_EQ(unordered.total_queries, replay.total_queries);
  EXPECT_EQ(unordered.total_reissues, replay.total_reissues);
  EXPECT_EQ(unordered.total_utilization, replay.total_utilization);

  ASSERT_EQ(unordered.queries.size(), replay.queries.size());
  ASSERT_EQ(unordered.reissues.size(), replay.reissues.size());
  std::ranges::sort(replay.queries);
  std::ranges::sort(unordered.queries);
  EXPECT_EQ(unordered.queries, replay.queries);
  std::ranges::sort(replay.reissues);
  std::ranges::sort(unordered.reissues);
  EXPECT_EQ(unordered.reissues, replay.reissues);
}

TEST(MetricModes, QueueingSingleRSameMultiset) {
  Cluster cluster = workloads::make_queueing(0.4, 0.5, small_options());
  expect_same_multiset(cluster, core::ReissuePolicy::single_r(20.0, 0.5));
}

TEST(MetricModes, QueueingNoReissueSameMultiset) {
  Cluster cluster = workloads::make_queueing(0.4, 0.5, small_options());
  expect_same_multiset(cluster, core::ReissuePolicy::none());
}

TEST(MetricModes, QueueingMultiStageSameMultiset) {
  Cluster cluster = workloads::make_queueing(0.4, 0.5, small_options());
  expect_same_multiset(cluster,
                       core::ReissuePolicy::double_r(5.0, 0.3, 15.0, 0.8));
}

TEST(MetricModes, IndependentDirectCompleteSameMultiset) {
  // Infinite-server runs take the direct-complete fast path; immediate(2)
  // exercises multiple stage-0 copies through it.
  Cluster cluster = workloads::make_independent(small_options());
  expect_same_multiset(cluster, core::ReissuePolicy::immediate(2));
}

TEST(MetricModes, CorrelatedSingleDSameMultiset) {
  Cluster cluster = workloads::make_correlated(0.5, small_options());
  expect_same_multiset(cluster, core::ReissuePolicy::single_d(12.5));
}

TEST(MetricModes, KitchenSinkSameMultiset) {
  // Lazy cancellation is the subtle case: a cancelled copy never reaches
  // handle_completion, so the unordered path must emit it either at its
  // cancellation or in its primary's completion sweep.  Interference,
  // heterogeneity and bursty phases ride along.
  Cluster cluster = kitchen_sink();
  expect_same_multiset(cluster, core::ReissuePolicy::single_r(15.0, 0.6));
}

TEST(MetricModes, KitchenSinkMultiStageSameMultiset) {
  Cluster cluster = kitchen_sink();
  expect_same_multiset(cluster,
                       core::ReissuePolicy::double_r(4.0, 0.5, 12.0, 0.9));
}

TEST(MetricModes, UnorderedEmissionOrderIsDeterministic) {
  Cluster cluster = workloads::make_queueing(0.4, 0.5, small_options());
  const auto policy = core::ReissuePolicy::single_r(20.0, 0.5);
  RecordingObserver first;
  cluster.run_streaming_unordered(policy, first);
  RecordingObserver second;
  cluster.run_streaming_unordered(policy, second);
  EXPECT_EQ(first.queries, second.queries);      // delivery order included
  EXPECT_EQ(first.reissues, second.reissues);
  EXPECT_EQ(first.total_utilization, second.total_utilization);
}

// ------------------------------------------------- pinned golden baselines

void append(std::string& out, double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  ASSERT_EQ(ec, std::errc{});
  out.append(buf, end);
  out.push_back('\n');
}

/// Byte-exact fingerprint of the unordered stream in *delivery order* —
/// the order itself is part of the kStreamingUnordered contract (it must
/// be deterministic), so it is golden-pinned alongside the values.
std::string unordered_fingerprint(Cluster& cluster,
                                  const core::ReissuePolicy& policy) {
  RecordingObserver obs;
  cluster.run_streaming_unordered(policy, obs);
  std::string out;
  out += "queries=" + std::to_string(obs.total_queries) + "\n";
  out += "reissues=" + std::to_string(obs.total_reissues) + "\n";
  append(out, obs.total_utilization);
  for (const auto& q : obs.queries) {
    append(out, q.latency);
    append(out, q.primary);
  }
  for (const auto& r : obs.reissues) {
    append(out, r.primary);
    append(out, r.response);
    append(out, r.delay);
    out += r.cancelled ? "c\n" : "-\n";
  }
  return out;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

TEST(MetricModesGolden, QueueingSingleRUnordered) {
  REQUIRE_BASELINE_LIBM();
  Cluster cluster = workloads::make_queueing(0.4, 0.5, small_options());
  EXPECT_EQ(fnv1a(unordered_fingerprint(
                cluster, core::ReissuePolicy::single_r(20.0, 0.5))),
            0xd11202033e9a2b6aull);
}

TEST(MetricModesGolden, IndependentImmediateUnordered) {
  REQUIRE_BASELINE_LIBM();
  Cluster cluster = workloads::make_independent(small_options());
  EXPECT_EQ(fnv1a(unordered_fingerprint(cluster,
                                        core::ReissuePolicy::immediate(2))),
            0x8425fece7f4d9351ull);
}

TEST(MetricModesGolden, KitchenSinkUnordered) {
  REQUIRE_BASELINE_LIBM();
  Cluster cluster = kitchen_sink();
  EXPECT_EQ(fnv1a(unordered_fingerprint(
                cluster, core::ReissuePolicy::single_r(15.0, 0.6))),
            0xb18f461ab91ec756ull);
}

// -------------------------------------------- default interface delegation

/// Minimal SystemUnderTest with no native unordered path: the base-class
/// run_streaming_unordered must delegate to run_streaming (replay order is
/// one legal unordered order).
class ReplayOnlySystem final : public core::SystemUnderTest {
 public:
  core::RunResult run(const core::ReissuePolicy&) override { return {}; }
  void run_streaming(const core::ReissuePolicy&,
                     core::RunObserver& observer) override {
    observer.on_query(3.0, 4.0);
    observer.on_reissue(4.0, 2.0, 1.0, false);
    observer.on_complete(1, 1, 0.5);
  }
};

TEST(MetricModes, DefaultUnorderedDelegatesToRunStreaming) {
  ReplayOnlySystem system;
  RecordingObserver obs;
  system.run_streaming_unordered(core::ReissuePolicy::none(), obs);
  ASSERT_EQ(obs.queries.size(), 1u);
  EXPECT_EQ(obs.queries[0], (QueryObs{3.0, 4.0}));
  ASSERT_EQ(obs.reissues.size(), 1u);
  EXPECT_EQ(obs.reissues[0], (ReissueObs{4.0, 2.0, 1.0, false}));
  EXPECT_EQ(obs.total_queries, 1u);
  EXPECT_EQ(obs.complete_calls, 1);
}

}  // namespace
}  // namespace reissue::sim
