// Fork-join sibling groups (ClusterConfig::FanoutPlan): k-of-n completion
// semantics, spread and erasure placement, sibling counters, validation,
// and byte-identical determinism.  The behavioral contracts pinned here
// are the ones the redesign promises on top of the paper's model: k=1
// replication can only help a query (its latency is the min over the
// group), k=n fork-join can only hurt (the max), erasure-coded reads
// scale every shard's service by 1/k, and spread placement never lands
// two live copies of one group on the same server.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <tuple>
#include <utility>
#include <string>
#include <vector>

#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/service_model.hpp"
#include "reissue/sim/sim_observer.hpp"
#include "reissue/stats/distributions.hpp"

namespace reissue::sim {
namespace {

void append(std::string& out, double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  ASSERT_EQ(ec, std::errc{});
  out.append(buf, end);
  out.push_back('\n');
}

std::string fingerprint(const core::RunResult& result) {
  std::string out;
  out += "queries=" + std::to_string(result.queries) + "\n";
  out += "reissues=" + std::to_string(result.reissues_issued) + "\n";
  append(out, result.utilization);
  for (double x : result.query_latencies) append(out, x);
  for (double x : result.primary_latencies) append(out, x);
  for (double x : result.reissue_latencies) append(out, x);
  for (double x : result.reissue_delays) append(out, x);
  return out;
}

ClusterConfig fanout_config(std::size_t copies, std::size_t require,
                            ClusterConfig::FanoutPlan::Placement placement,
                            double utilization) {
  ClusterConfig cfg;
  cfg.servers = 8;
  cfg.arrival_rate = arrival_rate_for_utilization(utilization, 8, 22.0);
  cfg.queries = 2000;
  cfg.warmup = 200;
  cfg.fanout.copies = copies;
  cfg.fanout.require = require;
  cfg.fanout.placement = placement;
  cfg.cancel_on_completion = true;
  cfg.seed = 0xfa9e;
  return cfg;
}

Cluster make_cluster(const ClusterConfig& cfg) {
  return Cluster(cfg, make_iid_service(stats::make_truncated(
                          stats::make_pareto(1.1, 2.0), 5000.0)));
}

using Placement = ClusterConfig::FanoutPlan::Placement;

// Records per-query dispatch servers and the final counters.
class GroupProbe final : public SimObserver {
 public:
  void on_run_begin(const RunInfo& run) override {
    servers_by_query_.assign(run.queries, {});
    group_completes_ = 0;
  }
  void on_dispatch(double /*now*/, std::uint64_t query, CopyKind kind,
                   std::uint32_t /*copy_index*/, std::uint32_t server,
                   double /*service_time*/) override {
    if (kind == CopyKind::kPrimary || kind == CopyKind::kSibling) {
      servers_by_query_[query].push_back(server);
    }
  }
  void on_group_complete(double /*now*/, std::uint64_t /*query*/,
                         std::uint32_t responded, CopyKind /*winner_kind*/,
                         std::uint32_t /*winner_copy*/) override {
    ++group_completes_;
    responded_.push_back(responded);
  }
  void on_run_end(double /*horizon*/, double /*utilization*/,
                  const RunCounters& counters) override {
    counters_ = counters;
  }

  std::vector<std::vector<std::uint32_t>> servers_by_query_;
  std::vector<std::uint32_t> responded_;
  std::uint64_t group_completes_ = 0;
  RunCounters counters_;
};

TEST(Fanout, KOfOneNeverSlowerThanPrimary) {
  // Completion is the first response over the group, and the primary is a
  // member, so no query can finish later than its primary would alone.
  auto cluster =
      make_cluster(fanout_config(3, 1, Placement::kSpread, 0.2));
  const auto result = cluster.run(core::ReissuePolicy::none());
  ASSERT_EQ(result.query_latencies.size(), result.primary_latencies.size());
  std::size_t sibling_wins = 0;
  for (std::size_t i = 0; i < result.query_latencies.size(); ++i) {
    EXPECT_LE(result.query_latencies[i], result.primary_latencies[i]);
    if (result.query_latencies[i] < result.primary_latencies[i]) {
      ++sibling_wins;
    }
  }
  // With heavy-tailed service a sibling must beat the primary sometimes.
  EXPECT_GT(sibling_wins, 0u);
}

TEST(Fanout, AllOfNWaitsForSlowestSibling) {
  // k == n is fork-join: the query completes at the last response, so it
  // can never beat the primary alone.
  auto cluster =
      make_cluster(fanout_config(3, 3, Placement::kSpread, 0.1));
  const auto result = cluster.run(core::ReissuePolicy::none());
  std::size_t slower = 0;
  for (std::size_t i = 0; i < result.query_latencies.size(); ++i) {
    EXPECT_GE(result.query_latencies[i], result.primary_latencies[i]);
    if (result.query_latencies[i] > result.primary_latencies[i]) ++slower;
  }
  EXPECT_GT(slower, 0u);
}

TEST(Fanout, ErasureScalesShardServiceByRequire) {
  // An erasure-coded read fetches 1/k of the object per copy.  With
  // constant service and a nearly idle cluster the fastest queries run a
  // full shard read with no queueing: exactly service / k.
  ClusterConfig cfg = fanout_config(4, 2, Placement::kErasure, 0.02);
  auto cluster = Cluster(cfg, make_iid_service(stats::make_constant(10.0)));
  const auto result = cluster.run(core::ReissuePolicy::none());
  ASSERT_FALSE(result.query_latencies.empty());
  const double fastest = *std::min_element(result.query_latencies.begin(),
                                           result.query_latencies.end());
  EXPECT_DOUBLE_EQ(fastest, 5.0);
  for (double latency : result.query_latencies) {
    EXPECT_GE(latency, 5.0);
  }
}

TEST(Fanout, SpreadPlacesGroupOnDistinctServers) {
  // copies == servers exhausts the candidate pool exactly: every group
  // must cover all eight servers with no repeats.
  GroupProbe probe;
  auto cluster =
      make_cluster(fanout_config(8, 1, Placement::kSpread, 0.05));
  cluster.set_sim_observer(&probe);
  (void)cluster.run(core::ReissuePolicy::none());
  for (const auto& servers : probe.servers_by_query_) {
    ASSERT_EQ(servers.size(), 8u);
    const std::set<std::uint32_t> distinct(servers.begin(), servers.end());
    EXPECT_EQ(distinct.size(), 8u);
  }
}

TEST(Fanout, SiblingCountersAreCoherent) {
  GroupProbe probe;
  ClusterConfig cfg = fanout_config(3, 1, Placement::kSpread, 0.2);
  auto cluster = make_cluster(cfg);
  cluster.set_sim_observer(&probe);
  (void)cluster.run(core::ReissuePolicy::none());
  const RunCounters& c = probe.counters_;
  // No crashes: every query issues exactly copies-1 siblings.
  EXPECT_EQ(c.siblings_issued, 2u * cfg.queries);
  // For k == 1 a sibling response is useful iff it won the group, so the
  // waste tally is exactly the losers.
  EXPECT_GT(c.sibling_wins, 0u);
  EXPECT_EQ(c.siblings_wasted, c.siblings_issued - c.sibling_wins);
  // Losing siblings still in flight get cancelled on completion.
  EXPECT_GT(c.siblings_cancelled, 0u);
  EXPECT_LE(c.siblings_cancelled, c.siblings_issued);
  // One group completion per query, each at exactly k responses.
  EXPECT_EQ(probe.group_completes_, cfg.queries);
  for (std::uint32_t responded : probe.responded_) {
    EXPECT_EQ(responded, 1u);
  }
}

TEST(Fanout, GroupCompletesAtExactlyKResponses) {
  GroupProbe probe;
  ClusterConfig cfg = fanout_config(5, 3, Placement::kIndependent, 0.1);
  auto cluster = make_cluster(cfg);
  cluster.set_sim_observer(&probe);
  (void)cluster.run(core::ReissuePolicy::none());
  EXPECT_EQ(probe.group_completes_, cfg.queries);
  for (std::uint32_t responded : probe.responded_) {
    EXPECT_EQ(responded, 3u);
  }
}

TEST(Fanout, ReissueStacksOnTopOfTheGroup) {
  // A reissue policy runs per group: stages fire against the group clock
  // and a reissue joins the group as a late copy, so issued reissues
  // produce paired (X, Y) observations exactly as without fan-out, and
  // group completion suppresses pending stages.
  ClusterConfig cfg = fanout_config(2, 1, Placement::kSpread, 0.3);
  auto cluster = make_cluster(cfg);
  const auto result = cluster.run(core::ReissuePolicy::single_r(30.0, 0.5));
  EXPECT_GT(result.reissues_issued, 0u);
  // reissues_issued counts warmup queries too; the logs are post-warmup.
  ASSERT_FALSE(result.reissue_latencies.empty());
  EXPECT_EQ(result.reissue_latencies.size(), result.reissue_delays.size());
  EXPECT_LE(result.reissue_latencies.size(), result.reissues_issued);
  // With k = 1 the group completes at the first response, so far fewer
  // reissues fire than queries: completion suppresses the rest.
  EXPECT_LT(result.reissues_issued, result.queries);
  for (double delay : result.reissue_delays) {
    EXPECT_DOUBLE_EQ(delay, 30.0);
  }
}

TEST(Fanout, EverySeedReplaysByteIdentically) {
  for (const ClusterConfig& cfg :
       {fanout_config(3, 1, Placement::kSpread, 0.3),
        fanout_config(6, 4, Placement::kErasure, 0.3),
        fanout_config(4, 2, Placement::kIndependent, 0.3)}) {
    auto a = make_cluster(cfg);
    auto b = make_cluster(cfg);
    const auto policy = core::ReissuePolicy::single_r(20.0, 0.5);
    EXPECT_EQ(fingerprint(a.run(policy)), fingerprint(b.run(policy)));
  }
}

TEST(Fanout, CrashedSiblingsAreRedispatched) {
  // A crash can eat a sibling the completion rule still needs (k == n),
  // so failed siblings restart like failed primaries and every query
  // still completes.
  ClusterConfig cfg = fanout_config(3, 3, Placement::kSpread, 0.2);
  cfg.faults.crash_mtbf = 1500.0;
  cfg.faults.crash_downtime = stats::make_lognormal(4.0, 0.6);
  GroupProbe probe;
  auto cluster = make_cluster(cfg);
  cluster.set_sim_observer(&probe);
  const auto result = cluster.run(core::ReissuePolicy::none());
  EXPECT_EQ(result.queries, cfg.queries - cfg.warmup);
  for (double latency : result.query_latencies) {
    EXPECT_TRUE(std::isfinite(latency) && latency >= 0.0);
  }
  // The observer sees warmup queries too: one completion per arrival.
  EXPECT_EQ(probe.group_completes_, cfg.queries);
  // Re-dispatches add extra sibling issues beyond the arrival fan-out.
  EXPECT_GE(probe.counters_.siblings_issued, 2u * cfg.queries);
}

TEST(Fanout, MetricModesAgreeOnObservationMultiset) {
  // Replay and completion-order modes must emit the same observation
  // multiset for the same seed (delivered in different orders).
  struct Collector final : core::RunObserver {
    void on_query(double latency, double primary) override {
      queries.emplace_back(latency, primary);
    }
    void on_reissue(double primary, double response, double delay,
                    bool cancelled) override {
      reissues.emplace_back(primary, response, delay, cancelled);
    }
    void on_complete(std::size_t queries_total, std::size_t reissues_issued,
                     double utilization) override {
      totals = {queries_total, reissues_issued, utilization};
    }
    std::vector<std::pair<double, double>> queries;
    std::vector<std::tuple<double, double, double, bool>> reissues;
    std::tuple<std::size_t, std::size_t, double> totals;
  };

  ClusterConfig cfg = fanout_config(4, 2, Placement::kErasure, 0.3);
  auto replay = make_cluster(cfg);
  auto unordered = make_cluster(cfg);
  const auto policy = core::ReissuePolicy::single_r(30.0, 0.5);
  Collector a, b;
  replay.run_streaming(policy, a);
  unordered.run_streaming_unordered(policy, b);

  std::sort(a.queries.begin(), a.queries.end());
  std::sort(b.queries.begin(), b.queries.end());
  std::sort(a.reissues.begin(), a.reissues.end());
  std::sort(b.reissues.begin(), b.reissues.end());
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.reissues, b.reissues);
  EXPECT_EQ(a.totals, b.totals);
}

TEST(Fanout, ValidationRejectsBadPlans) {
  auto expect_reject = [](ClusterConfig cfg, const char* what) {
    EXPECT_THROW((void)make_cluster(cfg), std::invalid_argument) << what;
  };
  ClusterConfig zero = fanout_config(3, 1, Placement::kSpread, 0.2);
  zero.fanout.copies = 0;
  expect_reject(zero, "copies == 0");

  ClusterConfig k0 = fanout_config(3, 1, Placement::kSpread, 0.2);
  k0.fanout.require = 0;
  expect_reject(k0, "require == 0");

  ClusterConfig kn = fanout_config(3, 1, Placement::kSpread, 0.2);
  kn.fanout.require = 4;
  expect_reject(kn, "require > copies");

  ClusterConfig wide = fanout_config(3, 1, Placement::kSpread, 0.2);
  wide.fanout.copies = 9;  // servers == 8
  expect_reject(wide, "copies > servers");

  ClusterConfig infinite = fanout_config(3, 1, Placement::kSpread, 0.2);
  infinite.infinite_servers = true;
  expect_reject(infinite, "fanout on infinite servers");
}

/// libm sentinels shared with test_cluster_golden.cpp: the fingerprint
/// flows through pow/log, so the pinned hashes only hold on the baseline
/// libm.
constexpr std::uint64_t kPowProbe = 0x3ff5201fdad96895ull;
constexpr std::uint64_t kLogProbe = 0xc000bc233ad9edd6ull;

bool libm_matches_baseline() {
  const double a = std::pow(0.7366218546322401, -1.0 / 1.1);
  const double b = std::log(0.1234567890123456789);
  return std::bit_cast<std::uint64_t>(a) == kPowProbe &&
         std::bit_cast<std::uint64_t>(b) == kLogProbe;
}

#define REQUIRE_BASELINE_LIBM()                                        \
  if (!libm_matches_baseline()) {                                      \
    GTEST_SKIP() << "different libm than the recorded golden baseline" \
                    " (pow/log bit patterns differ)";                  \
  }

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

TEST(Fanout, KitchenSinkGolden) {
  // Every fan-out mechanism at once — erasure placement, crash faults
  // (sibling re-dispatch), lazy cancellation, a two-stage reissue policy —
  // hashed so any change to the sibling-group event order is caught.
  REQUIRE_BASELINE_LIBM();
  ClusterConfig cfg = fanout_config(6, 4, Placement::kErasure, 0.35);
  cfg.faults.crash_mtbf = 1500.0;
  cfg.faults.crash_downtime = stats::make_lognormal(4.0, 0.6);
  auto cluster = Cluster(cfg, make_correlated_service(
                                  stats::make_truncated(
                                      stats::make_pareto(1.1, 2.0), 5000.0),
                                  0.5));
  const auto none = cluster.run(core::ReissuePolicy::none());
  EXPECT_EQ(fnv1a(fingerprint(none)), 0xe628feb7ac3ce528ull);
  cluster.reseed(cfg.seed);
  const auto staged = cluster.run(core::ReissuePolicy::single_r(25.0, 0.5));
  EXPECT_EQ(fnv1a(fingerprint(staged)), 0x643ac9ed7110c8daull);
}

TEST(Fanout, DegeneratePlanMatchesNoFanout) {
  // copies == 1 must be byte-identical to a config with no FanoutPlan
  // touched at all: same RNG stream order, same arena layout.
  ClusterConfig plain;
  plain.servers = 8;
  plain.arrival_rate = arrival_rate_for_utilization(0.3, 8, 22.0);
  plain.queries = 2000;
  plain.warmup = 200;
  plain.seed = 0xfa9e;

  ClusterConfig degenerate = plain;
  degenerate.fanout.copies = 1;
  degenerate.fanout.require = 1;
  degenerate.fanout.placement = Placement::kErasure;  // inert when n == 1

  auto a = make_cluster(plain);
  auto b = make_cluster(degenerate);
  const auto policy = core::ReissuePolicy::single_r(20.0, 0.5);
  EXPECT_EQ(fingerprint(a.run(policy)), fingerprint(b.run(policy)));
}

}  // namespace
}  // namespace reissue::sim
