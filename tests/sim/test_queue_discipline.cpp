#include "reissue/sim/queue_discipline.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace reissue::sim {
namespace {

Request make_request(std::uint64_t id, CopyKind kind,
                     std::uint32_t connection = 0) {
  Request r;
  r.query_id = id;
  r.kind = kind;
  r.connection = connection;
  return r;
}

TEST(Fifo, PopsInArrivalOrder) {
  auto q = make_queue_discipline(QueueDisciplineKind::kFifo);
  for (std::uint64_t i = 0; i < 5; ++i) {
    q->push(make_request(i, CopyKind::kPrimary));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(q->pop().query_id, i);
  }
  EXPECT_TRUE(q->empty());
}

TEST(Fifo, MixesKindsWithoutPreference) {
  auto q = make_queue_discipline(QueueDisciplineKind::kFifo);
  q->push(make_request(1, CopyKind::kReissue));
  q->push(make_request(2, CopyKind::kPrimary));
  EXPECT_EQ(q->pop().query_id, 1u);
  EXPECT_EQ(q->pop().query_id, 2u);
}

TEST(Fifo, PopOnEmptyThrows) {
  auto q = make_queue_discipline(QueueDisciplineKind::kFifo);
  EXPECT_THROW(q->pop(), std::logic_error);
}

TEST(PrioritizedFifo, PrimariesAlwaysFirst) {
  auto q = make_queue_discipline(QueueDisciplineKind::kPrioritizedFifo);
  q->push(make_request(1, CopyKind::kReissue));
  q->push(make_request(2, CopyKind::kPrimary));
  q->push(make_request(3, CopyKind::kReissue));
  q->push(make_request(4, CopyKind::kPrimary));
  EXPECT_EQ(q->pop().query_id, 2u);
  EXPECT_EQ(q->pop().query_id, 4u);
  EXPECT_EQ(q->pop().query_id, 1u);  // reissues FIFO after primaries
  EXPECT_EQ(q->pop().query_id, 3u);
}

TEST(PrioritizedLifo, ReissuesPopLifo) {
  auto q = make_queue_discipline(QueueDisciplineKind::kPrioritizedLifo);
  q->push(make_request(1, CopyKind::kReissue));
  q->push(make_request(2, CopyKind::kReissue));
  q->push(make_request(3, CopyKind::kPrimary));
  EXPECT_EQ(q->pop().query_id, 3u);
  EXPECT_EQ(q->pop().query_id, 2u);  // newest reissue first
  EXPECT_EQ(q->pop().query_id, 1u);
}

TEST(PrioritizedQueues, SizeCountsBoth) {
  for (auto kind : {QueueDisciplineKind::kPrioritizedFifo,
                    QueueDisciplineKind::kPrioritizedLifo}) {
    auto q = make_queue_discipline(kind);
    q->push(make_request(1, CopyKind::kPrimary));
    q->push(make_request(2, CopyKind::kReissue));
    EXPECT_EQ(q->size(), 2u) << to_string(kind);
  }
}

TEST(RoundRobinConnections, CyclesAcrossConnections) {
  auto q = make_queue_discipline(QueueDisciplineKind::kRoundRobinConnections);
  // Connection 0 floods 3 requests, connections 1 and 2 one each.
  q->push(make_request(10, CopyKind::kPrimary, 0));
  q->push(make_request(11, CopyKind::kPrimary, 0));
  q->push(make_request(12, CopyKind::kPrimary, 0));
  q->push(make_request(20, CopyKind::kPrimary, 1));
  q->push(make_request(30, CopyKind::kPrimary, 2));
  // One request per connection per round: 10, 20, 30, then 11, 12.
  EXPECT_EQ(q->pop().query_id, 10u);
  EXPECT_EQ(q->pop().query_id, 20u);
  EXPECT_EQ(q->pop().query_id, 30u);
  EXPECT_EQ(q->pop().query_id, 11u);
  EXPECT_EQ(q->pop().query_id, 12u);
}

TEST(RoundRobinConnections, PerConnectionOrderIsFifo) {
  auto q = make_queue_discipline(QueueDisciplineKind::kRoundRobinConnections);
  q->push(make_request(1, CopyKind::kPrimary, 7));
  q->push(make_request(2, CopyKind::kPrimary, 7));
  q->push(make_request(3, CopyKind::kPrimary, 7));
  EXPECT_EQ(q->pop().query_id, 1u);
  EXPECT_EQ(q->pop().query_id, 2u);
  EXPECT_EQ(q->pop().query_id, 3u);
}

TEST(ConnectionBatch, DrainsLaneBeforeAdvancing) {
  auto q = make_queue_discipline(QueueDisciplineKind::kConnectionBatch);
  q->push(make_request(10, CopyKind::kPrimary, 0));
  q->push(make_request(11, CopyKind::kPrimary, 0));
  q->push(make_request(12, CopyKind::kPrimary, 0));
  q->push(make_request(20, CopyKind::kPrimary, 1));
  // Exhaustive batch: connection 0's whole pipeline first (paper §6.2:
  // Redis services each active connection "in a batch").
  EXPECT_EQ(q->pop().query_id, 10u);
  EXPECT_EQ(q->pop().query_id, 11u);
  EXPECT_EQ(q->pop().query_id, 12u);
  EXPECT_EQ(q->pop().query_id, 20u);
}

TEST(ConnectionBatch, AdvancesAfterLaneEmpties) {
  auto q = make_queue_discipline(QueueDisciplineKind::kConnectionBatch);
  q->push(make_request(1, CopyKind::kPrimary, 0));
  EXPECT_EQ(q->pop().query_id, 1u);
  // Lane 0 drained; later arrivals on lane 1 go next even if lane 0
  // refills afterwards.
  q->push(make_request(2, CopyKind::kPrimary, 1));
  q->push(make_request(3, CopyKind::kPrimary, 0));
  EXPECT_EQ(q->pop().query_id, 2u);
  EXPECT_EQ(q->pop().query_id, 3u);
  EXPECT_TRUE(q->empty());
}

TEST(RoundRobinConnections, NewConnectionJoinsRotation) {
  auto q = make_queue_discipline(QueueDisciplineKind::kRoundRobinConnections);
  q->push(make_request(1, CopyKind::kPrimary, 0));
  EXPECT_EQ(q->pop().query_id, 1u);
  q->push(make_request(2, CopyKind::kPrimary, 1));
  q->push(make_request(3, CopyKind::kPrimary, 0));
  // Both lanes have one entry; either order is acceptable round-robin,
  // but both must drain.
  std::vector<std::uint64_t> got{q->pop().query_id, q->pop().query_id};
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_TRUE(q->empty());
}

TEST(AllDisciplines, SizeTracksPushPop) {
  for (auto kind :
       {QueueDisciplineKind::kFifo, QueueDisciplineKind::kPrioritizedFifo,
        QueueDisciplineKind::kPrioritizedLifo,
        QueueDisciplineKind::kRoundRobinConnections,
        QueueDisciplineKind::kConnectionBatch}) {
    auto q = make_queue_discipline(kind);
    EXPECT_TRUE(q->empty()) << to_string(kind);
    for (std::uint64_t i = 0; i < 10; ++i) {
      q->push(make_request(i, i % 2 ? CopyKind::kPrimary : CopyKind::kReissue,
                           static_cast<std::uint32_t>(i % 3)));
      EXPECT_EQ(q->size(), i + 1);
    }
    for (std::uint64_t i = 0; i < 10; ++i) {
      (void)q->pop();
      EXPECT_EQ(q->size(), 9 - i);
    }
    EXPECT_TRUE(q->empty()) << to_string(kind);
  }
}

TEST(AllDisciplines, ConservationNoLossNoDuplication) {
  for (auto kind :
       {QueueDisciplineKind::kFifo, QueueDisciplineKind::kPrioritizedFifo,
        QueueDisciplineKind::kPrioritizedLifo,
        QueueDisciplineKind::kRoundRobinConnections,
        QueueDisciplineKind::kConnectionBatch}) {
    auto q = make_queue_discipline(kind);
    std::vector<bool> seen(100, false);
    for (std::uint64_t i = 0; i < 100; ++i) {
      q->push(make_request(i, i % 3 ? CopyKind::kPrimary : CopyKind::kReissue,
                           static_cast<std::uint32_t>(i % 7)));
    }
    for (int i = 0; i < 100; ++i) {
      const auto id = q->pop().query_id;
      ASSERT_LT(id, 100u);
      ASSERT_FALSE(seen[id]) << to_string(kind);
      seen[id] = true;
    }
    EXPECT_TRUE(q->empty());
  }
}

}  // namespace
}  // namespace reissue::sim
