// Ordering contract of the typed event core: events run in (time, seq)
// order — time ties break in insertion order — run_until leaves later
// events queued, and schedule() rejects past/non-finite times.  The queue
// is generic over its payload; these tests drive it with int payloads and
// with the simulator's POD SimEvent.
#include "reissue/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "reissue/sim/event.hpp"

namespace reissue::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue<int> q;
  std::vector<int> order;
  q.schedule(3.0, 3);
  q.schedule(1.0, 1);
  q.schedule(2.0, 2);
  q.run_to_completion([&](int v, double) { order.push_back(v); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue<int> q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, i);
  }
  q.run_to_completion([&](int v, double) { order.push_back(v); });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ManyTiedEventsStayInInsertionOrderAcrossTimes) {
  // Interleave two tied timestamps; each group must preserve insertion
  // order regardless of heap internals.
  EventQueue<int> q;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    q.schedule(i % 2 == 0 ? 1.0 : 2.0, i);
  }
  q.run_to_completion([&](int v, double) { order.push_back(v); });
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[i], 2 * i);           // all time-1.0 events first...
    EXPECT_EQ(order[32 + i], 2 * i + 1);  // ...then the time-2.0 events
  }
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue<int> q;
  q.schedule(2.5, 0);
  q.schedule(7.5, 1);
  int fired = 0;
  const double end = q.run_to_completion([&](int v, double now) {
    ++fired;
    if (v == 0) EXPECT_DOUBLE_EQ(now, 2.5);
    if (v == 1) EXPECT_DOUBLE_EQ(now, 7.5);
  });
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(end, 7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
  EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue<int> q;
  int fired = 0;
  q.schedule(1.0, 0);
  q.run_to_completion([&](int v, double now) {
    ++fired;
    if (v == 0) q.schedule(now + 1.0, 1);
  });
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RejectsPastAndNonFiniteEvents) {
  EventQueue<int> q;
  q.schedule(5.0, 0);
  q.run_to_completion([](int, double) {});  // now == 5
  EXPECT_THROW(q.schedule(4.0, 1), std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::infinity(), 1),
               std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::quiet_NaN(), 1),
               std::invalid_argument);
  EXPECT_TRUE(q.empty());  // rejected events were not enqueued
}

TEST(EventQueue, RunUntilLeavesLaterEventsPending) {
  EventQueue<int> q;
  int fired = 0;
  const auto count = [&](int, double) { ++fired; };
  q.schedule(1.0, 0);
  q.schedule(2.0, 1);
  q.schedule(10.0, 2);
  q.run_until(5.0, count);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
  q.run_to_completion(count);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepExecutesExactlyOne) {
  EventQueue<int> q;
  int fired = 0;
  const auto count = [&](int, double) { ++fired; };
  q.schedule(1.0, 0);
  q.schedule(2.0, 1);
  EXPECT_TRUE(q.step(count));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.step(count));
  EXPECT_FALSE(q.step(count));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SameTimeChainedSchedulingIsAllowed) {
  // An event may schedule another event at the *same* timestamp; it runs
  // after every previously queued event at that time.
  EventQueue<int> q;
  std::vector<int> order;
  q.schedule(1.0, 1);
  q.run_to_completion([&](int v, double now) {
    order.push_back(v);
    if (v == 1) q.schedule(now, 2);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CarriesTypedSimEvents) {
  // The simulator's payload round-trips untouched through the heap.
  EventQueue<SimEvent> q;
  q.schedule(2.0, SimEvent::reissue_stage(/*query=*/42, /*stage=*/3));
  q.schedule(1.0, SimEvent::interference_start(/*server=*/7, /*duration=*/9.5));
  std::vector<SimEvent> seen;
  q.run_to_completion(
      [&](const SimEvent& ev, double) { seen.push_back(ev); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].kind, EventKind::kInterferenceStart);
  EXPECT_EQ(seen[0].server(), 7u);
  EXPECT_DOUBLE_EQ(seen[0].duration(), 9.5);
  EXPECT_EQ(seen[1].kind, EventKind::kReissueStage);
  EXPECT_EQ(seen[1].query(), 42u);
  EXPECT_EQ(seen[1].stage, 3u);
}

TEST(EventQueue, ReserveDoesNotAffectSemantics) {
  EventQueue<int> q;
  q.reserve(1024);
  std::vector<int> order;
  for (int i = 9; i >= 0; --i) q.schedule(static_cast<double>(i), i);
  q.run_to_completion([&](int v, double) { order.push_back(v); });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace reissue::sim
