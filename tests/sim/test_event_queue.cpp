#include "reissue/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include <vector>

namespace reissue::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(2.0, [&](double) { order.push_back(2); });
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i](double) { order.push_back(i); });
  }
  q.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  q.schedule(2.5, [&](double now) { EXPECT_DOUBLE_EQ(now, 2.5); });
  q.schedule(7.5, [&](double now) { EXPECT_DOUBLE_EQ(now, 7.5); });
  const double end = q.run_to_completion();
  EXPECT_DOUBLE_EQ(end, 7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
  EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&](double now) {
    ++fired;
    q.schedule(now + 1.0, [&](double) { ++fired; });
  });
  q.run_to_completion();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RejectsPastAndNonFiniteEvents) {
  EventQueue q;
  q.schedule(5.0, [](double) {});
  q.run_to_completion();  // now == 5
  EXPECT_THROW(q.schedule(4.0, [](double) {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::infinity(),
                          [](double) {}),
               std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::quiet_NaN(),
                          [](double) {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilLeavesLaterEventsPending) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&](double) { ++fired; });
  q.schedule(2.0, [&](double) { ++fired; });
  q.schedule(10.0, [&](double) { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
  q.run_to_completion();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepExecutesExactlyOne) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&](double) { ++fired; });
  q.schedule(2.0, [&](double) { ++fired; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SameTimeChainedSchedulingIsAllowed) {
  // An event may schedule another event at the *same* timestamp.
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double now) {
    order.push_back(1);
    q.schedule(now, [&](double) { order.push_back(2); });
  });
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace reissue::sim
