// Old-vs-new golden-log test for the typed-event-core refactor.
//
// Each hash below is the FNV-1a fingerprint of the complete RunResult logs
// (queries, reissue counts, utilization, every latency in every log, in
// order) produced by the PRE-refactor closure-based simulator for a fixed
// (workload, seed, policy).  The refactored Simulation must reproduce them
// bit-for-bit: any change to RNG stream derivation, event ordering
// (including (time, seq) tie-breaks), arena bookkeeping or log collection
// shows up as a hash mismatch.
//
// The reference values depend on the exact libm the baseline was built
// against (pow/log are not correctly rounded, so bit patterns vary across
// libm builds).  A probe checks two sentinel computations first and skips
// the hash comparisons — loudly — on a different libm, where "identical to
// the recorded baseline" is unobservable.  Determinism per se is still
// covered on every platform by test_cluster_determinism.cpp.
#include <gtest/gtest.h>

#include <bit>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>

#include "reissue/core/run_result.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/workloads.hpp"
#include "reissue/stats/distributions.hpp"

namespace reissue::sim {
namespace {

/// libm sentinels recorded together with the golden hashes.
constexpr std::uint64_t kPowProbe = 0x3ff5201fdad96895ull;
constexpr std::uint64_t kLogProbe = 0xc000bc233ad9edd6ull;

bool libm_matches_baseline() {
  const double a = std::pow(0.7366218546322401, -1.0 / 1.1);
  const double b = std::log(0.1234567890123456789);
  return std::bit_cast<std::uint64_t>(a) == kPowProbe &&
         std::bit_cast<std::uint64_t>(b) == kLogProbe;
}

void append(std::string& out, double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  ASSERT_EQ(ec, std::errc{});
  out.append(buf, end);
  out.push_back('\n');
}

/// Byte-exact textual fingerprint of every log the run produced (the same
/// shape test_cluster_determinism.cpp uses).
std::string fingerprint(const core::RunResult& result) {
  std::string out;
  out += "queries=" + std::to_string(result.queries) + "\n";
  out += "reissues=" + std::to_string(result.reissues_issued) + "\n";
  append(out, result.utilization);
  for (double x : result.query_latencies) append(out, x);
  for (double x : result.primary_latencies) append(out, x);
  for (double x : result.reissue_latencies) append(out, x);
  for (double x : result.reissue_delays) append(out, x);
  for (const auto& [x, y] : result.correlated_pairs) {
    append(out, x);
    append(out, y);
  }
  return out;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

workloads::WorkloadOptions golden_options() {
  workloads::WorkloadOptions opts;
  opts.queries = 2500;
  opts.warmup = 250;
  opts.seed = 0x5eed;
  return opts;
}

/// Every ClusterConfig extension at once: heterogeneous speeds, min-of-two
/// balancing, prioritized queueing, lazy cancellation, interference
/// episodes and bursty arrival phases.
Cluster kitchen_sink() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.arrival_rate = arrival_rate_for_utilization(0.5, 6, 22.0);
  cfg.queries = 2500;
  cfg.warmup = 250;
  cfg.load_balancer = LoadBalancerKind::kMinOfTwo;
  cfg.queue = QueueDisciplineKind::kPrioritizedFifo;
  cfg.exclude_primary_server = true;
  cfg.cancel_on_completion = true;
  cfg.cancellation_overhead = 0.1;
  cfg.interference_rate = 0.002;
  cfg.interference_duration = stats::make_lognormal(3.0, 0.6);
  cfg.server_speeds = {1.0, 1.0, 1.5, 1.0, 2.0, 1.0};
  cfg.arrival_phases = {{500.0, 1.0}, {250.0, 1.8}};
  cfg.seed = 0x601de;
  auto service = make_correlated_service(
      stats::make_truncated(stats::make_pareto(1.1, 2.0), 5000.0), 0.5);
  return Cluster(cfg, std::move(service));
}

void expect_golden(Cluster cluster, const core::ReissuePolicy& policy,
                   std::uint64_t expected) {
  const std::string print = fingerprint(cluster.run(policy));
  EXPECT_EQ(fnv1a(print), expected);
}

#define REQUIRE_BASELINE_LIBM()                                        \
  if (!libm_matches_baseline()) {                                      \
    GTEST_SKIP() << "different libm than the recorded golden baseline" \
                    " (pow/log bit patterns differ)";                  \
  }

TEST(ClusterGolden, QueueingNoReissue) {
  REQUIRE_BASELINE_LIBM();
  expect_golden(workloads::make_queueing(0.4, 0.5, golden_options()),
                core::ReissuePolicy::none(), 0xdf8655a30f62ce89ull);
}

TEST(ClusterGolden, QueueingSingleR) {
  REQUIRE_BASELINE_LIBM();
  expect_golden(workloads::make_queueing(0.4, 0.5, golden_options()),
                core::ReissuePolicy::single_r(20.0, 0.5),
                0xb509a7468c6db895ull);
}

TEST(ClusterGolden, QueueingDoubleR) {
  REQUIRE_BASELINE_LIBM();
  expect_golden(workloads::make_queueing(0.4, 0.5, golden_options()),
                core::ReissuePolicy::double_r(5.0, 0.3, 15.0, 0.8),
                0xdfc6affa2d1fe8c6ull);
}

TEST(ClusterGolden, QueueingImmediate) {
  REQUIRE_BASELINE_LIBM();
  expect_golden(workloads::make_queueing(0.4, 0.5, golden_options()),
                core::ReissuePolicy::immediate(2), 0xe177ffa3cbafbe8full);
}

TEST(ClusterGolden, IndependentSingleR) {
  REQUIRE_BASELINE_LIBM();
  expect_golden(workloads::make_independent(golden_options()),
                core::ReissuePolicy::single_r(10.0, 0.5),
                0x0721eb9646d62a74ull);
}

TEST(ClusterGolden, CorrelatedSingleD) {
  REQUIRE_BASELINE_LIBM();
  expect_golden(workloads::make_correlated(0.5, golden_options()),
                core::ReissuePolicy::single_d(12.5), 0xe947da380bec1bb6ull);
}

TEST(ClusterGolden, SensitivityRoundRobinConnections) {
  REQUIRE_BASELINE_LIBM();
  workloads::SensitivityOptions sopts;
  sopts.service = stats::make_exponential(0.1);
  sopts.queue = QueueDisciplineKind::kRoundRobinConnections;
  sopts.load_balancer = LoadBalancerKind::kRoundRobin;
  sopts.base = golden_options();
  expect_golden(workloads::make_sensitivity(sopts),
                core::ReissuePolicy::single_r(15.0, 0.4),
                0x420bf20fef2c43e7ull);
}

TEST(ClusterGolden, KitchenSink) {
  REQUIRE_BASELINE_LIBM();
  expect_golden(kitchen_sink(), core::ReissuePolicy::single_r(15.0, 0.6),
                0x833d6a64b670a7dcull);
}

/// The kitchen sink plus the full fault plan: slowdown episodes,
/// correlated degradation and crash/recovery layered over cancellation,
/// interference, heterogeneous speeds and bursty phases.  Pins the fault
/// layer's event ordering and RNG substream derivation bit-for-bit.
Cluster faulty_kitchen_sink() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.arrival_rate = arrival_rate_for_utilization(0.5, 6, 22.0);
  cfg.queries = 2500;
  cfg.warmup = 250;
  cfg.load_balancer = LoadBalancerKind::kMinOfTwo;
  cfg.queue = QueueDisciplineKind::kPrioritizedFifo;
  cfg.exclude_primary_server = true;
  cfg.cancel_on_completion = true;
  cfg.cancellation_overhead = 0.1;
  cfg.interference_rate = 0.002;
  cfg.interference_duration = stats::make_lognormal(3.0, 0.6);
  cfg.server_speeds = {1.0, 1.0, 1.5, 1.0, 2.0, 1.0};
  cfg.arrival_phases = {{500.0, 1.0}, {250.0, 1.8}};
  cfg.faults.slowdown_rate = 0.001;
  cfg.faults.slowdown_factor = 3.0;
  cfg.faults.slowdown_duration = stats::make_lognormal(3.0, 0.6);
  cfg.faults.degrade_servers = 2;
  cfg.faults.degrade_rate = 0.002;
  cfg.faults.degrade_factor = 2.0;
  cfg.faults.degrade_duration = stats::make_lognormal(3.0, 0.6);
  cfg.faults.crash_mtbf = 2000.0;
  cfg.faults.crash_downtime = stats::make_lognormal(4.0, 0.6);
  cfg.seed = 0x601de;
  auto service = make_correlated_service(
      stats::make_truncated(stats::make_pareto(1.1, 2.0), 5000.0), 0.5);
  return Cluster(cfg, std::move(service));
}

TEST(ClusterGolden, FaultyKitchenSink) {
  REQUIRE_BASELINE_LIBM();
  expect_golden(faulty_kitchen_sink(),
                core::ReissuePolicy::single_r(15.0, 0.6),
                0xd1be8f2cb9d72693ull);
}

// Independent of libm: the streaming path and the full-log path must
// observe identical data — run() is defined as streaming into a
// RunResultBuilder, and this pins that equivalence for external observers.
class RecordingObserver final : public core::RunObserver {
 public:
  void on_query(double latency, double primary) override {
    result_.query_latencies.push_back(latency);
    result_.primary_latencies.push_back(primary);
  }
  void on_reissue(double primary, double response, double delay,
                  bool cancelled) override {
    ++issued_;
    if (cancelled) return;
    result_.reissue_latencies.push_back(response);
    result_.correlated_pairs.emplace_back(primary, response);
    result_.reissue_delays.push_back(delay);
  }
  void on_complete(std::size_t queries, std::size_t reissues_issued,
                   double utilization) override {
    result_.queries = queries;
    result_.reissues_issued = reissues_issued;
    result_.utilization = utilization;
  }

  [[nodiscard]] const core::RunResult& result() const { return result_; }
  [[nodiscard]] std::size_t issued_calls() const { return issued_; }

 private:
  core::RunResult result_;
  std::size_t issued_ = 0;
};

TEST(ClusterGolden, StreamingObserverSeesTheFullLogs) {
  Cluster cluster = workloads::make_queueing(0.4, 0.5, golden_options());
  const auto policy = core::ReissuePolicy::single_r(20.0, 0.5);
  const core::RunResult full = cluster.run(policy);
  RecordingObserver observer;
  cluster.run_streaming(policy, observer);
  EXPECT_EQ(fingerprint(observer.result()), fingerprint(full));
  EXPECT_EQ(observer.issued_calls(), full.reissues_issued);
}

}  // namespace
}  // namespace reissue::sim
