// ServiceModel contracts: the batch API must be bit-identical to the
// scalar draws it replaces (the invariant Simulation's pre-draw paths rely
// on), DrawOrder must describe each built-in model truthfully, and
// TraceService replay — deterministic wraparound and resample mode — must
// be identical under run() and run_streaming().
#include "reissue/sim/service_model.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "reissue/core/run_result.hpp"
#include "reissue/sim/cluster.hpp"

namespace reissue::sim {
namespace {

// ----------------------------------------- TraceService scalar semantics

TEST(TraceService, ReplayWrapsAroundTheTrace) {
  const std::vector<double> trace = {1.0, 2.5, 3.0, 4.25, 7.5};
  auto model = make_trace_service(trace);
  stats::Xoshiro256 rng(7);
  for (std::uint64_t i = 0; i < 3 * trace.size() + 2; ++i) {
    EXPECT_DOUBLE_EQ(model->primary(i, rng), trace[i % trace.size()])
        << "query " << i;
  }
  // Replay consumes no RNG: the stream is untouched.
  stats::Xoshiro256 fresh(7);
  EXPECT_EQ(rng(), fresh());
}

TEST(TraceService, ReissueRepeatsThePrimaryWithoutRng) {
  auto model = make_trace_service({2.0, 9.0});
  stats::Xoshiro256 rng(11);
  EXPECT_DOUBLE_EQ(model->reissue(0, 9.0, rng), 9.0);
  EXPECT_DOUBLE_EQ(model->reissue(123, 2.0, rng), 2.0);
  stats::Xoshiro256 fresh(11);
  EXPECT_EQ(rng(), fresh());
  EXPECT_EQ(model->draw_order(), ServiceModel::DrawOrder::kPrimaryOnly);
}

TEST(TraceService, PrimaryBatchMatchesScalarAcrossWraparound) {
  const std::vector<double> trace = {1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0};
  auto model = make_trace_service(trace);
  stats::Xoshiro256 scalar_rng(3);
  stats::Xoshiro256 batch_rng(3);
  // Start mid-trace and span several wraps.
  const std::uint64_t first = 5;
  std::vector<double> scalar(4 * trace.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    scalar[i] = model->primary(first + i, scalar_rng);
  }
  std::vector<double> batch(scalar.size());
  model->primary_batch(first, batch, batch_rng);
  EXPECT_EQ(scalar, batch);
}

TEST(TraceService, ResampleModeIsSeedDeterministicAndBatchIdentical) {
  const std::vector<double> trace = {1.0, 2.0, 4.0, 8.0};
  auto model = make_trace_service(trace, /*resample=*/true);
  stats::Xoshiro256 scalar_rng(0xabcd);
  std::vector<double> scalar(257);
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    // Resampling ignores the query id; draws come off the RNG stream.
    scalar[i] = model->primary(i, scalar_rng);
    EXPECT_TRUE(scalar[i] == 1.0 || scalar[i] == 2.0 || scalar[i] == 4.0 ||
                scalar[i] == 8.0);
  }
  stats::Xoshiro256 batch_rng(0xabcd);
  std::vector<double> batch(scalar.size());
  model->primary_batch(0, batch, batch_rng);
  EXPECT_EQ(scalar, batch);
  EXPECT_EQ(scalar_rng(), batch_rng());
}

// -------------------------- batch APIs are bit-identical to scalar draws

TEST(ServiceModelBatch, IidPrimaryAndReissueBatchesMatchScalar) {
  auto model = make_iid_service(stats::make_pareto(1.1, 2.0));
  EXPECT_EQ(model->draw_order(), ServiceModel::DrawOrder::kSharedStream);

  stats::Xoshiro256 scalar_rng(21);
  std::vector<double> scalar(1000);
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    scalar[i] = model->primary(i, scalar_rng);
  }
  stats::Xoshiro256 batch_rng(21);
  std::vector<double> batch(scalar.size());
  model->primary_batch(0, batch, batch_rng);
  EXPECT_EQ(scalar, batch);

  // IID reissue draws ignore the primary; same stream, same values.
  stats::Xoshiro256 scalar_r(22);
  stats::Xoshiro256 batch_r(22);
  std::vector<double> primaries(500, 3.0);
  std::vector<double> scalar_y(primaries.size());
  for (std::size_t i = 0; i < primaries.size(); ++i) {
    scalar_y[i] = model->reissue(i, primaries[i], scalar_r);
  }
  std::vector<double> batch_y(primaries.size());
  model->reissue_batch(primaries, batch_y, batch_r);
  EXPECT_EQ(scalar_y, batch_y);
}

TEST(ServiceModelBatch, CorrelatedReissueBatchMatchesScalar) {
  auto model =
      make_correlated_service(stats::make_lognormal(1.0, 1.0), /*ratio=*/0.5);
  EXPECT_EQ(model->draw_order(), ServiceModel::DrawOrder::kSharedStream);
  stats::Xoshiro256 scalar_rng(5);
  stats::Xoshiro256 batch_rng(5);
  std::vector<double> primaries;
  for (std::size_t i = 0; i < 777; ++i) {
    primaries.push_back(2.0 + 0.25 * static_cast<double>(i % 13));
  }
  std::vector<double> scalar(primaries.size());
  for (std::size_t i = 0; i < primaries.size(); ++i) {
    scalar[i] = model->reissue(i, primaries[i], scalar_rng);
  }
  std::vector<double> batch(primaries.size());
  model->reissue_batch(primaries, batch, batch_rng);
  // Bit equality: ratio*x + Z with the same operand order as the scalar.
  EXPECT_EQ(scalar, batch);
}

TEST(ServiceModelBatch, IdenticalServiceCopiesPrimariesWithoutRng) {
  auto model = make_identical_service(stats::make_exponential(0.1));
  EXPECT_EQ(model->draw_order(), ServiceModel::DrawOrder::kPrimaryOnly);
  stats::Xoshiro256 rng(9);
  const std::vector<double> primaries = {1.0, 4.5, 0.25};
  std::vector<double> out(primaries.size());
  model->reissue_batch(primaries, out, rng);
  EXPECT_EQ(out, primaries);
  stats::Xoshiro256 fresh(9);
  EXPECT_EQ(rng(), fresh());
}

/// The invariant Simulation::next_service_draw builds on: for a
/// kSharedStream model, any event-order interleaving of primary()/
/// reissue() calls equals draw_batch() + the from_draw transforms applied
/// in the same order.
TEST(ServiceModelBatch, SharedStreamDrawsAreOrderInvariant) {
  auto model =
      make_correlated_service(stats::make_pareto(1.1, 2.0), /*ratio=*/0.5);
  // p = primary, r = reissue (against the last primary drawn).
  const std::string ops = "pprprrpprpppprrrpr";
  stats::Xoshiro256 scalar_rng(0x5eed);
  std::vector<double> scalar;
  double last_primary = 1.0;
  for (const char op : ops) {
    if (op == 'p') {
      last_primary = model->primary(scalar.size(), scalar_rng);
      scalar.push_back(last_primary);
    } else {
      scalar.push_back(model->reissue(0, last_primary, scalar_rng));
    }
  }

  stats::Xoshiro256 batch_rng(0x5eed);
  std::vector<double> draws(ops.size());
  model->draw_batch(draws, batch_rng);
  std::vector<double> batched;
  last_primary = 1.0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i] == 'p') {
      last_primary = model->primary_from_draw(draws[i]);
      batched.push_back(last_primary);
    } else {
      batched.push_back(model->reissue_from_draw(draws[i], last_primary));
    }
  }
  EXPECT_EQ(scalar, batched);
  EXPECT_EQ(scalar_rng(), batch_rng());
}

// -------------------------------------------- kOpaque default behaviour

class OpaqueModel final : public ServiceModel {
 public:
  double primary(std::uint64_t, stats::Xoshiro256& rng) override {
    return 1.0 + rng.uniform();
  }
  double reissue(std::uint64_t, double primary_service,
                 stats::Xoshiro256& rng) override {
    return primary_service + rng.uniform();
  }
  std::string name() const override { return "Opaque"; }
};

TEST(ServiceModelBatch, OpaqueDefaultsLoopScalarAndRejectStreamApi) {
  OpaqueModel model;
  EXPECT_EQ(model.draw_order(), ServiceModel::DrawOrder::kOpaque);

  stats::Xoshiro256 scalar_rng(1);
  stats::Xoshiro256 batch_rng(1);
  std::vector<double> scalar(64);
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    scalar[i] = model.primary(i, scalar_rng);
  }
  std::vector<double> batch(scalar.size());
  model.primary_batch(0, batch, batch_rng);
  EXPECT_EQ(scalar, batch);

  std::vector<double> buf(4);
  EXPECT_THROW(model.draw_batch(buf, batch_rng), std::logic_error);
  EXPECT_THROW((void)model.primary_from_draw(0.5), std::logic_error);
  EXPECT_THROW((void)model.reissue_from_draw(0.5, 1.0), std::logic_error);
}

// ------------------- trace replay: run() vs run_streaming() determinism

ClusterConfig trace_config(std::size_t queries) {
  ClusterConfig config;
  config.servers = 4;
  config.queries = queries;
  config.warmup = queries / 10;
  config.arrival_rate = 0.8;
  config.seed = 0x7ace;
  return config;
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.query_latencies, b.query_latencies);
  EXPECT_EQ(a.primary_latencies, b.primary_latencies);
  EXPECT_EQ(a.reissue_latencies, b.reissue_latencies);
  EXPECT_EQ(a.correlated_pairs, b.correlated_pairs);
  EXPECT_EQ(a.reissue_delays, b.reissue_delays);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.reissues_issued, b.reissues_issued);
  EXPECT_EQ(a.utilization, b.utilization);
}

core::RunResult streamed(Cluster& cluster, const core::ReissuePolicy& policy) {
  core::RunResultBuilder builder;
  cluster.run_streaming(policy, builder);
  return builder.take();
}

TEST(TraceServiceCluster, WraparoundReplayIsDeterministicAcrossModes) {
  // 9-point trace, 3000 queries: every query wraps many times over.
  const std::vector<double> trace = {0.5, 1.0, 1.5, 2.0, 3.0,
                                     4.0, 6.0, 9.0, 30.0};
  const auto policy = core::ReissuePolicy::single_r(4.0, 0.5);
  Cluster cluster(trace_config(3000), make_trace_service(trace));
  const core::RunResult first = cluster.run(policy);
  const core::RunResult second = cluster.run(policy);
  expect_identical(first, second);
  expect_identical(first, streamed(cluster, policy));
  ASSERT_EQ(first.queries, 3000u - 300u);
  EXPECT_GT(first.reissues_issued, 0u);
}

TEST(TraceServiceCluster, ResampleModeIsDeterministicAcrossModes) {
  const std::vector<double> trace = {0.5, 1.0, 2.0, 4.0, 25.0};
  const auto policy = core::ReissuePolicy::single_r(3.0, 1.0);
  Cluster cluster(trace_config(2000),
                  make_trace_service(trace, /*resample=*/true));
  const core::RunResult first = cluster.run(policy);
  const core::RunResult second = cluster.run(policy);
  expect_identical(first, second);
  expect_identical(first, streamed(cluster, policy));
  EXPECT_GT(first.reissues_issued, 0u);
}

}  // namespace
}  // namespace reissue::sim
