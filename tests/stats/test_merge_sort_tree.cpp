#include "reissue/stats/merge_sort_tree.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "reissue/stats/rng.hpp"

namespace reissue::stats {
namespace {

std::size_t brute_count(const std::vector<std::pair<double, double>>& pts,
                        double x_above, double y_at_most) {
  std::size_t n = 0;
  for (const auto& [x, y] : pts) {
    if (x > x_above && y <= y_at_most) ++n;
  }
  return n;
}

TEST(MergeSortTree, EmptyTree) {
  MergeSortTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.count_x_above(0.0), 0u);
  EXPECT_EQ(tree.count(0.0, 100.0), 0u);
}

TEST(MergeSortTree, SinglePoint) {
  MergeSortTree tree({{2.0, 5.0}});
  EXPECT_EQ(tree.count_x_above(1.0), 1u);
  EXPECT_EQ(tree.count_x_above(2.0), 0u);  // strict
  EXPECT_EQ(tree.count(1.0, 5.0), 1u);
  EXPECT_EQ(tree.count(1.0, 4.9), 0u);
}

TEST(MergeSortTree, SmallHandComputed) {
  // (x, y): four points forming a square plus center.
  MergeSortTree tree({{0, 0}, {0, 2}, {2, 0}, {2, 2}, {1, 1}});
  EXPECT_EQ(tree.count(0.5, 1.5), 2u);  // (1,1) and (2,0)
  EXPECT_EQ(tree.count(-1.0, 2.0), 5u);
  EXPECT_EQ(tree.count(1.5, 0.0), 1u);  // (2,0)
}

TEST(MergeSortTree, DuplicateCoordinates) {
  MergeSortTree tree({{1, 1}, {1, 1}, {1, 2}, {2, 1}});
  EXPECT_EQ(tree.count_x_above(0.0), 4u);
  EXPECT_EQ(tree.count_x_above(1.0), 1u);
  EXPECT_EQ(tree.count(0.0, 1.0), 3u);
}

TEST(MergeSortTree, CountRankRange) {
  MergeSortTree tree({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
  EXPECT_EQ(tree.count_rank_range(0, 4, 25.0), 2u);
  EXPECT_EQ(tree.count_rank_range(1, 3, 25.0), 1u);
  EXPECT_EQ(tree.count_rank_range(2, 2, 100.0), 0u);
  EXPECT_EQ(tree.count_rank_range(0, 100, 100.0), 4u);  // hi clamps
}

class MergeSortTreeRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergeSortTreeRandom, MatchesBruteForce) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(1000 + n);
  std::vector<std::pair<double, double>> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.emplace_back(rng.uniform() * 100.0, rng.uniform() * 100.0);
  }
  MergeSortTree tree(pts);
  for (int q = 0; q < 200; ++q) {
    const double t = rng.uniform() * 120.0 - 10.0;
    const double v = rng.uniform() * 120.0 - 10.0;
    ASSERT_EQ(tree.count(t, v), brute_count(pts, t, v))
        << "n=" << n << " t=" << t << " v=" << v;
    ASSERT_EQ(tree.count_x_above(t), brute_count(pts, t, 1e18));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MergeSortTreeRandom,
                         ::testing::Values(1, 2, 3, 7, 16, 63, 64, 65, 257,
                                           1000));

}  // namespace
}  // namespace reissue::stats
