#include "reissue/stats/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::stats {
namespace {

TEST(Pearson, RejectsDegenerateInputs) {
  EXPECT_THROW(pearson({}), std::invalid_argument);
  EXPECT_THROW(pearson({{1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(pearson({{1.0, 2.0}, {1.0, 3.0}}), std::invalid_argument);
}

TEST(Pearson, PerfectLinearRelations) {
  std::vector<std::pair<double, double>> up;
  std::vector<std::pair<double, double>> down;
  for (int i = 0; i < 50; ++i) {
    up.emplace_back(i, 2.0 * i + 1.0);
    down.emplace_back(i, -3.0 * i + 7.0);
  }
  EXPECT_NEAR(pearson(up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(down), -1.0, 1e-12);
}

TEST(Pearson, IndependentDataNearZero) {
  Xoshiro256 rng(11);
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i < 20000; ++i) {
    pts.emplace_back(rng.uniform(), rng.uniform());
  }
  EXPECT_NEAR(pearson(pts), 0.0, 0.02);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  // y = x^3 is monotone: Spearman 1, Pearson < 1.
  std::vector<std::pair<double, double>> pts;
  for (int i = 1; i <= 100; ++i) {
    const double x = static_cast<double>(i);
    pts.emplace_back(x, x * x * x);
  }
  EXPECT_NEAR(spearman(pts), 1.0, 1e-12);
  EXPECT_LT(pearson(pts), 1.0);
}

TEST(Spearman, HandlesTies) {
  const std::vector<std::pair<double, double>> pts{
      {1.0, 1.0}, {2.0, 2.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_NEAR(spearman(pts), 1.0, 1e-12);
}

TEST(PaperModel, CorrelatedServiceTimesHavePositiveCorrelation) {
  // §5.1 model: Y = r x + Z.  For Pareto(1.1, 2) the variance is infinite,
  // so the sample Pearson is unstable; Spearman (rank) correlation is the
  // robust check that correlation increases with r.
  const auto dist = make_pareto(1.1, 2.0);
  Xoshiro256 rng(21);
  auto spearman_for = [&](double r) {
    std::vector<std::pair<double, double>> pts;
    for (int i = 0; i < 20000; ++i) {
      const double x = dist->sample(rng);
      const double y = r * x + dist->sample(rng);
      pts.emplace_back(x, y);
    }
    return spearman(pts);
  };
  const double rho_zero = spearman_for(0.0);
  const double rho_half = spearman_for(0.5);
  const double rho_one = spearman_for(1.0);
  EXPECT_NEAR(rho_zero, 0.0, 0.03);
  EXPECT_GT(rho_half, rho_zero + 0.1);
  EXPECT_GT(rho_one, rho_half);
}

}  // namespace
}  // namespace reissue::stats
