#include "reissue/stats/kolmogorov.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::stats {
namespace {

TEST(KsDistance, RejectsEmpty) {
  EXPECT_THROW(ks_distance({}, [](double) { return 0.5; }),
               std::invalid_argument);
  EXPECT_THROW(ks_distance_two_sample({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(ks_distance_two_sample({1.0}, {}), std::invalid_argument);
}

TEST(KsDistance, PerfectFitIsSmall) {
  // Samples at exact uniform quantile midpoints minimize the KS distance.
  std::vector<double> samples;
  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i) samples.push_back((i + 0.5) / kN);
  const double d = ks_distance(samples, [](double x) { return x; });
  EXPECT_NEAR(d, 0.5 / kN, 1e-12);
}

TEST(KsDistance, GrossMismatchIsLarge) {
  // Sample from U(0, 0.5) but test against U(0,1): D >= 0.5.
  std::vector<double> samples;
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.uniform() * 0.5);
  const double d = ks_distance(
      samples, [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_GT(d, 0.45);
}

TEST(KsDistanceTwoSample, IdenticalSamplesZero) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_distance_two_sample(v, v), 0.0);
}

TEST(KsDistanceTwoSample, DisjointSupportsIsOne) {
  EXPECT_DOUBLE_EQ(ks_distance_two_sample({1.0, 2.0}, {10.0, 11.0}), 1.0);
}

TEST(KsDistanceTwoSample, SameDistributionSmall) {
  Xoshiro256 rng(2);
  const auto dist = make_exponential(0.5);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(dist->sample(rng));
    b.push_back(dist->sample(rng));
  }
  // 99.9% two-sample critical value ~ 1.95 * sqrt(2/n).
  EXPECT_LT(ks_distance_two_sample(a, b), 1.95 * std::sqrt(2.0 / 5000.0));
}

TEST(KsDistanceTwoSample, DetectsShift) {
  Xoshiro256 rng(3);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform() + 0.3);
  }
  EXPECT_GT(ks_distance_two_sample(a, b), 0.25);
}

}  // namespace
}  // namespace reissue::stats
