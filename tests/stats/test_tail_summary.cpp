#include "reissue/stats/tail_summary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "reissue/stats/ecdf.hpp"
#include "reissue/stats/rng.hpp"
#include "reissue/stats/summary.hpp"

namespace reissue::stats {
namespace {

TEST(TailSummary, RejectsBadParameters) {
  EXPECT_THROW(TailSummary(0.0), std::invalid_argument);
  EXPECT_THROW(TailSummary(1.0), std::invalid_argument);
  EXPECT_THROW(TailSummary(0.99, 0.0), std::invalid_argument);
  EXPECT_THROW(TailSummary(0.99, 0.7), std::invalid_argument);
  TailSummary ok(0.99);
  EXPECT_THROW((void)ok.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)ok.quantile(1.1), std::invalid_argument);
}

TEST(TailSummary, EmptySummaryIsZero) {
  const TailSummary ts(0.99);
  EXPECT_EQ(ts.count(), 0u);
  EXPECT_DOUBLE_EQ(ts.quantile(), 0.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
}

TEST(TailSummary, MomentsAreExact) {
  TailSummary ts(0.5);
  for (double x : {4.0, 1.0, 9.0, 16.0}) ts.add(x);
  EXPECT_EQ(ts.count(), 4u);
  EXPECT_DOUBLE_EQ(ts.mean(), 7.5);
  EXPECT_DOUBLE_EQ(ts.min(), 1.0);
  EXPECT_DOUBLE_EQ(ts.max(), 16.0);
}

TEST(TailSummary, QuantileWithinRelativeErrorOfExact) {
  // Heavy-tailed sample spanning several decades — the regime the
  // streaming sweeps run in.
  Xoshiro256 rng(42);
  constexpr double kRelErr = 1e-3;
  TailSummary ts(0.99, kRelErr);
  std::vector<double> values;
  values.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    const double x = 2.0 * std::pow(rng.uniform_pos(), -1.0 / 1.1);
    ts.add(x);
    values.push_back(x);
  }
  // Same nearest-rank convention (ceil(p*n)) as TailSummary::quantile;
  // going through percentile(p*100) would shift the rank by one at exact
  // boundaries (p*100/100 != p in floating point).
  const EmpiricalCdf cdf(values);
  for (double p : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = cdf.quantile(p);
    const double estimate = ts.quantile(p);
    // The table-interpolated bucket index adds < 1e-5 in log2 on top of
    // the bucket width.
    EXPECT_NEAR(estimate, exact, exact * (2.5 * kRelErr))
        << "p=" << p;
    EXPECT_GE(estimate, ts.min());
    EXPECT_LE(estimate, ts.max());
  }
}

TEST(TailSummary, PSquareTracksTheConfiguredPercentile) {
  TailSummary ts(0.9);
  PSquareQuantile reference(0.9);
  Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double x = -std::log(rng.uniform_pos()) * 10.0;
    ts.add(x);
    reference.add(x);
  }
  EXPECT_DOUBLE_EQ(ts.psquare(), reference.estimate());
}

TEST(TailSummary, DeterministicForIdenticalStreams) {
  TailSummary a(0.99);
  TailSummary b(0.99);
  Xoshiro256 rng_a(3);
  Xoshiro256 rng_b(3);
  for (int i = 0; i < 50000; ++i) {
    a.add(1.0 + 100.0 * rng_a.uniform());
    b.add(1.0 + 100.0 * rng_b.uniform());
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.quantile(), b.quantile());
  EXPECT_DOUBLE_EQ(a.psquare(), b.psquare());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(TailSummary, HandlesNonPositiveObservations) {
  TailSummary ts(0.5);
  ts.add(0.0);
  ts.add(-1.0);
  ts.add(5.0);
  EXPECT_EQ(ts.count(), 3u);
  EXPECT_DOUBLE_EQ(ts.mean(), 4.0 / 3.0);
  // Median rank 2 lands in the non-positive mass: reported as the min.
  EXPECT_DOUBLE_EQ(ts.quantile(0.5), -1.0);
  EXPECT_DOUBLE_EQ(ts.quantile(1.0), 5.0);
}

TEST(TailSummary, ExtremeMagnitudesStayBounded) {
  TailSummary ts(0.5);
  for (double x : {1e-12, 1e-3, 1.0, 1e6, 1e12}) ts.add(x);
  const double q = ts.quantile(0.5);
  EXPECT_NEAR(q, 1.0, 1e-2);
  EXPECT_DOUBLE_EQ(ts.quantile(1.0), 1e12);
  // Subnormal input takes the slow path but must not crash or misorder.
  ts.add(5e-324);
  EXPECT_DOUBLE_EQ(ts.min(), 5e-324);
}

TEST(TailSummary, NearestRankMatchesEmpiricalConvention) {
  // Exactly representable values, one per bucket: the nearest-rank walk
  // must agree with stats::percentile.
  TailSummary ts(0.5, 1e-4);
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) {
    ts.add(static_cast<double>(i));
    values.push_back(static_cast<double>(i));
  }
  const EmpiricalCdf cdf(values);
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    const double exact = cdf.quantile(p);
    EXPECT_NEAR(ts.quantile(p), exact, exact * 3e-4) << "p=" << p;
  }
}

}  // namespace
}  // namespace reissue::stats
