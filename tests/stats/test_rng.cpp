#include "reissue/stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <array>
#include <set>
#include <span>
#include <vector>

namespace reissue::stats {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  // Regression pin: the same seed must produce the same stream forever
  // (experiment reproducibility depends on it).
  SplitMix64 sm(42);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  SplitMix64 sm2(42);
  EXPECT_EQ(a, sm2.next());
  EXPECT_EQ(b, sm2.next());
  EXPECT_NE(a, b);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Xoshiro256, UniformPosNeverZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform_pos();
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(Xoshiro256, BelowIsInRange) {
  Xoshiro256 rng(11);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.below(n), n);
    }
  }
}

TEST(Xoshiro256, BelowOneAlwaysZero) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowIsApproximatelyUniform) {
  Xoshiro256 rng(17);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / double(kBuckets),
                5.0 * std::sqrt(kDraws / double(kBuckets)));
  }
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(19);
  for (double p : {0.0, 0.05, 0.5, 0.95, 1.0}) {
    int hits = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(p) ? 1 : 0;
    EXPECT_NEAR(hits / double(kDraws), p, 0.01) << "p=" << p;
  }
}

TEST(Xoshiro256, SplitProducesIndependentStreams) {
  Xoshiro256 root(23);
  Xoshiro256 a = root.split(stream_label("alpha"));
  Xoshiro256 b = root.split(stream_label("beta"));
  // Streams should not collide over a modest horizon.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(a());
    seen.insert(b());
  }
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(Xoshiro256, SplitIsDeterministic) {
  Xoshiro256 r1(29);
  Xoshiro256 r2(29);
  Xoshiro256 a = r1.split(7);
  Xoshiro256 b = r2.split(7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
}

TEST(StreamLabel, DistinctNamesDistinctLabels) {
  EXPECT_NE(stream_label("arrival"), stream_label("service"));
  EXPECT_NE(stream_label("lb"), stream_label("coin"));
  EXPECT_EQ(stream_label("arrival"), stream_label("arrival"));
}

TEST(Xoshiro256, FillUniformMatchesScalarDraws) {
  Xoshiro256 scalar(97);
  Xoshiro256 bulk(97);
  std::vector<double> buf(1000);
  bulk.fill_uniform(buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], scalar.uniform()) << "draw " << i;
  }
  // Both generators must end in the same state.
  ASSERT_EQ(bulk(), scalar());
}

TEST(Xoshiro256, FillUniformPosMatchesScalarDrawsAndIsPositive) {
  Xoshiro256 scalar(131);
  Xoshiro256 bulk(131);
  std::vector<double> buf(1000);
  bulk.fill_uniform_pos(buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], scalar.uniform_pos()) << "draw " << i;
    ASSERT_GT(buf[i], 0.0);
    ASSERT_LE(buf[i], 1.0);
  }
  ASSERT_EQ(bulk(), scalar());
}

TEST(Xoshiro256, FillUniformChunkingIsInvisible) {
  Xoshiro256 whole(53);
  Xoshiro256 chunked(53);
  std::vector<double> a(777);
  std::vector<double> b(777);
  whole.fill_uniform(a);
  // Same stream drawn as uneven chunks.
  std::span<double> rest(b);
  for (std::size_t len : {1ul, 10ul, 255ul, 511ul}) {
    chunked.fill_uniform(rest.subspan(0, len));
    rest = rest.subspan(len);
  }
  chunked.fill_uniform(rest);
  EXPECT_EQ(a, b);
}

TEST(Xoshiro256, PassesSimpleBitBalance) {
  // Each of the 64 bits should be set about half the time.
  Xoshiro256 rng(31);
  constexpr int kDraws = 20000;
  std::array<int, 64> ones{};
  for (int i = 0; i < kDraws; ++i) {
    std::uint64_t v = rng();
    for (int bit = 0; bit < 64; ++bit) {
      ones[bit] += static_cast<int>((v >> bit) & 1);
    }
  }
  for (int bit = 0; bit < 64; ++bit) {
    EXPECT_NEAR(ones[bit] / double(kDraws), 0.5, 0.02) << "bit " << bit;
  }
}

}  // namespace
}  // namespace reissue::stats
