#include "reissue/stats/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace reissue::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, -1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinEdgesAndMidpoints) {
  // The paper's Figure 9 uses 20 ms bins.
  const Histogram h(0.0, 20.0, 12);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 20.0);
  EXPECT_DOUBLE_EQ(h.bin_mid(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_mid(5), 110.0);
  EXPECT_THROW(h.bin_lo(12), std::out_of_range);
}

TEST(Histogram, AddRoutesToCorrectBin) {
  Histogram h(0.0, 10.0, 3);
  h.add(0.0);    // bin 0 (inclusive lower edge)
  h.add(9.999);  // bin 0
  h.add(10.0);   // bin 1
  h.add(25.0);   // bin 2
  h.add(30.0);   // overflow (exclusive upper edge)
  h.add(-1.0);   // underflow
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, AddNWeights) {
  Histogram h(0.0, 1.0, 2);
  h.add_n(0.5, 7);
  EXPECT_EQ(h.bin(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, TableSkipsEmptyBinsAndReportsOverflow) {
  Histogram h(0.0, 10.0, 3);
  h.add(5.0);
  h.add(35.0);
  const std::string table = h.to_table("svc");
  EXPECT_NE(table.find("# svc"), std::string::npos);
  EXPECT_NE(table.find("5 1"), std::string::npos);
  EXPECT_NE(table.find(">30 1"), std::string::npos);
  // Bin 1 and 2 are empty -> midpoints 15 / 25 must not appear as rows.
  EXPECT_EQ(table.find("\n15 "), std::string::npos);
  EXPECT_EQ(table.find("\n25 "), std::string::npos);
}

TEST(Histogram, CountsConserveTotal) {
  Histogram h(0.0, 2.0, 50);
  std::uint64_t added = 0;
  for (int i = 0; i < 1000; ++i) {
    h.add(static_cast<double>(i) * 0.123);
    ++added;
  }
  std::uint64_t sum = h.underflow() + h.overflow();
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.bin(b);
  EXPECT_EQ(sum, added);
  EXPECT_EQ(h.total(), added);
}

}  // namespace
}  // namespace reissue::stats
