#include "reissue/stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "reissue/stats/kolmogorov.hpp"

namespace reissue::stats {
namespace {

std::vector<double> draw(const Distribution& dist, std::size_t n,
                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(dist.sample(rng));
  return out;
}

// ------------------------------------------------------------ normal

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895, 1e-6);
}

TEST(Normal, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(Normal, QuantileRejectsBoundaries) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

// ------------------------------------------------- per-family analytics

TEST(Pareto, CdfAndQuantileAreConsistent) {
  const Pareto p(1.1, 2.0);
  EXPECT_DOUBLE_EQ(p.cdf(1.9), 0.0);
  EXPECT_DOUBLE_EQ(p.cdf(2.0), 0.0);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(p.cdf(p.quantile(q)), q, 1e-12);
  }
}

TEST(Pareto, MeanMatchesFormula) {
  EXPECT_NEAR(Pareto(1.1, 2.0).mean(), 22.0, 1e-9);
  EXPECT_NEAR(Pareto(2.0, 3.0).mean(), 6.0, 1e-9);
  EXPECT_TRUE(std::isinf(Pareto(1.0, 2.0).mean()));
}

TEST(Pareto, RejectsBadParameters) {
  EXPECT_THROW(Pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Pareto(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Pareto(1.0, -2.0), std::invalid_argument);
}

TEST(LogNormal, MeanMatchesFormula) {
  EXPECT_NEAR(LogNormal(1.0, 1.0).mean(), std::exp(1.5), 1e-9);
  EXPECT_NEAR(LogNormal(0.0, 0.5).mean(), std::exp(0.125), 1e-9);
}

TEST(Exponential, QuantileKnownValue) {
  const Exponential e(0.1);
  EXPECT_NEAR(e.quantile(0.5), std::log(2.0) / 0.1, 1e-9);
  EXPECT_NEAR(e.mean(), 10.0, 1e-12);
}

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w(1.0, 10.0);
  const Exponential e(0.1);
  for (double x : {0.5, 1.0, 5.0, 20.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12) << "x=" << x;
  }
}

TEST(Uniform, Basics) {
  const Uniform u(2.0, 6.0);
  EXPECT_DOUBLE_EQ(u.cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(6.0), 1.0);
  EXPECT_DOUBLE_EQ(u.cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(u.mean(), 4.0);
  EXPECT_THROW(Uniform(3.0, 3.0), std::invalid_argument);
}

TEST(Constant, IsDegenerate) {
  const Constant c(5.0);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(c.sample(rng), 5.0);
  EXPECT_DOUBLE_EQ(c.cdf(4.999), 0.0);
  EXPECT_DOUBLE_EQ(c.cdf(5.0), 1.0);
}

TEST(Shifted, ShiftsEverything) {
  const Shifted s(make_exponential(1.0), 3.0);
  EXPECT_DOUBLE_EQ(s.cdf(3.0), 0.0);
  EXPECT_NEAR(s.mean(), 4.0, 1e-12);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_GE(s.sample(rng), 3.0);
}

TEST(EmpiricalSampler, ResamplesObservedValues) {
  const EmpiricalSampler e({3.0, 1.0, 2.0});
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = e.sample(rng);
    EXPECT_TRUE(v == 1.0 || v == 2.0 || v == 3.0);
  }
  EXPECT_NEAR(e.mean(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(e.cdf(1.5), 1.0 / 3.0);
  EXPECT_THROW(EmpiricalSampler({}), std::invalid_argument);
}

TEST(Truncated, CapsSamplesAndCdf) {
  const Truncated t(make_pareto(1.1, 2.0), 100.0);
  Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_LE(t.sample(rng), 100.0);
  }
  EXPECT_DOUBLE_EQ(t.cdf(100.0), 1.0);
  EXPECT_DOUBLE_EQ(t.cdf(1e9), 1.0);
  const auto base = make_pareto(1.1, 2.0);
  EXPECT_DOUBLE_EQ(t.cdf(50.0), base->cdf(50.0));
  EXPECT_DOUBLE_EQ(t.quantile(0.5), base->quantile(0.5));
}

TEST(Truncated, MeanMatchesAnalyticIntegral) {
  // E[min(X, c)] for Pareto(a, m), a != 1:
  //   m + m^a (m^{1-a} - c^{1-a}) / (a - 1).
  const double a = 1.1;
  const double m = 2.0;
  const double c = 5000.0;
  const double expected =
      m + std::pow(m, a) * (std::pow(m, 1.0 - a) - std::pow(c, 1.0 - a)) /
              (a - 1.0);
  const Truncated t(make_pareto(a, m), c);
  EXPECT_NEAR(t.mean(), expected, 0.01 * expected);
  // And the sample mean agrees.
  Xoshiro256 rng(9);
  double sum = 0.0;
  constexpr int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) sum += t.sample(rng);
  EXPECT_NEAR(sum / kDraws, expected, 0.05 * expected);
}

TEST(Truncated, RejectsBadConstruction) {
  EXPECT_THROW(Truncated(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(Truncated(make_exponential(1.0), 0.0), std::invalid_argument);
}

// ------------------------------------- sampling matches the analytic CDF

struct NamedDistribution {
  std::string label;
  DistributionPtr dist;
};

class SamplerMatchesCdf : public ::testing::TestWithParam<NamedDistribution> {};

TEST_P(SamplerMatchesCdf, KsDistanceSmall) {
  const auto& dist = *GetParam().dist;
  constexpr std::size_t kDraws = 20000;
  const auto samples = draw(dist, kDraws, 0xabcdef);
  const double d =
      ks_distance(samples, [&](double x) { return dist.cdf(x); });
  // 99.9% KS critical value ~ 1.95 / sqrt(n).
  EXPECT_LT(d, 1.95 / std::sqrt(double(kDraws))) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SamplerMatchesCdf,
    ::testing::Values(
        NamedDistribution{"pareto_paper", make_pareto(1.1, 2.0)},
        NamedDistribution{"pareto_light", make_pareto(3.0, 1.0)},
        NamedDistribution{"lognormal_paper", make_lognormal(1.0, 1.0)},
        NamedDistribution{"lognormal_wide", make_lognormal(6.5, 2.0)},
        NamedDistribution{"exponential_paper", make_exponential(0.1)},
        NamedDistribution{"weibull", make_weibull(1.5, 4.0)},
        NamedDistribution{"uniform", make_uniform(1.0, 9.0)}),
    [](const auto& info) { return info.param.label; });

class SampleMeanMatches : public ::testing::TestWithParam<NamedDistribution> {};

TEST_P(SampleMeanMatches, WithinTolerance) {
  const auto& dist = *GetParam().dist;
  const auto samples = draw(dist, 200000, 0x1234);
  double mean = 0.0;
  for (double v : samples) mean += v;
  mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean, dist.mean(), 0.05 * dist.mean() + 1e-9)
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    FiniteMeanFamilies, SampleMeanMatches,
    ::testing::Values(
        NamedDistribution{"pareto_light", make_pareto(3.0, 1.0)},
        NamedDistribution{"lognormal", make_lognormal(1.0, 1.0)},
        NamedDistribution{"exponential", make_exponential(0.1)},
        NamedDistribution{"weibull", make_weibull(1.5, 4.0)},
        NamedDistribution{"uniform", make_uniform(1.0, 9.0)}),
    [](const auto& info) { return info.param.label; });

class QuantileRoundTrip : public ::testing::TestWithParam<NamedDistribution> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const auto& dist = *GetParam().dist;
  for (double p = 0.02; p < 1.0; p += 0.02) {
    EXPECT_NEAR(dist.cdf(dist.quantile(p)), p, 1e-6)
        << GetParam().label << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, QuantileRoundTrip,
    ::testing::Values(
        NamedDistribution{"pareto", make_pareto(1.1, 2.0)},
        NamedDistribution{"lognormal", make_lognormal(1.0, 1.0)},
        NamedDistribution{"exponential", make_exponential(0.1)},
        NamedDistribution{"weibull", make_weibull(0.8, 2.0)},
        NamedDistribution{"uniform", make_uniform(0.0, 5.0)}),
    [](const auto& info) { return info.param.label; });

// ------------------------------- all nine families, for the suites below

std::vector<NamedDistribution> all_families() {
  return {
      NamedDistribution{"pareto", make_pareto(1.1, 2.0)},
      NamedDistribution{"lognormal", make_lognormal(1.0, 1.0)},
      NamedDistribution{"exponential", make_exponential(0.1)},
      NamedDistribution{"weibull", make_weibull(0.8, 2.0)},
      NamedDistribution{"uniform", make_uniform(1.0, 9.0)},
      NamedDistribution{"constant", make_constant(5.0)},
      NamedDistribution{"truncated_pareto",
                        make_truncated(make_pareto(1.1, 2.0), 100.0)},
      NamedDistribution{"shifted_exponential",
                        make_shifted(make_exponential(0.5), 3.0)},
      NamedDistribution{"empirical_ties",
                        make_empirical({1.0, 1.0, 2.0, 2.0, 2.0, 7.5})},
  };
}

// ------------------------------------ batched sampling is bit-identical

class SampleBatchBitIdentical
    : public ::testing::TestWithParam<NamedDistribution> {};

TEST_P(SampleBatchBitIdentical, MatchesScalarLoopDrawForDraw) {
  const auto& dist = *GetParam().dist;
  constexpr std::size_t kDraws = 4096;
  Xoshiro256 scalar_rng(0xbeef);
  std::vector<double> scalar(kDraws);
  for (double& v : scalar) v = dist.sample(scalar_rng);

  Xoshiro256 batch_rng(0xbeef);
  std::vector<double> batch(kDraws);
  dist.sample_batch(batch, batch_rng);
  // Bit equality, not closeness: the batch path must make the exact same
  // RNG and libm calls.
  EXPECT_EQ(scalar, batch);
  // And leave the generator in the same state.
  EXPECT_EQ(scalar_rng(), batch_rng());
}

TEST_P(SampleBatchBitIdentical, ChunkedBatchesMatchOneBatch) {
  const auto& dist = *GetParam().dist;
  constexpr std::size_t kDraws = 3000;
  Xoshiro256 whole_rng(0xf00d);
  std::vector<double> whole(kDraws);
  dist.sample_batch(whole, whole_rng);

  Xoshiro256 chunk_rng(0xf00d);
  std::vector<double> chunked(kDraws);
  std::span<double> rest(chunked);
  for (std::size_t len : {1ul, 7ul, 1024ul, 1500ul}) {
    dist.sample_batch(rest.subspan(0, len), chunk_rng);
    rest = rest.subspan(len);
  }
  dist.sample_batch(rest, chunk_rng);
  EXPECT_EQ(whole, chunked);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SampleBatchBitIdentical,
                         ::testing::ValuesIn(all_families()),
                         [](const auto& info) { return info.param.label; });

// ----------------------- quantile/cdf round trip incl. the edge cases

/// quantile() documents "smallest x with cdf(x) >= p".  This suite pins
/// both halves of that definition across every family, including p = 0,
/// p -> 1, Truncated's atom at the cap, Shifted's offset and
/// EmpiricalSampler's ties.
class QuantileIsGeneralizedInverse
    : public ::testing::TestWithParam<NamedDistribution> {};

TEST_P(QuantileIsGeneralizedInverse, CdfOfQuantileReachesP) {
  const auto& dist = *GetParam().dist;
  std::vector<double> grid = {0.0,  1e-12, 0.01, 0.25, 0.5,
                              0.75, 0.99,  0.999999, 1.0 - 1e-12};
  for (double k = 1.0; k <= 6.0; k += 1.0) grid.push_back(k / 6.0 - 1e-13);
  for (const double p : grid) {
    if (!(p >= 0.0 && p < 1.0)) continue;
    const double q = dist.quantile(p);
    // The analytic inverses round, so cdf(quantile(p)) may land a few ulps
    // under p for the continuous families; the discrete step semantics
    // (atoms, ties) are pinned exactly by the *Edges tests below.
    EXPECT_GE(dist.cdf(q), p - 1e-9) << GetParam().label << " p=" << p;
  }
}

TEST_P(QuantileIsGeneralizedInverse, NothingSmallerReachesP) {
  const auto& dist = *GetParam().dist;
  for (const double p : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double q = dist.quantile(p);
    // Slightly below the quantile the cdf must fall short of p (up to the
    // approximation error of the analytic inverses).
    const double below = q - 1e-6 * std::max(1.0, std::abs(q));
    EXPECT_LT(dist.cdf(below), p + 1e-6) << GetParam().label << " p=" << p;
  }
}

TEST_P(QuantileIsGeneralizedInverse, ExtremesStayFiniteAndOrdered) {
  const auto& dist = *GetParam().dist;
  const double q0 = dist.quantile(0.0);
  const double q_hi = dist.quantile(1.0 - 1e-12);
  EXPECT_TRUE(std::isfinite(q0)) << GetParam().label;
  EXPECT_TRUE(std::isfinite(q_hi)) << GetParam().label;
  EXPECT_LE(q0, q_hi) << GetParam().label;
  EXPECT_THROW((void)dist.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)dist.quantile(1.0), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, QuantileIsGeneralizedInverse,
                         ::testing::ValuesIn(all_families()),
                         [](const auto& info) { return info.param.label; });

TEST(TruncatedEdges, QuantileHitsTheAtomAtTheCap) {
  const auto base = make_pareto(1.1, 2.0);
  const Truncated t(base, 100.0);
  const double mass_below_cap = base->cdf(100.0);
  // Above the base mass the smallest x with cdf(x) >= p is exactly the
  // cap (the atom); below it the base quantile applies untouched.
  EXPECT_DOUBLE_EQ(t.quantile(mass_below_cap + 1e-6), 100.0);
  EXPECT_DOUBLE_EQ(t.quantile(1.0 - 1e-12), 100.0);
  EXPECT_DOUBLE_EQ(t.quantile(0.5), base->quantile(0.5));
  EXPECT_DOUBLE_EQ(t.quantile(0.0), base->quantile(0.0));
}

TEST(ShiftedEdges, OffsetAppliesAtBothEnds) {
  const Shifted s(make_uniform(0.0, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 3.0);
  EXPECT_NEAR(s.quantile(1.0 - 1e-12), 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.cdf(3.0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(7.0), 1.0);
}

TEST(EmpiricalEdges, QuantileHonorsTiesAtLatticePoints) {
  // cdf steps: 1 -> 2/6, 2 -> 5/6, 7.5 -> 1.
  const EmpiricalSampler e({1.0, 1.0, 2.0, 2.0, 2.0, 7.5});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  // Exactly at a step the step value itself is the smallest x with
  // cdf(x) >= p — flooring used to overshoot to the next sample.
  EXPECT_DOUBLE_EQ(e.quantile(2.0 / 6.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(5.0 / 6.0), 2.0);
  EXPECT_DOUBLE_EQ(e.quantile(2.0 / 6.0 + 1e-9), 2.0);
  EXPECT_DOUBLE_EQ(e.quantile(5.0 / 6.0 + 1e-9), 7.5);
  EXPECT_DOUBLE_EQ(e.quantile(1.0 - 1e-12), 7.5);
  // The documented contract, checked exhaustively against the sample set.
  for (double p = 0.0; p < 1.0; p += 0.001) {
    const double q = e.quantile(p);
    EXPECT_GE(e.cdf(q), p) << "p=" << p;
    for (double candidate : {1.0, 2.0, 7.5}) {
      if (candidate < q) {
        EXPECT_LT(e.cdf(candidate), p) << "p=" << p;
      }
    }
  }
}

}  // namespace
}  // namespace reissue::stats
