#include "reissue/stats/psquare.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"
#include "reissue/stats/summary.hpp"

namespace reissue::stats {
namespace {

TEST(PSquare, RejectsBadProbability) {
  EXPECT_THROW(PSquareQuantile(0.0), std::invalid_argument);
  EXPECT_THROW(PSquareQuantile(1.0), std::invalid_argument);
  EXPECT_THROW(PSquareQuantile(-0.5), std::invalid_argument);
}

TEST(PSquare, EmptyEstimateIsZero) {
  PSquareQuantile q(0.5);
  EXPECT_DOUBLE_EQ(q.estimate(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(PSquare, FewSamplesExact) {
  PSquareQuantile q(0.5);
  q.add(3.0);
  q.add(1.0);
  q.add(2.0);
  // With 3 samples the median is the 2nd order statistic.
  EXPECT_DOUBLE_EQ(q.estimate(), 2.0);
}

struct PSquareCase {
  std::string label;
  DistributionPtr dist;
  double p;
  double rel_tol;
};

class PSquareAccuracy : public ::testing::TestWithParam<PSquareCase> {};

TEST_P(PSquareAccuracy, TracksTrueQuantile) {
  const auto& param = GetParam();
  PSquareQuantile sketch(param.p);
  Xoshiro256 rng(0x5eed);
  std::vector<double> exact;
  constexpr int kDraws = 50000;
  exact.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) {
    const double v = param.dist->sample(rng);
    sketch.add(v);
    exact.push_back(v);
  }
  const double truth = percentile(std::move(exact), param.p * 100.0);
  EXPECT_NEAR(sketch.estimate(), truth, param.rel_tol * truth)
      << param.label << " p=" << param.p;
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsAndQuantiles, PSquareAccuracy,
    ::testing::Values(
        PSquareCase{"uniform_median", make_uniform(0.0, 1.0), 0.5, 0.05},
        PSquareCase{"uniform_p95", make_uniform(0.0, 1.0), 0.95, 0.05},
        PSquareCase{"exp_p90", make_exponential(0.1), 0.9, 0.08},
        PSquareCase{"exp_p99", make_exponential(0.1), 0.99, 0.10},
        PSquareCase{"lognormal_p95", make_lognormal(1.0, 1.0), 0.95, 0.10},
        PSquareCase{"lognormal_p99", make_lognormal(1.0, 1.0), 0.99, 0.15}),
    [](const auto& info) { return info.param.label; });

TEST(PSquare, MonotoneStreamConverges) {
  // Deterministic ramp 1..n: p-quantile should approach p*n.
  PSquareQuantile q(0.9);
  constexpr int kN = 10000;
  for (int i = 1; i <= kN; ++i) q.add(static_cast<double>(i));
  EXPECT_NEAR(q.estimate(), 0.9 * kN, 0.03 * kN);
}

TEST(PSquare, InsensitiveToArrivalOrder) {
  // Same multiset, two orders: estimates should be in the same ballpark.
  std::vector<double> values;
  Xoshiro256 rng(123);
  for (int i = 0; i < 20000; ++i) values.push_back(rng.uniform() * 100.0);

  PSquareQuantile forward(0.95);
  for (double v : values) forward.add(v);

  std::vector<double> reversed(values.rbegin(), values.rend());
  PSquareQuantile backward(0.95);
  for (double v : reversed) backward.add(v);

  const double truth = percentile(std::move(values), 95.0);
  EXPECT_NEAR(forward.estimate(), truth, 0.05 * truth);
  EXPECT_NEAR(backward.estimate(), truth, 0.05 * truth);
}

}  // namespace
}  // namespace reissue::stats
