#include "reissue/stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <stdexcept>
#include <vector>

#include "reissue/stats/rng.hpp"

namespace reissue::stats {
namespace {

TEST(EmpiricalCdf, RejectsEmpty) {
  EXPECT_THROW(EmpiricalCdf(std::vector<double>{}), std::invalid_argument);
}

TEST(EmpiricalCdf, StrictVsInclusiveSemantics) {
  // Paper Fig. 1 DiscreteCDF counts x < t strictly.
  const EmpiricalCdf cdf({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.cdf_strict(2.0), 0.25);  // only the 1.0
  EXPECT_DOUBLE_EQ(cdf.cdf(2.0), 0.75);         // 1.0 and both 2.0s
  EXPECT_DOUBLE_EQ(cdf.cdf_strict(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.cdf_strict(10.0), 1.0);
}

TEST(EmpiricalCdf, TailComplements) {
  const EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.tail(2.0), 0.5);            // {3,4}
  EXPECT_DOUBLE_EQ(cdf.tail_inclusive(2.0), 0.75);  // {2,3,4}
}

TEST(EmpiricalCdf, QuantileNearestRank) {
  const EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.21), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.95), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
}

TEST(EmpiricalCdf, QuantileRejectsOutOfRange) {
  const EmpiricalCdf cdf({1.0});
  EXPECT_THROW(cdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(cdf.quantile(1.1), std::invalid_argument);
}

TEST(EmpiricalCdf, MinMaxMeanStddev) {
  const EmpiricalCdf cdf({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 4.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.5);
  EXPECT_NEAR(cdf.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(EmpiricalCdf, SortedViewAscending) {
  const EmpiricalCdf cdf({5.0, 1.0, 3.0});
  const auto view = cdf.sorted();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_DOUBLE_EQ(view[0], 1.0);
  EXPECT_DOUBLE_EQ(view[1], 3.0);
  EXPECT_DOUBLE_EQ(view[2], 5.0);
}

TEST(EmpiricalCdf, CdfIsMonotone) {
  Xoshiro256 rng(99);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.uniform() * 100.0);
  const EmpiricalCdf cdf(samples);
  double prev = -1.0;
  for (double t = 0.0; t <= 100.0; t += 0.5) {
    const double v = cdf.cdf(t);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, cdf.cdf_strict(t));
    prev = v;
  }
}

TEST(EmpiricalCdf, SpanConstructorLeavesSourceIntactAndAgrees) {
  const std::vector<double> samples{5.0, 1.0, 3.0, 2.0, 4.0};
  const EmpiricalCdf from_span{std::span<const double>(samples)};
  const EmpiricalCdf from_vector(samples);
  EXPECT_EQ(samples[0], 5.0);  // borrowed view: source untouched
  EXPECT_EQ(from_span.size(), from_vector.size());
  EXPECT_DOUBLE_EQ(from_span.quantile(0.5), from_vector.quantile(0.5));
  EXPECT_DOUBLE_EQ(from_span.mean(), from_vector.mean());
}

TEST(EmpiricalCdf, FromSortedSkipsTheSortButMatches) {
  std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
  const EmpiricalCdf direct = EmpiricalCdf::from_sorted(sorted);
  const EmpiricalCdf resorted(std::vector<double>{5.0, 4.0, 3.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(direct.quantile(0.8), resorted.quantile(0.8));
  EXPECT_DOUBLE_EQ(direct.cdf(2.5), resorted.cdf(2.5));
  EXPECT_DOUBLE_EQ(direct.mean(), resorted.mean());
  EXPECT_DOUBLE_EQ(direct.stddev(), resorted.stddev());
  EXPECT_THROW((void)EmpiricalCdf::from_sorted({}), std::invalid_argument);
}

TEST(EmpiricalCdf, QuantileInvertsCdfOnSamples) {
  Xoshiro256 rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.uniform());
  const EmpiricalCdf cdf(samples);
  for (double p : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    const double q = cdf.quantile(p);
    // At least p mass at or below the quantile; removing the quantile
    // value drops below p.
    EXPECT_GE(cdf.cdf(q), p);
    EXPECT_LT(cdf.cdf_strict(q), p + 1e-12);
  }
}

}  // namespace
}  // namespace reissue::stats
