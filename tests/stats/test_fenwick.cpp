#include "reissue/stats/fenwick.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "reissue/stats/rng.hpp"

namespace reissue::stats {
namespace {

TEST(Fenwick, EmptyTree) {
  FenwickTree<> tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.prefix(0), 0);
  EXPECT_EQ(tree.total(), 0);
}

TEST(Fenwick, SingleElement) {
  FenwickTree<> tree(1);
  tree.add(0, 5);
  EXPECT_EQ(tree.prefix(0), 0);
  EXPECT_EQ(tree.prefix(1), 5);
  EXPECT_EQ(tree.total(), 5);
}

TEST(Fenwick, PrefixSums) {
  FenwickTree<> tree(8);
  for (std::size_t i = 0; i < 8; ++i) tree.add(i, static_cast<int64_t>(i + 1));
  // prefix(i) = 1+2+...+i.
  for (std::size_t i = 0; i <= 8; ++i) {
    EXPECT_EQ(tree.prefix(i), static_cast<int64_t>(i * (i + 1) / 2));
  }
}

TEST(Fenwick, RangeQueries) {
  FenwickTree<> tree(10);
  for (std::size_t i = 0; i < 10; ++i) tree.add(i, 1);
  EXPECT_EQ(tree.range(0, 10), 10);
  EXPECT_EQ(tree.range(3, 7), 4);
  EXPECT_EQ(tree.range(5, 5), 0);
  EXPECT_EQ(tree.range(7, 3), 0);  // inverted range is empty
}

TEST(Fenwick, AddOutOfRangeThrows) {
  FenwickTree<> tree(4);
  EXPECT_THROW(tree.add(4, 1), std::out_of_range);
}

TEST(Fenwick, PrefixClampsPastEnd) {
  FenwickTree<> tree(4);
  tree.add(0, 1);
  EXPECT_EQ(tree.prefix(100), 1);
}

TEST(Fenwick, NegativeDeltasSupported) {
  FenwickTree<> tree(4);
  tree.add(1, 10);
  tree.add(1, -4);
  EXPECT_EQ(tree.prefix(2), 6);
}

TEST(Fenwick, MatchesBruteForceOnRandomWorkload) {
  constexpr std::size_t kSize = 64;
  FenwickTree<> tree(kSize);
  std::vector<std::int64_t> reference(kSize, 0);
  Xoshiro256 rng(77);
  for (int step = 0; step < 2000; ++step) {
    const auto idx = static_cast<std::size_t>(rng.below(kSize));
    const auto delta = static_cast<std::int64_t>(rng.below(21)) - 10;
    tree.add(idx, delta);
    reference[idx] += delta;
    const auto lo = static_cast<std::size_t>(rng.below(kSize + 1));
    const auto hi = static_cast<std::size_t>(rng.below(kSize + 1));
    std::int64_t expected = 0;
    for (std::size_t i = lo; i < hi && i < kSize; ++i) expected += reference[i];
    ASSERT_EQ(tree.range(lo, hi), expected) << "step " << step;
  }
}

}  // namespace
}  // namespace reissue::stats
