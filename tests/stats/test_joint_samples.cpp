#include "reissue/stats/joint_samples.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "reissue/stats/rng.hpp"

namespace reissue::stats {
namespace {

TEST(JointSamples, RejectsEmpty) {
  EXPECT_THROW(JointSamples(std::vector<std::pair<double, double>>{}),
               std::invalid_argument);
}

TEST(JointSamples, MarginalsMatchInputs) {
  const JointSamples joint({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  EXPECT_EQ(joint.size(), 3u);
  EXPECT_DOUBLE_EQ(joint.x_marginal().min(), 1.0);
  EXPECT_DOUBLE_EQ(joint.x_marginal().max(), 3.0);
  EXPECT_DOUBLE_EQ(joint.y_marginal().min(), 10.0);
  EXPECT_DOUBLE_EQ(joint.y_marginal().max(), 30.0);
}

TEST(JointSamples, ConditionalCdfHandComputed) {
  // Points: x > 1.5 leaves {(2,20),(3,30)}.
  const JointSamples joint({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  EXPECT_DOUBLE_EQ(joint.conditional_y_cdf(25.0, 1.5), 0.5);
  EXPECT_DOUBLE_EQ(joint.conditional_y_cdf(30.0, 1.5), 1.0);
  EXPECT_DOUBLE_EQ(joint.conditional_y_cdf(5.0, 1.5), 0.0);
}

TEST(JointSamples, ConditionalFallbackWhenEmptyCondition) {
  const JointSamples joint({{1.0, 10.0}});
  EXPECT_DOUBLE_EQ(joint.conditional_y_cdf(100.0, 5.0, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(joint.conditional_y_cdf(100.0, 5.0), 0.0);
}

TEST(JointSamples, JointProbability) {
  const JointSamples joint({{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  // Pr(X > 2 and Y <= 3) = |{(3,3)}| / 4.
  EXPECT_DOUBLE_EQ(joint.joint_prob(2.0, 3.0), 0.25);
  EXPECT_DOUBLE_EQ(joint.joint_prob(0.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(joint.joint_prob(4.0, 4.0), 0.0);
}

TEST(JointSamples, IndependentDataConditionalMatchesMarginal) {
  // When X and Y are independent, Pr(Y<=v | X>t) should approximate the
  // marginal Pr(Y<=v).
  Xoshiro256 rng(42);
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i < 20000; ++i) {
    pts.emplace_back(rng.uniform() * 100.0, rng.uniform() * 100.0);
  }
  const JointSamples joint(pts);
  for (double v : {20.0, 50.0, 80.0}) {
    const double marginal = joint.y_marginal().cdf(v);
    const double conditional = joint.conditional_y_cdf(v, 70.0);
    EXPECT_NEAR(conditional, marginal, 0.02) << "v=" << v;
  }
}

TEST(JointSamples, PositivelyCorrelatedDataShiftsConditional) {
  // Y = X + noise: conditioning on X > t should make large Y more likely,
  // i.e. Pr(Y <= median | X > p90) << Pr(Y <= median).
  Xoshiro256 rng(43);
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform() * 100.0;
    pts.emplace_back(x, x + rng.uniform() * 10.0);
  }
  const JointSamples joint(pts);
  const double median_y = joint.y_marginal().quantile(0.5);
  const double p90_x = joint.x_marginal().quantile(0.9);
  const double marginal = joint.y_marginal().cdf(median_y);
  const double conditional = joint.conditional_y_cdf(median_y, p90_x);
  EXPECT_GT(marginal, 0.45);
  EXPECT_LT(conditional, 0.05);
}

}  // namespace
}  // namespace reissue::stats
