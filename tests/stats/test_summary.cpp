#include "reissue/stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "reissue/stats/rng.hpp"

namespace reissue::stats {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256 rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform() * 50.0 - 10.0;
    whole.add(v);
    (i % 3 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, NearestRankSemantics) {
  const std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 20.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 95.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({50, 10, 40, 30, 20}, 50.0), 30.0);
}

TEST(MeanCi95, StudentTIntervalMatchesHandComputation) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0}) stats.add(x);
  const MeanInterval ci = mean_ci95(stats);
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  // Sample stddev 1, n = 3, t_{0.975, 2} = 4.303.
  EXPECT_NEAR(ci.half_width, 4.303 / std::sqrt(3.0), 1e-9);
  EXPECT_DOUBLE_EQ(ci.lo(), ci.mean - ci.half_width);
  EXPECT_DOUBLE_EQ(ci.hi(), ci.mean + ci.half_width);
}

TEST(MeanCi95, DegenerateSamples) {
  RunningStats empty;
  EXPECT_DOUBLE_EQ(mean_ci95(empty).half_width, 0.0);
  RunningStats one;
  one.add(5.0);
  EXPECT_DOUBLE_EQ(mean_ci95(one).mean, 5.0);
  EXPECT_DOUBLE_EQ(mean_ci95(one).half_width, 0.0);
}

TEST(MeanCi95, LargeSamplesUseNormalCriticalValue) {
  RunningStats stats;
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) stats.add(rng.uniform());
  const MeanInterval ci = mean_ci95(stats);
  const double expected =
      1.960 * std::sqrt(stats.variance() * 1000.0 / 999.0 / 1000.0);
  EXPECT_NEAR(ci.half_width, expected, 1e-12);
}

TEST(PercentileSorted, AgreesWithUnsortedVariant) {
  Xoshiro256 rng(6);
  std::vector<double> v;
  for (int i = 0; i < 777; ++i) v.push_back(rng.uniform() * 1000.0);
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(percentile(v, p), percentile_sorted(sorted, p));
  }
}

}  // namespace
}  // namespace reissue::stats
