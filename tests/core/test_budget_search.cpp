#include "reissue/core/budget_search.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace reissue::core {
namespace {

/// Parabolic latency-vs-budget surface with a known minimum, mimicking the
/// §4.4 observation that tail latency is a smooth parabola in the budget.
class ParabolaEvaluator {
 public:
  ParabolaEvaluator(double best_budget, double best_latency, double curvature)
      : best_budget_(best_budget),
        best_latency_(best_latency),
        curvature_(curvature) {}

  double operator()(double budget) {
    ++calls_;
    const double delta = budget - best_budget_;
    return best_latency_ + curvature_ * delta * delta;
  }

  [[nodiscard]] int calls() const noexcept { return calls_; }

 private:
  double best_budget_;
  double best_latency_;
  double curvature_;
  int calls_ = 0;
};

TEST(BudgetSearch, RejectsBadConfig) {
  BudgetSearchConfig config;
  config.initial_delta = 0.0;
  EXPECT_THROW(search_optimal_budget([](double) { return 1.0; }, config),
               std::invalid_argument);
  config = BudgetSearchConfig{};
  config.max_budget = config.min_budget;
  EXPECT_THROW(search_optimal_budget([](double) { return 1.0; }, config),
               std::invalid_argument);
  config = BudgetSearchConfig{};
  config.max_trials = 0;
  EXPECT_THROW(search_optimal_budget([](double) { return 1.0; }, config),
               std::invalid_argument);
}

TEST(BudgetSearch, FindsParabolaMinimum) {
  ParabolaEvaluator surface(0.08, 100.0, 40000.0);
  BudgetSearchConfig config;
  config.max_trials = 16;
  const auto outcome =
      search_optimal_budget([&](double b) { return surface(b); }, config);
  EXPECT_NEAR(outcome.best_budget, 0.08, 0.02);
  EXPECT_NEAR(outcome.best_tail_latency, 100.0, 25.0);
}

TEST(BudgetSearch, TrialsRecordTheWalk) {
  ParabolaEvaluator surface(0.05, 50.0, 10000.0);
  BudgetSearchConfig config;
  config.max_trials = 10;
  const auto outcome =
      search_optimal_budget([&](double b) { return surface(b); }, config);
  ASSERT_GE(outcome.trials.size(), 2u);
  EXPECT_EQ(outcome.trials.front().index, 0);
  EXPECT_DOUBLE_EQ(outcome.trials.front().budget, 0.0);
  // Every accepted trial must improve on the previous best.
  double best = outcome.trials.front().tail_latency;
  for (std::size_t i = 1; i < outcome.trials.size(); ++i) {
    if (outcome.trials[i].accepted) {
      EXPECT_LT(outcome.trials[i].tail_latency, best);
      best = outcome.trials[i].tail_latency;
    }
  }
  EXPECT_DOUBLE_EQ(best, outcome.best_tail_latency);
}

TEST(BudgetSearch, GrowsStepOnImprovement) {
  // Monotone decreasing surface: the walk should expand its step (paper:
  // delta = 3 delta / 2) and march toward max_budget.
  BudgetSearchConfig config;
  config.max_trials = 10;
  config.max_budget = 0.50;
  const auto outcome = search_optimal_budget(
      [](double b) { return 100.0 - 100.0 * b; }, config);
  EXPECT_GT(outcome.best_budget, 0.10);
  // Budgets of successive accepted trials must be strictly increasing.
  double prev = -1.0;
  for (const auto& trial : outcome.trials) {
    if (trial.accepted) {
      EXPECT_GT(trial.budget, prev);
      prev = trial.budget;
    }
  }
}

TEST(BudgetSearch, ZeroIsBestWhenReissueAlwaysHurts) {
  // Monotone increasing surface: stay at budget 0.
  BudgetSearchConfig config;
  config.max_trials = 10;
  const auto outcome = search_optimal_budget(
      [](double b) { return 100.0 + 1000.0 * b; }, config);
  EXPECT_DOUBLE_EQ(outcome.best_budget, 0.0);
}

TEST(BudgetSearch, RespectsBudgetBounds) {
  BudgetSearchConfig config;
  config.max_trials = 20;
  config.max_budget = 0.20;
  const auto outcome = search_optimal_budget(
      [](double b) { return 100.0 - b; }, config);
  for (const auto& trial : outcome.trials) {
    EXPECT_GE(trial.budget, 0.0);
    EXPECT_LE(trial.budget, 0.20);
  }
  EXPECT_LE(outcome.best_budget, 0.20);
}

TEST(BudgetSearch, StopsWhenDeltaCollapses) {
  ParabolaEvaluator surface(0.05, 10.0, 1e6);
  BudgetSearchConfig config;
  config.max_trials = 100;
  config.min_delta = 1e-3;
  const auto outcome =
      search_optimal_budget([&](double b) { return surface(b); }, config);
  // The delta halving must terminate the walk well before 100 trials.
  EXPECT_LT(outcome.trials.size(), 40u);
}

TEST(SlaSearch, FindsCheapestFeasibleBudget) {
  // Latency 200 - 1500*b until it saturates; target 80 requires b >= 0.08.
  const auto eval = [](double b) { return std::max(200.0 - 1500.0 * b, 50.0); };
  BudgetSearchConfig config;
  config.max_trials = 20;
  config.max_budget = 0.30;
  const auto outcome = minimize_budget_for_sla(eval, 80.0, config);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_LE(outcome.tail_latency, 80.0 + 1e-6);
  EXPECT_LE(outcome.budget, 0.15);  // should not wildly overshoot 0.08
}

TEST(SlaSearch, ReportsInfeasibleTargets) {
  const auto eval = [](double) { return 500.0; };
  BudgetSearchConfig config;
  config.max_trials = 8;
  const auto outcome = minimize_budget_for_sla(eval, 80.0, config);
  EXPECT_FALSE(outcome.feasible);
}

TEST(SlaSearch, RejectsNonPositiveTarget) {
  EXPECT_THROW(minimize_budget_for_sla([](double) { return 1.0; }, 0.0),
               std::invalid_argument);
}

TEST(SlaSearch, TrivialTargetNeedsZeroBudget) {
  const auto eval = [](double b) { return 100.0 - b * 10.0; };
  BudgetSearchConfig config;
  config.max_trials = 8;
  const auto outcome = minimize_budget_for_sla(eval, 150.0, config);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_DOUBLE_EQ(outcome.budget, 0.0);
}

}  // namespace
}  // namespace reissue::core
