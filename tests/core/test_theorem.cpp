// Numerical validation of the paper's §3 optimality results:
//
//   Theorem 3.1: the optimal SingleR and DoubleR policies achieve the same
//   kth percentile tail latency under the same budget.
//
// SingleR is the q2=0 special case of DoubleR, so optimal-DoubleR can
// never be *worse*.  The substantive claim is that it is never *better*;
// we grid-search DoubleR and check it cannot beat the Fig. 1 optimum by
// more than discretization noise, across distributions, percentiles and
// budgets.
#include <gtest/gtest.h>

#include <vector>

#include "reissue/core/multi_optimizer.hpp"
#include "reissue/core/optimizer.hpp"
#include "reissue/core/success_rate.hpp"
#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::core {
namespace {

stats::EmpiricalCdf sample_cdf(const stats::Distribution& dist, std::size_t n,
                               std::uint64_t seed) {
  stats::Xoshiro256 rng(seed);
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) samples.push_back(dist.sample(rng));
  return stats::EmpiricalCdf(std::move(samples));
}

struct TheoremCase {
  std::string label;
  stats::DistributionPtr dist;
  double k;
  double budget;
};

class SingleVsDouble : public ::testing::TestWithParam<TheoremCase> {};

TEST_P(SingleVsDouble, DoubleRNeverBeatsSingleR) {
  const auto& param = GetParam();
  const auto rx = sample_cdf(*param.dist, 2000, 0xaaa);
  const auto ry = sample_cdf(*param.dist, 2000, 0xbbb);

  // Best SingleR tail via the same generic evaluator the DoubleR search
  // uses (so the comparison is apples-to-apples).
  const auto single = compute_optimal_single_r(rx, ry, param.k, param.budget);
  const double single_tail = policy_tail_latency(
      rx, ry, ReissuePolicy::single_r(single.delay, single.probability),
      param.k);

  const auto dbl =
      compute_optimal_double_r(rx, ry, param.k, param.budget);

  // DoubleR includes SingleR, so it can be equal or (by grid granularity)
  // slightly better/worse; Theorem 3.1 says no *material* advantage.
  EXPECT_GE(dbl.tail_latency, 0.93 * single_tail) << param.label;
  // And it must respect the budget.
  EXPECT_LE(dbl.budget_spent, param.budget * 1.05 + 1e-9) << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SingleVsDouble,
    ::testing::Values(
        TheoremCase{"pareto_p95_b05", stats::make_pareto(1.1, 2.0), 0.95, 0.05},
        TheoremCase{"pareto_p95_b20", stats::make_pareto(1.1, 2.0), 0.95, 0.20},
        TheoremCase{"pareto_p99_b02", stats::make_pareto(1.1, 2.0), 0.99, 0.02},
        TheoremCase{"lognormal_p95_b10", stats::make_lognormal(1.0, 1.0), 0.95,
                    0.10},
        TheoremCase{"lognormal_p90_b30", stats::make_lognormal(1.0, 1.0), 0.90,
                    0.30},
        TheoremCase{"exp_p95_b10", stats::make_exponential(0.1), 0.95, 0.10},
        TheoremCase{"exp_p99_b05", stats::make_exponential(0.1), 0.99, 0.05}),
    [](const auto& info) { return info.param.label; });

TEST(SingleVsDouble, OptimalDoubleROftenCollapsesToOneStage) {
  // When the DoubleR search wins nothing, its optimum typically puts all
  // probability in one stage (q1 or q2 ~ 0) -- the structural content of
  // the theorem.  Verify the best found policy spends >= 85% of its budget
  // on a single stage for a representative workload.
  const auto dist = stats::make_pareto(1.1, 2.0);
  const auto rx = sample_cdf(*dist, 2000, 0xccc);
  const auto ry = sample_cdf(*dist, 2000, 0xddd);
  const auto dbl = compute_optimal_double_r(rx, ry, 0.95, 0.10);
  ASSERT_GE(dbl.policy.stage_count(), 1u);
  if (dbl.policy.stage_count() == 2) {
    const auto stages = dbl.policy.stages();
    const double spend1 = stages[0].probability * rx.tail(stages[0].delay);
    const double spend2 = stages[1].probability * rx.tail(stages[1].delay) *
                          (1.0 - stages[0].probability *
                                     ry.cdf(stages[1].delay - stages[0].delay));
    const double total = spend1 + spend2;
    ASSERT_GT(total, 0.0);
    const double dominant = std::max(spend1, spend2) / total;
    EXPECT_GE(dominant, 0.5);
  }
}

TEST(SingleVsMultiple, RejectsBadInputs) {
  const auto rx = sample_cdf(*stats::make_exponential(0.1), 200, 1);
  EXPECT_THROW(compute_optimal_multiple_r(rx, rx, 0.0, 0.1, 2),
               std::invalid_argument);
  EXPECT_THROW(compute_optimal_multiple_r(rx, rx, 0.95, -0.1, 2),
               std::invalid_argument);
  EXPECT_THROW(compute_optimal_multiple_r(rx, rx, 0.95, 0.1, 0),
               std::invalid_argument);
}

TEST(SingleVsMultiple, RespectsBudget) {
  const auto dist = stats::make_pareto(1.1, 2.0);
  const auto rx = sample_cdf(*dist, 1500, 0x111);
  const auto ry = sample_cdf(*dist, 1500, 0x222);
  for (std::size_t stages : {1u, 2u, 3u}) {
    const auto result =
        compute_optimal_multiple_r(rx, ry, 0.95, 0.10, stages);
    EXPECT_LE(result.budget_spent, 0.10 + 1e-6) << stages << " stages";
    EXPECT_EQ(result.policy.stage_count(), stages);
  }
}

TEST(SingleVsMultiple, OneStageMatchesSingleROptimum) {
  const auto dist = stats::make_lognormal(1.0, 1.0);
  const auto rx = sample_cdf(*dist, 1500, 0x333);
  const auto ry = sample_cdf(*dist, 1500, 0x444);
  const auto single = compute_optimal_single_r(rx, ry, 0.95, 0.10);
  const double single_tail = policy_tail_latency(
      rx, ry, ReissuePolicy::single_r(single.delay, single.probability),
      0.95);
  const auto multi = compute_optimal_multiple_r(rx, ry, 0.95, 0.10, 1);
  // The 1-stage coordinate search uses a coarser delay grid than Fig. 1's
  // exact scan, so allow a small gap in either direction.
  EXPECT_NEAR(multi.tail_latency, single_tail, 0.08 * single_tail);
}

TEST(SingleVsMultiple, ThreeStagesGainNothing) {
  // Theorem 3.2: n-time MultipleR policies cannot beat SingleR.
  for (auto [label, dist] :
       {std::pair<const char*, stats::DistributionPtr>{
            "pareto", stats::make_pareto(1.1, 2.0)},
        {"lognormal", stats::make_lognormal(1.0, 1.0)},
        {"exponential", stats::make_exponential(0.1)}}) {
    const auto rx = sample_cdf(*dist, 1200, 0x555);
    const auto ry = sample_cdf(*dist, 1200, 0x666);
    const auto single = compute_optimal_single_r(rx, ry, 0.95, 0.10);
    const double single_tail = policy_tail_latency(
        rx, ry, ReissuePolicy::single_r(single.delay, single.probability),
        0.95);
    const auto multi = compute_optimal_multiple_r(rx, ry, 0.95, 0.10, 3);
    EXPECT_GE(multi.tail_latency, 0.92 * single_tail) << label;
  }
}

TEST(SingleVsMultiple, MoreStagesNeverWorseThanFewer) {
  // A larger family contains the smaller one, so with the same search
  // effort the optimum must be (weakly) monotone in stage count; allow a
  // tiny slack for the coordinate search's local minima.
  const auto dist = stats::make_pareto(1.1, 2.0);
  const auto rx = sample_cdf(*dist, 1200, 0x777);
  const auto ry = sample_cdf(*dist, 1200, 0x888);
  const auto one = compute_optimal_multiple_r(rx, ry, 0.95, 0.15, 1);
  const auto two = compute_optimal_multiple_r(rx, ry, 0.95, 0.15, 2);
  const auto three = compute_optimal_multiple_r(rx, ry, 0.95, 0.15, 3);
  EXPECT_LE(two.tail_latency, one.tail_latency * 1.05);
  EXPECT_LE(three.tail_latency, one.tail_latency * 1.05);
}

TEST(SingleVsDouble, TheoremHoldsAcrossBudgetSweep) {
  // Sweep budgets on one workload; the SingleR optimum (from Fig. 1's
  // scan) must track the DoubleR grid optimum within tolerance everywhere.
  const auto dist = stats::make_lognormal(1.0, 1.0);
  const auto rx = sample_cdf(*dist, 1500, 0xeee);
  const auto ry = sample_cdf(*dist, 1500, 0xfff);
  for (double budget : {0.02, 0.05, 0.10, 0.15, 0.25}) {
    const auto single = compute_optimal_single_r(rx, ry, 0.95, budget);
    const double single_tail = policy_tail_latency(
        rx, ry, ReissuePolicy::single_r(single.delay, single.probability),
        0.95);
    const auto dbl = compute_optimal_double_r(rx, ry, 0.95, budget);
    EXPECT_GE(dbl.tail_latency, 0.9 * single_tail) << "budget=" << budget;
    EXPECT_LE(dbl.tail_latency, single_tail * 1.001) << "budget=" << budget;
  }
}

}  // namespace
}  // namespace reissue::core
