// The LogMode / RunObserver abstraction on SystemUnderTest: the
// RunResultBuilder round-trips observations into RunResult logs, and the
// base-class run_streaming default replays a full run so systems without a
// native streaming path still serve streaming consumers.
#include <gtest/gtest.h>

#include <vector>

#include "reissue/core/run_result.hpp"
#include "synthetic_system.hpp"

namespace reissue::core {
namespace {

TEST(RunResultBuilder, MaterializesObservationsInOrder) {
  RunResultBuilder builder(2);
  builder.on_query(3.0, 5.0);
  builder.on_query(2.0, 2.0);
  builder.on_reissue(5.0, 1.5, 1.0, /*cancelled=*/false);
  builder.on_reissue(5.0, 9.9, 1.2, /*cancelled=*/true);  // no Y log
  builder.on_complete(2, 2, 0.25);
  const RunResult result = builder.take();

  EXPECT_EQ(result.query_latencies, (std::vector<double>{3.0, 2.0}));
  EXPECT_EQ(result.primary_latencies, (std::vector<double>{5.0, 2.0}));
  EXPECT_EQ(result.reissue_latencies, (std::vector<double>{1.5}));
  EXPECT_EQ(result.reissue_delays, (std::vector<double>{1.0}));
  ASSERT_EQ(result.correlated_pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.correlated_pairs[0].first, 5.0);
  // on_complete totals are authoritative (cancelled copies count).
  EXPECT_EQ(result.queries, 2u);
  EXPECT_EQ(result.reissues_issued, 2u);
  EXPECT_DOUBLE_EQ(result.utilization, 0.25);
}

/// Observer that accumulates simple tallies for replay verification.
class TallyObserver final : public RunObserver {
 public:
  std::size_t queries = 0;
  std::size_t reissues = 0;
  double latency_sum = 0.0;
  std::size_t reported_queries = 0;
  std::size_t reported_reissues = 0;

  void on_query(double latency, double) override {
    ++queries;
    latency_sum += latency;
  }
  void on_reissue(double, double, double, bool) override { ++reissues; }
  void on_complete(std::size_t q, std::size_t r, double) override {
    reported_queries = q;
    reported_reissues = r;
  }
};

TEST(RunStreaming, DefaultImplementationReplaysAFullRun) {
  // StaticSystem does not override run_streaming: the base class runs the
  // workload and replays its logs.
  testing::StaticSystem system(stats::make_exponential(0.1),
                               stats::make_exponential(0.1), 0.0,
                               /*queries=*/5000);
  const auto policy = ReissuePolicy::single_r(5.0, 0.5);
  const RunResult full = system.run(policy);

  TallyObserver tally;
  system.run_streaming(policy, tally);
  EXPECT_EQ(tally.queries, full.query_latencies.size());
  EXPECT_EQ(tally.reissues, full.reissue_latencies.size());
  EXPECT_EQ(tally.reported_queries, full.queries);
  EXPECT_EQ(tally.reported_reissues, full.reissues_issued);
  double expected_sum = 0.0;
  for (double x : full.query_latencies) expected_sum += x;
  EXPECT_DOUBLE_EQ(tally.latency_sum, expected_sum);
}

TEST(RunStreaming, BuilderRoundTripMatchesRun) {
  testing::StaticSystem system(stats::make_pareto(1.1, 2.0),
                               stats::make_pareto(1.1, 2.0), 0.5,
                               /*queries=*/2000);
  const auto policy = ReissuePolicy::single_r(10.0, 0.4);
  const RunResult direct = system.run(policy);
  RunResultBuilder builder;
  system.run_streaming(policy, builder);
  const RunResult replayed = builder.take();
  EXPECT_EQ(replayed.query_latencies, direct.query_latencies);
  EXPECT_EQ(replayed.primary_latencies, direct.primary_latencies);
  EXPECT_EQ(replayed.reissue_latencies, direct.reissue_latencies);
  EXPECT_EQ(replayed.reissue_delays, direct.reissue_delays);
  EXPECT_EQ(replayed.correlated_pairs, direct.correlated_pairs);
  EXPECT_EQ(replayed.queries, direct.queries);
  EXPECT_EQ(replayed.reissues_issued, direct.reissues_issued);
}

}  // namespace
}  // namespace reissue::core
