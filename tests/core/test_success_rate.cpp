#include "reissue/core/success_rate.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::core {
namespace {

stats::EmpiricalCdf uniform_grid_cdf(double lo, double hi, std::size_t n) {
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(lo + (hi - lo) * (static_cast<double>(i) + 0.5) /
                               static_cast<double>(n));
  }
  return stats::EmpiricalCdf(std::move(samples));
}

TEST(SingleRSuccessRate, MatchesEquationThree) {
  // X, Y ~ U(0,100) on a fine grid.  Eq. (3):
  //   Pr(Q<=t) = F(t) + q (1-F(t)) F(t-d),  q = B / (1-F(d)).
  const auto rx = uniform_grid_cdf(0.0, 100.0, 10000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 10000);
  const double b = 0.10;
  const double t = 80.0;
  const double d = 50.0;
  const double fx = 0.80;       // F(80)
  const double q = b / 0.50;    // Pr(X>50)=0.5
  const double fy = 0.30;       // F(30)
  const double expected = fx + q * (1.0 - fx) * fy;
  EXPECT_NEAR(single_r_success_rate(rx, ry, b, t, d), expected, 1e-3);
}

TEST(SingleRSuccessRate, ClampsProbabilityAtOne) {
  // d so late that Pr(X>d) < B: unclamped q would exceed 1 and the
  // "success rate" would stop being a probability.
  const auto rx = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 1000);
  const double alpha = single_r_success_rate(rx, ry, 0.5, 99.0, 95.0);
  EXPECT_LE(alpha, 1.0);
  EXPECT_GE(alpha, 0.0);
}

TEST(SingleRSuccessRate, ZeroBudgetReducesToPrimary) {
  const auto rx = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 1000);
  EXPECT_NEAR(single_r_success_rate(rx, ry, 0.0, 70.0, 10.0),
              rx.cdf_strict(70.0), 1e-12);
}

TEST(SingleRSuccessRate, MonotoneInT) {
  const auto rx = uniform_grid_cdf(0.0, 100.0, 2000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 2000);
  double prev = 0.0;
  for (double t = 5.0; t <= 100.0; t += 5.0) {
    const double alpha = single_r_success_rate(rx, ry, 0.1, t, 20.0);
    EXPECT_GE(alpha, prev - 1e-12) << "t=" << t;
    prev = alpha;
  }
}

TEST(SingleRSuccessRate, ReissueCannotHelpBeforeItsDelay) {
  const auto rx = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 1000);
  // t <= d: Y <= t - d <= 0 impossible, so alpha == Pr(X <= t).
  EXPECT_NEAR(single_r_success_rate(rx, ry, 0.3, 30.0, 30.0),
              rx.cdf_strict(30.0), 1e-12);
  EXPECT_NEAR(single_r_success_rate(rx, ry, 0.3, 20.0, 30.0),
              rx.cdf_strict(20.0), 1e-12);
}

TEST(PolicySuccessRate, NoReissueIsPrimaryCdf) {
  const auto rx = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto policy = ReissuePolicy::none();
  for (double t : {10.0, 50.0, 90.0}) {
    EXPECT_NEAR(policy_success_rate(rx, ry, policy, t), rx.cdf(t), 1e-12);
  }
}

TEST(PolicySuccessRate, SingleDEqualsSingleRWithQOne) {
  const auto rx = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto sd = ReissuePolicy::single_d(40.0);
  const auto sr = ReissuePolicy::single_r(40.0, 1.0);
  for (double t : {30.0, 50.0, 70.0, 95.0}) {
    EXPECT_DOUBLE_EQ(policy_success_rate(rx, ry, sd, t),
                     policy_success_rate(rx, ry, sr, t));
  }
}

TEST(PolicySuccessRate, MoreStagesNeverHurt) {
  const auto rx = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto one = ReissuePolicy::single_r(30.0, 0.5);
  const auto two = ReissuePolicy::double_r(30.0, 0.5, 60.0, 0.5);
  for (double t : {40.0, 65.0, 80.0, 95.0}) {
    EXPECT_GE(policy_success_rate(rx, ry, two, t),
              policy_success_rate(rx, ry, one, t) - 1e-12);
  }
}

TEST(PolicyBudget, MatchesEquationFour) {
  const auto rx = uniform_grid_cdf(0.0, 100.0, 10000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 10000);
  // B = q Pr(X > d) = 0.6 * 0.3.
  const auto policy = ReissuePolicy::single_r(70.0, 0.6);
  EXPECT_NEAR(policy_budget(rx, ry, policy), 0.18, 1e-3);
}

TEST(PolicyBudget, ImmediateSpendsFullProbability) {
  const auto rx = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 1000);
  EXPECT_NEAR(policy_budget(rx, ry, ReissuePolicy::immediate()), 1.0, 1e-9);
}

TEST(PolicyBudget, DoubleRMatchesEquationFifteen) {
  const auto rx = uniform_grid_cdf(0.0, 100.0, 10000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 10000);
  const double d1 = 20.0;
  const double q1 = 0.4;
  const double d2 = 50.0;
  const double q2 = 0.5;
  // Eq. (15): q1 Pr(X>d1) + q2 Pr(X>d2) (1 - q1 Pr(Y <= d2-d1)).
  const double expected = q1 * 0.8 + q2 * 0.5 * (1.0 - q1 * 0.3);
  const auto policy = ReissuePolicy::double_r(d1, q1, d2, q2);
  EXPECT_NEAR(policy_budget(rx, ry, policy), expected, 1e-3);
}

TEST(PolicyTailLatency, FindsSmallestFeasibleSample) {
  const auto rx = uniform_grid_cdf(0.0, 100.0, 1000);
  const auto ry = uniform_grid_cdf(0.0, 100.0, 1000);
  // Without reissue the 95th percentile of U(0,100) is ~95.
  const double base = policy_tail_latency(rx, ry, ReissuePolicy::none(), 0.95);
  EXPECT_NEAR(base, 95.0, 0.5);
  // Immediate reissue: Pr(min(X,Y) <= t) = 1-(1-t/100)^2 = 0.95 at ~77.6.
  const double imm =
      policy_tail_latency(rx, ry, ReissuePolicy::immediate(), 0.95);
  EXPECT_NEAR(imm, 77.6, 1.0);
}

TEST(CorrelatedSuccessRate, UsesConditionalDistribution) {
  // Perfect correlation Y == X: if X > t then Y > t >= t-d, so a reissue
  // can never save a late query when X==Y and d >= 0 -- unless the reissue
  // skips queueing.  Conditional CDF must reflect that; the independent
  // formula would overestimate.
  std::vector<std::pair<double, double>> pairs;
  stats::Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform() * 100.0;
    pairs.emplace_back(x, x);
  }
  const stats::JointSamples joint(pairs);
  const double t = 90.0;
  const double d = 50.0;
  const double correlated =
      single_r_success_rate_correlated(joint.x_marginal(), joint, 0.2, t, d);
  // Conditional term vanishes: Pr(Y <= 40 | X > 90) = 0.
  EXPECT_NEAR(correlated, joint.x_marginal().cdf_strict(t), 1e-9);

  const double independent = single_r_success_rate(
      joint.x_marginal(), joint.y_marginal(), 0.2, t, d);
  EXPECT_GT(independent, correlated + 0.01);
}

}  // namespace
}  // namespace reissue::core
