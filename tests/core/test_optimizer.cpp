#include "reissue/core/optimizer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "reissue/core/success_rate.hpp"
#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::core {
namespace {

stats::EmpiricalCdf sample_cdf(const stats::Distribution& dist, std::size_t n,
                               std::uint64_t seed) {
  stats::Xoshiro256 rng(seed);
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) samples.push_back(dist.sample(rng));
  return stats::EmpiricalCdf(std::move(samples));
}

TEST(Optimizer, RejectsBadInputs) {
  const auto cdf = sample_cdf(*stats::make_exponential(1.0), 100, 1);
  EXPECT_THROW(compute_optimal_single_r(cdf, cdf, 0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW(compute_optimal_single_r(cdf, cdf, 1.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW(compute_optimal_single_r(cdf, cdf, 0.95, -0.1),
               std::invalid_argument);
}

TEST(Optimizer, ResultSatisfiesBudgetConstraint) {
  const auto dist = stats::make_pareto(1.1, 2.0);
  const auto rx = sample_cdf(*dist, 5000, 2);
  const auto ry = sample_cdf(*dist, 5000, 3);
  for (double budget : {0.01, 0.05, 0.10, 0.25}) {
    const auto result = compute_optimal_single_r(rx, ry, 0.95, budget);
    // q Pr(X > d) <= B (within discreteness of the ECDF).
    const double spend = result.probability * rx.tail(result.delay);
    EXPECT_LE(spend, budget + 1e-9) << "budget=" << budget;
    EXPECT_GE(result.probability, 0.0);
    EXPECT_LE(result.probability, 1.0);
  }
}

TEST(Optimizer, ResultSatisfiesPercentileConstraint) {
  const auto dist = stats::make_lognormal(1.0, 1.0);
  const auto rx = sample_cdf(*dist, 5000, 4);
  const auto ry = sample_cdf(*dist, 5000, 5);
  const double k = 0.95;
  const double budget = 0.10;
  const auto result = compute_optimal_single_r(rx, ry, k, budget);
  EXPECT_GT(result.predicted_success_rate, k);
  EXPECT_GE(result.predicted_tail_latency, result.delay);
}

TEST(Optimizer, ReducesTailVersusNoReissue) {
  const auto dist = stats::make_pareto(1.1, 2.0);
  const auto rx = sample_cdf(*dist, 10000, 6);
  const auto ry = sample_cdf(*dist, 10000, 7);
  const double base_p95 = rx.quantile(0.95);
  const auto result = compute_optimal_single_r(rx, ry, 0.95, 0.10);
  EXPECT_LT(result.predicted_tail_latency, base_p95);
}

struct OptCase {
  std::string label;
  stats::DistributionPtr dist;
  double k;
  double budget;
};

class FaithfulMatchesBruteForce : public ::testing::TestWithParam<OptCase> {};

TEST_P(FaithfulMatchesBruteForce, SameTailLatency) {
  // The Fig. 1 two-pointer scan must find the same optimum as exhaustive
  // search over all (d, t) sample pairs.
  const auto& param = GetParam();
  const auto rx = sample_cdf(*param.dist, 600, 11);
  const auto ry = sample_cdf(*param.dist, 600, 12);
  const auto fast = compute_optimal_single_r(rx, ry, param.k, param.budget);
  const auto brute =
      compute_optimal_single_r_brute(rx, ry, param.k, param.budget);
  EXPECT_DOUBLE_EQ(fast.predicted_tail_latency, brute.predicted_tail_latency)
      << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FaithfulMatchesBruteForce,
    ::testing::Values(
        OptCase{"pareto_p95_b10", stats::make_pareto(1.1, 2.0), 0.95, 0.10},
        OptCase{"pareto_p99_b02", stats::make_pareto(1.1, 2.0), 0.99, 0.02},
        OptCase{"pareto_p90_b30", stats::make_pareto(1.1, 2.0), 0.90, 0.30},
        OptCase{"lognormal_p95_b05", stats::make_lognormal(1.0, 1.0), 0.95,
                0.05},
        OptCase{"lognormal_p99_b15", stats::make_lognormal(1.0, 1.0), 0.99,
                0.15},
        OptCase{"exponential_p95_b10", stats::make_exponential(0.1), 0.95,
                0.10},
        OptCase{"exponential_p50_b01", stats::make_exponential(0.1), 0.50,
                0.01},
        OptCase{"uniform_p95_b20", stats::make_uniform(0.0, 100.0), 0.95,
                0.20}),
    [](const auto& info) { return info.param.label; });

TEST(Optimizer, LargerBudgetNeverWorse) {
  const auto dist = stats::make_pareto(1.1, 2.0);
  const auto rx = sample_cdf(*dist, 4000, 21);
  const auto ry = sample_cdf(*dist, 4000, 22);
  double prev = std::numeric_limits<double>::infinity();
  for (double budget : {0.01, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    const auto result = compute_optimal_single_r(rx, ry, 0.95, budget);
    EXPECT_LE(result.predicted_tail_latency, prev + 1e-9)
        << "budget=" << budget;
    prev = result.predicted_tail_latency;
  }
}

TEST(Optimizer, TinyBudgetStillImproves) {
  // The §2.4 argument: SingleR reduces the kth percentile even when
  // B < 1-k, where SingleD provably cannot.
  const auto dist = stats::make_pareto(1.1, 2.0);
  const auto rx = sample_cdf(*dist, 20000, 31);
  const auto ry = sample_cdf(*dist, 20000, 32);
  const double k = 0.95;
  const double budget = 0.02;  // < 1-k = 0.05
  const auto result = compute_optimal_single_r(rx, ry, k, budget);
  EXPECT_LT(result.predicted_tail_latency, rx.quantile(k));
  // And the SingleD policy with the same budget reissues at the 98th
  // percentile -- after the 95th, so it cannot reduce the 95th.
  const auto sd = single_d_for_budget(rx, budget);
  EXPECT_GT(sd.delay(), rx.quantile(k));
}

TEST(Optimizer, SingleDForBudgetMatchesQuantile) {
  const auto dist = stats::make_exponential(0.1);
  const auto rx = sample_cdf(*dist, 5000, 41);
  const auto policy = single_d_for_budget(rx, 0.10);
  EXPECT_DOUBLE_EQ(policy.delay(), rx.quantile(0.90));
  EXPECT_DOUBLE_EQ(policy.probability(), 1.0);
  // Measured spend: Pr(X > d) should be ~budget.
  EXPECT_NEAR(rx.tail(policy.delay()), 0.10, 0.01);
}

TEST(Optimizer, SingleDZeroBudgetIsNoReissue) {
  const auto rx = sample_cdf(*stats::make_exponential(1.0), 100, 42);
  EXPECT_EQ(single_d_for_budget(rx, 0.0), ReissuePolicy::none());
}

TEST(Optimizer, IdenticalSamplesDegenerate) {
  const stats::EmpiricalCdf rx(std::vector<double>(50, 7.0));
  const stats::EmpiricalCdf ry(std::vector<double>(50, 7.0));
  const auto result = compute_optimal_single_r(rx, ry, 0.95, 0.10);
  EXPECT_DOUBLE_EQ(result.delay, 7.0);
  EXPECT_DOUBLE_EQ(result.predicted_tail_latency, 7.0);
}

// ------------------------------------------ training-run entry points

/// A training run shaped like what the optimizer-in-the-loop path sees:
/// primaries drawn from `dist`, with (X, Y) pairs for a `pair_rate`
/// fraction of queries.
RunResult synthetic_training_run(const stats::Distribution& dist,
                                 std::size_t n, double pair_rate,
                                 std::uint64_t seed) {
  stats::Xoshiro256 rng(seed);
  RunResult run;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = dist.sample(rng);
    run.primary_latencies.push_back(x);
    run.query_latencies.push_back(x);
    if (static_cast<double>(i % 100) < pair_rate * 100.0) {
      const double y = dist.sample(rng);
      run.reissue_latencies.push_back(y);
      run.correlated_pairs.emplace_back(x, y);
      run.reissue_delays.push_back(0.0);
    }
  }
  run.queries = n;
  run.reissues_issued = run.reissue_latencies.size();
  return run;
}

TEST(OptimizerFromRun, MatchesCdfEntryPointsOnTheSameLogs) {
  const auto dist = stats::make_pareto(1.1, 2.0);
  const RunResult train = synthetic_training_run(*dist, 8000, 0.0, 61);
  // No reissues in the run: RY falls back to RX, exactly the §4.1 call.
  const auto from_run =
      optimize_single_r_from_run(train, 0.95, 0.05, /*correlated=*/false);
  const auto direct = compute_optimal_single_r(
      train.primary_cdf(), train.primary_cdf(), 0.95, 0.05);
  EXPECT_DOUBLE_EQ(from_run.delay, direct.delay);
  EXPECT_DOUBLE_EQ(from_run.probability, direct.probability);
  EXPECT_DOUBLE_EQ(from_run.predicted_tail_latency,
                   direct.predicted_tail_latency);

  // With pairs, the correlated path matches feeding them in directly.
  const RunResult probed = synthetic_training_run(*dist, 8000, 0.2, 62);
  const auto corr =
      optimize_single_r_from_run(probed, 0.95, 0.05, /*correlated=*/true);
  const auto corr_direct = compute_optimal_single_r_correlated(
      probed.primary_cdf(), probed.joint(), 0.95, 0.05);
  EXPECT_DOUBLE_EQ(corr.delay, corr_direct.delay);
  EXPECT_DOUBLE_EQ(corr.probability, corr_direct.probability);

  // The deadline variant is Eq. (2) on the primary log.
  EXPECT_EQ(optimal_single_d_from_run(train, 0.1),
            single_d_for_budget(train.primary_cdf(), 0.1));
}

TEST(OptimizerFromRun, TrainLimitSlicesTheLogsProportionally) {
  const auto dist = stats::make_pareto(1.1, 2.0);
  const RunResult train = synthetic_training_run(*dist, 8000, 0.2, 63);

  // Capped to the first half: identical to an explicitly halved run.
  RunResult half;
  half.primary_latencies.assign(train.primary_latencies.begin(),
                                train.primary_latencies.begin() + 4000);
  half.correlated_pairs.assign(
      train.correlated_pairs.begin(),
      train.correlated_pairs.begin() +
          static_cast<std::ptrdiff_t>(train.correlated_pairs.size() / 2));
  const auto capped =
      optimize_single_r_from_run(train, 0.95, 0.05, /*correlated=*/true,
                                 /*train_limit=*/4000);
  const auto direct = compute_optimal_single_r_correlated(
      half.primary_cdf(), stats::JointSamples(half.correlated_pairs), 0.95,
      0.05);
  EXPECT_DOUBLE_EQ(capped.delay, direct.delay);
  EXPECT_DOUBLE_EQ(capped.probability, direct.probability);

  // A limit at or above the log size is a no-op.
  const auto full = optimize_single_r_from_run(train, 0.95, 0.05, false);
  const auto over =
      optimize_single_r_from_run(train, 0.95, 0.05, false, 100000);
  EXPECT_DOUBLE_EQ(full.delay, over.delay);

  // Eq. (2) on the sliced log.
  EXPECT_EQ(optimal_single_d_from_run(train, 0.1, 4000),
            single_d_for_budget(half.primary_cdf(), 0.1));
}

TEST(OptimizerFromRun, RejectsEmptyTrainingRuns) {
  const RunResult empty;
  EXPECT_THROW(optimize_single_r_from_run(empty, 0.95, 0.05, false),
               std::invalid_argument);
  EXPECT_THROW(optimal_single_d_from_run(empty, 0.05),
               std::invalid_argument);
  // Bad (k, B) propagate from the underlying optimizers.
  const RunResult train =
      synthetic_training_run(*stats::make_exponential(1.0), 100, 0.0, 64);
  EXPECT_THROW(optimize_single_r_from_run(train, 1.5, 0.05, false),
               std::invalid_argument);
  EXPECT_THROW(optimize_single_r_from_run(train, 0.95, -0.05, false),
               std::invalid_argument);
}

TEST(Optimizer, OptimalQBelowOneAtSmallBudgets) {
  // Fig. 3c behaviour: at small budgets the optimal policy reissues early
  // with q < 1 rather than late with q = 1.
  const auto dist = stats::make_pareto(1.1, 2.0);
  const auto rx = sample_cdf(*dist, 20000, 51);
  const auto ry = sample_cdf(*dist, 20000, 52);
  const auto result = compute_optimal_single_r(rx, ry, 0.95, 0.05);
  EXPECT_LT(result.probability, 1.0);
  EXPECT_GT(result.probability, 0.0);
  // The reissue point leaves more than B of requests outstanding.
  EXPECT_GT(rx.tail(result.delay), 0.05);
}

}  // namespace
}  // namespace reissue::core
