// Test doubles for core::SystemUnderTest: analytic workloads with and
// without load feedback, cheap enough for tight unit-test loops.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"
#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::core::testing {

/// Static (load-independent) workload: each query draws X ~ dist_x; a
/// reissue copy draws Y ~ r * x + dist_y.  Latency = min(X, d + Y).
class StaticSystem final : public SystemUnderTest {
 public:
  StaticSystem(stats::DistributionPtr dist_x, stats::DistributionPtr dist_y,
               double correlation = 0.0, std::size_t queries = 20000,
               std::uint64_t seed = 0x7357)
      : dist_x_(std::move(dist_x)),
        dist_y_(std::move(dist_y)),
        correlation_(correlation),
        queries_(queries),
        seed_(seed) {}

  RunResult run(const ReissuePolicy& policy) override {
    ++runs_;
    stats::Xoshiro256 root(seed_);
    stats::Xoshiro256 service = root.split(stats::stream_label("service"));
    stats::Xoshiro256 coins = root.split(stats::stream_label("coin"));
    RunResult result;
    result.queries = queries_;
    const auto stages = policy.stages();
    for (std::size_t i = 0; i < queries_; ++i) {
      const double x = dist_x_->sample(service);
      double latency = x;
      // Evaluate each stage in delay order; a stage only fires if the
      // query is still outstanding at its delay.
      for (const auto& stage : stages) {
        if (latency <= stage.delay) break;
        if (!coins.bernoulli(stage.probability)) continue;
        const double y = correlation_ * x + dist_y_->sample(service);
        ++result.reissues_issued;
        result.reissue_latencies.push_back(y);
        result.correlated_pairs.emplace_back(x, y);
        result.reissue_delays.push_back(stage.delay);
        latency = std::min(latency, stage.delay + y);
      }
      result.primary_latencies.push_back(x);
      result.query_latencies.push_back(latency);
    }
    return result;
  }

  [[nodiscard]] int runs() const noexcept { return runs_; }

 private:
  stats::DistributionPtr dist_x_;
  stats::DistributionPtr dist_y_;
  double correlation_;
  std::size_t queries_;
  std::uint64_t seed_;
  int runs_ = 0;
};

/// Load-feedback workload: response times inflate with the reissue rate of
/// the *previous* run, emulating queueing sensitivity to added load
/// (observation (a) of §4.3: spending budget late costs more load).
class LoadFeedbackSystem final : public SystemUnderTest {
 public:
  LoadFeedbackSystem(stats::DistributionPtr dist, double sensitivity,
                     std::size_t queries = 20000, std::uint64_t seed = 0x7357)
      : dist_(std::move(dist)),
        sensitivity_(sensitivity),
        queries_(queries),
        seed_(seed) {}

  RunResult run(const ReissuePolicy& policy) override {
    stats::Xoshiro256 root(seed_);
    stats::Xoshiro256 service = root.split(stats::stream_label("service"));
    stats::Xoshiro256 coins = root.split(stats::stream_label("coin"));
    RunResult result;
    result.queries = queries_;
    const double inflation = 1.0 + sensitivity_ * last_rate_;
    const auto stages = policy.stages();
    std::size_t issued = 0;
    for (std::size_t i = 0; i < queries_; ++i) {
      const double x = inflation * dist_->sample(service);
      double latency = x;
      for (const auto& stage : stages) {
        if (latency <= stage.delay) break;
        if (!coins.bernoulli(stage.probability)) continue;
        const double y = inflation * dist_->sample(service);
        ++issued;
        result.reissue_latencies.push_back(y);
        result.correlated_pairs.emplace_back(x, y);
        result.reissue_delays.push_back(stage.delay);
        latency = std::min(latency, stage.delay + y);
      }
      result.primary_latencies.push_back(x);
      result.query_latencies.push_back(latency);
    }
    result.reissues_issued = issued;
    last_rate_ = static_cast<double>(issued) / static_cast<double>(queries_);
    return result;
  }

 private:
  stats::DistributionPtr dist_;
  double sensitivity_;
  std::size_t queries_;
  std::uint64_t seed_;
  double last_rate_ = 0.0;
};

}  // namespace reissue::core::testing
