#include "reissue/core/policy.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace reissue::core {
namespace {

TEST(Policy, NoneHasNoStages) {
  const auto p = ReissuePolicy::none();
  EXPECT_EQ(p.family(), PolicyFamily::kNoReissue);
  EXPECT_FALSE(p.reissues());
  EXPECT_EQ(p.stage_count(), 0u);
  EXPECT_THROW(p.delay(), std::logic_error);
  EXPECT_THROW(p.probability(), std::logic_error);
}

TEST(Policy, ImmediateIsZeroDelayCertainty) {
  const auto p = ReissuePolicy::immediate();
  EXPECT_EQ(p.family(), PolicyFamily::kImmediate);
  ASSERT_EQ(p.stage_count(), 1u);
  EXPECT_DOUBLE_EQ(p.delay(), 0.0);
  EXPECT_DOUBLE_EQ(p.probability(), 1.0);
}

TEST(Policy, ImmediateMultipleCopies) {
  const auto p = ReissuePolicy::immediate(3);
  EXPECT_EQ(p.stage_count(), 3u);
  for (const auto& stage : p.stages()) {
    EXPECT_DOUBLE_EQ(stage.delay, 0.0);
    EXPECT_DOUBLE_EQ(stage.probability, 1.0);
  }
}

TEST(Policy, SingleDIsCertainAtDelay) {
  const auto p = ReissuePolicy::single_d(12.5);
  EXPECT_EQ(p.family(), PolicyFamily::kSingleD);
  EXPECT_DOUBLE_EQ(p.delay(), 12.5);
  EXPECT_DOUBLE_EQ(p.probability(), 1.0);
}

TEST(Policy, SingleRStoresBothParameters) {
  const auto p = ReissuePolicy::single_r(8.0, 0.4);
  EXPECT_EQ(p.family(), PolicyFamily::kSingleR);
  EXPECT_DOUBLE_EQ(p.delay(), 8.0);
  EXPECT_DOUBLE_EQ(p.probability(), 0.4);
}

TEST(Policy, ValidationRejectsBadStages) {
  EXPECT_THROW(ReissuePolicy::single_r(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(ReissuePolicy::single_r(1.0, -0.1), std::invalid_argument);
  EXPECT_THROW(ReissuePolicy::single_r(1.0, 1.1), std::invalid_argument);
  EXPECT_THROW(ReissuePolicy::single_d(-0.5), std::invalid_argument);
  // Non-finite delays would poison the simulator's (time, seq) event
  // order, so they must fail here, not downstream.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(ReissuePolicy::single_d(nan), std::invalid_argument);
  EXPECT_THROW(ReissuePolicy::single_d(inf), std::invalid_argument);
  EXPECT_THROW(ReissuePolicy::single_r(nan, 0.5), std::invalid_argument);
}

TEST(Policy, MultipleRSortsStagesByDelay) {
  const auto p = ReissuePolicy::multiple_r(
      {ReissueStage{10.0, 0.2}, ReissueStage{5.0, 0.7}, ReissueStage{7.0, 0.1}});
  ASSERT_EQ(p.stage_count(), 3u);
  EXPECT_DOUBLE_EQ(p.stages()[0].delay, 5.0);
  EXPECT_DOUBLE_EQ(p.stages()[1].delay, 7.0);
  EXPECT_DOUBLE_EQ(p.stages()[2].delay, 10.0);
  EXPECT_DOUBLE_EQ(p.stages()[0].probability, 0.7);
}

TEST(Policy, DoubleRIsTwoStageMultipleR) {
  const auto p = ReissuePolicy::double_r(2.0, 0.3, 6.0, 0.8);
  EXPECT_EQ(p.family(), PolicyFamily::kMultipleR);
  ASSERT_EQ(p.stage_count(), 2u);
  EXPECT_THROW(p.delay(), std::logic_error);  // ambiguous for multi-stage
}

TEST(Policy, DescribeIsHumanReadable) {
  EXPECT_EQ(ReissuePolicy::none().describe(), "NoReissue");
  const auto s = ReissuePolicy::single_r(3.0, 0.25).describe();
  EXPECT_NE(s.find("SingleR"), std::string::npos);
  EXPECT_NE(s.find("d=3"), std::string::npos);
  EXPECT_NE(s.find("q=0.25"), std::string::npos);
}

TEST(Policy, EqualityComparesStagesAndFamily) {
  EXPECT_EQ(ReissuePolicy::single_r(1.0, 0.5), ReissuePolicy::single_r(1.0, 0.5));
  EXPECT_NE(ReissuePolicy::single_r(1.0, 0.5), ReissuePolicy::single_r(1.0, 0.6));
  EXPECT_NE(ReissuePolicy::single_d(1.0), ReissuePolicy::single_r(1.0, 1.0));
}

TEST(PolicyFamily, ToStringCoversAll) {
  EXPECT_EQ(to_string(PolicyFamily::kNoReissue), "NoReissue");
  EXPECT_EQ(to_string(PolicyFamily::kImmediate), "Immediate");
  EXPECT_EQ(to_string(PolicyFamily::kSingleD), "SingleD");
  EXPECT_EQ(to_string(PolicyFamily::kSingleR), "SingleR");
  EXPECT_EQ(to_string(PolicyFamily::kMultipleR), "MultipleR");
}

}  // namespace
}  // namespace reissue::core
