#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "reissue/core/optimizer.hpp"
#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::core {
namespace {

stats::JointSamples correlated_pairs(double r, std::size_t n,
                                     std::uint64_t seed) {
  // Paper §5.1 model: Y = r x + Z, X and Z ~ Pareto(1.1, 2).
  const auto dist = stats::make_pareto(1.1, 2.0);
  stats::Xoshiro256 rng(seed);
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = dist->sample(rng);
    pairs.emplace_back(x, r * x + dist->sample(rng));
  }
  return stats::JointSamples(std::move(pairs));
}

TEST(CorrelatedOptimizer, MatchesBruteForce) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto joint = correlated_pairs(0.5, 400, seed);
    const auto fast = compute_optimal_single_r_correlated(joint.x_marginal(), joint, 0.95, 0.10);
    const auto brute =
        compute_optimal_single_r_correlated_brute(joint.x_marginal(), joint, 0.95, 0.10);
    EXPECT_DOUBLE_EQ(fast.predicted_tail_latency,
                     brute.predicted_tail_latency)
        << "seed=" << seed;
  }
}

TEST(CorrelatedOptimizer, IndependentDataAgreesWithIndependentOptimizer) {
  // With r = 0 the conditional CDF converges to the marginal, so both
  // optimizers should pick (nearly) the same tail latency.
  const auto joint = correlated_pairs(0.0, 20000, 7);
  const auto correlated =
      compute_optimal_single_r_correlated(joint.x_marginal(), joint, 0.95, 0.10);
  const auto independent = compute_optimal_single_r(
      joint.x_marginal(), joint.y_marginal(), 0.95, 0.10);
  EXPECT_NEAR(correlated.predicted_tail_latency,
              independent.predicted_tail_latency,
              0.1 * independent.predicted_tail_latency);
}

TEST(CorrelatedOptimizer, CorrelationReducesAchievableGain) {
  // Stronger correlation means a reissue of a slow query is itself likely
  // slow: the optimal tail latency should not improve as r grows.
  double prev = 0.0;
  for (double r : {0.0, 0.5, 1.0}) {
    const auto joint = correlated_pairs(r, 20000, 11);
    const auto result = compute_optimal_single_r_correlated(joint.x_marginal(), joint, 0.95, 0.15);
    if (r > 0.0) {
      EXPECT_GE(result.predicted_tail_latency, prev * 0.95) << "r=" << r;
    }
    prev = result.predicted_tail_latency;
  }
}

TEST(CorrelatedOptimizer, ReissuesEarlierThanIndependentOnCorrelatedData) {
  // §5.3: on the Correlated workload the optimal policy reissues earlier
  // (at a point with more requests outstanding) than the independent
  // optimizer would, because correlation erodes late-reissue value.
  const auto joint = correlated_pairs(0.5, 30000, 13);
  const auto correlated =
      compute_optimal_single_r_correlated(joint.x_marginal(), joint, 0.95, 0.10);
  const auto independent = compute_optimal_single_r(
      joint.x_marginal(), joint.y_marginal(), 0.95, 0.10);
  const double outstanding_corr = joint.x_marginal().tail(correlated.delay);
  const double outstanding_ind = joint.x_marginal().tail(independent.delay);
  EXPECT_GE(outstanding_corr, outstanding_ind - 0.02);
}

TEST(CorrelatedOptimizer, AccountsForPerfectCorrelation) {
  // Y == X exactly: a reissue dispatched at d answers at d + X2 where
  // X2 == X1 > t ... so for queries missing t, the reissue also misses.
  // The only achievable improvement is zero; the optimizer must not claim
  // a tail below the baseline quantile.
  stats::Xoshiro256 rng(17);
  const auto dist = stats::make_pareto(1.1, 2.0);
  std::vector<std::pair<double, double>> pairs;
  for (int i = 0; i < 10000; ++i) {
    const double x = dist->sample(rng);
    pairs.emplace_back(x, x);
  }
  const stats::JointSamples joint(pairs);
  const auto result = compute_optimal_single_r_correlated(joint.x_marginal(), joint, 0.95, 0.20);
  const double baseline = joint.x_marginal().quantile(0.95);
  EXPECT_GE(result.predicted_tail_latency, baseline * 0.999);
}

TEST(CorrelatedOptimizer, BudgetConstraintHolds) {
  const auto joint = correlated_pairs(0.5, 5000, 19);
  for (double budget : {0.02, 0.10, 0.30}) {
    const auto result =
        compute_optimal_single_r_correlated(joint.x_marginal(), joint, 0.95, budget);
    const double spend =
        result.probability * joint.x_marginal().tail(result.delay);
    EXPECT_LE(spend, budget + 1e-9);
  }
}

}  // namespace
}  // namespace reissue::core
