#include "reissue/core/policy_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace reissue::core {
namespace {

TEST(LatencyLog, RoundTrip) {
  const std::vector<double> samples{1.5, 0.0, 1234.5678, 1e-9};
  std::ostringstream os;
  write_latency_log(os, samples);
  std::istringstream is(os.str());
  const auto parsed = read_latency_log(is);
  ASSERT_EQ(parsed.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i], samples[i]);
  }
}

TEST(LatencyLog, SkipsCommentsAndBlanks) {
  std::istringstream is(
      "# latency log\n"
      "\n"
      "1.5\n"
      "  2.5  # trailing comment\n"
      "\t\n"
      "3.5\n");
  const auto parsed = read_latency_log(is);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed[0], 1.5);
  EXPECT_DOUBLE_EQ(parsed[1], 2.5);
  EXPECT_DOUBLE_EQ(parsed[2], 3.5);
}

TEST(LatencyLog, RejectsGarbage) {
  std::istringstream bad_number("abc\n");
  EXPECT_THROW(read_latency_log(bad_number), std::runtime_error);
  std::istringstream trailing("1.5x\n");
  EXPECT_THROW(read_latency_log(trailing), std::runtime_error);
  std::istringstream negative("-2.0\n");
  EXPECT_THROW(read_latency_log(negative), std::runtime_error);
}

TEST(LatencyLog, EmptyInputGivesEmptyLog) {
  std::istringstream is("");
  EXPECT_TRUE(read_latency_log(is).empty());
}

TEST(PolicyLine, RoundTripAllFamilies) {
  const std::vector<ReissuePolicy> policies{
      ReissuePolicy::none(),
      ReissuePolicy::immediate(2),
      ReissuePolicy::single_d(12.5),
      ReissuePolicy::single_r(3.25, 0.4),
      ReissuePolicy::double_r(1.0, 0.3, 9.0, 0.7),
      ReissuePolicy::multiple_r({ReissueStage{1.0, 0.2},
                                 ReissueStage{2.0, 0.3},
                                 ReissueStage{4.0, 0.4}}),
  };
  for (const auto& policy : policies) {
    const auto line = policy_to_line(policy);
    const auto parsed = policy_from_line(line);
    EXPECT_EQ(parsed, policy) << line;
  }
}

TEST(PolicyLine, ParsesHandwrittenInput) {
  const auto policy = policy_from_line("SingleR d=5 q=0.5");
  EXPECT_EQ(policy.family(), PolicyFamily::kSingleR);
  EXPECT_DOUBLE_EQ(policy.delay(), 5.0);
  EXPECT_DOUBLE_EQ(policy.probability(), 0.5);
}

TEST(PolicyLine, RejectsMalformedInput) {
  EXPECT_THROW(policy_from_line(""), std::runtime_error);
  EXPECT_THROW(policy_from_line("Bogus d=1 q=1"), std::runtime_error);
  EXPECT_THROW(policy_from_line("SingleR d=1"), std::runtime_error);
  EXPECT_THROW(policy_from_line("SingleR q=1 d=1"), std::runtime_error);
  EXPECT_THROW(policy_from_line("SingleR d=1 q=0.5 d=2 q=0.5"),
               std::runtime_error);
  EXPECT_THROW(policy_from_line("SingleD d=1 q=0.5"), std::runtime_error);
  EXPECT_THROW(policy_from_line("NoReissue d=1 q=1"), std::runtime_error);
  EXPECT_THROW(policy_from_line("MultipleR"), std::runtime_error);
}

TEST(PolicyLine, PreservesPrecision) {
  const auto policy = ReissuePolicy::single_r(0.1234567890123456, 0.9876543210987654);
  const auto parsed = policy_from_line(policy_to_line(policy));
  EXPECT_DOUBLE_EQ(parsed.delay(), policy.delay());
  EXPECT_DOUBLE_EQ(parsed.probability(), policy.probability());
}

}  // namespace
}  // namespace reissue::core
