#include "reissue/core/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "reissue/stats/distributions.hpp"
#include "synthetic_system.hpp"

namespace reissue::core {
namespace {

using testing::LoadFeedbackSystem;
using testing::StaticSystem;

AdaptiveConfig base_config() {
  AdaptiveConfig config;
  config.percentile = 0.95;
  config.budget = 0.10;
  config.learning_rate = 0.5;
  config.max_trials = 8;
  return config;
}

TEST(Adaptive, RejectsBadConfig) {
  StaticSystem system(stats::make_exponential(0.1),
                      stats::make_exponential(0.1));
  AdaptiveConfig config = base_config();
  config.percentile = 0.0;
  EXPECT_THROW(adapt_single_r(system, config), std::invalid_argument);
  config = base_config();
  config.budget = 1.5;
  EXPECT_THROW(adapt_single_r(system, config), std::invalid_argument);
  config = base_config();
  config.learning_rate = 0.0;
  EXPECT_THROW(adapt_single_r(system, config), std::invalid_argument);
  config = base_config();
  config.max_trials = 0;
  EXPECT_THROW(adapt_single_r(system, config), std::invalid_argument);
}

TEST(Adaptive, RunsRequestedTrials) {
  StaticSystem system(stats::make_exponential(0.1),
                      stats::make_exponential(0.1));
  const auto outcome = adapt_single_r(system, base_config());
  EXPECT_EQ(outcome.trials.size(), 8u);
  EXPECT_EQ(system.runs(), 8);
  for (std::size_t i = 0; i < outcome.trials.size(); ++i) {
    EXPECT_EQ(outcome.trials[i].index, static_cast<int>(i));
  }
}

TEST(Adaptive, FirstTrialIsImmediateWithBudgetProbability) {
  StaticSystem system(stats::make_exponential(0.1),
                      stats::make_exponential(0.1));
  const auto outcome = adapt_single_r(system, base_config());
  const auto& first = outcome.trials.front().policy;
  EXPECT_DOUBLE_EQ(first.delay(), 0.0);
  EXPECT_DOUBLE_EQ(first.probability(), 0.10);
}

TEST(Adaptive, ReducesTailOnStaticWorkload) {
  StaticSystem baseline_probe(stats::make_pareto(1.1, 2.0),
                              stats::make_pareto(1.1, 2.0));
  const double baseline =
      baseline_probe.run(ReissuePolicy::none()).tail_latency(0.95);

  StaticSystem system(stats::make_pareto(1.1, 2.0),
                      stats::make_pareto(1.1, 2.0));
  const auto outcome = adapt_single_r(system, base_config());
  EXPECT_LT(outcome.final_tail(), baseline);
}

TEST(Adaptive, ConvergesOnStaticWorkload) {
  // Without load feedback the optimizer's prediction should match the
  // actual latency within tolerance after a few trials.
  StaticSystem system(stats::make_lognormal(1.0, 1.0),
                      stats::make_lognormal(1.0, 1.0), 0.0, 40000);
  AdaptiveConfig config = base_config();
  config.tolerance = 0.10;
  const auto outcome = adapt_single_r(system, config);
  EXPECT_TRUE(outcome.converged);
  const auto& last = outcome.trials.back();
  EXPECT_NEAR(last.actual_tail, last.predicted_tail,
              0.15 * last.predicted_tail);
}

TEST(Adaptive, MeasuredRateApproachesBudget) {
  StaticSystem system(stats::make_pareto(1.1, 2.0),
                      stats::make_pareto(1.1, 2.0), 0.5, 40000);
  const auto outcome = adapt_single_r(system, base_config());
  EXPECT_NEAR(outcome.trials.back().measured_reissue_rate, 0.10, 0.02);
}

TEST(Adaptive, StopOnConvergenceShortCircuits) {
  StaticSystem system(stats::make_exponential(0.1),
                      stats::make_exponential(0.1), 0.0, 40000);
  AdaptiveConfig config = base_config();
  config.stop_on_convergence = true;
  config.tolerance = 0.20;
  config.max_trials = 20;
  const auto outcome = adapt_single_r(system, config);
  EXPECT_TRUE(outcome.converged);
  EXPECT_LT(outcome.trials.size(), 20u);
}

TEST(Adaptive, HandlesLoadFeedback) {
  // Response times inflate with reissue load; the loop should still land
  // on a policy whose measured rate honours the budget and that helps the
  // tail relative to no reissue under zero load.
  LoadFeedbackSystem system(stats::make_pareto(1.1, 2.0), /*sensitivity=*/2.0,
                            30000);
  AdaptiveConfig config = base_config();
  config.max_trials = 10;
  const auto outcome = adapt_single_r(system, config);
  EXPECT_NEAR(outcome.trials.back().measured_reissue_rate, config.budget,
              0.03);
  // Delays should have moved off zero (the loop actually adapted).
  EXPECT_GT(outcome.trials.back().policy.delay(), 0.0);
}

TEST(Adaptive, PredictedTailTendsUpwardUnderFeedback) {
  // §4.3 observation (a): as the delay grows toward the local optimum,
  // the (re-estimated) prediction reflects the perturbed distribution.
  // We check the weaker, robust property that predictions from trial 1
  // onward stay within a sane band of the final value (no divergence).
  LoadFeedbackSystem system(stats::make_lognormal(1.0, 1.0), 1.0, 30000);
  AdaptiveConfig config = base_config();
  config.max_trials = 10;
  const auto outcome = adapt_single_r(system, config);
  const double final_pred = outcome.trials.back().predicted_tail;
  for (std::size_t i = 1; i < outcome.trials.size(); ++i) {
    EXPECT_LT(outcome.trials[i].predicted_tail, 5.0 * final_pred);
    EXPECT_GT(outcome.trials[i].predicted_tail, 0.2 * final_pred);
  }
}

TEST(AdaptiveSingleD, FirstTrialMeasuresBaseline) {
  StaticSystem system(stats::make_exponential(0.1),
                      stats::make_exponential(0.1));
  AdaptiveConfig config = base_config();
  const auto outcome = adapt_single_d(system, config);
  EXPECT_FALSE(outcome.trials.front().policy.reissues());
  EXPECT_DOUBLE_EQ(outcome.trials.front().measured_reissue_rate, 0.0);
}

TEST(AdaptiveSingleD, RateConvergesToBudget) {
  StaticSystem system(stats::make_pareto(1.1, 2.0),
                      stats::make_pareto(1.1, 2.0), 0.0, 40000);
  AdaptiveConfig config = base_config();
  config.max_trials = 8;
  const auto outcome = adapt_single_d(system, config);
  EXPECT_NEAR(outcome.trials.back().measured_reissue_rate, config.budget,
              0.02);
  // SingleD always reissues with certainty.
  EXPECT_DOUBLE_EQ(outcome.trials.back().policy.probability(), 1.0);
}

TEST(AdaptiveSingleD, RejectsZeroBudget) {
  StaticSystem system(stats::make_exponential(1.0),
                      stats::make_exponential(1.0));
  AdaptiveConfig config = base_config();
  config.budget = 0.0;
  EXPECT_THROW(adapt_single_d(system, config), std::invalid_argument);
}

TEST(Adaptive, SingleRBeatsSingleDAtSmallBudget) {
  // The headline claim at budget < 1-k: SingleD cannot reduce the 95th
  // percentile with a 2% budget, SingleR can.
  const auto dist = stats::make_pareto(1.1, 2.0);
  AdaptiveConfig config = base_config();
  config.budget = 0.02;
  config.max_trials = 6;

  StaticSystem system_r(dist, dist, 0.0, 40000);
  const auto r = adapt_single_r(system_r, config);

  StaticSystem system_d(dist, dist, 0.0, 40000);
  const auto d = adapt_single_d(system_d, config);

  StaticSystem probe(dist, dist, 0.0, 40000);
  const double baseline = probe.run(ReissuePolicy::none()).tail_latency(0.95);

  EXPECT_LT(r.final_tail(), 0.95 * baseline);
  EXPECT_GE(d.final_tail(), 0.95 * baseline);  // SingleD: no real help
}

}  // namespace
}  // namespace reissue::core
