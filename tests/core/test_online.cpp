#include "reissue/core/online.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::core {
namespace {

OnlineControllerConfig fast_config() {
  OnlineControllerConfig config;
  config.percentile = 0.95;
  config.budget = 0.10;
  config.window = 2048;
  config.reoptimize_interval = 512;
  config.learning_rate = 0.7;
  return config;
}

void feed(OnlineReissueController& controller, const stats::Distribution& dist,
          std::size_t n, stats::Xoshiro256& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    const double x = dist.sample(rng);
    controller.record_primary(x);
    controller.record_query_latency(x);
    // One in five queries also observes a (synthetic) reissue.
    if (i % 5 == 0) {
      controller.record_reissue(x, dist.sample(rng));
    }
  }
}

TEST(Online, RejectsBadConfig) {
  OnlineControllerConfig config = fast_config();
  config.percentile = 1.0;
  EXPECT_THROW(OnlineReissueController{config}, std::invalid_argument);
  config = fast_config();
  config.window = 0;
  EXPECT_THROW(OnlineReissueController{config}, std::invalid_argument);
  config = fast_config();
  config.reoptimize_interval = 0;
  EXPECT_THROW(OnlineReissueController{config}, std::invalid_argument);
  config = fast_config();
  config.learning_rate = 1.5;
  EXPECT_THROW(OnlineReissueController{config}, std::invalid_argument);
}

TEST(Online, StartsImmediateWithBudgetProbability) {
  OnlineReissueController controller(fast_config());
  const auto policy = controller.policy();
  EXPECT_DOUBLE_EQ(policy.delay(), 0.0);
  EXPECT_DOUBLE_EQ(policy.probability(), 0.10);
  EXPECT_EQ(controller.reoptimizations(), 0u);
}

TEST(Online, ReoptimizesOnSchedule) {
  OnlineReissueController controller(fast_config());
  stats::Xoshiro256 rng(1);
  const auto dist = stats::make_exponential(0.1);
  feed(controller, *dist, 512, rng);
  EXPECT_EQ(controller.reoptimizations(), 1u);
  feed(controller, *dist, 1024, rng);
  EXPECT_EQ(controller.reoptimizations(), 3u);
}

TEST(Online, PolicyMovesTowardBatchOptimum) {
  OnlineReissueController controller(fast_config());
  stats::Xoshiro256 rng(2);
  const auto dist = stats::make_pareto(1.1, 2.0);
  feed(controller, *dist, 8192, rng);

  // Batch reference on a fresh sample of the same distribution.
  std::vector<double> sample;
  for (int i = 0; i < 8192; ++i) sample.push_back(dist->sample(rng));
  const stats::EmpiricalCdf rx(std::move(sample));
  const auto batch = compute_optimal_single_r(rx, rx, 0.95, 0.10);

  const auto policy = controller.policy();
  EXPECT_GT(policy.delay(), 0.0);
  EXPECT_NEAR(policy.delay(), batch.delay, 0.6 * batch.delay);
  // Spend respects the budget on the live distribution.
  EXPECT_LE(policy.probability() * rx.tail(policy.delay()), 0.13);
}

TEST(Online, TracksDistributionDrift) {
  // Phase 1: Exp(0.1).  Phase 2: the service slows 4x (Exp(0.025)); the
  // reissue delay must grow accordingly once the window turns over.
  OnlineReissueController controller(fast_config());
  stats::Xoshiro256 rng(3);
  const auto fast_dist = stats::make_exponential(0.1);
  feed(controller, *fast_dist, 4096, rng);
  const double delay_before = controller.policy().delay();

  const auto slow = stats::make_exponential(0.025);
  feed(controller, *slow, 8192, rng);
  const double delay_after = controller.policy().delay();

  EXPECT_GT(delay_before, 0.0);
  EXPECT_GT(delay_after, 2.0 * delay_before);
}

TEST(Online, TailSketchTracksObservedLatency) {
  OnlineReissueController controller(fast_config());
  stats::Xoshiro256 rng(4);
  const auto dist = stats::make_exponential(0.1);
  std::vector<double> seen;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist->sample(rng);
    controller.record_query_latency(v);
    seen.push_back(v);
  }
  std::sort(seen.begin(), seen.end());
  const double exact = seen[static_cast<std::size_t>(0.95 * seen.size())];
  EXPECT_NEAR(controller.tail_estimate(), exact, 0.1 * exact);
}

TEST(Online, PredictedTailPopulatedAfterReoptimize) {
  OnlineReissueController controller(fast_config());
  EXPECT_DOUBLE_EQ(controller.predicted_tail(), 0.0);
  stats::Xoshiro256 rng(5);
  const auto dist = stats::make_exponential(0.1);
  feed(controller, *dist, 1024, rng);
  EXPECT_GT(controller.predicted_tail(), 0.0);
}

TEST(Online, ConcurrentRecordersAreSafe) {
  OnlineControllerConfig config = fast_config();
  config.window = 4096;
  OnlineReissueController controller(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&controller, t] {
      stats::Xoshiro256 rng(100 + t);
      const auto dist = stats::make_exponential(0.1);
      for (int i = 0; i < 5000; ++i) {
        const double x = dist->sample(rng);
        controller.record_primary(x);
        if (i % 7 == 0) controller.record_reissue(x, dist->sample(rng));
        controller.record_query_latency(x);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GE(controller.reoptimizations(), 30u);
  EXPECT_GT(controller.policy().delay(), 0.0);
}

}  // namespace
}  // namespace reissue::core
