// Metamorphic / invariance properties of the policy optimizer that must
// hold for any response-time distribution: units don't matter (scale
// equivariance), more budget never hurts, higher percentile targets never
// shrink the tail, and the optimum spends its whole budget unless q
// saturates.
#include <gtest/gtest.h>

#include <vector>

#include "reissue/core/optimizer.hpp"
#include "reissue/core/success_rate.hpp"
#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::core {
namespace {

std::vector<double> draw(const stats::Distribution& dist, std::size_t n,
                         std::uint64_t seed) {
  stats::Xoshiro256 rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(dist.sample(rng));
  return out;
}

std::vector<double> scaled(std::vector<double> v, double c) {
  for (double& x : v) x *= c;
  return v;
}

struct PropertyCase {
  std::string label;
  stats::DistributionPtr dist;
};

class OptimizerProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    xs_ = draw(*GetParam().dist, 3000, 0xabc);
    ys_ = draw(*GetParam().dist, 3000, 0xdef);
  }

  std::vector<double> xs_;
  std::vector<double> ys_;
};

TEST_P(OptimizerProperties, ScaleEquivariance) {
  // Measuring in seconds vs milliseconds must not change the policy:
  // d* and t* scale by c, q is unchanged.
  const stats::EmpiricalCdf rx(xs_);
  const stats::EmpiricalCdf ry(ys_);
  const auto base = compute_optimal_single_r(rx, ry, 0.95, 0.10);

  for (double c : {0.001, 3.7, 1000.0}) {
    const stats::EmpiricalCdf rx_scaled(scaled(xs_, c));
    const stats::EmpiricalCdf ry_scaled(scaled(ys_, c));
    const auto result = compute_optimal_single_r(rx_scaled, ry_scaled, 0.95, 0.10);
    EXPECT_NEAR(result.delay, c * base.delay, 1e-9 * c * base.delay + 1e-12)
        << "c=" << c;
    EXPECT_NEAR(result.predicted_tail_latency,
                c * base.predicted_tail_latency,
                1e-9 * c * base.predicted_tail_latency + 1e-12);
    EXPECT_NEAR(result.probability, base.probability, 1e-12);
  }
}

TEST_P(OptimizerProperties, BudgetMonotonicity) {
  const stats::EmpiricalCdf rx(xs_);
  const stats::EmpiricalCdf ry(ys_);
  double prev = std::numeric_limits<double>::infinity();
  for (double budget : {0.005, 0.02, 0.05, 0.12, 0.25, 0.50}) {
    const auto result = compute_optimal_single_r(rx, ry, 0.95, budget);
    EXPECT_LE(result.predicted_tail_latency, prev + 1e-9)
        << "budget=" << budget;
    prev = result.predicted_tail_latency;
  }
}

TEST_P(OptimizerProperties, PercentileMonotonicity) {
  const stats::EmpiricalCdf rx(xs_);
  const stats::EmpiricalCdf ry(ys_);
  double prev = 0.0;
  for (double k : {0.50, 0.75, 0.90, 0.95, 0.99}) {
    const auto result = compute_optimal_single_r(rx, ry, k, 0.10);
    EXPECT_GE(result.predicted_tail_latency, prev - 1e-9) << "k=" << k;
    prev = result.predicted_tail_latency;
  }
}

TEST_P(OptimizerProperties, SpendsFullBudgetUnlessSaturated) {
  const stats::EmpiricalCdf rx(xs_);
  const stats::EmpiricalCdf ry(ys_);
  for (double budget : {0.02, 0.10, 0.30}) {
    const auto result = compute_optimal_single_r(rx, ry, 0.95, budget);
    const double spend = result.probability * rx.tail(result.delay);
    if (result.probability < 1.0) {
      EXPECT_NEAR(spend, budget, 0.01 * budget + 1e-9) << "budget=" << budget;
    } else {
      EXPECT_LE(spend, budget + 1e-9);
    }
  }
}

TEST_P(OptimizerProperties, BeatsSingleDAnalytically) {
  // The SingleR optimum must achieve a kth percentile no worse than the
  // SingleD policy spending the same budget, under the shared evaluator.
  const stats::EmpiricalCdf rx(xs_);
  const stats::EmpiricalCdf ry(ys_);
  for (double budget : {0.02, 0.08, 0.20}) {
    const auto r = compute_optimal_single_r(rx, ry, 0.95, budget);
    const double r_tail = policy_tail_latency(
        rx, ry, ReissuePolicy::single_r(r.delay, r.probability), 0.95);
    const auto d_policy = single_d_for_budget(rx, budget);
    const double d_tail = policy_tail_latency(rx, ry, d_policy, 0.95);
    EXPECT_LE(r_tail, d_tail * 1.001) << "budget=" << budget;
  }
}

TEST_P(OptimizerProperties, SubsampleStability) {
  // Two disjoint halves of the same workload should give similar optima
  // (the optimizer is estimating population quantities, not memorizing).
  const std::size_t half = xs_.size() / 2;
  const stats::EmpiricalCdf rx_a(
      std::vector<double>(xs_.begin(), xs_.begin() + half));
  const stats::EmpiricalCdf rx_b(
      std::vector<double>(xs_.begin() + half, xs_.end()));
  const stats::EmpiricalCdf ry(ys_);
  const auto a = compute_optimal_single_r(rx_a, ry, 0.95, 0.10);
  const auto b = compute_optimal_single_r(rx_b, ry, 0.95, 0.10);
  EXPECT_NEAR(a.predicted_tail_latency, b.predicted_tail_latency,
              0.25 * a.predicted_tail_latency + 1e-9);
}

TEST_P(OptimizerProperties, DuplicatedSamplesAreIdempotent) {
  // Feeding every sample twice must not change the optimum: the
  // optimizer depends on the empirical distribution, not the count.
  const stats::EmpiricalCdf rx(xs_);
  const stats::EmpiricalCdf ry(ys_);
  std::vector<double> doubled = xs_;
  doubled.insert(doubled.end(), xs_.begin(), xs_.end());
  const stats::EmpiricalCdf rx2(std::move(doubled));
  const auto once = compute_optimal_single_r(rx, ry, 0.95, 0.10);
  const auto twice = compute_optimal_single_r(rx2, ry, 0.95, 0.10);
  EXPECT_DOUBLE_EQ(once.predicted_tail_latency, twice.predicted_tail_latency);
  EXPECT_DOUBLE_EQ(once.delay, twice.delay);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, OptimizerProperties,
    ::testing::Values(
        PropertyCase{"pareto", stats::make_pareto(1.1, 2.0)},
        PropertyCase{"pareto_capped",
                     stats::make_truncated(stats::make_pareto(1.1, 2.0),
                                           5000.0)},
        PropertyCase{"lognormal", stats::make_lognormal(1.0, 1.0)},
        PropertyCase{"exponential", stats::make_exponential(0.1)},
        PropertyCase{"weibull_heavy", stats::make_weibull(0.7, 10.0)},
        PropertyCase{"uniform", stats::make_uniform(1.0, 100.0)}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace reissue::core
