#include "reissue/cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "reissue/core/policy_io.hpp"
#include "reissue/sim/sim_observer.hpp"  // REISSUE_OBS_ENABLED
#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::cli {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    path_ = std::filesystem::temp_directory_path() /
            ("reissue_cli_test_" + std::to_string(counter_++) + ".txt");
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

std::string synthetic_log(std::size_t n, std::uint64_t seed) {
  const auto dist = stats::make_pareto(1.1, 2.0);
  stats::Xoshiro256 rng(seed);
  std::ostringstream os;
  for (std::size_t i = 0; i < n; ++i) os << dist->sample(rng) << "\n";
  return os.str();
}

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

// ----------------------------------------------------------- parse_args

TEST(ParseArgs, CommandAndFlags) {
  const auto parsed = parse_args({"optimize", "--log", "x.txt", "--budget",
                                  "0.05", "--correlated"});
  EXPECT_EQ(parsed.command, "optimize");
  EXPECT_EQ(parsed.get("log"), "x.txt");
  EXPECT_EQ(parsed.get("budget"), "0.05");
  EXPECT_TRUE(parsed.has("correlated"));
  EXPECT_EQ(parsed.get("correlated"), "");
  EXPECT_FALSE(parsed.has("missing"));
  EXPECT_EQ(parsed.get("missing", "dflt"), "dflt");
}

TEST(ParseArgs, LastFlagWins) {
  const auto parsed = parse_args({"tune", "--budget", "0.1", "--budget", "0.2"});
  EXPECT_EQ(parsed.get("budget"), "0.2");
}

TEST(ParseArgs, RejectsBareValue) {
  EXPECT_THROW(parse_args({"optimize", "oops"}), std::runtime_error);
  EXPECT_THROW(parse_args({"optimize", "--"}), std::runtime_error);
}

// ------------------------------------------------------------- commands

TEST(Cli, HelpPrintsUsage) {
  const auto result = run({"help"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("usage:"), std::string::npos);
}

TEST(Cli, NoArgsPrintsUsage) {
  const auto result = run({});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto result = run({"bogus"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, OptimizeFromLog) {
  TempFile log(synthetic_log(20000, 1));
  const auto result = run({"optimize", "--log", log.path(), "--percentile",
                           "0.95", "--budget", "0.05"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("SingleR d="), std::string::npos);
  EXPECT_NE(result.out.find("predicted tail:"), std::string::npos);
}

TEST(Cli, OptimizeWithSeparateReissueLog) {
  TempFile log(synthetic_log(5000, 2));
  TempFile rlog(synthetic_log(5000, 3));
  const auto result = run({"optimize", "--log", log.path(), "--reissue-log",
                           rlog.path(), "--budget", "0.1"});
  ASSERT_EQ(result.code, 0) << result.err;
}

TEST(Cli, OptimizeWithPairsUsesCorrelatedPath) {
  // Perfectly correlated pairs: the conditional optimizer should find no
  // achievable tail reduction and keep the predicted tail ~= baseline.
  const auto dist = stats::make_pareto(1.1, 2.0);
  stats::Xoshiro256 rng(4);
  std::ostringstream log_os;
  std::ostringstream pairs_os;
  for (int i = 0; i < 5000; ++i) {
    const double x = dist->sample(rng);
    log_os << x << "\n";
    pairs_os << x << " " << x << "\n";
  }
  TempFile log(log_os.str());
  TempFile pairs(pairs_os.str());
  const auto result = run({"optimize", "--log", log.path(), "--pairs",
                           pairs.path(), "--percentile", "0.95", "--budget",
                           "0.2"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("policy:"), std::string::npos);
}

TEST(Cli, OptimizeMissingLogFails) {
  const auto result = run({"optimize", "--budget", "0.05"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--log"), std::string::npos);
}

TEST(Cli, OptimizeBadFileFails) {
  const auto result = run({"optimize", "--log", "/nonexistent/xyz.log"});
  EXPECT_EQ(result.code, 1);
}

TEST(Cli, OptimizeRejectsGarbageNumbers) {
  TempFile log(synthetic_log(100, 5));
  const auto result =
      run({"optimize", "--log", log.path(), "--budget", "abc"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("not a number"), std::string::npos);
}

TEST(Cli, TuneOnBuiltInWorkload) {
  const auto result =
      run({"tune", "--workload", "queueing", "--utilization", "0.3",
           "--percentile", "0.95", "--budget", "0.1", "--trials", "3",
           "--queries", "8000"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("trial 0:"), std::string::npos);
  EXPECT_NE(result.out.find("policy:"), std::string::npos);
  EXPECT_NE(result.out.find("tail:"), std::string::npos);
}

TEST(Cli, TuneRejectsUnknownWorkload) {
  const auto result = run({"tune", "--workload", "mystery"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--workload"), std::string::npos);
}

TEST(Cli, EvaluateFixedPolicy) {
  const auto result =
      run({"evaluate", "--workload", "independent", "--policy",
           "SingleR d=20 q=0.5", "--percentile", "0.95", "--queries",
           "8000"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("reissue rate:"), std::string::npos);
}

TEST(Cli, EvaluateRequiresPolicy) {
  const auto result = run({"evaluate", "--workload", "independent"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--policy"), std::string::npos);
}

TEST(Cli, EvaluateRejectsMalformedPolicy) {
  const auto result = run({"evaluate", "--workload", "independent",
                           "--policy", "Bogus d=1 q=1", "--queries", "4000"});
  EXPECT_EQ(result.code, 1);
}

// ------------------------------------------------- error-path diagnostics

TEST(Cli, MalformedPolicyNumberGetsClearDiagnostic) {
  const auto result = run({"evaluate", "--workload", "independent",
                           "--policy", "SingleR d=abc q=0.5"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("bad number in 'd=abc'"), std::string::npos)
      << result.err;
  EXPECT_EQ(result.err.find("stod"), std::string::npos) << result.err;
}

TEST(Cli, PolicyTrailingGarbageGetsClearDiagnostic) {
  const auto result = run({"evaluate", "--workload", "independent",
                           "--policy", "SingleR d=12xyz q=0.5"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("bad number"), std::string::npos) << result.err;
}

TEST(Cli, PolicyFlagWithoutValueGetsClearDiagnostic) {
  const auto result =
      run({"evaluate", "--workload", "independent", "--policy"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--policy requires a value"), std::string::npos)
      << result.err;
}

TEST(Cli, LogFlagWithoutValueGetsClearDiagnostic) {
  const auto result = run({"optimize", "--log", "--budget", "0.05"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--log requires a value"), std::string::npos)
      << result.err;
}

TEST(Cli, TuneWithoutWorkloadFlagFails) {
  const auto result = run({"tune"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--workload"), std::string::npos) << result.err;
}

// --------------------------------------------------------------- sweep

constexpr const char* kTinySpec =
    "name=tiny kind=queueing util=0.3 servers=4 queries=1200 warmup=120 "
    "percentile=0.95 policy=none policy=r:20:0.5";

TEST(Cli, SweepListShowsRegistry) {
  const auto result = run({"sweep", "--list"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("queueing-sweep"), std::string::npos);
  EXPECT_NE(result.out.find("heterogeneous"), std::string::npos);
}

TEST(Cli, SweepInlineSpecEmitsCsvWithConfidenceColumns) {
  const auto result = run({"sweep", "--spec", kTinySpec, "--replications",
                           "3", "--threads", "2", "--seed", "7"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(result.out.rfind("scenario,policy,percentile", 0), 0u);
  EXPECT_NE(result.out.find("tail_ci_lo"), std::string::npos);
  EXPECT_NE(result.out.find("tiny,none,0.95,3,"), std::string::npos);
  EXPECT_NE(result.out.find("tiny,r:20:0.5,0.95,3,"), std::string::npos);
}

TEST(Cli, SweepOutputIsBitIdenticalAcrossThreadCounts) {
  const auto serial = run({"sweep", "--spec", kTinySpec, "--replications",
                           "3", "--threads", "1", "--seed", "7"});
  const auto parallel = run({"sweep", "--spec", kTinySpec, "--replications",
                             "3", "--threads", "8", "--seed", "7"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  ASSERT_EQ(parallel.code, 0) << parallel.err;
  EXPECT_EQ(serial.out, parallel.out);
}

TEST(Cli, SweepWritesOutputFile) {
  const auto path = std::filesystem::temp_directory_path() /
                    "reissue_sweep_out.csv";
  const auto result = run({"sweep", "--spec", kTinySpec, "--replications",
                           "2", "--output", path.string()});
  ASSERT_EQ(result.code, 0) << result.err;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("scenario,policy", 0), 0u);
  std::filesystem::remove(path);
}

TEST(Cli, SweepQueriesOverrideScalesCells) {
  // Overriding --queries changes the measured cells; default warmup tracks
  // at 10% of the new count, so the run stays valid.
  const auto small = run({"sweep", "--spec", kTinySpec, "--replications",
                          "1", "--seed", "7"});
  const auto scaled = run({"sweep", "--spec", kTinySpec, "--replications",
                           "1", "--seed", "7", "--queries", "2400"});
  ASSERT_EQ(small.code, 0) << small.err;
  ASSERT_EQ(scaled.code, 0) << scaled.err;
  EXPECT_NE(small.out, scaled.out);
  // Deterministic: the same override reproduces byte-identical CSV.
  const auto again = run({"sweep", "--spec", kTinySpec, "--replications",
                          "1", "--seed", "7", "--queries", "2400"});
  EXPECT_EQ(scaled.out, again.out);
}

TEST(Cli, SweepWarmupOverrideAloneApplies) {
  const auto result = run({"sweep", "--spec", kTinySpec, "--replications",
                           "1", "--seed", "7", "--warmup", "600"});
  ASSERT_EQ(result.code, 0) << result.err;
  const auto base = run({"sweep", "--spec", kTinySpec, "--replications",
                         "1", "--seed", "7"});
  EXPECT_NE(result.out, base.out);  // different logged window
}

TEST(Cli, SweepRejectsBadQueriesAndWarmup) {
  auto result = run({"sweep", "--spec", kTinySpec, "--queries", "0"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--queries must be > 0"), std::string::npos)
      << result.err;

  result = run({"sweep", "--spec", kTinySpec, "--queries", "1000",
                "--warmup", "1000"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--warmup must be < queries"), std::string::npos)
      << result.err;

  result = run({"sweep", "--spec", kTinySpec, "--warmup", "5000"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--warmup must be < queries"), std::string::npos)
      << result.err;

  result = run({"sweep", "--spec", kTinySpec, "--queries", "abc"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--queries"), std::string::npos) << result.err;
}

TEST(Cli, SweepFullLogsModeStaysDeterministic) {
  const auto streaming = run({"sweep", "--spec", kTinySpec,
                              "--replications", "2", "--seed", "7"});
  const auto full = run({"sweep", "--spec", kTinySpec, "--replications",
                         "2", "--seed", "7", "--full-logs"});
  ASSERT_EQ(streaming.code, 0) << streaming.err;
  ASSERT_EQ(full.code, 0) << full.err;
  // Same header and cells; the tail column differs only within the
  // streaming histogram's relative error, so spot-check determinism.
  const auto full_again = run({"sweep", "--spec", kTinySpec,
                               "--replications", "2", "--seed", "7",
                               "--full-logs"});
  EXPECT_EQ(full.out, full_again.out);
}

// ------------------------------------------------------- metric modes

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

TEST(Cli, SweepMetricModeCompletionIsTheDefault) {
  const auto implicit = run({"sweep", "--spec", kTinySpec, "--replications",
                             "2", "--seed", "7"});
  const auto explicit_mode = run({"sweep", "--spec", kTinySpec,
                                  "--replications", "2", "--seed", "7",
                                  "--metric-mode", "completion"});
  ASSERT_EQ(implicit.code, 0) << implicit.err;
  ASSERT_EQ(explicit_mode.code, 0) << explicit_mode.err;
  EXPECT_EQ(explicit_mode.out, implicit.out);
}

TEST(Cli, SweepMetricModeFullMatchesFullLogsSpelling) {
  const auto mode = run({"sweep", "--spec", kTinySpec, "--replications", "2",
                         "--seed", "7", "--metric-mode", "full"});
  const auto legacy = run({"sweep", "--spec", kTinySpec, "--replications",
                           "2", "--seed", "7", "--full-logs"});
  ASSERT_EQ(mode.code, 0) << mode.err;
  ASSERT_EQ(legacy.code, 0) << legacy.err;
  EXPECT_EQ(mode.out, legacy.out);
}

TEST(Cli, SweepCompletionDiffersFromReplayOnlyInOrderSensitiveColumns) {
  // The CSV-level identity claim (what CI's mode-diff job enforces): the
  // completion and replay modes agree byte for byte on every column except
  // the P² sketch (tail_p2) and the FP-summation mean (mean_latency), the
  // two order-sensitive accumulators.
  const auto completion = run({"sweep", "--spec", kTinySpec,
                               "--replications", "3", "--seed", "7",
                               "--metric-mode", "completion"});
  const auto replay = run({"sweep", "--spec", kTinySpec, "--replications",
                           "3", "--seed", "7", "--metric-mode", "replay"});
  ASSERT_EQ(completion.code, 0) << completion.err;
  ASSERT_EQ(replay.code, 0) << replay.err;

  const auto completion_lines = split(completion.out, '\n');
  const auto replay_lines = split(replay.out, '\n');
  ASSERT_EQ(completion_lines.size(), replay_lines.size());
  const auto header = split(completion_lines[0], ',');
  ASSERT_GT(header.size(), 9u);
  ASSERT_EQ(header[8], "tail_p2");
  ASSERT_EQ(header[9], "mean_latency");
  EXPECT_EQ(completion_lines[0], replay_lines[0]);
  for (std::size_t row = 1; row < completion_lines.size(); ++row) {
    if (completion_lines[row].empty() && replay_lines[row].empty()) continue;
    const auto a = split(completion_lines[row], ',');
    const auto b = split(replay_lines[row], ',');
    ASSERT_EQ(a.size(), b.size()) << "row " << row;
    for (std::size_t col = 0; col < a.size(); ++col) {
      if (col == 8 || col == 9) continue;  // order-sensitive by contract
      EXPECT_EQ(a[col], b[col])
          << "row " << row << " column " << header[col];
    }
  }
  // Replay stays deterministic on its own.
  const auto replay_again = run({"sweep", "--spec", kTinySpec,
                                 "--replications", "3", "--seed", "7",
                                 "--metric-mode", "replay"});
  EXPECT_EQ(replay_again.out, replay.out);
}

TEST(Cli, SweepRejectsBadMetricModeFlags) {
  auto result = run({"sweep", "--spec", kTinySpec, "--metric-mode", "fast"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--metric-mode must be completion|replay|full"),
            std::string::npos)
      << result.err;

  result = run({"sweep", "--spec", kTinySpec, "--metric-mode", "completion",
                "--full-logs"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("contradicts"), std::string::npos) << result.err;

  // --full-logs together with --metric-mode full is redundant but legal.
  result = run({"sweep", "--spec", kTinySpec, "--replications", "1",
                "--metric-mode", "full", "--full-logs"});
  EXPECT_EQ(result.code, 0) << result.err;
}

TEST(Cli, SweepStatsPrintsPerCellCounterLines) {
  const auto result = run({"sweep", "--spec", kTinySpec, "--replications",
                           "2", "--threads", "2", "--seed", "7", "--stats"});
  ASSERT_EQ(result.code, 0) << result.err;
  // One line per cell, attributing the run counters (training runs
  // included) to the cell that performed them.  With observability
  // compiled out the hooks are dead code, so the lines print zeros.
#if REISSUE_OBS_ENABLED
  const char* kRuns = "runs 2";
#else
  const char* kRuns = "runs 0";
#endif
  EXPECT_NE(result.err.find(std::string("cell tiny none: ") + kRuns),
            std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find(std::string("cell tiny r:20:0.5: ") + kRuns),
            std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("heap_pops"), std::string::npos) << result.err;
  EXPECT_NE(result.err.find("stage_retired"), std::string::npos)
      << result.err;
  // The aggregate block still follows.
  EXPECT_NE(result.err.find("counters:"), std::string::npos) << result.err;
  // Diagnostics never change the CSV.
  const auto plain = run({"sweep", "--spec", kTinySpec, "--replications",
                          "2", "--threads", "2", "--seed", "7"});
  EXPECT_EQ(result.out, plain.out);
}

TEST(Cli, ZeroPaddedCountsParseAsDecimalNotOctal) {
  // Count flags parse base-10 ("0100" is 100, not octal 64); only --seed
  // accepts base-prefixed input.
  const auto padded = run({"sweep", "--spec", kTinySpec, "--replications",
                           "1", "--seed", "7", "--queries", "02400"});
  const auto plain = run({"sweep", "--spec", kTinySpec, "--replications",
                          "1", "--seed", "7", "--queries", "2400"});
  ASSERT_EQ(padded.code, 0) << padded.err;
  EXPECT_EQ(padded.out, plain.out);
  // Hex still fine for the seed, and hex counts are rejected.
  const auto hex_seed = run({"sweep", "--spec", kTinySpec, "--replications",
                             "1", "--seed", "0x7"});
  EXPECT_EQ(hex_seed.code, 0) << hex_seed.err;
  const auto hex_count = run({"sweep", "--spec", kTinySpec, "--queries",
                              "0x100"});
  EXPECT_EQ(hex_count.code, 1);
  EXPECT_NE(hex_count.err.find("--queries"), std::string::npos)
      << hex_count.err;
}

TEST(Cli, SweepPoliciesOverrideReplacesTheGrid) {
  // --policies re-sweeps the resolved scenarios under a new policy grid;
  // the optimizer-in-the-loop specs are the motivating case.
  const auto result =
      run({"sweep", "--spec", kTinySpec, "--policies",
           "none,optimal:0.2:corr,optimal-d:0.2", "--replications", "2",
           "--seed", "7"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("tiny,none,"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("tiny,optimal:0.2:corr,"), std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("tiny,optimal-d:0.2,"), std::string::npos)
      << result.out;
  // The grid is replaced, not appended: the spec's own policies are gone.
  EXPECT_EQ(result.out.find("tiny,r:20:0.5,"), std::string::npos)
      << result.out;
}

TEST(Cli, SweepOptimalPoliciesAreBitIdenticalAcrossThreadCounts) {
  const std::vector<std::string> base = {
      "sweep",  "--spec", kTinySpec,        "--policies",
      "optimal:0.2:corr", "--replications", "2",
      "--seed", "7"};
  auto serial = base;
  serial.insert(serial.end(), {"--threads", "1"});
  auto parallel = base;
  parallel.insert(parallel.end(), {"--threads", "8"});
  const auto a = run(serial);
  const auto b = run(parallel);
  ASSERT_EQ(a.code, 0) << a.err;
  ASSERT_EQ(b.code, 0) << b.err;
  EXPECT_EQ(a.out, b.out);
}

TEST(Cli, SweepPoliciesDiagnostics) {
  // Malformed tokens surface the policy-spec parser's diagnostic.
  auto result = run({"sweep", "--spec", kTinySpec, "--policies",
                     "optimal:0.05:fast", "--replications", "1"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("optimal:0.05:fast"), std::string::npos)
      << result.err;

  result = run({"sweep", "--spec", kTinySpec, "--policies", ",",
                "--replications", "1"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--policies needs at least one policy spec"),
            std::string::npos)
      << result.err;

  result = run({"sweep", "--spec", kTinySpec, "--policies"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--policies requires a value"), std::string::npos)
      << result.err;
}

TEST(Cli, SweepRejectsDuplicateScenarioNames) {
  // --spec shadowing a registry scenario name would share its seed
  // substreams and emit indistinguishable rows; the runner rejects it.
  const auto result = run(
      {"sweep", "--spec",
       "name=queueing-u30 kind=queueing util=0.9 servers=4 queries=800 "
       "warmup=80 policy=none",
       "--scenarios", "queueing-u30", "--replications", "1"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("duplicate scenario name"), std::string::npos)
      << result.err;
}

TEST(Cli, NegativeCountFlagGetsClearDiagnostic) {
  const auto result = run({"sweep", "--spec", kTinySpec, "--replications",
                           "-1"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--replications"), std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("non-negative"), std::string::npos) << result.err;
}

TEST(Cli, SweepRejectsOutOfRangePercentile) {
  for (const char* k : {"1.5", "1", "0", "-0.5"}) {
    const auto result = run({"sweep", "--spec", kTinySpec, "--replications",
                             "1", "--percentile", k});
    EXPECT_EQ(result.code, 1) << k;
    EXPECT_NE(result.err.find("--percentile must be in (0,1)"),
              std::string::npos)
        << k << ": " << result.err;
  }
}

TEST(Cli, SweepRejectsIgnoredSpecKeys) {
  const auto result = run(
      {"sweep", "--spec", "name=x kind=independent util=0.5 policy=none",
       "--replications", "1"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("does not apply"), std::string::npos)
      << result.err;
}

TEST(Cli, SweepUnknownScenarioFails) {
  const auto result = run({"sweep", "--scenarios", "warp-speed"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("unknown scenario"), std::string::npos);
}

TEST(Cli, SweepWithoutSelectionFails) {
  const auto result = run({"sweep"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--scenarios"), std::string::npos);
}

// ------------------------------------------- distributed sweeps (src/dist)

/// Unique temp path that cleans up whatever the test left behind (the
/// file, its manifest, its journal).
class TempOut {
 public:
  explicit TempOut(const std::string& stem) {
    path_ = (std::filesystem::temp_directory_path() /
             ("reissue_cli_dist_" + std::to_string(counter_++) + "_" + stem))
                .string();
  }
  ~TempOut() {
    for (const char* suffix : {"", ".manifest", ".journal", ".tmp"}) {
      std::filesystem::remove(path_ + suffix);
    }
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Cli, SweepShardRequiresRawOutput) {
  const auto result = run({"sweep", "--spec", kTinySpec, "--shard", "0/2"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("requires --raw-output"), std::string::npos)
      << result.err;
}

TEST(Cli, SweepShardRejectsMalformedSpecAndOutputConflict) {
  TempOut raw("bad.csv");
  auto result = run({"sweep", "--spec", kTinySpec, "--shard", "3/2",
                     "--raw-output", raw.path()});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("index must be < count"), std::string::npos)
      << result.err;

  result = run({"sweep", "--spec", kTinySpec, "--shard", "0/2",
                "--raw-output", raw.path(), "--output", raw.path()});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("mutually exclusive"), std::string::npos)
      << result.err;
}

TEST(Cli, ShardedSweepThenMergeMatchesSingleProcessByteForByte) {
  const std::vector<std::string> base = {"sweep", "--spec", kTinySpec,
                                         "--replications", "2", "--seed",
                                         "7"};
  auto single = base;
  single.insert(single.end(), {"--threads", "8"});
  const auto direct = run(single);
  ASSERT_EQ(direct.code, 0) << direct.err;

  TempOut s0("s0.csv");
  TempOut s1("s1.csv");
  TempOut s2("s2.csv");
  const std::vector<std::string> paths = {s0.path(), s1.path(), s2.path()};
  for (std::size_t i = 0; i < 3; ++i) {
    auto shard = base;
    shard.insert(shard.end(), {"--shard", std::to_string(i) + "/3",
                               "--raw-output", paths[i]});
    const auto result = run(shard);
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("shard " + std::to_string(i) + "/3"),
              std::string::npos)
        << result.out;
  }

  const auto merged = run(
      {"merge", "--inputs", paths[0] + "," + paths[1] + "," + paths[2]});
  ASSERT_EQ(merged.code, 0) << merged.err;
  EXPECT_EQ(merged.out, direct.out);

  // --output writes the same bytes through the atomic path.
  TempOut csv("merged.csv");
  const auto to_file =
      run({"merge", "--inputs", paths[0] + "," + paths[1] + "," + paths[2],
           "--output", csv.path()});
  ASSERT_EQ(to_file.code, 0) << to_file.err;
  EXPECT_NE(to_file.out.find("merged 3 shards"), std::string::npos);
  EXPECT_EQ(slurp(csv.path()), direct.out);
  EXPECT_FALSE(std::filesystem::exists(csv.path() + ".tmp"));
}

TEST(Cli, SweepMaxCellsCheckpointsAndResumeCompletes) {
  TempOut raw("resume.csv");
  const std::vector<std::string> base = {
      "sweep", "--spec", kTinySpec, "--replications", "2", "--seed", "7",
      "--raw-output", raw.path()};
  auto limited = base;
  limited.insert(limited.end(), {"--max-cells", "1"});
  const auto first = run(limited);
  ASSERT_EQ(first.code, 0) << first.err;
  EXPECT_NE(first.out.find("checkpointed 1/2"), std::string::npos)
      << first.out;
  EXPECT_TRUE(std::filesystem::exists(raw.path() + ".journal"));

  const auto second = run(base);
  ASSERT_EQ(second.code, 0) << second.err;
  EXPECT_NE(second.out.find("(1 resumed from journal)"), std::string::npos)
      << second.out;
  EXPECT_FALSE(std::filesystem::exists(raw.path() + ".journal"));

  TempOut fresh("fresh.csv");
  auto clean = base;
  clean.back() = fresh.path();
  ASSERT_EQ(run(clean).code, 0);
  EXPECT_EQ(slurp(raw.path()), slurp(fresh.path()));
}

TEST(Cli, MergeReportsMissingShardAndBadInputs) {
  TempOut s0("only0.csv");
  const auto shard = run({"sweep", "--spec", kTinySpec, "--replications",
                          "2", "--seed", "7", "--shard", "0/2",
                          "--raw-output", s0.path()});
  ASSERT_EQ(shard.code, 0) << shard.err;

  auto result = run({"merge", "--inputs", s0.path()});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("missing shard 1/2"), std::string::npos)
      << result.err;

  result = run({"merge"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--inputs"), std::string::npos) << result.err;

  result = run({"merge", "--inputs", ","});
  EXPECT_EQ(result.code, 1);

  result = run({"merge", "--inputs", "/nonexistent/shard.csv"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("/nonexistent/shard.csv"), std::string::npos)
      << result.err;
}

TEST(Cli, SweepOutputIsAtomicAndErrorsNameThePath) {
  // Success leaves the file and no temp residue.
  TempOut csv("atomic.csv");
  const auto result = run({"sweep", "--spec", kTinySpec, "--replications",
                           "1", "--output", csv.path()});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_TRUE(std::filesystem::exists(csv.path()));
  EXPECT_FALSE(std::filesystem::exists(csv.path() + ".tmp"));

  // Unwritable target: a clean one-line error naming the path.
  const auto bad = run({"sweep", "--spec", kTinySpec, "--replications", "1",
                        "--output", "/nonexistent-dir/out.csv"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("/nonexistent-dir/out.csv"), std::string::npos)
      << bad.err;
}

// -------------------------------------------------------- observability

// The event-stream flags (--trace/--trace-bin/--timeseries) only exist in
// builds with observability compiled in; under -DREISSUE_OBS=OFF the CLI
// rejects them up front, which the #else branch below pins.
#if REISSUE_OBS_ENABLED

TEST(Cli, SweepTraceFlagsRequireSingleThread) {
  TempOut trace("trace.json");
  const auto result = run({"sweep", "--spec", kTinySpec, "--replications",
                           "1", "--threads", "2", "--trace", trace.path()});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("require --threads 1"), std::string::npos)
      << result.err;
}

TEST(Cli, SweepObservabilityFlagValidation) {
  auto result = run({"sweep", "--spec", kTinySpec, "--trace-capacity", "64"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--trace-capacity requires --trace-bin"),
            std::string::npos)
      << result.err;

  result = run({"sweep", "--spec", kTinySpec, "--window", "50"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--window requires --timeseries"),
            std::string::npos)
      << result.err;

  TempOut ts("ts.csv");
  result = run({"sweep", "--spec", kTinySpec, "--replications", "1",
                "--timeseries", ts.path()});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--timeseries requires --window > 0"),
            std::string::npos)
      << result.err;
}

TEST(Cli, SweepShardModeRejectsTraceFlags) {
  TempOut raw("shardtrace.csv");
  TempOut trace("shardtrace.json");
  const auto result =
      run({"sweep", "--spec", kTinySpec, "--shard", "0/2", "--raw-output",
           raw.path(), "--trace", trace.path()});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("not supported in shard mode"), std::string::npos)
      << result.err;
}

TEST(Cli, TracedSweepLeavesCsvByteIdenticalAndWritesTraceDocument) {
  const std::vector<std::string> base = {"sweep", "--spec", kTinySpec,
                                         "--replications", "2", "--seed",
                                         "7", "--threads", "1"};
  const auto plain = run(base);
  ASSERT_EQ(plain.code, 0) << plain.err;

  TempOut trace("trace.json");
  auto traced_args = base;
  traced_args.insert(traced_args.end(), {"--trace", trace.path()});
  const auto traced = run(traced_args);
  ASSERT_EQ(traced.code, 0) << traced.err;
  EXPECT_EQ(traced.out, plain.out);  // tracing never perturbs the CSV

  const std::string doc = slurp(trace.path());
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u)
      << doc.substr(0, 80);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"arrival\""), std::string::npos);
}

TEST(Cli, TraceSummarizeReadsTheBinaryRing) {
  TempOut ring("ring.bin");
  const auto swept =
      run({"sweep", "--spec", kTinySpec, "--replications", "1", "--seed",
           "7", "--threads", "1", "--trace-bin", ring.path()});
  ASSERT_EQ(swept.code, 0) << swept.err;

  const auto digest = run({"trace-summarize", "--input", ring.path()});
  ASSERT_EQ(digest.code, 0) << digest.err;
  EXPECT_NE(digest.out.find("events retained"), std::string::npos)
      << digest.out;
  EXPECT_NE(digest.out.find("query latency mean"), std::string::npos)
      << digest.out;

  const auto missing = run({"trace-summarize"});
  EXPECT_EQ(missing.code, 1);
  EXPECT_NE(missing.err.find("--input"), std::string::npos) << missing.err;
}

#endif  // REISSUE_OBS_ENABLED

TEST(Cli, SweepStatsPrintsCountersWithoutTouchingStdout) {
  const std::vector<std::string> base = {"sweep", "--spec", kTinySpec,
                                         "--replications", "2", "--seed",
                                         "7"};
  const auto plain = run(base);
  ASSERT_EQ(plain.code, 0) << plain.err;

  auto stats_args = base;
  stats_args.push_back("--stats");
  const auto with_stats = run(stats_args);
  ASSERT_EQ(with_stats.code, 0) << with_stats.err;
  EXPECT_EQ(with_stats.out, plain.out);  // stats live on stderr only
  EXPECT_NE(with_stats.err.find("counters:"), std::string::npos)
      << with_stats.err;
  EXPECT_NE(with_stats.err.find("arrivals "), std::string::npos);
  EXPECT_NE(with_stats.err.find("timers:"), std::string::npos);
}

TEST(Cli, SweepProgressGoesToStderrOnly) {
  const std::vector<std::string> base = {"sweep", "--spec", kTinySpec,
                                         "--replications", "1", "--seed",
                                         "7"};
  const auto plain = run(base);
  auto progress_args = base;
  progress_args.push_back("--progress");
  const auto with_progress = run(progress_args);
  ASSERT_EQ(with_progress.code, 0) << with_progress.err;
  EXPECT_EQ(with_progress.out, plain.out);
  EXPECT_NE(with_progress.err.find("progress: "), std::string::npos)
      << with_progress.err;
  EXPECT_NE(with_progress.err.find("2/2 cells"), std::string::npos)
      << with_progress.err;
}

#if REISSUE_OBS_ENABLED

TEST(Cli, SweepTimeseriesWritesWindowCsv) {
  TempOut ts("series.csv");
  const auto result =
      run({"sweep", "--spec", kTinySpec, "--replications", "1", "--seed",
           "7", "--threads", "1", "--timeseries", ts.path(), "--window",
           "50"});
  ASSERT_EQ(result.code, 0) << result.err;
  const std::string csv = slurp(ts.path());
  EXPECT_EQ(csv.rfind("run,window,t_start,t_end,series,server,value", 0), 0u)
      << csv.substr(0, 80);
  EXPECT_NE(csv.find("busy_fraction"), std::string::npos);
  EXPECT_NE(csv.find("queue_depth"), std::string::npos);
}

#else  // !REISSUE_OBS_ENABLED

TEST(Cli, ObsOffBuildRejectsEventStreamFlags) {
  TempOut trace("trace.json");
  const auto result = run({"sweep", "--spec", kTinySpec, "--replications",
                           "1", "--threads", "1", "--trace", trace.path()});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("-DREISSUE_OBS=OFF"), std::string::npos)
      << result.err;
}

#endif  // REISSUE_OBS_ENABLED

TEST(Cli, SweepShardStatsWritesTimingsSideFile) {
  TempOut raw("timed.csv");
  const auto result =
      run({"sweep", "--spec", kTinySpec, "--replications", "1", "--seed",
           "7", "--shard", "0/1", "--raw-output", raw.path(), "--stats"});
  ASSERT_EQ(result.code, 0) << result.err;
  const std::string timings = slurp(raw.path() + ".timings.csv");
  EXPECT_EQ(timings.rfind("cell,scenario,policy,seconds", 0), 0u)
      << timings.substr(0, 80);
  // The side file never contaminates the hashed shard CSV: re-running
  // without --stats produces the identical raw file.
  TempOut clean("clean.csv");
  const auto plain =
      run({"sweep", "--spec", kTinySpec, "--replications", "1", "--seed",
           "7", "--shard", "0/1", "--raw-output", clean.path()});
  ASSERT_EQ(plain.code, 0) << plain.err;
  EXPECT_EQ(slurp(raw.path()), slurp(clean.path()));
  std::filesystem::remove(raw.path() + ".timings.csv");
}

// -------------------------------------------------------------- loadgen

TEST(Cli, LoadgenValidatesFlags) {
  auto result = run({"loadgen", "--rate", "100"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--backend"), std::string::npos);

  result = run({"loadgen", "--backend", "kvstore"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--rate"), std::string::npos);

  result = run({"loadgen", "--backend", "bogus", "--rate", "10"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("unknown backend"), std::string::npos);

  result = run({"loadgen", "--backend", "kvstore", "--rate", "10",
                "--policy", "tuned-r:0.02"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("fixed spec"), std::string::npos);

  result = run({"loadgen", "--backend", "kvstore", "--rate", "10",
                "--requests", "5", "--duration", "1"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("mutually exclusive"), std::string::npos);

  result = run({"loadgen", "--backend", "kvstore", "--rate", "10",
                "--window", "100"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--window requires --timeseries"),
            std::string::npos);
}

// Deterministic smoke run: bounded request count, tiny dataset, wired
// through every output artifact.  Values are wall-clock so only
// structure is asserted: the CSV header is schema-pinned, the latency
// log parses back with one sample per completed request, the binary
// ring digests through trace-summarize, and the exposition carries the
// final totals.
TEST(Cli, LoadgenEndToEndArtifacts) {
  TempOut ts("loadgen_ts.csv");
  TempOut ring("loadgen_ring.bin");
  TempOut prom("loadgen_prom.txt");
  TempOut log("loadgen_lat.log");
  const auto result =
      run({"loadgen",       "--backend",  "kvstore",   "--scale",  "0.02",
           "--rate",        "2000",       "--requests", "40",      "--policy",
           "immediate:1",   "--seed",     "7",         "--workers", "2",
           "--timeseries",  ts.path(),    "--window",  "20",
           "--trace-bin",   ring.path(),  "--metrics-out", prom.path(),
           "--latency-log", log.path()});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("backend:        kvstore"), std::string::npos);
  // The single-core caveat travels with every report so live numbers are
  // never quoted without their core budget.
  EXPECT_NE(result.out.find("cores:          "), std::string::npos);
  EXPECT_NE(result.out.find("submitted:      40"), std::string::npos);
  EXPECT_NE(result.out.find("completed:      40"), std::string::npos);
  EXPECT_NE(result.out.find("policy:         Immediate"), std::string::npos);

  const std::string csv = slurp(ts.path());
  EXPECT_EQ(csv.rfind("run,window,t_start,t_end,series,server,value\n", 0),
            0u)
      << csv.substr(0, 80);
  EXPECT_NE(csv.find(",submitted,-1,"), std::string::npos);
  EXPECT_NE(csv.find(",completions,-1,"), std::string::npos);

  std::ifstream log_in(log.path());
  const auto samples = core::read_latency_log(log_in);
  EXPECT_EQ(samples.size(), 40u);

  const auto digest = run({"trace-summarize", "--input", ring.path()});
  ASSERT_EQ(digest.code, 0) << digest.err;
  EXPECT_NE(digest.out.find("arrival 40"), std::string::npos) << digest.out;
  EXPECT_NE(digest.out.find("query-done 40"), std::string::npos);
  EXPECT_NE(digest.out.find("run-begin 1"), std::string::npos);

  const std::string exposition = slurp(prom.path());
  EXPECT_NE(exposition.find("reissue_queries_submitted_total 40"),
            std::string::npos);
  EXPECT_NE(exposition.find("reissue_first_responses_total 40"),
            std::string::npos);
  EXPECT_NE(exposition.find("reissue_pool_threads 2"), std::string::npos);
}

// Reissue-free run against the index backend, duration-free via
// --requests: exercises the second backend cheaply and checks the
// latency digest line exists even without reissues.
TEST(Cli, LoadgenIndexBackendPolicyNone) {
  const auto result = run({"loadgen", "--backend", "index", "--scale", "0.02",
                           "--rate", "2000", "--requests", "25", "--seed",
                           "11"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("backend:        index"), std::string::npos);
  EXPECT_NE(result.out.find("completed:      25"), std::string::npos);
  EXPECT_NE(result.out.find("reissues:       issued 0"), std::string::npos);
  EXPECT_NE(result.out.find("latency digest: p50"), std::string::npos);
}

}  // namespace
}  // namespace reissue::cli
