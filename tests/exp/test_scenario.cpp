#include "reissue/exp/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>

#include "reissue/sim/cluster.hpp"
#include "reissue/stats/summary.hpp"

namespace reissue::exp {
namespace {

// ----------------------------------------------------------- PolicySpec

TEST(PolicySpec, RoundTripsEveryForm) {
  const std::vector<std::string> forms = {
      "none",
      "immediate:2",
      "d:12.5",
      "r:30:0.5",
      "multi:10:0.25:40:0.75",
      "tuned-r:0.05:6",
      "tuned-d:0.1:4",
      "optimal:0.05",
      "optimal:0.05:corr",
      "optimal:0.05:train=4000",
      "optimal:0.05:corr:train=4000",
      "optimal-d:0.1",
      "optimal-d:0.1:train=2000",
  };
  for (const auto& form : forms) {
    const PolicySpec spec = parse_policy_spec(form);
    EXPECT_EQ(to_string(spec), form) << form;
    EXPECT_EQ(parse_policy_spec(to_string(spec)), spec) << form;
  }
}

TEST(PolicySpec, ParsesFixedPolicies) {
  EXPECT_EQ(parse_policy_spec("none").fixed, core::ReissuePolicy::none());
  EXPECT_EQ(parse_policy_spec("d:8").fixed, core::ReissuePolicy::single_d(8));
  EXPECT_EQ(parse_policy_spec("r:8:0.25").fixed,
            core::ReissuePolicy::single_r(8, 0.25));
  EXPECT_EQ(parse_policy_spec("immediate").fixed,
            core::ReissuePolicy::immediate(1));
}

TEST(PolicySpec, ParsesTunedDefaults) {
  const PolicySpec spec = parse_policy_spec("tuned-r:0.02");
  EXPECT_EQ(spec.kind, PolicySpec::Kind::kTunedSingleR);
  EXPECT_DOUBLE_EQ(spec.budget, 0.02);
  EXPECT_EQ(spec.trials, 6);
}

TEST(PolicySpec, RejectsMalformedTokens) {
  EXPECT_THROW(parse_policy_spec("bogus"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("r:10"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("r:abc:0.5"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("multi:10:0.5:20"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("tuned-r:-0.1"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("none:1"), std::runtime_error);
}

TEST(PolicySpec, ParsesOptimalForms) {
  const PolicySpec plain = parse_policy_spec("optimal:0.05");
  EXPECT_EQ(plain.kind, PolicySpec::Kind::kOptimalSingleR);
  EXPECT_DOUBLE_EQ(plain.budget, 0.05);
  EXPECT_FALSE(plain.correlated);
  EXPECT_EQ(plain.train, 0u);

  const PolicySpec corr = parse_policy_spec("optimal:0.1:corr:train=500");
  EXPECT_TRUE(corr.correlated);
  EXPECT_EQ(corr.train, 500u);

  // corr/train are accepted in either order; to_string canonicalizes.
  EXPECT_EQ(parse_policy_spec("optimal:0.1:train=500:corr"), corr);
  EXPECT_EQ(to_string(corr), "optimal:0.1:corr:train=500");

  const PolicySpec deadline = parse_policy_spec("optimal-d:0.02:train=100");
  EXPECT_EQ(deadline.kind, PolicySpec::Kind::kOptimalSingleD);
  EXPECT_DOUBLE_EQ(deadline.budget, 0.02);
  EXPECT_EQ(deadline.train, 100u);
}

TEST(PolicySpec, RejectsMalformedOptimalTokens) {
  // Budget is mandatory, numeric, and a reissue-rate fraction in (0, 1]
  // (anything larger would only fail or be clamped mid-sweep).
  EXPECT_THROW(parse_policy_spec("optimal"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("optimal:0"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("optimal:-0.05"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("optimal:1.5"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("optimal-d:1.5"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("optimal:lots"), std::runtime_error);
  // Options must be corr or train=N, each at most once.
  EXPECT_THROW(parse_policy_spec("optimal:0.05:fast"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("optimal:0.05:corr:corr"),
               std::runtime_error);
  EXPECT_THROW(parse_policy_spec("optimal:0.05:train=1:train=2"),
               std::runtime_error);
  // train needs a positive count.
  EXPECT_THROW(parse_policy_spec("optimal:0.05:train="), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("optimal:0.05:train=0"), std::runtime_error);
  EXPECT_THROW(parse_policy_spec("optimal:0.05:train=abc"),
               std::runtime_error);
  EXPECT_THROW(parse_policy_spec("optimal:0.05:train=-5"), std::runtime_error);
  // The deadline variant has no correlation knob (Eq. (2) uses only X).
  EXPECT_THROW(parse_policy_spec("optimal-d:0.05:corr"), std::runtime_error);
  // Diagnostics name the offending token.
  try {
    (void)parse_policy_spec("optimal:0.05:fast");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("optimal:0.05:fast"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------- ScenarioSpec

ScenarioSpec full_spec() {
  ScenarioSpec spec;
  spec.name = "kitchen-sink";
  spec.kind = WorkloadKind::kQueueing;
  spec.utilization = 0.45;
  spec.ratio = 0.3;
  spec.servers = 4;
  spec.queries = 3000;
  spec.warmup = 300;
  spec.load_balancer = sim::LoadBalancerKind::kMinOfTwo;
  spec.queue = sim::QueueDisciplineKind::kPrioritizedFifo;
  spec.service = "lognormal:1:1";
  spec.service_cap = 1000.0;
  spec.interference_rate = 0.002;
  spec.interference_mean = 25.0;
  spec.phases = {BurstPhase{200.0, 0.5}, BurstPhase{50.0, 3.0}};
  spec.server_speeds = {1.0, 1.0, 2.0, 4.0};
  spec.percentile = 0.95;
  spec.policies = {parse_policy_spec("none"), parse_policy_spec("r:20:0.5"),
                   parse_policy_spec("tuned-r:0.1:3"),
                   parse_policy_spec("optimal:0.05:corr:train=1000")};
  return spec;
}

TEST(ScenarioSpec, RoundTripsThroughSpecString) {
  const ScenarioSpec spec = full_spec();
  const std::string text = to_spec_string(spec);
  EXPECT_EQ(parse_scenario(text), spec) << text;
}

TEST(ScenarioSpec, RoundTripsDefaults) {
  ScenarioSpec spec;
  spec.name = "plain";
  spec.policies = {parse_policy_spec("none")};
  EXPECT_EQ(parse_scenario(to_spec_string(spec)), spec);
}

TEST(ScenarioSpec, ParserDiagnostics) {
  EXPECT_THROW(parse_scenario("kind=queueing"), std::runtime_error);  // no name
  EXPECT_THROW(parse_scenario("name=x kind=warp"), std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x util=fast"), std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x stray"), std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x unknown=1"), std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x percentile=1.5"), std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x queries=100 warmup=100"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x servers=4 speeds=1,2"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x interference=0.1"), std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x service=warp:1"), std::runtime_error);
  EXPECT_THROW(parse_scenario("name=a,b"), std::runtime_error);
}

TEST(ScenarioSpec, RejectsKeysTheKindWouldIgnore) {
  // Sweeping an ignored knob must fail loudly, not emit identical rows.
  EXPECT_THROW(parse_scenario("name=x kind=independent util=0.5 policy=none"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x util=0.5 kind=independent policy=none"),
               std::runtime_error);  // key order must not matter
  EXPECT_THROW(parse_scenario("name=x kind=independent ratio=0.5"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x kind=correlated lb=min2"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x kind=redis service=exp:1"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x kind=lucene speeds=1,2"),
               std::runtime_error);
  // The same keys are fine where they apply.
  EXPECT_NO_THROW(parse_scenario("name=x kind=correlated ratio=0.5"));
  EXPECT_NO_THROW(parse_scenario("name=x kind=redis util=0.5"));
}

// ------------------------------------------------------- parse_distribution

TEST(ParseDistribution, KnownFamilies) {
  EXPECT_NEAR(parse_distribution("constant:5")->mean(), 5.0, 1e-12);
  EXPECT_NEAR(parse_distribution("exp:0.1")->mean(), 10.0, 1e-12);
  EXPECT_NEAR(parse_distribution("uniform:2:4")->mean(), 3.0, 1e-12);
  EXPECT_GT(parse_distribution("pareto:1.1:2")->mean(), 2.0);
  EXPECT_GT(parse_distribution("lognormal:1:1")->mean(), 0.0);
  EXPECT_GT(parse_distribution("weibull:0.5:10")->mean(), 0.0);
}

TEST(ParseDistribution, Diagnostics) {
  EXPECT_THROW(parse_distribution("warp:1"), std::runtime_error);
  EXPECT_THROW(parse_distribution("pareto:1.1"), std::runtime_error);
  EXPECT_THROW(parse_distribution("exp:fast"), std::runtime_error);
}

// ------------------------------------------------------------ make_system

ScenarioSpec tiny_queueing() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.servers = 4;
  spec.queries = 1200;
  spec.warmup = 120;
  spec.percentile = 0.95;
  spec.policies = {parse_policy_spec("none")};
  return spec;
}

TEST(MakeSystem, DeterministicInSpecAndSeed) {
  const ScenarioSpec spec = tiny_queueing();
  auto a = make_system(spec, 42);
  auto b = make_system(spec, 42);
  const auto policy = core::ReissuePolicy::single_r(10.0, 0.5);
  const auto ra = a->run(policy);
  const auto rb = b->run(policy);
  ASSERT_EQ(ra.query_latencies.size(), rb.query_latencies.size());
  EXPECT_EQ(ra.query_latencies, rb.query_latencies);
  EXPECT_EQ(ra.reissues_issued, rb.reissues_issued);
}

TEST(MakeSystem, ReseedChangesDraws) {
  const ScenarioSpec spec = tiny_queueing();
  auto system = make_system(spec, 42);
  const auto r1 = system->run(core::ReissuePolicy::none());
  ASSERT_TRUE(system->reseed(43));
  const auto r2 = system->run(core::ReissuePolicy::none());
  EXPECT_NE(r1.query_latencies, r2.query_latencies);
  ASSERT_TRUE(system->reseed(42));
  const auto r3 = system->run(core::ReissuePolicy::none());
  EXPECT_EQ(r1.query_latencies, r3.query_latencies);
}

TEST(MakeSystem, InfiniteServerKindsRun) {
  ScenarioSpec spec = tiny_queueing();
  spec.kind = WorkloadKind::kIndependent;
  const auto result = make_system(spec, 7)->run(core::ReissuePolicy::none());
  EXPECT_EQ(result.queries, spec.queries - spec.warmup);
  EXPECT_DOUBLE_EQ(result.utilization, 0.0);

  spec.kind = WorkloadKind::kCorrelated;
  spec.ratio = 0.5;
  const auto correlated =
      make_system(spec, 7)->run(core::ReissuePolicy::single_r(5.0, 1.0));
  EXPECT_GT(correlated.reissues_issued, 0u);
}

TEST(MakeSystem, HeterogeneousSpeedsSlowTheTail) {
  ScenarioSpec spec = tiny_queueing();
  spec.service = "constant:4";
  spec.service_cap = 0.0;
  spec.ratio = 0.0;
  const auto base = make_system(spec, 11)->run(core::ReissuePolicy::none());
  spec.server_speeds = {1.0, 1.0, 8.0, 8.0};
  const auto slow = make_system(spec, 11)->run(core::ReissuePolicy::none());
  // Same arrivals, two servers running 8x slower: the mean must rise.
  stats::RunningStats b, s;
  for (double x : base.query_latencies) b.add(x);
  for (double x : slow.query_latencies) s.add(x);
  EXPECT_GT(s.mean(), b.mean());
}

TEST(MakeSystem, BurstyPhasesRun) {
  ScenarioSpec spec = tiny_queueing();
  spec.phases = {BurstPhase{100.0, 0.5}, BurstPhase{25.0, 3.0}};
  const auto result = make_system(spec, 3)->run(core::ReissuePolicy::none());
  EXPECT_EQ(result.queries, spec.queries - spec.warmup);
}

// ------------------------------------------------ service=trace:<file>

/// Writes `lines` to a fresh file under the test temp dir and returns its
/// path.
std::string write_trace(const std::string& name, const std::string& lines) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << lines;
  return path;
}

TEST(ScenarioSpec, TraceServiceRoundTrips) {
  ScenarioSpec spec;
  spec.name = "replay";
  spec.kind = WorkloadKind::kQueueing;
  spec.service = "trace:/var/logs/service_times.log";
  spec.policies = {parse_policy_spec("none")};
  // Parsing only checks the token's shape; the file is read by
  // make_system, so a round trip must not require it to exist.
  EXPECT_EQ(parse_scenario(to_spec_string(spec)), spec);
}

TEST(ScenarioSpec, TraceServiceDiagnostics) {
  EXPECT_THROW(parse_scenario("name=x service=trace:"), std::runtime_error);
  EXPECT_THROW(
      parse_scenario("name=x kind=independent service=trace:/tmp/t.log"),
      std::runtime_error);
  // Reissue copies replay their primary's cost, so a correlation ratio
  // would be silently ignored — rejected in either key order.
  EXPECT_THROW(
      parse_scenario("name=x service=trace:/tmp/t.log ratio=0.5"),
      std::runtime_error);
  EXPECT_THROW(
      parse_scenario("name=x ratio=0.5 service=trace:/tmp/t.log"),
      std::runtime_error);
}

TEST(LoadServiceTrace, ReadsTheLatencyLogFormat) {
  const std::string path = write_trace("trace_ok.log",
                                       "# measured service times\n"
                                       "1.5\n"
                                       "  2.5  # with comment\n"
                                       "\n"
                                       "30\n");
  const auto trace = load_service_trace(path);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace[0], 1.5);
  EXPECT_DOUBLE_EQ(trace[1], 2.5);
  EXPECT_DOUBLE_EQ(trace[2], 30.0);
}

TEST(LoadServiceTrace, DiagnosticsNameThePath) {
  EXPECT_THROW(load_service_trace("/nonexistent/trace.log"),
               std::runtime_error);
  const std::string empty = write_trace("trace_empty.log", "# nothing\n\n");
  EXPECT_THROW(load_service_trace(empty), std::runtime_error);
  const std::string garbage = write_trace("trace_bad.log", "1.5\nwat\n");
  EXPECT_THROW(load_service_trace(garbage), std::runtime_error);
  try {
    (void)load_service_trace(garbage);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(garbage), std::string::npos);
  }
}

TEST(MakeSystem, TraceServiceReplaysTheLog) {
  const std::string path =
      write_trace("trace_replay.log", "1\n2\n3\n4\n5\n6\n7\n8000\n");
  ScenarioSpec spec = tiny_queueing();
  spec.service = "trace:" + path;
  spec.service_cap = 100.0;  // caps the 8000 outlier like any service draw

  auto a = make_system(spec, 42);
  auto b = make_system(spec, 42);
  const auto policy = core::ReissuePolicy::single_r(5.0, 0.5);
  const auto ra = a->run(policy);
  const auto rb = b->run(policy);
  EXPECT_EQ(ra.query_latencies, rb.query_latencies);
  EXPECT_EQ(ra.reissues_issued, rb.reissues_issued);
  EXPECT_EQ(ra.queries, spec.queries - spec.warmup);

  // The built system really is trace-backed (not a parsed distribution).
  auto* cluster = dynamic_cast<sim::Cluster*>(a.get());
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->service_model().name(), "Trace[n=8]");
  // Every copy costs at least the trace minimum.
  for (double x : ra.primary_latencies) EXPECT_GE(x, 1.0);

  // The cap really applies to trace draws: uncapped, the 8000 outlier
  // must change the run (and its arrival pacing, via the trace mean).
  ScenarioSpec uncapped = spec;
  uncapped.service_cap = 0.0;
  const auto ru = make_system(uncapped, 42)->run(policy);
  EXPECT_NE(ra.query_latencies, ru.query_latencies);
  const double max_capped =
      *std::max_element(ra.primary_latencies.begin(),
                        ra.primary_latencies.end());
  const double max_uncapped =
      *std::max_element(ru.primary_latencies.begin(),
                        ru.primary_latencies.end());
  // Uncapped runs serve the 8000-cost outlier, so the worst primary
  // response dwarfs anything a cap=100 run can produce.
  EXPECT_GE(max_uncapped, 8000.0);
  EXPECT_LT(max_capped, max_uncapped);
}

TEST(ScenarioSpec, TraceResampleRoundTrips) {
  ScenarioSpec spec;
  spec.name = "resample";
  spec.kind = WorkloadKind::kQueueing;
  spec.service = "trace:/var/logs/service_times.log:resample";
  spec.policies = {parse_policy_spec("none")};
  EXPECT_EQ(parse_scenario(to_spec_string(spec)), spec);
  EXPECT_NE(to_spec_string(spec).find(
                "service=trace:/var/logs/service_times.log:resample"),
            std::string::npos);
}

TEST(ScenarioSpec, TraceResampleDiagnostics) {
  // The mode still needs a path...
  EXPECT_THROW(parse_scenario("name=x service=trace::resample"),
               std::runtime_error);
  // ...is queueing-only like plain replay...
  EXPECT_THROW(
      parse_scenario(
          "name=x kind=independent service=trace:/tmp/t.log:resample"),
      std::runtime_error);
  // ...and reissue copies still repeat their primary, so ratio stays
  // inapplicable.
  EXPECT_THROW(
      parse_scenario("name=x service=trace:/tmp/t.log:resample ratio=0.5"),
      std::runtime_error);
}

TEST(MakeSystem, TraceResampleDrawsIidFromTheLog) {
  const std::string path =
      write_trace("trace_resample.log", "1\n2\n3\n4\n5\n6\n7\n8\n");
  ScenarioSpec spec = tiny_queueing();
  spec.service = "trace:" + path + ":resample";

  // Deterministic in (spec, seed), like every other scenario source.
  auto a = make_system(spec, 42);
  auto b = make_system(spec, 42);
  const auto ra = a->run(core::ReissuePolicy::none());
  EXPECT_EQ(ra.query_latencies,
            b->run(core::ReissuePolicy::none()).query_latencies);

  // Still trace-backed, and every draw comes from the log's support.
  auto* cluster = dynamic_cast<sim::Cluster*>(a.get());
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->service_model().name(), "Trace[n=8]");
  for (double x : ra.primary_latencies) EXPECT_GE(x, 1.0);

  // i.i.d. draws really differ from replaying the same file in order.
  ScenarioSpec replay = spec;
  replay.service = "trace:" + path;
  const auto rr = make_system(replay, 42)->run(core::ReissuePolicy::none());
  EXPECT_NE(ra.query_latencies, rr.query_latencies);
}

TEST(MakeSystem, InterferenceRaisesUtilization) {
  ScenarioSpec spec = tiny_queueing();
  spec.queries = 4000;
  spec.warmup = 400;
  const auto base = make_system(spec, 5)->run(core::ReissuePolicy::none());
  spec.interference_rate = 0.01;
  spec.interference_mean = 20.0;
  const auto noisy = make_system(spec, 5)->run(core::ReissuePolicy::none());
  EXPECT_GT(noisy.utilization, base.utilization);
}

// ---------------------------------------------------- faults=<spec>

TEST(FaultSpec, RoundTripsEveryForm) {
  for (const char* token :
       {"slowdown:0.002,4,25", "corr:3,0.001,60,2", "crash:4000,150",
        "slowdown:0.002,4,25+crash:4000,150",
        "slowdown:0.001,3,25+corr:2,0.002,40,3+crash:2000,120"}) {
    const FaultSpec spec = parse_fault_spec(token);
    EXPECT_TRUE(spec.any());
    EXPECT_EQ(to_string(spec), token) << token;
    EXPECT_EQ(parse_fault_spec(to_string(spec)), spec) << token;
  }
  // The corr factor defaults to 2 and the canonical form always emits it.
  EXPECT_EQ(to_string(parse_fault_spec("corr:3,0.001,60")),
            "corr:3,0.001,60,2");
  EXPECT_FALSE(FaultSpec{}.any());
  EXPECT_EQ(to_string(FaultSpec{}), "");
}

TEST(FaultSpec, RejectsMalformedTokens) {
  EXPECT_THROW((void)parse_fault_spec("gremlins:1,2"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("slowdown"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("slowdown:0.002,4"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("slowdown:0.002,4,25,9"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("slowdown:0,4,25"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("slowdown:0.002,1,25"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("slowdown:0.002,4,0"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("corr:0,0.001,60"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("corr:3,0.001,60,1"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("crash:4000"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("crash:0,150"), std::runtime_error);
  EXPECT_THROW((void)parse_fault_spec("crash:4000,0"), std::runtime_error);
  // Each family at most once.
  EXPECT_THROW((void)parse_fault_spec("crash:4000,150+crash:1,1"),
               std::runtime_error);
  // Diagnostics carry the offending token.
  try {
    (void)parse_fault_spec("gremlins:1,2");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("gremlins"), std::string::npos);
  }
}

TEST(ScenarioSpec, FaultsRoundTripAndApplyOnlyToQueueing) {
  ScenarioSpec spec = tiny_queueing();
  spec.faults = parse_fault_spec("slowdown:0.002,4,25+crash:4000,150");
  EXPECT_EQ(parse_scenario(to_spec_string(spec)), spec);
  EXPECT_THROW(
      parse_scenario("name=x kind=independent faults=crash:4000,150"),
      std::runtime_error);
  // k must fit the fleet.
  EXPECT_THROW(
      parse_scenario("name=x kind=queueing servers=4 queries=100 warmup=10 "
                     "faults=corr:5,0.001,60"),
      std::runtime_error);
}

TEST(MakeSystem, FaultPlansChangeRunsDeterministically) {
  ScenarioSpec spec = tiny_queueing();
  spec.ratio = 0.0;
  const auto clean = make_system(spec, 9)->run(core::ReissuePolicy::none());
  spec.faults = parse_fault_spec("slowdown:0.005,6,40");
  const auto slowed = make_system(spec, 9)->run(core::ReissuePolicy::none());
  EXPECT_NE(clean.query_latencies, slowed.query_latencies);
  const auto again = make_system(spec, 9)->run(core::ReissuePolicy::none());
  EXPECT_EQ(slowed.query_latencies, again.query_latencies);

  spec.faults = parse_fault_spec("crash:800,100");
  const auto crashed =
      make_system(spec, 9)->run(core::ReissuePolicy::single_r(10.0, 0.5));
  EXPECT_EQ(crashed.queries, spec.queries - spec.warmup);
  for (double latency : crashed.query_latencies) {
    EXPECT_TRUE(std::isfinite(latency) && latency >= 0.0);
  }
}

// ---------------------------------------------------- arrival=<token>

TEST(ScenarioSpec, DiurnalArrivalRoundTrips) {
  ScenarioSpec spec = tiny_queueing();
  spec.arrival = "diurnal:2000:0.6";
  EXPECT_EQ(parse_scenario(to_spec_string(spec)), spec);
  spec.arrival = "diurnal:2000:0.6:12";
  EXPECT_EQ(parse_scenario(to_spec_string(spec)), spec);
}

TEST(ScenarioSpec, ArrivalDiagnostics) {
  // Unknown shapes, bad numbers, amplitude and steps bounds.
  EXPECT_THROW(parse_scenario("name=x arrival=tides:1:2"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x arrival=diurnal:2000"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x arrival=diurnal:0:0.5"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x arrival=diurnal:2000:1.5"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x arrival=diurnal:2000:0.5:1"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x arrival=trace:"), std::runtime_error);
  // Queueing only.
  EXPECT_THROW(
      parse_scenario("name=x kind=independent arrival=diurnal:2000:0.5"),
      std::runtime_error);
  // phases= and arrival= both shape the arrival process.
  EXPECT_THROW(parse_scenario("name=x phases=100:2 arrival=diurnal:2000:0.5"),
               std::runtime_error);
  // Trace arrivals replace util — rejected in either key order.
  EXPECT_THROW(parse_scenario("name=x util=0.5 arrival=trace:/tmp/a.log"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("name=x arrival=trace:/tmp/a.log util=0.5"),
               std::runtime_error);
}

TEST(ScenarioSpec, TraceArrivalRoundTripsWithoutUtil) {
  ScenarioSpec spec = tiny_queueing();
  spec.arrival = "trace:/var/logs/arrivals.log";
  const std::string text = to_spec_string(spec);
  EXPECT_EQ(text.find(" util="), std::string::npos) << text;
  EXPECT_EQ(parse_scenario(text), spec);
}

TEST(MakeSystem, DiurnalArrivalRunsDeterministically) {
  ScenarioSpec spec = tiny_queueing();
  spec.arrival = "diurnal:500:0.8:4";
  const auto a = make_system(spec, 21)->run(core::ReissuePolicy::none());
  const auto b = make_system(spec, 21)->run(core::ReissuePolicy::none());
  EXPECT_EQ(a.query_latencies, b.query_latencies);
  EXPECT_EQ(a.queries, spec.queries - spec.warmup);
}

TEST(MakeSystem, TraceArrivalReplaysTimestamps) {
  // Arrivals 25 apart against constant:1 service: no query ever queues, so
  // every latency is exactly the service time — directly observable proof
  // that the recorded timestamps (cycled with the extrapolated span)
  // replaced the Poisson process.
  const std::string path =
      write_trace("arrivals.log", "0\n25\n50\n75\n100\n");
  ScenarioSpec spec = tiny_queueing();
  spec.queries = 400;
  spec.warmup = 40;
  spec.ratio = 0.0;
  spec.service = "constant:1";
  spec.service_cap = 0.0;
  spec.arrival = "trace:" + path;
  const auto result = make_system(spec, 13)->run(core::ReissuePolicy::none());
  ASSERT_EQ(result.query_latencies.size(), 360u);
  for (double latency : result.query_latencies) {
    EXPECT_DOUBLE_EQ(latency, 1.0);
  }
}

TEST(MakeSystem, TraceArrivalDiagnostics) {
  ScenarioSpec spec = tiny_queueing();
  spec.arrival = "trace:/nonexistent/arrivals.log";
  EXPECT_THROW(make_system(spec, 1), std::runtime_error);

  const std::string decreasing = write_trace("arr_dec.log", "5\n3\n9\n");
  spec.arrival = "trace:" + decreasing;
  EXPECT_THROW(make_system(spec, 1), std::runtime_error);

  const std::string lone = write_trace("arr_one.log", "5\n");
  spec.arrival = "trace:" + lone;
  EXPECT_THROW(make_system(spec, 1), std::runtime_error);

  const std::string zeros = write_trace("arr_zero.log", "0\n0\n");
  spec.arrival = "trace:" + zeros;
  EXPECT_THROW(make_system(spec, 1), std::runtime_error);
}


// ------------------------------------------- fanout=<n>:<k>[:spread|:ec]

TEST(FanoutSpec, RoundTripsEveryForm) {
  for (const char* token : {"3:1", "3:2:spread", "6:4:ec", "2:2", "1:1"}) {
    const FanoutSpec spec = parse_fanout_spec(token);
    EXPECT_EQ(to_string(spec), token) << token;
    EXPECT_EQ(parse_fanout_spec(to_string(spec)), spec) << token;
  }
  EXPECT_TRUE(parse_fanout_spec("3:1").active());
  EXPECT_FALSE(parse_fanout_spec("1:1").active());
  EXPECT_FALSE(FanoutSpec{}.active());
  EXPECT_EQ(to_string(FanoutSpec{}), "1:1");
}

TEST(FanoutSpec, RejectsMalformedTokens) {
  EXPECT_THROW((void)parse_fanout_spec(""), std::runtime_error);
  EXPECT_THROW((void)parse_fanout_spec("3"), std::runtime_error);
  EXPECT_THROW((void)parse_fanout_spec("0:1"), std::runtime_error);
  EXPECT_THROW((void)parse_fanout_spec("3:0"), std::runtime_error);
  EXPECT_THROW((void)parse_fanout_spec("3:4"), std::runtime_error);  // k > n
  EXPECT_THROW((void)parse_fanout_spec("x:1"), std::runtime_error);
  EXPECT_THROW((void)parse_fanout_spec("3:2:mesh"), std::runtime_error);
  EXPECT_THROW((void)parse_fanout_spec("3:2:spread:extra"),
               std::runtime_error);
  // Diagnostics name the token and list every valid form.
  for (const char* token : {"3:4", "0:1", "3:2:mesh"}) {
    try {
      (void)parse_fanout_spec(token);
      FAIL() << "expected std::runtime_error for " << token;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(token), std::string::npos) << what;
      EXPECT_NE(what.find("valid forms"), std::string::npos) << what;
      EXPECT_NE(what.find("fanout=<n>:<k>:ec"), std::string::npos) << what;
    }
  }
}

TEST(ScenarioSpec, FanoutRoundTripsAndAppliesOnlyToQueueing) {
  ScenarioSpec spec = tiny_queueing();
  spec.fanout = parse_fanout_spec("3:2:spread");
  EXPECT_EQ(parse_scenario(to_spec_string(spec)), spec);
  // The degenerate group is canonical-form-invisible: no fanout= token.
  ScenarioSpec plain = tiny_queueing();
  EXPECT_EQ(to_spec_string(plain).find("fanout="), std::string::npos);
  EXPECT_THROW(parse_scenario("name=x kind=independent fanout=3:1"),
               std::runtime_error);
  // n must fit the fleet, and the diagnostic lists the valid forms.
  try {
    (void)parse_scenario(
        "name=x kind=queueing servers=4 queries=100 warmup=10 fanout=9:1");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("servers"), std::string::npos) << what;
    EXPECT_NE(what.find("valid forms"), std::string::npos) << what;
  }
}

TEST(ScenarioSpec, FaultAndArrivalDiagnosticsListValidForms) {
  // Unparseable workload tokens must teach the valid grammar, not just
  // reject (mirrors the fanout= contract).
  try {
    (void)parse_fault_spec("gremlins:1,2");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("valid forms"), std::string::npos)
        << e.what();
  }
  try {
    (void)parse_scenario("name=x kind=queueing arrival=diurnal:bad");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("valid forms"), std::string::npos)
        << e.what();
  }
}

TEST(MakeSystem, FanoutChangesRunsDeterministically) {
  ScenarioSpec spec = tiny_queueing();
  spec.ratio = 0.0;
  const auto solo = make_system(spec, 9)->run(core::ReissuePolicy::none());
  spec.fanout = parse_fanout_spec("3:1:spread");
  const auto fanned = make_system(spec, 9)->run(core::ReissuePolicy::none());
  EXPECT_NE(solo.query_latencies, fanned.query_latencies);
  const auto again = make_system(spec, 9)->run(core::ReissuePolicy::none());
  EXPECT_EQ(fanned.query_latencies, again.query_latencies);
  // Replication at a mild load cannot slow any query: completion is the
  // min over the group and the primary stream is shared.
  EXPECT_EQ(fanned.queries, spec.queries - spec.warmup);
  for (double latency : fanned.query_latencies) {
    EXPECT_TRUE(std::isfinite(latency) && latency >= 0.0);
  }
}

}  // namespace
}  // namespace reissue::exp
