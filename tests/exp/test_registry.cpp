#include "reissue/exp/registry.hpp"

#include <gtest/gtest.h>

namespace reissue::exp {
namespace {

TEST(Registry, BuiltInCoversEveryWorkloadKindAndNewRegimes) {
  const auto& registry = ScenarioRegistry::built_in();
  for (const char* name :
       {"independent", "correlated", "queueing-u30", "queueing-u50",
        "queueing-u70", "overload-u90", "bursty", "heterogeneous",
        "interference", "redis-small", "lucene-small"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(Registry, BuiltInScenariosRoundTripThroughSpecStrings) {
  for (const auto& spec : ScenarioRegistry::built_in().scenarios()) {
    EXPECT_EQ(parse_scenario(to_spec_string(spec)), spec) << spec.name;
  }
}

TEST(Registry, ResolvesCatalogInDeclaredOrder) {
  const auto specs =
      ScenarioRegistry::built_in().resolve("queueing-sweep");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "queueing-u30");
  EXPECT_EQ(specs[1].name, "queueing-u50");
  EXPECT_EQ(specs[2].name, "queueing-u70");
}

TEST(Registry, ResolvesCommaListsAndInlineSpecs) {
  const auto specs = ScenarioRegistry::built_in().resolve(
      "independent,name=adhoc kind=queueing policy=none");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "independent");
  EXPECT_EQ(specs[1].name, "adhoc");
}

TEST(Registry, ResolveRejectsUnknownNames) {
  EXPECT_THROW(ScenarioRegistry::built_in().resolve("warp-speed"),
               std::runtime_error);
  EXPECT_THROW(ScenarioRegistry::built_in().resolve(""), std::runtime_error);
}

TEST(Registry, AddRejectsDuplicatesAndBadCatalogs) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "a";
  spec.policies = {parse_policy_spec("none")};
  registry.add(spec);
  EXPECT_THROW(registry.add(spec), std::runtime_error);
  EXPECT_THROW(registry.add_catalog("c", {"missing"}), std::runtime_error);
  registry.add_catalog("c", {"a"});
  EXPECT_THROW(registry.add_catalog("c", {"a"}), std::runtime_error);
  EXPECT_THROW(registry.add_catalog("a", {}), std::runtime_error);
}

TEST(Registry, EveryBuiltInScenarioHasAPolicyGrid) {
  for (const auto& spec : ScenarioRegistry::built_in().scenarios()) {
    EXPECT_FALSE(spec.policies.empty()) << spec.name;
  }
}

}  // namespace
}  // namespace reissue::exp
