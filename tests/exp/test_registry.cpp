#include "reissue/exp/registry.hpp"

#include <gtest/gtest.h>

#include <string>

namespace reissue::exp {
namespace {

TEST(Registry, BuiltInCoversEveryWorkloadKindAndNewRegimes) {
  const auto& registry = ScenarioRegistry::built_in();
  for (const char* name :
       {"independent", "correlated", "queueing-u30", "queueing-u50",
        "queueing-u70", "overload-u90", "bursty", "heterogeneous",
        "interference", "redis-small", "lucene-small", "overload-flip-under",
        "overload-flip-mid", "overload-flip", "crash-recovery",
        "correlated-degrade"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(Registry, FaultMatrixSweepsUnderloadToOverload) {
  const auto specs = ScenarioRegistry::built_in().resolve("fault-matrix");
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "overload-flip-under");
  EXPECT_EQ(specs[1].name, "overload-flip-mid");
  EXPECT_EQ(specs[2].name, "overload-flip");
  EXPECT_EQ(specs[3].name, "crash-recovery");
  EXPECT_EQ(specs[4].name, "correlated-degrade");
  // The flip trio climbs toward overload with identical fault plans and
  // policy grids, so p99 differences are attributable to load alone.
  EXPECT_LT(specs[0].utilization, specs[1].utilization);
  EXPECT_LT(specs[1].utilization, specs[2].utilization);
  EXPECT_EQ(specs[0].faults, specs[2].faults);
  EXPECT_EQ(specs[0].policies, specs[2].policies);
  for (const auto& spec : specs) EXPECT_TRUE(spec.faults.any()) << spec.name;
}

TEST(Registry, FanoutMatrixPinsTheRedundancyRegimes) {
  const auto specs = ScenarioRegistry::built_in().resolve("fanout-matrix");
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "fanout-flip-under");
  EXPECT_EQ(specs[1].name, "fanout-flip-over");
  EXPECT_EQ(specs[2].name, "fanout-replicated");
  EXPECT_EQ(specs[3].name, "fanout-ec");
  EXPECT_EQ(specs[4].name, "partition-aggregate");
  // The flip pair shares one group shape and policy grid so latency
  // differences are attributable to load alone (redundancy's sign flips
  // between them).
  EXPECT_EQ(specs[0].fanout, specs[1].fanout);
  EXPECT_EQ(specs[0].policies, specs[1].policies);
  EXPECT_LT(specs[0].utilization, specs[1].utilization);
  for (const auto& spec : specs) {
    EXPECT_TRUE(spec.fanout.active()) << spec.name;
    EXPECT_LE(spec.fanout.copies, spec.servers) << spec.name;
  }
  // The shapes cover replicated reads, erasure-coded reads, and full
  // partition-aggregate fork-join.
  EXPECT_EQ(specs[2].fanout.require, 1u);
  EXPECT_EQ(specs[3].fanout.mode, FanoutSpec::Mode::kErasure);
  EXPECT_EQ(specs[4].fanout.require, specs[4].fanout.copies);
}

TEST(Registry, SimAllIncludesEveryFanoutScenario) {
  // The registry-wide suites (raw-CSV round-trip, metric-mode agreement,
  // thread byte-identity) enumerate sim-all, so fan-out stays covered
  // automatically only if sim-all carries the whole fanout-matrix.
  const auto all = ScenarioRegistry::built_in().resolve("sim-all");
  const auto fanout = ScenarioRegistry::built_in().resolve("fanout-matrix");
  for (const auto& member : fanout) {
    bool found = false;
    for (const auto& spec : all) found |= spec.name == member.name;
    EXPECT_TRUE(found) << member.name;
  }
}

TEST(Registry, BuiltInScenariosRoundTripThroughSpecStrings) {
  for (const auto& spec : ScenarioRegistry::built_in().scenarios()) {
    EXPECT_EQ(parse_scenario(to_spec_string(spec)), spec) << spec.name;
  }
}

TEST(Registry, ResolvesCatalogInDeclaredOrder) {
  const auto specs =
      ScenarioRegistry::built_in().resolve("queueing-sweep");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "queueing-u30");
  EXPECT_EQ(specs[1].name, "queueing-u50");
  EXPECT_EQ(specs[2].name, "queueing-u70");
}

TEST(Registry, ResolvesCommaListsAndInlineSpecs) {
  const auto specs = ScenarioRegistry::built_in().resolve(
      "independent,name=adhoc kind=queueing policy=none");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "independent");
  EXPECT_EQ(specs[1].name, "adhoc");
}

TEST(Registry, ResolveRejectsUnknownNames) {
  EXPECT_THROW(ScenarioRegistry::built_in().resolve("warp-speed"),
               std::runtime_error);
  EXPECT_THROW(ScenarioRegistry::built_in().resolve(""), std::runtime_error);
}

TEST(Registry, ResolveErrorListsEveryAvailableName) {
  try {
    (void)ScenarioRegistry::built_in().resolve("warp-speed");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp-speed"), std::string::npos) << what;
    for (const auto& spec : ScenarioRegistry::built_in().scenarios()) {
      EXPECT_NE(what.find(spec.name), std::string::npos) << spec.name;
    }
    for (const char* catalog : {"fault-matrix", "queueing-sweep", "sim-all"}) {
      EXPECT_NE(what.find(catalog), std::string::npos) << catalog;
    }
  }
}

TEST(Registry, AddRejectsDuplicatesAndBadCatalogs) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "a";
  spec.policies = {parse_policy_spec("none")};
  registry.add(spec);
  EXPECT_THROW(registry.add(spec), std::runtime_error);
  EXPECT_THROW(registry.add_catalog("c", {"missing"}), std::runtime_error);
  registry.add_catalog("c", {"a"});
  EXPECT_THROW(registry.add_catalog("c", {"a"}), std::runtime_error);
  EXPECT_THROW(registry.add_catalog("a", {}), std::runtime_error);
}

TEST(Registry, EveryBuiltInScenarioHasAPolicyGrid) {
  for (const auto& spec : ScenarioRegistry::built_in().scenarios()) {
    EXPECT_FALSE(spec.policies.empty()) << spec.name;
  }
}

}  // namespace
}  // namespace reissue::exp
