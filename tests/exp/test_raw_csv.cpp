// Raw replication-level CSV: the wire format of distributed sweeps.
// write -> parse must be exact (shortest round-trip decimals, canonical
// policy tokens) so that aggregating parsed rows is byte-identical to
// aggregating in memory -- pinned here against every registry scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "reissue/exp/aggregate.hpp"
#include "reissue/exp/registry.hpp"
#include "reissue/exp/runner.hpp"

namespace reissue::exp {
namespace {

std::vector<CellResult> two_cells() {
  CellResult a;
  a.scenario = "s1";
  a.policy = "r:30:0.5";
  a.percentile = 0.99;
  for (std::size_t r = 0; r < 2; ++r) {
    ReplicationMetrics rep;
    rep.seed = 0x123456789abcdef0ull + r;
    rep.tail = 1.0 / 3.0 + static_cast<double>(r);
    rep.tail_psquare = 0.1;
    rep.mean_latency = 12345.6789;
    rep.reissue_rate = 0.05;
    rep.remediation = 2e-9;
    rep.utilization = 0.30000000000000004;  // not representable as "0.3"+eps
    rep.outstanding_at_delay = 1e300;
    rep.policy = core::ReissuePolicy::single_r(30.0, 0.5);
    a.replications.push_back(rep);
  }
  CellResult b = a;
  b.scenario = "s2";
  b.policy = "multi:1:0.25:9.5:0.125";
  b.replications[0].policy = core::ReissuePolicy::multiple_r(
      {core::ReissueStage{1.0, 0.25}, core::ReissueStage{9.5, 0.125}});
  b.replications[1].policy = core::ReissuePolicy::immediate(2);
  return {a, b};
}

TEST(RawCsv, HeaderNamesReplicationColumns) {
  const std::string header = raw_csv_header();
  for (const char* column :
       {"scenario", "policy", "percentile", "cell", "replication", "seed",
        "resolved_policy", "tail", "tail_p2", "reissue_rate", "delay",
        "probability"}) {
    EXPECT_NE(header.find(column), std::string::npos) << column;
  }
}

TEST(RawCsv, RowsRoundTripExactly) {
  const auto cells = two_cells();
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t r = 0; r < cells[c].replications.size(); ++r) {
      const std::string line = raw_csv_row(cells[c], 7 + c, r);
      const RawRow row = parse_raw_csv_row(line);
      EXPECT_EQ(row.cell, 7 + c);
      EXPECT_EQ(row.replication, r);
      EXPECT_EQ(row.scenario, cells[c].scenario);
      EXPECT_EQ(row.policy, cells[c].policy);
      const ReplicationMetrics& rep = cells[c].replications[r];
      EXPECT_EQ(row.metrics.seed, rep.seed);
      EXPECT_EQ(row.metrics.tail, rep.tail);
      EXPECT_EQ(row.metrics.utilization, rep.utilization);
      EXPECT_EQ(row.metrics.outstanding_at_delay, rep.outstanding_at_delay);
      EXPECT_EQ(row.metrics.policy, rep.policy);
      // Re-serializing the parsed row reproduces the line byte for byte:
      // the property resumed journals and merge rely on.
      CellResult copy;
      copy.scenario = row.scenario;
      copy.policy = row.policy;
      copy.percentile = row.percentile;
      copy.replications.assign(r + 1, row.metrics);
      EXPECT_EQ(raw_csv_row(copy, row.cell, r), line);
    }
  }
}

TEST(RawCsv, WriteParseAssembleRoundTrips) {
  const auto cells = two_cells();
  std::ostringstream os;
  write_raw_csv(os, cells, /*first_cell_index=*/5);

  std::istringstream is(os.str());
  auto rows = parse_raw_csv(is);
  ASSERT_EQ(rows.size(), 4u);
  // Assembly tolerates arbitrary row order (shards arrive shuffled).
  std::reverse(rows.begin(), rows.end());
  const auto rebuilt = cells_from_raw_rows(rows, 2);

  std::ostringstream again;
  write_raw_csv(again, rebuilt, 5);
  EXPECT_EQ(again.str(), os.str());
}

TEST(RawCsv, ParseDiagnosticsNameTheProblem) {
  const std::string good = raw_csv_row(two_cells()[0], 0, 0);

  // Wrong column count.
  EXPECT_THROW((void)parse_raw_csv_row("a,b,c"), std::runtime_error);
  EXPECT_THROW((void)parse_raw_csv_row(good + ",extra"), std::runtime_error);
  // Bad numbers name their column.
  try {
    (void)parse_raw_csv_row("s,none,0.99,0,0,1,none,oops,1,1,0,0,0.5,0,0,0");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("tail"), std::string::npos)
        << e.what();
  }
  // Malformed policy tokens fail in both policy columns.
  EXPECT_THROW(
      (void)parse_raw_csv_row("s,bogus,0.99,0,0,1,none,1,1,1,0,0,0.5,0,0,0"),
      std::runtime_error);
  EXPECT_THROW(
      (void)parse_raw_csv_row("s,none,0.99,0,0,1,bogus,1,1,1,0,0,0.5,0,0,0"),
      std::runtime_error);
  // A tuned token is a cell label, never a resolved policy.
  EXPECT_THROW(
      (void)parse_raw_csv_row(
          "s,none,0.99,0,0,1,tuned-r:0.05,1,1,1,0,0,0.5,0,0,0"),
      std::runtime_error);
  // An optimal token is a cell label, never a resolved policy (the spec
  // resolves to a concrete r:<d>:<q> per replication).
  EXPECT_THROW(
      (void)parse_raw_csv_row(
          "s,optimal:0.05:corr,0.99,0,0,1,optimal:0.05:corr,1,1,1,0,0,0.5,0,"
          "0,0"),
      std::runtime_error);
  // The trailing (d, q) columns must agree with resolved_policy: a
  // hand-edited delay or probability is rejected, not silently dropped.
  EXPECT_NO_THROW(
      (void)parse_raw_csv_row("s,none,0.99,0,0,1,r:30:0.5,1,1,1,0,0,0.5,0,"
                              "30,0.5"));
  try {
    (void)parse_raw_csv_row("s,none,0.99,0,0,1,r:30:0.5,1,1,1,0,0,0.5,0,"
                            "31,0.5");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("resolved_policy"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(
      (void)parse_raw_csv_row("s,none,0.99,0,0,1,r:30:0.5,1,1,1,0,0,0.5,0,"
                              "30,0.25"),
      std::runtime_error);

  // Stream parsing: header is mandatory, errors carry the line number.
  std::istringstream missing_header(good + "\n");
  EXPECT_THROW((void)parse_raw_csv(missing_header), std::runtime_error);
  std::istringstream bad_row(raw_csv_header() + "\n" + good + "\nbroken\n");
  try {
    (void)parse_raw_csv(bad_row);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(RawCsv, AssemblyRejectsIncompleteCells) {
  const auto cells = two_cells();
  std::ostringstream os;
  write_raw_csv(os, cells);
  std::istringstream is(os.str());
  const auto rows = parse_raw_csv(is);

  // Duplicate replication.
  auto dup = rows;
  dup[1] = dup[0];
  EXPECT_THROW((void)cells_from_raw_rows(dup, 2), std::runtime_error);
  // Missing replication (row count betrays it).
  auto missing = rows;
  missing.pop_back();
  EXPECT_THROW((void)cells_from_raw_rows(missing, 2), std::runtime_error);
  // Replication index out of range.
  auto oob = rows;
  oob[1].replication = 5;
  EXPECT_THROW((void)cells_from_raw_rows(oob, 2), std::runtime_error);
  // Metadata disagreement within one cell.
  auto skew = rows;
  skew[1].policy = "none";
  EXPECT_THROW((void)cells_from_raw_rows(skew, 2), std::runtime_error);
  // A hole in the cell index range.
  auto hole = rows;
  for (auto& row : hole) {
    if (row.cell == 1) row.cell = 2;
  }
  EXPECT_THROW((void)cells_from_raw_rows(hole, 2), std::runtime_error);
}

TEST(RawCsv, ParsedAggregationMatchesInMemoryForEveryRegistryScenario) {
  // The satellite guarantee behind `merge`: write -> parse -> aggregate
  // equals aggregate(run_sweep(...)) byte for byte, for every scenario the
  // registry can produce (sized down so substrates stay cheap).
  SweepOptions options;
  options.replications = 2;
  options.threads = 2;
  options.seed = 0xfeed;
  for (ScenarioSpec spec : ScenarioRegistry::built_in().scenarios()) {
    spec.queries = 400;
    spec.warmup = 40;
    const auto cells = run_sweep({spec}, options);

    std::ostringstream raw;
    write_raw_csv(raw, cells);
    std::istringstream is(raw.str());
    const auto rebuilt =
        cells_from_raw_rows(parse_raw_csv(is), options.replications);

    std::ostringstream direct;
    std::ostringstream via_raw;
    write_csv(direct, aggregate(cells));
    write_csv(via_raw, aggregate(rebuilt));
    EXPECT_EQ(via_raw.str(), direct.str()) << spec.name;
  }
}

}  // namespace
}  // namespace reissue::exp
