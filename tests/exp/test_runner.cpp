#include "reissue/exp/runner.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>

#include "reissue/exp/aggregate.hpp"
#include "reissue/exp/registry.hpp"

namespace reissue::exp {
namespace {

std::vector<ScenarioSpec> tiny_scenarios() {
  ScenarioSpec spec;
  spec.name = "tiny-q30";
  spec.kind = WorkloadKind::kQueueing;
  spec.servers = 4;
  spec.queries = 1200;
  spec.warmup = 120;
  spec.percentile = 0.95;
  spec.policies = {parse_policy_spec("none"), parse_policy_spec("r:20:0.5")};
  ScenarioSpec other = spec;
  other.name = "tiny-q60";
  other.utilization = 0.60;
  return {spec, other};
}

std::string sweep_csv(const std::vector<ScenarioSpec>& scenarios,
                      SweepOptions options) {
  std::ostringstream os;
  write_csv(os, aggregate(run_sweep(scenarios, options)));
  return os.str();
}

TEST(ReplicationSeed, DeterministicAndDistinct) {
  const auto a = replication_seed(1, "s", 0);
  EXPECT_EQ(a, replication_seed(1, "s", 0));
  EXPECT_NE(a, replication_seed(1, "s", 1));
  EXPECT_NE(a, replication_seed(2, "s", 0));
  EXPECT_NE(a, replication_seed(1, "t", 0));
}

TEST(RunSweep, CellLayoutIsScenarioMajor) {
  SweepOptions options;
  options.replications = 2;
  const auto cells = run_sweep(tiny_scenarios(), options);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].scenario, "tiny-q30");
  EXPECT_EQ(cells[0].policy, "none");
  EXPECT_EQ(cells[1].scenario, "tiny-q30");
  EXPECT_EQ(cells[1].policy, "r:20:0.5");
  EXPECT_EQ(cells[2].scenario, "tiny-q60");
  EXPECT_EQ(cells[3].scenario, "tiny-q60");
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.replications.size(), 2u);
    EXPECT_DOUBLE_EQ(cell.percentile, 0.95);
  }
}

TEST(RunSweep, BitIdenticalAcrossThreadCounts) {
  const auto scenarios = tiny_scenarios();
  SweepOptions options;
  options.replications = 3;
  options.seed = 0xabc;

  options.threads = 1;
  const std::string serial = sweep_csv(scenarios, options);
  options.threads = 2;
  EXPECT_EQ(sweep_csv(scenarios, options), serial);
  options.threads = 8;
  EXPECT_EQ(sweep_csv(scenarios, options), serial);
  // And across repeated runs with the same root seed.
  EXPECT_EQ(sweep_csv(scenarios, options), serial);
}

TEST(RunSweep, RootSeedChangesResults) {
  const auto scenarios = tiny_scenarios();
  SweepOptions options;
  options.replications = 2;
  options.seed = 1;
  const std::string a = sweep_csv(scenarios, options);
  options.seed = 2;
  EXPECT_NE(sweep_csv(scenarios, options), a);
}

TEST(RunSweep, PoliciesShareReplicationSeeds) {
  // Common random numbers: every policy of a scenario sees the same
  // per-replication seed, so policy comparisons are paired.
  SweepOptions options;
  options.replications = 3;
  const auto cells = run_sweep(tiny_scenarios(), options);
  for (std::size_t r = 0; r < options.replications; ++r) {
    EXPECT_EQ(cells[0].replications[r].seed, cells[1].replications[r].seed);
    EXPECT_EQ(cells[2].replications[r].seed, cells[3].replications[r].seed);
    EXPECT_EQ(cells[0].replications[r].seed,
              replication_seed(options.seed, "tiny-q30", r));
  }
  // Distinct replications draw distinct streams with distinct outcomes.
  EXPECT_NE(cells[0].replications[0].seed, cells[0].replications[1].seed);
  EXPECT_NE(cells[0].replications[0].tail, cells[0].replications[1].tail);
}

TEST(RunSweep, ReissuePoliciesActuallyReissue) {
  SweepOptions options;
  options.replications = 2;
  const auto cells = run_sweep(tiny_scenarios(), options);
  for (const auto& rep : cells[0].replications) {
    EXPECT_DOUBLE_EQ(rep.reissue_rate, 0.0);  // baseline cell
  }
  for (const auto& rep : cells[1].replications) {
    EXPECT_GT(rep.reissue_rate, 0.0);
    EXPECT_GT(rep.outstanding_at_delay, 0.0);
    EXPECT_EQ(rep.policy, core::ReissuePolicy::single_r(20.0, 0.5));
  }
}

TEST(RunSweep, TunedPolicyResolvesPerReplication) {
  auto scenarios = tiny_scenarios();
  scenarios.resize(1);
  scenarios[0].policies = {parse_policy_spec("tuned-r:0.2:2")};
  SweepOptions options;
  options.replications = 2;
  options.threads = 2;
  const auto cells = run_sweep(scenarios, options);
  ASSERT_EQ(cells.size(), 1u);
  for (const auto& rep : cells[0].replications) {
    EXPECT_EQ(rep.policy.stage_count(), 1u);
    EXPECT_GT(rep.reissue_rate, 0.0);
  }
}

TEST(TrainingSeed, DeterministicAndDistinctFromReplicationSeed) {
  const std::uint64_t rep = replication_seed(1, "s", 0);
  EXPECT_EQ(training_seed(rep), training_seed(rep));
  EXPECT_NE(training_seed(rep), rep);
  EXPECT_NE(training_seed(rep), training_seed(replication_seed(1, "s", 1)));
}

TEST(RunSweep, OptimalPolicyResolvesPerReplication) {
  // The §4.1/§4.2 loop: train -> optimize -> measure.  Every replication
  // must resolve to a concrete single-stage policy that spends budget.
  auto scenarios = tiny_scenarios();
  scenarios.resize(1);
  scenarios[0].policies = {parse_policy_spec("optimal:0.2"),
                           parse_policy_spec("optimal:0.2:corr"),
                           parse_policy_spec("optimal-d:0.2")};
  SweepOptions options;
  options.replications = 2;
  options.threads = 2;
  const auto cells = run_sweep(scenarios, options);
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& cell : cells) {
    for (const auto& rep : cell.replications) {
      ASSERT_EQ(rep.policy.stage_count(), 1u) << cell.policy;
      EXPECT_GT(rep.reissue_rate, 0.0) << cell.policy;
      EXPECT_GE(rep.policy.delay(), 0.0) << cell.policy;
      EXPECT_GT(rep.policy.probability(), 0.0) << cell.policy;
    }
  }
  // Distinct training substreams resolve distinct policies across
  // replications (the optimizer really runs per replication).
  EXPECT_NE(cells[0].replications[0].policy, cells[0].replications[1].policy);
  // The deadline variant pins q = 1 (Eq. (2) is deterministic).
  for (const auto& rep : cells[2].replications) {
    EXPECT_DOUBLE_EQ(rep.policy.probability(), 1.0);
  }
}

TEST(RunSweep, OptimalPolicyChoiceIsPinnedPerSeed) {
  // Determinism contract: for a given (root seed, scenario, replication)
  // the optimizer's chosen (d, q) is a pure function -- identical across
  // repeated runs and every thread count.
  auto scenarios = tiny_scenarios();
  scenarios.resize(1);
  scenarios[0].policies = {parse_policy_spec("optimal:0.2:corr")};
  SweepOptions options;
  options.replications = 3;
  options.seed = 0xfeed;

  options.threads = 1;
  const auto serial = run_sweep(scenarios, options);
  options.threads = 8;
  const auto parallel = run_sweep(scenarios, options);
  const auto again = run_sweep(scenarios, options);
  for (std::size_t r = 0; r < options.replications; ++r) {
    const auto& chosen = serial[0].replications[r].policy;
    EXPECT_EQ(chosen, parallel[0].replications[r].policy);
    EXPECT_EQ(chosen, again[0].replications[r].policy);
    EXPECT_DOUBLE_EQ(serial[0].replications[r].tail,
                     parallel[0].replications[r].tail);
  }
}

TEST(RunSweep, OptimalSweepIsBitIdenticalAcrossThreadCounts) {
  auto scenarios = tiny_scenarios();
  scenarios[0].policies = {parse_policy_spec("none"),
                           parse_policy_spec("optimal:0.1"),
                           parse_policy_spec("optimal:0.1:corr")};
  scenarios[1].policies = {parse_policy_spec("optimal-d:0.1:train=500")};
  SweepOptions options;
  options.replications = 2;
  options.seed = 0xabc;
  options.threads = 1;
  const std::string serial = sweep_csv(scenarios, options);
  options.threads = 8;
  EXPECT_EQ(sweep_csv(scenarios, options), serial);
}

TEST(RunSweep, OptimalTrainCapChangesTheChosenPolicy) {
  // train=N slices the training logs, so a tight cap must be able to move
  // the optimum; determinism per cap still holds.
  auto scenarios = tiny_scenarios();
  scenarios.resize(1);
  scenarios[0].policies = {parse_policy_spec("optimal:0.2"),
                           parse_policy_spec("optimal:0.2:train=64")};
  SweepOptions options;
  options.replications = 2;
  const auto cells = run_sweep(scenarios, options);
  ASSERT_EQ(cells.size(), 2u);
  bool any_difference = false;
  for (std::size_t r = 0; r < options.replications; ++r) {
    any_difference |= cells[0].replications[r].policy !=
                      cells[1].replications[r].policy;
  }
  EXPECT_TRUE(any_difference);
}

TEST(RunSweep, PercentileOverrideApplies) {
  SweepOptions options;
  options.replications = 1;
  options.percentile = 0.5;
  const auto cells = run_sweep(tiny_scenarios(), options);
  for (const auto& cell : cells) EXPECT_DOUBLE_EQ(cell.percentile, 0.5);
}

TEST(RunSweep, StreamingModeApproximatesFullMode) {
  auto scenarios = tiny_scenarios();
  scenarios.resize(1);
  SweepOptions options;
  options.replications = 2;

  options.log_mode = core::LogMode::kFull;
  const auto full = run_sweep(scenarios, options);
  options.log_mode = core::LogMode::kStreaming;
  const auto streaming = run_sweep(scenarios, options);

  ASSERT_EQ(full.size(), streaming.size());
  for (std::size_t c = 0; c < full.size(); ++c) {
    for (std::size_t r = 0; r < options.replications; ++r) {
      const auto& f = full[c].replications[r];
      const auto& s = streaming[c].replications[r];
      // The histogram tail estimate is within its configured relative
      // error of the exact sorted percentile.
      EXPECT_NEAR(s.tail, f.tail, f.tail * 3e-3) << full[c].policy;
      // Identical observation order: the P² sketch agrees exactly, the
      // remaining metrics up to accumulation order.
      EXPECT_DOUBLE_EQ(s.tail_psquare, f.tail_psquare);
      EXPECT_NEAR(s.mean_latency, f.mean_latency,
                  1e-9 * (1.0 + f.mean_latency));
      EXPECT_DOUBLE_EQ(s.reissue_rate, f.reissue_rate);
      EXPECT_DOUBLE_EQ(s.utilization, f.utilization);
      EXPECT_NEAR(s.outstanding_at_delay, f.outstanding_at_delay, 1e-12);
    }
  }
}

TEST(RunSweep, FullModeAlsoBitIdenticalAcrossThreadCounts) {
  const auto scenarios = tiny_scenarios();
  SweepOptions options;
  options.replications = 2;
  options.log_mode = core::LogMode::kFull;
  options.threads = 1;
  const std::string serial = sweep_csv(scenarios, options);
  options.threads = 8;
  EXPECT_EQ(sweep_csv(scenarios, options), serial);
}

TEST(RunCellReplication, IsTheSweepUnitOfWork) {
  // The public per-cell entry point (what bench/micro_sim measures) agrees
  // with what run_sweep records for the same seed.
  auto scenarios = tiny_scenarios();
  scenarios.resize(1);
  SweepOptions options;
  options.replications = 1;
  const auto cells = run_sweep(scenarios, options);

  auto system = make_system(scenarios[0], /*seed=*/0);  // rebuilt below
  const std::uint64_t seed =
      replication_seed(options.seed, scenarios[0].name, 0);
  // Reconstruct exactly as the worker does: construction seed is derived
  // internally, so rebuild through run_sweep's contract (reseed).
  ASSERT_TRUE(system->reseed(seed));
  const auto metrics = run_cell_replication(
      *system, scenarios[0].policies[0], scenarios[0].percentile, seed,
      options.log_mode);
  EXPECT_EQ(metrics.seed, cells[0].replications[0].seed);
  EXPECT_DOUBLE_EQ(metrics.tail, cells[0].replications[0].tail);
}

TEST(RunSweep, RejectsDegenerateInputs) {
  SweepOptions options;
  options.replications = 0;
  EXPECT_THROW(run_sweep(tiny_scenarios(), options), std::invalid_argument);
  options.replications = 1;
  ScenarioSpec no_policies;
  no_policies.name = "empty";
  EXPECT_THROW(run_sweep({no_policies}, options), std::invalid_argument);
}

TEST(RunSweep, RejectsDuplicateScenarioNames) {
  // Seed substreams key on the scenario name: duplicates would share RNG
  // streams and emit indistinguishable CSV rows.
  auto scenarios = tiny_scenarios();
  scenarios[1].name = scenarios[0].name;
  SweepOptions options;
  options.replications = 1;
  EXPECT_THROW(run_sweep(scenarios, options), std::invalid_argument);
}

TEST(RunSweep, WorkerExceptionsPropagate) {
  ScenarioSpec bad;
  bad.name = "bad";
  bad.service = "constant:0";  // zero service mean -> arrival rate blows up
  bad.service_cap = 0.0;
  bad.policies = {parse_policy_spec("none")};
  SweepOptions options;
  options.replications = 2;
  options.threads = 2;
  EXPECT_THROW((void)run_sweep({bad}, options), std::exception);
}

// ------------------------------------------- overload regime matrix

/// libm sentinels for the golden CSV hash (same idiom as
/// tests/sim/test_cluster_golden.cpp: pow/log bit patterns vary across
/// libm builds, so "identical to the recorded baseline" is only
/// observable on the baseline libm).
bool libm_matches_baseline() {
  const double a = std::pow(0.7366218546322401, -1.0 / 1.1);
  const double b = std::log(0.1234567890123456789);
  return std::bit_cast<std::uint64_t>(a) == 0x3ff5201fdad96895ull &&
         std::bit_cast<std::uint64_t>(b) == 0xc000bc233ad9edd6ull;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// The registry's flip scenarios with the grid cut to the two policies the
/// sign-flip is defined over (dropping optimal:* keeps the test free of
/// per-replication training runs).
std::vector<ScenarioSpec> flip_scenarios() {
  std::vector<ScenarioSpec> specs =
      ScenarioRegistry::built_in().resolve("overload-flip-under,overload-flip");
  for (auto& spec : specs) {
    spec.policies = {parse_policy_spec("none"),
                     parse_policy_spec("immediate:1")};
  }
  return specs;
}

TEST(OverloadFlip, ReissueHelpsInUnderloadAndHurtsInOverload) {
  // The paper's central caveat as a pinned artifact: the same immediate:1
  // policy that cuts p99 at util 0.35 (effective ~0.7 with the doubled
  // load) degrades it at util 0.62 (effective past saturation).
  SweepOptions options;
  options.replications = 4;
  options.threads = 2;
  options.seed = 0x5eed;
  const auto stats = aggregate(run_sweep(flip_scenarios(), options));
  ASSERT_EQ(stats.size(), 4u);
  ASSERT_EQ(stats[0].scenario, "overload-flip-under");
  ASSERT_EQ(stats[0].policy, "none");
  ASSERT_EQ(stats[1].policy, "immediate:1");
  ASSERT_EQ(stats[2].scenario, "overload-flip");
  // Underload: reissue cuts the tail.
  EXPECT_LT(stats[1].tail.mean, stats[0].tail.mean);
  // Overload: the same policy poisons it.
  EXPECT_GT(stats[3].tail.mean, stats[2].tail.mean);
  // And the load doubling is real: immediate:1 drives utilization up.
  EXPECT_GT(stats[1].utilization, 1.5 * stats[0].utilization);
}

TEST(OverloadFlip, PerCellResultsAreGolden) {
  if (!libm_matches_baseline()) {
    GTEST_SKIP() << "different libm than the recorded golden baseline";
  }
  SweepOptions options;
  options.replications = 2;
  options.threads = 2;
  options.seed = 0x5eed;
  const std::string csv = sweep_csv(flip_scenarios(), options);
  EXPECT_EQ(fnv1a(csv), 0x77c748e7e17058c1ull) << csv;
}


/// The registry's fan-out flip pair plus "solo" twins with the sibling
/// group stripped: same arrival stream, same service draws, so the tail
/// difference in each load regime isolates what redundancy contributes.
std::vector<ScenarioSpec> fanout_flip_scenarios() {
  const std::vector<ScenarioSpec> flips = ScenarioRegistry::built_in().resolve(
      "fanout-flip-under,fanout-flip-over");
  std::vector<ScenarioSpec> all;
  for (const ScenarioSpec& spec : flips) {
    all.push_back(spec);
    ScenarioSpec solo = spec;
    solo.name = spec.name + "-solo";
    solo.fanout = FanoutSpec{};
    all.push_back(solo);
  }
  return all;
}

TEST(FanoutFlip, RedundancyHelpsAtLowLoadAndHurtsInOverload) {
  // The load-dependent sign of redundancy, as a pinned artifact: a 3-wide
  // replicated group takes the min of three heavy-tailed draws (big tail
  // win) but triples the offered load.  At util 0.12 the tripled load
  // still fits and the min dominates; at util 0.42 the same group drives
  // the cluster past saturation and redundancy poisons the tail.
  SweepOptions options;
  options.replications = 4;
  options.threads = 2;
  options.seed = 0x5eed;
  const auto stats = aggregate(run_sweep(fanout_flip_scenarios(), options));
  ASSERT_EQ(stats.size(), 4u);
  ASSERT_EQ(stats[0].scenario, "fanout-flip-under");
  ASSERT_EQ(stats[1].scenario, "fanout-flip-under-solo");
  ASSERT_EQ(stats[2].scenario, "fanout-flip-over");
  ASSERT_EQ(stats[3].scenario, "fanout-flip-over-solo");
  // Low load: replication cuts the tail.
  EXPECT_LT(stats[0].tail.mean, stats[1].tail.mean);
  // Overload: the same group shape inflates it.
  EXPECT_GT(stats[2].tail.mean, stats[3].tail.mean);
  // And the load multiplication is real: the group triples utilization.
  EXPECT_GT(stats[0].utilization, 2.0 * stats[1].utilization);
}

/// The three fan-out shapes the registry pins, downsized for golden runs.
std::vector<ScenarioSpec> fanout_shape_scenarios() {
  std::vector<ScenarioSpec> specs = ScenarioRegistry::built_in().resolve(
      "fanout-replicated,fanout-ec,partition-aggregate");
  for (ScenarioSpec& spec : specs) {
    spec.queries = 1500;
    spec.warmup = 150;
  }
  return specs;
}

TEST(FanoutMatrix, PerCellResultsAreGoldenInBothMetricModes) {
  if (!libm_matches_baseline()) {
    GTEST_SKIP() << "different libm than the recorded golden baseline";
  }
  SweepOptions options;
  options.replications = 2;
  options.threads = 2;
  options.seed = 0x5eed;
  options.log_mode = core::LogMode::kStreaming;
  EXPECT_EQ(fnv1a(sweep_csv(fanout_shape_scenarios(), options)),
            0x5e4b6e21fdfe44dbull);
  options.log_mode = core::LogMode::kStreamingUnordered;
  EXPECT_EQ(fnv1a(sweep_csv(fanout_shape_scenarios(), options)),
            0x152974fb3ff06575ull);
}

TEST(RunSweep, RegistryWideBitIdenticalAcrossThreadCounts) {
  // The thread-identity contract over the whole registry — sim-all
  // carries every fan-out scenario, so the sibling-group event core is
  // covered here, not just the tiny fixtures above.
  std::vector<ScenarioSpec> scenarios =
      ScenarioRegistry::built_in().resolve("sim-all");
  for (ScenarioSpec& spec : scenarios) {
    spec.queries = 600;
    spec.warmup = 60;
  }
  SweepOptions options;
  options.replications = 2;
  options.seed = 0x5eed;
  options.threads = 1;
  const std::string serial = sweep_csv(scenarios, options);
  options.threads = 2;
  EXPECT_EQ(sweep_csv(scenarios, options), serial);
  options.threads = 8;
  EXPECT_EQ(sweep_csv(scenarios, options), serial);
}

}  // namespace
}  // namespace reissue::exp
