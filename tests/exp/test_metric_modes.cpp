// Sweep-level contracts of the completion-order metric mode
// (core::LogMode::kStreamingUnordered, the runner's default): registry-wide
// equivalence against the replay-order reference, agreement with full-log
// exact percentiles within the streaming histogram's relative-error bound,
// and bit-identical output across thread counts.
//
// Equivalence claim (what CI's mode-diff job also checks on the CSV): the
// two streaming modes feed identical observation multisets into identical
// accumulators, so every aggregate is bit-identical EXCEPT the two
// order-sensitive ones — the P² sketch column and the FP-summation mean —
// which are still deterministic per seed.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "reissue/exp/aggregate.hpp"
#include "reissue/exp/registry.hpp"
#include "reissue/exp/runner.hpp"
#include "reissue/exp/scenario.hpp"

namespace reissue::exp {
namespace {

std::vector<ScenarioSpec> tiny_scenarios() {
  ScenarioSpec spec;
  spec.name = "tiny-q30";
  spec.kind = WorkloadKind::kQueueing;
  spec.servers = 4;
  spec.queries = 1200;
  spec.warmup = 120;
  spec.percentile = 0.95;
  spec.policies = {parse_policy_spec("none"), parse_policy_spec("r:20:0.5")};
  ScenarioSpec other = spec;
  other.name = "tiny-q60";
  other.utilization = 0.60;
  return {spec, other};
}

std::string sweep_csv(const std::vector<ScenarioSpec>& scenarios,
                      SweepOptions options) {
  std::ostringstream os;
  write_csv(os, aggregate(run_sweep(scenarios, options)));
  return os.str();
}

/// The whole built-in registry, shrunk to test scale: every workload kind
/// (infinite-server, queueing at all loads, overload, bursty,
/// heterogeneous, interference, optimizer-in-the-loop, Redis-like and
/// Lucene-like substrates) with its policy grid intact.
std::vector<ScenarioSpec> shrunk_registry() {
  std::vector<ScenarioSpec> scenarios;
  for (ScenarioSpec spec : ScenarioRegistry::built_in().scenarios()) {
    spec.queries = 2000;
    spec.warmup = 200;
    scenarios.push_back(std::move(spec));
  }
  return scenarios;
}

TEST(MetricModesSweep, RegistryWideCompletionMatchesReplay) {
  const auto scenarios = shrunk_registry();
  SweepOptions options;
  options.replications = 2;
  options.threads = 4;
  options.seed = 0x715;

  options.log_mode = core::LogMode::kStreaming;
  const auto replay = run_sweep(scenarios, options);
  options.log_mode = core::LogMode::kStreamingUnordered;
  const auto completion = run_sweep(scenarios, options);

  ASSERT_EQ(completion.size(), replay.size());
  for (std::size_t c = 0; c < replay.size(); ++c) {
    SCOPED_TRACE(replay[c].scenario + " / " + replay[c].policy);
    EXPECT_EQ(completion[c].scenario, replay[c].scenario);
    EXPECT_EQ(completion[c].policy, replay[c].policy);
    ASSERT_EQ(completion[c].replications.size(),
              replay[c].replications.size());
    for (std::size_t i = 0; i < replay[c].replications.size(); ++i) {
      const auto& r = replay[c].replications[i];
      const auto& u = completion[c].replications[i];
      EXPECT_EQ(u.seed, r.seed);
      EXPECT_EQ(u.policy, r.policy);  // tuning/training is mode-independent
      // Identical observation multiset -> identical histogram -> the tail
      // quantile agrees bit for bit (well inside the histogram's <= 0.1%
      // relative-error contract the ISSUE bounds it by).
      EXPECT_DOUBLE_EQ(u.tail, r.tail);
      // Count- and time-ratio metrics are order-insensitive: exact.
      EXPECT_DOUBLE_EQ(u.reissue_rate, r.reissue_rate);
      EXPECT_DOUBLE_EQ(u.remediation, r.remediation);
      EXPECT_DOUBLE_EQ(u.utilization, r.utilization);
      EXPECT_DOUBLE_EQ(u.outstanding_at_delay, r.outstanding_at_delay);
      // The FP-summation mean reassociates across orders: equal to within
      // accumulation roundoff, far below any decision threshold.
      EXPECT_NEAR(u.mean_latency, r.mean_latency,
                  1e-9 * std::abs(r.mean_latency) + 1e-12);
      // The P² sketch is the one genuinely order-sensitive estimator — at
      // deep percentiles on small samples the two orders can disagree by
      // integer factors, which is why the column carries no equivalence
      // claim (it has its own pinned baselines per mode instead).
      EXPECT_TRUE(std::isfinite(u.tail_psquare));
      EXPECT_GE(u.tail_psquare, 0.0);
    }
  }
}

TEST(MetricModesSweep, CompletionTailMatchesFullWithinHistogramBound) {
  // Against kFull's exact sorted percentiles, the completion-order tail
  // inherits the streaming histogram's documented relative-error bound
  // (<= 0.1%; 3e-3 leaves headroom for the quantile's own grid snap).
  const auto scenarios = tiny_scenarios();
  SweepOptions options;
  options.replications = 2;
  options.seed = 0x715;

  options.log_mode = core::LogMode::kFull;
  const auto full = run_sweep(scenarios, options);
  options.log_mode = core::LogMode::kStreamingUnordered;
  const auto completion = run_sweep(scenarios, options);

  ASSERT_EQ(completion.size(), full.size());
  for (std::size_t c = 0; c < full.size(); ++c) {
    for (std::size_t i = 0; i < full[c].replications.size(); ++i) {
      const auto& f = full[c].replications[i];
      const auto& u = completion[c].replications[i];
      EXPECT_NEAR(u.tail, f.tail, f.tail * 3e-3);
      EXPECT_DOUBLE_EQ(u.reissue_rate, f.reissue_rate);
      EXPECT_DOUBLE_EQ(u.utilization, f.utilization);
    }
  }
}

TEST(MetricModesSweep, CompletionModeBitIdenticalAcrossThreadCounts) {
  // Explicitly pins the new mode's schedule independence (the default-mode
  // thread test covers it today, but only because the default happens to
  // be kStreamingUnordered).
  const auto scenarios = tiny_scenarios();
  SweepOptions options;
  options.replications = 3;
  options.seed = 0xabc;
  options.log_mode = core::LogMode::kStreamingUnordered;

  options.threads = 1;
  const std::string serial = sweep_csv(scenarios, options);
  options.threads = 2;
  EXPECT_EQ(sweep_csv(scenarios, options), serial);
  options.threads = 8;
  EXPECT_EQ(sweep_csv(scenarios, options), serial);
  EXPECT_EQ(sweep_csv(scenarios, options), serial);
}

TEST(MetricModesSweep, RunCellReplicationHonorsUnorderedMode) {
  const auto scenarios = tiny_scenarios();
  auto system = make_system(scenarios[0], construction_seed(7, "tiny-q30"));
  const PolicySpec spec = parse_policy_spec("r:20:0.5");
  const std::uint64_t seed = replication_seed(7, "tiny-q30", 0);

  ASSERT_TRUE(system->reseed(seed));
  const auto replay = run_cell_replication(*system, spec, 0.95, seed,
                                           core::LogMode::kStreaming);
  ASSERT_TRUE(system->reseed(seed));
  const auto unordered = run_cell_replication(
      *system, spec, 0.95, seed, core::LogMode::kStreamingUnordered);

  EXPECT_DOUBLE_EQ(unordered.tail, replay.tail);
  EXPECT_DOUBLE_EQ(unordered.reissue_rate, replay.reissue_rate);
  EXPECT_DOUBLE_EQ(unordered.utilization, replay.utilization);
  EXPECT_TRUE(std::isfinite(unordered.tail_psquare));
  EXPECT_GT(unordered.tail_psquare, 0.0);
}

}  // namespace
}  // namespace reissue::exp
