#include "reissue/exp/aggregate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace reissue::exp {
namespace {

CellResult cell_with_tails(std::vector<double> tails) {
  CellResult cell;
  cell.scenario = "s";
  cell.policy = "none";
  cell.percentile = 0.99;
  for (std::size_t i = 0; i < tails.size(); ++i) {
    ReplicationMetrics rep;
    rep.seed = i;
    rep.tail = tails[i];
    rep.tail_psquare = tails[i] + 0.5;
    rep.mean_latency = 10.0 + static_cast<double>(i);
    rep.reissue_rate = 0.05;
    rep.policy = core::ReissuePolicy::single_r(20.0, 0.5);
    cell.replications.push_back(rep);
  }
  return cell;
}

TEST(Aggregate, MeanAndStudentTInterval) {
  const auto stats = aggregate_cell(cell_with_tails({1.0, 2.0, 3.0}));
  EXPECT_EQ(stats.replications, 3u);
  EXPECT_DOUBLE_EQ(stats.tail.mean, 2.0);
  // Sample stddev 1.0, so the 95% CI half-width is t_{0.975,2}/sqrt(3).
  EXPECT_NEAR(stats.tail.half_width, 4.303 / std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(stats.tail.lo(), 2.0 - stats.tail.half_width, 1e-12);
  EXPECT_NEAR(stats.tail.hi(), 2.0 + stats.tail.half_width, 1e-12);
  EXPECT_NEAR(stats.tail_psquare, 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(stats.delay.mean, 20.0);
  EXPECT_DOUBLE_EQ(stats.probability.mean, 0.5);
  // Identical resolved policies across replications: zero-width intervals.
  EXPECT_DOUBLE_EQ(stats.delay.half_width, 0.0);
  EXPECT_DOUBLE_EQ(stats.probability.half_width, 0.0);
}

TEST(Aggregate, ResolvedPolicyParametersGetConfidenceIntervals) {
  // Tuned/optimal specs resolve a different (d, q) per replication; the
  // aggregate reports their spread, not just the mean.
  CellResult cell = cell_with_tails({1.0, 2.0, 3.0});
  cell.replications[0].policy = core::ReissuePolicy::single_r(10.0, 0.2);
  cell.replications[1].policy = core::ReissuePolicy::single_r(20.0, 0.5);
  cell.replications[2].policy = core::ReissuePolicy::single_r(30.0, 0.8);
  const auto stats = aggregate_cell(cell);
  EXPECT_DOUBLE_EQ(stats.delay.mean, 20.0);
  EXPECT_NEAR(stats.delay.half_width, 4.303 * 10.0 / std::sqrt(3.0), 1e-6);
  EXPECT_NEAR(stats.delay.lo(), 20.0 - stats.delay.half_width, 1e-12);
  EXPECT_DOUBLE_EQ(stats.probability.mean, 0.5);
  EXPECT_GT(stats.probability.half_width, 0.0);
}

TEST(Aggregate, MultiStagePoliciesLeaveParameterColumnsZero) {
  CellResult cell = cell_with_tails({1.0, 2.0});
  for (auto& rep : cell.replications) {
    rep.policy = core::ReissuePolicy::double_r(1.0, 0.5, 2.0, 0.5);
  }
  const auto stats = aggregate_cell(cell);
  EXPECT_DOUBLE_EQ(stats.delay.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.delay.half_width, 0.0);
  EXPECT_DOUBLE_EQ(stats.probability.mean, 0.0);
}

TEST(Aggregate, SingleReplicationHasZeroWidthInterval) {
  const auto stats = aggregate_cell(cell_with_tails({7.0}));
  EXPECT_DOUBLE_EQ(stats.tail.mean, 7.0);
  EXPECT_DOUBLE_EQ(stats.tail.half_width, 0.0);
  EXPECT_DOUBLE_EQ(stats.tail_stddev, 0.0);
}

TEST(Aggregate, RejectsEmptyCells) {
  EXPECT_THROW(aggregate_cell(CellResult{}), std::invalid_argument);
}

TEST(Csv, HeaderNamesTailAndConfidenceColumns) {
  const std::string header = csv_header();
  for (const char* column :
       {"scenario", "policy", "tail_mean", "tail_ci_lo", "tail_ci_hi",
        "tail_p2", "reissue_rate", "delay_mean", "delay_ci_lo", "delay_ci_hi",
        "probability_mean", "probability_ci_lo", "probability_ci_hi"}) {
    EXPECT_NE(header.find(column), std::string::npos) << column;
  }
}

TEST(Csv, RowsAreStableAndParseable) {
  const auto stats = aggregate_cell(cell_with_tails({1.0, 2.0, 3.0}));
  const std::string row = csv_row(stats);
  EXPECT_EQ(row, csv_row(stats));  // formatting is deterministic
  EXPECT_EQ(row.rfind("s,none,0.99,3,2,", 0), 0u) << row;

  std::ostringstream os;
  write_csv(os, {stats, stats});
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // header + two cells
}

}  // namespace
}  // namespace reissue::exp
