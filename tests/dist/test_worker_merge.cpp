// End-to-end contract of the distributed sweep pipeline: shard workers +
// merge coordinator reproduce `exp::run_sweep` byte for byte, checkpoints
// resume without recomputation, and every tampering / mismatch path is
// rejected with a targeted error.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "reissue/dist/io.hpp"
#include "reissue/dist/manifest.hpp"
#include "reissue/dist/merge.hpp"
#include "reissue/dist/worker.hpp"
#include "reissue/exp/aggregate.hpp"

namespace reissue::dist {
namespace {

/// Fresh directory under the gtest temp root, removed on destruction.
/// The name includes the pid: ctest runs every test case in its own
/// process, so a process-local counter alone collides under ctest -j.
class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::path(::testing::TempDir()) /
            ("reissue_dist_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

/// Two tiny queueing scenarios x two policies: 4 cells, enough for shard
/// counts {1, 2, 5} to cover lopsided and empty shards.
std::vector<exp::ScenarioSpec> tiny_scenarios() {
  exp::ScenarioSpec spec;
  spec.name = "tiny-q30";
  spec.kind = exp::WorkloadKind::kQueueing;
  spec.servers = 4;
  spec.queries = 800;
  spec.warmup = 80;
  spec.percentile = 0.95;
  spec.policies = {exp::parse_policy_spec("none"),
                   exp::parse_policy_spec("r:20:0.5")};
  exp::ScenarioSpec other = spec;
  other.name = "tiny-q60";
  other.utilization = 0.60;
  return {spec, other};
}

exp::SweepOptions sweep_options() {
  exp::SweepOptions options;
  options.replications = 3;
  options.threads = 2;
  options.seed = 0xabc;
  return options;
}

std::string aggregate_csv(const std::vector<exp::CellResult>& cells) {
  std::ostringstream os;
  exp::write_csv(os, exp::aggregate(cells));
  return os.str();
}

/// Runs every shard of an N-way split into `dir` and returns the raw paths.
std::vector<std::string> run_all_shards(const TempDir& dir, std::size_t n,
                                        const exp::SweepOptions& options) {
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < n; ++i) {
    WorkerOptions worker;
    worker.shard = ShardRef{i, n};
    worker.raw_output =
        dir.file("s" + std::to_string(i) + "of" + std::to_string(n) + ".csv");
    worker.sweep = options;
    const WorkerReport report = run_shard(tiny_scenarios(), worker);
    EXPECT_TRUE(report.finished);
    EXPECT_EQ(report.cells_run, report.cells_total);
    paths.push_back(worker.raw_output);
  }
  return paths;
}

TEST(ShardedSweep, MergeIsByteIdenticalToSingleProcessForAnyShardCount) {
  const auto scenarios = tiny_scenarios();
  const auto options = sweep_options();
  auto serial = options;
  serial.threads = 1;
  const std::string expected = aggregate_csv(exp::run_sweep(scenarios, serial));

  TempDir dir;
  for (const std::size_t n : {1u, 2u, 5u}) {
    const auto paths = run_all_shards(dir, n, options);
    const MergeReport report = merge_shards(paths);
    EXPECT_EQ(report.shards, n);
    EXPECT_EQ(aggregate_csv(report.cells), expected) << n << " shards";
  }
}

TEST(ShardedSweep, CompletionModeThreeShardMergeIsByteIdentical) {
  // The completion-order metric mode (the sweep default) pinned
  // explicitly: a 3-shard split must reproduce the single-process sweep
  // byte for byte, and every shard manifest must carry the "completion"
  // log-mode token so mixed-mode merges are rejected by fingerprint.
  const auto scenarios = tiny_scenarios();
  auto options = sweep_options();
  options.log_mode = core::LogMode::kStreamingUnordered;
  auto serial = options;
  serial.threads = 1;
  const std::string expected = aggregate_csv(exp::run_sweep(scenarios, serial));

  TempDir dir;
  const auto paths = run_all_shards(dir, 3, options);
  for (const auto& path : paths) {
    const Manifest m = parse_manifest(read_file(manifest_path(path)));
    EXPECT_EQ(m.log_mode, core::LogMode::kStreamingUnordered);
  }
  const MergeReport report = merge_shards(paths);
  EXPECT_EQ(report.shards, 3u);
  EXPECT_EQ(report.options.log_mode, core::LogMode::kStreamingUnordered);
  EXPECT_EQ(aggregate_csv(report.cells), expected);
}

TEST(ShardedSweep, OptimalPolicyCellsMergeByteIdenticalToSingleProcess) {
  // Optimizer-in-the-loop cells (policy=optimal:*) train per replication;
  // the chosen (d, q) travels through the raw CSV's resolved_policy token
  // and delay/probability columns, so a 3-shard merge must reproduce the
  // single-process sweep byte for byte like any fixed-policy cell.
  auto scenarios = tiny_scenarios();
  scenarios[0].policies = {exp::parse_policy_spec("none"),
                           exp::parse_policy_spec("optimal:0.2"),
                           exp::parse_policy_spec("optimal:0.2:corr")};
  scenarios[1].policies = {exp::parse_policy_spec("optimal-d:0.2:train=400")};
  const auto options = sweep_options();
  auto serial = options;
  serial.threads = 1;
  const std::string expected =
      aggregate_csv(exp::run_sweep(scenarios, serial));

  TempDir dir;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < 3; ++i) {
    WorkerOptions worker;
    worker.shard = ShardRef{i, 3};
    worker.raw_output = dir.file("opt" + std::to_string(i) + ".csv");
    worker.sweep = options;
    const WorkerReport report = run_shard(scenarios, worker);
    EXPECT_TRUE(report.finished);
    paths.push_back(worker.raw_output);
  }
  const MergeReport report = merge_shards(paths);
  EXPECT_EQ(report.shards, 3u);
  EXPECT_EQ(aggregate_csv(report.cells), expected);
}

TEST(ShardedSweep, SingleShardRawFileMatchesInMemorySweep) {
  const auto scenarios = tiny_scenarios();
  const auto options = sweep_options();
  TempDir dir;
  const auto paths = run_all_shards(dir, 1, options);

  std::ostringstream expected;
  exp::write_raw_csv(expected, exp::run_sweep(scenarios, options));
  EXPECT_EQ(read_file(paths[0]), expected.str());
}

TEST(ShardedSweep, MergeReconstructsScenariosAndOptions) {
  TempDir dir;
  const auto options = sweep_options();
  const auto paths = run_all_shards(dir, 2, options);
  const MergeReport report = merge_shards(paths);
  EXPECT_EQ(report.scenarios, tiny_scenarios());
  EXPECT_EQ(report.options.replications, options.replications);
  EXPECT_EQ(report.options.seed, options.seed);
  EXPECT_EQ(report.rows, 4u * options.replications);
}

TEST(Worker, EmptyShardProducesHeaderOnlyFileThatStillMerges) {
  // 5 shards over 4 cells: at least one shard owns nothing.
  TempDir dir;
  const auto paths = run_all_shards(dir, 5, sweep_options());
  bool saw_empty = false;
  for (const auto& path : paths) {
    const Manifest m = parse_manifest(read_file(manifest_path(path)));
    if (m.rows == 0) {
      saw_empty = true;
      EXPECT_EQ(read_file(path), exp::raw_csv_header() + "\n");
    }
  }
  EXPECT_TRUE(saw_empty);
  EXPECT_EQ(merge_shards(paths).cells.size(), 4u);
}

TEST(Worker, ResumesFromJournalAndReproducesTheFileByteForByte) {
  TempDir dir;
  const auto options = sweep_options();

  WorkerOptions uninterrupted;
  uninterrupted.shard = ShardRef{0, 1};
  uninterrupted.raw_output = dir.file("full.csv");
  uninterrupted.sweep = options;
  (void)run_shard(tiny_scenarios(), uninterrupted);

  WorkerOptions interrupted = uninterrupted;
  interrupted.raw_output = dir.file("resumed.csv");
  interrupted.max_new_cells = 1;
  WorkerReport first = run_shard(tiny_scenarios(), interrupted);
  EXPECT_FALSE(first.finished);
  EXPECT_EQ(first.cells_run, 1u);
  EXPECT_TRUE(std::filesystem::exists(journal_path(interrupted.raw_output)));
  EXPECT_FALSE(std::filesystem::exists(interrupted.raw_output));

  // Second interrupted leg: picks up the checkpoint, advances by one.
  WorkerReport second = run_shard(tiny_scenarios(), interrupted);
  EXPECT_FALSE(second.finished);
  EXPECT_EQ(second.cells_resumed, 1u);
  EXPECT_EQ(second.cells_run, 1u);

  // Final leg runs only the remaining cells and must emit the exact bytes
  // (raw file AND manifest) of the uninterrupted run.
  interrupted.max_new_cells = 0;
  WorkerReport last = run_shard(tiny_scenarios(), interrupted);
  EXPECT_TRUE(last.finished);
  EXPECT_EQ(last.cells_resumed, 2u);
  EXPECT_EQ(last.cells_run, 2u);
  EXPECT_FALSE(std::filesystem::exists(journal_path(interrupted.raw_output)));
  EXPECT_EQ(read_file(interrupted.raw_output),
            read_file(uninterrupted.raw_output));
  EXPECT_EQ(read_file(manifest_path(interrupted.raw_output)),
            read_file(manifest_path(uninterrupted.raw_output)));
}

TEST(Worker, DiscardsAPartialTrailingCellInTheJournal) {
  TempDir dir;
  WorkerOptions worker;
  worker.shard = ShardRef{0, 1};
  worker.raw_output = dir.file("killed.csv");
  worker.sweep = sweep_options();
  worker.max_new_cells = 1;
  (void)run_shard(tiny_scenarios(), worker);

  // Simulate a kill mid-cell: rows hit the journal but no marker did.
  {
    std::ofstream out(journal_path(worker.raw_output), std::ios::app);
    out << "tiny-q30,r:20:0.5,0.95,1,0,42,r:20:0.5,1,1,1,0.1,0,0.5,0.2\n";
  }
  worker.max_new_cells = 0;
  const WorkerReport report = run_shard(tiny_scenarios(), worker);
  EXPECT_TRUE(report.finished);
  EXPECT_EQ(report.cells_resumed, 1u);
  EXPECT_EQ(report.cells_run, 3u);  // the partial cell was recomputed

  WorkerOptions reference = worker;
  reference.raw_output = dir.file("reference.csv");
  (void)run_shard(tiny_scenarios(), reference);
  EXPECT_EQ(read_file(worker.raw_output), read_file(reference.raw_output));
}

TEST(Worker, ResumesTwiceAcrossAPartialTail) {
  // Regression: resuming once past a partial tail used to append the new
  // cell behind the stale rows, wedging every later resume.
  TempDir dir;
  WorkerOptions worker;
  worker.shard = ShardRef{0, 1};
  worker.raw_output = dir.file("twice.csv");
  worker.sweep = sweep_options();
  worker.max_new_cells = 1;
  (void)run_shard(tiny_scenarios(), worker);
  {
    std::ofstream out(journal_path(worker.raw_output), std::ios::app);
    out << "partial,row,from,a,killed,cell\n";
  }
  // Interrupted again mid-sweep, then once more with another kill tail.
  (void)run_shard(tiny_scenarios(), worker);
  {
    std::ofstream out(journal_path(worker.raw_output), std::ios::app);
    out << "another,partial,tail\n";
  }
  worker.max_new_cells = 0;
  const WorkerReport report = run_shard(tiny_scenarios(), worker);
  EXPECT_TRUE(report.finished);
  EXPECT_EQ(report.cells_resumed, 2u);

  WorkerOptions reference = worker;
  reference.raw_output = dir.file("reference.csv");
  (void)run_shard(tiny_scenarios(), reference);
  EXPECT_EQ(read_file(worker.raw_output), read_file(reference.raw_output));
}

TEST(Worker, RejectsAJournalFromADifferentSweep) {
  TempDir dir;
  WorkerOptions worker;
  worker.shard = ShardRef{0, 1};
  worker.raw_output = dir.file("shard.csv");
  worker.sweep = sweep_options();
  worker.max_new_cells = 1;
  (void)run_shard(tiny_scenarios(), worker);

  worker.sweep.seed += 1;
  worker.max_new_cells = 0;
  try {
    (void)run_shard(tiny_scenarios(), worker);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos)
        << e.what();
  }
}

TEST(Worker, RejectsCorruptedJournalRows) {
  TempDir dir;
  WorkerOptions worker;
  worker.shard = ShardRef{0, 1};
  worker.raw_output = dir.file("shard.csv");
  worker.sweep = sweep_options();
  worker.max_new_cells = 1;
  (void)run_shard(tiny_scenarios(), worker);

  // Corrupt a committed row (under a cell-done marker): that is data
  // corruption, not a kill artifact, and must not be silently recomputed.
  const std::string path = journal_path(worker.raw_output);
  std::string journal = read_file(path);
  journal.replace(journal.find("tiny-q30"), 8, "wrecked!");
  atomic_write_file(path, journal);
  worker.max_new_cells = 0;
  EXPECT_THROW((void)run_shard(tiny_scenarios(), worker), std::runtime_error);
}

TEST(Merge, RejectsMissingAndDuplicateShards) {
  TempDir dir;
  const auto paths = run_all_shards(dir, 2, sweep_options());
  try {
    (void)merge_shards({paths[0]});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("missing shard 1/2"),
              std::string::npos)
        << e.what();
  }
  try {
    (void)merge_shards({paths[0], paths[0]});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate shard"),
              std::string::npos)
        << e.what();
  }
}

TEST(Merge, RejectsShardsFromDifferentSweeps) {
  TempDir dir;
  auto options = sweep_options();
  WorkerOptions a;
  a.shard = ShardRef{0, 2};
  a.raw_output = dir.file("a.csv");
  a.sweep = options;
  (void)run_shard(tiny_scenarios(), a);
  WorkerOptions b;
  b.shard = ShardRef{1, 2};
  b.raw_output = dir.file("b.csv");
  b.sweep = options;
  b.sweep.seed += 1;  // different sweep
  (void)run_shard(tiny_scenarios(), b);

  try {
    (void)merge_shards({a.raw_output, b.raw_output});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos)
        << e.what();
  }
}

/// tiny_scenarios with a sibling-group plan: the fanout= token rides in
/// each manifest's scenario lines, so group shape is part of the sweep
/// identity the merge coordinator checks.
std::vector<exp::ScenarioSpec> tiny_fanout_scenarios(const char* token) {
  std::vector<exp::ScenarioSpec> specs = tiny_scenarios();
  for (exp::ScenarioSpec& spec : specs) {
    spec.fanout = exp::parse_fanout_spec(token);
  }
  return specs;
}

TEST(ShardedSweep, FanoutShardsMergeByteIdenticalToSingleProcess) {
  const auto scenarios = tiny_fanout_scenarios("3:2:spread");
  const auto options = sweep_options();
  auto serial = options;
  serial.threads = 1;
  const std::string expected = aggregate_csv(exp::run_sweep(scenarios, serial));

  TempDir dir;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < 3; ++i) {
    WorkerOptions worker;
    worker.shard = ShardRef{i, 3};
    worker.raw_output = dir.file("f" + std::to_string(i) + ".csv");
    worker.sweep = options;
    const WorkerReport report = run_shard(scenarios, worker);
    EXPECT_TRUE(report.finished);
    paths.push_back(worker.raw_output);
    // The manifest's scenario lines carry the group shape.
    const Manifest m = parse_manifest(read_file(manifest_path(worker.raw_output)));
    for (const std::string& line : m.scenarios) {
      EXPECT_NE(line.find("fanout=3:2:spread"), std::string::npos) << line;
    }
  }
  const MergeReport report = merge_shards(paths);
  EXPECT_EQ(report.shards, 3u);
  EXPECT_EQ(aggregate_csv(report.cells), expected);
}

TEST(Merge, RejectsShardsWhoseFanoutDiffers) {
  // Two shards of "the same" sweep that disagree only in group shape must
  // refuse to merge: the fanout= token makes them different sweeps.
  TempDir dir;
  const auto options = sweep_options();
  WorkerOptions a;
  a.shard = ShardRef{0, 2};
  a.raw_output = dir.file("a.csv");
  a.sweep = options;
  (void)run_shard(tiny_fanout_scenarios("3:1:spread"), a);
  WorkerOptions b;
  b.shard = ShardRef{1, 2};
  b.raw_output = dir.file("b.csv");
  b.sweep = options;
  (void)run_shard(tiny_fanout_scenarios("3:2:ec"), b);

  try {
    (void)merge_shards({a.raw_output, b.raw_output});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("different sweep"), std::string::npos)
        << e.what();
  }
}

TEST(Merge, RejectsATamperedRawFile) {
  TempDir dir;
  const auto paths = run_all_shards(dir, 2, sweep_options());
  // Flip one digit of one metric: the manifest's content hash catches it.
  std::string content = read_file(paths[1]);
  const auto pos = content.rfind('7');
  ASSERT_NE(pos, std::string::npos);
  content[pos] = '8';
  atomic_write_file(paths[1], content);
  try {
    (void)merge_shards(paths);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hash mismatch"), std::string::npos)
        << e.what();
  }
}

TEST(Merge, RejectsAManifestWhoseRangeDisagreesWithThePlanner) {
  TempDir dir;
  const auto paths = run_all_shards(dir, 2, sweep_options());
  Manifest m = parse_manifest(read_file(manifest_path(paths[0])));
  m.cells.end += 1;  // claims a cell the planner gives to shard 1
  atomic_write_file(manifest_path(paths[0]), to_text(m));
  try {
    (void)merge_shards(paths);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("planner"), std::string::npos)
        << e.what();
  }
}

TEST(Merge, RejectsARowCountMismatch) {
  TempDir dir;
  const auto paths = run_all_shards(dir, 1, sweep_options());
  Manifest m = parse_manifest(read_file(manifest_path(paths[0])));
  m.rows -= 1;
  atomic_write_file(manifest_path(paths[0]), to_text(m));
  EXPECT_THROW((void)merge_shards(paths), std::runtime_error);
}

TEST(Merge, RejectsEmptyInputListAndMissingFiles) {
  EXPECT_THROW((void)merge_shards({}), std::runtime_error);
  EXPECT_THROW((void)merge_shards({"/nonexistent/shard.csv"}),
               std::runtime_error);
}

}  // namespace
}  // namespace reissue::dist
