#include "reissue/dist/shard.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace reissue::dist {
namespace {

TEST(ParseShard, AcceptsAndRoundTripsCanonicalForms) {
  const ShardRef first = parse_shard("0/1");
  EXPECT_EQ(first.index, 0u);
  EXPECT_EQ(first.count, 1u);
  const ShardRef mid = parse_shard("2/5");
  EXPECT_EQ(mid.index, 2u);
  EXPECT_EQ(mid.count, 5u);
  EXPECT_EQ(to_string(mid), "2/5");
  EXPECT_EQ(parse_shard(to_string(mid)), mid);
}

TEST(ParseShard, RejectsMalformedTokens) {
  for (const char* token : {"", "1", "/", "1/", "/2", "a/b", "1/b", "a/2",
                            "1/0", "2/2", "3/2", "-1/2", "1/2/3", "1.5/2"}) {
    EXPECT_THROW((void)parse_shard(token), std::runtime_error) << token;
  }
}

TEST(ShardCellRange, PartitionsEveryCellCountForAnyShardCount) {
  for (const std::size_t cells : {0u, 1u, 2u, 5u, 9u, 10u, 97u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 5u, 7u, 16u}) {
      std::size_t expected_begin = 0;
      std::size_t min_size = cells;
      std::size_t max_size = 0;
      for (std::size_t i = 0; i < shards; ++i) {
        const CellRange range =
            shard_cell_range(cells, ShardRef{i, shards});
        // Contiguous, disjoint, and in order: each shard picks up exactly
        // where the previous one stopped.
        EXPECT_EQ(range.begin, expected_begin) << cells << " " << shards;
        EXPECT_LE(range.begin, range.end);
        expected_begin = range.end;
        min_size = std::min(min_size, range.size());
        max_size = std::max(max_size, range.size());
      }
      EXPECT_EQ(expected_begin, cells);  // full coverage
      // Near-even split: no shard is more than one cell heavier.
      EXPECT_LE(max_size - min_size, 1u) << cells << " " << shards;
    }
  }
}

TEST(ShardCellRange, PinnedValues) {
  // The planner is a cross-machine contract: pin a few exact ranges so an
  // accidental formula change cannot silently re-shard old sweeps.
  EXPECT_EQ(shard_cell_range(9, ShardRef{0, 3}), (CellRange{0, 3}));
  EXPECT_EQ(shard_cell_range(9, ShardRef{1, 3}), (CellRange{3, 6}));
  EXPECT_EQ(shard_cell_range(9, ShardRef{2, 3}), (CellRange{6, 9}));
  EXPECT_EQ(shard_cell_range(10, ShardRef{0, 3}), (CellRange{0, 3}));
  EXPECT_EQ(shard_cell_range(10, ShardRef{1, 3}), (CellRange{3, 6}));
  EXPECT_EQ(shard_cell_range(10, ShardRef{2, 3}), (CellRange{6, 10}));
  // More shards than cells: trailing shards own empty ranges.
  EXPECT_EQ(shard_cell_range(2, ShardRef{0, 5}), (CellRange{0, 0}));
  EXPECT_EQ(shard_cell_range(2, ShardRef{2, 5}), (CellRange{0, 1}));
  EXPECT_EQ(shard_cell_range(2, ShardRef{4, 5}), (CellRange{1, 2}));
}

TEST(ShardCellRange, RejectsInvalidShards) {
  EXPECT_THROW((void)shard_cell_range(4, ShardRef{0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)shard_cell_range(4, ShardRef{2, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace reissue::dist
