#include "reissue/dist/manifest.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace reissue::dist {
namespace {

Manifest sample() {
  Manifest m;
  m.shard = ShardRef{1, 3};
  m.cells = CellRange{3, 6};
  m.total_cells = 9;
  m.replications = 8;
  m.seed = 0x5eed;
  m.percentile = 0.99;
  m.log_mode = core::LogMode::kStreaming;
  m.rows = 24;
  m.hash = 0x0123456789abcdefull;
  m.scenarios = {
      "name=a kind=queueing util=0.3 ratio=0.5 servers=10 queries=100 "
      "warmup=10 lb=random queue=fifo service=pareto:1.1:2 cap=5000 "
      "percentile=0.99 policy=none",
      "name=b kind=independent queries=100 warmup=10 "
      "service=pareto:1.1:2 cap=5000 percentile=0.99 policy=none"};
  return m;
}

TEST(Manifest, TextRoundTripsExactly) {
  const Manifest m = sample();
  const std::string text = to_text(m);
  EXPECT_EQ(parse_manifest(text), m);
  EXPECT_EQ(to_text(parse_manifest(text)), text);
}

TEST(Manifest, TextIsTheDocumentedFixedOrder) {
  const std::string text = to_text(sample());
  EXPECT_EQ(text.rfind("reissue-shard-manifest v1\n"
                       "shard 1/3\n"
                       "cells 3 6\n"
                       "total-cells 9\n"
                       "replications 8\n"
                       "seed 24301\n"
                       "percentile 0.99\n"
                       "log-mode streaming\n"
                       "rows 24\n"
                       "hash 0123456789abcdef\n"
                       "scenario name=a",
                       0),
            0u)
      << text;
}

TEST(Manifest, LogModeTokens) {
  EXPECT_EQ(to_string(core::LogMode::kFull), "full");
  EXPECT_EQ(to_string(core::LogMode::kStreaming), "streaming");
  EXPECT_EQ(to_string(core::LogMode::kStreamingUnordered), "completion");
  EXPECT_EQ(log_mode_from_string("full"), core::LogMode::kFull);
  EXPECT_EQ(log_mode_from_string("streaming"), core::LogMode::kStreaming);
  EXPECT_EQ(log_mode_from_string("completion"),
            core::LogMode::kStreamingUnordered);
  EXPECT_THROW((void)log_mode_from_string("both"), std::runtime_error);
}

TEST(Manifest, CompletionModeRoundTripsAndChangesTheFingerprint) {
  Manifest streaming = sample();
  streaming.log_mode = core::LogMode::kStreaming;
  Manifest completion = streaming;
  completion.log_mode = core::LogMode::kStreamingUnordered;
  EXPECT_EQ(parse_manifest(to_text(completion)), completion);
  // Shards from different metric modes must never merge: the mode is part
  // of the sweep identity.
  EXPECT_NE(shard_fingerprint(completion), shard_fingerprint(streaming));
}

TEST(Manifest, ParseDiagnostics) {
  const std::string text = to_text(sample());

  // Wrong magic.
  EXPECT_THROW((void)parse_manifest("not-a-manifest\n" + text),
               std::runtime_error);
  // Truncation: dropping any suffix loses a required line.
  EXPECT_THROW((void)parse_manifest(text.substr(0, text.find("seed"))),
               std::runtime_error);
  // Reordered keys violate the fixed order.
  std::string reordered = text;
  const auto seed_pos = reordered.find("seed 24301\n");
  reordered.erase(seed_pos, 11);
  reordered += "seed 24301\n";
  EXPECT_THROW((void)parse_manifest(reordered), std::runtime_error);
  // Corrupt numbers and hashes.
  auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string copy = text;
    copy.replace(copy.find(from), from.size(), to);
    return copy;
  };
  EXPECT_THROW((void)parse_manifest(corrupt("rows 24", "rows x")),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_manifest(corrupt("hash 0123456789abcdef", "hash 012345")),
      std::runtime_error);
  EXPECT_THROW((void)parse_manifest(
                   corrupt("hash 0123456789abcdef", "hash 0123456789abcdeg")),
               std::runtime_error);
  EXPECT_THROW((void)parse_manifest(corrupt("cells 3 6", "cells 6 3")),
               std::runtime_error);
  EXPECT_THROW((void)parse_manifest(corrupt("shard 1/3", "shard 3/3")),
               std::runtime_error);
  // A manifest without scenarios cannot re-derive its plan.
  EXPECT_THROW(
      (void)parse_manifest(text.substr(0, text.find("scenario name=a"))),
      std::runtime_error);
}

TEST(Manifest, FingerprintPinsTheSliceNotTheContent) {
  const Manifest m = sample();
  // rows/hash are content bookkeeping: a resumed worker must accept the
  // journal it wrote before it knew them.
  Manifest same = m;
  same.rows = 0;
  same.hash = 0;
  EXPECT_EQ(shard_fingerprint(m), shard_fingerprint(same));

  Manifest other_seed = m;
  other_seed.seed += 1;
  EXPECT_NE(shard_fingerprint(m), shard_fingerprint(other_seed));
  Manifest other_shard = m;
  other_shard.shard.index = 2;
  other_shard.cells = CellRange{6, 9};
  EXPECT_NE(shard_fingerprint(m), shard_fingerprint(other_shard));
  Manifest other_scenarios = m;
  other_scenarios.scenarios.pop_back();
  EXPECT_NE(shard_fingerprint(m), shard_fingerprint(other_scenarios));
}

TEST(ManifestPath, SitsNextToTheRawFile) {
  EXPECT_EQ(manifest_path("/tmp/s0.csv"), "/tmp/s0.csv.manifest");
}

TEST(Manifest, FaultAndArrivalSpecsArePartOfTheSweepIdentity) {
  // The scenario spec line embeds faults= / arrival= tokens, so shards
  // produced from different fault plans (or one faulted, one clean) must
  // never fingerprint-match and thus never merge.
  Manifest clean = sample();
  Manifest faulted = clean;
  faulted.scenarios[0] =
      "name=a kind=queueing util=0.3 ratio=0.5 servers=10 queries=100 "
      "warmup=10 lb=random queue=fifo service=pareto:1.1:2 cap=5000 "
      "faults=crash:4000,150 percentile=0.99 policy=none";
  EXPECT_EQ(parse_manifest(to_text(faulted)), faulted);
  EXPECT_NE(shard_fingerprint(faulted), shard_fingerprint(clean));

  Manifest other_plan = faulted;
  other_plan.scenarios[0] =
      "name=a kind=queueing util=0.3 ratio=0.5 servers=10 queries=100 "
      "warmup=10 lb=random queue=fifo service=pareto:1.1:2 cap=5000 "
      "faults=slowdown:0.002,4,25 percentile=0.99 policy=none";
  EXPECT_NE(shard_fingerprint(other_plan), shard_fingerprint(faulted));

  Manifest diurnal = clean;
  diurnal.scenarios[0] =
      "name=a kind=queueing util=0.3 ratio=0.5 servers=10 queries=100 "
      "warmup=10 lb=random queue=fifo service=pareto:1.1:2 cap=5000 "
      "arrival=diurnal:2000:0.6 percentile=0.99 policy=none";
  EXPECT_NE(shard_fingerprint(diurnal), shard_fingerprint(clean));
}

}  // namespace
}  // namespace reissue::dist
