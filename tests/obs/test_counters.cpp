// Run-counter accounting, phase timers, and the formatting helpers behind
// `sweep --stats`.
#include "reissue/obs/counters.hpp"

#include <gtest/gtest.h>

#include "reissue/core/policy.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/workloads.hpp"

namespace reissue::obs {
namespace {

sim::workloads::WorkloadOptions small_options() {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 2000;
  // No warmup: RunResult then reports the same query population the
  // observer sees, so their reissue counts must agree exactly.
  opts.warmup = 0;
  opts.seed = 0x5eed;
  return opts;
}

// Everything the simulator feeds the observers only happens in builds with
// observability compiled in; under -DREISSUE_OBS=OFF the hooks are dead
// code, so the sim-driven tests are gated out with the feature.
#if REISSUE_OBS_ENABLED

TEST(Counters, EveryScheduledStageIsDecidedExactlyOnce) {
  auto cluster = sim::workloads::make_queueing(0.4, 0.5, small_options());
  CountingObserver counting;
  cluster.set_sim_observer(&counting);
  const auto result = cluster.run(core::ReissuePolicy::single_r(12.0, 0.5));
  const sim::RunCounters c = counting.total();

  EXPECT_EQ(counting.runs(), 1u);
  EXPECT_EQ(c.arrivals, 2000u);
  // One stage per arrival; each scheduled reissue is exactly one of
  // issued / coin-suppressed / completion-suppressed.
  EXPECT_EQ(c.arrivals, c.reissues_issued + c.reissues_suppressed_coin +
                            c.reissues_suppressed_completed);
  EXPECT_EQ(c.reissues_issued, result.reissues_issued);
  EXPECT_LE(c.reissues_wasted, c.reissues_issued);
  // Dead-entry retirements are a subset of completion suppressions.
  EXPECT_LE(c.stage_retired, c.reissues_suppressed_completed);
  // Completions drain through exactly one of the two queues (scan mode
  // xor heap), but something must have drained.
  EXPECT_GT(c.heap_pops + c.scan_pops, 0u);
  EXPECT_GT(c.reissue_inflight_peak, 0u);
  EXPECT_EQ(c.arena_slots, 2000u);  // queries * stage_count
}

TEST(Counters, MultiStagePolicySchedulesEveryStage) {
  auto cluster = sim::workloads::make_queueing(0.4, 0.5, small_options());
  CountingObserver counting;
  cluster.set_sim_observer(&counting);
  (void)cluster.run(core::ReissuePolicy::double_r(5.0, 0.3, 15.0, 0.8));
  const sim::RunCounters c = counting.total();
  EXPECT_EQ(c.arrivals * 2, c.reissues_issued + c.reissues_suppressed_coin +
                                c.reissues_suppressed_completed);
}

TEST(Counters, AccumulatesAcrossRuns) {
  auto cluster = sim::workloads::make_independent(small_options());
  CountingObserver counting;
  cluster.set_sim_observer(&counting);
  (void)cluster.run(core::ReissuePolicy::single_r(10.0, 0.5));
  (void)cluster.run(core::ReissuePolicy::single_r(10.0, 0.5));
  EXPECT_EQ(counting.runs(), 2u);
  EXPECT_EQ(counting.total().arrivals, 4000u);
}

#endif  // REISSUE_OBS_ENABLED

TEST(Counters, FormatCountersPinsTheGlossaryLines) {
  sim::RunCounters c;
  c.arrivals = 10;
  c.heap_pops = 11;
  c.scan_pops = 1;
  c.stage_checks = 4;
  c.stage_retired = 2;
  c.reissues_issued = 3;
  c.reissues_suppressed_completed = 5;
  c.reissues_suppressed_coin = 2;
  c.reissues_wasted = 1;
  c.copies_cancelled = 0;
  c.interference_episodes = 0;
  c.reissue_inflight_peak = 2;
  c.arena_slots = 10;
  EXPECT_EQ(format_counters(c, 1),
            "runs 1\n"
            "arrivals 10\n"
            "heap_pops 11\n"
            "scan_pops 1\n"
            "stage_checks 4\n"
            "stage_retired 2\n"
            "reissues_issued 3\n"
            "reissues_suppressed_completed 5\n"
            "reissues_suppressed_coin 2\n"
            "reissues_wasted 1\n"
            "copies_cancelled 0\n"
            "interference_episodes 0\n"
            "fault_slowdowns 0\n"
            "fault_degrades 0\n"
            "fault_crashes 0\n"
            "fault_copies_failed 0\n"
            "fault_dispatch_rejections 0\n"
            "fault_primary_retries 0\n"
            "siblings_issued 0\n"
            "sibling_wins 0\n"
            "siblings_cancelled 0\n"
            "siblings_wasted 0\n"
            "reissue_inflight_peak 2\n"
            "arena_slots_high_water 10\n");
}

TEST(Counters, PlusEqualsSumsCountsAndMaxesPeaks) {
  sim::RunCounters a;
  a.arrivals = 5;
  a.reissue_inflight_peak = 3;
  a.arena_slots = 100;
  sim::RunCounters b;
  b.arrivals = 7;
  b.reissue_inflight_peak = 2;
  b.arena_slots = 200;
  a += b;
  EXPECT_EQ(a.arrivals, 12u);
  EXPECT_EQ(a.reissue_inflight_peak, 3u);  // peak, not sum
  EXPECT_EQ(a.arena_slots, 200u);          // high water, not sum
}

TEST(PhaseTimers, AccumulatesScopesSortedByName) {
  PhaseTimers timers;
  { PhaseTimer scope(&timers, "train"); }
  { PhaseTimer scope(&timers, "train"); }
  { PhaseTimer scope(&timers, "evaluate"); }
  const auto entries = timers.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].phase, "evaluate");
  EXPECT_EQ(entries[0].count, 1u);
  EXPECT_EQ(entries[1].phase, "train");
  EXPECT_EQ(entries[1].count, 2u);
  EXPECT_GE(entries[1].seconds, 0.0);
  const std::string text = format_timers(timers);
  EXPECT_NE(text.find("evaluate "), std::string::npos);
  EXPECT_NE(text.find("train "), std::string::npos);
}

TEST(PhaseTimers, NullRegistryMakesScopesFree) {
  PhaseTimer scope(nullptr, "anything");  // must not crash or allocate
}

TEST(MultiObserver, ForwardsToEveryChildAndIgnoresNull) {
  CountingObserver a;
  CountingObserver b;
  MultiObserver multi;
  EXPECT_TRUE(multi.empty());
  multi.add(nullptr);
  EXPECT_TRUE(multi.empty());
  multi.add(&a);
  multi.add(&b);
  EXPECT_FALSE(multi.empty());

#if REISSUE_OBS_ENABLED
  auto cluster = sim::workloads::make_independent(small_options());
  cluster.set_sim_observer(&multi);
  (void)cluster.run(core::ReissuePolicy::single_r(10.0, 0.5));
  EXPECT_EQ(a.runs(), 1u);
  EXPECT_EQ(b.runs(), 1u);
  EXPECT_EQ(a.total().arrivals, b.total().arrivals);
#endif
}

}  // namespace
}  // namespace reissue::obs
