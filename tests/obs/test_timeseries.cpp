// Windowed time-series observer: CSV shape, window bookkeeping, and the
// windowed-vs-end-of-run tail consistency contract.
#include "reissue/obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/workloads.hpp"
#include "reissue/stats/tail_summary.hpp"

namespace reissue::obs {
namespace {

sim::workloads::WorkloadOptions no_warmup_options() {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 1500;
  opts.warmup = 0;  // RunResult and the observer then see the same queries
  opts.seed = 0x5eed;
  return opts;
}

struct CsvRow {
  std::uint32_t run = 0;
  std::uint64_t window = 0;
  double t_start = 0.0;
  double t_end = 0.0;
  std::string series;
  std::string server;
  double value = 0.0;
};

std::vector<CsvRow> parse_csv(const TimeSeriesObserver& observer) {
  std::ostringstream out;
  observer.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  EXPECT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, TimeSeriesObserver::kCsvHeader);
  std::vector<CsvRow> rows;
  while (std::getline(in, line)) {
    std::istringstream cells(line);
    std::string cell;
    CsvRow row;
    std::getline(cells, cell, ',');
    row.run = static_cast<std::uint32_t>(std::stoul(cell));
    std::getline(cells, cell, ',');
    row.window = std::stoull(cell);
    std::getline(cells, cell, ',');
    row.t_start = std::stod(cell);
    std::getline(cells, cell, ',');
    row.t_end = std::stod(cell);
    std::getline(cells, row.series, ',');
    std::getline(cells, row.server, ',');
    std::getline(cells, cell);
    row.value = std::stod(cell);
    rows.push_back(row);
  }
  return rows;
}

TEST(TimeSeries, ValidatesOptions) {
  EXPECT_THROW(TimeSeriesObserver({0.0, 0.99}), std::invalid_argument);
  EXPECT_THROW(TimeSeriesObserver({-1.0, 0.99}), std::invalid_argument);
  EXPECT_THROW(TimeSeriesObserver({100.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(TimeSeriesObserver({100.0, 1.0}), std::invalid_argument);
}

// Sim-driven tests below need the simulator to actually call the hooks,
// which only happens with observability compiled in.
#if REISSUE_OBS_ENABLED

TEST(TimeSeries, WindowedTailAgreesWithEndOfRunSummary) {
  // The observer's overall() digest must agree *exactly* with a
  // TailSummary fed the same latencies in a different order: the
  // histogram quantile is a pure function of the latency multiset.
  TimeSeriesObserver observer({25.0, 0.99});
  auto observed = sim::workloads::make_queueing(0.4, 0.5, no_warmup_options());
  observed.set_sim_observer(&observer);
  const auto policy = core::ReissuePolicy::single_r(12.0, 0.5);
  (void)observed.run(policy);

  auto plain = sim::workloads::make_queueing(0.4, 0.5, no_warmup_options());
  const core::RunResult result = plain.run(policy);
  ASSERT_EQ(result.query_latencies.size(), 1500u);

  stats::TailSummary reference(0.99);
  // Reverse order: order independence is part of the contract.
  for (auto it = result.query_latencies.rbegin();
       it != result.query_latencies.rend(); ++it) {
    reference.add(*it);
  }
  EXPECT_EQ(observer.overall().count(), reference.count());
  EXPECT_EQ(observer.overall().quantile(), reference.quantile());
  EXPECT_EQ(observer.overall().max(), reference.max());
}

TEST(TimeSeries, CompletionsAcrossWindowsSumToTheQueryCount) {
  TimeSeriesObserver observer({50.0, 0.99});
  auto cluster = sim::workloads::make_queueing(0.4, 0.5, no_warmup_options());
  cluster.set_sim_observer(&observer);
  (void)cluster.run(core::ReissuePolicy::single_r(12.0, 0.5));

  double completions = 0.0;
  for (const CsvRow& row : parse_csv(observer)) {
    if (row.series == "completions") completions += row.value;
  }
  EXPECT_EQ(completions, 1500.0);
}

TEST(TimeSeries, WindowsTileSimulatedTime) {
  const double window = 40.0;
  TimeSeriesObserver observer({window, 0.99});
  auto cluster = sim::workloads::make_queueing(0.4, 0.5, no_warmup_options());
  cluster.set_sim_observer(&observer);
  (void)cluster.run(core::ReissuePolicy::single_r(12.0, 0.5));

  const auto rows = parse_csv(observer);
  ASSERT_FALSE(rows.empty());
  double max_t_end = 0.0;
  for (const CsvRow& row : rows) {
    EXPECT_EQ(row.t_start, row.window * window);
    EXPECT_LE(row.t_end, row.t_start + window);
    EXPECT_GT(row.t_end, row.t_start);
    max_t_end = std::max(max_t_end, row.t_end);
  }
  // Only the final (truncated) window may end off the grid.
  for (const CsvRow& row : rows) {
    if (row.t_end != max_t_end) EXPECT_EQ(row.t_end, (row.window + 1) * window);
  }
}

TEST(TimeSeries, EmitsPerServerDepthAndBusySeries) {
  TimeSeriesObserver observer({50.0, 0.99});
  auto cluster = sim::workloads::make_queueing(0.4, 0.5, no_warmup_options());
  cluster.set_sim_observer(&observer);
  (void)cluster.run(core::ReissuePolicy::single_r(12.0, 0.5));

  bool saw_depth = false;
  bool saw_busy = false;
  bool saw_global_blank_server = false;
  for (const CsvRow& row : parse_csv(observer)) {
    if (row.series == "queue_depth") {
      saw_depth = true;
      EXPECT_FALSE(row.server.empty());
    }
    if (row.series == "busy_fraction") {
      saw_busy = true;
      EXPECT_GE(row.value, 0.0);
      EXPECT_LE(row.value, 1.0);
    }
    if (row.series == "inflight_reissues" && row.server.empty()) {
      saw_global_blank_server = true;
    }
  }
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_busy);
  EXPECT_TRUE(saw_global_blank_server);
}

TEST(TimeSeries, SecondRunRestartsWindowNumbering) {
  TimeSeriesObserver observer({50.0, 0.99});
  auto cluster = sim::workloads::make_queueing(0.4, 0.5, no_warmup_options());
  cluster.set_sim_observer(&observer);
  const auto policy = core::ReissuePolicy::single_r(12.0, 0.5);
  (void)cluster.run(policy);
  (void)cluster.run(policy);

  std::map<std::uint32_t, std::uint64_t> first_window;
  for (const CsvRow& row : parse_csv(observer)) {
    const auto [it, inserted] = first_window.emplace(row.run, row.window);
    if (!inserted && row.window < it->second) it->second = row.window;
  }
  ASSERT_EQ(first_window.size(), 2u);
  EXPECT_EQ(first_window.at(1), 0u);
  EXPECT_EQ(first_window.at(2), 0u);
}

#endif  // REISSUE_OBS_ENABLED

}  // namespace
}  // namespace reissue::obs
