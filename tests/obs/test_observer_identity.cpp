// The observability layer's hard contract: observers are passive.  A run
// with any combination of observers attached must produce bit-identical
// results to an unobserved run — same RNG streams, same event order, same
// logs — and sweep CSVs must stay byte-identical across thread counts
// with observation compiled in and attached.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"
#include "reissue/exp/aggregate.hpp"
#include "reissue/exp/runner.hpp"
#include "reissue/exp/scenario.hpp"
#include "reissue/obs/counters.hpp"
#include "reissue/obs/timeseries.hpp"
#include "reissue/obs/trace.hpp"
#include "reissue/obs/trace_ring.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/service_model.hpp"
#include "reissue/sim/workloads.hpp"
#include "reissue/stats/distributions.hpp"

namespace reissue::obs {
namespace {

sim::workloads::WorkloadOptions run_options() {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 1500;
  opts.warmup = 150;
  opts.seed = 0x5eed;
  return opts;
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.reissues_issued, b.reissues_issued);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.query_latencies, b.query_latencies);
  EXPECT_EQ(a.primary_latencies, b.primary_latencies);
  EXPECT_EQ(a.reissue_latencies, b.reissue_latencies);
  EXPECT_EQ(a.reissue_delays, b.reissue_delays);
  EXPECT_EQ(a.correlated_pairs, b.correlated_pairs);
}

exp::SweepOptions sweep_options(std::size_t threads) {
  exp::SweepOptions options;
  options.replications = 3;
  options.threads = threads;
  options.seed = 0x5eed;
  return options;
}

std::string sweep_csv(const std::vector<exp::ScenarioSpec>& scenarios,
                      const exp::SweepOptions& options) {
  std::ostringstream csv;
  exp::write_csv(csv, exp::aggregate(exp::run_sweep(scenarios, options)));
  return csv.str();
}

std::vector<exp::ScenarioSpec> sweep_scenarios() {
  return {exp::parse_scenario(
      "name=obs-identity kind=queueing util=0.4 servers=8 queries=800 "
      "warmup=80 policy=r:12:0.5 policy=d:20")};
}

// The identity tests attach real observers to real runs, which requires
// observability compiled in; under -DREISSUE_OBS=OFF there is nothing to
// compare against (hooks are dead code by construction).
#if REISSUE_OBS_ENABLED

TEST(ObserverIdentity, FullObserverStackLeavesRunResultsBitIdentical) {
  const auto policy = core::ReissuePolicy::single_r(12.0, 0.5);

  auto plain = sim::workloads::make_queueing(0.4, 0.5, run_options());
  const core::RunResult baseline = plain.run(policy);

  std::ostringstream trace_json;
  CountingObserver counting;
  RingTraceObserver ring(1 << 16);
  TimeSeriesObserver series({50.0, 0.99});
  MultiObserver multi;
  {
    TraceObserver tracer(trace_json);
    multi.add(&tracer);
    multi.add(&ring);
    multi.add(&series);
    multi.add(&counting);
    auto observed = sim::workloads::make_queueing(0.4, 0.5, run_options());
    observed.set_sim_observer(&multi);
    const core::RunResult traced = observed.run(policy);
    expect_identical(traced, baseline);
  }
  // The observers really did watch the run.
  EXPECT_EQ(counting.runs(), 1u);
  EXPECT_GT(ring.ring().total_pushed(), 0u);
  EXPECT_GT(trace_json.str().size(), 100u);
}

TEST(ObserverIdentity, KitchenSinkFeaturesStayIdenticalUnderObservation) {
  // Cancellation, interference, heterogeneous speeds: the observer hooks
  // sit on every one of those paths, so cover them all at once.
  sim::ClusterConfig cfg;
  cfg.servers = 6;
  cfg.arrival_rate =
      sim::arrival_rate_for_utilization(0.5, 6, 22.0);
  cfg.queries = 1500;
  cfg.warmup = 150;
  cfg.load_balancer = sim::LoadBalancerKind::kMinOfTwo;
  cfg.queue = sim::QueueDisciplineKind::kPrioritizedFifo;
  cfg.exclude_primary_server = true;
  cfg.cancel_on_completion = true;
  cfg.cancellation_overhead = 0.1;
  cfg.interference_rate = 0.002;
  cfg.interference_duration = stats::make_lognormal(3.0, 0.6);
  cfg.server_speeds = {1.0, 1.0, 1.5, 1.0, 2.0, 1.0};
  cfg.seed = 0x601de;
  const auto policy = core::ReissuePolicy::single_r(15.0, 0.6);

  auto make = [&] {
    return sim::Cluster(
        cfg, sim::make_correlated_service(
                 stats::make_truncated(stats::make_pareto(1.1, 2.0), 5000.0),
                 0.5));
  };
  auto plain = make();
  const core::RunResult baseline = plain.run(policy);

  CountingObserver counting;
  auto observed = make();
  observed.set_sim_observer(&counting);
  expect_identical(observed.run(policy), baseline);
  const sim::RunCounters c = counting.total();
  EXPECT_GT(c.copies_cancelled, 0u);
  EXPECT_GT(c.interference_episodes, 0u);
}

TEST(ObserverIdentity, SweepCsvUnchangedByObserversAcrossThreadCounts) {
  const auto scenarios = sweep_scenarios();
  const std::string baseline = sweep_csv(scenarios, sweep_options(1));

  // Thread-safe observer, 1 and 2 worker threads.
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    CountingObserver counting;
    PhaseTimers timers;
    auto options = sweep_options(threads);
    options.sim_observer = &counting;
    options.timers = &timers;
    EXPECT_EQ(sweep_csv(scenarios, options), baseline)
        << "threads=" << threads;
    EXPECT_EQ(counting.runs(), 2 * 3u);  // cells * replications
    EXPECT_FALSE(timers.entries().empty());
  }

  // Single-threaded observers (trace + time-series + ring) all at once.
  std::ostringstream trace_json;
  TraceObserver tracer(trace_json);
  RingTraceObserver ring(1 << 14);
  TimeSeriesObserver series({100.0, 0.99});
  MultiObserver multi;
  multi.add(&tracer);
  multi.add(&ring);
  multi.add(&series);
  auto options = sweep_options(1);
  options.sim_observer = &multi;
  EXPECT_EQ(sweep_csv(scenarios, options), baseline);
  EXPECT_GT(ring.ring().total_pushed(), 0u);
}

TEST(ObserverIdentity, FaultScenarioSweepIdenticalAcrossThreadsAndObservers) {
  // The fault layer's pre-scheduled events and dedicated RNG substreams
  // must preserve the two identity contracts at sweep level: CSVs are
  // byte-identical across thread counts, and attaching observers changes
  // nothing.  One scenario per fault family plus the kitchen sink.
  const std::vector<exp::ScenarioSpec> scenarios = {
      exp::parse_scenario(
          "name=fault-slow kind=queueing util=0.4 servers=8 queries=900 "
          "warmup=90 faults=slowdown:0.002,4,25 policy=none policy=r:12:0.5"),
      exp::parse_scenario(
          "name=fault-corr kind=queueing util=0.4 servers=8 queries=900 "
          "warmup=90 faults=corr:3,0.002,40,3 policy=r:12:0.5"),
      exp::parse_scenario(
          "name=fault-crash kind=queueing util=0.4 servers=8 queries=900 "
          "warmup=90 faults=crash:1500,120 policy=none policy=immediate:1"),
      exp::parse_scenario(
          "name=fault-all kind=queueing util=0.4 servers=8 queries=900 "
          "warmup=90 faults=slowdown:0.001,3,25+corr:2,0.002,40,2"
          "+crash:2000,120 policy=r:12:0.5")};
  const std::string baseline = sweep_csv(scenarios, sweep_options(1));

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(sweep_csv(scenarios, sweep_options(threads)), baseline)
        << "threads=" << threads;
  }

  CountingObserver counting;
  auto options = sweep_options(2);
  options.sim_observer = &counting;
  EXPECT_EQ(sweep_csv(scenarios, options), baseline);
  const sim::RunCounters c = counting.total();
  EXPECT_GT(c.fault_slowdowns, 0u);
  EXPECT_GT(c.fault_degrades, 0u);
  EXPECT_GT(c.fault_crashes, 0u);
}

#endif  // REISSUE_OBS_ENABLED

TEST(ObserverIdentity, ProgressCallbackReportsEveryCellOnce) {
  const auto scenarios = sweep_scenarios();
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> last_done{0};
  std::atomic<std::size_t> total{0};
  auto options = sweep_options(2);
  options.on_cell_done = [&](std::size_t done, std::size_t cells) {
    ++calls;
    last_done = done;
    total = cells;
  };
  const std::string csv = sweep_csv(scenarios, options);
  EXPECT_EQ(calls.load(), 2u);      // one per cell
  EXPECT_EQ(last_done.load(), 2u);  // monotone, ends at cells_total
  EXPECT_EQ(total.load(), 2u);
  EXPECT_EQ(csv, sweep_csv(scenarios, sweep_options(1)));
}

}  // namespace
}  // namespace reissue::obs
