// Runtime (wall-clock) observability: Prometheus exposition, the
// ClientEventSink -> TraceRing adapter, and the windowed time-series
// sampler driven deterministically through a ManualClock + manual tick().
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "reissue/obs/runtime_metrics.hpp"
#include "reissue/obs/runtime_timeseries.hpp"
#include "reissue/obs/runtime_trace.hpp"
#include "reissue/runtime/clock.hpp"
#include "reissue/runtime/reissue_client.hpp"

namespace reissue::obs {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(FormatPrometheus, RendersCountersGaugesAndLabels) {
  runtime::ReissueClientStats stats;
  stats.queries_submitted = 10;
  stats.first_responses = 9;
  stats.reissues_issued = 4;
  stats.reissues_suppressed_completed = 3;
  stats.reissues_suppressed_coin = 2;
  stats.pending_reissues = 1;
  stats.latency_samples = 9;
  stats.latency_p99_ms = 12.5;
  stats.latency_ring_capacity = 64;
  stats.latency_ring_recorded = 9;

  const std::string text = format_prometheus(stats);
  EXPECT_NE(text.find("# TYPE reissue_queries_submitted_total counter\n"
                      "reissue_queries_submitted_total 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("reissue_copies_suppressed_total{reason=\"completed\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("reissue_copies_suppressed_total{reason=\"coin\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE reissue_pending_reissues gauge"),
            std::string::npos);
  EXPECT_NE(text.find("reissue_latency_p99_ms 12.5"), std::string::npos);
  // No pool section without a pool snapshot.
  EXPECT_EQ(text.find("reissue_pool_threads"), std::string::npos);
  // Deterministic: equal inputs render byte-identically.
  EXPECT_EQ(text, format_prometheus(stats));
}

TEST(FormatPrometheus, IncludesPoolSectionWhenGiven) {
  runtime::ReissueClientStats stats;
  runtime::ThreadPoolStats pool;
  pool.threads = 4;
  pool.queued = 2;
  pool.submitted = 100;
  const std::string text = format_prometheus(stats, &pool);
  EXPECT_NE(text.find("reissue_pool_threads 4"), std::string::npos);
  EXPECT_NE(text.find("reissue_pool_queued 2"), std::string::npos);
  EXPECT_NE(text.find("reissue_pool_tasks_submitted_total 100"),
            std::string::npos);
}

TEST(WriteTextAtomic, ReplacesExistingContent) {
  const std::string path = temp_path("prom_atomic.txt");
  write_text_atomic(path, "first\n");
  write_text_atomic(path, "second\n");
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "second\n");
  // No leftover temp file.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(RuntimeRingTracer, MapsClientEventsOntoTraceRecords) {
  RuntimeRingTracer tracer(64);
  tracer.push_run_begin(250.0, 42, 8);
  tracer.on_submit(1.0, 7);
  tracer.on_reissue_suppressed(2.0, 7, 0, /*by_completion=*/true);
  tracer.on_reissue_suppressed(2.5, 7, 1, /*by_completion=*/false);
  tracer.on_reissue_issued(3.0, 7, 0);
  tracer.on_first_response(4.0, 7, 3.0, /*from_reissue=*/true);
  tracer.push_run_end(100.0, 240.0);

  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records[0].event,
            static_cast<std::uint8_t>(TraceEventKind::kRunBegin));
  EXPECT_DOUBLE_EQ(records[0].value, 250.0);
  EXPECT_EQ(records[0].query, 42u);
  EXPECT_EQ(records[0].server, 8u);
  EXPECT_EQ(records[1].event,
            static_cast<std::uint8_t>(TraceEventKind::kArrival));
  EXPECT_EQ(records[2].event,
            static_cast<std::uint8_t>(
                TraceEventKind::kReissueSuppressedCompletion));
  EXPECT_EQ(records[3].event,
            static_cast<std::uint8_t>(TraceEventKind::kReissueSuppressedCoin));
  EXPECT_EQ(records[3].stage, 1u);
  EXPECT_EQ(records[4].event,
            static_cast<std::uint8_t>(TraceEventKind::kReissueIssued));
  EXPECT_EQ(records[5].event,
            static_cast<std::uint8_t>(TraceEventKind::kQueryDone));
  EXPECT_DOUBLE_EQ(records[5].value, 3.0);
  EXPECT_EQ(records[5].copy, 1u);  // reissue copy won
  EXPECT_EQ(records[6].event,
            static_cast<std::uint8_t>(TraceEventKind::kRunEnd));
}

TEST(RuntimeRingTracer, WritesSummarizableRingFile) {
  const std::string path = temp_path("runtime_trace.bin");
  RuntimeRingTracer tracer(8);
  tracer.on_submit(1.0, 1);
  tracer.on_first_response(5.0, 1, 4.0, false);
  tracer.write(path);

  const TraceRingFile file = read_trace_ring(path);
  EXPECT_EQ(file.total_pushed, 2u);
  ASSERT_EQ(file.records.size(), 2u);
  const std::string digest = summarize_trace(file);
  EXPECT_NE(digest.find("arrival 1"), std::string::npos);
  EXPECT_NE(digest.find("query-done 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SummarizeTrace, DigestsFaultEpisodes) {
  TraceRing ring(16);
  auto push = [&ring](TraceEventKind kind, double ts, double value,
                      std::uint32_t server, std::uint16_t fault_kind) {
    TraceRecord r;
    r.ts = ts;
    r.value = value;
    r.server = server;
    r.stage = fault_kind;
    r.event = static_cast<std::uint8_t>(kind);
    ring.push(r);
  };
  // Matched slowdown on server 0: observed duration 4.
  push(TraceEventKind::kFaultBegin, 10.0, 99.0, 0, 0);
  push(TraceEventKind::kFaultEnd, 14.0, 0.0, 0, 0);
  // Unmatched crash on server 1: scheduled-duration fallback (7).
  push(TraceEventKind::kFaultBegin, 20.0, 7.0, 1, 2);
  // Orphan degrade end on server 2 (begin overwritten): episode only.
  push(TraceEventKind::kFaultEnd, 30.0, 0.0, 2, 1);

  const std::string digest =
      summarize_trace(TraceRingFile{ring.total_pushed(), ring.snapshot()});
  EXPECT_NE(digest.find("fault episodes: slowdown=1 degrade=1 crash=1"),
            std::string::npos);
  EXPECT_NE(digest.find("fault time: degraded 4 down 7"), std::string::npos);
}

TEST(SummarizeTrace, NoFaultSectionWithoutFaultRecords) {
  TraceRing ring(4);
  TraceRecord r;
  r.event = static_cast<std::uint8_t>(TraceEventKind::kArrival);
  ring.push(r);
  const std::string digest =
      summarize_trace(TraceRingFile{ring.total_pushed(), ring.snapshot()});
  EXPECT_EQ(digest.find("fault"), std::string::npos);
}

class RuntimeTimeSeriesTest : public ::testing::Test {
 protected:
  RuntimeTimeSeriesTest() {
    config_.table_capacity = 64;
    config_.latency_ring_capacity = 32;
    client_.emplace(clock_, [](std::uint64_t, bool) {},
                    core::ReissuePolicy::none(), config_);
  }

  void complete(std::uint64_t id, double submit_ms, double latency_ms) {
    clock_.set(submit_ms);
    client_->submit(id);
    clock_.set(submit_ms + latency_ms);
    ASSERT_TRUE(client_->on_response(id));
  }

  runtime::ManualClock clock_;
  runtime::ReissueClientConfig config_;
  std::optional<runtime::ReissueClient> client_;
};

TEST_F(RuntimeTimeSeriesTest, EmitsWindowedRowsWithActualBoundaries) {
  RuntimeTimeSeriesOptions options;
  options.window_ms = 100.0;
  options.percentile = 0.9;
  RuntimeTimeSeriesSampler sampler(clock_, *client_, options);

  complete(0, 10.0, 20.0);
  complete(1, 40.0, 5.0);
  sampler.tick(100.0);
  complete(2, 150.0, 10.0);
  // The second window closes late (scheduler jitter): boundaries must
  // report the actual [100, 230) span, not a nominal 100 ms width.
  sampler.tick(230.0);
  EXPECT_EQ(sampler.windows(), 2u);

  std::ostringstream csv;
  sampler.write_csv(csv);
  const auto lines = lines_of(csv.str());
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], std::string(RuntimeTimeSeriesSampler::kCsvHeader));
  EXPECT_NE(csv.str().find("0,0,0,100,submitted,-1,2"), std::string::npos);
  EXPECT_NE(csv.str().find("0,0,0,100,completions,-1,2"), std::string::npos);
  EXPECT_NE(csv.str().find("0,0,0,100,latency_mean,-1,12.5"),
            std::string::npos);
  EXPECT_NE(csv.str().find("0,1,100,230,submitted,-1,1"), std::string::npos);
  EXPECT_NE(csv.str().find("0,1,100,230,latency_mean,-1,10"),
            std::string::npos);

  const auto samples = sampler.take_samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].submit_ms, 10.0);
  EXPECT_DOUBLE_EQ(samples[2].submit_ms, 150.0);
  EXPECT_TRUE(sampler.take_samples().empty());
}

TEST_F(RuntimeTimeSeriesTest, OmitsLatencyRowsForEmptyWindows) {
  RuntimeTimeSeriesOptions options;
  options.window_ms = 50.0;
  RuntimeTimeSeriesSampler sampler(clock_, *client_, options);
  sampler.tick(50.0);
  std::ostringstream csv;
  sampler.write_csv(csv);
  EXPECT_EQ(csv.str().find("latency_mean"), std::string::npos);
  EXPECT_NE(csv.str().find("0,0,0,50,completions,-1,0"), std::string::npos);
}

TEST_F(RuntimeTimeSeriesTest, RewritesMetricsFileEachTick) {
  const std::string path = temp_path("loadgen_prom.txt");
  RuntimeTimeSeriesOptions options;
  options.window_ms = 100.0;
  options.metrics_out = path;
  RuntimeTimeSeriesSampler sampler(clock_, *client_, options);

  complete(0, 10.0, 5.0);
  sampler.tick(100.0);
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("reissue_queries_submitted_total 1"),
              std::string::npos);
  }
  complete(1, 110.0, 5.0);
  sampler.tick(200.0);
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("reissue_queries_submitted_total 2"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(RuntimeTimeSeriesTest, RejectsInvalidOptions) {
  RuntimeTimeSeriesOptions bad_window;
  bad_window.window_ms = 0.0;
  EXPECT_THROW(RuntimeTimeSeriesSampler(clock_, *client_, bad_window),
               std::invalid_argument);
  RuntimeTimeSeriesOptions bad_percentile;
  bad_percentile.percentile = 1.0;
  EXPECT_THROW(RuntimeTimeSeriesSampler(clock_, *client_, bad_percentile),
               std::invalid_argument);
}

// Started sampler thread against a wall clock: hammer the client while
// the sampler ticks on its own.  TSan-exercised; asserts only invariants
// (windows advance, totals conserve) because timing is nondeterministic.
TEST(RuntimeTimeSeriesThread, SamplesConcurrentlyWithTraffic) {
  runtime::WallClock clock;
  runtime::ReissueClientConfig config;
  config.table_capacity = 1 << 10;
  config.latency_ring_capacity = 1 << 10;
  runtime::ReissueClient client(clock, [](std::uint64_t, bool) {},
                                core::ReissuePolicy::none(), config);
  RuntimeTimeSeriesOptions options;
  options.window_ms = 5.0;
  RuntimeTimeSeriesSampler sampler(clock, client, options);
  sampler.start();
  for (std::uint64_t id = 0; id < 20000; ++id) {
    client.submit(id);
    client.on_response(id);
  }
  sampler.stop();
  EXPECT_GE(sampler.windows(), 1u);
  // Every completion's sample was either drained into the sampler or is
  // still in the ring (none lost: ring capacity exceeded per-window load
  // only if the sampler starved; dropped accounts for that case).
  const auto stats = client.stats();
  const auto samples = sampler.take_samples();
  EXPECT_EQ(samples.size() + stats.latency_ring_occupancy +
                stats.latency_ring_dropped,
            20000u);
  std::ostringstream csv;
  sampler.write_csv(csv);
  EXPECT_EQ(lines_of(csv.str())[0],
            std::string(RuntimeTimeSeriesSampler::kCsvHeader));
}

}  // namespace
}  // namespace reissue::obs
