// Binary trace ring: overwrite-oldest semantics, file round trip, and the
// trace-summarize digest.
#include "reissue/obs/trace_ring.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "reissue/core/policy.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/workloads.hpp"

namespace reissue::obs {
namespace {

class TempPath {
 public:
  TempPath() {
    path_ = (std::filesystem::temp_directory_path() /
             ("reissue_ring_test_" + std::to_string(counter_++) + ".bin"))
                .string();
  }
  ~TempPath() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TraceRecord record_at(double ts) {
  TraceRecord r;
  r.ts = ts;
  r.event = static_cast<std::uint8_t>(TraceEventKind::kArrival);
  r.query = static_cast<std::uint64_t>(ts);
  return r;
}

TEST(TraceRing, RejectsZeroCapacity) {
  EXPECT_THROW(TraceRing(0), std::invalid_argument);
}

TEST(TraceRing, KeepsTheNewestEventsOldestFirst) {
  TraceRing ring(4);
  for (int i = 0; i < 6; ++i) ring.push(record_at(i));
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_pushed(), 6u);
  EXPECT_EQ(ring.size(), 4u);
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().ts, 2.0);
  EXPECT_EQ(records.back().ts, 5.0);
}

TEST(TraceRing, SnapshotBeforeWrapIsInsertionOrder) {
  TraceRing ring(8);
  for (int i = 0; i < 3; ++i) ring.push(record_at(i));
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].ts, 0.0);
  EXPECT_EQ(records[2].ts, 2.0);
}

TEST(TraceRing, FileRoundTripPreservesRecordsAndTotal) {
  TraceRing ring(4);
  for (int i = 0; i < 7; ++i) ring.push(record_at(i));
  TempPath file;
  write_trace_ring(file.path(), ring);
  const TraceRingFile loaded = read_trace_ring(file.path());
  EXPECT_EQ(loaded.total_pushed, 7u);
  ASSERT_EQ(loaded.records.size(), 4u);
  EXPECT_EQ(loaded.records.front().ts, 3.0);
  EXPECT_EQ(loaded.records.back().ts, 6.0);
  EXPECT_EQ(loaded.records.back().query, 6u);
}

TEST(TraceRing, ReadRejectsMissingAndMalformedFiles) {
  EXPECT_THROW(read_trace_ring("/nonexistent/ring.bin"), std::runtime_error);
  TempPath file;
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "not a ring file";
  }
  EXPECT_THROW(read_trace_ring(file.path()), std::runtime_error);
}

// The RingTraceObserver tests drive real runs and need the simulator to
// call the hooks, i.e. observability compiled in.
#if REISSUE_OBS_ENABLED

TEST(RingTraceObserver, EventCountsMatchTheRunInvariants) {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 500;
  opts.warmup = 0;  // so RunResult counts the same reissues the ring sees
  opts.seed = 0x5eed;
  auto cluster = sim::workloads::make_queueing(0.4, 0.5, opts);
  RingTraceObserver observer(1 << 16);
  cluster.set_sim_observer(&observer);
  const auto result = cluster.run(core::ReissuePolicy::single_r(12.0, 0.5));

  std::size_t arrivals = 0;
  std::size_t done = 0;
  std::size_t issued = 0;
  std::size_t suppressed = 0;
  std::size_t dispatches = 0;
  std::size_t completes = 0;
  for (const TraceRecord& r : observer.ring().snapshot()) {
    switch (static_cast<TraceEventKind>(r.event)) {
      case TraceEventKind::kArrival: ++arrivals; break;
      case TraceEventKind::kQueryDone: ++done; break;
      case TraceEventKind::kReissueIssued: ++issued; break;
      case TraceEventKind::kReissueSuppressedCompletion:
      case TraceEventKind::kReissueSuppressedCoin: ++suppressed; break;
      case TraceEventKind::kDispatch: ++dispatches; break;
      case TraceEventKind::kCopyComplete: ++completes; break;
      default: break;
    }
  }
  EXPECT_EQ(arrivals, 500u);
  EXPECT_EQ(done, 500u);
  EXPECT_EQ(issued + suppressed, 500u);
  EXPECT_EQ(issued, result.reissues_issued);
  EXPECT_EQ(dispatches, arrivals + issued);
  EXPECT_EQ(completes, dispatches);  // no cancellation in this workload
}

TEST(RingTraceObserver, SummarizeReportsCountsAndLatencyDigest) {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 300;
  opts.warmup = 0;
  opts.seed = 0x5eed;
  auto cluster = sim::workloads::make_queueing(0.4, 0.5, opts);
  RingTraceObserver observer(1 << 16);
  cluster.set_sim_observer(&observer);
  (void)cluster.run(core::ReissuePolicy::single_r(12.0, 0.5));

  TempPath file;
  write_trace_ring(file.path(), observer.ring());
  const std::string digest = summarize_trace(read_trace_ring(file.path()));
  EXPECT_NE(digest.find("events retained"), std::string::npos);
  EXPECT_NE(digest.find("arrival 300"), std::string::npos);
  EXPECT_NE(digest.find("query-done 300"), std::string::npos);
  EXPECT_NE(digest.find("query latency mean"), std::string::npos);
  EXPECT_NE(digest.find("(n=300)"), std::string::npos);
  EXPECT_NE(digest.find("busiest servers"), std::string::npos);
}

TEST(RingTraceObserver, OverwritesOldestWhenUndersized) {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 500;
  opts.warmup = 0;
  opts.seed = 0x5eed;
  auto cluster = sim::workloads::make_queueing(0.4, 0.5, opts);
  RingTraceObserver observer(64);
  cluster.set_sim_observer(&observer);
  (void)cluster.run(core::ReissuePolicy::single_r(12.0, 0.5));
  EXPECT_EQ(observer.ring().size(), 64u);
  EXPECT_GT(observer.ring().total_pushed(), 64u);
  // Retained events are the newest, still sorted oldest-first.
  const auto records = observer.ring().snapshot();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].ts, records[i].ts);
  }
}

#endif  // REISSUE_OBS_ENABLED

}  // namespace
}  // namespace reissue::obs
