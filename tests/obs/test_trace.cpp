// Schema-pinning tests for the Chrome trace-event JSON emitter: the
// document frame, the event shapes, and the per-run process layout are
// contract — Perfetto and chrome://tracing load this format as-is, so any
// change here is a visible format break, not an implementation detail.
#include "reissue/obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "reissue/core/policy.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/workloads.hpp"

namespace reissue::obs {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (auto pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

sim::workloads::WorkloadOptions tiny_options() {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 50;
  opts.warmup = 0;
  opts.seed = 0x5eed;
  return opts;
}

std::string trace_of(sim::Cluster cluster, const core::ReissuePolicy& policy,
                     TraceObserverOptions options = {}, int runs = 1) {
  std::ostringstream out;
  {
    TraceObserver tracer(out, options);
    cluster.set_sim_observer(&tracer);
    for (int r = 0; r < runs; ++r) (void)cluster.run(policy);
    tracer.finish();
  }
  return out.str();
}

TEST(Trace, DocumentFrameIsTheTraceEventObjectFormat) {
  const std::string json =
      trace_of(sim::workloads::make_queueing(0.4, 0.5, tiny_options()),
               core::ReissuePolicy::single_r(12.0, 0.5));
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  ASSERT_GE(json.size(), 4u);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
  // Every event object is one line; no trailing comma before the close.
  EXPECT_EQ(count_occurrences(json, ",\n]"), 0u);
}

// Event-content assertions need the simulator to call the hooks, which
// only happens with observability compiled in (the frame and finish
// tests above/below hold either way).
#if REISSUE_OBS_ENABLED

TEST(Trace, EmitsMetadataInstantsSpansAndCounters) {
  const std::string json =
      trace_of(sim::workloads::make_queueing(0.4, 0.5, tiny_options()),
               core::ReissuePolicy::single_r(12.0, 0.5));
  // Process/thread naming metadata.
  EXPECT_GE(count_occurrences(json, "\"ph\":\"M\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"process_name\""), 1u);
  EXPECT_NE(json.find("\"args\":{\"name\":\"client\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"server 0\"}"), std::string::npos);
  // One arrival instant per query, on the client track (tid 0).
  EXPECT_EQ(count_occurrences(json, "\"name\":\"arrival\""), 50u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"done\""), 50u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"reissue-scheduled\""), 50u);
  // Service spans are complete events with durations.
  EXPECT_GE(count_occurrences(json, "\"ph\":\"X\""), 50u);
  EXPECT_GT(count_occurrences(json, "\"dur\":"), 0u);
  EXPECT_GT(count_occurrences(json, "\"name\":\"primary\""), 0u);
  // Queue-depth counter events for the finite servers.
  EXPECT_GT(count_occurrences(json, "\"ph\":\"C\""), 0u);
  EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos);
  // Suppressions carry their cause.
  const auto suppressed = count_occurrences(json, "\"name\":\"reissue-suppressed\"");
  const auto issued = count_occurrences(json, "\"name\":\"reissue-issued\"");
  EXPECT_EQ(suppressed + issued, 50u);
  if (suppressed > 0) {
    EXPECT_GT(count_occurrences(json, "\"by\":\"completion\"") +
                  count_occurrences(json, "\"by\":\"coin\""),
              0u);
  }
}

TEST(Trace, EachRunBecomesItsOwnProcess) {
  const std::string json =
      trace_of(sim::workloads::make_queueing(0.4, 0.5, tiny_options()),
               core::ReissuePolicy::single_r(12.0, 0.5), {}, /*runs=*/2);
  EXPECT_NE(json.find("\"args\":{\"name\":\"run 1\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"run 2\"}"), std::string::npos);
  EXPECT_GT(count_occurrences(json, "\"pid\":2,"), 0u);
}

TEST(Trace, InfiniteServerRunsFanSpansAcrossLanes) {
  const std::string json =
      trace_of(sim::workloads::make_independent(tiny_options()),
               core::ReissuePolicy::single_r(10.0, 0.5));
  EXPECT_NE(json.find("\"args\":{\"name\":\"lane 0\"}"), std::string::npos);
  // No finite servers, so no queue-depth counters.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 0u);
}

TEST(Trace, OptionsGateTheOptionalEventFamilies) {
  TraceObserverOptions options;
  options.scheduled_instants = false;
  options.counter_events = false;
  options.dispatch_instants = true;
  options.response_instants = true;
  const std::string json =
      trace_of(sim::workloads::make_queueing(0.4, 0.5, tiny_options()),
               core::ReissuePolicy::single_r(12.0, 0.5), options);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"reissue-scheduled\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"dispatch\""), 50u + count_occurrences(json, "\"name\":\"reissue-issued\""));
  EXPECT_GE(count_occurrences(json, "\"name\":\"response\""), 50u);
}

#endif  // REISSUE_OBS_ENABLED

TEST(Trace, FinishIsIdempotent) {
  std::ostringstream out;
  TraceObserver tracer(out);
  tracer.finish();
  tracer.finish();
  EXPECT_EQ(out.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

}  // namespace
}  // namespace reissue::obs
