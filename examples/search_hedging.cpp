// Hedging an enterprise search service: builds the Lucene-like substrate
// (synthetic Zipf corpus, real BM25 top-k scoring, per-server background
// interference), compares SingleR against the "Tail at Scale" SingleD
// baseline across small budgets -- the paper's §6.3 / Fig. 7a experiment.
#include <cstdio>

#include "reissue/sim/metrics.hpp"
#include "reissue/systems/bridge.hpp"

using namespace reissue;

int main() {
  systems::SystemHarnessOptions options;
  options.utilization = 0.40;
  options.servers = 10;
  options.queries = 20000;
  options.warmup = 2000;

  std::printf("building Lucene-like harness (Zipf corpus, BM25 top-k)...\n");
  auto harness = systems::make_lucene_harness(options);
  std::printf("service times: mean %.2f ms, stddev %.2f ms\n",
              harness.trace.mean_ms, harness.trace.stddev_ms);

  const double k = 0.99;
  const auto base =
      sim::evaluate_policy(harness.cluster, core::ReissuePolicy::none(), k);
  std::printf("\nbaseline P99 = %.1f ms (utilization %.2f)\n",
              base.tail_latency, base.utilization);

  std::printf("\n%8s  %12s  %12s\n", "budget", "SingleR P99", "SingleD P99");
  for (double budget : {0.02, 0.04, 0.06}) {
    const auto r = sim::tune_single_r(harness.cluster, k, budget, 5);
    const auto d = sim::tune_single_d(harness.cluster, k, budget, 5);
    std::printf("%7.0f%%  %9.1f ms  %9.1f ms   (SingleR q=%.2f)\n",
                100.0 * budget, r.final_eval.tail_latency,
                d.final_eval.tail_latency,
                r.outcome.policy.probability());
  }
  std::printf("\nexpected shape: SingleR <= SingleD at every budget, with "
              "the gap closing as the budget grows (q -> 1).\n");
  return 0;
}
