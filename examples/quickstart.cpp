// Quickstart: compute an optimal SingleR reissue policy from a response
// time log.
//
//   ./quickstart [primary.log [reissue.log]]
//
// Without arguments a synthetic Pareto log (the paper's default service
// model) is generated so the example runs self-contained.  With a log file
// (one latency per line, '#' comments allowed) the policy is computed for
// your own service.
//
// This is the three-line core of the library:
//
//   stats::EmpiricalCdf rx(samples);
//   auto result = core::compute_optimal_single_r(rx, ry, k, budget);
//   => reissue after result.delay with probability result.probability.
#include <cstdio>
#include <fstream>
#include <vector>

#include "reissue/core/optimizer.hpp"
#include "reissue/core/policy_io.hpp"
#include "reissue/stats/distributions.hpp"

using namespace reissue;

namespace {

std::vector<double> load_or_synthesize(const char* path, std::uint64_t seed) {
  if (path != nullptr) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      std::exit(1);
    }
    return core::read_latency_log(in);
  }
  // Synthetic log: Pareto(1.1, 2.0), the paper's §5.1 service model.
  const auto dist = stats::make_pareto(1.1, 2.0);
  stats::Xoshiro256 rng(seed);
  std::vector<double> samples;
  samples.reserve(50000);
  for (int i = 0; i < 50000; ++i) samples.push_back(dist->sample(rng));
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  const double k = 0.95;       // optimize the 95th percentile
  const double budget = 0.05;  // reissue at most 5% of queries

  const auto primary = load_or_synthesize(argc > 1 ? argv[1] : nullptr, 1);
  const auto reissue = load_or_synthesize(argc > 2 ? argv[2] : nullptr, 2);

  const stats::EmpiricalCdf rx(primary);
  const stats::EmpiricalCdf ry(reissue);

  std::printf("loaded %zu primary / %zu reissue samples\n", rx.size(),
              ry.size());
  std::printf("baseline P95 = %.3f   P99 = %.3f\n", rx.quantile(0.95),
              rx.quantile(0.99));

  const auto result = core::compute_optimal_single_r(rx, ry, k, budget);
  const auto policy = result.policy();

  std::printf("\noptimal policy: %s\n",
              core::policy_to_line(policy).c_str());
  std::printf("  reissue delay      d = %.3f (%.1f%% of requests still "
              "outstanding)\n",
              result.delay, 100.0 * rx.tail(result.delay));
  std::printf("  reissue probability q = %.3f\n", result.probability);
  std::printf("  predicted P95      %.3f  (was %.3f -> %.2fx reduction)\n",
              result.predicted_tail_latency, rx.quantile(k),
              rx.quantile(k) / result.predicted_tail_latency);
  std::printf("  expected reissue rate <= %.2f%%\n", 100.0 * budget);

  // Compare with the "Tail at Scale" style deterministic policy that
  // spends the same budget: for budget < 1-k it reissues *after* the
  // percentile it is supposed to improve.
  const auto single_d = core::single_d_for_budget(rx, budget);
  std::printf("\nSingleD with the same budget reissues at d = %.3f (%s the "
              "baseline P95)\n",
              single_d.delay(),
              single_d.delay() >= rx.quantile(k) ? "AFTER" : "before");
  return 0;
}
