// Live middleware demo: the real-threaded ReissueClient (paper §6.1
// mechanism -- timestamped FIFO, reissue thread, completion-check array)
// fronting a mock async backend, with the policy swapped at runtime the
// way the adaptive controller would.
//
// The backend simulates a replicated service: each dispatched copy
// completes on a worker thread after a LogNormal "response time"; 2% of
// primaries hit a slow replica (10x latency), which is exactly what the
// reissue policy remediates.  Per-request latencies come from the
// client's built-in sample ring (latency_ring_capacity): draining it
// between phases yields a clean per-phase batch with no bookkeeping in
// the backend itself.
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "reissue/runtime/latency_ring.hpp"
#include "reissue/runtime/reissue_client.hpp"
#include "reissue/stats/distributions.hpp"
#include "reissue/stats/summary.hpp"

using namespace reissue;
using namespace std::chrono_literals;

namespace {

/// Mock replicated backend: completes copies asynchronously.
class MockBackend {
 public:
  explicit MockBackend(runtime::ReissueClient*& client) : client_(client) {}

  void dispatch(std::uint64_t id, bool is_reissue) {
    double ms = base_->sample(rng_);
    if (!is_reissue && rng_.bernoulli(0.02)) ms *= 10.0;  // slow replica
    std::lock_guard lock(mutex_);
    workers_.emplace_back([this, id, is_reissue, ms] {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
      client_->on_response(id, is_reissue);  // first copy to answer wins
    });
  }

  void join_all() {
    std::vector<std::thread> workers;
    {
      std::lock_guard lock(mutex_);
      workers.swap(workers_);
    }
    for (auto& w : workers) w.join();
  }

 private:
  runtime::ReissueClient*& client_;
  stats::Xoshiro256 rng_{0xbacc};
  stats::DistributionPtr base_ = stats::make_lognormal(1.0, 0.5);
  std::mutex mutex_;
  std::vector<std::thread> workers_;
};

double run_phase(runtime::ReissueClient& client, MockBackend& backend,
                 std::uint64_t first_id, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    client.submit(first_id + i);
    std::this_thread::sleep_for(300us);  // open-loop-ish pacing
  }
  client.drain();
  backend.join_all();
  // Draining between phases isolates this phase's samples.
  const auto samples = client.drain_samples();
  return stats::percentile(runtime::latency_values(samples), 99.0);
}

}  // namespace

int main() {
  runtime::WallClock clock;
  runtime::ReissueClient* client_ptr = nullptr;
  MockBackend backend(client_ptr);

  runtime::ReissueClientConfig config;
  config.latency_ring_capacity = 4096;  // capture per-request samples
  runtime::ReissueClient client(
      clock,
      [&backend](std::uint64_t id, bool is_reissue) {
        backend.dispatch(id, is_reissue);
      },
      core::ReissuePolicy::none(), config);
  client_ptr = &client;

  constexpr std::uint64_t kPhase = 2000;
  std::printf("phase 1: no reissue policy...\n");
  const double p99_base = run_phase(client, backend, 0, kPhase);
  std::printf("  P99 = %.1f ms, reissues issued = %llu\n", p99_base,
              static_cast<unsigned long long>(client.reissues_issued()));

  // Swap in a SingleR policy at runtime: reissue after 8 ms w.p. 0.5.
  client.set_policy(core::ReissuePolicy::single_r(8.0, 0.5));
  std::printf("phase 2: policy %s...\n",
              client.policy().describe().c_str());
  const double p99_hedged = run_phase(client, backend, kPhase, kPhase);
  const double rate =
      static_cast<double>(client.reissues_issued()) / (2.0 * kPhase);
  std::printf("  P99 = %.1f ms, cumulative reissue rate = %.1f%%\n",
              p99_hedged, 100.0 * rate);

  std::printf("\nP99 %.1f -> %.1f ms (the 2%% slow-replica stragglers are "
              "remediated by the hedge)\n",
              p99_base, p99_hedged);
  return 0;
}
