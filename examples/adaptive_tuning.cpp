// Adaptive policy refinement under load-dependent queueing (paper §4.3 /
// Fig. 2b): reissue requests perturb the very response-time distributions
// the optimizer is computed from, so the controller iterates:
// run -> log -> optimize -> move the delay part-way -> repeat, until the
// optimizer's prediction matches the observed tail latency.
#include <cstdio>

#include "reissue/core/adaptive.hpp"
#include "reissue/sim/workloads.hpp"

using namespace reissue;

int main() {
  // The paper's Queueing workload: Pareto(1.1, 2) service times with
  // r = 0.5 correlation, 10 servers, random LB, 30% utilization.
  sim::workloads::WorkloadOptions opts;
  opts.queries = 40000;
  opts.warmup = 4000;
  sim::Cluster cluster = sim::workloads::make_queueing(0.30, 0.5, opts);

  core::AdaptiveConfig config;
  config.percentile = 0.95;
  config.budget = 0.30;       // Fig. 2 uses a 30% budget
  config.learning_rate = 0.2; // and lambda = 0.2
  config.max_trials = 10;

  std::printf("adaptive SingleR tuning: k=P95, budget=30%%, lambda=0.2\n\n");
  std::printf("%5s  %-34s  %10s  %10s  %6s\n", "trial", "policy", "predicted",
              "actual", "rate");
  const auto outcome = core::adapt_single_r(cluster, config);
  for (const auto& trial : outcome.trials) {
    std::printf("%5d  %-34s  %10.1f  %10.1f  %5.1f%%\n", trial.index,
                trial.policy.describe().c_str(), trial.predicted_tail,
                trial.actual_tail, 100.0 * trial.measured_reissue_rate);
  }
  std::printf("\nconverged: %s (prediction within tolerance of observation "
              "and measured rate at budget)\n",
              outcome.converged ? "yes" : "no");
  std::printf("final policy: %s\n", outcome.policy.describe().c_str());

  // The paper's observation: convergence is detected "by comparing the
  // policy optimizer's predicted tail-latency with the observed latency";
  // for this workload it takes ~6 iterations at lambda=0.2.
  return 0;
}
