// SLA planning (paper §4.4 "Meeting tail-latency with minimal resources"):
// given a P99 latency target, find the smallest reissue budget whose tuned
// SingleR policy meets it, then contrast with the unconstrained optimal
// budget found by the Fig. 8 binary search.
#include <cstdio>

#include "reissue/core/budget_search.hpp"
#include "reissue/sim/metrics.hpp"
#include "reissue/sim/workloads.hpp"

using namespace reissue;

int main() {
  sim::workloads::WorkloadOptions opts;
  opts.queries = 25000;
  opts.warmup = 2500;
  sim::Cluster cluster = sim::workloads::make_queueing(0.45, 0.5, opts);

  const double k = 0.99;
  const auto base =
      sim::evaluate_policy(cluster, core::ReissuePolicy::none(), k);
  std::printf("baseline P99 = %.1f\n", base.tail_latency);

  auto evaluate = [&](double budget) {
    if (budget <= 0.0) return base.tail_latency;
    return sim::tune_single_r(cluster, k, budget, 4).final_eval.tail_latency;
  };

  // Unconstrained: walk the budget like Fig. 8.
  core::BudgetSearchConfig config;
  config.max_trials = 10;
  config.max_budget = 0.40;
  const auto best = core::search_optimal_budget(evaluate, config);
  std::printf("\nFig.8-style budget walk:\n");
  for (const auto& trial : best.trials) {
    std::printf("  trial %2d: budget %5.1f%%  P99 %8.1f  %s\n", trial.index,
                100.0 * trial.budget, trial.tail_latency,
                trial.accepted ? "(new best)" : "");
  }
  std::printf("best budget %.1f%% -> P99 %.1f\n", 100.0 * best.best_budget,
              best.best_tail_latency);

  // Constrained: cheapest budget meeting a target between baseline and best.
  const double target =
      0.5 * (base.tail_latency + best.best_tail_latency);
  const auto sla = core::minimize_budget_for_sla(evaluate, target, config);
  std::printf("\nSLA: P99 <= %.1f\n", target);
  if (sla.feasible) {
    std::printf("cheapest feasible budget: %.1f%% (achieves P99 %.1f)\n",
                100.0 * sla.budget, sla.tail_latency);
  } else {
    std::printf("target not reachable within max budget %.1f%%\n",
                100.0 * config.max_budget);
  }
  return 0;
}
