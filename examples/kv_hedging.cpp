// Hedging a key-value store: builds the Redis-like substrate (synthetic
// 1000-set dataset, real set-intersection work, round-robin connection
// event-loop servers), measures the baseline P99, then tunes and applies a
// SingleR policy with a 3% budget -- the paper's §6.2 experiment in
// miniature.
#include <cstdio>

#include "reissue/sim/metrics.hpp"
#include "reissue/systems/bridge.hpp"

using namespace reissue;

int main() {
  systems::SystemHarnessOptions options;
  options.utilization = 0.40;
  options.servers = 10;
  options.queries = 20000;
  options.warmup = 2000;

  std::printf("building Redis-like harness (1000 sets, intersection trace)...\n");
  auto harness = systems::make_redis_harness(options);
  std::printf("service times: mean %.3f ms, stddev %.3f ms (%.1fx mean)\n",
              harness.trace.mean_ms, harness.trace.stddev_ms,
              harness.trace.stddev_ms / harness.trace.mean_ms);

  const double k = 0.99;
  const auto base =
      sim::evaluate_policy(harness.cluster, core::ReissuePolicy::none(), k);
  std::printf("\nbaseline:  P99 = %8.1f ms   utilization = %.2f\n",
              base.tail_latency, base.utilization);

  std::printf("tuning SingleR with a 3%% reissue budget (5 adaptive trials)...\n");
  const auto tuned = sim::tune_single_r(harness.cluster, k, 0.03, 5);
  for (const auto& trial : tuned.outcome.trials) {
    std::printf("  trial %d: %-32s predicted %7.1f  actual %7.1f  rate %.3f\n",
                trial.index, trial.policy.describe().c_str(),
                trial.predicted_tail, trial.actual_tail,
                trial.measured_reissue_rate);
  }

  const auto& eval = tuned.final_eval;
  std::printf("\ntuned:     P99 = %8.1f ms   reissue rate = %.2f%%   "
              "remediation = %.2f\n",
              eval.tail_latency, 100.0 * eval.reissue_rate,
              eval.remediation_rate);
  std::printf("tail reduction: %.1f%%  (paper reports 30-70%% at 40-60%% "
              "utilization with ~2%% reissues)\n",
              100.0 * (1.0 - eval.tail_latency / base.tail_latency));
  return 0;
}
