// Thin entry point; all command logic lives (and is tested) in
// reissue::cli::run_cli.
#include <iostream>
#include <string>
#include <vector>

#include "reissue/cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return reissue::cli::run_cli(args, std::cout, std::cerr);
}
