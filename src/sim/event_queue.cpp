#include "reissue/sim/event_queue.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace reissue::sim {

void EventQueue::schedule(double time, EventFn fn) {
  if (!std::isfinite(time)) {
    throw std::invalid_argument("EventQueue: non-finite event time");
  }
  if (time < now_) {
    throw std::invalid_argument("EventQueue: event scheduled in the past");
  }
  heap_.push(Event{time, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move the closure out via a copy of
  // the handle then pop.  Event is cheap to move except for the closure,
  // which we must take before pop invalidates it.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn(now_);
  return true;
}

double EventQueue::run_to_completion() {
  while (step()) {
  }
  return now_;
}

double EventQueue::run_until(double horizon) {
  while (!heap_.empty() && heap_.top().time <= horizon) {
    step();
  }
  return now_;
}

}  // namespace reissue::sim
