#include "reissue/sim/queue_discipline.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace reissue::sim {

std::string to_string(QueueDisciplineKind kind) {
  switch (kind) {
    case QueueDisciplineKind::kFifo:
      return "FIFO";
    case QueueDisciplineKind::kPrioritizedFifo:
      return "PrioritizedFIFO";
    case QueueDisciplineKind::kPrioritizedLifo:
      return "PrioritizedLIFO";
    case QueueDisciplineKind::kRoundRobinConnections:
      return "RoundRobinConnections";
    case QueueDisciplineKind::kConnectionBatch:
      return "ConnectionBatch";
  }
  return "Unknown";
}

namespace {

using detail::RequestRing;

class FifoQueue final : public QueueDiscipline {
 public:
  void push(const Request& request) override { queue_.push_back(request); }

  Request pop() override {
    if (queue_.empty()) throw std::logic_error("FifoQueue::pop on empty");
    return queue_.pop_front();
  }

  std::size_t size() const override { return queue_.size(); }

  bool bypassable_when_empty() const noexcept override { return true; }

  bool plain_fifo() const noexcept override { return true; }

 private:
  RequestRing queue_;
};

/// Two queues; primaries strictly first.  `reissue_lifo` selects the pop
/// order within the reissue queue.
class PrioritizedQueue final : public QueueDiscipline {
 public:
  explicit PrioritizedQueue(bool reissue_lifo) : reissue_lifo_(reissue_lifo) {}

  void push(const Request& request) override {
    // Only reissue copies are deprioritized; background interference work
    // shares the primary lane (it cannot be deferred by client policy).
    if (request.kind == CopyKind::kReissue) {
      reissue_.push_back(request);
    } else {
      primary_.push_back(request);
    }
  }

  Request pop() override {
    if (!primary_.empty()) return primary_.pop_front();
    if (reissue_.empty()) {
      throw std::logic_error("PrioritizedQueue::pop on empty");
    }
    return reissue_lifo_ ? reissue_.pop_back() : reissue_.pop_front();
  }

  std::size_t size() const override { return primary_.size() + reissue_.size(); }

  bool bypassable_when_empty() const noexcept override { return true; }

 private:
  bool reissue_lifo_;
  RequestRing primary_;
  RequestRing reissue_;
};

/// Per-connection FIFOs served in cyclic connection order, modeling
/// Redis's event loop: it "services requests in a round-robin fashion from
/// each active client connection", so a single long-running request delays
/// every connection's next round.
///
/// `batch` selects how much of a connection is drained per visit: one
/// request (fair polling) or the whole pending pipeline (exhaustive
/// "batch" servicing per the paper's §6.2 description), which extends a
/// slow request's backlog impact for multiple rounds.
class RoundRobinConnQueue final : public QueueDiscipline {
 public:
  explicit RoundRobinConnQueue(bool batch) : batch_(batch) {}

  void push(const Request& request) override {
    auto [it, inserted] = lanes_.try_emplace(request.connection);
    if (inserted) order_.push_back(request.connection);
    it->second.push_back(request);
    ++size_;
  }

  Request pop() override {
    if (size_ == 0) throw std::logic_error("RoundRobinConnQueue::pop on empty");
    // Advance cyclically to the next connection with pending work.  In
    // batch mode, stay on the current connection until its lane drains.
    for (std::size_t scanned = 0; scanned <= order_.size(); ++scanned) {
      cursor_ = cursor_ % order_.size();
      auto& lane = lanes_[order_[cursor_]];
      if (lane.empty()) {
        ++cursor_;
        continue;
      }
      Request r = lane.front();
      lane.pop_front();
      --size_;
      if (!batch_ || lane.empty()) ++cursor_;
      return r;
    }
    throw std::logic_error("RoundRobinConnQueue: size_/lane mismatch");
  }

  std::size_t size() const override { return size_; }

 private:
  bool batch_;
  std::unordered_map<std::uint32_t, std::deque<Request>> lanes_;
  std::vector<std::uint32_t> order_;
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
};

}  // namespace

std::unique_ptr<QueueDiscipline> make_queue_discipline(
    QueueDisciplineKind kind) {
  switch (kind) {
    case QueueDisciplineKind::kFifo:
      return std::make_unique<FifoQueue>();
    case QueueDisciplineKind::kPrioritizedFifo:
      return std::make_unique<PrioritizedQueue>(/*reissue_lifo=*/false);
    case QueueDisciplineKind::kPrioritizedLifo:
      return std::make_unique<PrioritizedQueue>(/*reissue_lifo=*/true);
    case QueueDisciplineKind::kRoundRobinConnections:
      return std::make_unique<RoundRobinConnQueue>(/*batch=*/false);
    case QueueDisciplineKind::kConnectionBatch:
      return std::make_unique<RoundRobinConnQueue>(/*batch=*/true);
  }
  throw std::invalid_argument("make_queue_discipline: unknown kind");
}

}  // namespace reissue::sim
