#include "reissue/sim/cluster.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "reissue/sim/event_queue.hpp"
#include "reissue/sim/server.hpp"

namespace reissue::sim {

namespace {

constexpr std::size_t kNoServer = std::numeric_limits<std::size_t>::max();

struct IssuedCopy {
  double dispatch = 0.0;
  double service = 0.0;
  double response = -1.0;
  bool cancelled = false;
};

struct QueryState {
  double arrival = 0.0;
  double primary_service = 0.0;
  std::size_t primary_server = kNoServer;
  double primary_response = -1.0;
  bool primary_cancelled = false;
  bool done = false;
  double completion = 0.0;
  std::uint32_t connection = 0;
  std::vector<IssuedCopy> reissues;
};

}  // namespace

double arrival_rate_for_utilization(double utilization, std::size_t servers,
                                    double mean_service) {
  if (!(utilization > 0.0 && utilization < 1.0)) {
    throw std::invalid_argument("utilization must be in (0,1)");
  }
  if (servers == 0 || !(mean_service > 0.0) || !std::isfinite(mean_service)) {
    throw std::invalid_argument(
        "arrival_rate_for_utilization: need servers > 0 and finite "
        "mean_service > 0 (heavy-tailed distributions with infinite mean "
        "need an empirically measured mean)");
  }
  return utilization * static_cast<double>(servers) / mean_service;
}

Cluster::Cluster(ClusterConfig config, std::shared_ptr<ServiceModel> service)
    : config_(config), service_(std::move(service)) {
  if (!service_) throw std::invalid_argument("Cluster: null service model");
  if (config_.queries == 0) {
    throw std::invalid_argument("Cluster: queries must be > 0");
  }
  if (config_.warmup >= config_.queries) {
    throw std::invalid_argument("Cluster: warmup must be < queries");
  }
  if (!config_.infinite_servers) {
    if (config_.servers == 0) {
      throw std::invalid_argument("Cluster: servers must be > 0");
    }
    if (!(config_.arrival_rate > 0.0)) {
      throw std::invalid_argument("Cluster: arrival_rate must be > 0");
    }
  }
  if (config_.connections == 0) {
    throw std::invalid_argument("Cluster: connections must be > 0");
  }
  if (!config_.server_speeds.empty()) {
    if (config_.infinite_servers) {
      throw std::invalid_argument(
          "Cluster: server_speeds require finite servers");
    }
    if (config_.server_speeds.size() != config_.servers) {
      throw std::invalid_argument(
          "Cluster: server_speeds size must equal servers");
    }
    for (double speed : config_.server_speeds) {
      if (!(speed > 0.0)) {
        throw std::invalid_argument("Cluster: server_speeds must be > 0");
      }
    }
  }
  for (const auto& phase : config_.arrival_phases) {
    if (!(phase.duration > 0.0) || !(phase.multiplier > 0.0)) {
      throw std::invalid_argument(
          "Cluster: arrival phases need positive duration and multiplier");
    }
  }
}

core::RunResult Cluster::run(const core::ReissuePolicy& policy) {
  const ClusterConfig& cfg = config_;
  const auto stages = policy.stages();

  EventQueue events;
  stats::Xoshiro256 root(cfg.seed);
  stats::Xoshiro256 arrival_rng = root.split(stats::stream_label("arrival"));
  stats::Xoshiro256 service_rng = root.split(stats::stream_label("service"));
  stats::Xoshiro256 lb_rng = root.split(stats::stream_label("lb"));
  stats::Xoshiro256 coin_rng = root.split(stats::stream_label("coin"));

  std::vector<QueryState> queries(cfg.queries);
  std::vector<Server> servers;
  std::unique_ptr<LoadBalancer> balancer;

  auto on_copy_complete = [&](const Request& request, double now) {
    if (request.kind == CopyKind::kBackground) return;
    QueryState& qs = queries[request.query_id];
    const double response = now - request.dispatch_time;
    if (request.kind == CopyKind::kPrimary) {
      qs.primary_response = response;
    } else {
      qs.reissues.at(request.copy_index - 1).response = response;
    }
    if (!qs.done) {
      qs.done = true;
      qs.completion = now;
    }
  };

  if (!cfg.infinite_servers) {
    servers.reserve(cfg.servers);
    for (std::size_t i = 0; i < cfg.servers; ++i) {
      servers.emplace_back(i, make_queue_discipline(cfg.queue));
    }
    for (auto& server : servers) {
      server.attach(&events, on_copy_complete);
      if (cfg.cancel_on_completion) {
        server.set_cancellation(
            [&queries](const Request& request) {
              if (request.kind == CopyKind::kBackground) return false;
              QueryState& qs = queries[request.query_id];
              if (!qs.done) return false;
              if (request.kind == CopyKind::kPrimary) {
                qs.primary_cancelled = true;
              } else {
                qs.reissues.at(request.copy_index - 1).cancelled = true;
              }
              return true;
            },
            cfg.cancellation_overhead);
      }
    }
    balancer = make_load_balancer(cfg.load_balancer);

    // Background interference episodes (see ClusterConfig): pre-scheduled
    // per-server Poisson arrivals over the expected arrival horizon.
    if (cfg.interference_rate > 0.0) {
      if (!cfg.interference_duration) {
        throw std::invalid_argument(
            "Cluster: interference_rate > 0 requires interference_duration");
      }
      stats::Xoshiro256 interference_rng =
          root.split(stats::stream_label("interference"));
      const double horizon_est =
          static_cast<double>(cfg.queries) / cfg.arrival_rate;
      for (std::size_t s = 0; s < cfg.servers; ++s) {
        double t = 0.0;
        for (;;) {
          t += -std::log(interference_rng.uniform_pos()) /
               cfg.interference_rate;
          if (t > horizon_est) break;
          const double duration =
              cfg.interference_duration->sample(interference_rng);
          events.schedule(t, [&servers, s, duration](double now) {
            Request background;
            background.query_id = std::numeric_limits<std::uint64_t>::max();
            background.kind = CopyKind::kBackground;
            background.dispatch_time = now;
            background.service_time = duration;
            background.connection = std::numeric_limits<std::uint32_t>::max();
            servers[s].submit(background, now);
          });
        }
      }
    }
  }

  auto dispatch_copy = [&](std::uint64_t id, CopyKind kind,
                           std::uint32_t copy_index, double service_time,
                           double now) {
    QueryState& qs = queries[id];
    Request request{id, kind, copy_index, now, service_time, qs.connection};
    if (cfg.infinite_servers) {
      events.schedule(now + service_time, [&, request](double at) {
        on_copy_complete(request, at);
      });
      return;
    }
    std::optional<std::size_t> exclude;
    if (kind == CopyKind::kReissue && cfg.exclude_primary_server) {
      exclude = qs.primary_server;
    }
    const std::size_t idx = balancer->pick(servers, lb_rng, exclude);
    if (kind == CopyKind::kPrimary) qs.primary_server = idx;
    if (!cfg.server_speeds.empty()) {
      request.service_time *= cfg.server_speeds[idx];
    }
    servers[idx].submit(request, now);
  };

  auto stage_check = [&](std::uint64_t id, core::ReissueStage stage,
                         double now) {
    QueryState& qs = queries[id];
    // Completion status is checked immediately before sending (paper §6.1).
    if (qs.done) return;
    if (!coin_rng.bernoulli(stage.probability)) return;
    const double y = service_->reissue(id, qs.primary_service, service_rng);
    qs.reissues.push_back(IssuedCopy{now, y, -1.0, false});
    dispatch_copy(id, CopyKind::kReissue,
                  static_cast<std::uint32_t>(qs.reissues.size()), y, now);
  };

  // Cyclic arrival-rate multiplier at time t (workload drift, §4.4).
  double phase_cycle = 0.0;
  for (const auto& phase : cfg.arrival_phases) phase_cycle += phase.duration;
  auto rate_at = [&](double t) {
    if (cfg.arrival_phases.empty()) return cfg.arrival_rate;
    double offset = std::fmod(t, phase_cycle);
    for (const auto& phase : cfg.arrival_phases) {
      if (offset < phase.duration) {
        return cfg.arrival_rate * phase.multiplier;
      }
      offset -= phase.duration;
    }
    return cfg.arrival_rate * cfg.arrival_phases.back().multiplier;
  };

  std::uint64_t next_query = 0;
  // Arrival closure schedules itself until cfg.queries queries exist.
  std::function<void(double)> arrive = [&](double now) {
    const std::uint64_t id = next_query++;
    QueryState& qs = queries[id];
    qs.arrival = now;
    qs.connection = static_cast<std::uint32_t>(id % cfg.connections);
    qs.primary_service = service_->primary(id, service_rng);
    dispatch_copy(id, CopyKind::kPrimary, 0, qs.primary_service, now);
    for (const auto& stage : stages) {
      events.schedule(now + stage.delay, [&, id, stage](double at) {
        stage_check(id, stage, at);
      });
    }
    if (next_query < cfg.queries) {
      const double dt = -std::log(arrival_rng.uniform_pos()) / rate_at(now);
      events.schedule(now + dt, arrive);
    }
  };

  events.schedule(0.0, arrive);
  const double horizon = events.run_to_completion();

  // ----- Collect logs (post-warmup queries only). --------------------
  core::RunResult result;
  const std::size_t logged = cfg.queries - cfg.warmup;
  result.queries = logged;
  result.query_latencies.reserve(logged);
  result.primary_latencies.reserve(logged);
  for (std::size_t id = cfg.warmup; id < cfg.queries; ++id) {
    const QueryState& qs = queries[id];
    if (!qs.done || qs.primary_response < 0.0) {
      throw std::logic_error("Cluster: query did not complete");
    }
    result.query_latencies.push_back(qs.completion - qs.arrival);
    result.primary_latencies.push_back(qs.primary_response);
    for (const auto& copy : qs.reissues) {
      ++result.reissues_issued;
      if (copy.cancelled) continue;  // no real Y observation
      result.reissue_latencies.push_back(copy.response);
      result.correlated_pairs.emplace_back(qs.primary_response, copy.response);
      result.reissue_delays.push_back(copy.dispatch - qs.arrival);
    }
  }

  if (!cfg.infinite_servers && horizon > 0.0) {
    double busy = 0.0;
    for (const auto& server : servers) busy += server.busy_time();
    result.utilization =
        busy / (static_cast<double>(cfg.servers) * horizon);
  }
  return result;
}

}  // namespace reissue::sim
