#include "reissue/sim/cluster.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "reissue/sim/simulation.hpp"

namespace reissue::sim {

double arrival_rate_for_utilization(double utilization, std::size_t servers,
                                    double mean_service) {
  if (!(utilization > 0.0 && utilization < 1.0)) {
    throw std::invalid_argument("utilization must be in (0,1)");
  }
  if (servers == 0 || !(mean_service > 0.0) || !std::isfinite(mean_service)) {
    throw std::invalid_argument(
        "arrival_rate_for_utilization: need servers > 0 and finite "
        "mean_service > 0 (heavy-tailed distributions with infinite mean "
        "need an empirically measured mean)");
  }
  return utilization * static_cast<double>(servers) / mean_service;
}

void validate(const ClusterConfig& config) {
  if (config.queries == 0) {
    throw std::invalid_argument("Cluster: queries must be > 0");
  }
  // Requests carry 32-bit query ids (sim/request.hpp); the all-ones id is
  // reserved for background interference copies.
  if (config.queries >= std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("Cluster: queries must fit in 32 bits");
  }
  if (config.warmup >= config.queries) {
    throw std::invalid_argument("Cluster: warmup must be < queries");
  }
  if (!config.infinite_servers) {
    if (config.servers == 0) {
      throw std::invalid_argument("Cluster: servers must be > 0");
    }
    if (!(config.arrival_rate > 0.0)) {
      throw std::invalid_argument("Cluster: arrival_rate must be > 0");
    }
  }
  if (config.connections == 0) {
    throw std::invalid_argument("Cluster: connections must be > 0");
  }
  if (config.cancellation_overhead < 0.0) {
    throw std::invalid_argument("Cluster: cancellation_overhead must be >= 0");
  }
  if (!config.server_speeds.empty()) {
    if (config.infinite_servers) {
      throw std::invalid_argument(
          "Cluster: server_speeds require finite servers");
    }
    if (config.server_speeds.size() != config.servers) {
      throw std::invalid_argument(
          "Cluster: server_speeds size must equal servers");
    }
    for (double speed : config.server_speeds) {
      if (!(speed > 0.0)) {
        throw std::invalid_argument("Cluster: server_speeds must be > 0");
      }
    }
  }
  for (const auto& phase : config.arrival_phases) {
    if (!(phase.duration > 0.0) || !(phase.multiplier > 0.0)) {
      throw std::invalid_argument(
          "Cluster: arrival phases need positive duration and multiplier");
    }
  }
  if (!config.arrival_schedule.empty()) {
    if (config.arrival_schedule.size() != config.queries) {
      throw std::invalid_argument(
          "Cluster: arrival_schedule size must equal queries");
    }
    if (!config.arrival_phases.empty()) {
      throw std::invalid_argument(
          "Cluster: arrival_schedule is incompatible with arrival_phases");
    }
    double prev = 0.0;
    for (double t : config.arrival_schedule) {
      if (!(t >= prev) || !std::isfinite(t)) {
        throw std::invalid_argument(
            "Cluster: arrival_schedule must be non-decreasing and >= 0");
      }
      prev = t;
    }
  }
  const ClusterConfig::FaultPlan& faults = config.faults;
  if (faults.any() && config.infinite_servers) {
    throw std::invalid_argument("Cluster: faults require finite servers");
  }
  if (faults.slowdown_rate < 0.0 || faults.degrade_rate < 0.0 ||
      faults.crash_mtbf < 0.0) {
    throw std::invalid_argument("Cluster: fault rates must be >= 0");
  }
  if (faults.slowdown_rate > 0.0) {
    if (!faults.slowdown_duration) {
      throw std::invalid_argument(
          "Cluster: slowdown_rate > 0 requires slowdown_duration");
    }
    if (!(faults.slowdown_factor > 1.0)) {
      throw std::invalid_argument("Cluster: slowdown_factor must be > 1");
    }
  }
  if (faults.degrade_rate > 0.0) {
    if (!faults.degrade_duration) {
      throw std::invalid_argument(
          "Cluster: degrade_rate > 0 requires degrade_duration");
    }
    if (!(faults.degrade_factor > 1.0)) {
      throw std::invalid_argument("Cluster: degrade_factor must be > 1");
    }
    if (faults.degrade_servers == 0 ||
        faults.degrade_servers > config.servers) {
      throw std::invalid_argument(
          "Cluster: degrade_servers must be in [1, servers]");
    }
  }
  if (faults.crash_mtbf > 0.0 && !faults.crash_downtime) {
    throw std::invalid_argument(
        "Cluster: crash_mtbf > 0 requires crash_downtime");
  }
  const ClusterConfig::FanoutPlan& fanout = config.fanout;
  if (fanout.copies == 0) {
    throw std::invalid_argument("Cluster: fanout copies (n) must be >= 1");
  }
  if (fanout.require == 0 || fanout.require > fanout.copies) {
    throw std::invalid_argument(
        "Cluster: fanout require (k) must be in [1, copies]");
  }
  if (fanout.active()) {
    if (config.infinite_servers) {
      throw std::invalid_argument("Cluster: fanout requires finite servers");
    }
    if (fanout.copies > config.servers) {
      throw std::invalid_argument(
          "Cluster: fanout copies (n) must not exceed servers");
    }
  }
}

Cluster::Cluster(ClusterConfig config, std::shared_ptr<ServiceModel> service)
    : config_(std::move(config)),
      service_(std::move(service)),
      scratch_(std::make_unique<RunScratch>()) {
  if (!service_) throw std::invalid_argument("Cluster: null service model");
  validate(config_);
}

Cluster::Cluster(Cluster&&) noexcept = default;
Cluster& Cluster::operator=(Cluster&&) noexcept = default;
Cluster::~Cluster() = default;

core::RunResult Cluster::run(const core::ReissuePolicy& policy) {
  validate(config_);  // before sizing the builder from a mutated config
  core::RunResultBuilder builder(config_.queries - config_.warmup);
  run_streaming(policy, builder);
  return builder.take();
}

void Cluster::run_streaming(const core::ReissuePolicy& policy,
                            core::RunObserver& observer) {
  validate(config_);  // mutable_config() may have broken the invariants
  Simulation simulation(config_, *service_, policy, observer, *scratch_,
                        sim_observer_);
  simulation.run();
}

void Cluster::run_streaming_unordered(const core::ReissuePolicy& policy,
                                      core::RunObserver& observer) {
  validate(config_);  // mutable_config() may have broken the invariants
  Simulation simulation(config_, *service_, policy, observer, *scratch_,
                        sim_observer_, /*unordered=*/true);
  simulation.run();
}

}  // namespace reissue::sim
