#include "reissue/sim/workloads.hpp"

#include <cmath>
#include <stdexcept>

namespace reissue::sim::workloads {

namespace {

stats::DistributionPtr default_pareto() {
  return stats::make_truncated(stats::make_pareto(kParetoShape, kParetoMode),
                               kServiceCap);
}

ClusterConfig base_config(const WorkloadOptions& opts) {
  ClusterConfig config;
  config.queries = opts.queries;
  config.warmup = opts.warmup;
  config.seed = opts.seed;
  return config;
}

}  // namespace

double empirical_mean_service(const stats::Distribution& dist, std::size_t n,
                              std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("empirical_mean_service: n > 0");
  stats::Xoshiro256 rng(seed);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += dist.sample(rng);
  return sum / static_cast<double>(n);
}

Cluster make_independent(const WorkloadOptions& opts) {
  ClusterConfig config = base_config(opts);
  config.infinite_servers = true;
  config.servers = 0;
  // Arrivals only sequence events for infinite-server runs; space them at
  // the default Queueing rate for comparability.
  config.arrival_rate = arrival_rate_for_utilization(
      kDefaultUtilization, kDefaultServers, default_pareto()->mean());
  return Cluster(config, make_iid_service(default_pareto()));
}

Cluster make_correlated(double ratio, const WorkloadOptions& opts) {
  ClusterConfig config = base_config(opts);
  config.infinite_servers = true;
  config.servers = 0;
  config.arrival_rate = arrival_rate_for_utilization(
      kDefaultUtilization, kDefaultServers, default_pareto()->mean());
  return Cluster(config, make_correlated_service(default_pareto(), ratio));
}

Cluster make_queueing(double utilization, double ratio,
                      const WorkloadOptions& opts) {
  ClusterConfig config = base_config(opts);
  config.servers = kDefaultServers;
  config.load_balancer = LoadBalancerKind::kRandom;
  config.queue = QueueDisciplineKind::kFifo;
  config.arrival_rate = arrival_rate_for_utilization(
      utilization, config.servers, default_pareto()->mean());
  std::shared_ptr<ServiceModel> service =
      ratio > 0.0 ? make_correlated_service(default_pareto(), ratio)
                  : std::shared_ptr<ServiceModel>(
                        make_iid_service(default_pareto()));
  return Cluster(config, std::move(service));
}

Cluster make_sensitivity(const SensitivityOptions& opts) {
  stats::DistributionPtr service_dist =
      opts.service ? opts.service : default_pareto();
  double mean = service_dist->mean();
  if (!std::isfinite(mean)) {
    mean = empirical_mean_service(*service_dist);
  }
  ClusterConfig config = base_config(opts.base);
  config.servers = opts.servers;
  config.load_balancer = opts.load_balancer;
  config.queue = opts.queue;
  config.arrival_rate =
      arrival_rate_for_utilization(opts.utilization, opts.servers, mean);
  std::shared_ptr<ServiceModel> service =
      opts.ratio > 0.0
          ? make_correlated_service(service_dist, opts.ratio)
          : std::shared_ptr<ServiceModel>(make_iid_service(service_dist));
  return Cluster(config, std::move(service));
}

}  // namespace reissue::sim::workloads
