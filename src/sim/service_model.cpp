#include "reissue/sim/service_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace reissue::sim {

void ServiceModel::primary_batch(std::uint64_t first_query,
                                 std::span<double> out,
                                 stats::Xoshiro256& rng) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = primary(first_query + i, rng);
  }
}

void ServiceModel::reissue_batch(std::span<const double> primary_services,
                                 std::span<double> out,
                                 stats::Xoshiro256& rng) {
  // Query ids are not part of this form (see the header); 0 keeps the
  // built-in models' id-independent draws exact.
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = reissue(0, primary_services[i], rng);
  }
}

void ServiceModel::draw_batch(std::span<double>, stats::Xoshiro256&) {
  throw std::logic_error("ServiceModel::draw_batch: draw_order() is not "
                         "kSharedStream");
}

double ServiceModel::primary_from_draw(double) const {
  throw std::logic_error("ServiceModel::primary_from_draw: draw_order() is "
                         "not kSharedStream");
}

double ServiceModel::reissue_from_draw(double, double) const {
  throw std::logic_error("ServiceModel::reissue_from_draw: draw_order() is "
                         "not kSharedStream");
}

namespace {

class IidService final : public ServiceModel {
 public:
  explicit IidService(stats::DistributionPtr dist) : dist_(std::move(dist)) {
    if (!dist_) throw std::invalid_argument("IidService: null distribution");
  }

  double primary(std::uint64_t, stats::Xoshiro256& rng) override {
    return dist_->sample(rng);
  }

  double reissue(std::uint64_t, double, stats::Xoshiro256& rng) override {
    return dist_->sample(rng);
  }

  void primary_batch(std::uint64_t, std::span<double> out,
                     stats::Xoshiro256& rng) override {
    dist_->sample_batch(out, rng);
  }

  void reissue_batch(std::span<const double>, std::span<double> out,
                     stats::Xoshiro256& rng) override {
    dist_->sample_batch(out, rng);
  }

  DrawOrder draw_order() const override { return DrawOrder::kSharedStream; }

  void draw_batch(std::span<double> out, stats::Xoshiro256& rng) override {
    dist_->sample_batch(out, rng);
  }

  double primary_from_draw(double draw) const override { return draw; }

  double reissue_from_draw(double draw, double) const override { return draw; }

  std::string name() const override { return "IID[" + dist_->name() + "]"; }

 private:
  stats::DistributionPtr dist_;
};

class CorrelatedService final : public ServiceModel {
 public:
  CorrelatedService(stats::DistributionPtr dist, double ratio)
      : dist_(std::move(dist)), ratio_(ratio) {
    if (!dist_) throw std::invalid_argument("CorrelatedService: null dist");
    if (ratio < 0.0) {
      throw std::invalid_argument("CorrelatedService: ratio must be >= 0");
    }
  }

  double primary(std::uint64_t, stats::Xoshiro256& rng) override {
    return dist_->sample(rng);
  }

  double reissue(std::uint64_t, double primary_service,
                 stats::Xoshiro256& rng) override {
    return ratio_ * primary_service + dist_->sample(rng);
  }

  void primary_batch(std::uint64_t, std::span<double> out,
                     stats::Xoshiro256& rng) override {
    dist_->sample_batch(out, rng);
  }

  void reissue_batch(std::span<const double> primary_services,
                     std::span<double> out, stats::Xoshiro256& rng) override {
    dist_->sample_batch(out, rng);
    for (std::size_t i = 0; i < out.size(); ++i) {
      // Same operands, same order as the scalar reissue(): ratio*x + Z.
      out[i] = ratio_ * primary_services[i] + out[i];
    }
  }

  DrawOrder draw_order() const override { return DrawOrder::kSharedStream; }

  void draw_batch(std::span<double> out, stats::Xoshiro256& rng) override {
    dist_->sample_batch(out, rng);
  }

  double primary_from_draw(double draw) const override { return draw; }

  double reissue_from_draw(double draw, double primary_service) const override {
    return ratio_ * primary_service + draw;
  }

  std::string name() const override {
    return "Correlated[r=" + std::to_string(ratio_) + "," + dist_->name() + "]";
  }

 private:
  stats::DistributionPtr dist_;
  double ratio_;
};

class IdenticalService final : public ServiceModel {
 public:
  explicit IdenticalService(stats::DistributionPtr dist)
      : dist_(std::move(dist)) {
    if (!dist_) throw std::invalid_argument("IdenticalService: null dist");
  }

  double primary(std::uint64_t, stats::Xoshiro256& rng) override {
    return dist_->sample(rng);
  }

  double reissue(std::uint64_t, double primary_service,
                 stats::Xoshiro256&) override {
    return primary_service;
  }

  void primary_batch(std::uint64_t, std::span<double> out,
                     stats::Xoshiro256& rng) override {
    dist_->sample_batch(out, rng);
  }

  void reissue_batch(std::span<const double> primary_services,
                     std::span<double> out, stats::Xoshiro256&) override {
    std::copy(primary_services.begin(), primary_services.end(), out.begin());
  }

  DrawOrder draw_order() const override { return DrawOrder::kPrimaryOnly; }

  std::string name() const override {
    return "Identical[" + dist_->name() + "]";
  }

 private:
  stats::DistributionPtr dist_;
};

class TraceService final : public ServiceModel {
 public:
  TraceService(std::vector<double> trace, bool resample)
      : trace_(std::move(trace)), resample_(resample) {
    if (trace_.empty()) throw std::invalid_argument("TraceService: empty trace");
    for (double v : trace_) {
      if (!(v >= 0.0)) {
        throw std::invalid_argument("TraceService: negative service time");
      }
    }
  }

  double primary(std::uint64_t query_id, stats::Xoshiro256& rng) override {
    if (resample_) return trace_[rng.below(trace_.size())];
    return trace_[query_id % trace_.size()];
  }

  double reissue(std::uint64_t, double primary_service,
                 stats::Xoshiro256&) override {
    // The reissue copy executes the same query: identical intrinsic cost.
    return primary_service;
  }

  void primary_batch(std::uint64_t first_query, std::span<double> out,
                     stats::Xoshiro256& rng) override {
    const std::size_t n = trace_.size();
    if (resample_) {
      for (double& v : out) v = trace_[rng.below(n)];
      return;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = trace_[(first_query + i) % n];
    }
  }

  void reissue_batch(std::span<const double> primary_services,
                     std::span<double> out, stats::Xoshiro256&) override {
    std::copy(primary_services.begin(), primary_services.end(), out.begin());
  }

  DrawOrder draw_order() const override { return DrawOrder::kPrimaryOnly; }

  std::string name() const override {
    return "Trace[n=" + std::to_string(trace_.size()) + "]";
  }

 private:
  std::vector<double> trace_;
  bool resample_;
};

}  // namespace

std::unique_ptr<ServiceModel> make_iid_service(stats::DistributionPtr dist) {
  return std::make_unique<IidService>(std::move(dist));
}

std::unique_ptr<ServiceModel> make_correlated_service(
    stats::DistributionPtr dist, double ratio) {
  return std::make_unique<CorrelatedService>(std::move(dist), ratio);
}

std::unique_ptr<ServiceModel> make_identical_service(
    stats::DistributionPtr dist) {
  return std::make_unique<IdenticalService>(std::move(dist));
}

std::unique_ptr<ServiceModel> make_trace_service(std::vector<double> trace,
                                                 bool resample) {
  return std::make_unique<TraceService>(std::move(trace), resample);
}

}  // namespace reissue::sim
