// The per-run simulation engine behind Cluster::run.
//
// One Simulation owns everything a single run touches — RNG streams, the
// typed event queue, per-query state, servers, the load balancer — and
// dispatches the POD SimEvents of event.hpp from a single switch.  This
// replaces the previous design in which Cluster::run captured the same
// state in nested std::function closures, paying a heap allocation per
// scheduled event.
//
// Per-query state is structure-of-arrays: the merge loop's stage-retire
// check touches only the `done` byte array (64 queries per cache line),
// the completion path touches only the completion/primary-response
// arrays, and the cold dispatch-side fields (primary server, service
// draw) live in their own arrays — nothing shares a cache line with data
// another loop needs.  Arrival times are never duplicated per query; the
// pre-drawn arrival_times array is the single source.
//
// Per-query copy bookkeeping lives in a pooled arena of sibling-group
// records (detail::SiblingGroups): each query owns one dense record of
// its non-primary copies — fork-join fan-out siblings first, then at most
// one reissue copy per policy stage — so copy c >= 1 of query q is
// arena[q * stride + c - 1].  No per-query vector allocations, and the
// hot-path lookups are asserted unchecked accesses instead of .at().  The
// degenerate group (fanout n = 1) is the paper's model and reproduces the
// old queries x stage_count reissue arena byte for byte.
//
// Only service completions and interference episodes go through the event
// heap.  The other two event sources are already time-ordered streams —
// the next client arrival (one pending at a time) and each policy stage's
// checks (arrival + d_i, so per-stage FIFO order) — and are merged with
// the heap by (time, seq) key (EventQueue::claim_key), which preserves the
// exact total order the all-heap implementation produced while cutting
// heap traffic by ~2/3 on reissue-heavy runs.
//
// Results are delivered through a core::RunObserver, which is what makes
// LogMode a caller choice: Cluster::run streams into a RunResultBuilder
// (full logs, bit-identical to the closure-based implementation for equal
// seeds), Cluster::run_streaming streams into the caller's accumulators
// in the same query-id order, and Cluster::run_streaming_unordered feeds
// the caller from inside handle_completion — completion order, no
// end-of-run replay pass (core::LogMode::kStreamingUnordered).
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/event.hpp"
#include "reissue/sim/event_queue.hpp"
#include "reissue/sim/load_balancer.hpp"
#include "reissue/sim/server.hpp"
#include "reissue/sim/sim_observer.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::sim {

namespace detail {

// All per-query arenas are allocated uninitialized: every field is
// written before it can be read (most at arrival; `completion` at first
// completion, `primary_server` at primary dispatch), and an IssuedCopy
// slot is fully written when its stage issues; slots at index >=
// reissue_count are never read.
struct IssuedCopy {
  double dispatch;
  double response;  // -1 until the copy completes; +inf if it failed
  /// The copy's own (unscaled) service requirement — what a client retry
  /// re-dispatches when every server was down at dispatch time.
  double service;
  bool cancelled;
};

/// Per-server fault-layer state (ClusterConfig::FaultPlan); only
/// allocated, and only consulted, on fault-bearing runs.
struct ServerFaultState {
  /// Product of the active slowdown/degrade factors; scales service costs
  /// at service start.
  double scale = 1.0;
  /// Recovery time of the current crash (valid while down).
  double down_until = 0.0;
  /// Scheduled completion time of the in-service copy — what a crash
  /// subtracts to refund the unserved busy time.
  double service_end = 0.0;
  /// Bumped at every crash; completions scheduled under an older
  /// generation are stale (their copy died with the crash).
  std::uint64_t generation = 0;
  std::uint16_t slow_depth = 0;
  std::uint16_t degrade_depth = 0;
  bool down = false;
};

/// Hot per-query record (32 B, two queries per cache line).  Everything a
/// completion touches except `done` lives here: splitting these fields
/// into parallel arrays costs a completion several cache-line streams
/// where one suffices.  `done` stays a dense byte array of its own — the
/// stage-retire scan reads it alone, 64 queries per line — and arrival
/// times stay in the pre-drawn batch arena.
struct QueryHot {
  double completion;
  double primary_response;
  double primary_service;
  std::uint32_t primary_server;
  std::uint16_t reissue_count;
  /// Responses counted toward the group's k-of-n completion rule.  Only
  /// initialized (and only read) on fan-out runs: the degenerate group
  /// completes on the first response without touching this field.
  std::uint16_t responses;
};
static_assert(sizeof(QueryHot) == 32);

/// One pending reissue-stage check in a per-stage FIFO: just the claimed
/// merge sequence number.  The query id is implicit (queries enter every
/// stage ring in id order) and the fire time is recomputed exactly as it
/// was claimed — arrival_times[id] + the ring's stage delay, the same two
/// operands in the same order — so storing it would double the ring
/// traffic for no information.
using StageEntry = std::uint64_t;

/// Pointer-based FIFO over a pre-sized slab (one slot per query, so no
/// reallocation can invalidate the cursors); head - base == the query id
/// of the front entry.
struct StageRing {
  StageEntry* base = nullptr;
  StageEntry* head = nullptr;
  StageEntry* tail = nullptr;
  /// This ring's reissue-stage delay (mirrors the policy stage).
  double delay = 0.0;

  [[nodiscard]] bool empty() const noexcept { return head == tail; }
  [[nodiscard]] StageEntry front_seq() const noexcept { return *head; }
  void push(StageEntry seq) noexcept { *tail++ = seq; }
};

/// The per-query sibling group (ClusterConfig::FanoutPlan): layout of the
/// pooled copy arena, the k-of-n completion rule, and the policy-stage
/// check schedule — the bookkeeping Simulation used to interleave with its
/// reissue special cases.  Each query's record is `stride` consecutive
/// IssuedCopy slots: fan-out siblings at 0..fanout-2, then one slot per
/// reissue stage; group copy index c >= 1 (request.copy_index) maps to
/// slot c - 1 uniformly, so sibling and reissue copies share every
/// dispatch / cancel / retry path.
struct SiblingGroups {
  IssuedCopy* arena = nullptr;
  std::uint32_t fanout = 1;        // n: group size including the primary
  std::uint32_t require = 1;       // k: responses that complete the query
  std::uint32_t reissue_base = 0;  // fanout - 1: first reissue slot
  std::size_t stride = 0;          // reissue_base + stage count
  /// Per-stage FIFOs of pending reissue checks (claim_key-merged).
  std::span<StageRing> rings;

  [[nodiscard]] bool active() const noexcept { return fanout > 1; }

  /// The arena slot of group copy `copy_index` (1-based: siblings, then
  /// issued reissue copies).
  [[nodiscard]] IssuedCopy& copy(std::uint64_t id,
                                 std::uint32_t copy_index) const noexcept {
    assert(copy_index >= 1 && copy_index <= stride);
    return arena[id * stride + copy_index - 1];
  }
  /// The arena slot of the `slot`-th issued reissue copy.
  [[nodiscard]] IssuedCopy& reissue(std::uint64_t id,
                                    std::uint32_t slot) const noexcept {
    assert(reissue_base + slot < stride);
    return arena[id * stride + reissue_base + slot];
  }
  /// The group copy index of the `slot`-th issued reissue copy.
  [[nodiscard]] std::uint32_t reissue_index(std::uint32_t slot) const noexcept {
    return reissue_base + slot + 1;
  }

  /// Applies one counted response to the completion rule; true when it is
  /// the completing (k-th) response.  Only called while the query is not
  /// done, and the degenerate group completes on the first response
  /// without touching the tally.
  [[nodiscard]] bool complete_one(QueryHot& hot) const noexcept {
    return !active() || ++hot.responses >= require;
  }

  /// Enqueues the arriving query's stage checks: claimed in scheduling
  /// order, exactly where the all-heap implementation called schedule();
  /// queries enter each ring in id order.
  void schedule_checks(EventQueue<SimEvent>& events, double now) const {
    for (StageRing& ring : rings) {
      ring.push(events.claim_key_trusted(now + ring.delay).seq);
    }
  }
};

/// Uninitialized growable array (the capacity-tracking half of the scratch
/// reuse story; contents are meaningless between runs by design).
template <typename T>
struct RawArena {
  std::unique_ptr<T[]> data;
  std::size_t capacity = 0;

  /// Ensures room for `n` elements, reallocating uninitialized storage
  /// only on growth; never preserves contents.
  T* ensure(std::size_t n) {
    if (n > capacity) {
      data = std::make_unique_for_overwrite<T[]>(n);
      capacity = n;
    }
    return data.get();
  }
};

}  // namespace detail

/// Reusable per-run buffers.  A Cluster keeps one RunScratch across runs
/// so replications and benches touch warm pages instead of paying tens of
/// MB of first-touch page faults per run; every byte handed out is
/// rewritten by the next run before being read (see detail::RawArena).
/// The server pool persists too: a run whose (count, discipline) matches
/// the previous run's reuses the servers — and their heap-allocated queue
/// disciplines and request rings — after a cheap stat reset, so batched
/// replications stop paying per-run construction.
struct RunScratch {
  RunScratch() = default;
  RunScratch(const RunScratch&) = delete;
  RunScratch& operator=(const RunScratch&) = delete;
  RunScratch(RunScratch&&) = default;
  RunScratch& operator=(RunScratch&&) = default;

  // Per-query state (indexed by query id): the dense stage-retire byte
  // array plus the hot completion-path record (see detail::QueryHot).
  detail::RawArena<std::uint8_t> done;
  detail::RawArena<detail::QueryHot> query_hot;

  detail::RawArena<detail::IssuedCopy> arena;
  std::vector<detail::StageRing> stage_rings;
  detail::RawArena<detail::StageEntry> stage_entries;
  EventQueue<SimEvent> events;
  /// Scan-mode completion queue; the payload is just the server index (the
  /// in-service Request already lives on the server).
  BoundedMinQueue<std::uint32_t> completions;
  detail::RawArena<double> arrival_times;
  detail::RawArena<double> primary_services;
  detail::RawArena<double> service_draws;
  /// Candidate-server list for fork-join spread placement (fan-out runs
  /// with FanoutPlan::spread() only).
  detail::RawArena<std::uint32_t> spread_candidates;

  /// Warm server pool (see struct docs).  `servers_queue` records the
  /// discipline the pool was built with; `servers_ready` is false until
  /// the first run builds it.
  std::vector<Server> servers;
  QueueDisciplineKind servers_queue = QueueDisciplineKind::kFifo;
  bool servers_ready = false;

  /// Per-server fault state; sized (and reset) per fault-bearing run.
  std::vector<detail::ServerFaultState> fault_states;
};

class Simulation {
 public:
  /// Binds a run to its inputs; all referenced objects must outlive the
  /// Simulation.  Construction derives the RNG streams and pre-schedules
  /// interference episodes; run() executes to completion and feeds
  /// `observer`.  `scratch` carries reusable buffers across runs; a given
  /// RunScratch must serve at most one live Simulation at a time.
  /// `sim_observer` (optional) receives the passive per-event hooks of
  /// sim_observer.hpp; it never changes what the run computes.
  /// `unordered` selects the completion-order observation contract
  /// (core::LogMode::kStreamingUnordered): the observer is fed from
  /// handle_completion and the finalize replay pass is skipped.
  Simulation(const ClusterConfig& config, ServiceModel& service,
             const core::ReissuePolicy& policy, core::RunObserver& observer,
             RunScratch& scratch, SimObserver* sim_observer = nullptr,
             bool unordered = false);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Runs the whole simulation and streams the post-warmup observations
  /// into the observer.  Call at most once.
  void run();

 private:
  using IssuedCopy = detail::IssuedCopy;
  using StageRing = detail::StageRing;

  /// True when hook calls must fire: observability is compiled in and an
  /// observer is installed.  A false constant under -DREISSUE_OBS=OFF, so
  /// every `if (observed())` block folds out of the binary.
  [[nodiscard]] bool observed() const noexcept {
#if REISSUE_OBS_ENABLED
    return obs_ != nullptr;
#else
    return false;
#endif
  }

  // The whole hot call tree below run_loop is templated on `Observed` and
  // `Unordered`: the unobserved ordered instantiations carry no hook
  // calls, no counter updates, no null checks and no emission branches —
  // the same machine code the simulator had before either axis existed.
  template <int StageCount>
  void run_stages();
  template <int StageCount, bool ScanMode>
  void run_mode();
  template <int StageCount, bool ScanMode, bool Observed, bool Unordered>
  void run_loop();
  template <bool Observed, bool Unordered>
  void dispatch(const SimEvent& event, double now);
  template <bool Observed, bool Unordered>
  void on_arrival(double now);
  template <bool Observed, bool Unordered>
  void on_reissue_stage(std::uint64_t id, std::size_t stage_index, double now);
  template <bool Observed, bool Unordered>
  void handle_completion(CopyKind kind, std::uint64_t id,
                         std::uint32_t copy_index, double dispatch_time,
                         double now);
  /// Dispatches the arriving query's whole sibling group: the primary via
  /// dispatch_copy, then each fan-out sibling — spread placement picks
  /// among the live servers not already holding a copy of the group.
  template <bool Observed, bool Unordered>
  void dispatch_group(std::uint64_t id, std::uint32_t connection,
                      double primary_service, double now);
  /// Picks a server for the copy and places it; returns the chosen server
  /// index, or SimObserver::kNoServer when the copy did not land on one
  /// (infinite servers, or a deferred kClientRetry).
  template <bool Observed, bool Unordered>
  std::uint32_t dispatch_copy(std::uint64_t id, CopyKind kind,
                              std::uint32_t copy_index,
                              std::uint32_t connection, double service_time,
                              double now);
  /// The post-pick half of dispatch: records the primary's server, applies
  /// the per-server speed, reports the dispatch, submits.
  template <bool Observed, bool Unordered>
  void place_copy(Request& request, std::size_t server, double now);
  template <bool Observed, bool Unordered>
  void complete_on_server(std::uint32_t server, double now);
  template <bool Observed, bool Unordered>
  void submit_to_server(std::size_t server, const Request& request, double now);
  template <bool Observed, bool Unordered>
  void start_next_on(std::size_t server, double now);
  // Fault-layer event handlers (ClusterConfig::FaultPlan).
  template <bool Observed, bool Unordered>
  void on_fault_begin(const SimEvent& event, double now);
  template <bool Observed, bool Unordered>
  void on_fault_end(const SimEvent& event, double now);
  /// A copy died with its crashed server: re-dispatch a primary, abandon a
  /// reissue copy (logged cancelled with +inf response).
  template <bool Observed, bool Unordered>
  void fail_copy(const Request& request, std::uint32_t server, double now);
  void recompute_scale(detail::ServerFaultState& state) const noexcept;
  /// Speed multiplier in effect on `server` (1.0 unless slowdown/degrade
  /// faults are active — x * 1.0 is exact, so fault-free runs are
  /// bit-identical to the pre-fault simulator).
  [[nodiscard]] double speed_of(std::size_t server) const noexcept {
    return slowdowns_on_ ? fault_states_[server].scale : 1.0;
  }
  /// The query's unscaled primary service requirement, wherever it lives.
  [[nodiscard]] double primary_service_of(std::uint64_t id) const noexcept {
    return primary_services_ != nullptr ? primary_services_[id]
                                        : hot_[id].primary_service;
  }
  /// Earliest recovery among down servers (precondition: at least one).
  [[nodiscard]] double min_down_until() const noexcept;
  void schedule_completion(double time, std::size_t server);
  void schedule_arrival(double time);
  [[nodiscard]] double next_service_draw();
  [[nodiscard]] double rate_at(double t) const;
  /// Builds a copy's Request, applying the erasure-coding service scale
  /// (the one chokepoint every dispatch and retry path funnels through).
  [[nodiscard]] Request make_request(std::uint64_t id, CopyKind kind,
                                     std::uint32_t copy_index,
                                     std::uint32_t connection,
                                     double service_time,
                                     double now) const noexcept;
  void finalize(double horizon);

  /// Lazy-cancellation predicate consulted at service start; marks the
  /// copy cancelled as a side effect (the extension of ClusterConfig::
  /// cancel_on_completion).  `server`/`now` only feed the observer hook.
  /// A cancelled copy still occupies its server for cancellation_overhead
  /// and then completes like any other, so the unordered emission needs no
  /// special case here: handle_completion sees every issued copy exactly
  /// once, cancelled or not.
  template <bool Observed, bool Unordered>
  [[nodiscard]] auto cancel_check(std::size_t server, double now) {
    return [this, server, now](const Request& request) {
      if (!cfg_.cancel_on_completion) return false;
      if (request.kind == CopyKind::kBackground) return false;
      if (!done_[request.query_id]) return false;
      if (request.kind != CopyKind::kPrimary) {
        group_.copy(request.query_id, request.copy_index).cancelled = true;
      }
      if constexpr (Observed) {
        ++counters_.copies_cancelled;
        if (request.kind == CopyKind::kSibling) ++counters_.siblings_cancelled;
        obs_->on_copy_cancelled(now, static_cast<std::uint32_t>(server),
                                request.query_id, request.copy_index);
      }
      return true;
    };
  }

  const ClusterConfig& cfg_;
  ServiceModel& service_;
  core::RunObserver& observer_;
  /// Optional passive event observer (sim_observer.hpp); null for the
  /// common unobserved run.
  SimObserver* obs_ = nullptr;
  /// Whole-run counters, maintained only while observed().
  RunCounters counters_;
  /// Currently in-flight reissue copies (observed() bookkeeping for
  /// counters_.reissue_inflight_peak).
  std::uint64_t reissue_inflight_ = 0;
  /// Reissue copies that delivered their query's completing response
  /// (observed() bookkeeping for counters_.reissues_wasted).
  std::uint64_t reissue_wins_ = 0;
  /// Sibling responses that counted toward their group's completion rule
  /// (observed() bookkeeping for counters_.siblings_wasted).
  std::uint64_t sibling_useful_ = 0;
  std::span<const core::ReissueStage> stages_;

  EventQueue<SimEvent>& events_;
  /// Completion events on finite-server, interference-free runs: at most
  /// one pending per server, so a compact scan queue beats the heap (which
  /// then stays empty).  Keys come from events_.claim_key — one total
  /// order.
  BoundedMinQueue<std::uint32_t>& completions_;
  bool scan_completions_ = false;
  /// Completion-order observation contract (see constructor).
  bool unordered_ = false;
  /// cfg_.warmup, cached next to the completion-path hot fields.
  std::uint64_t warmup_ = 0;
  /// Unordered-mode totals: post-warmup queries emitted (validated
  /// against the expected count at finalize) and post-warmup reissue
  /// copies issued (the replay pass used to re-derive both).
  std::uint64_t logged_queries_ = 0;
  std::uint64_t logged_reissues_ = 0;
  stats::Xoshiro256 arrival_rng_;
  stats::Xoshiro256 service_rng_;
  stats::Xoshiro256 lb_rng_;
  stats::Xoshiro256 coin_rng_;
  /// Sibling service draws (fork-join fan-out).  Derived — and the parent
  /// stream perturbed — only when the plan is active, so fanout-free runs
  /// consume exactly the streams they always did.
  stats::Xoshiro256 fanout_rng_;

  // Per-query state (see RunScratch / detail::QueryHot).
  std::uint8_t* done_ = nullptr;
  detail::QueryHot* hot_ = nullptr;
  /// The pooled sibling-group arena and its completion rule / stage
  /// schedule (detail::SiblingGroups).
  detail::SiblingGroups group_;
  /// 1/k service scaling of erasure-coded fan-out (1.0 otherwise; never
  /// applied when 1.0, so fanout-free service costs are untouched).
  double ec_scale_ = 1.0;
  /// Spread-placement candidate scratch (RunScratch::spread_candidates);
  /// null unless the fan-out plan spreads.
  std::uint32_t* spread_candidates_ = nullptr;
  /// Pre-drawn arrival times (always) and primary service times (policies
  /// without reissue stages, plus DrawOrder::kPrimaryOnly models, whose
  /// service stream is consumed in query-id order either way).  Values are
  /// bit-identical to drawing inside the event loop; batching merely lets
  /// consecutive pow/log calls pipeline instead of serializing behind the
  /// event dispatch dependency chain.
  const double* arrival_times_ = nullptr;
  const double* primary_services_ = nullptr;
  /// DrawOrder::kSharedStream models with reissue stages: primary and
  /// reissue draws interleave on the service stream in event order, which
  /// pins *when* each draw is consumed but not *what* it is — the k-th
  /// stream draw has the same value whichever call consumes it.  So the
  /// stream is refilled in chunks through ServiceModel::draw_batch (the
  /// batched libm transforms) and handed out one value at a time in event
  /// order via next_service_draw().
  double* draw_buffer_ = nullptr;
  std::size_t draw_pos_ = 0;
  std::size_t draw_len_ = 0;
  bool batch_shared_stream_ = false;
  /// The warm server pool (RunScratch::servers); empty for
  /// infinite-server runs.
  std::span<Server> servers_;
  /// Fault layer (ClusterConfig::FaultPlan); all flags false and the span
  /// empty on fault-free runs, whose hot paths stay byte-identical.
  bool faults_on_ = false;
  bool crashes_on_ = false;
  bool slowdowns_on_ = false;
  std::span<detail::ServerFaultState> fault_states_;
  /// Servers currently accepting dispatch (cfg_.servers minus down).
  std::size_t live_servers_ = 0;
  /// Only constructed for stateful balancer kinds; the default kRandom
  /// path is devirtualized and never consults it.
  std::unique_ptr<LoadBalancer> balancer_;

  /// The single pending client-arrival event (claim_key-merged).
  EventKey arrival_key_;
  bool arrival_pending_ = false;

  std::uint64_t next_query_ = 0;
  /// Round-robin client connection cursor; equals id % cfg_.connections
  /// for sequential ids without paying an integer division per arrival.
  std::uint32_t next_connection_ = 0;
  double phase_cycle_ = 0.0;
  /// Latest key time of a dead stage check retired without a merge
  /// iteration (see run_loop); folded into the finalize horizon so the
  /// utilization denominator matches the one the skip-free loop produced.
  double skipped_horizon_ = 0.0;
};

}  // namespace reissue::sim
