// A single-worker server with a pluggable queue discipline.  The server
// schedules its own service-completion events on the shared EventQueue and
// reports each finished copy through a completion handler installed by the
// cluster.  Busy time is accumulated for utilization measurement.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "reissue/sim/event_queue.hpp"
#include "reissue/sim/queue_discipline.hpp"
#include "reissue/sim/request.hpp"

namespace reissue::sim {

/// Called when a copy finishes service.  `now` is the completion time.
using CompletionHandler = std::function<void(const Request&, double now)>;

/// Optional hook consulted when a request reaches the head of the queue;
/// returning true replaces its service time with `cancel_cost` (the
/// cancellation-overhead extension, cf. Lee et al. [20]).
using CancellationCheck = std::function<bool(const Request&)>;

class Server {
 public:
  Server(std::size_t id, std::unique_ptr<QueueDiscipline> queue);

  Server(Server&&) noexcept = default;
  Server& operator=(Server&&) noexcept = default;

  /// Wires the server to the simulation.  Must be called before submit().
  void attach(EventQueue* events, CompletionHandler on_complete);

  /// Enables lazy cancellation: requests whose check returns true at
  /// service start are charged `cancel_cost` instead of their service time.
  void set_cancellation(CancellationCheck check, double cancel_cost);

  /// Accepts a copy at time `now`; starts service immediately if idle.
  void submit(const Request& request, double now);

  [[nodiscard]] std::size_t id() const noexcept { return id_; }
  [[nodiscard]] bool busy() const noexcept { return busy_; }

  /// Queued copies, excluding the one in service.
  [[nodiscard]] std::size_t queue_length() const { return queue_->size(); }

  /// Queue length plus the in-service copy; the load signal used by
  /// Min-of-Two / Min-of-All balancing.
  [[nodiscard]] std::size_t load() const {
    return queue_->size() + (busy_ ? 1 : 0);
  }

  /// Total time spent serving copies.
  [[nodiscard]] double busy_time() const noexcept { return busy_time_; }

  /// Copies fully served.
  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }

 private:
  void start_next(double now);
  void finish(Request request, double now);

  std::size_t id_;
  std::unique_ptr<QueueDiscipline> queue_;
  EventQueue* events_ = nullptr;
  CompletionHandler on_complete_;
  CancellationCheck cancel_check_;
  double cancel_cost_ = 0.0;
  bool busy_ = false;
  double busy_time_ = 0.0;
  std::size_t completed_ = 0;
};

}  // namespace reissue::sim
