// A single-worker server with a pluggable queue discipline.
//
// The server is a passive component of the event core: it holds its queue
// and the one copy in service, while the Simulation (simulation.hpp) owns
// event scheduling.  The caller enqueues copies, asks the server to start
// the next one (receiving the service cost to schedule as a kCopyComplete
// event) and hands completions back via finish().  No callbacks are stored,
// so the hot path involves no type-erased calls.  Busy time is accumulated
// for utilization measurement.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "reissue/sim/queue_discipline.hpp"
#include "reissue/sim/request.hpp"

namespace reissue::sim {

class Server {
 public:
  Server(std::size_t id, std::unique_ptr<QueueDiscipline> queue)
      : id_(id), queue_(std::move(queue)) {
    if (!queue_) throw std::invalid_argument("Server requires a queue");
    bypassable_ = queue_->bypassable_when_empty();
    fifo_ = queue_->plain_fifo();
  }

  Server(Server&&) noexcept = default;
  Server& operator=(Server&&) noexcept = default;

  /// Accepts a copy into the queue discipline.  Callers follow up with
  /// try_start() to begin service if the server is idle.  Plain-FIFO
  /// disciplines are served from an inline ring with identical order, so
  /// the per-copy virtual push/pop disappears from the hot path.
  void enqueue(const Request& request) {
    if (fifo_) {
      ring_.push_back(request);
    } else {
      queue_->push(request);
    }
    ++queued_;
  }

  /// True when a newly arriving copy may start service directly without
  /// touching the queue discipline: the server is idle, nothing is queued,
  /// and the discipline has no cross-pop state (bypassable_when_empty).
  [[nodiscard]] bool can_start_directly() const noexcept {
    return !busy_ && queued_ == 0 && bypassable_;
  }

  /// Starts `request` immediately, skipping the queue.  Precondition:
  /// can_start_directly().  Semantics are identical to
  /// enqueue() + try_start() for a bypassable discipline.  `speed` scales
  /// the service cost (fault-layer slowdowns; 1.0 — the fault-free case —
  /// is an exact no-op, so fault-free runs stay bit-identical).
  template <typename CancelFn>
  [[nodiscard]] double start_directly(const Request& request,
                                      CancelFn&& cancelled, double cancel_cost,
                                      double speed = 1.0) {
    assert(can_start_directly());
    const double cost =
        cancelled(request) ? cancel_cost : request.service_time * speed;
    busy_ = true;
    busy_time_ += cost;
    current_ = request;
    return cost;
  }

  /// If idle and work is queued, pops the next copy through the
  /// discipline, marks the server busy and returns the started service
  /// cost (the caller schedules completion at now + cost; the copy itself
  /// is `current()`).  `cancelled(request)` is consulted at service start
  /// (the lazy-cancellation extension, cf. Lee et al. [20]): returning
  /// true replaces the copy's service time with `cancel_cost` (must be
  /// >= 0).  `speed` scales non-cancelled costs as in start_directly().
  /// Returns nullopt when already busy or nothing is queued.
  template <typename CancelFn>
  [[nodiscard]] std::optional<double> try_start(CancelFn&& cancelled,
                                                double cancel_cost,
                                                double speed = 1.0) {
    assert(cancel_cost >= 0.0);
    if (busy_ || queued_ == 0) return std::nullopt;
    current_ = fifo_ ? ring_.pop_front() : queue_->pop();
    --queued_;
    const double cost =
        cancelled(current_) ? cancel_cost : current_.service_time * speed;
    busy_ = true;
    busy_time_ += cost;
    return cost;
  }

  /// Completes the in-service copy (the caller's kCopyComplete event fired)
  /// and returns it; the server becomes idle.  The reference stays valid
  /// until the next service start.  Precondition: busy().
  const Request& finish() {
    assert(busy_);
    busy_ = false;
    ++completed_;
    return current_;
  }

  /// Crash support (fault layer): aborts the in-service copy, returning it
  /// by value; the server becomes idle and `unserved` — the remaining cost
  /// the copy will never consume (scheduled end minus crash time) — is
  /// subtracted from busy time, so utilization reflects actual occupancy.
  /// Precondition: busy().
  [[nodiscard]] Request abort_in_service(double unserved) {
    assert(busy_);
    assert(unserved >= 0.0);
    busy_ = false;
    busy_time_ -= unserved;
    return current_;
  }

  /// Crash support: pops every queued copy (in discipline order) through
  /// `fn(const Request&)`, leaving the queue empty.  Used when a crashed
  /// server fails its backlog.
  template <typename Fn>
  void drain(Fn&& fn) {
    while (queued_ > 0) {
      const Request request = fifo_ ? ring_.pop_front() : queue_->pop();
      --queued_;
      fn(request);
    }
  }

  /// The copy in service (or the last one served when idle).
  [[nodiscard]] const Request& current() const noexcept { return current_; }

  [[nodiscard]] std::size_t id() const noexcept { return id_; }
  [[nodiscard]] bool busy() const noexcept { return busy_; }

  /// Queued copies, excluding the one in service.
  [[nodiscard]] std::size_t queue_length() const noexcept { return queued_; }

  /// Queue length plus the in-service copy; the load signal used by
  /// Min-of-Two / Min-of-All balancing.
  [[nodiscard]] std::size_t load() const noexcept {
    return queued_ + (busy_ ? 1 : 0);
  }

  /// Total time spent serving copies.
  [[nodiscard]] double busy_time() const noexcept { return busy_time_; }

  /// Copies fully served.
  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }

  /// Zeroes the per-run statistics so a warm server pool can serve the
  /// next run (RunScratch reuse).  Precondition: the server is idle with
  /// an empty queue — i.e. the previous run drained completely — so the
  /// reset leaves it indistinguishable from a freshly constructed server
  /// with the same discipline.
  void reset_run_stats() noexcept {
    assert(!busy_ && queued_ == 0);
    busy_time_ = 0.0;
    completed_ = 0;
  }

 private:
  std::size_t id_;
  std::unique_ptr<QueueDiscipline> queue_;
  /// Inline queue storage when the discipline is a plain FIFO (fifo_);
  /// queue_ then never sees a request.
  detail::RequestRing ring_;
  Request current_{};
  /// Mirrors the queued-copy count so load checks skip the virtual call.
  std::size_t queued_ = 0;
  bool busy_ = false;
  bool bypassable_ = false;
  bool fifo_ = false;
  double busy_time_ = 0.0;
  std::size_t completed_ = 0;
};

}  // namespace reissue::sim
