// POD typed events for the simulation hot path.
//
// Every scheduled occurrence in a cluster run is one of five kinds, carrying
// a fixed-size 16-byte payload instead of a heap-allocated closure.  The
// Simulation class (simulation.hpp) dispatches on the kind; the event queue
// stores events by value, so scheduling never allocates beyond the heap
// vector's amortized growth, and a heap entry (time + seq + payload) is two
// moves of 16 bytes away from its final position per sift level.
//
//   kArrival          — the zero tag; client arrivals are merged by
//                       (time, seq) key directly (EventQueue::claim_key)
//                       and never heap-scheduled, so no SimEvent of this
//                       kind is ever constructed.  See Simulation.
//   kReissueStage     — a policy stage (d_i, q_i) fires for query(): payload
//                       is the stage index into the policy.
//   kCopyComplete     — server() finishes its in-service copy (the copy
//                       itself is held by the server, one at a time).  A
//                       background copy completing this way is the end of
//                       an interference episode.
//   kDirectComplete   — a copy completes on the infinite-server substrate
//                       (no queueing, so no server involved): payload is
//                       the copy identity; its dispatch time is recovered
//                       from the per-query state.
//   kInterferenceStart— a background interference episode of duration()
//                       begins occupying server().
//   kFaultBegin       — a fault episode (fault_kind()) starts on server():
//                       a transient slowdown, one server's share of a
//                       correlated degradation, or a crash.  duration() is
//                       the episode length; the matching kFaultEnd is
//                       scheduled alongside it.
//   kFaultEnd         — the episode of fault_kind() on server() ends.
//   kClientRetry      — the client re-dispatches copy_index() of query()
//                       after every server was down at dispatch time;
//                       fired at the earliest server recovery.
//
// The two scalar payload slots (`a`: 32-bit, `b`: 64-bit) are interpreted
// per kind through the named accessors; unused slots are zero.
#pragma once

#include <bit>
#include <cstdint>

#include "reissue/sim/request.hpp"

namespace reissue::sim {

enum class EventKind : std::uint8_t {
  kArrival,
  kReissueStage,
  kCopyComplete,
  kDirectComplete,
  kInterferenceStart,
  kFaultBegin,
  kFaultEnd,
  kClientRetry,
};

/// The three seeded fault families of ClusterConfig::FaultPlan.  The tag
/// rides in SimEvent::stage for fault events and is reported verbatim
/// through the SimObserver fault hooks.
enum class FaultKind : std::uint16_t {
  kSlowdown = 0,  // GC-pause-style multiplicative speed dip on one server
  kDegrade = 1,   // one server's share of a correlated degradation episode
  kCrash = 2,     // server down: rejects dispatch, queued copies fail
};

struct SimEvent {
  EventKind kind = EventKind::kArrival;
  /// kDirectComplete / kClientRetry: which kind of copy.
  CopyKind copy = CopyKind::kPrimary;
  /// kReissueStage: index into the policy's stage list.
  /// kFaultBegin / kFaultEnd: the FaultKind tag.
  std::uint16_t stage = 0;
  /// kCopyComplete / kInterferenceStart / kFaultBegin / kFaultEnd: server.
  /// kDirectComplete / kClientRetry: copy index (0 primary, 1-based
  /// reissue otherwise).
  std::uint32_t a = 0;
  /// kReissueStage / kDirectComplete / kClientRetry: query id.
  /// kInterferenceStart / kFaultBegin: episode duration (bit-cast double).
  /// kCopyComplete: the target server's fault generation (always zero on
  /// fault-free runs; see Simulation — a completion whose generation lags
  /// the server's is stale, its copy died in a crash).
  std::uint64_t b = 0;

  [[nodiscard]] std::uint32_t server() const noexcept { return a; }
  [[nodiscard]] std::uint32_t copy_index() const noexcept { return a; }
  [[nodiscard]] std::uint64_t query() const noexcept { return b; }
  [[nodiscard]] std::uint64_t generation() const noexcept { return b; }
  [[nodiscard]] double duration() const noexcept {
    return std::bit_cast<double>(b);
  }
  [[nodiscard]] FaultKind fault_kind() const noexcept {
    return static_cast<FaultKind>(stage);
  }

  [[nodiscard]] static SimEvent reissue_stage(std::uint64_t query,
                                              std::uint16_t stage) noexcept {
    SimEvent ev;
    ev.kind = EventKind::kReissueStage;
    ev.stage = stage;
    ev.b = query;
    return ev;
  }
  [[nodiscard]] static SimEvent copy_complete(
      std::uint32_t server, std::uint64_t generation = 0) noexcept {
    SimEvent ev;
    ev.kind = EventKind::kCopyComplete;
    ev.a = server;
    ev.b = generation;
    return ev;
  }
  [[nodiscard]] static SimEvent direct_complete(const Request& request) noexcept {
    SimEvent ev;
    ev.kind = EventKind::kDirectComplete;
    ev.copy = request.kind;
    ev.a = request.copy_index;
    ev.b = request.query_id;
    return ev;
  }
  [[nodiscard]] static SimEvent interference_start(std::uint32_t server,
                                                   double duration) noexcept {
    SimEvent ev;
    ev.kind = EventKind::kInterferenceStart;
    ev.a = server;
    ev.b = std::bit_cast<std::uint64_t>(duration);
    return ev;
  }
  [[nodiscard]] static SimEvent fault_begin(FaultKind fault,
                                            std::uint32_t server,
                                            double duration) noexcept {
    SimEvent ev;
    ev.kind = EventKind::kFaultBegin;
    ev.stage = static_cast<std::uint16_t>(fault);
    ev.a = server;
    ev.b = std::bit_cast<std::uint64_t>(duration);
    return ev;
  }
  [[nodiscard]] static SimEvent fault_end(FaultKind fault,
                                          std::uint32_t server) noexcept {
    SimEvent ev;
    ev.kind = EventKind::kFaultEnd;
    ev.stage = static_cast<std::uint16_t>(fault);
    ev.a = server;
    return ev;
  }
  [[nodiscard]] static SimEvent client_retry(std::uint64_t query, CopyKind kind,
                                             std::uint32_t copy_index) noexcept {
    SimEvent ev;
    ev.kind = EventKind::kClientRetry;
    ev.copy = kind;
    ev.a = copy_index;
    ev.b = query;
    return ev;
  }
};

static_assert(sizeof(SimEvent) == 16, "SimEvent must stay a 16-byte POD");

}  // namespace reissue::sim
