// The simulated serving cluster: N replicated single-worker servers behind
// a load balancer, driven by an open-loop Poisson client, executing queries
// under a reissue policy.  This is the paper's §5 simulator and, fed with
// measured service-time traces, the §6 system-experiment harness.
//
// Semantics (matching the paper's client mechanism, §6.1):
//   * every query dispatches one primary copy at arrival;
//   * each policy stage (d, q) fires d after arrival: if the query has not
//     completed, a coin with probability q decides whether one more copy is
//     dispatched (completion is checked immediately before sending);
//   * copies are never cancelled once sent -- both run to completion and
//     both consume server time (the optional cancellation extension can be
//     enabled via ClusterConfig);
//   * the query's response time is the first copy response; the primary's
//     own response time (X) and each reissue copy's response time measured
//     from its own dispatch (Y) are logged for the policy optimizer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"
#include "reissue/sim/load_balancer.hpp"
#include "reissue/sim/queue_discipline.hpp"
#include "reissue/sim/service_model.hpp"

namespace reissue::sim {

struct ClusterConfig {
  /// Number of replicated servers (the paper uses 10).
  std::size_t servers = 10;

  /// When set, every copy starts service immediately on its own server
  /// (no queueing): the Independent / Correlated workloads of §5.1.
  bool infinite_servers = false;

  /// Poisson arrival rate (queries per time unit).  Ignored spacing-wise
  /// for infinite-server runs but still used to order events.
  double arrival_rate = 0.1;

  /// Optional workload drift (paper §4.4 "varying load"): multiplicative
  /// arrival-rate phases applied cyclically.  Empty = constant rate.
  struct RatePhase {
    double duration = 0.0;    // simulation time units
    double multiplier = 1.0;  // applied to arrival_rate
  };
  std::vector<RatePhase> arrival_phases;

  /// Timestamped arrival replay: when non-empty, query i arrives at
  /// arrival_schedule[i] instead of a Poisson draw (size must equal
  /// `queries`; non-decreasing, first entry >= 0).  `arrival_rate` is still
  /// required > 0 — it only feeds horizon estimation (fault/interference
  /// pre-scheduling) and should approximate queries / schedule span.
  /// Incompatible with arrival_phases (a recorded schedule already carries
  /// its own drift).
  std::vector<double> arrival_schedule;

  /// Total queries per run, and how many initial queries are excluded
  /// from the logs as warmup.
  std::size_t queries = 40000;
  std::size_t warmup = 2000;

  LoadBalancerKind load_balancer = LoadBalancerKind::kRandom;
  QueueDisciplineKind queue = QueueDisciplineKind::kFifo;

  /// Client connections (used by kRoundRobinConnections queueing).
  std::uint32_t connections = 32;

  /// Dispatch reissue copies to a different replica than the primary.
  bool exclude_primary_server = true;

  /// Extension (off in the paper's model): when a query completes, copies
  /// of it still queued are served at `cancellation_overhead` cost instead
  /// of their full service time (lazy cancellation, cf. Lee et al. [20]).
  bool cancel_on_completion = false;
  double cancellation_overhead = 0.0;

  /// Per-server background interference (paper §1: "background tasks on
  /// servers can lead to temporary shortages in CPU cycles").  Episodes
  /// arrive Poisson at `interference_rate` per server per time unit and
  /// occupy the server for a draw from `interference_duration`.  These
  /// asymmetric per-server slowdowns are a principal source of the
  /// queueing-dominated latency tails that reissue policies remediate.
  /// Disabled when rate == 0.
  double interference_rate = 0.0;
  stats::DistributionPtr interference_duration;

  /// Heterogeneous fleets: per-server service-time multiplier.  Empty
  /// means the paper's homogeneous model; otherwise size must equal
  /// `servers` and speeds[i] scales every copy's service time on server i
  /// (2.0 = a half-speed machine).  Straggler servers are a classic tail
  /// source the reissue policies must route around.
  std::vector<double> server_speeds;

  /// Seeded fault injection (finite-server runs only).  All fault events
  /// are pre-scheduled at construction from dedicated SplitMix substreams
  /// ("fault-slowdown" / "fault-degrade" / "fault-crash"), so fault runs
  /// keep the shard/thread byte-identity and observer-identity contracts,
  /// and fault-free runs derive exactly the streams they always did.
  ///
  /// Semantics:
  ///  * Slowdowns (GC-pause-style hiccups): per-server Poisson onsets at
  ///    `slowdown_rate`; each episode multiplies service costs started on
  ///    the server by `slowdown_factor` for a `slowdown_duration` draw.
  ///    Overlapping episodes compound.  The speed in effect when a copy
  ///    *starts service* applies to its whole cost.
  ///  * Correlated degradation: cluster-wide Poisson episodes at
  ///    `degrade_rate`; each hits `degrade_servers` distinct servers
  ///    (drawn without replacement) simultaneously with multiplier
  ///    `degrade_factor` for one shared `degrade_duration` draw.
  ///  * Crash + recovery: per-server failures with exponential
  ///    inter-failure time of mean `crash_mtbf` (measured from the
  ///    previous recovery); downtime is a `crash_downtime` draw.  A
  ///    crashed server rejects dispatch (the client redraws a live
  ///    server), its in-service and queued copies fail — failed reissue
  ///    copies are abandoned (logged cancelled with +inf response; the
  ///    reissue policy's other copies are the survival mechanism), while a
  ///    failed primary is immediately re-dispatched by the client (every
  ///    query still completes, so crash scenarios flow through the same
  ///    metrics pipeline).
  struct FaultPlan {
    double slowdown_rate = 0.0;    // per server per time unit; 0 disables
    double slowdown_factor = 1.0;  // service-cost multiplier while active
    stats::DistributionPtr slowdown_duration;

    std::size_t degrade_servers = 0;  // k servers hit per episode
    double degrade_rate = 0.0;        // cluster-wide episodes per time unit
    double degrade_factor = 1.0;
    stats::DistributionPtr degrade_duration;

    double crash_mtbf = 0.0;  // mean time between failures; 0 disables
    stats::DistributionPtr crash_downtime;

    [[nodiscard]] bool any() const noexcept {
      return slowdown_rate > 0.0 || degrade_rate > 0.0 || crash_mtbf > 0.0;
    }
    [[nodiscard]] bool crashes() const noexcept { return crash_mtbf > 0.0; }
  };
  FaultPlan faults;

  /// Fork-join fan-out (finite-server runs only): every query dispatches a
  /// sibling group of `copies` requests at arrival — the primary plus
  /// copies-1 kSibling copies — and completes when `require` of them have
  /// responded (k-of-n).  Reissue policies stack on top: a reissue adds a
  /// late sibling to the group, and every stage check is suppressed by
  /// group completion exactly as it is by first response today.  The
  /// degenerate plan (copies == 1) is the paper's model and leaves every
  /// code path, RNG stream, and golden hash bit-identical.
  ///
  /// Placement:
  ///  * kIndependent — every sibling takes its own load-balancer draw;
  ///    collisions with the primary's server are allowed.
  ///  * kSpread — siblings are placed on distinct servers (replicated
  ///    reads): each draw picks among the servers not already holding a
  ///    copy of the group (and not crashed), via the load balancer's
  ///    pick_among seam.
  ///  * kErasure — kSpread placement, plus every copy's service cost is
  ///    scaled by 1/require (an erasure-coded read fetches 1/k of the
  ///    object per server; k-of-n chunks reconstruct it).
  ///
  /// Outstanding siblings are cancelled on group completion through the
  /// existing lazy-cancellation mechanism (cancel_on_completion /
  /// cancellation_overhead).  A sibling lost to a crash is re-dispatched
  /// like a failed primary — the completion rule may need it — while
  /// failed reissue copies stay abandoned.
  struct FanoutPlan {
    enum class Placement : std::uint8_t { kIndependent, kSpread, kErasure };

    std::size_t copies = 1;   // n: group size including the primary
    std::size_t require = 1;  // k: responses that complete the query
    Placement placement = Placement::kIndependent;

    [[nodiscard]] bool active() const noexcept { return copies > 1; }
    [[nodiscard]] bool spread() const noexcept {
      return placement != Placement::kIndependent;
    }
  };
  FanoutPlan fanout;

  /// Root seed; every run derives identical per-component streams, so two
  /// runs with equal seeds see identical arrivals and primary service
  /// times (common random numbers across policies).
  std::uint64_t seed = 0x5eed;
};

/// Derives the Poisson arrival rate that loads `servers` single-worker
/// servers to `utilization` given mean service time `mean_service`.
[[nodiscard]] double arrival_rate_for_utilization(double utilization,
                                                  std::size_t servers,
                                                  double mean_service);

/// Validates a cluster configuration, throwing std::invalid_argument on
/// the first violated invariant.  Run by the Cluster constructor and again
/// at the top of every run(), so configurations mutated through
/// mutable_config() fail loudly instead of corrupting a run.
void validate(const ClusterConfig& config);

struct RunScratch;  // reusable simulation buffers (simulation.hpp)
class SimObserver;  // passive per-event hooks (sim_observer.hpp)

class Cluster final : public core::SystemUnderTest {
 public:
  Cluster(ClusterConfig config, std::shared_ptr<ServiceModel> service);
  Cluster(Cluster&&) noexcept;
  Cluster& operator=(Cluster&&) noexcept;
  ~Cluster() override;

  /// Simulates one full run under `policy` and returns the logs
  /// (core::LogMode::kFull).  Deterministic in (config.seed, policy).
  [[nodiscard]] core::RunResult run(const core::ReissuePolicy& policy) override;

  /// Simulates one run under `policy`, streaming observations into
  /// `observer` without materializing the X/Y logs
  /// (core::LogMode::kStreaming).  The observation sequence is identical
  /// to the logs run() would have produced for the same seed.
  void run_streaming(const core::ReissuePolicy& policy,
                     core::RunObserver& observer) override;

  /// Simulates one run under `policy`, streaming observations into
  /// `observer` in completion order (core::LogMode::kStreamingUnordered):
  /// metrics accumulate inside the event loop and the end-of-run replay
  /// pass over the per-query state is skipped.  The observation multiset
  /// is bit-identical to run_streaming for the same seed; only the
  /// delivery order — deterministic in (config.seed, policy) — differs.
  void run_streaming_unordered(const core::ReissuePolicy& policy,
                               core::RunObserver& observer) override;

  /// Replication hook: swaps the root seed so the next run() draws fresh
  /// arrival/service/coin streams.  Deterministic given the new seed.
  bool reseed(std::uint64_t seed) override {
    config_.seed = seed;
    return true;
  }

  /// Installs a passive per-event observer fed by every subsequent run
  /// (null to detach).  Observers never change what a run computes — logs
  /// and golden hashes are identical with or without one — and must
  /// outlive the runs they observe.  See sim/sim_observer.hpp.
  void set_sim_observer(SimObserver* observer) noexcept {
    sim_observer_ = observer;
  }
  [[nodiscard]] SimObserver* sim_observer() const noexcept {
    return sim_observer_;
  }

  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
  /// Mutable access for scenario builders; the next run() re-validates the
  /// mutated configuration (see validate()).
  [[nodiscard]] ClusterConfig& mutable_config() noexcept { return config_; }
  [[nodiscard]] const ServiceModel& service_model() const { return *service_; }

 private:
  ClusterConfig config_;
  std::shared_ptr<ServiceModel> service_;
  /// Per-run simulation buffers, reused across runs so replications touch
  /// warm memory (Cluster is single-threaded by contract).
  std::unique_ptr<RunScratch> scratch_;
  /// Optional passive event observer, not owned.
  SimObserver* sim_observer_ = nullptr;
};

}  // namespace reissue::sim
