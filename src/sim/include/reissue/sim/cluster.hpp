// The simulated serving cluster: N replicated single-worker servers behind
// a load balancer, driven by an open-loop Poisson client, executing queries
// under a reissue policy.  This is the paper's §5 simulator and, fed with
// measured service-time traces, the §6 system-experiment harness.
//
// Semantics (matching the paper's client mechanism, §6.1):
//   * every query dispatches one primary copy at arrival;
//   * each policy stage (d, q) fires d after arrival: if the query has not
//     completed, a coin with probability q decides whether one more copy is
//     dispatched (completion is checked immediately before sending);
//   * copies are never cancelled once sent -- both run to completion and
//     both consume server time (the optional cancellation extension can be
//     enabled via ClusterConfig);
//   * the query's response time is the first copy response; the primary's
//     own response time (X) and each reissue copy's response time measured
//     from its own dispatch (Y) are logged for the policy optimizer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"
#include "reissue/sim/load_balancer.hpp"
#include "reissue/sim/queue_discipline.hpp"
#include "reissue/sim/service_model.hpp"

namespace reissue::sim {

struct ClusterConfig {
  /// Number of replicated servers (the paper uses 10).
  std::size_t servers = 10;

  /// When set, every copy starts service immediately on its own server
  /// (no queueing): the Independent / Correlated workloads of §5.1.
  bool infinite_servers = false;

  /// Poisson arrival rate (queries per time unit).  Ignored spacing-wise
  /// for infinite-server runs but still used to order events.
  double arrival_rate = 0.1;

  /// Optional workload drift (paper §4.4 "varying load"): multiplicative
  /// arrival-rate phases applied cyclically.  Empty = constant rate.
  struct RatePhase {
    double duration = 0.0;    // simulation time units
    double multiplier = 1.0;  // applied to arrival_rate
  };
  std::vector<RatePhase> arrival_phases;

  /// Total queries per run, and how many initial queries are excluded
  /// from the logs as warmup.
  std::size_t queries = 40000;
  std::size_t warmup = 2000;

  LoadBalancerKind load_balancer = LoadBalancerKind::kRandom;
  QueueDisciplineKind queue = QueueDisciplineKind::kFifo;

  /// Client connections (used by kRoundRobinConnections queueing).
  std::uint32_t connections = 32;

  /// Dispatch reissue copies to a different replica than the primary.
  bool exclude_primary_server = true;

  /// Extension (off in the paper's model): when a query completes, copies
  /// of it still queued are served at `cancellation_overhead` cost instead
  /// of their full service time (lazy cancellation, cf. Lee et al. [20]).
  bool cancel_on_completion = false;
  double cancellation_overhead = 0.0;

  /// Per-server background interference (paper §1: "background tasks on
  /// servers can lead to temporary shortages in CPU cycles").  Episodes
  /// arrive Poisson at `interference_rate` per server per time unit and
  /// occupy the server for a draw from `interference_duration`.  These
  /// asymmetric per-server slowdowns are a principal source of the
  /// queueing-dominated latency tails that reissue policies remediate.
  /// Disabled when rate == 0.
  double interference_rate = 0.0;
  stats::DistributionPtr interference_duration;

  /// Heterogeneous fleets: per-server service-time multiplier.  Empty
  /// means the paper's homogeneous model; otherwise size must equal
  /// `servers` and speeds[i] scales every copy's service time on server i
  /// (2.0 = a half-speed machine).  Straggler servers are a classic tail
  /// source the reissue policies must route around.
  std::vector<double> server_speeds;

  /// Root seed; every run derives identical per-component streams, so two
  /// runs with equal seeds see identical arrivals and primary service
  /// times (common random numbers across policies).
  std::uint64_t seed = 0x5eed;
};

/// Derives the Poisson arrival rate that loads `servers` single-worker
/// servers to `utilization` given mean service time `mean_service`.
[[nodiscard]] double arrival_rate_for_utilization(double utilization,
                                                  std::size_t servers,
                                                  double mean_service);

/// Validates a cluster configuration, throwing std::invalid_argument on
/// the first violated invariant.  Run by the Cluster constructor and again
/// at the top of every run(), so configurations mutated through
/// mutable_config() fail loudly instead of corrupting a run.
void validate(const ClusterConfig& config);

struct RunScratch;  // reusable simulation buffers (simulation.hpp)
class SimObserver;  // passive per-event hooks (sim_observer.hpp)

class Cluster final : public core::SystemUnderTest {
 public:
  Cluster(ClusterConfig config, std::shared_ptr<ServiceModel> service);
  Cluster(Cluster&&) noexcept;
  Cluster& operator=(Cluster&&) noexcept;
  ~Cluster() override;

  /// Simulates one full run under `policy` and returns the logs
  /// (core::LogMode::kFull).  Deterministic in (config.seed, policy).
  [[nodiscard]] core::RunResult run(const core::ReissuePolicy& policy) override;

  /// Simulates one run under `policy`, streaming observations into
  /// `observer` without materializing the X/Y logs
  /// (core::LogMode::kStreaming).  The observation sequence is identical
  /// to the logs run() would have produced for the same seed.
  void run_streaming(const core::ReissuePolicy& policy,
                     core::RunObserver& observer) override;

  /// Simulates one run under `policy`, streaming observations into
  /// `observer` in completion order (core::LogMode::kStreamingUnordered):
  /// metrics accumulate inside the event loop and the end-of-run replay
  /// pass over the per-query state is skipped.  The observation multiset
  /// is bit-identical to run_streaming for the same seed; only the
  /// delivery order — deterministic in (config.seed, policy) — differs.
  void run_streaming_unordered(const core::ReissuePolicy& policy,
                               core::RunObserver& observer) override;

  /// Replication hook: swaps the root seed so the next run() draws fresh
  /// arrival/service/coin streams.  Deterministic given the new seed.
  bool reseed(std::uint64_t seed) override {
    config_.seed = seed;
    return true;
  }

  /// Installs a passive per-event observer fed by every subsequent run
  /// (null to detach).  Observers never change what a run computes — logs
  /// and golden hashes are identical with or without one — and must
  /// outlive the runs they observe.  See sim/sim_observer.hpp.
  void set_sim_observer(SimObserver* observer) noexcept {
    sim_observer_ = observer;
  }
  [[nodiscard]] SimObserver* sim_observer() const noexcept {
    return sim_observer_;
  }

  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
  /// Mutable access for scenario builders; the next run() re-validates the
  /// mutated configuration (see validate()).
  [[nodiscard]] ClusterConfig& mutable_config() noexcept { return config_; }
  [[nodiscard]] const ServiceModel& service_model() const { return *service_; }

 private:
  ClusterConfig config_;
  std::shared_ptr<ServiceModel> service_;
  /// Per-run simulation buffers, reused across runs so replications touch
  /// warm memory (Cluster is single-threaded by contract).
  std::unique_ptr<RunScratch> scratch_;
  /// Optional passive event observer, not owned.
  SimObserver* sim_observer_ = nullptr;
};

}  // namespace reissue::sim
