// Passive per-event observation hooks for sim::Simulation.
//
// A SimObserver sees every mechanism-level event the simulator dispatches
// — arrivals, reissue scheduling/issue/suppression, dispatches, service
// starts, lazy cancellations, copy completions, first responses, server
// state transitions — without participating in the run: hooks draw no RNG,
// schedule no events, and never observe mutable simulator state, so a run
// with an observer attached is bit-identical (same logs, same golden
// hashes) to one without.  Implementations live in src/obs; this interface
// lives in sim so the simulator core has no dependency on them.
//
// Cost model: when REISSUE_OBS_ENABLED is 0 (cmake -DREISSUE_OBS=OFF),
// Simulation::observed() is a false constant and every hook call folds out
// of the binary.  When compiled in but no observer is installed (the
// default), the cost is a null-pointer test outside the merge loop and a
// dedicated template instantiation inside it — measured indistinguishable
// from the obs-off build (see BENCH_sim_throughput.json).
#pragma once

#include <cstddef>
#include <cstdint>

#include "reissue/sim/event.hpp"
#include "reissue/sim/request.hpp"

// Compile-time master switch; the build sets REISSUE_OBS_ENABLED=0 when
// configured with -DREISSUE_OBS=OFF.
#ifndef REISSUE_OBS_ENABLED
#define REISSUE_OBS_ENABLED 1
#endif

namespace reissue::sim {

/// Cheap whole-run counters maintained by the simulator itself while an
/// observer is attached (if constexpr-gated inside the merge loop, plain
/// branches elsewhere).  All fields cover the entire run including warmup
/// — unlike RunResult, which is post-warmup only.
struct RunCounters {
  /// Queries that arrived (== ClusterConfig::queries at run end).
  std::uint64_t arrivals = 0;
  /// Events popped from the binary heap (completions, interference).
  std::uint64_t heap_pops = 0;
  /// Completions popped from the scan-mode bounded queue.
  std::uint64_t scan_pops = 0;
  /// Reissue-stage checks dispatched live from the stage rings.
  std::uint64_t stage_checks = 0;
  /// Dead stage entries (query already done) retired by the merge loop's
  /// fast path without a dispatch.
  std::uint64_t stage_retired = 0;
  std::uint64_t reissues_issued = 0;
  /// Stage checks suppressed because the query had completed (paper §6.1
  /// "checked immediately before sending"); includes `stage_retired`.
  std::uint64_t reissues_suppressed_completed = 0;
  /// Stage checks whose probability coin came up tails.
  std::uint64_t reissues_suppressed_coin = 0;
  /// Issued reissue copies that did not deliver the first response
  /// (completed after the query was already done, or were cancelled) —
  /// the paper's wasted-work measure.  Computed at finalize.
  std::uint64_t reissues_wasted = 0;
  /// Copies lazily cancelled at service start (cancel_on_completion).
  std::uint64_t copies_cancelled = 0;
  std::uint64_t interference_episodes = 0;
  /// Fault-layer tallies (ClusterConfig::FaultPlan; all zero on fault-free
  /// runs).  Slowdowns and crashes count per-server episodes begun;
  /// degrades count server-episodes (episodes x degrade_servers).
  std::uint64_t fault_slowdowns = 0;
  std::uint64_t fault_degrades = 0;
  std::uint64_t fault_crashes = 0;
  /// Non-background copies killed by a crash (in service or queued).
  std::uint64_t fault_copies_failed = 0;
  /// Dispatch attempts rejected because the picked server was down (each
  /// triggers a redraw, or a deferred kClientRetry when no server is up).
  std::uint64_t fault_dispatch_rejections = 0;
  /// Failed primary copies the client re-dispatched.
  std::uint64_t fault_primary_retries = 0;
  /// Fork-join sibling copies dispatched at arrival (ClusterConfig::
  /// FanoutPlan; all four sibling tallies are zero on fanout-free runs).
  std::uint64_t siblings_issued = 0;
  /// Siblings that delivered their group's completing (k-th) response.
  std::uint64_t sibling_wins = 0;
  /// Siblings lazily cancelled at service start after group completion.
  std::uint64_t siblings_cancelled = 0;
  /// Issued siblings whose response did not count toward the completion
  /// rule (completed after the group was done, or were cancelled) — the
  /// fan-out analogue of reissues_wasted.  Computed at finalize.
  std::uint64_t siblings_wasted = 0;
  /// Peak simultaneously in-flight reissue copies.  Accumulates by max.
  std::uint64_t reissue_inflight_peak = 0;
  /// Reissue-copy arena slots this run (queries x stages) — the
  /// simulator's biggest allocation.  Accumulates by max (high-water).
  std::uint64_t arena_slots = 0;

  RunCounters& operator+=(const RunCounters& other) noexcept {
    arrivals += other.arrivals;
    heap_pops += other.heap_pops;
    scan_pops += other.scan_pops;
    stage_checks += other.stage_checks;
    stage_retired += other.stage_retired;
    reissues_issued += other.reissues_issued;
    reissues_suppressed_completed += other.reissues_suppressed_completed;
    reissues_suppressed_coin += other.reissues_suppressed_coin;
    reissues_wasted += other.reissues_wasted;
    copies_cancelled += other.copies_cancelled;
    interference_episodes += other.interference_episodes;
    fault_slowdowns += other.fault_slowdowns;
    fault_degrades += other.fault_degrades;
    fault_crashes += other.fault_crashes;
    fault_copies_failed += other.fault_copies_failed;
    fault_dispatch_rejections += other.fault_dispatch_rejections;
    fault_primary_retries += other.fault_primary_retries;
    siblings_issued += other.siblings_issued;
    sibling_wins += other.sibling_wins;
    siblings_cancelled += other.siblings_cancelled;
    siblings_wasted += other.siblings_wasted;
    if (other.reissue_inflight_peak > reissue_inflight_peak) {
      reissue_inflight_peak = other.reissue_inflight_peak;
    }
    if (other.arena_slots > arena_slots) arena_slots = other.arena_slots;
    return *this;
  }
};

class SimObserver {
 public:
  /// Server index meaning "no server" (infinite-server dispatches).
  static constexpr std::uint32_t kNoServer = 0xffffffffu;

  /// What a run looks like before its first event; passed to
  /// on_run_begin so observers can size per-server state.
  struct RunInfo {
    std::size_t servers = 0;
    bool infinite_servers = false;
    std::size_t queries = 0;
    std::size_t warmup = 0;
    std::size_t stages = 0;
    std::uint64_t seed = 0;
    double arrival_rate = 0.0;
  };

  virtual ~SimObserver() = default;

  virtual void on_run_begin(const RunInfo& /*run*/) {}
  virtual void on_arrival(double /*now*/, std::uint64_t /*query*/) {}
  /// A stage check was scheduled to fire at `fire_time` (arrival + d_i).
  virtual void on_reissue_scheduled(double /*now*/, std::uint64_t /*query*/,
                                    std::uint16_t /*stage*/,
                                    double /*fire_time*/) {}
  virtual void on_reissue_issued(double /*now*/, std::uint64_t /*query*/,
                                 std::uint16_t /*stage*/) {}
  /// `by_completion` distinguishes the §6.1 completion check from a coin
  /// tails.  Suppressions retired by the merge loop's dead-entry fast path
  /// report their would-be fire time as `now`, which may be ahead of
  /// previously reported events (trace consumers must not assume global
  /// timestamp order; Perfetto does not).
  virtual void on_reissue_suppressed(double /*now*/, std::uint64_t /*query*/,
                                     std::uint16_t /*stage*/,
                                     bool /*by_completion*/) {}
  /// A copy was handed to the load balancer; `server` is kNoServer on
  /// infinite-server runs, `service_time` includes any server speed
  /// multiplier.
  virtual void on_dispatch(double /*now*/, std::uint64_t /*query*/,
                           CopyKind /*kind*/, std::uint32_t /*copy_index*/,
                           std::uint32_t /*server*/, double /*service_time*/) {}
  /// A copy (including background interference work) began service;
  /// `cost` is the actual occupancy (cancellation overhead if cancelled).
  virtual void on_service_start(double /*now*/, std::uint32_t /*server*/,
                                const Request& /*request*/, double /*cost*/) {}
  virtual void on_copy_cancelled(double /*now*/, std::uint32_t /*server*/,
                                 std::uint64_t /*query*/,
                                 std::uint32_t /*copy_index*/) {}
  /// A primary/reissue copy completed; `response` is measured from the
  /// copy's own dispatch.
  virtual void on_copy_complete(double /*now*/, std::uint64_t /*query*/,
                                CopyKind /*kind*/, std::uint32_t /*copy_index*/,
                                double /*response*/) {}
  /// First response for the query: its latency is determined.
  virtual void on_query_done(double /*now*/, std::uint64_t /*query*/,
                             double /*latency*/) {}
  /// The query's sibling group satisfied its k-of-n completion rule (fired
  /// only on fan-out runs, alongside on_query_done): `responded` copies
  /// had answered including the winner — the copy (by kind / group index)
  /// that delivered the k-th response.
  virtual void on_group_complete(double /*now*/, std::uint64_t /*query*/,
                                 std::uint32_t /*responded*/,
                                 CopyKind /*winner_kind*/,
                                 std::uint32_t /*winner_copy*/) {}
  /// Queue depth / busy transition on a finite server, reported after the
  /// state change settled (post enqueue-or-start, post completion).
  virtual void on_server_state(double /*now*/, std::uint32_t /*server*/,
                               std::size_t /*queued*/, bool /*busy*/) {}
  virtual void on_interference(double /*now*/, std::uint32_t /*server*/,
                               double /*duration*/) {}
  /// A fault episode (slowdown / degrade share / crash) began on `server`
  /// and will end at now + duration (the matching on_fault_end).
  virtual void on_fault_begin(double /*now*/, std::uint32_t /*server*/,
                              FaultKind /*fault*/, double /*duration*/) {}
  virtual void on_fault_end(double /*now*/, std::uint32_t /*server*/,
                            FaultKind /*fault*/) {}
  /// A copy was lost to a crash fault: either its dispatch was rejected by
  /// a down `server` (the client redraws or defers), or its server crashed
  /// while it was queued / in service.  Failed primaries are re-dispatched
  /// (a fresh on_dispatch follows); failed reissue copies are abandoned.
  virtual void on_dispatch_failed(double /*now*/, std::uint64_t /*query*/,
                                  CopyKind /*kind*/,
                                  std::uint32_t /*copy_index*/,
                                  std::uint32_t /*server*/) {}
  /// End of run: final horizon, the utilization reported to the
  /// RunObserver, and the simulator's whole-run counters.
  virtual void on_run_end(double /*horizon*/, double /*utilization*/,
                          const RunCounters& /*counters*/) {}
};

}  // namespace reissue::sim
