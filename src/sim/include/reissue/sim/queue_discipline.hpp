// Server queueing disciplines (paper §5.4 "Changing priority of reissued
// requests" plus the Redis connection model of §6.2):
//
//   kFifo                 — one FIFO for all copies (Baseline FIFO).
//   kPrioritizedFifo      — separate FIFO queues for primary and reissue
//                           copies; reissues served only when no primary
//                           waits.
//   kPrioritizedLifo      — as above, but the reissue queue pops LIFO.
//   kRoundRobinConnections— per-connection FIFOs served one request per
//                           connection in cyclic order: the Redis event
//                           loop model, where a single slow request delays
//                           every other connection's round.
//   kConnectionBatch      — per-connection FIFOs served to exhaustion
//                           before advancing (Redis §6.2: requests are
//                           serviced "from each active client connection
//                           in a batch"); a backlogged connection holds
//                           the event loop for its whole pipeline, which
//                           extends a slow request's impact for multiple
//                           rounds.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "reissue/sim/request.hpp"

namespace reissue::sim {

enum class QueueDisciplineKind {
  kFifo,
  kPrioritizedFifo,
  kPrioritizedLifo,
  kRoundRobinConnections,
  kConnectionBatch,
};

[[nodiscard]] std::string to_string(QueueDisciplineKind kind);

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  virtual void push(const Request& request) = 0;

  /// Removes and returns the next request to serve.  Precondition: !empty().
  [[nodiscard]] virtual Request pop() = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// True when push-then-pop on an empty queue returns the pushed request
  /// AND leaves the discipline in the same state as never having seen it.
  /// Lets the server skip the queue entirely when a copy arrives at an
  /// idle worker (the hot path at moderate utilization).  False for
  /// disciplines with cross-pop state (the connection round-robin cursor
  /// advances and lanes register on every pop/push).
  [[nodiscard]] virtual bool bypassable_when_empty() const noexcept {
    return false;
  }
};

/// Fresh instance of the given discipline (one per server).
[[nodiscard]] std::unique_ptr<QueueDiscipline> make_queue_discipline(
    QueueDisciplineKind kind);

}  // namespace reissue::sim
