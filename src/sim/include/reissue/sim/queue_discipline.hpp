// Server queueing disciplines (paper §5.4 "Changing priority of reissued
// requests" plus the Redis connection model of §6.2):
//
//   kFifo                 — one FIFO for all copies (Baseline FIFO).
//   kPrioritizedFifo      — separate FIFO queues for primary and reissue
//                           copies; reissues served only when no primary
//                           waits.
//   kPrioritizedLifo      — as above, but the reissue queue pops LIFO.
//   kRoundRobinConnections— per-connection FIFOs served one request per
//                           connection in cyclic order: the Redis event
//                           loop model, where a single slow request delays
//                           every other connection's round.
//   kConnectionBatch      — per-connection FIFOs served to exhaustion
//                           before advancing (Redis §6.2: requests are
//                           serviced "from each active client connection
//                           in a batch"); a backlogged connection holds
//                           the event loop for its whole pipeline, which
//                           extends a slow request's impact for multiple
//                           rounds.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "reissue/sim/request.hpp"

namespace reissue::sim {

namespace detail {

/// Growable power-of-two ring of Requests.  Replaces std::deque on the
/// server-queue hot path: contiguous storage, no per-segment allocation,
/// and push/pop are an index mask away from a plain array store — the
/// discipline pop order (front or back) is exactly the deque's.  Shared
/// by the FIFO-family disciplines and by Server's inline plain-FIFO fast
/// path.
class RequestRing {
 public:
  [[nodiscard]] bool empty() const noexcept { return head_ == tail_; }
  [[nodiscard]] std::size_t size() const noexcept { return tail_ - head_; }

  void push_back(const Request& request) {
    if (tail_ - head_ == buf_.size()) grow();
    buf_[tail_++ & mask_] = request;
  }

  [[nodiscard]] Request pop_front() noexcept { return buf_[head_++ & mask_]; }
  [[nodiscard]] Request pop_back() noexcept { return buf_[--tail_ & mask_]; }

 private:
  void grow() {
    const std::size_t count = tail_ - head_;
    std::vector<Request> next(buf_.empty() ? 16 : buf_.size() * 2);
    for (std::size_t i = 0; i < count; ++i) {
      next[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(next);
    mask_ = buf_.size() - 1;
    head_ = 0;
    tail_ = count;
  }

  std::vector<Request> buf_;
  // Monotone cursors; physical index = cursor & mask_.
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace detail

enum class QueueDisciplineKind {
  kFifo,
  kPrioritizedFifo,
  kPrioritizedLifo,
  kRoundRobinConnections,
  kConnectionBatch,
};

[[nodiscard]] std::string to_string(QueueDisciplineKind kind);

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  virtual void push(const Request& request) = 0;

  /// Removes and returns the next request to serve.  Precondition: !empty().
  [[nodiscard]] virtual Request pop() = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// True when push-then-pop on an empty queue returns the pushed request
  /// AND leaves the discipline in the same state as never having seen it.
  /// Lets the server skip the queue entirely when a copy arrives at an
  /// idle worker (the hot path at moderate utilization).  False for
  /// disciplines with cross-pop state (the connection round-robin cursor
  /// advances and lanes register on every pop/push).
  [[nodiscard]] virtual bool bypassable_when_empty() const noexcept {
    return false;
  }

  /// True when the discipline is a plain single FIFO with no extra state,
  /// i.e. push/pop are exactly RequestRing push_back/pop_front.  Lets the
  /// server inline the queue operations instead of dispatching virtually
  /// on every enqueue and service start (the hottest queue path).
  [[nodiscard]] virtual bool plain_fifo() const noexcept { return false; }
};

/// Fresh instance of the given discipline (one per server).
[[nodiscard]] std::unique_ptr<QueueDiscipline> make_queue_discipline(
    QueueDisciplineKind kind);

}  // namespace reissue::sim
