// A request copy in flight: one query spawns a primary copy plus zero or
// more reissue copies.  Requests carry their intrinsic service cost and the
// client connection they arrived on (used by the Redis-style round-robin
// connection discipline).
#pragma once

#include <cstdint>

namespace reissue::sim {

enum class CopyKind : std::uint8_t {
  kPrimary,
  kReissue,
  /// Server-local background work (CPU interference); carries no query.
  kBackground,
};

struct Request {
  std::uint64_t query_id = 0;
  CopyKind kind = CopyKind::kPrimary;
  /// 0 for the primary copy; 1-based index into the query's issued
  /// reissue copies otherwise.
  std::uint32_t copy_index = 0;
  /// Absolute simulation time this copy was handed to the load balancer.
  double dispatch_time = 0.0;
  /// Intrinsic service cost (time units on a server).
  double service_time = 0.0;
  /// Client connection index (round-robin-connection queueing only).
  std::uint32_t connection = 0;
};

}  // namespace reissue::sim
