// A request copy in flight: one query spawns a sibling group — a primary
// copy, optional fork-join fan-out siblings dispatched with it, and zero
// or more late-bound reissue copies.  Requests carry their intrinsic
// service cost and the client connection they arrived on (used by the
// Redis-style round-robin connection discipline).
#pragma once

#include <cstdint>

namespace reissue::sim {

enum class CopyKind : std::uint8_t {
  kPrimary,
  kReissue,
  /// Server-local background work (CPU interference); carries no query.
  kBackground,
  /// Fork-join fan-out copy dispatched at arrival with the primary
  /// (ClusterConfig::FanoutPlan).  Siblings share the primary's queue
  /// priority — only late-bound reissue copies are deprioritizable.
  kSibling,
};

/// 32 bytes: requests are copied through queue disciplines and server
/// slots on every dispatch, so the layout packs doubles first.  Query ids
/// are 32-bit here (ClusterConfig validation caps queries accordingly);
/// background copies carry the all-ones id and are recognized by kind
/// before the id is ever used.
struct Request {
  /// Absolute simulation time this copy was handed to the load balancer.
  double dispatch_time = 0.0;
  /// Intrinsic service cost (time units on a server).
  double service_time = 0.0;
  std::uint32_t query_id = 0;
  /// 0 for the primary copy; otherwise the copy's 1-based index into the
  /// query's sibling group: fan-out siblings occupy 1..n-1, reissue
  /// copies follow at n, n+1, ... (detail::SiblingGroups).
  std::uint32_t copy_index = 0;
  /// Client connection index (round-robin-connection queueing only).
  std::uint32_t connection = 0;
  CopyKind kind = CopyKind::kPrimary;
};

}  // namespace reissue::sim
