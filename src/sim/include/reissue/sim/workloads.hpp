// Builders for the paper's simulated workloads.
//
// §5.1: service times Pareto(shape 1.1, mode 2.0).
//   Independent — X, Y independent, no queueing (infinite servers).
//   Correlated  — Y = r·x + Z with r = 0.5, no queueing.
//   Queueing    — correlated service times, Poisson arrivals, 10 servers,
//                 uniform-random load balancing, 30% utilization.
//
// §5.4 sensitivity baseline: the Queueing workload *without* service-time
// correlation, with utilization / distribution / LB / queue discipline /
// correlation ratio all overridable.
//
// Pareto(1.1, 2) has mean 22 but enormous sample variance, so utilization
// targeting uses the analytic mean; measured utilization fluctuates with
// the draw of rare giant requests (as it does in real systems).
#pragma once

#include <cstdint>
#include <memory>

#include "reissue/sim/cluster.hpp"

namespace reissue::sim::workloads {

inline constexpr double kParetoShape = 1.1;
inline constexpr double kParetoMode = 2.0;
/// Service draws are capped at this value (Pr ~ 1.8e-4 per draw).  Pareto
/// shape 1.1 has infinite variance; without a cap a single draw can exceed
/// an entire experiment's duration and wedge one server for most of the
/// run, which the paper's plots show never happened in its draws.  The
/// capped tail still spans 3.5 decades.
inline constexpr double kServiceCap = 5000.0;
inline constexpr double kDefaultCorrelation = 0.5;
inline constexpr double kDefaultUtilization = 0.30;
inline constexpr std::size_t kDefaultServers = 10;

struct WorkloadOptions {
  std::size_t queries = 40000;
  std::size_t warmup = 4000;
  std::uint64_t seed = 0x5eed;
};

/// §5.1 Independent: iid Pareto service times, no queueing.
[[nodiscard]] Cluster make_independent(const WorkloadOptions& opts = {});

/// §5.1 Correlated: Y = r·x + Z, no queueing.
[[nodiscard]] Cluster make_correlated(double ratio = kDefaultCorrelation,
                                      const WorkloadOptions& opts = {});

/// §5.1 Queueing: correlated service times, 10 servers, random LB, FIFO,
/// Poisson arrivals at the given utilization.
[[nodiscard]] Cluster make_queueing(double utilization = kDefaultUtilization,
                                    double ratio = kDefaultCorrelation,
                                    const WorkloadOptions& opts = {});

/// §5.4 sensitivity baseline and its variants: Queueing workload without
/// service-time correlation unless `ratio > 0`.
struct SensitivityOptions {
  stats::DistributionPtr service;  // defaults to Pareto(1.1, 2.0)
  double utilization = kDefaultUtilization;
  double ratio = 0.0;  // 0 => independent reissue service times
  LoadBalancerKind load_balancer = LoadBalancerKind::kRandom;
  QueueDisciplineKind queue = QueueDisciplineKind::kFifo;
  std::size_t servers = kDefaultServers;
  WorkloadOptions base;
};

[[nodiscard]] Cluster make_sensitivity(const SensitivityOptions& opts);

/// Empirical mean service time of a distribution (used to set arrival
/// rates when the analytic mean is infinite or unknown): averages `n`
/// draws with a fixed seed.
[[nodiscard]] double empirical_mean_service(const stats::Distribution& dist,
                                            std::size_t n = 200000,
                                            std::uint64_t seed = 0xfeed);

}  // namespace reissue::sim::workloads
