// Evaluation helpers shared by the figure-reproduction benches, examples
// and integration tests: run a system under a policy and summarize the
// tail metrics the paper plots.
#pragma once

#include "reissue/core/adaptive.hpp"
#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"

namespace reissue::sim {

struct PolicyEvaluation {
  core::ReissuePolicy policy = core::ReissuePolicy::none();
  /// kth-percentile end-to-end latency.
  double tail_latency = 0.0;
  /// Issued reissues / logged queries.
  double reissue_rate = 0.0;
  /// Fraction of issued reissues that remediated the tail: primary missed
  /// the achieved tail latency but the reissue answered in time (Fig. 3b).
  double remediation_rate = 0.0;
  double utilization = 0.0;
};

/// One run of `system` under `policy`, summarized at percentile k.
[[nodiscard]] PolicyEvaluation evaluate_policy(core::SystemUnderTest& system,
                                               const core::ReissuePolicy& policy,
                                               double k);

/// baseline / improved: > 1 means the policy reduced the tail (the Y axis
/// of Fig. 3a and Fig. 6).
[[nodiscard]] double reduction_ratio(double baseline_tail, double policy_tail);

struct TunedPolicy {
  core::AdaptiveOutcome outcome;
  PolicyEvaluation final_eval;
};

/// Adaptive-tunes a SingleR policy for (k, budget) on `system`
/// (paper §4.3), then evaluates the tuned policy once more.
[[nodiscard]] TunedPolicy tune_single_r(core::SystemUnderTest& system,
                                        double k, double budget,
                                        int trials = 10,
                                        double learning_rate = 0.5,
                                        bool use_correlation = true);

/// Adaptive-tunes a SingleD policy so its measured rate matches `budget`
/// under load feedback (the paper's procedure for Fig. 3's SingleD curves).
[[nodiscard]] TunedPolicy tune_single_d(core::SystemUnderTest& system,
                                        double k, double budget,
                                        int trials = 10,
                                        double learning_rate = 0.5);

}  // namespace reissue::sim
