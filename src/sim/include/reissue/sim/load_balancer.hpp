// Load-balancing strategies (paper §5.4):
//   kRandom    — uniformly random server.
//   kRoundRobin— cyclic assignment.
//   kMinOfTwo  — power of two choices: sample two distinct servers, pick
//                the one with the smaller instantaneous load.
//   kMinOfAll  — join the shortest queue over all servers.
//
// A reissue copy may exclude the server its primary went to ("send to a
// *different* replica"); the excluded index is passed by the cluster.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "reissue/sim/server.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::sim {

enum class LoadBalancerKind { kRandom, kRoundRobin, kMinOfTwo, kMinOfAll };

[[nodiscard]] std::string to_string(LoadBalancerKind kind);

/// Uniform index in [0, n) skipping `exclude` when it can be avoided: the
/// kRandom policy, and the sampling primitive of kMinOfTwo.  Inline so the
/// simulator's hot path can use it without the virtual dispatch.
[[nodiscard]] inline std::size_t random_server_index(
    std::size_t n, stats::Xoshiro256& rng, std::optional<std::size_t> exclude) {
  if (n == 0) throw std::logic_error("load balancer: no servers");
  if (!exclude.has_value() || n == 1 || *exclude >= n) {
    return static_cast<std::size_t>(rng.below(n));
  }
  const auto idx = static_cast<std::size_t>(rng.below(n - 1));
  return idx < *exclude ? idx : idx + 1;
}

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Picks a server index in [0, servers.size()), never `exclude` (when
  /// provided and more than one server exists).
  [[nodiscard]] virtual std::size_t pick(std::span<const Server> servers,
                                         stats::Xoshiro256& rng,
                                         std::optional<std::size_t> exclude) = 0;

  /// Restricted pick for fork-join spread placement: chooses one of
  /// `candidates` (server indices, non-empty) under the same policy as
  /// pick(), and returns the *position within candidates* so the caller
  /// can swap-remove it and place the group's next sibling among the
  /// rest.  The kRandom path is inlined in the simulator (a single
  /// rng.below(candidates.size()) draw), matching RandomBalancer.
  [[nodiscard]] virtual std::size_t pick_among(
      std::span<const Server> servers,
      std::span<const std::uint32_t> candidates, stats::Xoshiro256& rng) = 0;
};

[[nodiscard]] std::unique_ptr<LoadBalancer> make_load_balancer(
    LoadBalancerKind kind);

}  // namespace reissue::sim
