// Load-balancing strategies (paper §5.4):
//   kRandom    — uniformly random server.
//   kRoundRobin— cyclic assignment.
//   kMinOfTwo  — power of two choices: sample two distinct servers, pick
//                the one with the smaller instantaneous load.
//   kMinOfAll  — join the shortest queue over all servers.
//
// A reissue copy may exclude the server its primary went to ("send to a
// *different* replica"); the excluded index is passed by the cluster.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "reissue/sim/server.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::sim {

enum class LoadBalancerKind { kRandom, kRoundRobin, kMinOfTwo, kMinOfAll };

[[nodiscard]] std::string to_string(LoadBalancerKind kind);

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  /// Picks a server index in [0, servers.size()), never `exclude` (when
  /// provided and more than one server exists).
  [[nodiscard]] virtual std::size_t pick(const std::vector<Server>& servers,
                                         stats::Xoshiro256& rng,
                                         std::optional<std::size_t> exclude) = 0;
};

[[nodiscard]] std::unique_ptr<LoadBalancer> make_load_balancer(
    LoadBalancerKind kind);

}  // namespace reissue::sim
