// Deterministic discrete-event queue: a binary min-heap ordered by
// (time, seq).  The monotone sequence number breaks time ties in insertion
// order, and because (time, seq) is a strict total order the pop sequence
// is bit-reproducible regardless of heap internals.
//
// The queue is generic over a by-value payload (the simulator uses the POD
// SimEvent of event.hpp) and dispatches through a caller-supplied callable,
// so the hot path performs no type erasure and no per-event allocation.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace reissue::sim {

/// The position of an event in the queue's total order.  Keys compare
/// lexicographically, so external event sources that draw their seq from
/// allocate_seq() merge deterministically with the heap (see Simulation).
struct EventKey {
  double time = 0.0;
  std::uint64_t seq = 0;

  [[nodiscard]] bool before(const EventKey& other) const noexcept {
    if (time != other.time) return time < other.time;
    return seq < other.seq;
  }
};

template <typename Payload>
class EventQueue {
 public:
  /// Schedules `payload` at absolute time `time` (must be >= current time
  /// and finite; throws std::invalid_argument otherwise).
  void schedule(double time, Payload payload) {
    check_time(time);
    heap_.push_back(Entry{time, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  /// Pre-sizes the heap storage (events pending at once, not total).
  void reserve(std::size_t events) { heap_.reserve(events); }

  /// Returns the queue to its initial state — empty, now() == 0, fresh
  /// sequence numbers — while keeping the heap's capacity, so back-to-back
  /// simulation runs reuse warm memory.
  void reset() noexcept {
    heap_.clear();
    now_ = 0.0;
    next_seq_ = 0;
    executed_ = 0;
  }

  /// Claims the next sequence number without enqueueing, for event sources
  /// that keep their own (already time-ordered) queues but participate in
  /// this queue's (time, seq) total order.  `time` is validated exactly
  /// like schedule().
  [[nodiscard]] EventKey claim_key(double time) {
    check_time(time);
    return EventKey{time, next_seq_++};
  }

  /// claim_key without the validation, for internal callers whose times
  /// are finite and non-decreasing by construction (now + a non-negative
  /// cost/delay).  The invariant is asserted, not checked.
  [[nodiscard]] EventKey claim_key_trusted(double time) noexcept {
    assert(std::isfinite(time) && time >= now_);
    return EventKey{time, next_seq_++};
  }

  /// Key of the earliest queued event; meaningless when empty().
  [[nodiscard]] EventKey peek_key() const noexcept {
    return heap_.empty() ? EventKey{} : EventKey{heap_.front().time,
                                                 heap_.front().seq};
  }

  /// Removes and returns the earliest event, advancing now().
  /// Precondition: !empty().
  [[nodiscard]] Payload pop() {
    Entry top = std::move(heap_.front());
    pop_root();
    now_ = top.time;
    ++executed_;
    return std::move(top.payload);
  }

  /// Advances now() to `time` when an externally-queued event (see
  /// claim_key) executes.  Must not move backwards.
  void advance_to(double time) {
    assert(time >= now_);
    now_ = time;
    ++executed_;
  }

  /// Executes the single earliest event through `dispatch(payload, now)`;
  /// returns false if the queue is empty.
  template <typename Dispatch>
  bool step(Dispatch&& dispatch) {
    if (heap_.empty()) return false;
    Payload payload = pop();
    dispatch(payload, now_);
    return true;
  }

  /// Runs events in order until the queue empties.  Returns the time of
  /// the last executed event (or the initial time if none ran).
  template <typename Dispatch>
  double run_to_completion(Dispatch&& dispatch) {
    while (step(dispatch)) {
    }
    return now_;
  }

  /// Runs events with time <= horizon; later events stay queued.
  template <typename Dispatch>
  double run_until(double horizon, Dispatch&& dispatch) {
    while (!heap_.empty() && heap_.front().time <= horizon) {
      step(dispatch);
    }
    return now_;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Payload payload;
  };

  void check_time(double time) const {
    if (!std::isfinite(time)) {
      throw std::invalid_argument("EventQueue: non-finite event time");
    }
    if (time < now_) {
      throw std::invalid_argument("EventQueue: event scheduled in the past");
    }
  }

  /// Strict total order: earlier time first, insertion order on ties.
  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    Entry moving = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(moving, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(moving);
  }

  void pop_root() {
    Entry last = std::move(heap_.back());
    heap_.pop_back();
    if (heap_.empty()) return;
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], last)) break;
      heap_[i] = std::move(heap_[child]);
      i = child;
    }
    heap_[i] = std::move(last);
  }

  std::vector<Entry> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// Min-queue for a SMALL, bounded pending count (the simulator uses it for
/// service completions on finite-server runs, where at most one completion
/// per server is outstanding).  Keys are EventKeys claimed from an
/// EventQueue, so both structures share one total order.  peek is O(1) via
/// a cached min index; push is O(1); pop rescans the (cache-resident)
/// array, which beats heap sifts up to a few dozen entries.
template <typename Payload>
class BoundedMinQueue {
 public:
  void push(EventKey key, Payload payload) {
    if (entries_.empty() || key.before(entries_[min_index_].key)) {
      min_index_ = entries_.size();
    }
    entries_.push_back(Entry{key, std::move(payload)});
  }

  /// Key of the earliest entry; meaningless when empty().
  [[nodiscard]] EventKey peek_key() const noexcept {
    return entries_.empty() ? EventKey{} : entries_[min_index_].key;
  }

  /// Removes and returns the earliest entry.  Precondition: !empty().
  [[nodiscard]] Payload pop() {
    assert(!entries_.empty());
    Payload payload = std::move(entries_[min_index_].payload);
    entries_[min_index_] = std::move(entries_.back());
    entries_.pop_back();
    min_index_ = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].key.before(entries_[min_index_].key)) min_index_ = i;
    }
    return payload;
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept {
    return entries_.size();
  }

  /// Empties the queue, keeping capacity for reuse.
  void reset() noexcept {
    entries_.clear();
    min_index_ = 0;
  }

 private:
  struct Entry {
    EventKey key;
    Payload payload;
  };

  std::vector<Entry> entries_;
  std::size_t min_index_ = 0;
};

}  // namespace reissue::sim
