// Deterministic discrete-event queue: a min-heap ordered by (time, seq).
// The monotone sequence number breaks time ties in insertion order, so a
// simulation is bit-reproducible regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace reissue::sim {

using EventFn = std::function<void(double now)>;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `time` (must be >= current time and
  /// finite; throws std::invalid_argument otherwise).
  void schedule(double time, EventFn fn);

  /// Runs events in order until the queue empties.  Returns the time of
  /// the last executed event (or the initial time if none ran).
  double run_to_completion();

  /// Runs events with time <= horizon; later events stay queued.
  double run_until(double horizon);

  /// Executes the single earliest event; returns false if empty.
  bool step();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace reissue::sim
