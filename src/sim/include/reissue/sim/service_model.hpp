// Service-time generation for queries and their reissue copies, matching
// the three workload models of paper §4/§5.1:
//
//   IidService        — X and Y independent draws from one distribution
//                       (the Independent workload).
//   CorrelatedService — Y = r·x + Z with Z an independent draw (the
//                       Correlated and Queueing workloads; r = 0.5 in §5.1).
//   IdenticalService  — Y = x: the reissue copy performs the same
//                       computation, as in the Redis/Lucene system
//                       experiments, where all response-time variation
//                       beyond the service time comes from queueing.
//   TraceService      — per-query service times replayed from a measured
//                       trace (the bridge from the system substrates),
//                       reissue copies identical to their primary.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::sim {

class ServiceModel {
 public:
  virtual ~ServiceModel() = default;

  /// Service time of the primary copy of query `query_id`.
  [[nodiscard]] virtual double primary(std::uint64_t query_id,
                                       stats::Xoshiro256& rng) = 0;

  /// Service time of a reissue copy given its primary's service time.
  [[nodiscard]] virtual double reissue(std::uint64_t query_id,
                                       double primary_service,
                                       stats::Xoshiro256& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

[[nodiscard]] std::unique_ptr<ServiceModel> make_iid_service(
    stats::DistributionPtr dist);

/// Y = ratio * x + Z, Z drawn independently from `dist` (paper §5.1).
[[nodiscard]] std::unique_ptr<ServiceModel> make_correlated_service(
    stats::DistributionPtr dist, double ratio);

[[nodiscard]] std::unique_ptr<ServiceModel> make_identical_service(
    stats::DistributionPtr dist);

/// Replays `trace[i % trace.size()]` for query i (deterministic order) or
/// resamples uniformly when `resample` is set.
[[nodiscard]] std::unique_ptr<ServiceModel> make_trace_service(
    std::vector<double> trace, bool resample = false);

}  // namespace reissue::sim
