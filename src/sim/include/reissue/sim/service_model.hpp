// Service-time generation for queries and their reissue copies, matching
// the three workload models of paper §4/§5.1:
//
//   IidService        — X and Y independent draws from one distribution
//                       (the Independent workload).
//   CorrelatedService — Y = r·x + Z with Z an independent draw (the
//                       Correlated and Queueing workloads; r = 0.5 in §5.1).
//   IdenticalService  — Y = x: the reissue copy performs the same
//                       computation, as in the Redis/Lucene system
//                       experiments, where all response-time variation
//                       beyond the service time comes from queueing.
//   TraceService      — per-query service times replayed from a measured
//                       trace (the bridge from the system substrates),
//                       reissue copies identical to their primary.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "reissue/stats/distributions.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::sim {

class ServiceModel {
 public:
  /// How the model consumes its service RNG stream.  This is the contract
  /// that decides whether Simulation may draw service values ahead of
  /// event order (see simulation.cpp): batching is only bit-identical to
  /// the scalar event-time draws if moving a draw earlier cannot change
  /// its value.
  enum class DrawOrder {
    /// Unknown consumption pattern: primary()/reissue() must be called at
    /// event time, in event order.  Safe default for external models.
    kOpaque,
    /// primary() and reissue() each consume exactly one draw of one shared
    /// sample stream, and the k-th draw of that stream has the same value
    /// whichever call consumes it.  draw_batch()/primary_from_draw()/
    /// reissue_from_draw() expose the stream for batched refills.
    kSharedStream,
    /// reissue() consumes no RNG, so the service stream is consumed by
    /// primary() alone, in query-id (= arrival) order, and every primary
    /// can be pre-drawn with primary_batch().
    kPrimaryOnly,
  };

  virtual ~ServiceModel() = default;

  /// Service time of the primary copy of query `query_id`.
  [[nodiscard]] virtual double primary(std::uint64_t query_id,
                                       stats::Xoshiro256& rng) = 0;

  /// Service time of a reissue copy given its primary's service time.
  [[nodiscard]] virtual double reissue(std::uint64_t query_id,
                                       double primary_service,
                                       stats::Xoshiro256& rng) = 0;

  /// Batch equivalent of calling primary() for the consecutive query ids
  /// [first_query, first_query + out.size()), bit-identical draw-for-draw.
  /// The default is that scalar loop; models whose distributions support
  /// Distribution::sample_batch override it so the libm transforms
  /// pipeline.
  virtual void primary_batch(std::uint64_t first_query, std::span<double> out,
                             stats::Xoshiro256& rng);

  /// Batch equivalent of calling reissue() for copies whose primaries had
  /// service times `primary_services`: out[i] is the reissue draw for
  /// primary_services[i].  Query ids are not threaded through — none of
  /// the built-in models key reissue draws on the id — so this form suits
  /// tuning/analysis loops that batch Y draws for a block of X's.
  virtual void reissue_batch(std::span<const double> primary_services,
                             std::span<double> out, stats::Xoshiro256& rng);

  [[nodiscard]] virtual DrawOrder draw_order() const {
    return DrawOrder::kOpaque;
  }

  /// kSharedStream only: the next out.size() values of the shared sample
  /// stream, bit-identical to the draws primary()/reissue() would have
  /// consumed.  Default throws std::logic_error.
  virtual void draw_batch(std::span<double> out, stats::Xoshiro256& rng);

  /// kSharedStream only: primary service time from a pre-drawn stream
  /// value.  Default throws std::logic_error.
  [[nodiscard]] virtual double primary_from_draw(double draw) const;

  /// kSharedStream only: reissue service time from a pre-drawn stream
  /// value and the copy's primary service time.  Default throws
  /// std::logic_error.
  [[nodiscard]] virtual double reissue_from_draw(double draw,
                                                 double primary_service) const;

  [[nodiscard]] virtual std::string name() const = 0;
};

[[nodiscard]] std::unique_ptr<ServiceModel> make_iid_service(
    stats::DistributionPtr dist);

/// Y = ratio * x + Z, Z drawn independently from `dist` (paper §5.1).
[[nodiscard]] std::unique_ptr<ServiceModel> make_correlated_service(
    stats::DistributionPtr dist, double ratio);

[[nodiscard]] std::unique_ptr<ServiceModel> make_identical_service(
    stats::DistributionPtr dist);

/// Replays `trace[i % trace.size()]` for query i (deterministic order) or
/// resamples uniformly when `resample` is set.
[[nodiscard]] std::unique_ptr<ServiceModel> make_trace_service(
    std::vector<double> trace, bool resample = false);

}  // namespace reissue::sim
