#include "reissue/sim/server.hpp"

#include <stdexcept>
#include <utility>

namespace reissue::sim {

Server::Server(std::size_t id, std::unique_ptr<QueueDiscipline> queue)
    : id_(id), queue_(std::move(queue)) {
  if (!queue_) throw std::invalid_argument("Server requires a queue");
}

void Server::attach(EventQueue* events, CompletionHandler on_complete) {
  if (events == nullptr) throw std::invalid_argument("Server::attach: null queue");
  events_ = events;
  on_complete_ = std::move(on_complete);
}

void Server::set_cancellation(CancellationCheck check, double cancel_cost) {
  if (cancel_cost < 0.0) {
    throw std::invalid_argument("Server: cancellation cost must be >= 0");
  }
  cancel_check_ = std::move(check);
  cancel_cost_ = cancel_cost;
}

void Server::submit(const Request& request, double now) {
  if (events_ == nullptr) {
    throw std::logic_error("Server::submit before attach");
  }
  queue_->push(request);
  if (!busy_) start_next(now);
}

void Server::start_next(double now) {
  if (queue_->empty()) return;
  Request request = queue_->pop();
  double cost = request.service_time;
  if (cancel_check_ && cancel_check_(request)) {
    cost = cancel_cost_;
  }
  busy_ = true;
  busy_time_ += cost;
  events_->schedule(now + cost, [this, request](double at) {
    finish(request, at);
  });
}

void Server::finish(Request request, double now) {
  busy_ = false;
  ++completed_;
  if (on_complete_) on_complete_(request, now);
  start_next(now);
}

}  // namespace reissue::sim
