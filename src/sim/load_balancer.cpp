#include "reissue/sim/load_balancer.hpp"

#include <limits>
#include <stdexcept>

namespace reissue::sim {

std::string to_string(LoadBalancerKind kind) {
  switch (kind) {
    case LoadBalancerKind::kRandom:
      return "Random";
    case LoadBalancerKind::kRoundRobin:
      return "RoundRobin";
    case LoadBalancerKind::kMinOfTwo:
      return "MinOfTwo";
    case LoadBalancerKind::kMinOfAll:
      return "MinOfAll";
  }
  return "Unknown";
}

namespace {

class RandomBalancer final : public LoadBalancer {
 public:
  std::size_t pick(std::span<const Server> servers, stats::Xoshiro256& rng,
                   std::optional<std::size_t> exclude) override {
    return random_server_index(servers.size(), rng, exclude);
  }

  std::size_t pick_among(std::span<const Server>,
                         std::span<const std::uint32_t> candidates,
                         stats::Xoshiro256& rng) override {
    if (candidates.empty()) throw std::logic_error("load balancer: no servers");
    return static_cast<std::size_t>(rng.below(candidates.size()));
  }
};

class RoundRobinBalancer final : public LoadBalancer {
 public:
  std::size_t pick(std::span<const Server> servers, stats::Xoshiro256&,
                   std::optional<std::size_t> exclude) override {
    const std::size_t n = servers.size();
    if (n == 0) throw std::logic_error("load balancer: no servers");
    for (std::size_t tries = 0; tries < n; ++tries) {
      const std::size_t idx = cursor_++ % n;
      if (!exclude.has_value() || idx != *exclude || n == 1) return idx;
    }
    return cursor_++ % n;
  }

  std::size_t pick_among(std::span<const Server>,
                         std::span<const std::uint32_t> candidates,
                         stats::Xoshiro256&) override {
    if (candidates.empty()) throw std::logic_error("load balancer: no servers");
    // Cyclic over the candidate list: siblings of one group fan out in
    // cursor order, and successive groups keep rotating.
    return cursor_++ % candidates.size();
  }

 private:
  std::size_t cursor_ = 0;
};

class MinOfTwoBalancer final : public LoadBalancer {
 public:
  std::size_t pick(std::span<const Server> servers, stats::Xoshiro256& rng,
                   std::optional<std::size_t> exclude) override {
    const std::size_t a = random_server_index(servers.size(), rng, exclude);
    const std::size_t b = random_server_index(servers.size(), rng, exclude);
    return servers[b].load() < servers[a].load() ? b : a;
  }

  std::size_t pick_among(std::span<const Server> servers,
                         std::span<const std::uint32_t> candidates,
                         stats::Xoshiro256& rng) override {
    if (candidates.empty()) throw std::logic_error("load balancer: no servers");
    const auto a = static_cast<std::size_t>(rng.below(candidates.size()));
    const auto b = static_cast<std::size_t>(rng.below(candidates.size()));
    return servers[candidates[b]].load() < servers[candidates[a]].load() ? b
                                                                         : a;
  }
};

class MinOfAllBalancer final : public LoadBalancer {
 public:
  std::size_t pick_among(std::span<const Server> servers,
                         std::span<const std::uint32_t> candidates,
                         stats::Xoshiro256& rng) override {
    if (candidates.empty()) throw std::logic_error("load balancer: no servers");
    std::size_t best = 0;
    std::size_t best_load = servers[candidates[0]].load();
    std::size_t ties = 1;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      const std::size_t load = servers[candidates[i]].load();
      if (load < best_load) {
        best_load = load;
        best = i;
        ties = 1;
      } else if (load == best_load) {
        // Reservoir-sample among ties so equal-load servers share work.
        ++ties;
        if (rng.below(ties) == 0) best = i;
      }
    }
    return best;
  }

  std::size_t pick(std::span<const Server> servers, stats::Xoshiro256& rng,
                   std::optional<std::size_t> exclude) override {
    std::size_t best = std::numeric_limits<std::size_t>::max();
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    std::size_t ties = 0;
    for (std::size_t i = 0; i < servers.size(); ++i) {
      if (exclude.has_value() && i == *exclude && servers.size() > 1) continue;
      const std::size_t load = servers[i].load();
      if (load < best_load) {
        best_load = load;
        best = i;
        ties = 1;
      } else if (load == best_load) {
        // Reservoir-sample among ties so equal-load servers share work.
        ++ties;
        if (rng.below(ties) == 0) best = i;
      }
    }
    if (best == std::numeric_limits<std::size_t>::max()) {
      throw std::logic_error("load balancer: no servers");
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<LoadBalancer> make_load_balancer(LoadBalancerKind kind) {
  switch (kind) {
    case LoadBalancerKind::kRandom:
      return std::make_unique<RandomBalancer>();
    case LoadBalancerKind::kRoundRobin:
      return std::make_unique<RoundRobinBalancer>();
    case LoadBalancerKind::kMinOfTwo:
      return std::make_unique<MinOfTwoBalancer>();
    case LoadBalancerKind::kMinOfAll:
      return std::make_unique<MinOfAllBalancer>();
  }
  throw std::invalid_argument("make_load_balancer: unknown kind");
}

}  // namespace reissue::sim
