#include "reissue/sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace reissue::sim {

namespace {

/// Refill granularity of the shared service-draw stream.  Big enough that
/// the batched pow/log transforms amortize the refill bookkeeping, small
/// enough (8 KB) to stay L1-resident next to the per-query state.
constexpr std::size_t kServiceDrawChunk = 1024;

}  // namespace

Simulation::Simulation(const ClusterConfig& config, ServiceModel& service,
                       const core::ReissuePolicy& policy,
                       core::RunObserver& observer, RunScratch& scratch,
                       SimObserver* sim_observer, bool unordered)
    : cfg_(config),
      service_(service),
      observer_(observer),
      obs_(sim_observer),
      stages_(policy.stages()),
      events_(scratch.events),
      completions_(scratch.completions),
      unordered_(unordered),
      warmup_(config.warmup) {
  // Stream derivation order is part of the determinism contract: arrival,
  // service, lb, coin, then (each only when enabled — split perturbs the
  // parent) fanout, interference, faults.
  stats::Xoshiro256 root(cfg_.seed);
  arrival_rng_ = root.split(stats::stream_label("arrival"));
  service_rng_ = root.split(stats::stream_label("service"));
  lb_rng_ = root.split(stats::stream_label("lb"));
  coin_rng_ = root.split(stats::stream_label("coin"));
  if (cfg_.fanout.active()) {
    fanout_rng_ = root.split(stats::stream_label("fanout"));
  }

  events_.reset();
  completions_.reset();
  // The scan queue holds at most one pending completion per server, and
  // its O(pending) pop only beats heap sifts while that stays small; big
  // fleets keep the heap.  Fault runs keep the heap too: crashes make
  // scheduled completions stale (generation-tagged), which the scan
  // queue's fixed one-slot-per-server shape cannot express.
  constexpr std::size_t kScanQueueMaxServers = 64;
  scan_completions_ = !cfg_.infinite_servers &&
                      !(cfg_.interference_rate > 0.0) &&
                      !cfg_.faults.any() &&
                      cfg_.servers <= kScanQueueMaxServers;
  // The per-query reissue count is 16-bit (one issued copy per stage).
  if (stages_.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw std::invalid_argument("Cluster: policy stage count must fit 16 bits");
  }
  done_ = scratch.done.ensure(cfg_.queries);
  hot_ = scratch.query_hot.ensure(cfg_.queries);
  // Sibling-group layout: fan-out siblings first, then the reissue slots.
  group_.fanout = static_cast<std::uint32_t>(cfg_.fanout.copies);
  group_.require = static_cast<std::uint32_t>(cfg_.fanout.require);
  group_.reissue_base = group_.fanout - 1;
  group_.stride = group_.reissue_base + stages_.size();
  group_.arena = scratch.arena.ensure(cfg_.queries * group_.stride);
  if (cfg_.fanout.placement == ClusterConfig::FanoutPlan::Placement::kErasure) {
    ec_scale_ = 1.0 / static_cast<double>(group_.require);
  }
  if (cfg_.fanout.active() && cfg_.fanout.spread()) {
    spread_candidates_ = scratch.spread_candidates.ensure(cfg_.servers);
  }
  if (scratch.stage_rings.size() < stages_.size()) {
    scratch.stage_rings.resize(stages_.size());
  }
  group_.rings = std::span(scratch.stage_rings.data(), stages_.size());
  detail::StageEntry* slab =
      scratch.stage_entries.ensure(cfg_.queries * stages_.size());
  for (std::size_t j = 0; j < group_.rings.size(); ++j) {
    StageRing& ring = group_.rings[j];
    ring.base = ring.head = ring.tail = slab + j * cfg_.queries;
    ring.delay = stages_[j].delay;
  }

  if (!cfg_.infinite_servers) {
    // Reuse the scratch's warm server pool when its shape matches and the
    // previous run drained (always true for a run that finished; the idle
    // scan guards against a pool abandoned by a throwing run).
    std::vector<Server>& pool = scratch.servers;
    bool reuse = scratch.servers_ready && scratch.servers_queue == cfg_.queue &&
                 pool.size() == cfg_.servers;
    if (reuse) {
      for (const Server& s : pool) {
        if (s.busy() || s.queue_length() != 0) {
          reuse = false;
          break;
        }
      }
    }
    if (reuse) {
      for (Server& s : pool) s.reset_run_stats();
    } else {
      scratch.servers_ready = false;
      pool.clear();
      pool.reserve(cfg_.servers);
      for (std::size_t i = 0; i < cfg_.servers; ++i) {
        pool.emplace_back(i, make_queue_discipline(cfg_.queue));
      }
      scratch.servers_queue = cfg_.queue;
      scratch.servers_ready = true;
    }
    servers_ = std::span(pool);
    // The default kRandom path is devirtualized in dispatch_copy and never
    // consults a balancer object; only stateful kinds need one (and a
    // fresh one per run — RoundRobin carries a cursor).
    if (cfg_.load_balancer != LoadBalancerKind::kRandom) {
      balancer_ = make_load_balancer(cfg_.load_balancer);
    }

    // Background interference episodes (see ClusterConfig): pre-scheduled
    // per-server Poisson arrivals over the expected arrival horizon.
    if (cfg_.interference_rate > 0.0) {
      if (!cfg_.interference_duration) {
        throw std::invalid_argument(
            "Cluster: interference_rate > 0 requires interference_duration");
      }
      stats::Xoshiro256 interference_rng =
          root.split(stats::stream_label("interference"));
      const double horizon_est =
          static_cast<double>(cfg_.queries) / cfg_.arrival_rate;
      for (std::size_t s = 0; s < cfg_.servers; ++s) {
        double t = 0.0;
        for (;;) {
          t += -std::log(interference_rng.uniform_pos()) /
               cfg_.interference_rate;
          if (t > horizon_est) break;
          const double duration =
              cfg_.interference_duration->sample(interference_rng);
          events_.schedule(t, SimEvent::interference_start(
                                  static_cast<std::uint32_t>(s), duration));
        }
      }
    }

    // Seeded fault injection (ClusterConfig::FaultPlan): every episode is
    // pre-scheduled here from dedicated substreams, derived after the
    // interference stream and in a fixed slowdown → degrade → crash order,
    // so fault-free runs (and runs enabling only a prefix of the families)
    // consume exactly the streams they always did.  Like interference,
    // onsets cover the expected arrival horizon.
    faults_on_ = cfg_.faults.any();
    if (faults_on_) {
      crashes_on_ = cfg_.faults.crashes();
      slowdowns_on_ =
          cfg_.faults.slowdown_rate > 0.0 || cfg_.faults.degrade_rate > 0.0;
      scratch.fault_states.assign(cfg_.servers, detail::ServerFaultState{});
      fault_states_ = std::span(scratch.fault_states);
      live_servers_ = cfg_.servers;
      const double horizon_est =
          static_cast<double>(cfg_.queries) / cfg_.arrival_rate;
      if (cfg_.faults.slowdown_rate > 0.0) {
        stats::Xoshiro256 rng = root.split(stats::stream_label("fault-slowdown"));
        for (std::size_t s = 0; s < cfg_.servers; ++s) {
          double t = 0.0;
          for (;;) {
            t += -std::log(rng.uniform_pos()) / cfg_.faults.slowdown_rate;
            if (t > horizon_est) break;
            const double duration = cfg_.faults.slowdown_duration->sample(rng);
            const auto server = static_cast<std::uint32_t>(s);
            events_.schedule(
                t, SimEvent::fault_begin(FaultKind::kSlowdown, server,
                                         duration));
            events_.schedule(t + duration,
                             SimEvent::fault_end(FaultKind::kSlowdown, server));
          }
        }
      }
      if (cfg_.faults.degrade_rate > 0.0) {
        stats::Xoshiro256 rng = root.split(stats::stream_label("fault-degrade"));
        // Partial Fisher–Yates over a persistent index array: each episode
        // draws its k distinct servers without replacement.
        std::vector<std::uint32_t> index(cfg_.servers);
        for (std::size_t s = 0; s < cfg_.servers; ++s) {
          index[s] = static_cast<std::uint32_t>(s);
        }
        double t = 0.0;
        for (;;) {
          t += -std::log(rng.uniform_pos()) / cfg_.faults.degrade_rate;
          if (t > horizon_est) break;
          const double duration = cfg_.faults.degrade_duration->sample(rng);
          for (std::size_t i = 0; i < cfg_.faults.degrade_servers; ++i) {
            const std::size_t j =
                i + static_cast<std::size_t>(rng.below(cfg_.servers - i));
            std::swap(index[i], index[j]);
            events_.schedule(t, SimEvent::fault_begin(FaultKind::kDegrade,
                                                      index[i], duration));
            events_.schedule(
                t + duration, SimEvent::fault_end(FaultKind::kDegrade,
                                                  index[i]));
          }
        }
      }
      if (cfg_.faults.crash_mtbf > 0.0) {
        stats::Xoshiro256 rng = root.split(stats::stream_label("fault-crash"));
        for (std::size_t s = 0; s < cfg_.servers; ++s) {
          double t = 0.0;
          for (;;) {
            // Inter-failure time counts from the previous recovery — a
            // server cannot crash while already down.
            t += -std::log(rng.uniform_pos()) * cfg_.faults.crash_mtbf;
            if (t > horizon_est) break;
            const double downtime = cfg_.faults.crash_downtime->sample(rng);
            const auto server = static_cast<std::uint32_t>(s);
            events_.schedule(t, SimEvent::fault_begin(FaultKind::kCrash,
                                                      server, downtime));
            events_.schedule(t + downtime,
                             SimEvent::fault_end(FaultKind::kCrash, server));
            t += downtime;
          }
        }
      }
    }
  }

  for (const auto& phase : cfg_.arrival_phases) phase_cycle_ += phase.duration;

  // Batch-draw the order-independent RNG streams (see the member docs):
  // the arrival stream is a pure recurrence t_{i+1} = t_i + dt(t_i), and
  // without reissue stages the service stream is consumed in query-id
  // order, so both can be drawn in tight loops where the libm calls
  // pipeline.  Draw order within each stream is unchanged.
  {
    double* times = scratch.arrival_times.ensure(cfg_.queries);
    if (!cfg_.arrival_schedule.empty()) {
      // Timestamped replay: the recorded schedule is the arrival stream
      // (the Poisson arrival substream is derived but unconsumed).
      std::copy(cfg_.arrival_schedule.begin(), cfg_.arrival_schedule.end(),
                times);
    } else {
      double now = 0.0;
      times[0] = 0.0;
      if (cfg_.arrival_phases.empty()) {
        for (std::size_t i = 1; i < cfg_.queries; ++i) {
          now += -std::log(arrival_rng_.uniform_pos()) / cfg_.arrival_rate;
          times[i] = now;
        }
      } else {
        for (std::size_t i = 1; i < cfg_.queries; ++i) {
          now += -std::log(arrival_rng_.uniform_pos()) / rate_at(now);
          times[i] = now;
        }
      }
    }
    arrival_times_ = times;
  }
  const ServiceModel::DrawOrder order = service_.draw_order();
  if (stages_.empty() || order == ServiceModel::DrawOrder::kPrimaryOnly) {
    // The service stream is consumed in query-id order (no reissue draws,
    // or a model whose reissue() consumes no RNG), so every primary can be
    // pre-drawn through the batch API.
    double* services = scratch.primary_services.ensure(cfg_.queries);
    service_.primary_batch(0, std::span(services, cfg_.queries), service_rng_);
    primary_services_ = services;
  } else if (order == ServiceModel::DrawOrder::kSharedStream) {
    batch_shared_stream_ = true;
    draw_buffer_ = scratch.service_draws.ensure(kServiceDrawChunk);
  }

  schedule_arrival(0.0);
}

/// Next value of the shared service-draw stream (kSharedStream batching).
/// Chunked refills draw the stream in its native order, so the k-th value
/// handed out here is bit-identical to the k-th scalar primary()/reissue()
/// draw; the final partial chunk over-draws the service stream past what
/// the run consumes, which is unobservable (the stream is private to this
/// run and never re-derived from).
double Simulation::next_service_draw() {
  if (draw_pos_ == draw_len_) {
    draw_len_ = kServiceDrawChunk;
    service_.draw_batch(std::span(draw_buffer_, draw_len_), service_rng_);
    draw_pos_ = 0;
  }
  return draw_buffer_[draw_pos_++];
}

void Simulation::schedule_arrival(double time) {
  arrival_key_ = events_.claim_key_trusted(time);
  arrival_pending_ = true;
}

void Simulation::run() {
  if (observed()) {
    counters_.arena_slots = cfg_.queries * group_.stride;
    SimObserver::RunInfo info;
    info.servers = cfg_.infinite_servers ? 0 : cfg_.servers;
    info.infinite_servers = cfg_.infinite_servers;
    info.queries = cfg_.queries;
    info.warmup = cfg_.warmup;
    info.stages = stages_.size();
    info.seed = cfg_.seed;
    info.arrival_rate = cfg_.arrival_rate;
    obs_->on_run_begin(info);
  }
  // The merge loop is the hottest code in the simulator; specialize it on
  // the policy's stage count so the per-iteration candidate scan has no
  // loop for the ubiquitous no-reissue and single-stage cases.
  if (group_.rings.empty()) {
    run_stages<0>();
  } else if (group_.rings.size() == 1) {
    run_stages<1>();
  } else {
    run_stages<-1>();
  }
  finalize(std::max(events_.now(), skipped_horizon_));
}

/// Second dispatch layer: scan mode is a compile-time axis of the merge
/// loop; run_mode adds the observation and delivery-order axes.
template <int StageCount>
void Simulation::run_stages() {
  if (scan_completions_) {
    run_mode<StageCount, true>();
  } else {
    run_mode<StageCount, false>();
  }
}

/// Third dispatch layer: observation and delivery order are orthogonal
/// compile-time axes (the observed instantiations keep counter updates out
/// of the unobserved hot path; the ordered instantiations carry no
/// emission branches).
template <int StageCount, bool ScanMode>
void Simulation::run_mode() {
  if (unordered_) {
    observed() ? run_loop<StageCount, ScanMode, true, true>()
               : run_loop<StageCount, ScanMode, false, true>();
  } else {
    observed() ? run_loop<StageCount, ScanMode, true, false>()
               : run_loop<StageCount, ScanMode, false, false>();
  }
}

/// Dispatches events from the three merged sources — the heap
/// (completions, interference), the pending arrival, and the per-stage
/// reissue-check FIFOs — in (time, seq) order.  All keys come from the
/// queue's claim counter, so the dispatch order is exactly the order the
/// all-heap implementation produced.  `StageCount` is the compile-time
/// ring count (-1 = generic); `ScanMode` selects which completion queue is
/// live (scan queue xor heap — the other is empty for the whole run).
///
/// Structure: only on_arrival creates arrivals and stage entries, so the
/// earliest arrival/stage event — the *barrier* — is invariant while the
/// completion source dispatches.  Each outer iteration therefore computes
/// the barrier once, drains every completion that precedes it in a tight
/// loop (no re-merge per event), then dispatches the barrier event itself.
template <int StageCount, bool ScanMode, bool Observed, bool Unordered>
void Simulation::run_loop() {
  constexpr std::size_t kFromArrival = std::numeric_limits<std::size_t>::max();
  const std::size_t rings =
      StageCount >= 0 ? static_cast<std::size_t>(StageCount)
                      : group_.rings.size();
  for (;;) {
    std::size_t source = kFromArrival;
    EventKey best;
    bool have = false;
    if (arrival_pending_) {
      best = arrival_key_;
      have = true;
    }
    for (std::size_t j = 0; j < rings; ++j) {
      StageRing& ring = group_.rings[j];
      for (;;) {
        if (ring.empty()) break;
        const auto front_id = static_cast<std::uint64_t>(ring.head - ring.base);
        // Recomputed exactly as claimed: arrival time + stage delay.
        const EventKey key{arrival_times_[front_id] + ring.delay,
                           ring.front_seq()};
        // A front that loses the merge stays queued either way — its done
        // flag is only worth loading once it is the prospective winner.
        if (have && !key.before(best)) break;
        // Dead-entry fast path: a stage check for an already-completed
        // query dispatches to a no-op — no RNG consumed, no state touched
        // — so it is retired here without a merge iteration.  `done` is
        // monotone, and a live front that wins the merge has nothing
        // earlier left to complete it first, so retiring now is
        // indistinguishable from dispatching at fire time.  Only the run
        // horizon observes retired entries (they used to advance now());
        // skipped_horizon_ carries that into finalize.
        if (done_[front_id]) {
          if (key.time > skipped_horizon_) skipped_horizon_ = key.time;
          if constexpr (Observed) {
            // A retired entry is a completion-suppressed check that never
            // needed dispatching; report it at its would-be fire time.
            ++counters_.stage_retired;
            ++counters_.reissues_suppressed_completed;
            obs_->on_reissue_suppressed(key.time, front_id,
                                        static_cast<std::uint16_t>(j), true);
          }
          ++ring.head;
          continue;
        }
        source = j;
        best = key;
        have = true;
        break;
      }
    }
    // Completion drain up to the barrier.  A completion may push further
    // completions (a freed server starts its next queued copy), which the
    // per-iteration peek re-merges; it can never move the barrier.  A
    // drained completion may mark the barrier's query done, turning the
    // barrier's stage check into the same no-op dispatching it would have
    // produced — key order, RNG consumption and the run horizon are
    // identical either way.
    if constexpr (ScanMode) {
      while (!completions_.empty()) {
        const EventKey key = completions_.peek_key();
        if (have && !key.before(best)) break;
        // Scan-queue entries are always service completions (the payload
        // is the server index): skip the kind switch.
        const std::uint32_t server = completions_.pop();
        events_.advance_to(key.time);
        if constexpr (Observed) ++counters_.scan_pops;
        complete_on_server<Observed, Unordered>(server, key.time);
      }
    } else {
      while (!events_.empty()) {
        if (have && !events_.peek_key().before(best)) break;
        const SimEvent event = events_.pop();
        if constexpr (Observed) ++counters_.heap_pops;
        dispatch<Observed, Unordered>(event, events_.now());
      }
    }
    if (!have) return;

    if (source == kFromArrival) {
      arrival_pending_ = false;
      events_.advance_to(best.time);
      on_arrival<Observed, Unordered>(best.time);
    } else {
      StageRing& ring = group_.rings[source];
      const auto id = static_cast<std::uint64_t>(ring.head++ - ring.base);
      events_.advance_to(best.time);
      on_reissue_stage<Observed, Unordered>(id, source, best.time);
    }
  }
}

template <bool Observed, bool Unordered>
void Simulation::dispatch(const SimEvent& event, double now) {
  switch (event.kind) {
    case EventKind::kArrival:
      assert(!"arrivals merge via claim_key and are never heap-scheduled");
      return;
    case EventKind::kReissueStage:
      on_reissue_stage<Observed, Unordered>(event.query(), event.stage, now);
      return;
    case EventKind::kCopyComplete:
      // A completion scheduled before its server's crash is stale: the
      // copy already failed with the crash (which bumped the generation).
      if (crashes_on_ &&
          event.generation() != fault_states_[event.server()].generation) {
        return;
      }
      complete_on_server<Observed, Unordered>(event.server(), now);
      return;
    case EventKind::kDirectComplete: {
      // The copy's dispatch time is recomputable for primaries (they
      // dispatch at arrival) and recorded per group slot otherwise.
      const std::uint64_t id = event.query();
      const double dispatch_time =
          event.copy == CopyKind::kPrimary
              ? arrival_times_[id]
              : group_.copy(id, event.copy_index()).dispatch;
      handle_completion<Observed, Unordered>(event.copy, id,
                                             event.copy_index(), dispatch_time,
                                             now);
      return;
    }
    case EventKind::kInterferenceStart: {
      // A background episode cannot start on a crashed server.
      if (crashes_on_ && fault_states_[event.server()].down) return;
      if constexpr (Observed) {
        ++counters_.interference_episodes;
        obs_->on_interference(now, event.server(), event.duration());
      }
      Request background;
      background.query_id = std::numeric_limits<std::uint32_t>::max();
      background.kind = CopyKind::kBackground;
      background.dispatch_time = now;
      background.service_time = event.duration();
      background.connection = std::numeric_limits<std::uint32_t>::max();
      submit_to_server<Observed, Unordered>(event.server(), background, now);
      return;
    }
    case EventKind::kFaultBegin:
      on_fault_begin<Observed, Unordered>(event, now);
      return;
    case EventKind::kFaultEnd:
      on_fault_end<Observed, Unordered>(event, now);
      return;
    case EventKind::kClientRetry: {
      // Deferred dispatch: every server was down when this copy was
      // handed to the load balancer; the retry fires at the earliest
      // recovery, whose kFaultEnd (scheduled at construction, lower seq)
      // has already brought a server back up.
      const std::uint64_t id = event.query();
      const std::uint32_t copy_index = event.copy_index();
      double service;
      if (event.copy == CopyKind::kPrimary) {
        service = primary_service_of(id);
      } else {
        IssuedCopy& slot = group_.copy(id, copy_index);
        // The copy's response clock restarts at the actual dispatch.
        slot.dispatch = now;
        service = slot.service;
      }
      const auto connection = static_cast<std::uint32_t>(id % cfg_.connections);
      dispatch_copy<Observed, Unordered>(id, event.copy, copy_index, connection,
                                         service, now);
      return;
    }
  }
}

/// Server `server` finished its in-service copy: report it, then pull the
/// next copy (completion first, so a same-query copy behind it sees the
/// done flag and can be lazily cancelled).
template <bool Observed, bool Unordered>
void Simulation::complete_on_server(std::uint32_t server, double now) {
  Server& srv = servers_[server];
  const Request& request = srv.finish();
  handle_completion<Observed, Unordered>(request.kind, request.query_id,
                                         request.copy_index,
                                         request.dispatch_time, now);
  if (srv.queue_length() > 0) start_next_on<Observed, Unordered>(server, now);
  if constexpr (Observed) {
    obs_->on_server_state(now, server, srv.queue_length(), srv.busy());
  }
}

/// Cyclic arrival-rate multiplier at time t (workload drift, §4.4).
double Simulation::rate_at(double t) const {
  if (cfg_.arrival_phases.empty()) return cfg_.arrival_rate;
  double offset = std::fmod(t, phase_cycle_);
  for (const auto& phase : cfg_.arrival_phases) {
    if (offset < phase.duration) {
      return cfg_.arrival_rate * phase.multiplier;
    }
    offset -= phase.duration;
  }
  return cfg_.arrival_rate * cfg_.arrival_phases.back().multiplier;
}

Request Simulation::make_request(std::uint64_t id, CopyKind kind,
                                 std::uint32_t copy_index,
                                 std::uint32_t connection, double service_time,
                                 double now) const noexcept {
  Request request;
  request.dispatch_time = now;
  // Erasure-coded fan-out reads 1/k of the object per copy.  Every
  // dispatch and retry path funnels through here, so the scale applies
  // uniformly to primaries, siblings, and reissue copies (stored slot
  // services stay unscaled).
  request.service_time =
      ec_scale_ != 1.0 ? service_time * ec_scale_ : service_time;
  request.query_id = static_cast<std::uint32_t>(id);
  request.copy_index = copy_index;
  request.connection = connection;
  request.kind = kind;
  return request;
}

template <bool Observed, bool Unordered>
void Simulation::on_arrival(double now) {
  const std::uint64_t id = next_query_++;
  // Initialization of the uninitialized-by-design backing arrays.  Two are
  // deliberately skipped: `hot_[id].completion` is written before every read (it
  // is only read once `done_` is set), and `.primary_server` is written at
  // primary dispatch, which precedes any reissue's exclusion lookup.
  // `now` here is arrival_times_[id] bit-for-bit (the arrival key was
  // claimed from that array), so the arrival time is never stored twice.
  double primary_service;
  if (primary_services_ != nullptr) {
    primary_service = primary_services_[id];
    // With no reissue stages, the stored primary service — which only the reissue
    // draw reads — can stay unwritten; kPrimaryOnly models reach here with
    // stages and need it stored for their reissue() calls.
    if (!stages_.empty()) hot_[id].primary_service = primary_service;
  } else if (batch_shared_stream_) {
    primary_service = service_.primary_from_draw(next_service_draw());
    hot_[id].primary_service = primary_service;
  } else {
    primary_service = service_.primary(id, service_rng_);
    hot_[id].primary_service = primary_service;
  }
  hot_[id].primary_response = -1.0;
  const std::uint32_t connection = next_connection_;
  if (++next_connection_ == cfg_.connections) next_connection_ = 0;
  hot_[id].reissue_count = 0;
  if (group_.active()) hot_[id].responses = 0;
  done_[id] = 0;
  if constexpr (Observed) {
    ++counters_.arrivals;
    obs_->on_arrival(now, id);
  }
  if (!group_.active()) {
    dispatch_copy<Observed, Unordered>(id, CopyKind::kPrimary, 0, connection,
                                       primary_service, now);
  } else {
    dispatch_group<Observed, Unordered>(id, connection, primary_service, now);
  }
  group_.schedule_checks(events_, now);
  if constexpr (Observed) {
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      obs_->on_reissue_scheduled(now, id, static_cast<std::uint16_t>(i),
                                 now + stages_[i].delay);
    }
  }
  if (next_query_ < cfg_.queries) {
    schedule_arrival(arrival_times_[next_query_]);
  }
}

/// Dispatches the arriving query's sibling group: the primary through the
/// normal path, then each fan-out sibling.  Spread placement draws from
/// the candidate pool of live servers not already holding a copy of this
/// group (falling back to an independent draw once the pool is exhausted
/// by crashes); every placement consumes the lb stream.
template <bool Observed, bool Unordered>
void Simulation::dispatch_group(std::uint64_t id, std::uint32_t connection,
                                double primary_service, double now) {
  const std::uint32_t primary_server = dispatch_copy<Observed, Unordered>(
      id, CopyKind::kPrimary, 0, connection, primary_service, now);
  std::size_t candidates = 0;
  if (spread_candidates_ != nullptr) {
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      if (crashes_on_ && fault_states_[s].down) continue;
      if (s == primary_server) continue;
      spread_candidates_[candidates++] = static_cast<std::uint32_t>(s);
    }
  }
  for (std::uint32_t j = 1; j < group_.fanout; ++j) {
    // Sibling service requirements correlate with the (unscaled) primary
    // exactly like reissue draws, from the dedicated "fanout" stream.
    const double y = service_.reissue(id, primary_service, fanout_rng_);
    group_.copy(id, j) = IssuedCopy{now, -1.0, y, false};
    if constexpr (Observed) ++counters_.siblings_issued;
    if (candidates > 0) {
      // pick_among returns the position so the winner can be swap-removed
      // — the group's remaining siblings spread over the rest.
      const std::size_t pos =
          cfg_.load_balancer == LoadBalancerKind::kRandom
              ? static_cast<std::size_t>(lb_rng_.below(candidates))
              : balancer_->pick_among(
                    servers_, std::span(spread_candidates_, candidates),
                    lb_rng_);
      const std::uint32_t server = spread_candidates_[pos];
      spread_candidates_[pos] = spread_candidates_[--candidates];
      Request request =
          make_request(id, CopyKind::kSibling, j, connection, y, now);
      place_copy<Observed, Unordered>(request, server, now);
    } else {
      dispatch_copy<Observed, Unordered>(id, CopyKind::kSibling, j, connection,
                                         y, now);
    }
  }
}

template <bool Observed, bool Unordered>
void Simulation::on_reissue_stage(std::uint64_t id, std::size_t stage_index,
                                  double now) {
  if constexpr (Observed) ++counters_.stage_checks;
  // Completion status is checked immediately before sending (paper §6.1).
  if (done_[id]) {
    if constexpr (Observed) {
      ++counters_.reissues_suppressed_completed;
      obs_->on_reissue_suppressed(now, id,
                                  static_cast<std::uint16_t>(stage_index),
                                  true);
    }
    return;
  }
  const core::ReissueStage& stage = stages_[stage_index];
  if (!coin_rng_.bernoulli(stage.probability)) {
    if constexpr (Observed) {
      ++counters_.reissues_suppressed_coin;
      obs_->on_reissue_suppressed(now, id,
                                  static_cast<std::uint16_t>(stage_index),
                                  false);
    }
    return;
  }
  const double y =
      batch_shared_stream_
          ? service_.reissue_from_draw(next_service_draw(),
                                       hot_[id].primary_service)
          : service_.reissue(id, hot_[id].primary_service, service_rng_);
  const std::uint32_t slot = hot_[id].reissue_count++;
  group_.reissue(id, slot) = IssuedCopy{now, -1.0, y, false};
  if constexpr (Unordered) {
    // The replay pass derives the issued-reissue total from the arena;
    // completion-order delivery counts it at issue time instead.
    if (id >= warmup_) ++logged_reissues_;
  }
  if constexpr (Observed) {
    ++counters_.reissues_issued;
    if (++reissue_inflight_ > counters_.reissue_inflight_peak) {
      counters_.reissue_inflight_peak = reissue_inflight_;
    }
    obs_->on_reissue_issued(now, id, static_cast<std::uint16_t>(stage_index));
  }
  // The arrival counter wraps at cfg_.connections, so the copy's
  // connection is recomputable instead of stored per query.
  const auto connection = static_cast<std::uint32_t>(id % cfg_.connections);
  dispatch_copy<Observed, Unordered>(id, CopyKind::kReissue,
                                     group_.reissue_index(slot), connection, y,
                                     now);
}

template <bool Observed, bool Unordered>
void Simulation::handle_completion(CopyKind kind, std::uint64_t id,
                                   std::uint32_t copy_index,
                                   double dispatch_time, double now) {
  if (kind == CopyKind::kBackground) return;
  assert(id < cfg_.queries);
  const double response = now - dispatch_time;
  // Whether the query was already closed out for delivery — group
  // complete with a completed primary — before this response landed.
  const bool was_closed = done_[id] && hot_[id].primary_response >= 0.0;
  if (kind == CopyKind::kPrimary) {
    hot_[id].primary_response = response;
  } else {
    group_.copy(id, copy_index).response = response;
  }
  bool completes = false;
  if (!done_[id]) {
    if constexpr (Observed) {
      if (kind == CopyKind::kSibling) ++sibling_useful_;
    }
    // k-of-n completion rule; the degenerate group completes on the first
    // response, exactly as before fan-out existed.
    if (group_.complete_one(hot_[id])) {
      completes = true;
      done_[id] = 1;
      hot_[id].completion = now;
    }
  }
  if constexpr (Observed) {
    obs_->on_copy_complete(now, id, kind, copy_index, response);
    if (kind == CopyKind::kReissue) {
      if (reissue_inflight_ > 0) --reissue_inflight_;
      if (completes) ++reissue_wins_;
    } else if (kind == CopyKind::kSibling && completes) {
      ++counters_.sibling_wins;
    }
    if (completes) {
      obs_->on_query_done(now, id, now - arrival_times_[id]);
      if (group_.active()) {
        obs_->on_group_complete(now, id, hot_[id].responses, kind, copy_index);
      }
    }
  }
  if constexpr (Unordered) {
    // Completion-order delivery (LogMode::kStreamingUnordered).  A query
    // is closed out at the first moment its latency and primary response
    // are both final: for the degenerate group that is exactly the
    // primary's completion (the first response sets done), and with
    // fan-out it is whichever of {k-th response, primary completion}
    // happens last — the primary always completes (or the run fails
    // validation).  Every issued reissue copy reaches this function
    // exactly once too (a lazily cancelled copy still occupies its server
    // for cancellation_overhead and completes), so a copy emits wherever
    // both endpoints first become known: at its own completion if the
    // query is already closed, otherwise in the closing sweep below.
    // Each issued copy emits exactly once, with values bit-identical to
    // the replay pass; only the delivery order differs.
    if (!was_closed && done_[id] && hot_[id].primary_response >= 0.0) {
      if (id >= warmup_) {
        ++logged_queries_;
        observer_.on_query(hot_[id].completion - arrival_times_[id],
                           hot_[id].primary_response);
        const std::uint16_t issued = hot_[id].reissue_count;
        for (std::uint16_t slot = 0; slot < issued; ++slot) {
          const IssuedCopy& copy = group_.reissue(id, slot);
          // A slot still pending (response unset) emits later, at its own
          // completion; a completed slot's response and cancelled flag are
          // both final here.
          if (copy.response >= 0.0) {
            observer_.on_reissue(hot_[id].primary_response, copy.response,
                                 copy.dispatch - arrival_times_[id],
                                 copy.cancelled);
          }
        }
      }
    } else if (kind == CopyKind::kReissue && was_closed && id >= warmup_) {
      const IssuedCopy& copy = group_.copy(id, copy_index);
      observer_.on_reissue(hot_[id].primary_response, response,
                           copy.dispatch - arrival_times_[id], copy.cancelled);
    }
  }
}

template <bool Observed, bool Unordered>
std::uint32_t Simulation::dispatch_copy(std::uint64_t id, CopyKind kind,
                                        std::uint32_t copy_index,
                                        std::uint32_t connection,
                                        double service_time, double now) {
  Request request =
      make_request(id, kind, copy_index, connection, service_time, now);
  if (cfg_.infinite_servers) {
    if constexpr (Observed) {
      obs_->on_dispatch(now, id, kind, copy_index, SimObserver::kNoServer,
                        request.service_time);
      obs_->on_service_start(now, SimObserver::kNoServer, request,
                             request.service_time);
    }
    events_.schedule(now + request.service_time,
                     SimEvent::direct_complete(request));
    return SimObserver::kNoServer;
  }
  std::optional<std::size_t> exclude;
  if (kind == CopyKind::kReissue && cfg_.exclude_primary_server) {
    exclude = static_cast<std::size_t>(hot_[id].primary_server);
  }
  // Devirtualized fast path for the default uniform-random balancer (same
  // draw as RandomBalancer::pick — both call random_server_index).
  std::size_t idx;
  if (!crashes_on_) [[likely]] {
    idx = cfg_.load_balancer == LoadBalancerKind::kRandom
              ? random_server_index(servers_.size(), lb_rng_, exclude)
              : balancer_->pick(servers_, lb_rng_, exclude);
  } else {
    if (live_servers_ == 0) {
      // Nowhere to send the copy: the client defers and retries at the
      // earliest recovery (see EventKind::kClientRetry).
      if constexpr (Observed) {
        ++counters_.fault_dispatch_rejections;
        obs_->on_dispatch_failed(now, id, kind, copy_index,
                                 SimObserver::kNoServer);
      }
      events_.schedule(min_down_until(),
                       SimEvent::client_retry(id, kind, copy_index));
      return SimObserver::kNoServer;
    }
    // Liveness beats primary-server exclusion: when the excluded server is
    // the only one up, the reissue copy goes there.
    if (exclude && live_servers_ == 1 && !fault_states_[*exclude].down) {
      exclude.reset();
    }
    // Redraw until a live server accepts; each rejection consumes a
    // balancer draw (the client observed a refused connection and picked
    // again), keeping the lb stream's consumption deterministic.
    for (;;) {
      idx = cfg_.load_balancer == LoadBalancerKind::kRandom
                ? random_server_index(servers_.size(), lb_rng_, exclude)
                : balancer_->pick(servers_, lb_rng_, exclude);
      if (!fault_states_[idx].down) break;
      if constexpr (Observed) {
        ++counters_.fault_dispatch_rejections;
        obs_->on_dispatch_failed(now, id, kind, copy_index,
                                 static_cast<std::uint32_t>(idx));
      }
    }
  }
  place_copy<Observed, Unordered>(request, idx, now);
  return static_cast<std::uint32_t>(idx);
}

template <bool Observed, bool Unordered>
void Simulation::place_copy(Request& request, std::size_t server, double now) {
  if (request.kind == CopyKind::kPrimary) {
    hot_[request.query_id].primary_server = static_cast<std::uint32_t>(server);
  }
  if (!cfg_.server_speeds.empty()) {
    request.service_time *= cfg_.server_speeds[server];
  }
  if constexpr (Observed) {
    obs_->on_dispatch(now, request.query_id, request.kind, request.copy_index,
                      static_cast<std::uint32_t>(server), request.service_time);
  }
  submit_to_server<Observed, Unordered>(server, request, now);
}

template <bool Observed, bool Unordered>
void Simulation::submit_to_server(std::size_t server, const Request& request,
                                  double now) {
  Server& srv = servers_[server];
  if (srv.can_start_directly()) {
    // Idle-worker fast path: identical semantics to enqueue + try_start
    // for bypassable disciplines (the common case at moderate load).
    const double cost = srv.start_directly(
        request, cancel_check<Observed, Unordered>(server, now),
        cfg_.cancellation_overhead, speed_of(server));
    schedule_completion(now + cost, server);
    if constexpr (Observed) {
      obs_->on_service_start(now, static_cast<std::uint32_t>(server), request,
                             cost);
      obs_->on_server_state(now, static_cast<std::uint32_t>(server),
                            srv.queue_length(), srv.busy());
    }
    return;
  }
  srv.enqueue(request);
  // A busy server picks the copy up from its queue at its next finish.
  if (!srv.busy()) start_next_on<Observed, Unordered>(server, now);
  if constexpr (Observed) {
    obs_->on_server_state(now, static_cast<std::uint32_t>(server),
                          srv.queue_length(), srv.busy());
  }
}

template <bool Observed, bool Unordered>
void Simulation::start_next_on(std::size_t server, double now) {
  if (const auto cost = servers_[server].try_start(
          cancel_check<Observed, Unordered>(server, now),
          cfg_.cancellation_overhead, speed_of(server))) {
    schedule_completion(now + *cost, server);
    if constexpr (Observed) {
      obs_->on_service_start(now, static_cast<std::uint32_t>(server),
                             servers_[server].current(), *cost);
    }
  }
}

template <bool Observed, bool Unordered>
void Simulation::on_fault_begin(const SimEvent& event, double now) {
  const std::uint32_t server = event.server();
  const FaultKind fault = event.fault_kind();
  detail::ServerFaultState& state = fault_states_[server];
  if constexpr (Observed) {
    obs_->on_fault_begin(now, server, fault, event.duration());
  }
  switch (fault) {
    case FaultKind::kSlowdown:
      if constexpr (Observed) ++counters_.fault_slowdowns;
      ++state.slow_depth;
      recompute_scale(state);
      return;
    case FaultKind::kDegrade:
      if constexpr (Observed) ++counters_.fault_degrades;
      ++state.degrade_depth;
      recompute_scale(state);
      return;
    case FaultKind::kCrash: {
      if constexpr (Observed) ++counters_.fault_crashes;
      assert(!state.down);
      // Mark the server down (and bump the generation) before failing its
      // copies: a re-dispatched primary must not be routed back here.
      state.down = true;
      state.down_until = now + event.duration();
      ++state.generation;
      --live_servers_;
      Server& srv = servers_[server];
      if (srv.busy()) {
        // The scheduled completion is now stale (generation mismatch);
        // refund the cost the copy will never consume so utilization
        // reflects actual occupancy.
        const double unserved = std::max(state.service_end - now, 0.0);
        const Request dead = srv.abort_in_service(unserved);
        fail_copy<Observed, Unordered>(dead, server, now);
      }
      srv.drain([&](const Request& request) {
        fail_copy<Observed, Unordered>(request, server, now);
      });
      if constexpr (Observed) {
        obs_->on_server_state(now, server, srv.queue_length(), srv.busy());
      }
      return;
    }
  }
}

template <bool Observed, bool Unordered>
void Simulation::on_fault_end(const SimEvent& event, double now) {
  const std::uint32_t server = event.server();
  const FaultKind fault = event.fault_kind();
  detail::ServerFaultState& state = fault_states_[server];
  if constexpr (Observed) obs_->on_fault_end(now, server, fault);
  switch (fault) {
    case FaultKind::kSlowdown:
      assert(state.slow_depth > 0);
      --state.slow_depth;
      recompute_scale(state);
      return;
    case FaultKind::kDegrade:
      assert(state.degrade_depth > 0);
      --state.degrade_depth;
      recompute_scale(state);
      return;
    case FaultKind::kCrash:
      // Recovery: the server rejoins empty (its backlog failed at the
      // crash) and accepts dispatch again.
      assert(state.down);
      state.down = false;
      ++live_servers_;
      return;
  }
}

template <bool Observed, bool Unordered>
void Simulation::fail_copy(const Request& request, std::uint32_t server,
                           double now) {
  // A background episode dies silently with its server.
  if (request.kind == CopyKind::kBackground) return;
  const std::uint64_t id = request.query_id;
  if constexpr (Observed) {
    ++counters_.fault_copies_failed;
    obs_->on_dispatch_failed(now, id, request.kind, request.copy_index,
                             server);
  }
  if (request.kind == CopyKind::kPrimary || request.kind == CopyKind::kSibling) {
    // Primaries and fan-out siblings carry the completion guarantee — the
    // k-of-n rule may still need this copy's response — so the client
    // observes the broken connection and immediately re-dispatches the
    // same (unscaled) service requirement through a fresh balancer draw.
    // A sibling re-dispatched after its group completed is simply lazily
    // cancelled wherever it lands.
    if constexpr (Observed) ++counters_.fault_primary_retries;
    const auto connection = static_cast<std::uint32_t>(id % cfg_.connections);
    double service;
    if (request.kind == CopyKind::kPrimary) {
      service = primary_service_of(id);
    } else {
      IssuedCopy& slot = group_.copy(id, request.copy_index);
      // The copy's response clock restarts at the re-dispatch.
      slot.dispatch = now;
      service = slot.service;
    }
    dispatch_copy<Observed, Unordered>(id, request.kind, request.copy_index,
                                       connection, service, now);
    return;
  }
  // A failed reissue copy is abandoned — surviving group members (and the
  // retried primary) are the query's redundancy.  Close the slot as
  // cancelled with an infinite response so both delivery modes emit it
  // exactly once: if the query is already closed out, this is the moment
  // the slot's values become final (emit now, mirroring
  // handle_completion); otherwise the closing sweep picks it up.
  IssuedCopy& slot = group_.copy(id, request.copy_index);
  slot.cancelled = true;
  slot.response = std::numeric_limits<double>::infinity();
  if constexpr (Observed) {
    if (reissue_inflight_ > 0) --reissue_inflight_;
  }
  if constexpr (Unordered) {
    if (id >= warmup_ && done_[id] && hot_[id].primary_response >= 0.0) {
      observer_.on_reissue(hot_[id].primary_response, slot.response,
                           slot.dispatch - arrival_times_[id], slot.cancelled);
    }
  }
}

void Simulation::recompute_scale(detail::ServerFaultState& state)
    const noexcept {
  double scale = 1.0;
  for (std::uint16_t i = 0; i < state.slow_depth; ++i) {
    scale *= cfg_.faults.slowdown_factor;
  }
  for (std::uint16_t i = 0; i < state.degrade_depth; ++i) {
    scale *= cfg_.faults.degrade_factor;
  }
  state.scale = scale;
}

double Simulation::min_down_until() const noexcept {
  double earliest = std::numeric_limits<double>::infinity();
  for (const detail::ServerFaultState& state : fault_states_) {
    if (state.down && state.down_until < earliest) {
      earliest = state.down_until;
    }
  }
  assert(std::isfinite(earliest));
  return earliest;
}

void Simulation::schedule_completion(double time, std::size_t server) {
  if (scan_completions_) {
    completions_.push(events_.claim_key_trusted(time),
                      static_cast<std::uint32_t>(server));
  } else if (crashes_on_) {
    // Tag the completion with the server's crash generation (and remember
    // its time so a crash can refund the unserved cost): a crash bumps the
    // generation, turning this event stale.
    detail::ServerFaultState& state = fault_states_[server];
    state.service_end = time;
    events_.schedule(time,
                     SimEvent::copy_complete(static_cast<std::uint32_t>(server),
                                             state.generation));
  } else {
    events_.schedule(time,
                     SimEvent::copy_complete(static_cast<std::uint32_t>(server)));
  }
}

void Simulation::finalize(double horizon) {
  std::size_t reissues_issued = 0;
  if (unordered_) {
    // Completion-order delivery already fed the observer from inside the
    // run; all that remains is the completeness check the replay pass
    // performed per query (every post-warmup query emitted exactly once —
    // a primary that never completed, e.g. lazily cancelled after a
    // reissue win, leaves the count short) and the totals.
    if (logged_queries_ != cfg_.queries - cfg_.warmup) {
      throw std::logic_error("Cluster: query did not complete");
    }
    reissues_issued = logged_reissues_;
  } else {
    for (std::size_t id = cfg_.warmup; id < cfg_.queries; ++id) {
      if (!done_[id] || hot_[id].primary_response < 0.0) {
        throw std::logic_error("Cluster: query did not complete");
      }
      observer_.on_query(hot_[id].completion - arrival_times_[id],
                         hot_[id].primary_response);
      const std::uint16_t issued = hot_[id].reissue_count;
      for (std::uint16_t slot = 0; slot < issued; ++slot) {
        const IssuedCopy& copy = group_.reissue(id, slot);
        ++reissues_issued;
        observer_.on_reissue(hot_[id].primary_response, copy.response,
                             copy.dispatch - arrival_times_[id],
                             copy.cancelled);
      }
    }
  }

  double utilization = 0.0;
  if (!cfg_.infinite_servers && horizon > 0.0) {
    double busy = 0.0;
    for (const auto& server : servers_) busy += server.busy_time();
    utilization = busy / (static_cast<double>(cfg_.servers) * horizon);
  }
  observer_.on_complete(cfg_.queries - cfg_.warmup, reissues_issued,
                        utilization);

  if (observed()) {
    // Wasted reissues over the whole run (warmup included, matching the
    // other counters): issued copies that did not deliver their query's
    // first response.  Exact by construction — handle_completion counts
    // the winners — where re-deriving it from dispatch + response times
    // would be off by FP rounding on the winner itself.
    counters_.reissues_wasted = counters_.reissues_issued - reissue_wins_;
    // Siblings analogously: issued copies whose responses never counted
    // toward the k-of-n rule (sibling_useful_ tallies those that did).
    counters_.siblings_wasted = counters_.siblings_issued - sibling_useful_;
    obs_->on_run_end(horizon, utilization, counters_);
  }
}

}  // namespace reissue::sim
