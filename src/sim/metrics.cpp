#include "reissue/sim/metrics.hpp"

#include <stdexcept>

namespace reissue::sim {

PolicyEvaluation evaluate_policy(core::SystemUnderTest& system,
                                 const core::ReissuePolicy& policy, double k) {
  const core::RunResult result = system.run(policy);
  PolicyEvaluation eval;
  eval.policy = policy;
  eval.tail_latency = result.tail_latency(k);
  eval.reissue_rate = result.measured_reissue_rate();
  eval.remediation_rate = result.remediation_rate(eval.tail_latency);
  eval.utilization = result.utilization;
  return eval;
}

double reduction_ratio(double baseline_tail, double policy_tail) {
  if (!(policy_tail > 0.0)) {
    throw std::invalid_argument("reduction_ratio: policy tail must be > 0");
  }
  return baseline_tail / policy_tail;
}

TunedPolicy tune_single_r(core::SystemUnderTest& system, double k,
                          double budget, int trials, double learning_rate,
                          bool use_correlation) {
  core::AdaptiveConfig config;
  config.percentile = k;
  config.budget = budget;
  config.max_trials = trials;
  config.learning_rate = learning_rate;
  config.use_correlation = use_correlation;
  TunedPolicy tuned;
  tuned.outcome = core::adapt_single_r(system, config);
  tuned.final_eval = evaluate_policy(system, tuned.outcome.policy, k);
  return tuned;
}

TunedPolicy tune_single_d(core::SystemUnderTest& system, double k,
                          double budget, int trials, double learning_rate) {
  core::AdaptiveConfig config;
  config.percentile = k;
  config.budget = budget;
  config.max_trials = trials;
  config.learning_rate = learning_rate;
  TunedPolicy tuned;
  tuned.outcome = core::adapt_single_d(system, config);
  tuned.final_eval = evaluate_policy(system, tuned.outcome.policy, k);
  return tuned;
}

}  // namespace reissue::sim
