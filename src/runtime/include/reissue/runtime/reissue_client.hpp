// Real-time reissue middleware implementing the paper's client mechanism
// (§6.1):
//
//   "we assign each primary request a timestamp, and add it to a FIFO
//    queue so that the request can be reissued later.  A reissue thread
//    consumes the entries from the FIFO queue, and dispatches the request
//    to a server after a policy-specified delay.  Prior to sending a
//    reissue request, the completion status of its associated query is
//    checked using a client-local boolean array."
//
// The client is backend-agnostic: callers provide a dispatch function that
// sends one copy of a query; the backend's response path calls
// on_response().  A SingleR / SingleD / MultipleR policy is installed at
// construction or swapped at runtime (e.g. by the adaptive controller).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "reissue/core/policy.hpp"
#include "reissue/runtime/clock.hpp"
#include "reissue/runtime/completion_table.hpp"
#include "reissue/runtime/latency_ring.hpp"
#include "reissue/stats/psquare.hpp"
#include "reissue/stats/rng.hpp"

namespace reissue::runtime {

/// Sends one copy of `query_id` to the service.  `is_reissue` lets the
/// transport tag copies (e.g. for prioritized queueing on the server).
using DispatchFn = std::function<void(std::uint64_t query_id, bool is_reissue)>;

/// Passive per-request event hooks for live tracing (the runtime analogue
/// of sim::SimObserver).  Every method has an empty default, so a sink
/// overrides only what it records; a null sink in the config costs one
/// predictable branch per event.  Hooks are invoked from the submitting
/// thread (on_submit), the reissue thread (reissue decisions), and
/// transport response threads (on_first_response) — implementations must
/// be thread-safe.
class ClientEventSink {
 public:
  virtual ~ClientEventSink() = default;

  virtual void on_submit(double /*now_ms*/, std::uint64_t /*query*/) {}
  virtual void on_reissue_issued(double /*now_ms*/, std::uint64_t /*query*/,
                                 std::uint16_t /*stage*/) {}
  virtual void on_reissue_suppressed(double /*now_ms*/,
                                     std::uint64_t /*query*/,
                                     std::uint16_t /*stage*/,
                                     bool /*by_completion*/) {}
  virtual void on_first_response(double /*now_ms*/, std::uint64_t /*query*/,
                                 double /*latency_ms*/,
                                 bool /*from_reissue*/) {}
};

struct ReissueClientConfig {
  /// Maximum in-flight queries tracked (completion-table ring size).
  std::size_t table_capacity = 1 << 16;
  /// Legacy knob, kept for API compatibility (must stay > 0).  The reissue
  /// thread now condition-waits until the earliest pending deadline (new
  /// submissions re-arm it via the queue condition variable), so no fixed
  /// polling happens at this granularity any more.
  double poll_interval_ms = 1.0;
  std::uint64_t seed = 0xc11e;
  /// Retained completed-request samples (see latency_ring.hpp); 0 disables
  /// capture entirely — the response path then skips the ring.
  std::size_t latency_ring_capacity = 0;
  /// Shard count for the sample ring's mutexes.
  std::size_t latency_ring_shards = 8;
  /// Optional per-request trace sink; must outlive the client.
  ClientEventSink* sink = nullptr;
};

/// Point-in-time introspection of a ReissueClient (see stats()).  Counter
/// fields are monotonically increasing; gauges reflect the snapshot
/// moment.  Latency quantiles are streaming P-square estimates of
/// first-response latency in milliseconds (0 until the first sample).
struct ReissueClientStats {
  std::uint64_t queries_submitted = 0;
  /// Queries whose first response has arrived.
  std::uint64_t first_responses = 0;
  std::uint64_t reissues_issued = 0;
  /// Reissues skipped because the completion-table check found the query
  /// already answered (the paper's "check before sending" win).
  std::uint64_t reissues_suppressed_completed = 0;
  /// Reissues skipped by the policy's probability coin.
  std::uint64_t reissues_suppressed_coin = 0;
  /// Entries currently waiting in the reissue heap (gauge).
  std::size_t pending_reissues = 0;
  std::size_t table_capacity = 0;
  /// Queries currently outstanding, clamped to the table size (gauge).
  std::size_t table_occupancy = 0;
  /// Latency digest fields are snapshotted under one lock acquisition
  /// together with first_responses, so latency_samples == first_responses
  /// and the three quantiles describe the same instant.
  std::uint64_t latency_samples = 0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_p999_ms = 0.0;
  /// Sample-ring gauges/counters (all 0 when capture is disabled).
  std::size_t latency_ring_capacity = 0;
  std::size_t latency_ring_occupancy = 0;
  std::uint64_t latency_ring_recorded = 0;
  std::uint64_t latency_ring_dropped = 0;
};

class ReissueClient {
 public:
  /// `clock` must outlive the client.  The reissue thread starts
  /// immediately and stops in the destructor.
  ReissueClient(const Clock& clock, DispatchFn dispatch,
                core::ReissuePolicy policy, ReissueClientConfig config = {});
  ~ReissueClient();

  ReissueClient(const ReissueClient&) = delete;
  ReissueClient& operator=(const ReissueClient&) = delete;

  /// Dispatches the primary copy and schedules policy-driven reissues.
  void submit(std::uint64_t query_id);

  /// Must be called by the transport when any copy's response arrives.
  /// Returns true for the first response of the query.  `from_reissue`
  /// tags responses of reissue copies so the sample ring can attribute
  /// the win (the one-argument overload assumes a primary response; the
  /// digest is identical either way).
  bool on_response(std::uint64_t query_id) {
    return on_response(query_id, /*from_reissue=*/false);
  }
  bool on_response(std::uint64_t query_id, bool from_reissue);

  /// Atomically replaces the policy (applies to queries submitted after
  /// the call).
  void set_policy(core::ReissuePolicy policy);

  [[nodiscard]] core::ReissuePolicy policy() const;

  /// Issued reissue copies so far.
  [[nodiscard]] std::uint64_t reissues_issued() const noexcept {
    return reissues_issued_.load(std::memory_order_relaxed);
  }

  /// Queries submitted so far.
  [[nodiscard]] std::uint64_t queries_submitted() const noexcept {
    return queries_submitted_.load(std::memory_order_relaxed);
  }

  /// Consistent-enough point-in-time snapshot of the client's counters,
  /// gauges, and first-response latency tails.  Safe to call concurrently
  /// with submit/on_response; cheap (two brief lock acquisitions).
  [[nodiscard]] ReissueClientStats stats() const;

  /// Blocks until the reissue queue has drained (all due entries decided);
  /// useful in tests and for graceful shutdown.
  void drain();

  /// Removes and returns the sample ring's retained completed-request
  /// samples, chronological by submit time (empty when capture is
  /// disabled).  This is the training input of the closed-loop optimizer:
  /// latency_values(batch) feeds core::write_latency_log / the §4.1 scan,
  /// and was_reissued partitions the batch for the §4.2 variant.
  [[nodiscard]] std::vector<LatencySample> drain_samples();

  /// True when config.latency_ring_capacity > 0.
  [[nodiscard]] bool captures_samples() const noexcept {
    return ring_ != nullptr;
  }

 private:
  struct PendingEntry {
    std::uint64_t query_id = 0;
    double submit_ms = 0.0;
    /// Absolute time this entry's next stage becomes due.
    double due_ms = 0.0;
    /// Stage index to evaluate next.
    std::size_t stage = 0;
    /// Policy snapshot taken at submit time.
    std::shared_ptr<const core::ReissuePolicy> policy;

    friend bool operator>(const PendingEntry& a, const PendingEntry& b) {
      return a.due_ms > b.due_ms;
    }
  };

  void reissue_loop();
  [[nodiscard]] std::shared_ptr<const core::ReissuePolicy> snapshot() const;

  const Clock& clock_;
  DispatchFn dispatch_;
  ReissueClientConfig config_;
  CompletionTable table_;

  mutable std::mutex policy_mutex_;
  std::shared_ptr<const core::ReissuePolicy> policy_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  /// Min-heap by due time: MultipleR re-enqueues can come due before
  /// earlier-submitted entries, so FIFO order is not due order.
  std::priority_queue<PendingEntry, std::vector<PendingEntry>, std::greater<>>
      queue_;
  bool stopping_ = false;

  stats::Xoshiro256 coin_rng_;
  std::atomic<std::uint64_t> reissues_issued_{0};
  std::atomic<std::uint64_t> queries_submitted_{0};
  std::atomic<std::uint64_t> first_responses_{0};
  std::atomic<std::uint64_t> reissues_suppressed_completed_{0};
  std::atomic<std::uint64_t> reissues_suppressed_coin_{0};

  /// Submit timestamp per table slot, written before CompletionTable::
  /// begin's release store and read after complete's acquire, so the
  /// first-response path sees the matching submit time without extra
  /// synchronization.
  std::vector<double> submit_ms_;
  /// Whether a reissue copy has been issued for the slot's current
  /// generation.  Written by the reissue thread, cleared on submit, read
  /// on first response; relaxed is enough — a racing reissue decided at
  /// the same instant as the response is attributable either way.
  std::vector<std::atomic<std::uint8_t>> reissued_;
  /// Guards the three P² estimators AND the first_responses counter:
  /// on_response updates all four inside one critical section, so a
  /// stats() snapshot taken under the same lock is internally consistent
  /// (latency_samples == first_responses, quantiles from that instant).
  mutable std::mutex latency_mutex_;
  stats::PSquareQuantile latency_p50_;
  stats::PSquareQuantile latency_p99_;
  stats::PSquareQuantile latency_p999_;
  /// Null when capture is disabled (the common, zero-cost case).
  std::unique_ptr<LatencySampleRing> ring_;
  ClientEventSink* sink_ = nullptr;

  std::thread reissue_thread_;
};

}  // namespace reissue::runtime
