// Bounded latency-sample capture for the live serving path.
//
// The ReissueClient's P² sketches answer "what is the tail right now" in
// O(1) space, but the closed-loop optimizer (ROADMAP: live autotuning of
// (d, q)) needs the actual recent samples: the §4.1 scan consumes a
// latency log, and the §4.2 variant additionally needs to know which
// queries were reissued.  This ring keeps the *last* `capacity` completed
// requests as (submit time, first-response latency, was_reissued,
// win_source) tuples with overwrite-oldest semantics — the same
// flight-recorder model as obs::TraceRing — and drains destructively, so
// a periodic consumer (time-series sampler, re-optimization loop) always
// sees each sample exactly once.
//
// Concurrency: record() is called from every transport response thread,
// so the ring is sharded — each shard has its own mutex and sub-ring, and
// a recording thread only ever touches one shard.  drain() locks shards
// one at a time and merges by submit time, so the drained batch reads as
// a chronological latency log.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace reissue::runtime {

/// One completed request, as the future (d, q) optimizer consumes it.
struct LatencySample {
  /// Client-clock submit time (ms since the clock's epoch).
  double submit_ms = 0.0;
  /// First-response latency in milliseconds.
  double latency_ms = 0.0;
  /// A reissue copy was issued for this query before its first response.
  bool was_reissued = false;
  /// The first response came from a reissue copy (requires the transport
  /// to call on_response(id, /*from_reissue=*/true) for reissue copies).
  bool win_reissue = false;
};

/// Extracts the latency column of a drained batch, ready for
/// core::write_latency_log / the §4.1 optimizer scan.
[[nodiscard]] std::vector<double> latency_values(
    const std::vector<LatencySample>& samples);

class LatencySampleRing {
 public:
  /// `capacity` is the total retained-sample bound across all shards
  /// (rounded up to a multiple of the shard count); `shards` bounds
  /// record() contention and is clamped to [1, capacity].
  explicit LatencySampleRing(std::size_t capacity, std::size_t shards = 8);

  LatencySampleRing(const LatencySampleRing&) = delete;
  LatencySampleRing& operator=(const LatencySampleRing&) = delete;

  /// Appends one sample, overwriting the shard's oldest when full.
  void record(const LatencySample& sample);

  /// Removes and returns every retained sample, ordered by submit time.
  [[nodiscard]] std::vector<LatencySample> drain();

  /// Total capacity across shards.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Samples currently retained (sums shard occupancy; a concurrent
  /// record() may make this momentarily stale, never wrong by more than
  /// the in-flight writers).
  [[nodiscard]] std::size_t occupancy() const;

  /// Lifetime samples recorded.
  [[nodiscard]] std::uint64_t recorded() const;

  /// Samples lost to overwrite-oldest before any drain() collected them.
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<LatencySample> samples;  // fixed-size ring storage
    std::size_t next = 0;                // next write slot
    std::size_t size = 0;                // retained (<= samples.size())
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
  };

  std::size_t capacity_ = 0;
  std::size_t per_shard_ = 0;
  /// Shard choice is thread-affine (a thread-local token hashed over the
  /// shard count), so a recording thread never migrates between shards.
  std::vector<Shard> shards_;
};

}  // namespace reissue::runtime
