// Lock-free completion tracking: the paper's client checks "a client-local
// boolean array" immediately before sending a reissue copy (§6.1).  Query
// ids index a fixed ring of atomic flags; generation counters detect reuse.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace reissue::runtime {

class CompletionTable {
 public:
  /// `capacity` is the maximum number of in-flight queries tracked at
  /// once; ids wrap modulo capacity with a generation check.
  explicit CompletionTable(std::size_t capacity);

  CompletionTable(const CompletionTable&) = delete;
  CompletionTable& operator=(const CompletionTable&) = delete;

  /// Registers a new query id; resets its slot to "outstanding".
  void begin(std::uint64_t query_id);

  /// Marks the query complete.  Returns true on the first completion
  /// (later copies of the same query return false).
  bool complete(std::uint64_t query_id);

  /// True once complete() has been called for this id.
  [[nodiscard]] bool is_complete(std::uint64_t query_id) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    /// Packs (generation << 1) | done so begin/complete race detectably.
    std::atomic<std::uint64_t> state{0};
  };

  [[nodiscard]] const Slot& slot(std::uint64_t query_id) const {
    return slots_[query_id % slots_.size()];
  }
  [[nodiscard]] Slot& slot(std::uint64_t query_id) {
    return slots_[query_id % slots_.size()];
  }
  [[nodiscard]] static std::uint64_t generation(std::uint64_t query_id,
                                                std::size_t capacity) {
    return query_id / capacity;
  }

  std::vector<Slot> slots_;
};

}  // namespace reissue::runtime
