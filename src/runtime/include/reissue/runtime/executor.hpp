// Minimal thread pool and a deterministic parallel_for used to fan
// parameter sweeps (budgets x utilizations x policies) across cores.
// Each index writes its own output slot and derives its own RNG stream,
// so results are identical for any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reissue::runtime {

/// Point-in-time view of a ThreadPool (see ThreadPool::stats()).
struct ThreadPoolStats {
  std::size_t threads = 0;
  std::size_t queued = 0;  ///< Tasks waiting for a worker (gauge).
  std::size_t active = 0;  ///< Tasks currently executing (gauge).
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
};

class ThreadPool {
 public:
  /// 0 threads => hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Snapshot of queue depth, in-flight tasks, and lifetime counters.
  [[nodiscard]] ThreadPoolStats stats() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across `threads` workers (0 = all cores).
/// Exceptions from the body propagate (the first one thrown, after all
/// workers finish).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace reissue::runtime
