// Millisecond clock abstraction so the reissue middleware runs unchanged
// against wall time (production / system tests) and a manually advanced
// clock (unit tests).
#pragma once

#include <chrono>

namespace reissue::runtime {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic milliseconds since an arbitrary epoch.
  [[nodiscard]] virtual double now_ms() const = 0;
};

/// std::chrono::steady_clock-backed wall clock.
class WallClock final : public Clock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double now_ms() const override {
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double, std::milli>(elapsed).count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Manually advanced clock for deterministic tests.
class ManualClock final : public Clock {
 public:
  [[nodiscard]] double now_ms() const override { return now_; }
  void advance(double delta_ms) { now_ += delta_ms; }
  void set(double now_ms) { now_ = now_ms; }

 private:
  double now_ = 0.0;
};

}  // namespace reissue::runtime
