#include "reissue/runtime/completion_table.hpp"

#include <stdexcept>

namespace reissue::runtime {

CompletionTable::CompletionTable(std::size_t capacity) : slots_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("CompletionTable: capacity must be > 0");
  }
}

void CompletionTable::begin(std::uint64_t query_id) {
  const std::uint64_t gen = generation(query_id, slots_.size());
  // state = (gen << 1) | done-bit.
  slot(query_id).state.store(gen << 1, std::memory_order_release);
}

bool CompletionTable::complete(std::uint64_t query_id) {
  const std::uint64_t gen = generation(query_id, slots_.size());
  std::uint64_t expected = gen << 1;
  // Only the transition (gen, not-done) -> (gen, done) succeeds; a stale
  // completion from a previous generation or a duplicate completion fails.
  return slot(query_id).state.compare_exchange_strong(
      expected, (gen << 1) | 1, std::memory_order_acq_rel,
      std::memory_order_acquire);
}

bool CompletionTable::is_complete(std::uint64_t query_id) const {
  const std::uint64_t gen = generation(query_id, slots_.size());
  const std::uint64_t state = slot(query_id).state.load(std::memory_order_acquire);
  return state == ((gen << 1) | 1);
}

}  // namespace reissue::runtime
