#include "reissue/runtime/executor.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>

namespace reissue::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
    tasks_.push_back(std::move(task));
    ++submitted_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard lock(mutex_);
  ThreadPoolStats s;
  s.threads = workers_.size();
  s.queued = tasks_.size();
  s.active = active_;
  s.submitted = submitted_;
  s.completed = completed_;
  return s;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      ++completed_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace reissue::runtime
