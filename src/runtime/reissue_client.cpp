#include "reissue/runtime/reissue_client.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace reissue::runtime {

ReissueClient::ReissueClient(const Clock& clock, DispatchFn dispatch,
                             core::ReissuePolicy policy,
                             ReissueClientConfig config)
    : clock_(clock),
      dispatch_(std::move(dispatch)),
      config_(config),
      table_(config.table_capacity),
      policy_(std::make_shared<const core::ReissuePolicy>(std::move(policy))),
      coin_rng_(config.seed),
      submit_ms_(config.table_capacity, 0.0),
      reissued_(config.table_capacity),
      latency_p50_(0.5),
      latency_p99_(0.99),
      latency_p999_(0.999),
      sink_(config.sink) {
  if (!dispatch_) throw std::invalid_argument("ReissueClient: null dispatch");
  if (!(config_.poll_interval_ms > 0.0)) {
    throw std::invalid_argument("ReissueClient: poll interval must be > 0");
  }
  if (config_.latency_ring_capacity > 0) {
    ring_ = std::make_unique<LatencySampleRing>(config_.latency_ring_capacity,
                                                config_.latency_ring_shards);
  }
  reissue_thread_ = std::thread([this] { reissue_loop(); });
}

ReissueClient::~ReissueClient() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  reissue_thread_.join();
}

std::shared_ptr<const core::ReissuePolicy> ReissueClient::snapshot() const {
  std::lock_guard lock(policy_mutex_);
  return policy_;
}

void ReissueClient::set_policy(core::ReissuePolicy policy) {
  auto next = std::make_shared<const core::ReissuePolicy>(std::move(policy));
  std::lock_guard lock(policy_mutex_);
  policy_ = std::move(next);
}

core::ReissuePolicy ReissueClient::policy() const { return *snapshot(); }

void ReissueClient::submit(std::uint64_t query_id) {
  const double now = clock_.now_ms();
  // Written before begin()'s release store so on_response's acquire via
  // complete() observes the submit time (and cleared reissue flag) of its
  // own generation.
  submit_ms_[query_id % submit_ms_.size()] = now;
  reissued_[query_id % reissued_.size()].store(0, std::memory_order_relaxed);
  table_.begin(query_id);
  queries_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (sink_ != nullptr) sink_->on_submit(now, query_id);
  auto policy = snapshot();
  dispatch_(query_id, /*is_reissue=*/false);
  if (!policy->reissues()) return;
  {
    std::lock_guard lock(queue_mutex_);
    const double due = now + policy->stages().front().delay;
    queue_.push(PendingEntry{query_id, now, due, 0, std::move(policy)});
  }
  queue_cv_.notify_one();
}

bool ReissueClient::on_response(std::uint64_t query_id, bool from_reissue) {
  if (!table_.complete(query_id)) return false;
  const double now = clock_.now_ms();
  const double submit = submit_ms_[query_id % submit_ms_.size()];
  const double latency = now - submit;
  const bool was_reissued =
      reissued_[query_id % reissued_.size()].load(std::memory_order_relaxed) !=
      0;
  {
    // One critical section for the digest AND its count: stats() snapshots
    // under the same lock, so latency_samples == first_responses always.
    std::lock_guard lock(latency_mutex_);
    latency_p50_.add(latency);
    latency_p99_.add(latency);
    latency_p999_.add(latency);
    first_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  if (ring_) {
    ring_->record(LatencySample{submit, latency, was_reissued, from_reissue});
  }
  if (sink_ != nullptr) {
    sink_->on_first_response(now, query_id, latency, from_reissue);
  }
  return true;
}

std::vector<LatencySample> ReissueClient::drain_samples() {
  return ring_ ? ring_->drain() : std::vector<LatencySample>{};
}

ReissueClientStats ReissueClient::stats() const {
  ReissueClientStats s;
  s.queries_submitted = queries_submitted_.load(std::memory_order_relaxed);
  s.reissues_issued = reissues_issued_.load(std::memory_order_relaxed);
  s.reissues_suppressed_completed =
      reissues_suppressed_completed_.load(std::memory_order_relaxed);
  s.reissues_suppressed_coin =
      reissues_suppressed_coin_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(queue_mutex_);
    s.pending_reissues = queue_.size();
  }
  s.table_capacity = table_.capacity();
  {
    // One acquisition for the full latency digest and its counter:
    // on_response updates the three estimators and first_responses inside
    // the same critical section, so this snapshot is internally
    // consistent (latency_samples == first_responses, three quantiles of
    // the same sample multiset).
    std::lock_guard lock(latency_mutex_);
    s.first_responses = first_responses_.load(std::memory_order_relaxed);
    s.latency_samples = latency_p50_.count();
    s.latency_p50_ms = latency_p50_.estimate();
    s.latency_p99_ms = latency_p99_.estimate();
    s.latency_p999_ms = latency_p999_.estimate();
  }
  const std::uint64_t outstanding =
      s.queries_submitted > s.first_responses
          ? s.queries_submitted - s.first_responses
          : 0;
  s.table_occupancy =
      static_cast<std::size_t>(std::min<std::uint64_t>(outstanding,
                                                       s.table_capacity));
  if (ring_) {
    s.latency_ring_capacity = ring_->capacity();
    s.latency_ring_occupancy = ring_->occupancy();
    s.latency_ring_recorded = ring_->recorded();
    s.latency_ring_dropped = ring_->dropped();
  }
  return s;
}

void ReissueClient::drain() {
  std::unique_lock lock(queue_mutex_);
  queue_cv_.wait(lock, [this] { return queue_.empty() || stopping_; });
}

void ReissueClient::reissue_loop() {
  std::unique_lock lock(queue_mutex_);
  for (;;) {
    if (stopping_) return;
    if (queue_.empty()) {
      queue_cv_.notify_all();  // wake drain()ers
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      continue;
    }

    const double due = queue_.top().due_ms;
    const double now = clock_.now_ms();
    if (now < due) {
      // Sleep until the earliest deadline.  An earlier-due submission
      // re-arms the wait through the condition variable, so no fixed-rate
      // polling is needed; the loop re-checks the heap top on every wake.
      queue_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                   std::max(due - now, 0.01)));
      continue;
    }

    PendingEntry entry = std::move(const_cast<PendingEntry&>(queue_.top()));
    queue_.pop();

    // Decide this stage outside the queue lock: dispatch may be slow.
    lock.unlock();
    const auto stage = entry.policy->stages()[entry.stage];
    // Completion status checked immediately before sending (paper §6.1).
    // The coin is only flipped for still-outstanding queries, so the RNG
    // stream is independent of response timing for completed ones.
    if (table_.is_complete(entry.query_id)) {
      reissues_suppressed_completed_.fetch_add(1, std::memory_order_relaxed);
      if (sink_ != nullptr) {
        sink_->on_reissue_suppressed(clock_.now_ms(), entry.query_id,
                                     static_cast<std::uint16_t>(entry.stage),
                                     /*by_completion=*/true);
      }
    } else if (!coin_rng_.bernoulli(stage.probability)) {
      reissues_suppressed_coin_.fetch_add(1, std::memory_order_relaxed);
      if (sink_ != nullptr) {
        sink_->on_reissue_suppressed(clock_.now_ms(), entry.query_id,
                                     static_cast<std::uint16_t>(entry.stage),
                                     /*by_completion=*/false);
      }
    } else {
      // Flag before dispatching: if the copy races its own response, the
      // response must still see was_reissued.
      reissued_[entry.query_id % reissued_.size()].store(
          1, std::memory_order_relaxed);
      dispatch_(entry.query_id, /*is_reissue=*/true);
      reissues_issued_.fetch_add(1, std::memory_order_relaxed);
      if (sink_ != nullptr) {
        sink_->on_reissue_issued(clock_.now_ms(), entry.query_id,
                                 static_cast<std::uint16_t>(entry.stage));
      }
    }
    lock.lock();

    // Re-enqueue for the next stage of a MultipleR policy.
    ++entry.stage;
    if (entry.stage < entry.policy->stage_count() &&
        !table_.is_complete(entry.query_id)) {
      entry.due_ms =
          entry.submit_ms + entry.policy->stages()[entry.stage].delay;
      queue_.push(std::move(entry));
    }
    if (queue_.empty()) queue_cv_.notify_all();
  }
}

}  // namespace reissue::runtime
