#include "reissue/runtime/reissue_client.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace reissue::runtime {

ReissueClient::ReissueClient(const Clock& clock, DispatchFn dispatch,
                             core::ReissuePolicy policy,
                             ReissueClientConfig config)
    : clock_(clock),
      dispatch_(std::move(dispatch)),
      config_(config),
      table_(config.table_capacity),
      policy_(std::make_shared<const core::ReissuePolicy>(std::move(policy))),
      coin_rng_(config.seed),
      submit_ms_(config.table_capacity, 0.0),
      latency_p50_(0.5),
      latency_p99_(0.99),
      latency_p999_(0.999) {
  if (!dispatch_) throw std::invalid_argument("ReissueClient: null dispatch");
  if (!(config_.poll_interval_ms > 0.0)) {
    throw std::invalid_argument("ReissueClient: poll interval must be > 0");
  }
  reissue_thread_ = std::thread([this] { reissue_loop(); });
}

ReissueClient::~ReissueClient() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  reissue_thread_.join();
}

std::shared_ptr<const core::ReissuePolicy> ReissueClient::snapshot() const {
  std::lock_guard lock(policy_mutex_);
  return policy_;
}

void ReissueClient::set_policy(core::ReissuePolicy policy) {
  auto next = std::make_shared<const core::ReissuePolicy>(std::move(policy));
  std::lock_guard lock(policy_mutex_);
  policy_ = std::move(next);
}

core::ReissuePolicy ReissueClient::policy() const { return *snapshot(); }

void ReissueClient::submit(std::uint64_t query_id) {
  const double now = clock_.now_ms();
  // Written before begin()'s release store so on_response's acquire via
  // complete() observes the submit time of its own generation.
  submit_ms_[query_id % submit_ms_.size()] = now;
  table_.begin(query_id);
  queries_submitted_.fetch_add(1, std::memory_order_relaxed);
  auto policy = snapshot();
  dispatch_(query_id, /*is_reissue=*/false);
  if (!policy->reissues()) return;
  {
    std::lock_guard lock(queue_mutex_);
    const double due = now + policy->stages().front().delay;
    queue_.push(PendingEntry{query_id, now, due, 0, std::move(policy)});
  }
  queue_cv_.notify_one();
}

bool ReissueClient::on_response(std::uint64_t query_id) {
  if (!table_.complete(query_id)) return false;
  first_responses_.fetch_add(1, std::memory_order_relaxed);
  const double latency =
      clock_.now_ms() - submit_ms_[query_id % submit_ms_.size()];
  {
    std::lock_guard lock(latency_mutex_);
    latency_p50_.add(latency);
    latency_p99_.add(latency);
    latency_p999_.add(latency);
  }
  return true;
}

ReissueClientStats ReissueClient::stats() const {
  ReissueClientStats s;
  s.queries_submitted = queries_submitted_.load(std::memory_order_relaxed);
  s.first_responses = first_responses_.load(std::memory_order_relaxed);
  s.reissues_issued = reissues_issued_.load(std::memory_order_relaxed);
  s.reissues_suppressed_completed =
      reissues_suppressed_completed_.load(std::memory_order_relaxed);
  s.reissues_suppressed_coin =
      reissues_suppressed_coin_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(queue_mutex_);
    s.pending_reissues = queue_.size();
  }
  s.table_capacity = table_.capacity();
  const std::uint64_t outstanding =
      s.queries_submitted > s.first_responses
          ? s.queries_submitted - s.first_responses
          : 0;
  s.table_occupancy =
      static_cast<std::size_t>(std::min<std::uint64_t>(outstanding,
                                                       s.table_capacity));
  {
    std::lock_guard lock(latency_mutex_);
    s.latency_samples = latency_p50_.count();
    s.latency_p50_ms = latency_p50_.estimate();
    s.latency_p99_ms = latency_p99_.estimate();
    s.latency_p999_ms = latency_p999_.estimate();
  }
  return s;
}

void ReissueClient::drain() {
  std::unique_lock lock(queue_mutex_);
  queue_cv_.wait(lock, [this] { return queue_.empty() || stopping_; });
}

void ReissueClient::reissue_loop() {
  std::unique_lock lock(queue_mutex_);
  for (;;) {
    if (stopping_) return;
    if (queue_.empty()) {
      queue_cv_.notify_all();  // wake drain()ers
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      continue;
    }

    const double due = queue_.top().due_ms;
    const double now = clock_.now_ms();
    if (now < due) {
      // Sleep until the earliest deadline.  An earlier-due submission
      // re-arms the wait through the condition variable, so no fixed-rate
      // polling is needed; the loop re-checks the heap top on every wake.
      queue_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                   std::max(due - now, 0.01)));
      continue;
    }

    PendingEntry entry = std::move(const_cast<PendingEntry&>(queue_.top()));
    queue_.pop();

    // Decide this stage outside the queue lock: dispatch may be slow.
    lock.unlock();
    const auto stage = entry.policy->stages()[entry.stage];
    // Completion status checked immediately before sending (paper §6.1).
    // The coin is only flipped for still-outstanding queries, so the RNG
    // stream is independent of response timing for completed ones.
    if (table_.is_complete(entry.query_id)) {
      reissues_suppressed_completed_.fetch_add(1, std::memory_order_relaxed);
    } else if (!coin_rng_.bernoulli(stage.probability)) {
      reissues_suppressed_coin_.fetch_add(1, std::memory_order_relaxed);
    } else {
      dispatch_(entry.query_id, /*is_reissue=*/true);
      reissues_issued_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();

    // Re-enqueue for the next stage of a MultipleR policy.
    ++entry.stage;
    if (entry.stage < entry.policy->stage_count() &&
        !table_.is_complete(entry.query_id)) {
      entry.due_ms =
          entry.submit_ms + entry.policy->stages()[entry.stage].delay;
      queue_.push(std::move(entry));
    }
    if (queue_.empty()) queue_cv_.notify_all();
  }
}

}  // namespace reissue::runtime
