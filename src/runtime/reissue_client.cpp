#include "reissue/runtime/reissue_client.hpp"

#include <chrono>
#include <stdexcept>

namespace reissue::runtime {

ReissueClient::ReissueClient(const Clock& clock, DispatchFn dispatch,
                             core::ReissuePolicy policy,
                             ReissueClientConfig config)
    : clock_(clock),
      dispatch_(std::move(dispatch)),
      config_(config),
      table_(config.table_capacity),
      policy_(std::make_shared<const core::ReissuePolicy>(std::move(policy))),
      coin_rng_(config.seed) {
  if (!dispatch_) throw std::invalid_argument("ReissueClient: null dispatch");
  if (!(config_.poll_interval_ms > 0.0)) {
    throw std::invalid_argument("ReissueClient: poll interval must be > 0");
  }
  reissue_thread_ = std::thread([this] { reissue_loop(); });
}

ReissueClient::~ReissueClient() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  reissue_thread_.join();
}

std::shared_ptr<const core::ReissuePolicy> ReissueClient::snapshot() const {
  std::lock_guard lock(policy_mutex_);
  return policy_;
}

void ReissueClient::set_policy(core::ReissuePolicy policy) {
  auto next = std::make_shared<const core::ReissuePolicy>(std::move(policy));
  std::lock_guard lock(policy_mutex_);
  policy_ = std::move(next);
}

core::ReissuePolicy ReissueClient::policy() const { return *snapshot(); }

void ReissueClient::submit(std::uint64_t query_id) {
  table_.begin(query_id);
  queries_submitted_.fetch_add(1, std::memory_order_relaxed);
  auto policy = snapshot();
  const double now = clock_.now_ms();
  dispatch_(query_id, /*is_reissue=*/false);
  if (!policy->reissues()) return;
  {
    std::lock_guard lock(queue_mutex_);
    const double due = now + policy->stages().front().delay;
    queue_.push(PendingEntry{query_id, now, due, 0, std::move(policy)});
  }
  queue_cv_.notify_one();
}

bool ReissueClient::on_response(std::uint64_t query_id) {
  return table_.complete(query_id);
}

void ReissueClient::drain() {
  std::unique_lock lock(queue_mutex_);
  queue_cv_.wait(lock, [this] { return queue_.empty() || stopping_; });
}

void ReissueClient::reissue_loop() {
  std::unique_lock lock(queue_mutex_);
  for (;;) {
    if (stopping_) return;
    if (queue_.empty()) {
      queue_cv_.notify_all();  // wake drain()ers
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      continue;
    }

    const double due = queue_.top().due_ms;
    const double now = clock_.now_ms();
    if (now < due) {
      // Bounded poll-wait: tracks both wall time and ManualClock advances
      // in tests, and re-checks the heap top after new submissions.
      const double wait_ms = std::min(due - now, config_.poll_interval_ms);
      queue_cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                   std::max(wait_ms, 0.01)));
      continue;
    }

    PendingEntry entry = std::move(const_cast<PendingEntry&>(queue_.top()));
    queue_.pop();

    // Decide this stage outside the queue lock: dispatch may be slow.
    lock.unlock();
    const auto stage = entry.policy->stages()[entry.stage];
    // Completion status checked immediately before sending (paper §6.1).
    if (!table_.is_complete(entry.query_id) &&
        coin_rng_.bernoulli(stage.probability)) {
      dispatch_(entry.query_id, /*is_reissue=*/true);
      reissues_issued_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();

    // Re-enqueue for the next stage of a MultipleR policy.
    ++entry.stage;
    if (entry.stage < entry.policy->stage_count() &&
        !table_.is_complete(entry.query_id)) {
      entry.due_ms =
          entry.submit_ms + entry.policy->stages()[entry.stage].delay;
      queue_.push(std::move(entry));
    }
    if (queue_.empty()) queue_cv_.notify_all();
  }
}

}  // namespace reissue::runtime
