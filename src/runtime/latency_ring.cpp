#include "reissue/runtime/latency_ring.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace reissue::runtime {

namespace {

/// Distinct small integer per thread, assigned on first use; cheaper and
/// more portable than hashing std::thread::id on every record().
std::size_t thread_token() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t token =
      next.fetch_add(1, std::memory_order_relaxed);
  return token;
}

}  // namespace

std::vector<double> latency_values(const std::vector<LatencySample>& samples) {
  std::vector<double> values;
  values.reserve(samples.size());
  for (const LatencySample& s : samples) values.push_back(s.latency_ms);
  return values;
}

LatencySampleRing::LatencySampleRing(std::size_t capacity, std::size_t shards) {
  if (capacity == 0) {
    throw std::invalid_argument("LatencySampleRing: capacity must be > 0");
  }
  const std::size_t shard_count = std::clamp<std::size_t>(shards, 1, capacity);
  per_shard_ = (capacity + shard_count - 1) / shard_count;
  capacity_ = per_shard_ * shard_count;
  shards_ = std::vector<Shard>(shard_count);
  for (Shard& shard : shards_) shard.samples.resize(per_shard_);
}

void LatencySampleRing::record(const LatencySample& sample) {
  Shard& shard = shards_[thread_token() % shards_.size()];
  std::lock_guard lock(shard.mutex);
  shard.samples[shard.next] = sample;
  if (++shard.next == shard.samples.size()) shard.next = 0;
  if (shard.size < shard.samples.size()) {
    ++shard.size;
  } else {
    ++shard.dropped;  // overwrote the shard's oldest retained sample
  }
  ++shard.recorded;
}

std::vector<LatencySample> LatencySampleRing::drain() {
  std::vector<LatencySample> out;
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    // Oldest retained sample: write cursor minus occupancy, mod capacity.
    const std::size_t n = shard.samples.size();
    const std::size_t start = (shard.next + n - shard.size % n) % n;
    for (std::size_t i = 0; i < shard.size; ++i) {
      out.push_back(shard.samples[(start + i) % n]);
    }
    shard.size = 0;
    shard.next = 0;
  }
  // Shards are individually chronological; merge them so the batch reads
  // as one chronological latency log.  stable_sort keeps a shard's
  // equal-timestamp samples in record order.
  std::stable_sort(out.begin(), out.end(),
                   [](const LatencySample& a, const LatencySample& b) {
                     return a.submit_ms < b.submit_ms;
                   });
  return out;
}

std::size_t LatencySampleRing::occupancy() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.size;
  }
  return total;
}

std::uint64_t LatencySampleRing::recorded() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.recorded;
  }
  return total;
}

std::uint64_t LatencySampleRing::dropped() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.dropped;
  }
  return total;
}

}  // namespace reissue::runtime
