#include "reissue/dist/merge.hpp"

#include <sstream>
#include <stdexcept>

#include "reissue/dist/io.hpp"
#include "reissue/dist/manifest.hpp"
#include "reissue/dist/shard.hpp"
#include "reissue/exp/aggregate.hpp"
#include "reissue/exp/scenario.hpp"

namespace reissue::dist {

namespace {

/// The fields every shard of one sweep must agree on: everything except
/// the shard index, its cell range, and the per-file row count/hash.
Manifest sweep_identity(const Manifest& manifest) {
  Manifest identity = manifest;
  identity.shard.index = 0;
  identity.cells = CellRange{};
  identity.rows = 0;
  identity.hash = 0;
  return identity;
}

[[noreturn]] void mismatch(const std::string& path, const std::string& what,
                           const std::string& got, const std::string& want) {
  throw std::runtime_error("merge: shard '" + path + "': " + what + " is " +
                           got + ", other shards have " + want);
}

void check_same_sweep(const std::string& path, const Manifest& m,
                      const std::string& ref_path, const Manifest& ref) {
  if (m.shard.count != ref.shard.count) {
    mismatch(path, "shard count", std::to_string(m.shard.count),
             std::to_string(ref.shard.count));
  }
  if (m.replications != ref.replications) {
    mismatch(path, "replications", std::to_string(m.replications),
             std::to_string(ref.replications));
  }
  if (m.seed != ref.seed) {
    mismatch(path, "seed", std::to_string(m.seed), std::to_string(ref.seed));
  }
  if (m.percentile != ref.percentile) {
    mismatch(path, "percentile", std::to_string(m.percentile),
             std::to_string(ref.percentile));
  }
  if (m.log_mode != ref.log_mode) {
    mismatch(path, "log-mode", to_string(m.log_mode),
             to_string(ref.log_mode));
  }
  if (m.scenarios != ref.scenarios || m.total_cells != ref.total_cells) {
    throw std::runtime_error("merge: shard '" + path +
                             "' was produced by a different sweep than '" +
                             ref_path + "' (scenario lists differ)");
  }
  // Belt and braces: any identity field this function grows behind.
  if (sweep_identity(m) != sweep_identity(ref)) {
    throw std::runtime_error("merge: shard '" + path +
                             "' was produced by a different sweep than '" +
                             ref_path + "'");
  }
}

}  // namespace

MergeReport merge_shards(const std::vector<std::string>& raw_paths) {
  if (raw_paths.empty()) {
    throw std::runtime_error("merge: no shard files given");
  }

  std::vector<Manifest> manifests;
  manifests.reserve(raw_paths.size());
  for (const auto& path : raw_paths) {
    try {
      manifests.push_back(parse_manifest(read_file(manifest_path(path))));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("merge: shard '" + path + "': " + e.what());
    }
  }

  const Manifest& ref = manifests.front();
  for (std::size_t i = 1; i < manifests.size(); ++i) {
    check_same_sweep(raw_paths[i], manifests[i], raw_paths.front(), ref);
  }

  // The shard set must be exactly {0, ..., N-1}, once each.
  const std::size_t shard_count = ref.shard.count;
  std::vector<const std::string*> by_index(shard_count, nullptr);
  for (std::size_t i = 0; i < manifests.size(); ++i) {
    const std::size_t index = manifests[i].shard.index;
    if (by_index[index] != nullptr) {
      throw std::runtime_error("merge: duplicate shard " +
                               to_string(manifests[i].shard) + " ('" +
                               *by_index[index] + "' and '" + raw_paths[i] +
                               "')");
    }
    by_index[index] = &raw_paths[i];
  }
  for (std::size_t index = 0; index < shard_count; ++index) {
    if (by_index[index] == nullptr) {
      throw std::runtime_error("merge: missing shard " +
                               std::to_string(index) + "/" +
                               std::to_string(shard_count));
    }
  }

  // Re-derive the plan from the manifest's own scenario specs; a manifest
  // whose claimed ranges disagree with the planner is corrupt.
  MergeReport report;
  report.shards = shard_count;
  for (const auto& spec_string : ref.scenarios) {
    try {
      report.scenarios.push_back(exp::parse_scenario(spec_string));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("merge: manifest scenario '" + spec_string +
                               "': " + e.what());
    }
  }
  report.options.replications = ref.replications;
  report.options.seed = ref.seed;
  report.options.percentile = ref.percentile;
  report.options.log_mode = ref.log_mode;
  const auto plan = exp::enumerate_cells(report.scenarios, report.options);
  if (plan.size() != ref.total_cells) {
    throw std::runtime_error(
        "merge: manifest total-cells " + std::to_string(ref.total_cells) +
        " disagrees with its scenario list (" + std::to_string(plan.size()) +
        " cells)");
  }
  for (std::size_t i = 0; i < manifests.size(); ++i) {
    const CellRange expected =
        shard_cell_range(plan.size(), manifests[i].shard);
    if (manifests[i].cells != expected) {
      throw std::runtime_error(
          "merge: shard '" + raw_paths[i] + "': claimed cell range [" +
          std::to_string(manifests[i].cells.begin) + ", " +
          std::to_string(manifests[i].cells.end) +
          ") disagrees with the planner's [" +
          std::to_string(expected.begin) + ", " +
          std::to_string(expected.end) + ")");
    }
  }

  // Verify each raw file against its manifest, then collect rows.
  std::vector<exp::RawRow> rows;
  for (std::size_t i = 0; i < manifests.size(); ++i) {
    const Manifest& m = manifests[i];
    const std::string& path = raw_paths[i];
    const std::string content = read_file(path);
    if (fnv1a64(content) != m.hash) {
      throw std::runtime_error(
          "merge: shard '" + path +
          "': content hash mismatch (file changed since its manifest was "
          "written)");
    }
    std::istringstream is(content);
    std::vector<exp::RawRow> shard_rows;
    try {
      shard_rows = exp::parse_raw_csv(is);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("merge: shard '" + path + "': " + e.what());
    }
    if (shard_rows.size() != m.rows) {
      throw std::runtime_error("merge: shard '" + path + "': manifest says " +
                               std::to_string(m.rows) + " rows, file has " +
                               std::to_string(shard_rows.size()));
    }
    for (const auto& row : shard_rows) {
      if (row.cell < m.cells.begin || row.cell >= m.cells.end) {
        throw std::runtime_error("merge: shard '" + path + "': row for cell " +
                                 std::to_string(row.cell) +
                                 " is outside the shard's range");
      }
      rows.push_back(row);
    }
  }

  report.rows = rows.size();
  report.cells = exp::cells_from_raw_rows(rows, ref.replications);
  // Rows are confined to their shards' ranges, and those ranges partition
  // [0, total): matching cell counts therefore means full coverage.
  if (report.cells.size() != plan.size()) {
    throw std::runtime_error("merge: assembled " +
                             std::to_string(report.cells.size()) +
                             " cells, sweep plan has " +
                             std::to_string(plan.size()));
  }

  // Every assembled cell must sit exactly where the plan puts it.
  for (std::size_t c = 0; c < report.cells.size(); ++c) {
    const exp::CellRef& cell_ref = plan[c];
    const exp::ScenarioSpec& spec = report.scenarios[cell_ref.scenario];
    const exp::CellResult& cell = report.cells[c];
    if (cell.scenario != spec.name ||
        cell.policy != exp::to_string(spec.policies[cell_ref.policy]) ||
        cell.percentile != cell_ref.percentile) {
      throw std::runtime_error(
          "merge: cell " + std::to_string(c) + " holds (" + cell.scenario +
          ", " + cell.policy + "), the sweep plan expects (" + spec.name +
          ", " + exp::to_string(spec.policies[cell_ref.policy]) + ")");
    }
  }
  return report;
}

}  // namespace reissue::dist
