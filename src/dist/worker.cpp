#include "reissue/dist/worker.hpp"

#include <atomic>
#include <charconv>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "reissue/dist/io.hpp"
#include "reissue/exp/aggregate.hpp"

namespace reissue::dist {

namespace {

// v2: raw rows grew the trailing delay/probability columns; a v1 journal
// fails the header check below with the fingerprint-mismatch guidance
// instead of a confusing per-row column-count error.
constexpr std::string_view kJournalMagic = "reissue-shard-journal v2";

std::string journal_header(std::uint64_t fingerprint) {
  return std::string(kJournalMagic) + " " + hex64(fingerprint);
}

/// Completed cells recovered from a journal: canonical cell index -> raw
/// row lines ordered by replication.  Lines are kept verbatim so a resumed
/// shard file is byte-identical to an uninterrupted one.
using CompletedCells = std::map<std::size_t, std::vector<std::string>>;

CompletedCells parse_journal(const std::string& path,
                             std::uint64_t fingerprint,
                             const CellRange& range,
                             const std::vector<exp::ScenarioSpec>& scenarios,
                             const std::vector<exp::CellRef>& plan,
                             const exp::SweepOptions& sweep) {
  const std::size_t replications = sweep.replications;
  const std::string text = read_file(path);
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != journal_header(fingerprint)) {
    throw std::runtime_error(
        "journal '" + path +
        "': fingerprint mismatch (written by a different sweep or shard); "
        "delete it to recompute this shard from scratch");
  }

  CompletedCells completed;
  std::vector<std::string> pending;  // rows since the last cell-done marker
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind("cell-done ", 0) != 0) {
      pending.push_back(line);
      continue;
    }
    std::istringstream marker(line.substr(10));
    std::size_t cell = 0;
    std::size_t rows = 0;
    if (!(marker >> cell >> rows) || (marker >> std::ws, !marker.eof())) {
      throw std::runtime_error("journal '" + path + "': malformed marker '" +
                               line + "'");
    }
    if (cell < range.begin || cell >= range.end) {
      throw std::runtime_error("journal '" + path + "': cell " +
                               std::to_string(cell) +
                               " is outside this shard's range");
    }
    if (rows != replications || pending.size() != rows) {
      throw std::runtime_error(
          "journal '" + path + "': cell " + std::to_string(cell) + " has " +
          std::to_string(pending.size()) + " rows, marker claims " +
          std::to_string(rows) + ", sweep needs " +
          std::to_string(replications));
    }
    if (completed.count(cell) != 0) {
      throw std::runtime_error("journal '" + path + "': duplicate cell " +
                               std::to_string(cell));
    }
    // Order rows by replication index, verify the set is exactly 0..R-1,
    // and check each row says exactly what the sweep plan says about its
    // cell (including the derived seed) -- a corrupted-but-parseable
    // journal must not leak into the shard file.  The lines themselves
    // stay verbatim so resumed files are byte-identical.
    const exp::ScenarioSpec& spec = scenarios[plan[cell].scenario];
    const std::string policy =
        exp::to_string(spec.policies[plan[cell].policy]);
    std::vector<std::string> ordered(replications);
    std::vector<bool> seen(replications, false);
    for (auto& row_line : pending) {
      exp::RawRow row;
      try {
        row = exp::parse_raw_csv_row(row_line);
      } catch (const std::runtime_error& e) {
        throw std::runtime_error("journal '" + path + "': cell " +
                                 std::to_string(cell) + ": " + e.what());
      }
      if (row.cell != cell || row.replication >= replications ||
          seen[row.replication]) {
        throw std::runtime_error("journal '" + path + "': cell " +
                                 std::to_string(cell) +
                                 " holds a row for cell " +
                                 std::to_string(row.cell) + " replication " +
                                 std::to_string(row.replication));
      }
      if (row.scenario != spec.name || row.policy != policy ||
          row.percentile != plan[cell].percentile ||
          row.metrics.seed !=
              exp::replication_seed(sweep.seed, spec.name, row.replication)) {
        throw std::runtime_error(
            "journal '" + path + "': cell " + std::to_string(cell) +
            " replication " + std::to_string(row.replication) +
            " does not match the sweep plan");
      }
      seen[row.replication] = true;
      ordered[row.replication] = std::move(row_line);
    }
    completed.emplace(cell, std::move(ordered));
    pending.clear();
  }
  // Rows after the last marker belong to the cell the worker was killed
  // in; they are recomputed, not trusted.
  return completed;
}

/// Per-thread-slot system cache, persistent across the shard's cells so
/// expensive substrates build once per slot (mirrors run_sweep's workers).
using SystemCache =
    std::unordered_map<std::size_t, std::unique_ptr<core::SystemUnderTest>>;

exp::CellResult run_one_cell(const std::vector<exp::ScenarioSpec>& scenarios,
                             const exp::CellRef& ref,
                             const exp::SweepOptions& sweep,
                             std::vector<SystemCache>& slots) {
  const exp::ScenarioSpec& spec = scenarios[ref.scenario];
  const exp::PolicySpec& policy = spec.policies[ref.policy];
  exp::CellResult cell;
  cell.scenario = spec.name;
  cell.policy = exp::to_string(policy);
  cell.percentile = ref.percentile;
  cell.replications.resize(sweep.replications);

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto work = [&](std::size_t slot) {
    SystemCache& cache = slots[slot];
    for (;;) {
      const std::size_t r = next.fetch_add(1, std::memory_order_relaxed);
      if (r >= sweep.replications) return;
      try {
        auto& system = cache[ref.scenario];
        if (!system) {
          system = exp::make_system(
              spec, exp::construction_seed(sweep.seed, spec.name));
        }
        const std::uint64_t seed =
            exp::replication_seed(sweep.seed, spec.name, r);
        if (!system->reseed(seed)) {
          throw std::runtime_error("run_shard: scenario '" + spec.name +
                                   "' system does not support reseeding");
        }
        cell.replications[r] = exp::run_cell_replication(
            *system, policy, ref.percentile, seed, sweep.log_mode);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(sweep.replications, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (slots.size() <= 1) {
    work(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(slots.size());
    for (std::size_t s = 0; s < slots.size(); ++s) threads.emplace_back(work, s);
    for (auto& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return cell;
}

/// One timings-side-file row for a newly computed cell.
std::string timing_row(std::size_t cell, const exp::CellResult& result,
                       double seconds) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), seconds);
  std::string row = std::to_string(cell);
  row += ',';
  row += result.scenario;
  row += ',';
  row += result.policy;
  row += ',';
  row.append(buf, ec == std::errc() ? end : buf);
  row += '\n';
  return row;
}

}  // namespace

std::string journal_path(const std::string& raw_path) {
  return raw_path + ".journal";
}

namespace {

Manifest make_manifest(const std::vector<exp::ScenarioSpec>& scenarios,
                       const exp::SweepOptions& sweep, const ShardRef& shard,
                       std::size_t total_cells) {
  Manifest manifest;
  manifest.shard = shard;
  manifest.cells = shard_cell_range(total_cells, shard);
  manifest.total_cells = total_cells;
  manifest.replications = sweep.replications;
  manifest.seed = sweep.seed;
  manifest.percentile = sweep.percentile;
  manifest.log_mode = sweep.log_mode;
  for (const auto& spec : scenarios) {
    manifest.scenarios.push_back(to_spec_string(spec));
  }
  return manifest;
}

}  // namespace

Manifest plan_manifest(const std::vector<exp::ScenarioSpec>& scenarios,
                       const exp::SweepOptions& sweep, const ShardRef& shard) {
  return make_manifest(scenarios, sweep, shard,
                       exp::enumerate_cells(scenarios, sweep).size());
}

WorkerReport run_shard(const std::vector<exp::ScenarioSpec>& scenarios,
                       const WorkerOptions& options) {
  if (options.raw_output.empty()) {
    throw std::runtime_error("run_shard: raw_output path is required");
  }
  const auto plan = exp::enumerate_cells(scenarios, options.sweep);
  Manifest manifest =
      make_manifest(scenarios, options.sweep, options.shard, plan.size());
  const CellRange range = manifest.cells;
  const std::uint64_t fingerprint = shard_fingerprint(manifest);
  const std::string journal =
      options.journal.empty() ? journal_path(options.raw_output)
                              : options.journal;

  WorkerReport report;
  report.cells_total = range.size();

  CompletedCells completed;
  if (std::filesystem::exists(journal)) {
    completed = parse_journal(journal, fingerprint, range, scenarios, plan,
                              options.sweep);
  }
  report.cells_resumed = completed.size();

  // Thread slots for this shard: replications of one cell fan across them
  // (bounded by the replication count -- the per-cell barrier is what
  // makes every checkpoint a whole cell); caches persist across cells so
  // substrates build once per slot.
  std::size_t threads = options.sweep.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::max<std::size_t>(
      1, std::min(threads, options.sweep.replications));
  std::vector<SystemCache> slots(threads);

  bool budget_hit = false;
  std::vector<std::string> timing_rows;
  if (completed.size() < range.size()) {
    // (Re)write the journal from the validated checkpoint before
    // appending: a killed run may have left partial rows after the last
    // marker, and appending behind them would wedge the next resume.
    std::string replay = journal_header(fingerprint) + "\n";
    for (const auto& [cell, lines] : completed) {
      for (const auto& line : lines) {
        replay += line;
        replay += '\n';
      }
      replay += "cell-done " + std::to_string(cell) + " " +
                std::to_string(lines.size()) + "\n";
    }
    atomic_write_file(journal, replay);
    std::ofstream out(journal, std::ios::binary | std::ios::app);
    if (!out) {
      throw std::runtime_error("run_shard: cannot open journal: " + journal);
    }
    for (std::size_t c = range.begin; c < range.end; ++c) {
      if (completed.count(c) != 0) continue;
      if (options.max_new_cells != 0 &&
          report.cells_run >= options.max_new_cells) {
        budget_hit = true;
        break;
      }
      const auto cell_start = std::chrono::steady_clock::now();
      const exp::CellResult cell =
          run_one_cell(scenarios, plan[c], options.sweep, slots);
      const double cell_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        cell_start)
              .count();
      std::vector<std::string> lines;
      lines.reserve(cell.replications.size());
      for (std::size_t r = 0; r < cell.replications.size(); ++r) {
        lines.push_back(exp::raw_csv_row(cell, c, r));
      }
      for (const auto& line : lines) out << line << "\n";
      out << "cell-done " << c << " " << lines.size() << "\n" << std::flush;
      if (!out) {
        throw std::runtime_error("run_shard: cannot append to journal: " +
                                 journal);
      }
      if (!options.timings_output.empty()) {
        timing_rows.push_back(timing_row(c, cell, cell_seconds));
      }
      completed.emplace(c, std::move(lines));
      ++report.cells_run;
      if (options.on_cell_done) {
        options.on_cell_done(completed.size(), range.size());
      }
    }
  }
  if (!options.timings_output.empty()) {
    // Diagnostic side file: never part of the hashed raw CSV/manifest.
    std::string timings = "cell,scenario,policy,seconds\n";
    for (const auto& row : timing_rows) timings += row;
    atomic_write_file(options.timings_output, timings);
  }

  if (budget_hit) {
    report.manifest = manifest;  // rows/hash stay zero: not finished
    return report;
  }

  std::string content = exp::raw_csv_header() + "\n";
  std::size_t rows = 0;
  for (const auto& [cell, lines] : completed) {
    (void)cell;
    for (const auto& line : lines) {
      content += line;
      content += '\n';
      ++rows;
    }
  }
  manifest.rows = rows;
  manifest.hash = fnv1a64(content);

  atomic_write_file(options.raw_output, content);
  atomic_write_file(manifest_path(options.raw_output), to_text(manifest));
  std::error_code ec;
  std::filesystem::remove(journal, ec);  // best effort: resume would no-op

  report.manifest = manifest;
  report.finished = true;
  return report;
}

}  // namespace reissue::dist
