#include "reissue/dist/shard.hpp"

#include <charconv>
#include <stdexcept>

namespace reissue::dist {

namespace {

std::size_t parse_count(std::string_view what, std::string_view token) {
  std::size_t value = 0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error(std::string(what) + ": not a count: '" +
                             std::string(token) + "'");
  }
  return value;
}

}  // namespace

std::string to_string(const ShardRef& shard) {
  return std::to_string(shard.index) + "/" + std::to_string(shard.count);
}

ShardRef parse_shard(std::string_view token) {
  const auto slash = token.find('/');
  if (slash == std::string_view::npos || slash == 0 ||
      slash + 1 == token.size()) {
    throw std::runtime_error("shard '" + std::string(token) +
                             "': expected i/N");
  }
  ShardRef shard;
  shard.index = parse_count("shard index", token.substr(0, slash));
  shard.count = parse_count("shard count", token.substr(slash + 1));
  if (shard.count == 0) {
    throw std::runtime_error("shard '" + std::string(token) +
                             "': count must be >= 1");
  }
  if (shard.index >= shard.count) {
    throw std::runtime_error("shard '" + std::string(token) +
                             "': index must be < count");
  }
  return shard;
}

CellRange shard_cell_range(std::size_t total_cells, const ShardRef& shard) {
  if (shard.count == 0 || shard.index >= shard.count) {
    throw std::invalid_argument("shard_cell_range: invalid shard " +
                                std::to_string(shard.index) + "/" +
                                std::to_string(shard.count));
  }
  // floor(i*C/N): exact in size_t as long as i*C does not overflow, which
  // holds for any realistic sweep (C and N are both far below 2^32).
  CellRange range;
  range.begin = shard.index * total_cells / shard.count;
  range.end = (shard.index + 1) * total_cells / shard.count;
  return range;
}

}  // namespace reissue::dist
