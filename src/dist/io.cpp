#include "reissue/dist/io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace reissue::dist {

std::string hex64(std::uint64_t value) {
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = "0123456789abcdef"[value & 0xf];
    value >>= 4;
  }
  return std::string(buf, sizeof buf);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) throw std::runtime_error("cannot read file: " + path);
  return std::move(os).str();
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open output file: " + tmp);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.close();
    if (out.fail()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("cannot write output file: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

}  // namespace reissue::dist
