// Shard worker: runs one shard of a distributed sweep and emits the raw
// replication-level CSV plus its manifest.
//
// The worker computes the same canonical cell plan as the local runner
// (exp::enumerate_cells), slices its shard's contiguous range, and runs
// the cells one at a time -- replications of a cell fan across the
// configured threads with per-thread system caches, reseeded per
// replication exactly like exp::run_sweep, so every row is bit-identical
// to the row a single-process sweep would produce.
//
// Checkpoint/resume: after each completed cell the worker appends the
// cell's raw rows plus a "cell-done" marker to a journal file and flushes.
// A killed worker rerun with the same options validates the journal's
// shard fingerprint, trusts completed cells verbatim (rows are replayed
// byte-for-byte into the final file), discards any partial trailing cell,
// and computes only what is missing.  The finished raw CSV and manifest
// are written atomically and the journal is removed.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "reissue/dist/manifest.hpp"
#include "reissue/dist/shard.hpp"
#include "reissue/exp/runner.hpp"

namespace reissue::dist {

struct WorkerOptions {
  /// Which slice of the sweep this worker owns.
  ShardRef shard;
  /// Raw replication CSV path (required).  The manifest lands next to it
  /// at manifest_path(raw_output).
  std::string raw_output;
  /// Checkpoint journal path; empty = raw_output + ".journal".
  std::string journal;
  /// Replications / threads / seed / percentile / log mode of the whole
  /// sweep -- must be identical across shards (the manifest pins them).
  /// Worker parallelism is bounded by the replication count: cells run one
  /// at a time so every checkpoint is a whole cell (shard wider, not
  /// deeper, to use more cores than a cell has replications).
  exp::SweepOptions sweep;
  /// Stop after computing this many new cells, leaving the journal in
  /// place (0 = run to completion).  Both an incremental work budget for
  /// preemptible machines and the checkpoint test hook.
  std::size_t max_new_cells = 0;
  /// Optional progress callback fired after each cell this invocation
  /// completes: (cells_done_in_shard including resumed, cells_total).
  /// Called from the coordinating thread; keep it cheap.
  std::function<void(std::size_t, std::size_t)> on_cell_done;
  /// When non-empty, per-cell wall-clock timings for cells computed by
  /// this invocation are written here as CSV (cell,scenario,policy,
  /// seconds).  A diagnostic side file only: it is written next to — and
  /// never included in — the hashed raw CSV, so shard-merge byte-identity
  /// is unaffected.  Resumed cells have no timing (they did not run).
  std::string timings_output;
};

struct WorkerReport {
  /// The shard's manifest; rows/hash are populated only when `finished`.
  Manifest manifest;
  /// True once the raw CSV + manifest are on disk and the journal is gone.
  bool finished = false;
  std::size_t cells_total = 0;    ///< Cells in this shard's range.
  std::size_t cells_resumed = 0;  ///< Recovered from the journal.
  std::size_t cells_run = 0;      ///< Computed by this invocation.
};

/// Conventional journal path for a raw shard CSV ("FILE.journal").
[[nodiscard]] std::string journal_path(const std::string& raw_path);

/// The manifest a finished run of this shard will produce, minus rows and
/// content hash: the planning/validation half of run_shard, shared with
/// the merge coordinator and with tests.  Throws on invalid sweeps (same
/// contract as exp::run_sweep) or an invalid shard.
[[nodiscard]] Manifest plan_manifest(
    const std::vector<exp::ScenarioSpec>& scenarios,
    const exp::SweepOptions& sweep, const ShardRef& shard);

/// Runs (or resumes) one shard.  Throws std::runtime_error on I/O errors,
/// a journal from a different sweep/shard, or corrupted journal entries.
[[nodiscard]] WorkerReport run_shard(
    const std::vector<exp::ScenarioSpec>& scenarios,
    const WorkerOptions& options);

}  // namespace reissue::dist
