// Merge coordinator: validates shard manifests, verifies raw file
// integrity, reassembles cells in canonical order, and hands back
// CellResults ready for exp::aggregate -- so the merged CSV is
// byte-identical to `reissue_cli sweep` run in one process at any thread
// count.
//
// Everything is re-derived and cross-checked rather than trusted: the
// scenario specs in the manifests are re-parsed and re-planned, each
// shard's claimed cell range is recomputed from the planner, file bytes
// are re-hashed against the manifest, and every row's (cell, replication,
// scenario, policy, percentile) must land exactly where the plan says.
// Missing shards, duplicate shards, shards from a different sweep, and
// tampered or truncated files all produce targeted errors.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "reissue/exp/runner.hpp"

namespace reissue::dist {

struct MergeReport {
  /// The full sweep's cells in canonical order, ready for exp::aggregate.
  std::vector<exp::CellResult> cells;
  /// Scenario specs reconstructed from the manifests, in sweep order.
  std::vector<exp::ScenarioSpec> scenarios;
  /// Sweep options reconstructed from the manifests (replications, seed,
  /// percentile override, log mode; threads is not part of the output
  /// contract and stays default).
  exp::SweepOptions options;
  std::size_t shards = 0;
  std::size_t rows = 0;
};

/// Merges the shards' raw CSVs (manifests are read from
/// manifest_path(raw_path) next to each file).  Throws std::runtime_error
/// with a targeted diagnostic on any inconsistency.
[[nodiscard]] MergeReport merge_shards(
    const std::vector<std::string>& raw_paths);

}  // namespace reissue::dist
