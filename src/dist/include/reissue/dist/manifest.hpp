// Shard manifests: the metadata a worker emits next to its raw
// replication CSV so the merge coordinator can verify -- before touching a
// single row -- that every shard ran the same sweep (same scenario specs,
// root seed, replication count, percentile override and log mode), that
// the shard set is complete and disjoint, and that each raw file still
// holds exactly the bytes its worker wrote (row count + FNV-1a content
// hash).  A mismatched shard is rejected at merge time instead of silently
// corrupting the merged CSV.
//
// Manifests round-trip through a fixed-order line-oriented text form:
//
//   reissue-shard-manifest v1
//   shard 0/3
//   cells 0 3
//   total-cells 9
//   replications 8
//   seed 24397
//   percentile 0
//   log-mode streaming
//   rows 24
//   hash 8c5fa1f3209c1e17
//   scenario name=queueing-u30 kind=queueing ...
//   scenario ...
//
// Scenario lines carry exp::to_spec_string forms in sweep order; spec
// strings round-trip doubles exactly, so re-deriving the cell plan from a
// manifest reproduces the worker's plan bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "reissue/core/run_result.hpp"
#include "reissue/dist/shard.hpp"

namespace reissue::dist {

struct Manifest {
  ShardRef shard;
  CellRange cells;               ///< Canonical cell index range [begin, end).
  std::size_t total_cells = 0;   ///< Cells in the whole sweep.
  std::size_t replications = 0;  ///< Replications per cell.
  std::uint64_t seed = 0;        ///< Root seed of the whole sweep.
  double percentile = 0.0;       ///< Sweep-wide override (0 = per-scenario).
  core::LogMode log_mode = core::LogMode::kStreamingUnordered;
  std::size_t rows = 0;          ///< Data rows in the raw CSV.
  std::uint64_t hash = 0;        ///< fnv1a64 of the raw CSV file bytes.
  /// exp::to_spec_string of every sweep scenario, in sweep order.  The
  /// canonical form carries every workload token (faults=, fanout=, ...),
  /// so shards from sweeps differing only in, say, fan-out shape identify
  /// as different sweeps and refuse to merge.
  std::vector<std::string> scenarios;

  friend bool operator==(const Manifest&, const Manifest&) = default;
};

[[nodiscard]] std::string to_string(core::LogMode mode);
[[nodiscard]] core::LogMode log_mode_from_string(std::string_view token);

/// The text form documented above (inverse of parse_manifest).
[[nodiscard]] std::string to_text(const Manifest& manifest);

/// Parses the text form.  Throws std::runtime_error with a one-line
/// diagnostic naming the malformed line.
[[nodiscard]] Manifest parse_manifest(std::string_view text);

/// Hash of everything that identifies the shard's slice of the sweep
/// (shard, cell range, specs, seed, replications, percentile, log mode) --
/// rows and content hash excluded.  Journals are stamped with this so a
/// resumed worker refuses checkpoints from a different sweep or shard.
[[nodiscard]] std::uint64_t shard_fingerprint(const Manifest& manifest);

/// Conventional manifest path for a raw shard CSV ("FILE.manifest").
[[nodiscard]] std::string manifest_path(const std::string& raw_path);

}  // namespace reissue::dist
