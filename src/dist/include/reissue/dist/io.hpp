// Small file and hashing utilities shared by the distributed-sweep layer:
// whole-file reads, atomic writes (temp file + rename, so an interrupted
// worker or merge never leaves a truncated CSV behind), and the FNV-1a
// content hash that shard manifests pin their raw files with.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace reissue::dist {

/// FNV-1a 64-bit over raw bytes: stable across platforms, cheap enough to
/// hash multi-megabyte shard files at merge time.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Lower-case 16-digit hex form of a 64-bit value (manifest hash lines,
/// journal fingerprints -- the two must format identically).
[[nodiscard]] std::string hex64(std::uint64_t value);

/// Reads a whole file as bytes.  Throws std::runtime_error naming the path
/// on open/read failure.
[[nodiscard]] std::string read_file(const std::string& path);

/// Writes `contents` to `path` atomically: the bytes land in `path + ".tmp"`
/// first and are renamed over `path` only after a clean close, so readers
/// never observe a truncated file.  Throws std::runtime_error naming the
/// path on failure (the temp file is removed).
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace reissue::dist
