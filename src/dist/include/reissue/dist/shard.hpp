// Deterministic shard planner for distributed sweeps.
//
// A sweep's cells (exp::enumerate_cells order: scenario-major, then
// policy-major) form index space [0, C).  Shard i of N owns the contiguous
// range [floor(i*C/N), floor((i+1)*C/N)): ranges are disjoint, cover every
// cell, never differ in size by more than one, and depend only on (C, N) --
// so any machine that knows the sweep spec computes the same plan, and the
// merge coordinator can verify a shard's claimed range without trusting it.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace reissue::dist {

/// "i/N": this worker runs shard index i of N total shards.
struct ShardRef {
  std::size_t index = 0;
  std::size_t count = 1;

  friend bool operator==(const ShardRef&, const ShardRef&) = default;
};

/// Canonical "i/N" form (inverse of parse_shard).
[[nodiscard]] std::string to_string(const ShardRef& shard);

/// Parses "i/N" with 0 <= i < N, N >= 1.  Throws std::runtime_error with a
/// one-line diagnostic on malformed input.
[[nodiscard]] ShardRef parse_shard(std::string_view token);

/// Half-open cell index range [begin, end) owned by a shard.
struct CellRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  friend bool operator==(const CellRange&, const CellRange&) = default;
};

/// The contiguous slice of [0, total_cells) owned by `shard`.  Empty when
/// there are fewer cells than shards and this shard drew no cell.  Throws
/// std::invalid_argument on an invalid shard (index >= count or count 0).
[[nodiscard]] CellRange shard_cell_range(std::size_t total_cells,
                                         const ShardRef& shard);

}  // namespace reissue::dist
