#include "reissue/dist/manifest.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "reissue/dist/io.hpp"

namespace reissue::dist {

namespace {

constexpr std::string_view kMagic = "reissue-shard-manifest v1";

std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

[[noreturn]] void bad_line(std::string_view what, std::string_view line) {
  throw std::runtime_error("manifest: expected '" + std::string(what) +
                           "', got '" + std::string(line) + "'");
}

/// Consumes the next line; empty iterator position throws.
class LineReader {
 public:
  explicit LineReader(std::string_view text) : rest_(text) {}

  [[nodiscard]] bool done() const noexcept { return rest_.empty(); }

  std::string_view next(std::string_view what) {
    if (rest_.empty()) {
      throw std::runtime_error("manifest: missing '" + std::string(what) +
                               "' line");
    }
    const auto pos = rest_.find('\n');
    std::string_view line;
    if (pos == std::string_view::npos) {
      line = rest_;
      rest_ = {};
    } else {
      line = rest_.substr(0, pos);
      rest_.remove_prefix(pos + 1);
    }
    return line;
  }

 private:
  std::string_view rest_;
};

/// Value part of "key value", enforcing the key.
std::string_view keyed(std::string_view key, std::string_view line) {
  if (line.size() <= key.size() || line.substr(0, key.size()) != key ||
      line[key.size()] != ' ') {
    bad_line(key, line);
  }
  return line.substr(key.size() + 1);
}

std::uint64_t parse_u64(std::string_view what, std::string_view token,
                        int base = 10) {
  std::uint64_t value = 0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, base);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error("manifest: " + std::string(what) +
                             ": not a number: '" + std::string(token) + "'");
  }
  return value;
}

double parse_num(std::string_view what, std::string_view token) {
  double value = 0.0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error("manifest: " + std::string(what) +
                             ": not a number: '" + std::string(token) + "'");
  }
  return value;
}

}  // namespace

std::string to_string(core::LogMode mode) {
  switch (mode) {
    case core::LogMode::kFull:
      return "full";
    case core::LogMode::kStreaming:
      return "streaming";
    case core::LogMode::kStreamingUnordered:
      return "completion";
  }
  throw std::logic_error("manifest: unknown log mode");
}

core::LogMode log_mode_from_string(std::string_view token) {
  if (token == "full") return core::LogMode::kFull;
  if (token == "streaming") return core::LogMode::kStreaming;
  if (token == "completion") return core::LogMode::kStreamingUnordered;
  throw std::runtime_error("manifest: log-mode must be full|streaming|"
                           "completion (got '" + std::string(token) + "')");
}

std::string to_text(const Manifest& manifest) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "shard " << to_string(manifest.shard) << "\n";
  os << "cells " << manifest.cells.begin << " " << manifest.cells.end << "\n";
  os << "total-cells " << manifest.total_cells << "\n";
  os << "replications " << manifest.replications << "\n";
  os << "seed " << manifest.seed << "\n";
  os << "percentile " << fmt(manifest.percentile) << "\n";
  os << "log-mode " << to_string(manifest.log_mode) << "\n";
  os << "rows " << manifest.rows << "\n";
  os << "hash " << hex64(manifest.hash) << "\n";
  for (const auto& scenario : manifest.scenarios) {
    os << "scenario " << scenario << "\n";
  }
  return os.str();
}

Manifest parse_manifest(std::string_view text) {
  LineReader lines(text);
  if (lines.next(kMagic) != kMagic) {
    throw std::runtime_error("manifest: missing '" + std::string(kMagic) +
                             "' header");
  }
  Manifest manifest;
  manifest.shard = parse_shard(keyed("shard", lines.next("shard")));

  {
    const std::string_view value = keyed("cells", lines.next("cells"));
    const auto space = value.find(' ');
    if (space == std::string_view::npos) bad_line("cells <begin> <end>", value);
    manifest.cells.begin = static_cast<std::size_t>(
        parse_u64("cells begin", value.substr(0, space)));
    manifest.cells.end = static_cast<std::size_t>(
        parse_u64("cells end", value.substr(space + 1)));
    if (manifest.cells.end < manifest.cells.begin) {
      throw std::runtime_error("manifest: cells end before begin");
    }
  }
  manifest.total_cells = static_cast<std::size_t>(
      parse_u64("total-cells", keyed("total-cells", lines.next("total-cells"))));
  manifest.replications = static_cast<std::size_t>(parse_u64(
      "replications", keyed("replications", lines.next("replications"))));
  manifest.seed = parse_u64("seed", keyed("seed", lines.next("seed")));
  manifest.percentile =
      parse_num("percentile", keyed("percentile", lines.next("percentile")));
  manifest.log_mode =
      log_mode_from_string(keyed("log-mode", lines.next("log-mode")));
  manifest.rows = static_cast<std::size_t>(
      parse_u64("rows", keyed("rows", lines.next("rows"))));
  {
    const std::string_view value = keyed("hash", lines.next("hash"));
    if (value.size() != 16) {
      throw std::runtime_error("manifest: hash must be 16 hex digits");
    }
    manifest.hash = parse_u64("hash", value, 16);
  }
  while (!lines.done()) {
    const std::string_view line = lines.next("scenario");
    if (line.empty()) continue;  // tolerate a trailing newline
    manifest.scenarios.emplace_back(keyed("scenario", line));
  }
  if (manifest.scenarios.empty()) {
    throw std::runtime_error("manifest: no scenario lines");
  }
  return manifest;
}

std::uint64_t shard_fingerprint(const Manifest& manifest) {
  Manifest identity = manifest;
  identity.rows = 0;
  identity.hash = 0;
  return fnv1a64(to_text(identity));
}

std::string manifest_path(const std::string& raw_path) {
  return raw_path + ".manifest";
}

}  // namespace reissue::dist
