// Named scenarios and catalogs (named scenario groups) for the experiment
// engine.  The built-in registry covers every workload the repo can
// simulate -- the §5.1 Independent/Correlated/Queueing models, the §6
// Redis-like and Lucene-like substrates -- plus regimes the paper's
// robustness discussion motivates but the seed repo could not express:
// overload, bursty arrival phases, heterogeneous (straggler) fleets and
// background interference.  Sweep entry points resolve a comma-separated
// list of scenario names, catalog names, or inline "name=... kind=..."
// spec strings.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "reissue/exp/scenario.hpp"

namespace reissue::exp {

class ScenarioRegistry {
 public:
  /// Registers a scenario.  Throws std::runtime_error on duplicate names
  /// or invalid specs.
  void add(ScenarioSpec spec);

  /// Registers a catalog.  Every member must already be registered.
  void add_catalog(std::string name, std::vector<std::string> members);

  [[nodiscard]] const ScenarioSpec* find(std::string_view name) const;

  /// Resolves a comma-separated list of scenario names, catalog names or
  /// inline spec strings (anything containing '=') into specs, in order.
  /// Throws std::runtime_error naming any unknown entry.
  [[nodiscard]] std::vector<ScenarioSpec> resolve(std::string_view list) const;

  [[nodiscard]] const std::vector<ScenarioSpec>& scenarios() const noexcept {
    return scenarios_;
  }
  struct Catalog {
    std::string name;
    std::vector<std::string> members;
  };
  [[nodiscard]] const std::vector<Catalog>& catalogs() const noexcept {
    return catalogs_;
  }

  /// The built-in catalog described above (constructed once, immutable).
  [[nodiscard]] static const ScenarioRegistry& built_in();

 private:
  std::vector<ScenarioSpec> scenarios_;
  std::vector<Catalog> catalogs_;
};

}  // namespace reissue::exp
