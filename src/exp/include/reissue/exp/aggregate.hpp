// Across-replication aggregation of sweep cells: mean tail with a Student-t
// 95% confidence interval (stats::summary), the streaming P² tail estimate
// for comparison, and the secondary metrics the paper's figures plot.
// Streams to CSV; numbers are printed in shortest round-trip form, so two
// sweeps with identical cell metrics produce byte-identical CSV no matter
// the thread count.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "reissue/exp/runner.hpp"
#include "reissue/stats/summary.hpp"

namespace reissue::exp {

struct CellStats {
  std::string scenario;
  std::string policy;
  double percentile = 0.0;
  std::size_t replications = 0;

  /// Mean of per-replication exact tails, with a 95% CI half-width.
  stats::MeanInterval tail;
  double tail_stddev = 0.0;
  /// Mean of the per-replication P² streaming estimates of the same tail.
  double tail_psquare = 0.0;

  double mean_latency = 0.0;
  double reissue_rate = 0.0;
  double remediation = 0.0;
  double utilization = 0.0;
  double outstanding_at_delay = 0.0;

  /// Resolved policy parameters (d, q) over replications, each a mean with
  /// a 95% CI half-width — the spread of what the tuned/optimal specs
  /// actually chose per replication.  Single-stage resolved policies
  /// contribute; cells without any stay zero.
  stats::MeanInterval delay;
  stats::MeanInterval probability;
};

[[nodiscard]] CellStats aggregate_cell(const CellResult& cell);
[[nodiscard]] std::vector<CellStats> aggregate(
    const std::vector<CellResult>& cells);

/// CSV column names, in row order.
[[nodiscard]] std::string csv_header();

/// One CSV row (no trailing newline handling: callers stream rows).
[[nodiscard]] std::string csv_row(const CellStats& stats);

/// Header plus one row per cell, each '\n'-terminated.
void write_csv(std::ostream& os, const std::vector<CellStats>& cells);

// --------------------------------------------------------------- raw CSV
//
// Replication-level rows, the wire format of distributed sweeps
// (src/dist): one row per (cell, replication) with every
// ReplicationMetrics field in shortest round-trip decimal form, so
// write -> parse -> aggregate is bit-identical to aggregating in memory.
// The resolved policy travels as its fixed PolicySpec token ("none",
// "r:30:0.5", "multi:..."), which round-trips doubles exactly; the
// trailing delay/probability columns surface the chosen (d, q) of
// single-stage resolved policies (0 otherwise) and must agree with the
// token — the parser rejects rows where they diverge.

/// Raw CSV column names, in row order.
[[nodiscard]] std::string raw_csv_header();

/// One raw row for `cell.replications[replication]`.  `cell_index` is the
/// cell's position in the sweep's canonical plan (exp::enumerate_cells).
[[nodiscard]] std::string raw_csv_row(const CellResult& cell,
                                      std::size_t cell_index,
                                      std::size_t replication);

/// Header plus one row per (cell, replication), '\n'-terminated, cells at
/// canonical indices first_cell_index, first_cell_index + 1, ...
void write_raw_csv(std::ostream& os, const std::vector<CellResult>& cells,
                   std::size_t first_cell_index = 0);

/// One parsed raw CSV row.
struct RawRow {
  std::size_t cell = 0;         ///< Canonical cell index in the sweep plan.
  std::size_t replication = 0;  ///< Replication index within the cell.
  std::string scenario;
  std::string policy;  ///< Canonical PolicySpec token of the cell.
  double percentile = 0.0;
  ReplicationMetrics metrics;
};

/// Parses one raw data row.  Throws std::runtime_error naming the column
/// on malformed input (wrong field count, bad numbers, bad policy token).
[[nodiscard]] RawRow parse_raw_csv_row(std::string_view line);

/// Parses a whole raw CSV stream: the exact raw_csv_header() line followed
/// by data rows.  Throws std::runtime_error naming the line number.
[[nodiscard]] std::vector<RawRow> parse_raw_csv(std::istream& is);

/// Reassembles rows (any order) into canonical CellResults: cell indices
/// must be contiguous from the smallest, and every cell must hold
/// replications 0..replications-1 exactly once with consistent metadata.
/// Throws std::runtime_error naming the offending cell otherwise.
[[nodiscard]] std::vector<CellResult> cells_from_raw_rows(
    const std::vector<RawRow>& rows, std::size_t replications);

}  // namespace reissue::exp
