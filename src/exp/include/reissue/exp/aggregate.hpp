// Across-replication aggregation of sweep cells: mean tail with a Student-t
// 95% confidence interval (stats::summary), the streaming P² tail estimate
// for comparison, and the secondary metrics the paper's figures plot.
// Streams to CSV; numbers are printed in shortest round-trip form, so two
// sweeps with identical cell metrics produce byte-identical CSV no matter
// the thread count.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "reissue/exp/runner.hpp"
#include "reissue/stats/summary.hpp"

namespace reissue::exp {

struct CellStats {
  std::string scenario;
  std::string policy;
  double percentile = 0.0;
  std::size_t replications = 0;

  /// Mean of per-replication exact tails, with a 95% CI half-width.
  stats::MeanInterval tail;
  double tail_stddev = 0.0;
  /// Mean of the per-replication P² streaming estimates of the same tail.
  double tail_psquare = 0.0;

  double mean_latency = 0.0;
  double reissue_rate = 0.0;
  double remediation = 0.0;
  double utilization = 0.0;
  double outstanding_at_delay = 0.0;

  /// Mean resolved policy parameters over replications (meaningful for
  /// single-stage policies, e.g. tuned ones; 0 otherwise).
  double mean_delay = 0.0;
  double mean_probability = 0.0;
};

[[nodiscard]] CellStats aggregate_cell(const CellResult& cell);
[[nodiscard]] std::vector<CellStats> aggregate(
    const std::vector<CellResult>& cells);

/// CSV column names, in row order.
[[nodiscard]] std::string csv_header();

/// One CSV row (no trailing newline handling: callers stream rows).
[[nodiscard]] std::string csv_row(const CellStats& stats);

/// Header plus one row per cell, each '\n'-terminated.
void write_csv(std::ostream& os, const std::vector<CellStats>& cells);

}  // namespace reissue::exp
