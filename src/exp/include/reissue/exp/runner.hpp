// Parallel replicated experiment runner.
//
// A sweep is the cross product Scenario × Policy ("cells") × Replication.
// Tasks fan across a fixed pool of worker threads; every replication's
// result is a pure function of (scenario spec, policy spec, derived seed),
// and each task writes only its own preallocated slot, so sweep output is
// bit-identical for any thread count and any execution order.
//
// Scheduling granularity: when the sweep has at least as many cells as
// worker threads (the common case), each task is a whole cell and its R
// replications run back-to-back on one worker — every run after the first
// reuses the worker's cached system, its warm simulation scratch and its
// warm server pool, so per-run setup amortizes across the cell.  Small
// sweeps fall back to one-task-per-replication to keep every thread busy.
// The granularity is unobservable in the output (each replication is a
// pure function of its seed).
//
// Seed derivation (SplitMix64 substreams of stats::rng):
//   construction seed = substream(root, scenario name)        -- shared by
//     every replication, so expensive substrates (Redis/Lucene traces) are
//     fixed across replications and reusable across cells;
//   replication seed  = substream(root, scenario name, rep#)  -- applied
//     via SystemUnderTest::reseed before each run.  All policies of a cell
//     share the replication seed: common random numbers, the variance-
//     reduction the cluster's seed contract was designed for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "reissue/exp/scenario.hpp"

namespace reissue::sim {
class SimObserver;   // passive per-event hooks (sim/sim_observer.hpp)
struct RunCounters;  // whole-run counters (sim/sim_observer.hpp)
}
namespace reissue::obs {
class PhaseTimers;  // wall-clock phase accumulators (obs/counters.hpp)
}

namespace reissue::exp {

struct CellResult;  // defined below

struct SweepOptions {
  /// Independent replications per cell (>= 1).
  std::size_t replications = 8;
  /// Worker threads; 0 = hardware concurrency.  Output is identical for
  /// every value.
  std::size_t threads = 1;
  /// Root seed of the whole sweep.
  std::uint64_t seed = 0x5eed;
  /// When > 0, overrides every scenario's reporting percentile.
  double percentile = 0.0;
  /// How each replication's measurement run observes the system.
  /// kStreamingUnordered (the default) feeds latencies straight into the
  /// streaming accumulators — stats::TailSummary histogram tail (<= 0.1%
  /// relative error) and the P² sketch — in completion order, from inside
  /// the simulator's event loop, skipping the end-of-run replay pass
  /// entirely; this is what makes 10^6-query deep-tail cells affordable.
  /// kStreaming is the replay-order reference: the same accumulators fed
  /// in query-id order (its histogram tail, counts and rates are
  /// bit-identical to kStreamingUnordered; only the order-sensitive P²
  /// column and the FP-summation mean differ, deterministically).  kFull
  /// keeps the exact sorted-log percentiles.  Tuned policy specs always
  /// tune on full logs (the optimizer needs the X/Y distributions); the
  /// mode only selects how the final measurement run is observed.  Every
  /// mode is bit-identical across thread counts and shard splits.
  core::LogMode log_mode = core::LogMode::kStreamingUnordered;
  /// Optional passive observer installed on every sim::Cluster the sweep
  /// constructs (non-Cluster systems are left unobserved).  Hooks fire
  /// from worker threads, so with threads > 1 the observer must be
  /// thread-safe (obs::CountingObserver is; the trace/time-series
  /// observers are not and require threads == 1).  Observation never
  /// changes sweep output: results stay byte-identical.
  sim::SimObserver* sim_observer = nullptr;
  /// Optional wall-clock phase accumulators (train/optimize/evaluate per
  /// replication).  Thread-safe by contract (obs::PhaseTimers is).
  obs::PhaseTimers* timers = nullptr;
  /// Optional progress callback fired as each cell finishes its last
  /// replication: (cells_done, cells_total).  Called from worker threads;
  /// must be thread-safe and cheap.
  std::function<void(std::size_t, std::size_t)> on_cell_done;
  /// Optional per-cell introspection: fired once per cell, after its last
  /// replication, with the completed CellResult and the sim::RunCounters
  /// accumulated over every run the cell performed (training runs of
  /// tuned/optimal:* specs included) plus the run count.  Setting this
  /// forces cell-granular scheduling (all replications of a cell on one
  /// worker) so the counters can be attributed per cell; sweep output is
  /// byte-identical either way.  Counters are all-zero for non-Cluster
  /// systems and under -DREISSUE_OBS=OFF.  Called from worker threads;
  /// must be thread-safe.
  std::function<void(const CellResult&, const sim::RunCounters&,
                     std::uint64_t runs)>
      on_cell_stats;
};

/// Metrics of one replication of one cell.
struct ReplicationMetrics {
  std::uint64_t seed = 0;
  /// Exact (sorted) percentile of the end-to-end latency log.
  double tail = 0.0;
  /// P² streaming estimate of the same percentile (what a live deployment
  /// would observe without keeping the log).
  double tail_psquare = 0.0;
  double mean_latency = 0.0;
  double reissue_rate = 0.0;
  /// Remediation rate at the achieved tail (paper Fig. 3b).
  double remediation = 0.0;
  double utilization = 0.0;
  /// Fraction of primaries still outstanding at the policy delay
  /// (single-stage policies; 0 otherwise).
  double outstanding_at_delay = 0.0;
  /// The policy actually evaluated (tuned specs resolve per replication).
  core::ReissuePolicy policy = core::ReissuePolicy::none();
};

/// One Scenario × Policy cell with all its replications (index = rep#).
struct CellResult {
  std::string scenario;
  std::string policy;  // canonical PolicySpec token
  double percentile = 0.0;
  std::vector<ReplicationMetrics> replications;
};

/// Seed substream for (root, scenario, replication).  Exposed so tests can
/// assert schedule independence.
[[nodiscard]] std::uint64_t replication_seed(std::uint64_t root,
                                             std::string_view scenario,
                                             std::size_t replication);

/// Seed the scenario's system is *constructed* with: shared by every
/// replication (and every shard of a distributed sweep), so expensive
/// substrates are identical no matter where a cell runs.
[[nodiscard]] std::uint64_t construction_seed(std::uint64_t root,
                                              std::string_view scenario);

/// Seed of an optimal:* policy's training run, derived from the
/// replication seed: the optimizer trains on its own substream and the
/// measured run happens on `replication` itself, so optimization is
/// out-of-sample and the measured phase still shares the cell's common
/// random numbers with every other policy.  Exposed so tests can pin the
/// chosen (d, q) per seed.
[[nodiscard]] std::uint64_t training_seed(std::uint64_t replication);

/// One Scenario × Policy cell of a sweep's canonical plan.  Cell index ==
/// position in the enumerate_cells vector; shards of a distributed sweep
/// partition that index space, so the plan is the contract that keeps a
/// merged sweep byte-identical to a local one.
struct CellRef {
  std::size_t scenario = 0;  ///< Index into the sweep's scenario list.
  std::size_t policy = 0;    ///< Index into that scenario's policy grid.
  /// Resolved reporting percentile (options.percentile override applied).
  double percentile = 0.0;

  friend bool operator==(const CellRef&, const CellRef&) = default;
};

/// Enumerates the sweep's cells in canonical order: scenario-major, then
/// policy-major, exactly the order run_sweep produces results in.  Also
/// performs run_sweep's input validation (replications >= 1, non-empty
/// policy grids, unique scenario names) so shard planners fail the same
/// way the local runner would.
[[nodiscard]] std::vector<CellRef> enumerate_cells(
    const std::vector<ScenarioSpec>& scenarios, const SweepOptions& options);

/// One replication of one cell: resolves `spec` (tuning on the system if
/// the spec asks for it; optimal:* specs run a training phase on
/// training_seed(seed) and reseed back to `seed` before measuring),
/// measures the resolved policy at percentile `k` under `mode`, and
/// summarizes.  The engine's unit of work — public so benches and tests
/// can measure it in isolation.  The system must already be reseeded to
/// `seed` (recorded in the metrics verbatim).  `timers`, when non-null,
/// accumulates wall-clock "train"/"optimize"/"evaluate" phases.
[[nodiscard]] ReplicationMetrics run_cell_replication(
    core::SystemUnderTest& system, const PolicySpec& spec, double k,
    std::uint64_t seed, core::LogMode mode = core::LogMode::kStreaming,
    obs::PhaseTimers* timers = nullptr);

/// Runs the full sweep.  Cells are ordered scenario-major then
/// policy-major, exactly as declared.  Throws if any scenario has an empty
/// policy grid or a system that does not support reseeding; exceptions
/// from workers propagate after all workers stop.
[[nodiscard]] std::vector<CellResult> run_sweep(
    const std::vector<ScenarioSpec>& scenarios, const SweepOptions& options);

}  // namespace reissue::exp
