// Declarative experiment scenarios for the parallel experiment engine.
//
// A ScenarioSpec names a workload (every builder in src/sim plus the
// Redis-like / Lucene-like substrates of src/systems, plus regimes the
// seed repo could not express: overload, bursty arrival phases,
// heterogeneous server fleets, background interference), the knobs the
// paper sweeps (utilization, service-time correlation, load balancer,
// queue discipline, service distribution) and the policy grid to evaluate
// on it.  Specs round-trip through a compact single-line string form --
// whitespace-separated key=value tokens -- so scenarios can live in shell
// commands, CSV columns and registry catalogs:
//
//   name=queueing-u50 kind=queueing util=0.5 ratio=0.5 servers=10
//   queries=16000 warmup=1600 lb=random queue=fifo service=pareto:1.1:2
//   cap=5000 percentile=0.99 policy=none policy=r:30:0.5 policy=tuned-r:0.05
//
// make_system() turns a spec into a core::SystemUnderTest whose
// construction is deterministic in (spec, seed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "reissue/core/policy.hpp"
#include "reissue/core/run_result.hpp"
#include "reissue/sim/load_balancer.hpp"
#include "reissue/sim/queue_discipline.hpp"
#include "reissue/stats/distributions.hpp"

namespace reissue::exp {

/// One point of a scenario's policy grid: a fixed policy, a policy tuned
/// on the scenario itself (the paper's §4.3 loop) toward a reissue budget,
/// or an optimizer-in-the-loop policy (the §4.1/§4.2 data-driven search,
/// trained per replication on the scenario's own observed latency samples
/// and then measured — the paper's train → optimize → evaluate pipeline).
/// String forms:
///   none | immediate[:copies] | d:<delay> | r:<delay>:<prob>
///   | multi:d1:q1[:d2:q2...] | tuned-r:<budget>[:trials]
///   | tuned-d:<budget>[:trials] | optimal:<budget>[:corr][:train=N]
///   | optimal-d:<budget>[:train=N]
/// `corr` selects the §4.2 correlation-aware optimizer; `train=N` caps the
/// training phase's sample count (default: every training observation).
struct PolicySpec {
  enum class Kind {
    kFixed,
    kTunedSingleR,
    kTunedSingleD,
    kOptimalSingleR,
    kOptimalSingleD,
  };

  Kind kind = Kind::kFixed;
  core::ReissuePolicy fixed = core::ReissuePolicy::none();
  double budget = 0.0;      // tuned/optimal kinds only
  int trials = 6;           // tuned kinds only
  bool correlated = false;  // optimal single-r only: §4.2 variant
  std::size_t train = 0;    // optimal kinds: training-sample cap (0 = all)

  [[nodiscard]] static PolicySpec fixed_policy(core::ReissuePolicy policy);
  [[nodiscard]] static PolicySpec tuned_single_r(double budget, int trials = 6);
  [[nodiscard]] static PolicySpec tuned_single_d(double budget, int trials = 6);
  [[nodiscard]] static PolicySpec optimal_single_r(double budget,
                                                   bool correlated = false,
                                                   std::size_t train = 0);
  [[nodiscard]] static PolicySpec optimal_single_d(double budget,
                                                   std::size_t train = 0);

  friend bool operator==(const PolicySpec&, const PolicySpec&) = default;
};

/// Canonical token form (inverse of parse_policy_spec; doubles keep full
/// precision so the round trip is exact).
[[nodiscard]] std::string to_string(const PolicySpec& spec);

/// Parses a policy token.  Throws std::runtime_error with a one-line
/// diagnostic on malformed input.
[[nodiscard]] PolicySpec parse_policy_spec(std::string_view token);

/// Which substrate executes the scenario.
enum class WorkloadKind {
  kIndependent,  // §5.1: iid service times, infinite servers
  kCorrelated,   // §5.1: Y = r·x + Z, infinite servers
  kQueueing,     // §5.1/§5.4: finite servers behind a load balancer
  kRedis,        // §6.2 Redis-like substrate trace replay
  kLucene,       // §6.3 Lucene-like substrate trace replay
};

[[nodiscard]] std::string to_string(WorkloadKind kind);
[[nodiscard]] WorkloadKind workload_kind_from_string(std::string_view name);

/// One arrival-rate phase of a bursty workload (duration in simulated time
/// units, multiplier applied to the base arrival rate; phases cycle).
struct BurstPhase {
  double duration = 0.0;
  double multiplier = 1.0;

  friend bool operator==(const BurstPhase&, const BurstPhase&) = default;
};

/// Seeded fault plan of a scenario (queueing kind only); maps onto
/// sim::ClusterConfig::FaultPlan with lognormal episode durations
/// (log-sigma 0.6, the interference shape).  Spec-string grammar —
/// '+'-joined family clauses with comma-separated arguments:
///
///   faults=slowdown:<rate>,<factor>,<mean-duration>
///   faults=corr:<k>,<rate>,<mean-duration>[,<factor>]   (factor default 2)
///   faults=crash:<mtbf>,<mttr>
///   faults=slowdown:0.002,4,25+crash:4000,150
///
/// Rates are per-server Poisson onset rates (corr episodes are
/// cluster-wide and hit k random servers each); mtbf counts from the
/// previous recovery; mttr is the mean downtime.
struct FaultSpec {
  double slowdown_rate = 0.0;
  double slowdown_factor = 1.0;
  double slowdown_mean = 0.0;
  std::size_t degrade_servers = 0;
  double degrade_rate = 0.0;
  double degrade_factor = 1.0;
  double degrade_mean = 0.0;
  double crash_mtbf = 0.0;
  double crash_mttr = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return slowdown_rate > 0.0 || degrade_rate > 0.0 || crash_mtbf > 0.0;
  }

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// Canonical token form (inverse of parse_fault_spec; always emits every
/// clause argument, so the round trip is exact).
[[nodiscard]] std::string to_string(const FaultSpec& spec);

/// Parses the faults= grammar documented on FaultSpec.  Throws
/// std::runtime_error with a one-line diagnostic on malformed input.
[[nodiscard]] FaultSpec parse_fault_spec(std::string_view token);

/// Fork-join sibling-group fan-out of a scenario (queueing kind only);
/// maps onto sim::ClusterConfig::FanoutPlan.  Spec-string grammar:
///
///   fanout=<n>:<k>            n copies per query, k responses complete it
///   fanout=<n>:<k>:spread     copies placed on n distinct servers
///   fanout=<n>:<k>:ec         spread + erasure-coded shards: each copy
///                             carries 1/k of the primary's service demand
///
/// n=1 (with k=1) is the degenerate group — identical to omitting the
/// key.  Reissue policies stack on top: stage copies join the same group
/// and count toward k.
struct FanoutSpec {
  enum class Mode : std::uint8_t { kIndependent, kSpread, kErasure };

  std::size_t copies = 1;   // n: group size including the primary
  std::size_t require = 1;  // k: responses that complete the query
  Mode mode = Mode::kIndependent;

  [[nodiscard]] bool active() const noexcept { return copies > 1; }

  friend bool operator==(const FanoutSpec&, const FanoutSpec&) = default;
};

/// Canonical token form (inverse of parse_fanout_spec; exact round trip).
[[nodiscard]] std::string to_string(const FanoutSpec& spec);

/// Parses the fanout= grammar documented on FanoutSpec.  Throws
/// std::runtime_error with a one-line diagnostic listing the valid forms
/// on malformed input (including k=0, k>n, n=0).
[[nodiscard]] FanoutSpec parse_fanout_spec(std::string_view token);

struct ScenarioSpec {
  std::string name;
  WorkloadKind kind = WorkloadKind::kQueueing;

  /// Target server utilization (finite-server kinds).
  double utilization = 0.30;
  /// Service-time correlation ratio r (0 = independent reissue draws).
  double ratio = 0.5;
  std::size_t servers = 10;
  std::size_t queries = 16000;
  std::size_t warmup = 1600;
  sim::LoadBalancerKind load_balancer = sim::LoadBalancerKind::kRandom;
  sim::QueueDisciplineKind queue = sim::QueueDisciplineKind::kFifo;

  /// Service-time distribution, e.g. "pareto:1.1:2", "lognormal:1:1",
  /// "exp:0.1", "weibull:0.5:10", "uniform:1:9", "constant:5" — or
  /// "trace:<file>" (queueing kind only) to replay a measured service-time
  /// log (core::policy_io latency-log format, one value per line) through
  /// sim::make_trace_service: query i costs trace[i mod n], and reissue
  /// copies repeat their primary's cost, so production logs sweep exactly
  /// like synthetic distributions.  "trace:<file>:resample" draws service
  /// times i.i.d. from the trace's empirical CDF instead of replaying in
  /// order (reissue copies still repeat their primary).  Ignored by the
  /// redis/lucene kinds (their traces come from executed engine work).
  std::string service = "pareto:1.1:2";
  /// Truncation cap on service draws (0 = uncapped).
  double service_cap = 5000.0;

  /// Background interference: per-server episode rate and mean episode
  /// length (lognormal episodes, log-sigma 0.6).  rate 0 disables.
  double interference_rate = 0.0;
  double interference_mean = 0.0;

  /// Bursty arrival phases (empty = constant rate).
  std::vector<BurstPhase> phases;

  /// Arrival-process override (queueing kind only; empty = Poisson at the
  /// util-derived rate).  "diurnal:<period>:<amplitude>[:<steps>]" bends
  /// the rate along a sinusoidal day curve — `steps` (default 8, >= 2)
  /// piecewise-constant phases per period, multiplier
  /// 1 + amplitude*sin(2*pi*(i+0.5)/steps), amplitude in (0,1).
  /// "trace:<file>" replays recorded arrival timestamps (one non-negative,
  /// non-decreasing value per line; cycled with the trace's extrapolated
  /// span when shorter than `queries`) — combined with service=trace:<file>
  /// this replays a recorded incident's (arrival, service) pairs exactly.
  /// Incompatible with phases=; trace arrivals also replace util.
  std::string arrival;

  /// Seeded fault injection (queueing kind only; empty plan = fault-free).
  FaultSpec faults;

  /// Fork-join k-of-n fan-out (queueing kind only; default = no fan-out).
  FanoutSpec fanout;

  /// Heterogeneous fleets: per-server service-time multipliers (empty =
  /// homogeneous; size must equal `servers`).
  std::vector<double> server_speeds;

  /// Tail percentile this scenario reports, in (0, 1).
  double percentile = 0.99;

  /// The policy grid evaluated on this scenario.
  std::vector<PolicySpec> policies;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Canonical single-line form; parse_scenario() inverts it exactly.
[[nodiscard]] std::string to_spec_string(const ScenarioSpec& spec);

/// Parses the key=value form documented above.  Unknown keys, bad numbers,
/// inconsistent fields, and keys the workload kind would silently ignore
/// (e.g. util= for the infinite-server kinds, service= for redis/lucene)
/// produce std::runtime_error with a one-line diagnostic naming the
/// offending token.
[[nodiscard]] ScenarioSpec parse_scenario(std::string_view text);

/// Parses a distribution token ("pareto:1.1:2", ...).  Shared with tests.
[[nodiscard]] stats::DistributionPtr parse_distribution(std::string_view token);

/// Loads the service-time log behind a "trace:<file>" service source: the
/// core::policy_io latency-log format (one non-negative double per line,
/// blank lines and '#' comments allowed).  Throws std::runtime_error
/// naming the path on I/O errors, malformed entries, or an empty log.
[[nodiscard]] std::vector<double> load_service_trace(const std::string& path);

/// Builds the scenario's system.  Construction is deterministic in
/// (spec, seed); the result supports SystemUnderTest::reseed, which the
/// runner uses to derive per-replication streams without rebuilding
/// expensive substrates (the Redis/Lucene traces are built once per
/// worker and shared across replications, common-random-numbers style).
[[nodiscard]] std::unique_ptr<core::SystemUnderTest> make_system(
    const ScenarioSpec& spec, std::uint64_t seed);

}  // namespace reissue::exp
