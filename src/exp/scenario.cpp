#include "reissue/exp/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "reissue/core/policy_io.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/service_model.hpp"
#include "reissue/sim/workloads.hpp"
#include "reissue/systems/bridge.hpp"

namespace reissue::exp {

namespace {

/// Shortest round-trip decimal form: "0.3" stays "0.3" and parses back to
/// the identical double, which is what makes spec round trips exact.
std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

double parse_num(std::string_view what, std::string_view token) {
  double value = 0.0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error(std::string(what) + ": not a number: '" +
                             std::string(token) + "'");
  }
  return value;
}

std::size_t parse_count(std::string_view what, std::string_view token) {
  std::size_t value = 0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error(std::string(what) + ": not a count: '" +
                             std::string(token) + "'");
  }
  return value;
}

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string lb_to_token(sim::LoadBalancerKind kind) {
  switch (kind) {
    case sim::LoadBalancerKind::kRandom: return "random";
    case sim::LoadBalancerKind::kRoundRobin: return "rr";
    case sim::LoadBalancerKind::kMinOfTwo: return "min2";
    case sim::LoadBalancerKind::kMinOfAll: return "minall";
  }
  throw std::logic_error("unreachable");
}

sim::LoadBalancerKind lb_from_token(std::string_view token) {
  if (token == "random") return sim::LoadBalancerKind::kRandom;
  if (token == "rr") return sim::LoadBalancerKind::kRoundRobin;
  if (token == "min2") return sim::LoadBalancerKind::kMinOfTwo;
  if (token == "minall") return sim::LoadBalancerKind::kMinOfAll;
  throw std::runtime_error("scenario spec: lb must be random|rr|min2|minall "
                           "(got '" + std::string(token) + "')");
}

std::string queue_to_token(sim::QueueDisciplineKind kind) {
  switch (kind) {
    case sim::QueueDisciplineKind::kFifo: return "fifo";
    case sim::QueueDisciplineKind::kPrioritizedFifo: return "prio-fifo";
    case sim::QueueDisciplineKind::kPrioritizedLifo: return "prio-lifo";
    case sim::QueueDisciplineKind::kRoundRobinConnections: return "rr-conn";
    case sim::QueueDisciplineKind::kConnectionBatch: return "conn-batch";
  }
  throw std::logic_error("unreachable");
}

sim::QueueDisciplineKind queue_from_token(std::string_view token) {
  if (token == "fifo") return sim::QueueDisciplineKind::kFifo;
  if (token == "prio-fifo") return sim::QueueDisciplineKind::kPrioritizedFifo;
  if (token == "prio-lifo") return sim::QueueDisciplineKind::kPrioritizedLifo;
  if (token == "rr-conn") {
    return sim::QueueDisciplineKind::kRoundRobinConnections;
  }
  if (token == "conn-batch") return sim::QueueDisciplineKind::kConnectionBatch;
  throw std::runtime_error(
      "scenario spec: queue must be fifo|prio-fifo|prio-lifo|rr-conn|"
      "conn-batch (got '" + std::string(token) + "')");
}

// Which spec knobs each workload kind actually consumes (make_system
// ignores the rest; the parser rejects them so a sweep over an ignored
// knob cannot silently produce identical "results" per point).
bool kind_has_finite_servers(WorkloadKind kind) {
  return kind != WorkloadKind::kIndependent &&
         kind != WorkloadKind::kCorrelated;
}
bool kind_has_ratio(WorkloadKind kind) {
  return kind == WorkloadKind::kCorrelated || kind == WorkloadKind::kQueueing;
}
bool kind_has_service(WorkloadKind kind) {
  return kind != WorkloadKind::kRedis && kind != WorkloadKind::kLucene;
}
bool kind_is_queueing(WorkloadKind kind) {
  return kind == WorkloadKind::kQueueing;
}

bool is_trace_service(std::string_view service) {
  return service.rfind("trace:", 0) == 0;
}

constexpr std::string_view kResampleSuffix = ":resample";

/// "trace:<file>:resample" draws i.i.d. from the trace instead of
/// replaying it in order.  The suffix is part of the service token, so a
/// path literally ending in ":resample" cannot be replayed -- acceptable
/// for a mode switch that keeps the spec single-line.
bool is_resample_trace(std::string_view service) {
  if (!is_trace_service(service)) return false;
  const std::string_view rest = service.substr(6);
  return rest.size() >= kResampleSuffix.size() &&
         rest.substr(rest.size() - kResampleSuffix.size()) == kResampleSuffix;
}

std::string_view trace_path(std::string_view service) {
  std::string_view rest = service.substr(6);  // after "trace:"
  if (is_resample_trace(service)) rest.remove_suffix(kResampleSuffix.size());
  return rest;
}

bool key_applies(const std::string& key, WorkloadKind kind) {
  if (key == "util" || key == "servers") return kind_has_finite_servers(kind);
  if (key == "ratio") return kind_has_ratio(kind);
  if (key == "service" || key == "cap") return kind_has_service(kind);
  if (key == "lb" || key == "queue" || key == "interference" ||
      key == "phases" || key == "speeds") {
    return kind_is_queueing(kind);
  }
  return true;
}

void validate(const ScenarioSpec& spec) {
  if (spec.name.empty()) {
    throw std::runtime_error("scenario spec: missing name");
  }
  if (spec.name.find(',') != std::string::npos) {
    throw std::runtime_error("scenario spec: name must not contain ','");
  }
  if (!(spec.percentile > 0.0 && spec.percentile < 1.0)) {
    throw std::runtime_error("scenario spec: percentile must be in (0,1)");
  }
  if (spec.queries == 0 || spec.warmup >= spec.queries) {
    throw std::runtime_error("scenario spec: need queries > warmup >= 0");
  }
  if (!spec.server_speeds.empty() &&
      spec.server_speeds.size() != spec.servers) {
    throw std::runtime_error(
        "scenario spec: speeds must list one multiplier per server");
  }
  if ((spec.interference_rate > 0.0) != (spec.interference_mean > 0.0)) {
    throw std::runtime_error(
        "scenario spec: interference needs both rate and mean > 0");
  }
  for (const auto& phase : spec.phases) {
    if (!(phase.duration > 0.0) || !(phase.multiplier > 0.0)) {
      throw std::runtime_error(
          "scenario spec: phases need positive duration and multiplier");
    }
  }
  if (is_trace_service(spec.service)) {
    if (trace_path(spec.service).empty()) {
      throw std::runtime_error("scenario spec: service=trace:<file> needs a "
                               "file path");
    }
    if (spec.kind != WorkloadKind::kQueueing) {
      throw std::runtime_error(
          "scenario spec: service=trace:<file> requires kind=queueing "
          "(got kind " + to_string(spec.kind) + ")");
    }
  }
}

}  // namespace

PolicySpec PolicySpec::fixed_policy(core::ReissuePolicy policy) {
  PolicySpec spec;
  spec.kind = Kind::kFixed;
  spec.fixed = std::move(policy);
  return spec;
}

PolicySpec PolicySpec::tuned_single_r(double budget, int trials) {
  PolicySpec spec;
  spec.kind = Kind::kTunedSingleR;
  spec.budget = budget;
  spec.trials = trials;
  return spec;
}

PolicySpec PolicySpec::tuned_single_d(double budget, int trials) {
  PolicySpec spec;
  spec.kind = Kind::kTunedSingleD;
  spec.budget = budget;
  spec.trials = trials;
  return spec;
}

PolicySpec PolicySpec::optimal_single_r(double budget, bool correlated,
                                        std::size_t train) {
  PolicySpec spec;
  spec.kind = Kind::kOptimalSingleR;
  spec.budget = budget;
  spec.correlated = correlated;
  spec.train = train;
  return spec;
}

PolicySpec PolicySpec::optimal_single_d(double budget, std::size_t train) {
  PolicySpec spec;
  spec.kind = Kind::kOptimalSingleD;
  spec.budget = budget;
  spec.train = train;
  return spec;
}

std::string to_string(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicySpec::Kind::kTunedSingleR:
      return "tuned-r:" + fmt(spec.budget) + ":" + std::to_string(spec.trials);
    case PolicySpec::Kind::kTunedSingleD:
      return "tuned-d:" + fmt(spec.budget) + ":" + std::to_string(spec.trials);
    case PolicySpec::Kind::kOptimalSingleR:
    case PolicySpec::Kind::kOptimalSingleD: {
      std::string out = spec.kind == PolicySpec::Kind::kOptimalSingleR
                            ? "optimal:"
                            : "optimal-d:";
      out += fmt(spec.budget);
      if (spec.correlated) out += ":corr";
      if (spec.train > 0) out += ":train=" + std::to_string(spec.train);
      return out;
    }
    case PolicySpec::Kind::kFixed:
      break;
  }
  const core::ReissuePolicy& policy = spec.fixed;
  switch (policy.family()) {
    case core::PolicyFamily::kNoReissue:
      return "none";
    case core::PolicyFamily::kImmediate:
      return "immediate:" + std::to_string(policy.stage_count());
    case core::PolicyFamily::kSingleD:
      return "d:" + fmt(policy.delay());
    case core::PolicyFamily::kSingleR:
      return "r:" + fmt(policy.delay()) + ":" + fmt(policy.probability());
    case core::PolicyFamily::kMultipleR: {
      std::string out = "multi";
      for (const auto& stage : policy.stages()) {
        out += ":" + fmt(stage.delay) + ":" + fmt(stage.probability);
      }
      return out;
    }
  }
  throw std::logic_error("unreachable");
}

PolicySpec parse_policy_spec(std::string_view token) {
  const auto parts = split(token, ':');
  const std::string_view head = parts[0];
  const std::size_t args = parts.size() - 1;
  const auto bad = [&](const char* expected) -> std::runtime_error {
    return std::runtime_error("policy spec '" + std::string(token) +
                              "': expected " + expected);
  };

  if (head == "none") {
    if (args != 0) throw bad("none (no arguments)");
    return PolicySpec::fixed_policy(core::ReissuePolicy::none());
  }
  if (head == "immediate") {
    if (args > 1) throw bad("immediate[:copies]");
    const std::size_t copies =
        args == 1 ? parse_count("policy spec copies", parts[1]) : 1;
    if (copies == 0) throw bad("immediate copies >= 1");
    return PolicySpec::fixed_policy(core::ReissuePolicy::immediate(copies));
  }
  if (head == "d") {
    if (args != 1) throw bad("d:<delay>");
    return PolicySpec::fixed_policy(
        core::ReissuePolicy::single_d(parse_num("policy spec delay", parts[1])));
  }
  if (head == "r") {
    if (args != 2) throw bad("r:<delay>:<prob>");
    return PolicySpec::fixed_policy(core::ReissuePolicy::single_r(
        parse_num("policy spec delay", parts[1]),
        parse_num("policy spec probability", parts[2])));
  }
  if (head == "multi") {
    if (args == 0 || args % 2 != 0) throw bad("multi:d1:q1[:d2:q2...]");
    std::vector<core::ReissueStage> stages;
    for (std::size_t i = 1; i < parts.size(); i += 2) {
      stages.push_back(
          core::ReissueStage{parse_num("policy spec delay", parts[i]),
                             parse_num("policy spec probability", parts[i + 1])});
    }
    return PolicySpec::fixed_policy(
        core::ReissuePolicy::multiple_r(std::move(stages)));
  }
  if (head == "tuned-r" || head == "tuned-d") {
    if (args < 1 || args > 2) throw bad("tuned-r:<budget>[:trials]");
    const double budget = parse_num("policy spec budget", parts[1]);
    const int trials =
        args == 2 ? static_cast<int>(parse_count("policy spec trials", parts[2]))
                  : 6;
    if (!(budget > 0.0)) throw bad("a positive budget");
    if (trials < 1) throw bad("trials >= 1");
    return head == "tuned-r" ? PolicySpec::tuned_single_r(budget, trials)
                             : PolicySpec::tuned_single_d(budget, trials);
  }
  if (head == "optimal" || head == "optimal-d") {
    const bool deadline = head == "optimal-d";
    const char* usage = deadline ? "optimal-d:<budget>[:train=N]"
                                 : "optimal:<budget>[:corr][:train=N]";
    if (args < 1) throw bad(usage);
    const double budget = parse_num("policy spec budget", parts[1]);
    // The budget is a reissue-rate fraction; anything outside (0, 1] would
    // only fail (or be clamped) mid-sweep, deep inside the optimizer.
    if (!(budget > 0.0 && budget <= 1.0)) throw bad("a budget in (0, 1]");
    bool correlated = false;
    std::size_t train = 0;
    for (std::size_t i = 2; i < parts.size(); ++i) {
      const std::string_view option = parts[i];
      if (option == "corr") {
        // Eq. (2)'s deadline policy depends only on the X distribution, so
        // a correlation flag on optimal-d would be silently ignored.
        if (deadline) throw bad("optimal-d without corr (Eq. (2) uses only X)");
        if (correlated) throw bad("corr at most once");
        correlated = true;
      } else if (option.rfind("train=", 0) == 0) {
        if (train > 0) throw bad("train= at most once");
        train = parse_count("policy spec train", option.substr(6));
        if (train == 0) throw bad("train >= 1");
      } else {
        throw bad(usage);
      }
    }
    return deadline ? PolicySpec::optimal_single_d(budget, train)
                    : PolicySpec::optimal_single_r(budget, correlated, train);
  }
  throw std::runtime_error(
      "policy spec '" + std::string(token) +
      "': unknown form (want none|immediate|d|r|multi|tuned-r|tuned-d|"
      "optimal|optimal-d)");
}

std::string to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kIndependent: return "independent";
    case WorkloadKind::kCorrelated: return "correlated";
    case WorkloadKind::kQueueing: return "queueing";
    case WorkloadKind::kRedis: return "redis";
    case WorkloadKind::kLucene: return "lucene";
  }
  throw std::logic_error("unreachable");
}

WorkloadKind workload_kind_from_string(std::string_view name) {
  if (name == "independent") return WorkloadKind::kIndependent;
  if (name == "correlated") return WorkloadKind::kCorrelated;
  if (name == "queueing") return WorkloadKind::kQueueing;
  if (name == "redis") return WorkloadKind::kRedis;
  if (name == "lucene") return WorkloadKind::kLucene;
  throw std::runtime_error(
      "scenario spec: kind must be independent|correlated|queueing|redis|"
      "lucene (got '" + std::string(name) + "')");
}

std::string to_spec_string(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "name=" << spec.name;
  os << " kind=" << to_string(spec.kind);
  if (kind_has_finite_servers(spec.kind)) {
    os << " util=" << fmt(spec.utilization);
  }
  // Trace replay pins reissue copies to their primary's cost; emitting the
  // inapplicable ratio key would make the string unparseable.
  if (kind_has_ratio(spec.kind) && !is_trace_service(spec.service)) {
    os << " ratio=" << fmt(spec.ratio);
  }
  if (kind_has_finite_servers(spec.kind)) os << " servers=" << spec.servers;
  os << " queries=" << spec.queries;
  os << " warmup=" << spec.warmup;
  if (kind_is_queueing(spec.kind)) {
    os << " lb=" << lb_to_token(spec.load_balancer);
    os << " queue=" << queue_to_token(spec.queue);
  }
  if (kind_has_service(spec.kind)) {
    os << " service=" << spec.service;
    os << " cap=" << fmt(spec.service_cap);
  }
  if (kind_is_queueing(spec.kind) && spec.interference_rate > 0.0) {
    os << " interference=" << fmt(spec.interference_rate) << ":"
       << fmt(spec.interference_mean);
  }
  if (kind_is_queueing(spec.kind) && !spec.phases.empty()) {
    os << " phases=";
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
      if (i) os << ",";
      os << fmt(spec.phases[i].duration) << ":"
         << fmt(spec.phases[i].multiplier);
    }
  }
  if (kind_is_queueing(spec.kind) && !spec.server_speeds.empty()) {
    os << " speeds=";
    for (std::size_t i = 0; i < spec.server_speeds.size(); ++i) {
      if (i) os << ",";
      os << fmt(spec.server_speeds[i]);
    }
  }
  os << " percentile=" << fmt(spec.percentile);
  for (const auto& policy : spec.policies) {
    os << " policy=" << to_string(policy);
  }
  return os.str();
}

ScenarioSpec parse_scenario(std::string_view text) {
  ScenarioSpec spec;
  spec.policies.clear();

  std::istringstream is{std::string(text)};
  std::string token;
  std::vector<std::string> seen;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("scenario spec: expected key=value, got '" +
                               token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (value.empty()) {
      throw std::runtime_error("scenario spec: empty value for '" + key + "'");
    }
    seen.push_back(key);
    if (key == "name") {
      spec.name = value;
    } else if (key == "kind") {
      spec.kind = workload_kind_from_string(value);
    } else if (key == "util") {
      spec.utilization = parse_num("scenario spec util", value);
    } else if (key == "ratio") {
      spec.ratio = parse_num("scenario spec ratio", value);
    } else if (key == "servers") {
      spec.servers = parse_count("scenario spec servers", value);
    } else if (key == "queries") {
      spec.queries = parse_count("scenario spec queries", value);
    } else if (key == "warmup") {
      spec.warmup = parse_count("scenario spec warmup", value);
    } else if (key == "lb") {
      spec.load_balancer = lb_from_token(value);
    } else if (key == "queue") {
      spec.queue = queue_from_token(value);
    } else if (key == "service") {
      spec.service = value;
      // Fail fast on bad tokens; trace paths are only checked for shape
      // here (the file itself is read by make_system, where it must exist).
      if (!is_trace_service(value)) (void)parse_distribution(value);
    } else if (key == "cap") {
      spec.service_cap = parse_num("scenario spec cap", value);
    } else if (key == "interference") {
      const auto parts = split(value, ':');
      if (parts.size() != 2) {
        throw std::runtime_error(
            "scenario spec: interference wants <rate>:<mean>");
      }
      spec.interference_rate = parse_num("scenario spec interference", parts[0]);
      spec.interference_mean = parse_num("scenario spec interference", parts[1]);
    } else if (key == "phases") {
      spec.phases.clear();
      for (const auto& entry : split(value, ',')) {
        const auto parts = split(entry, ':');
        if (parts.size() != 2) {
          throw std::runtime_error(
              "scenario spec: phases want <duration>:<multiplier>[,...]");
        }
        spec.phases.push_back(
            BurstPhase{parse_num("scenario spec phase duration", parts[0]),
                       parse_num("scenario spec phase multiplier", parts[1])});
      }
    } else if (key == "speeds") {
      spec.server_speeds.clear();
      for (const auto& entry : split(value, ',')) {
        spec.server_speeds.push_back(parse_num("scenario spec speed", entry));
      }
    } else if (key == "percentile") {
      spec.percentile = parse_num("scenario spec percentile", value);
    } else if (key == "policy") {
      spec.policies.push_back(parse_policy_spec(value));
    } else {
      throw std::runtime_error("scenario spec: unknown key '" + key + "'");
    }
  }
  // Keys may precede kind=, so applicability is checked after the loop.
  for (const auto& key : seen) {
    if (!key_applies(key, spec.kind)) {
      throw std::runtime_error("scenario spec: key '" + key +
                               "' does not apply to kind " +
                               to_string(spec.kind));
    }
    // Trace replay pins reissue copies to their primary's cost, so a
    // correlation ratio would be silently ignored — reject it like any
    // other inapplicable knob.
    if (key == "ratio" && is_trace_service(spec.service)) {
      throw std::runtime_error(
          "scenario spec: ratio does not apply to service=trace:<file> "
          "(reissue copies replay their primary's cost)");
    }
  }
  validate(spec);
  return spec;
}

stats::DistributionPtr parse_distribution(std::string_view token) {
  const auto parts = split(token, ':');
  const std::string_view head = parts[0];
  const std::size_t args = parts.size() - 1;
  const auto want = [&](std::size_t n, const char* usage) {
    if (args != n) {
      throw std::runtime_error("distribution '" + std::string(token) +
                               "': expected " + usage);
    }
  };
  if (head == "pareto") {
    want(2, "pareto:<shape>:<mode>");
    return stats::make_pareto(parse_num("pareto shape", parts[1]),
                              parse_num("pareto mode", parts[2]));
  }
  if (head == "lognormal") {
    want(2, "lognormal:<mu>:<sigma>");
    return stats::make_lognormal(parse_num("lognormal mu", parts[1]),
                                 parse_num("lognormal sigma", parts[2]));
  }
  if (head == "exp") {
    want(1, "exp:<rate>");
    return stats::make_exponential(parse_num("exp rate", parts[1]));
  }
  if (head == "weibull") {
    want(2, "weibull:<shape>:<scale>");
    return stats::make_weibull(parse_num("weibull shape", parts[1]),
                               parse_num("weibull scale", parts[2]));
  }
  if (head == "uniform") {
    want(2, "uniform:<lo>:<hi>");
    return stats::make_uniform(parse_num("uniform lo", parts[1]),
                               parse_num("uniform hi", parts[2]));
  }
  if (head == "constant") {
    want(1, "constant:<value>");
    return stats::make_constant(parse_num("constant value", parts[1]));
  }
  throw std::runtime_error(
      "distribution '" + std::string(token) +
      "': unknown family (want pareto|lognormal|exp|weibull|uniform|constant)");
}

std::vector<double> load_service_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("service trace '" + path + "': cannot open file");
  }
  std::vector<double> trace;
  try {
    trace = core::read_latency_log(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("service trace '" + path + "': " +
                             std::string(e.what()));
  }
  if (trace.empty()) {
    throw std::runtime_error("service trace '" + path + "': no samples");
  }
  return trace;
}

namespace {

stats::DistributionPtr service_distribution(const ScenarioSpec& spec) {
  stats::DistributionPtr dist = parse_distribution(spec.service);
  if (spec.service_cap > 0.0) {
    dist = stats::make_truncated(std::move(dist), spec.service_cap);
  }
  return dist;
}

double service_mean(const stats::Distribution& dist) {
  const double mean = dist.mean();
  if (std::isfinite(mean) && mean > 0.0) return mean;
  return sim::workloads::empirical_mean_service(dist);
}

std::shared_ptr<sim::ServiceModel> service_model(const ScenarioSpec& spec,
                                                 stats::DistributionPtr dist) {
  if (spec.ratio > 0.0) {
    return sim::make_correlated_service(std::move(dist), spec.ratio);
  }
  return sim::make_iid_service(std::move(dist));
}

}  // namespace

std::unique_ptr<core::SystemUnderTest> make_system(const ScenarioSpec& spec,
                                                   std::uint64_t seed) {
  validate(spec);
  switch (spec.kind) {
    case WorkloadKind::kIndependent:
    case WorkloadKind::kCorrelated: {
      auto dist = service_distribution(spec);
      sim::ClusterConfig config;
      config.infinite_servers = true;
      config.servers = 0;
      config.queries = spec.queries;
      config.warmup = spec.warmup;
      config.seed = seed;
      // Arrivals only order events for infinite-server runs; pace them at
      // the default Queueing rate for comparability (as src/sim/workloads
      // does).
      config.arrival_rate = sim::arrival_rate_for_utilization(
          sim::workloads::kDefaultUtilization,
          sim::workloads::kDefaultServers, service_mean(*dist));
      std::shared_ptr<sim::ServiceModel> model =
          spec.kind == WorkloadKind::kIndependent
              ? sim::make_iid_service(dist)
              : service_model(spec, dist);
      return std::make_unique<sim::Cluster>(config, std::move(model));
    }
    case WorkloadKind::kQueueing: {
      sim::ClusterConfig config;
      config.servers = spec.servers;
      config.queries = spec.queries;
      config.warmup = spec.warmup;
      config.seed = seed;
      config.load_balancer = spec.load_balancer;
      config.queue = spec.queue;
      std::shared_ptr<sim::ServiceModel> model;
      if (is_trace_service(spec.service)) {
        // Trace replay (ROADMAP trace-replay item): a measured latency log
        // becomes the per-query service times, capped like any synthetic
        // service, with arrivals paced off the capped trace mean.
        auto trace =
            load_service_trace(std::string(trace_path(spec.service)));
        if (spec.service_cap > 0.0) {
          for (double& v : trace) v = std::min(v, spec.service_cap);
        }
        const double mean =
            std::accumulate(trace.begin(), trace.end(), 0.0) /
            static_cast<double>(trace.size());
        config.arrival_rate = sim::arrival_rate_for_utilization(
            spec.utilization, spec.servers, mean);
        model = sim::make_trace_service(std::move(trace),
                                        is_resample_trace(spec.service));
      } else {
        auto dist = service_distribution(spec);
        config.arrival_rate = sim::arrival_rate_for_utilization(
            spec.utilization, spec.servers, service_mean(*dist));
        model = service_model(spec, std::move(dist));
      }
      for (const auto& phase : spec.phases) {
        config.arrival_phases.push_back(
            sim::ClusterConfig::RatePhase{phase.duration, phase.multiplier});
      }
      config.server_speeds = spec.server_speeds;
      if (spec.interference_rate > 0.0) {
        config.interference_rate = spec.interference_rate;
        // LogNormal episodes with the requested mean (log-sigma 0.6, the
        // systems bridge's interference shape).
        constexpr double kSigma = 0.6;
        config.interference_duration = stats::make_lognormal(
            std::log(spec.interference_mean) - 0.5 * kSigma * kSigma, kSigma);
      }
      return std::make_unique<sim::Cluster>(config, std::move(model));
    }
    case WorkloadKind::kRedis:
    case WorkloadKind::kLucene: {
      systems::SystemHarnessOptions options;
      options.utilization = spec.utilization;
      options.servers = spec.servers;
      options.queries = spec.queries;
      options.warmup = spec.warmup;
      options.seed = seed;
      auto harness = spec.kind == WorkloadKind::kRedis
                         ? systems::make_redis_harness(options)
                         : systems::make_lucene_harness(options);
      return std::make_unique<sim::Cluster>(std::move(harness.cluster));
    }
  }
  throw std::logic_error("unreachable");
}

}  // namespace reissue::exp
