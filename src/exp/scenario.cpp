#include "reissue/exp/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <numbers>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "reissue/core/policy_io.hpp"
#include "reissue/sim/cluster.hpp"
#include "reissue/sim/service_model.hpp"
#include "reissue/sim/workloads.hpp"
#include "reissue/systems/bridge.hpp"

namespace reissue::exp {

namespace {

/// Shortest round-trip decimal form: "0.3" stays "0.3" and parses back to
/// the identical double, which is what makes spec round trips exact.
std::string fmt(double value) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) throw std::logic_error("fmt: to_chars failed");
  return std::string(buf, end);
}

double parse_num(std::string_view what, std::string_view token) {
  double value = 0.0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error(std::string(what) + ": not a number: '" +
                             std::string(token) + "'");
  }
  return value;
}

std::size_t parse_count(std::string_view what, std::string_view token) {
  std::size_t value = 0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error(std::string(what) + ": not a count: '" +
                             std::string(token) + "'");
  }
  return value;
}

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string lb_to_token(sim::LoadBalancerKind kind) {
  switch (kind) {
    case sim::LoadBalancerKind::kRandom: return "random";
    case sim::LoadBalancerKind::kRoundRobin: return "rr";
    case sim::LoadBalancerKind::kMinOfTwo: return "min2";
    case sim::LoadBalancerKind::kMinOfAll: return "minall";
  }
  throw std::logic_error("unreachable");
}

sim::LoadBalancerKind lb_from_token(std::string_view token) {
  if (token == "random") return sim::LoadBalancerKind::kRandom;
  if (token == "rr") return sim::LoadBalancerKind::kRoundRobin;
  if (token == "min2") return sim::LoadBalancerKind::kMinOfTwo;
  if (token == "minall") return sim::LoadBalancerKind::kMinOfAll;
  throw std::runtime_error("scenario spec: lb must be random|rr|min2|minall "
                           "(got '" + std::string(token) + "')");
}

std::string queue_to_token(sim::QueueDisciplineKind kind) {
  switch (kind) {
    case sim::QueueDisciplineKind::kFifo: return "fifo";
    case sim::QueueDisciplineKind::kPrioritizedFifo: return "prio-fifo";
    case sim::QueueDisciplineKind::kPrioritizedLifo: return "prio-lifo";
    case sim::QueueDisciplineKind::kRoundRobinConnections: return "rr-conn";
    case sim::QueueDisciplineKind::kConnectionBatch: return "conn-batch";
  }
  throw std::logic_error("unreachable");
}

sim::QueueDisciplineKind queue_from_token(std::string_view token) {
  if (token == "fifo") return sim::QueueDisciplineKind::kFifo;
  if (token == "prio-fifo") return sim::QueueDisciplineKind::kPrioritizedFifo;
  if (token == "prio-lifo") return sim::QueueDisciplineKind::kPrioritizedLifo;
  if (token == "rr-conn") {
    return sim::QueueDisciplineKind::kRoundRobinConnections;
  }
  if (token == "conn-batch") return sim::QueueDisciplineKind::kConnectionBatch;
  throw std::runtime_error(
      "scenario spec: queue must be fifo|prio-fifo|prio-lifo|rr-conn|"
      "conn-batch (got '" + std::string(token) + "')");
}

// Which spec knobs each workload kind actually consumes (make_system
// ignores the rest; the parser rejects them so a sweep over an ignored
// knob cannot silently produce identical "results" per point).
bool kind_has_finite_servers(WorkloadKind kind) {
  return kind != WorkloadKind::kIndependent &&
         kind != WorkloadKind::kCorrelated;
}
bool kind_has_ratio(WorkloadKind kind) {
  return kind == WorkloadKind::kCorrelated || kind == WorkloadKind::kQueueing;
}
bool kind_has_service(WorkloadKind kind) {
  return kind != WorkloadKind::kRedis && kind != WorkloadKind::kLucene;
}
bool kind_is_queueing(WorkloadKind kind) {
  return kind == WorkloadKind::kQueueing;
}

bool is_trace_service(std::string_view service) {
  return service.rfind("trace:", 0) == 0;
}

bool is_trace_arrival(std::string_view arrival) {
  return arrival.rfind("trace:", 0) == 0;
}

bool is_diurnal_arrival(std::string_view arrival) {
  return arrival.rfind("diurnal:", 0) == 0;
}

std::string_view arrival_trace_path(std::string_view arrival) {
  return arrival.substr(6);  // after "trace:"
}

/// The parsed "diurnal:<period>:<amplitude>[:<steps>]" arrival curve.
struct DiurnalSpec {
  double period = 0.0;
  double amplitude = 0.0;
  std::size_t steps = 8;
};

DiurnalSpec parse_diurnal(std::string_view token) {
  const auto parts = split(token, ':');
  const auto bad = [&](const char* expected) -> std::runtime_error {
    return std::runtime_error(
        "scenario spec: arrival '" + std::string(token) + "': expected " +
        expected +
        "; valid forms: arrival=diurnal:<period>:<amplitude>[:<steps>] | "
        "arrival=trace:<file>");
  };
  if (parts.size() < 3 || parts.size() > 4) {
    throw bad("diurnal:<period>:<amplitude>[:<steps>]");
  }
  DiurnalSpec diurnal;
  diurnal.period = parse_num("diurnal period", parts[1]);
  diurnal.amplitude = parse_num("diurnal amplitude", parts[2]);
  if (parts.size() == 4) {
    diurnal.steps = parse_count("diurnal steps", parts[3]);
  }
  if (!(diurnal.period > 0.0)) throw bad("a positive period");
  if (!(diurnal.amplitude > 0.0 && diurnal.amplitude < 1.0)) {
    throw bad("an amplitude in (0,1)");
  }
  if (diurnal.steps < 2) throw bad("steps >= 2");
  return diurnal;
}

constexpr std::string_view kResampleSuffix = ":resample";

/// "trace:<file>:resample" draws i.i.d. from the trace instead of
/// replaying it in order.  The suffix is part of the service token, so a
/// path literally ending in ":resample" cannot be replayed -- acceptable
/// for a mode switch that keeps the spec single-line.
bool is_resample_trace(std::string_view service) {
  if (!is_trace_service(service)) return false;
  const std::string_view rest = service.substr(6);
  return rest.size() >= kResampleSuffix.size() &&
         rest.substr(rest.size() - kResampleSuffix.size()) == kResampleSuffix;
}

std::string_view trace_path(std::string_view service) {
  std::string_view rest = service.substr(6);  // after "trace:"
  if (is_resample_trace(service)) rest.remove_suffix(kResampleSuffix.size());
  return rest;
}

bool key_applies(const std::string& key, WorkloadKind kind) {
  if (key == "util" || key == "servers") return kind_has_finite_servers(kind);
  if (key == "ratio") return kind_has_ratio(kind);
  if (key == "service" || key == "cap") return kind_has_service(kind);
  if (key == "lb" || key == "queue" || key == "interference" ||
      key == "phases" || key == "speeds" || key == "arrival" ||
      key == "faults" || key == "fanout") {
    return kind_is_queueing(kind);
  }
  return true;
}

void validate(const ScenarioSpec& spec) {
  if (spec.name.empty()) {
    throw std::runtime_error("scenario spec: missing name");
  }
  if (spec.name.find(',') != std::string::npos) {
    throw std::runtime_error("scenario spec: name must not contain ','");
  }
  if (!(spec.percentile > 0.0 && spec.percentile < 1.0)) {
    throw std::runtime_error("scenario spec: percentile must be in (0,1)");
  }
  if (spec.queries == 0 || spec.warmup >= spec.queries) {
    throw std::runtime_error("scenario spec: need queries > warmup >= 0");
  }
  if (!spec.server_speeds.empty() &&
      spec.server_speeds.size() != spec.servers) {
    throw std::runtime_error(
        "scenario spec: speeds must list one multiplier per server");
  }
  if ((spec.interference_rate > 0.0) != (spec.interference_mean > 0.0)) {
    throw std::runtime_error(
        "scenario spec: interference needs both rate and mean > 0");
  }
  for (const auto& phase : spec.phases) {
    if (!(phase.duration > 0.0) || !(phase.multiplier > 0.0)) {
      throw std::runtime_error(
          "scenario spec: phases need positive duration and multiplier");
    }
  }
  if (is_trace_service(spec.service)) {
    if (trace_path(spec.service).empty()) {
      throw std::runtime_error("scenario spec: service=trace:<file> needs a "
                               "file path");
    }
    if (spec.kind != WorkloadKind::kQueueing) {
      throw std::runtime_error(
          "scenario spec: service=trace:<file> requires kind=queueing "
          "(got kind " + to_string(spec.kind) + ")");
    }
  }
  if (!spec.arrival.empty()) {
    if (spec.kind != WorkloadKind::kQueueing) {
      throw std::runtime_error(
          "scenario spec: arrival= requires kind=queueing (got kind " +
          to_string(spec.kind) + ")");
    }
    if (is_trace_arrival(spec.arrival)) {
      if (arrival_trace_path(spec.arrival).empty()) {
        throw std::runtime_error(
            "scenario spec: arrival=trace:<file> needs a file path");
      }
    } else if (is_diurnal_arrival(spec.arrival)) {
      (void)parse_diurnal(spec.arrival);
    } else {
      throw std::runtime_error(
          "scenario spec: arrival must be diurnal:<period>:<amplitude>"
          "[:<steps>] or trace:<file> (got '" + spec.arrival + "')");
    }
    if (!spec.phases.empty()) {
      throw std::runtime_error(
          "scenario spec: arrival= and phases= both shape the arrival "
          "process; use one");
    }
  }
  if (spec.faults.any()) {
    if (spec.kind != WorkloadKind::kQueueing) {
      throw std::runtime_error(
          "scenario spec: faults= requires kind=queueing (got kind " +
          to_string(spec.kind) + ")");
    }
    const FaultSpec& f = spec.faults;
    if (f.slowdown_rate > 0.0 &&
        (!(f.slowdown_factor > 1.0) || !(f.slowdown_mean > 0.0))) {
      throw std::runtime_error(
          "scenario spec: faults slowdown needs factor > 1 and "
          "mean-duration > 0");
    }
    if (f.degrade_rate > 0.0 &&
        (f.degrade_servers == 0 || f.degrade_servers > spec.servers ||
         !(f.degrade_factor > 1.0) || !(f.degrade_mean > 0.0))) {
      throw std::runtime_error(
          "scenario spec: faults corr needs 1 <= k <= servers, factor > 1 "
          "and mean-duration > 0");
    }
    if (f.crash_mtbf > 0.0 && !(f.crash_mttr > 0.0)) {
      throw std::runtime_error("scenario spec: faults crash needs mttr > 0");
    }
  }
  if (spec.fanout.active()) {
    if (spec.kind != WorkloadKind::kQueueing) {
      throw std::runtime_error(
          "scenario spec: fanout= requires kind=queueing (got kind " +
          to_string(spec.kind) + ")");
    }
    // n=0, k=0 and k>n are rejected at parse time; n>servers needs the
    // full spec, so it lands here with the same valid-forms listing.
    if (spec.fanout.copies > spec.servers) {
      throw std::runtime_error(
          "scenario spec: fanout copies (n=" +
          std::to_string(spec.fanout.copies) + ") must not exceed servers (" +
          std::to_string(spec.servers) + "); valid forms: fanout=<n>:<k> | "
          "fanout=<n>:<k>:spread | fanout=<n>:<k>:ec with 1 <= k <= n <= "
          "servers");
    }
  }
}

}  // namespace

PolicySpec PolicySpec::fixed_policy(core::ReissuePolicy policy) {
  PolicySpec spec;
  spec.kind = Kind::kFixed;
  spec.fixed = std::move(policy);
  return spec;
}

PolicySpec PolicySpec::tuned_single_r(double budget, int trials) {
  PolicySpec spec;
  spec.kind = Kind::kTunedSingleR;
  spec.budget = budget;
  spec.trials = trials;
  return spec;
}

PolicySpec PolicySpec::tuned_single_d(double budget, int trials) {
  PolicySpec spec;
  spec.kind = Kind::kTunedSingleD;
  spec.budget = budget;
  spec.trials = trials;
  return spec;
}

PolicySpec PolicySpec::optimal_single_r(double budget, bool correlated,
                                        std::size_t train) {
  PolicySpec spec;
  spec.kind = Kind::kOptimalSingleR;
  spec.budget = budget;
  spec.correlated = correlated;
  spec.train = train;
  return spec;
}

PolicySpec PolicySpec::optimal_single_d(double budget, std::size_t train) {
  PolicySpec spec;
  spec.kind = Kind::kOptimalSingleD;
  spec.budget = budget;
  spec.train = train;
  return spec;
}

std::string to_string(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicySpec::Kind::kTunedSingleR:
      return "tuned-r:" + fmt(spec.budget) + ":" + std::to_string(spec.trials);
    case PolicySpec::Kind::kTunedSingleD:
      return "tuned-d:" + fmt(spec.budget) + ":" + std::to_string(spec.trials);
    case PolicySpec::Kind::kOptimalSingleR:
    case PolicySpec::Kind::kOptimalSingleD: {
      std::string out = spec.kind == PolicySpec::Kind::kOptimalSingleR
                            ? "optimal:"
                            : "optimal-d:";
      out += fmt(spec.budget);
      if (spec.correlated) out += ":corr";
      if (spec.train > 0) out += ":train=" + std::to_string(spec.train);
      return out;
    }
    case PolicySpec::Kind::kFixed:
      break;
  }
  const core::ReissuePolicy& policy = spec.fixed;
  switch (policy.family()) {
    case core::PolicyFamily::kNoReissue:
      return "none";
    case core::PolicyFamily::kImmediate:
      return "immediate:" + std::to_string(policy.stage_count());
    case core::PolicyFamily::kSingleD:
      return "d:" + fmt(policy.delay());
    case core::PolicyFamily::kSingleR:
      return "r:" + fmt(policy.delay()) + ":" + fmt(policy.probability());
    case core::PolicyFamily::kMultipleR: {
      std::string out = "multi";
      for (const auto& stage : policy.stages()) {
        out += ":" + fmt(stage.delay) + ":" + fmt(stage.probability);
      }
      return out;
    }
  }
  throw std::logic_error("unreachable");
}

PolicySpec parse_policy_spec(std::string_view token) {
  const auto parts = split(token, ':');
  const std::string_view head = parts[0];
  const std::size_t args = parts.size() - 1;
  const auto bad = [&](const char* expected) -> std::runtime_error {
    return std::runtime_error("policy spec '" + std::string(token) +
                              "': expected " + expected);
  };

  if (head == "none") {
    if (args != 0) throw bad("none (no arguments)");
    return PolicySpec::fixed_policy(core::ReissuePolicy::none());
  }
  if (head == "immediate") {
    if (args > 1) throw bad("immediate[:copies]");
    const std::size_t copies =
        args == 1 ? parse_count("policy spec copies", parts[1]) : 1;
    if (copies == 0) throw bad("immediate copies >= 1");
    return PolicySpec::fixed_policy(core::ReissuePolicy::immediate(copies));
  }
  if (head == "d") {
    if (args != 1) throw bad("d:<delay>");
    return PolicySpec::fixed_policy(
        core::ReissuePolicy::single_d(parse_num("policy spec delay", parts[1])));
  }
  if (head == "r") {
    if (args != 2) throw bad("r:<delay>:<prob>");
    return PolicySpec::fixed_policy(core::ReissuePolicy::single_r(
        parse_num("policy spec delay", parts[1]),
        parse_num("policy spec probability", parts[2])));
  }
  if (head == "multi") {
    if (args == 0 || args % 2 != 0) throw bad("multi:d1:q1[:d2:q2...]");
    std::vector<core::ReissueStage> stages;
    for (std::size_t i = 1; i < parts.size(); i += 2) {
      stages.push_back(
          core::ReissueStage{parse_num("policy spec delay", parts[i]),
                             parse_num("policy spec probability", parts[i + 1])});
    }
    return PolicySpec::fixed_policy(
        core::ReissuePolicy::multiple_r(std::move(stages)));
  }
  if (head == "tuned-r" || head == "tuned-d") {
    if (args < 1 || args > 2) throw bad("tuned-r:<budget>[:trials]");
    const double budget = parse_num("policy spec budget", parts[1]);
    const int trials =
        args == 2 ? static_cast<int>(parse_count("policy spec trials", parts[2]))
                  : 6;
    if (!(budget > 0.0)) throw bad("a positive budget");
    if (trials < 1) throw bad("trials >= 1");
    return head == "tuned-r" ? PolicySpec::tuned_single_r(budget, trials)
                             : PolicySpec::tuned_single_d(budget, trials);
  }
  if (head == "optimal" || head == "optimal-d") {
    const bool deadline = head == "optimal-d";
    const char* usage = deadline ? "optimal-d:<budget>[:train=N]"
                                 : "optimal:<budget>[:corr][:train=N]";
    if (args < 1) throw bad(usage);
    const double budget = parse_num("policy spec budget", parts[1]);
    // The budget is a reissue-rate fraction; anything outside (0, 1] would
    // only fail (or be clamped) mid-sweep, deep inside the optimizer.
    if (!(budget > 0.0 && budget <= 1.0)) throw bad("a budget in (0, 1]");
    bool correlated = false;
    std::size_t train = 0;
    for (std::size_t i = 2; i < parts.size(); ++i) {
      const std::string_view option = parts[i];
      if (option == "corr") {
        // Eq. (2)'s deadline policy depends only on the X distribution, so
        // a correlation flag on optimal-d would be silently ignored.
        if (deadline) throw bad("optimal-d without corr (Eq. (2) uses only X)");
        if (correlated) throw bad("corr at most once");
        correlated = true;
      } else if (option.rfind("train=", 0) == 0) {
        if (train > 0) throw bad("train= at most once");
        train = parse_count("policy spec train", option.substr(6));
        if (train == 0) throw bad("train >= 1");
      } else {
        throw bad(usage);
      }
    }
    return deadline ? PolicySpec::optimal_single_d(budget, train)
                    : PolicySpec::optimal_single_r(budget, correlated, train);
  }
  throw std::runtime_error(
      "policy spec '" + std::string(token) +
      "': unknown form (want none|immediate|d|r|multi|tuned-r|tuned-d|"
      "optimal|optimal-d)");
}

std::string to_string(const FaultSpec& spec) {
  std::string out;
  const auto clause = [&out](const std::string& text) {
    if (!out.empty()) out += '+';
    out += text;
  };
  if (spec.slowdown_rate > 0.0) {
    clause("slowdown:" + fmt(spec.slowdown_rate) + "," +
           fmt(spec.slowdown_factor) + "," + fmt(spec.slowdown_mean));
  }
  if (spec.degrade_rate > 0.0) {
    clause("corr:" + std::to_string(spec.degrade_servers) + "," +
           fmt(spec.degrade_rate) + "," + fmt(spec.degrade_mean) + "," +
           fmt(spec.degrade_factor));
  }
  if (spec.crash_mtbf > 0.0) {
    clause("crash:" + fmt(spec.crash_mtbf) + "," + fmt(spec.crash_mttr));
  }
  return out;
}

FaultSpec parse_fault_spec(std::string_view token) {
  FaultSpec spec;
  const auto bad = [&](const char* expected) -> std::runtime_error {
    return std::runtime_error(
        "fault spec '" + std::string(token) + "': expected " + expected +
        "; valid forms: faults=slowdown:<rate>,<factor>,<mean> | "
        "corr:<k>,<rate>,<mean>[,<factor>] | crash:<mtbf>,<mttr>, clauses "
        "joined with '+'");
  };
  for (const auto clause : split(token, '+')) {
    const auto colon = clause.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      throw bad("'+'-joined <family>:<args> clauses");
    }
    const std::string_view head = clause.substr(0, colon);
    const auto args = split(clause.substr(colon + 1), ',');
    if (head == "slowdown") {
      if (spec.slowdown_rate > 0.0) throw bad("slowdown at most once");
      if (args.size() != 3) throw bad("slowdown:<rate>,<factor>,<mean>");
      spec.slowdown_rate = parse_num("fault slowdown rate", args[0]);
      spec.slowdown_factor = parse_num("fault slowdown factor", args[1]);
      spec.slowdown_mean = parse_num("fault slowdown mean", args[2]);
      if (!(spec.slowdown_rate > 0.0)) throw bad("a positive slowdown rate");
      if (!(spec.slowdown_factor > 1.0)) throw bad("a slowdown factor > 1");
      if (!(spec.slowdown_mean > 0.0)) throw bad("a positive slowdown mean");
    } else if (head == "corr") {
      if (spec.degrade_rate > 0.0) throw bad("corr at most once");
      if (args.size() < 3 || args.size() > 4) {
        throw bad("corr:<k>,<rate>,<mean>[,<factor>]");
      }
      spec.degrade_servers = parse_count("fault corr k", args[0]);
      spec.degrade_rate = parse_num("fault corr rate", args[1]);
      spec.degrade_mean = parse_num("fault corr mean", args[2]);
      spec.degrade_factor =
          args.size() == 4 ? parse_num("fault corr factor", args[3]) : 2.0;
      if (spec.degrade_servers == 0) throw bad("corr k >= 1");
      if (!(spec.degrade_rate > 0.0)) throw bad("a positive corr rate");
      if (!(spec.degrade_mean > 0.0)) throw bad("a positive corr mean");
      if (!(spec.degrade_factor > 1.0)) throw bad("a corr factor > 1");
    } else if (head == "crash") {
      if (spec.crash_mtbf > 0.0) throw bad("crash at most once");
      if (args.size() != 2) throw bad("crash:<mtbf>,<mttr>");
      spec.crash_mtbf = parse_num("fault crash mtbf", args[0]);
      spec.crash_mttr = parse_num("fault crash mttr", args[1]);
      if (!(spec.crash_mtbf > 0.0)) throw bad("a positive crash mtbf");
      if (!(spec.crash_mttr > 0.0)) throw bad("a positive crash mttr");
    } else {
      throw std::runtime_error(
          "fault spec '" + std::string(token) + "': unknown family '" +
          std::string(head) +
          "'; valid forms: faults=slowdown:<rate>,<factor>,<mean> | "
          "corr:<k>,<rate>,<mean>[,<factor>] | crash:<mtbf>,<mttr>, clauses "
          "joined with '+'");
    }
  }
  return spec;
}

std::string to_string(const FanoutSpec& spec) {
  std::string out = std::to_string(spec.copies) + ":" +
                    std::to_string(spec.require);
  if (spec.mode == FanoutSpec::Mode::kSpread) out += ":spread";
  if (spec.mode == FanoutSpec::Mode::kErasure) out += ":ec";
  return out;
}

FanoutSpec parse_fanout_spec(std::string_view token) {
  const auto bad = [&](const std::string& expected) -> std::runtime_error {
    return std::runtime_error(
        "fanout spec '" + std::string(token) + "': expected " + expected +
        "; valid forms: fanout=<n>:<k> | fanout=<n>:<k>:spread | "
        "fanout=<n>:<k>:ec with 1 <= k <= n <= servers");
  };
  const auto parts = split(token, ':');
  if (parts.size() < 2 || parts.size() > 3) {
    throw bad("<n>:<k>[:spread|:ec]");
  }
  FanoutSpec spec;
  spec.copies = parse_count("fanout copies", parts[0]);
  spec.require = parse_count("fanout require", parts[1]);
  if (spec.copies == 0) throw bad("copies (n) >= 1");
  if (spec.require == 0) throw bad("require (k) >= 1");
  if (spec.require > spec.copies) {
    throw bad("require (k=" + std::to_string(spec.require) +
              ") <= copies (n=" + std::to_string(spec.copies) + ")");
  }
  if (parts.size() == 3) {
    if (parts[2] == "spread") {
      spec.mode = FanoutSpec::Mode::kSpread;
    } else if (parts[2] == "ec") {
      spec.mode = FanoutSpec::Mode::kErasure;
    } else {
      throw bad("placement 'spread' or 'ec', got '" + std::string(parts[2]) +
                "'");
    }
  }
  return spec;
}

std::string to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kIndependent: return "independent";
    case WorkloadKind::kCorrelated: return "correlated";
    case WorkloadKind::kQueueing: return "queueing";
    case WorkloadKind::kRedis: return "redis";
    case WorkloadKind::kLucene: return "lucene";
  }
  throw std::logic_error("unreachable");
}

WorkloadKind workload_kind_from_string(std::string_view name) {
  if (name == "independent") return WorkloadKind::kIndependent;
  if (name == "correlated") return WorkloadKind::kCorrelated;
  if (name == "queueing") return WorkloadKind::kQueueing;
  if (name == "redis") return WorkloadKind::kRedis;
  if (name == "lucene") return WorkloadKind::kLucene;
  throw std::runtime_error(
      "scenario spec: kind must be independent|correlated|queueing|redis|"
      "lucene (got '" + std::string(name) + "')");
}

std::string to_spec_string(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "name=" << spec.name;
  os << " kind=" << to_string(spec.kind);
  // Trace arrivals pace queries off the recorded timestamps, so util would
  // be an inapplicable (hence unparseable) key.
  if (kind_has_finite_servers(spec.kind) && !is_trace_arrival(spec.arrival)) {
    os << " util=" << fmt(spec.utilization);
  }
  // Trace replay pins reissue copies to their primary's cost; emitting the
  // inapplicable ratio key would make the string unparseable.
  if (kind_has_ratio(spec.kind) && !is_trace_service(spec.service)) {
    os << " ratio=" << fmt(spec.ratio);
  }
  if (kind_has_finite_servers(spec.kind)) os << " servers=" << spec.servers;
  os << " queries=" << spec.queries;
  os << " warmup=" << spec.warmup;
  if (kind_is_queueing(spec.kind)) {
    os << " lb=" << lb_to_token(spec.load_balancer);
    os << " queue=" << queue_to_token(spec.queue);
  }
  if (kind_has_service(spec.kind)) {
    os << " service=" << spec.service;
    os << " cap=" << fmt(spec.service_cap);
  }
  if (kind_is_queueing(spec.kind) && spec.interference_rate > 0.0) {
    os << " interference=" << fmt(spec.interference_rate) << ":"
       << fmt(spec.interference_mean);
  }
  if (kind_is_queueing(spec.kind) && !spec.phases.empty()) {
    os << " phases=";
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
      if (i) os << ",";
      os << fmt(spec.phases[i].duration) << ":"
         << fmt(spec.phases[i].multiplier);
    }
  }
  if (kind_is_queueing(spec.kind) && !spec.arrival.empty()) {
    os << " arrival=" << spec.arrival;
  }
  if (kind_is_queueing(spec.kind) && spec.faults.any()) {
    os << " faults=" << to_string(spec.faults);
  }
  if (kind_is_queueing(spec.kind) && spec.fanout.active()) {
    os << " fanout=" << to_string(spec.fanout);
  }
  if (kind_is_queueing(spec.kind) && !spec.server_speeds.empty()) {
    os << " speeds=";
    for (std::size_t i = 0; i < spec.server_speeds.size(); ++i) {
      if (i) os << ",";
      os << fmt(spec.server_speeds[i]);
    }
  }
  os << " percentile=" << fmt(spec.percentile);
  for (const auto& policy : spec.policies) {
    os << " policy=" << to_string(policy);
  }
  return os.str();
}

ScenarioSpec parse_scenario(std::string_view text) {
  ScenarioSpec spec;
  spec.policies.clear();

  std::istringstream is{std::string(text)};
  std::string token;
  std::vector<std::string> seen;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("scenario spec: expected key=value, got '" +
                               token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (value.empty()) {
      throw std::runtime_error("scenario spec: empty value for '" + key + "'");
    }
    seen.push_back(key);
    if (key == "name") {
      spec.name = value;
    } else if (key == "kind") {
      spec.kind = workload_kind_from_string(value);
    } else if (key == "util") {
      spec.utilization = parse_num("scenario spec util", value);
    } else if (key == "ratio") {
      spec.ratio = parse_num("scenario spec ratio", value);
    } else if (key == "servers") {
      spec.servers = parse_count("scenario spec servers", value);
    } else if (key == "queries") {
      spec.queries = parse_count("scenario spec queries", value);
    } else if (key == "warmup") {
      spec.warmup = parse_count("scenario spec warmup", value);
    } else if (key == "lb") {
      spec.load_balancer = lb_from_token(value);
    } else if (key == "queue") {
      spec.queue = queue_from_token(value);
    } else if (key == "service") {
      spec.service = value;
      // Fail fast on bad tokens; trace paths are only checked for shape
      // here (the file itself is read by make_system, where it must exist).
      if (!is_trace_service(value)) (void)parse_distribution(value);
    } else if (key == "cap") {
      spec.service_cap = parse_num("scenario spec cap", value);
    } else if (key == "interference") {
      const auto parts = split(value, ':');
      if (parts.size() != 2) {
        throw std::runtime_error(
            "scenario spec: interference wants <rate>:<mean>");
      }
      spec.interference_rate = parse_num("scenario spec interference", parts[0]);
      spec.interference_mean = parse_num("scenario spec interference", parts[1]);
    } else if (key == "phases") {
      spec.phases.clear();
      for (const auto& entry : split(value, ',')) {
        const auto parts = split(entry, ':');
        if (parts.size() != 2) {
          throw std::runtime_error(
              "scenario spec: phases want <duration>:<multiplier>[,...]");
        }
        spec.phases.push_back(
            BurstPhase{parse_num("scenario spec phase duration", parts[0]),
                       parse_num("scenario spec phase multiplier", parts[1])});
      }
    } else if (key == "speeds") {
      spec.server_speeds.clear();
      for (const auto& entry : split(value, ',')) {
        spec.server_speeds.push_back(parse_num("scenario spec speed", entry));
      }
    } else if (key == "arrival") {
      spec.arrival = value;
    } else if (key == "faults") {
      spec.faults = parse_fault_spec(value);
    } else if (key == "fanout") {
      spec.fanout = parse_fanout_spec(value);
    } else if (key == "percentile") {
      spec.percentile = parse_num("scenario spec percentile", value);
    } else if (key == "policy") {
      spec.policies.push_back(parse_policy_spec(value));
    } else {
      throw std::runtime_error("scenario spec: unknown key '" + key + "'");
    }
  }
  // Keys may precede kind=, so applicability is checked after the loop.
  for (const auto& key : seen) {
    if (!key_applies(key, spec.kind)) {
      throw std::runtime_error("scenario spec: key '" + key +
                               "' does not apply to kind " +
                               to_string(spec.kind));
    }
    // Trace replay pins reissue copies to their primary's cost, so a
    // correlation ratio would be silently ignored — reject it like any
    // other inapplicable knob.
    if (key == "ratio" && is_trace_service(spec.service)) {
      throw std::runtime_error(
          "scenario spec: ratio does not apply to service=trace:<file> "
          "(reissue copies replay their primary's cost)");
    }
    // Trace arrivals replay recorded timestamps verbatim; a utilization
    // target would be silently ignored, so reject it the same way.
    if (key == "util" && is_trace_arrival(spec.arrival)) {
      throw std::runtime_error(
          "scenario spec: util does not apply to arrival=trace:<file> "
          "(the recorded timestamps set the rate)");
    }
  }
  validate(spec);
  return spec;
}

stats::DistributionPtr parse_distribution(std::string_view token) {
  const auto parts = split(token, ':');
  const std::string_view head = parts[0];
  const std::size_t args = parts.size() - 1;
  const auto want = [&](std::size_t n, const char* usage) {
    if (args != n) {
      throw std::runtime_error("distribution '" + std::string(token) +
                               "': expected " + usage);
    }
  };
  if (head == "pareto") {
    want(2, "pareto:<shape>:<mode>");
    return stats::make_pareto(parse_num("pareto shape", parts[1]),
                              parse_num("pareto mode", parts[2]));
  }
  if (head == "lognormal") {
    want(2, "lognormal:<mu>:<sigma>");
    return stats::make_lognormal(parse_num("lognormal mu", parts[1]),
                                 parse_num("lognormal sigma", parts[2]));
  }
  if (head == "exp") {
    want(1, "exp:<rate>");
    return stats::make_exponential(parse_num("exp rate", parts[1]));
  }
  if (head == "weibull") {
    want(2, "weibull:<shape>:<scale>");
    return stats::make_weibull(parse_num("weibull shape", parts[1]),
                               parse_num("weibull scale", parts[2]));
  }
  if (head == "uniform") {
    want(2, "uniform:<lo>:<hi>");
    return stats::make_uniform(parse_num("uniform lo", parts[1]),
                               parse_num("uniform hi", parts[2]));
  }
  if (head == "constant") {
    want(1, "constant:<value>");
    return stats::make_constant(parse_num("constant value", parts[1]));
  }
  throw std::runtime_error(
      "distribution '" + std::string(token) +
      "': unknown family (want pareto|lognormal|exp|weibull|uniform|constant)");
}

std::vector<double> load_service_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("service trace '" + path + "': cannot open file");
  }
  std::vector<double> trace;
  try {
    trace = core::read_latency_log(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("service trace '" + path + "': " +
                             std::string(e.what()));
  }
  if (trace.empty()) {
    throw std::runtime_error("service trace '" + path + "': no samples");
  }
  return trace;
}

namespace {

stats::DistributionPtr service_distribution(const ScenarioSpec& spec) {
  stats::DistributionPtr dist = parse_distribution(spec.service);
  if (spec.service_cap > 0.0) {
    dist = stats::make_truncated(std::move(dist), spec.service_cap);
  }
  return dist;
}

double service_mean(const stats::Distribution& dist) {
  const double mean = dist.mean();
  if (std::isfinite(mean) && mean > 0.0) return mean;
  return sim::workloads::empirical_mean_service(dist);
}

std::shared_ptr<sim::ServiceModel> service_model(const ScenarioSpec& spec,
                                                 stats::DistributionPtr dist) {
  if (spec.ratio > 0.0) {
    return sim::make_correlated_service(std::move(dist), spec.ratio);
  }
  return sim::make_iid_service(std::move(dist));
}

}  // namespace

std::unique_ptr<core::SystemUnderTest> make_system(const ScenarioSpec& spec,
                                                   std::uint64_t seed) {
  validate(spec);
  switch (spec.kind) {
    case WorkloadKind::kIndependent:
    case WorkloadKind::kCorrelated: {
      auto dist = service_distribution(spec);
      sim::ClusterConfig config;
      config.infinite_servers = true;
      config.servers = 0;
      config.queries = spec.queries;
      config.warmup = spec.warmup;
      config.seed = seed;
      // Arrivals only order events for infinite-server runs; pace them at
      // the default Queueing rate for comparability (as src/sim/workloads
      // does).
      config.arrival_rate = sim::arrival_rate_for_utilization(
          sim::workloads::kDefaultUtilization,
          sim::workloads::kDefaultServers, service_mean(*dist));
      std::shared_ptr<sim::ServiceModel> model =
          spec.kind == WorkloadKind::kIndependent
              ? sim::make_iid_service(dist)
              : service_model(spec, dist);
      return std::make_unique<sim::Cluster>(config, std::move(model));
    }
    case WorkloadKind::kQueueing: {
      sim::ClusterConfig config;
      config.servers = spec.servers;
      config.queries = spec.queries;
      config.warmup = spec.warmup;
      config.seed = seed;
      config.load_balancer = spec.load_balancer;
      config.queue = spec.queue;
      std::shared_ptr<sim::ServiceModel> model;
      if (is_trace_service(spec.service)) {
        // Trace replay (ROADMAP trace-replay item): a measured latency log
        // becomes the per-query service times, capped like any synthetic
        // service, with arrivals paced off the capped trace mean.
        auto trace =
            load_service_trace(std::string(trace_path(spec.service)));
        if (spec.service_cap > 0.0) {
          for (double& v : trace) v = std::min(v, spec.service_cap);
        }
        const double mean =
            std::accumulate(trace.begin(), trace.end(), 0.0) /
            static_cast<double>(trace.size());
        config.arrival_rate = sim::arrival_rate_for_utilization(
            spec.utilization, spec.servers, mean);
        model = sim::make_trace_service(std::move(trace),
                                        is_resample_trace(spec.service));
      } else {
        auto dist = service_distribution(spec);
        config.arrival_rate = sim::arrival_rate_for_utilization(
            spec.utilization, spec.servers, service_mean(*dist));
        model = service_model(spec, std::move(dist));
      }
      for (const auto& phase : spec.phases) {
        config.arrival_phases.push_back(
            sim::ClusterConfig::RatePhase{phase.duration, phase.multiplier});
      }
      if (is_diurnal_arrival(spec.arrival)) {
        // The day curve becomes piecewise-constant rate phases; the phase
        // machinery already cycles them, so one period's steps suffice.
        const DiurnalSpec diurnal = parse_diurnal(spec.arrival);
        const double steps = static_cast<double>(diurnal.steps);
        for (std::size_t i = 0; i < diurnal.steps; ++i) {
          const double angle = 2.0 * std::numbers::pi *
                               (static_cast<double>(i) + 0.5) / steps;
          config.arrival_phases.push_back(sim::ClusterConfig::RatePhase{
              diurnal.period / steps,
              1.0 + diurnal.amplitude * std::sin(angle)});
        }
      } else if (is_trace_arrival(spec.arrival)) {
        // Recorded timestamps replace the Poisson process entirely.  A
        // trace shorter than `queries` cycles with its extrapolated span
        // (back + one mean gap) added per lap, so laps stay disjoint and
        // the recorded burst structure repeats intact.
        const auto stamps = load_service_trace(
            std::string(arrival_trace_path(spec.arrival)));
        if (stamps.size() < 2) {
          throw std::runtime_error("arrival trace '" +
                                   std::string(arrival_trace_path(
                                       spec.arrival)) +
                                   "': need at least 2 timestamps");
        }
        for (std::size_t i = 1; i < stamps.size(); ++i) {
          if (stamps[i] < stamps[i - 1]) {
            throw std::runtime_error(
                "arrival trace '" +
                std::string(arrival_trace_path(spec.arrival)) +
                "': timestamps must be non-decreasing");
          }
        }
        const double back = stamps.back();
        if (!(back > 0.0)) {
          throw std::runtime_error(
              "arrival trace '" +
              std::string(arrival_trace_path(spec.arrival)) +
              "': last timestamp must be > 0");
        }
        const double span =
            back + back / static_cast<double>(stamps.size() - 1);
        std::vector<double> schedule(spec.queries);
        for (std::size_t i = 0; i < spec.queries; ++i) {
          schedule[i] = stamps[i % stamps.size()] +
                        static_cast<double>(i / stamps.size()) * span;
        }
        // The trace's own empirical rate, used only for horizon estimates.
        config.arrival_rate = static_cast<double>(stamps.size() - 1) / back;
        config.arrival_schedule = std::move(schedule);
      }
      if (spec.faults.any()) {
        constexpr double kSigma = 0.6;  // the interference episode shape
        const auto episode = [](double mean) {
          return stats::make_lognormal(
              std::log(mean) - 0.5 * kSigma * kSigma, kSigma);
        };
        const FaultSpec& f = spec.faults;
        if (f.slowdown_rate > 0.0) {
          config.faults.slowdown_rate = f.slowdown_rate;
          config.faults.slowdown_factor = f.slowdown_factor;
          config.faults.slowdown_duration = episode(f.slowdown_mean);
        }
        if (f.degrade_rate > 0.0) {
          config.faults.degrade_servers = f.degrade_servers;
          config.faults.degrade_rate = f.degrade_rate;
          config.faults.degrade_factor = f.degrade_factor;
          config.faults.degrade_duration = episode(f.degrade_mean);
        }
        if (f.crash_mtbf > 0.0) {
          config.faults.crash_mtbf = f.crash_mtbf;
          config.faults.crash_downtime = episode(f.crash_mttr);
        }
      }
      if (spec.fanout.active()) {
        config.fanout.copies = spec.fanout.copies;
        config.fanout.require = spec.fanout.require;
        switch (spec.fanout.mode) {
          case FanoutSpec::Mode::kIndependent:
            config.fanout.placement =
                sim::ClusterConfig::FanoutPlan::Placement::kIndependent;
            break;
          case FanoutSpec::Mode::kSpread:
            config.fanout.placement =
                sim::ClusterConfig::FanoutPlan::Placement::kSpread;
            break;
          case FanoutSpec::Mode::kErasure:
            config.fanout.placement =
                sim::ClusterConfig::FanoutPlan::Placement::kErasure;
            break;
        }
        // Fan-out without cancellation would let every losing sibling run
        // to completion, so redundancy could never pay for itself at any
        // load; group completion cancels stragglers (lazily, at zero
        // overhead) like the paper's cancellation extension.
        config.cancel_on_completion = true;
      }
      config.server_speeds = spec.server_speeds;
      if (spec.interference_rate > 0.0) {
        config.interference_rate = spec.interference_rate;
        // LogNormal episodes with the requested mean (log-sigma 0.6, the
        // systems bridge's interference shape).
        constexpr double kSigma = 0.6;
        config.interference_duration = stats::make_lognormal(
            std::log(spec.interference_mean) - 0.5 * kSigma * kSigma, kSigma);
      }
      return std::make_unique<sim::Cluster>(config, std::move(model));
    }
    case WorkloadKind::kRedis:
    case WorkloadKind::kLucene: {
      systems::SystemHarnessOptions options;
      options.utilization = spec.utilization;
      options.servers = spec.servers;
      options.queries = spec.queries;
      options.warmup = spec.warmup;
      options.seed = seed;
      auto harness = spec.kind == WorkloadKind::kRedis
                         ? systems::make_redis_harness(options)
                         : systems::make_lucene_harness(options);
      return std::make_unique<sim::Cluster>(std::move(harness.cluster));
    }
  }
  throw std::logic_error("unreachable");
}

}  // namespace reissue::exp
